// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and
// prints it next to the paper's published numbers. Durations/iterations
// default to CI-friendly values; set NLC_BENCH_FULL=1 for the paper-scale
// matrix (more runs, longer windows) or override individual knobs:
//   NLC_BENCH_RUNS        repetitions per data point
//   NLC_BENCH_SECONDS     measurement window (server benchmarks)
//   NLC_BENCH_BATCH_SECS  per-thread CPU quota (batch benchmarks)
// Trials run through harness::TrialRunner (bench::run_all): NLC_JOBS
// worker threads (default: all cores; NLC_JOBS=1 = the old serial path),
// results always in submission order, so every table is byte-identical to
// a serial run. Each bench also writes BENCH_<name>.json (per-point
// mean/p50/p99, runs, wall clock, events/sec) next to the human table.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace nlc::bench {

inline bool full_mode() {
  const char* v = std::getenv("NLC_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}

inline int runs(int quick_default = 3, int full_default = 10) {
  return env_int("NLC_BENCH_RUNS", full_mode() ? full_default
                                               : quick_default);
}

inline Time measure_seconds(int quick_default = 6, int full_default = 20) {
  return nlc::seconds(env_int("NLC_BENCH_SECONDS",
                              full_mode() ? full_default : quick_default));
}

inline Time batch_seconds(int quick_default = 3, int full_default = 10) {
  return nlc::seconds(env_int("NLC_BENCH_BATCH_SECS",
                              full_mode() ? full_default : quick_default));
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Percent with paper comparison: "31.4%  (paper: 31.8%)".
inline std::string pct_vs(double measured, double paper) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%6.2f%%  (paper: %6.2f%%)",
                measured * 100.0, paper * 100.0);
  return buf;
}

inline std::string ms_vs(double measured_ms, double paper_ms) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%8.2fms  (paper: %8.2fms)", measured_ms,
                paper_ms);
  return buf;
}

// ---- Parallel trial execution ---------------------------------------------

/// The bench binary's shared runner (NLC_JOBS workers). Aggregate
/// accounting across batches lives in the accumulators below.
inline harness::TrialRunner& runner() {
  static harness::TrialRunner r;
  return r;
}

struct SweepTotals {
  std::size_t trials = 0;
  double wall_seconds = 0;          // sum of batch wall clocks
  double serial_seconds = 0;        // sum of per-trial wall clocks
  std::uint64_t sim_events = 0;
};

inline SweepTotals& totals() {
  static SweepTotals t;
  return t;
}

/// Runs the given experiment configs as independent parallel trials and
/// returns the results in submission order. Every table/figure sweep goes
/// through here; determinism is preserved because parallelism is strictly
/// across Simulation instances.
inline std::vector<harness::RunResult> run_all(
    const std::vector<harness::RunConfig>& cfgs) {
  auto& r = runner();
  std::vector<harness::RunResult> out =
      r.run(cfgs.size(), [&cfgs](harness::TrialContext& ctx) {
        harness::RunResult res = harness::run_experiment(cfgs[ctx.index]);
        ctx.sim_events = res.sim_events;
        return res;
      });
  auto& t = totals();
  t.trials += cfgs.size();
  t.wall_seconds += r.batch_wall_seconds();
  t.serial_seconds += r.total_trial_seconds();
  t.sim_events += r.total_sim_events();
  return out;
}

/// Aggregate events/sec + parallel-speedup footer for the whole binary.
inline void footer() {
  const auto& t = totals();
  if (t.trials == 0) return;
  double evps = t.wall_seconds > 0
                    ? static_cast<double>(t.sim_events) / t.wall_seconds
                    : 0.0;
  std::printf("\n[runner] %zu trials on %d jobs: %.2fs wall "
              "(serial-equivalent %.2fs, %.2fx), %.2fM sim events, "
              "%.2fM events/sec\n",
              t.trials, runner().jobs(), t.wall_seconds, t.serial_seconds,
              t.wall_seconds > 0 ? t.serial_seconds / t.wall_seconds : 0.0,
              static_cast<double>(t.sim_events) / 1e6, evps / 1e6);
}

// ---- Machine-readable output (BENCH_<name>.json) --------------------------

/// Collects per-point statistics and writes BENCH_<name>.json in the
/// working directory: the repo's perf trajectory, one file per bench
/// binary, alongside the human tables.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// One data point from a Samples accumulator; the summary fields
  /// (mean/p50/p99/p999/count) come from Samples::summary_json so every
  /// bench emits identical statistics.
  void point(const std::string& label, const Samples& s) {
    points_.push_back({label, s.summary_json()});
  }

  /// One scalar data point (a single measured value).
  void point(const std::string& label, double value) {
    Samples s;
    s.add(value);
    point(label, s);
  }

  /// Extra top-level scalar (speedups, ratios, ...).
  void scalar(const std::string& key, double value) {
    scalars_.emplace_back(key, value);
  }

  /// Writes BENCH_<name>.json; returns false if the file can't be opened.
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const auto& t = totals();
    double evps = t.wall_seconds > 0
                      ? static_cast<double>(t.sim_events) / t.wall_seconds
                      : 0.0;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"runs\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"trials\": %zu,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"serial_equivalent_seconds\": %.3f,\n"
                 "  \"sim_events\": %llu,\n"
                 "  \"events_per_second\": %.0f,\n",
                 escaped(name_).c_str(), runs(), runner().jobs(), t.trials,
                 t.wall_seconds, t.serial_seconds,
                 static_cast<unsigned long long>(t.sim_events), evps);
    for (const auto& [k, v] : scalars_) {
      std::fprintf(f, "  \"%s\": %.6g,\n", escaped(k).c_str(), v);
    }
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const Point& p = points_[i];
      std::fprintf(f, "    {\"label\": \"%s\", %s}%s\n",
                   escaped(p.label).c_str(), p.summary.c_str(),
                   i + 1 < points_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Point {
    std::string label;
    std::string summary;  // Samples::summary_json() fragment
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<Point> points_;
  std::vector<std::pair<std::string, double>> scalars_;
};

}  // namespace nlc::bench
