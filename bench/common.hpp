// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and
// prints it next to the paper's published numbers. Durations/iterations
// default to CI-friendly values; set NLC_BENCH_FULL=1 for the paper-scale
// matrix (more runs, longer windows) or override individual knobs:
//   NLC_BENCH_RUNS        repetitions per data point
//   NLC_BENCH_SECONDS     measurement window (server benchmarks)
//   NLC_BENCH_BATCH_SECS  per-thread CPU quota (batch benchmarks)
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace nlc::bench {

inline bool full_mode() {
  const char* v = std::getenv("NLC_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}

inline int runs(int quick_default = 3, int full_default = 10) {
  return env_int("NLC_BENCH_RUNS", full_mode() ? full_default
                                               : quick_default);
}

inline Time measure_seconds(int quick_default = 6, int full_default = 20) {
  return nlc::seconds(env_int("NLC_BENCH_SECONDS",
                              full_mode() ? full_default : quick_default));
}

inline Time batch_seconds(int quick_default = 3, int full_default = 10) {
  return nlc::seconds(env_int("NLC_BENCH_BATCH_SECS",
                              full_mode() ? full_default : quick_default));
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Percent with paper comparison: "31.4%  (paper: 31.8%)".
inline std::string pct_vs(double measured, double paper) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%6.2f%%  (paper: %6.2f%%)",
                measured * 100.0, paper * 100.0);
  return buf;
}

inline std::string ms_vs(double measured_ms, double paper_ms) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%8.2fms  (paper: %8.2fms)", measured_ms,
                paper_ms);
  return buf;
}

}  // namespace nlc::bench
