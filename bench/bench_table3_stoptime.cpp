// Table III: average stop time and dirty pages per epoch, MC vs NiLiCon.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;
using harness::Mode;

struct PaperRow {
  double stop_mc_ms, stop_nil_ms;
  double dpages_mc, dpages_nil;
};
// Table III, column order of paper_benchmarks().
constexpr std::array<PaperRow, 7> kPaper = {{
    {2.4, 5.1, 212, 46},        // swaptions
    {3.0, 7.4, 462, 303},       // streamcluster
    {9.3, 18.9, 6200, 6300},    // redis
    {3.0, 10.4, 1107, 590},     // ssdb
    {9.4, 38.2, 6400, 5400},    // node
    {4.8, 25.0, 2900, 1600},    // lighttpd
    {4.5, 19.1, 2800, 3000},    // djcms
}};
}  // namespace

int main() {
  header("Table III: average stop time & dirty pages per epoch",
         "NiLiCon paper, Table III");
  std::printf("%-14s | %-26s | %-26s | %-22s | %-22s\n", "benchmark",
              "stop MC (paper)", "stop NiLiCon (paper)", "dpages MC (paper)",
              "dpages NiLiCon (paper)");
  std::printf("--------------------------------------------------------------"
              "--------------------------------------------------\n");

  auto specs = apps::paper_benchmarks();
  std::vector<harness::RunConfig> cfgs;
  for (const auto& spec : specs) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.measure = measure_seconds();
    cfg.batch_work = batch_seconds();
    cfg.mode = Mode::kNiLiCon;
    cfgs.push_back(cfg);
    cfg.mode = Mode::kMc;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("table3_stoptime");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& nil = rs[i * 2];
    const auto& mc = rs[i * 2 + 1];
    json.point(specs[i].name + "_stop_ms_nilicon", nil.metrics.stop_time_ms);
    json.point(specs[i].name + "_stop_ms_mc", mc.metrics.stop_time_ms);
    std::printf("%-14s | %7.1fms (%5.1fms)      | %7.1fms (%5.1fms)      | "
                "%7.0f (%6.0f)      | %7.0f (%6.0f)\n",
                specs[i].name.c_str(), mc.metrics.stop_time_ms.mean(),
                kPaper[i].stop_mc_ms, nil.metrics.stop_time_ms.mean(),
                kPaper[i].stop_nil_ms, mc.metrics.dirty_pages.mean(),
                kPaper[i].dpages_mc, nil.metrics.dirty_pages.mean(),
                kPaper[i].dpages_nil);
  }
  std::printf("\nShape check: NiLiCon stop time exceeds MC's everywhere (the\n"
              "slow in-kernel state interfaces, §V); MC usually dirties more\n"
              "pages (guest kernel activity).\n");
  footer();
  json.write();
  return 0;
}
