// Ablation of NiLiCon mechanisms outside Table I's performance staircase:
//
//  * §V-E RTO clamp: recovery latency with the 2-line kernel change vs the
//    stock >= 1s repaired-socket timeout;
//  * §III recovery-time input blocking: connection survival with vs
//    without it (without it, packets arriving between netns and socket
//    restore draw RSTs);
//  * §III DNC file-system-cache handling vs stock CRIU's flush-to-NAS:
//    per-epoch stop cost on a disk-intensive workload.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

harness::RunConfig fault_cfg(const apps::AppSpec& spec, core::Options opts,
                             std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.spec = spec;
  cfg.mode = harness::Mode::kNiLiCon;
  cfg.nilicon = opts;
  cfg.measure = nlc::seconds(5);
  cfg.inject_fault = true;
  cfg.kv_validation = spec.kv_pages > 0;
  cfg.client_connections = 4;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  header("Ablation: RTO clamp, recovery input blocking, DNC fs-cache",
         "NiLiCon paper §III / §V-E (design-choice ablations)");

  // ---- §V-E: repaired-socket RTO ------------------------------------------
  {
    apps::AppSpec spec = apps::netecho_spec();
    Samples with_fix, without_fix;
    std::vector<harness::RunConfig> cfgs;
    for (int i = 0; i < runs(3, 8); ++i) {
      core::Options opts;
      opts.rto_repair_fix = true;
      cfgs.push_back(fault_cfg(spec, opts, 100 + static_cast<std::uint64_t>(i)));
      opts.rto_repair_fix = false;
      cfgs.push_back(fault_cfg(spec, opts, 100 + static_cast<std::uint64_t>(i)));
    }
    auto rs = run_all(cfgs);
    for (std::size_t i = 0; i < rs.size(); i += 2) {
      const auto& a = rs[i];
      const auto& b = rs[i + 1];
      if (a.recovered && a.interruption > 0) {
        with_fix.add(to_millis(a.interruption));
      }
      if (b.recovered && b.interruption > 0) {
        without_fix.add(to_millis(b.interruption));
      }
    }
    std::printf("repaired-socket RTO clamp (§V-E):\n");
    std::printf("  with fix (200ms RTO):    interruption %7.0fms mean\n",
                with_fix.empty() ? 0.0 : with_fix.mean());
    std::printf("  without (>=1s RTO):      interruption %7.0fms mean\n",
                without_fix.empty() ? 0.0 : without_fix.mean());
    std::printf("  expected: several hundred ms saved by the 2-line change\n\n");
  }

  // ---- §III: input blocking during recovery --------------------------------
  {
    apps::AppSpec spec = apps::netecho_spec();
    spec.kv_pages = 256;
    int broken_with = 0, broken_without = 0, n = runs(3, 8);
    std::vector<harness::RunConfig> cfgs;
    for (int i = 0; i < n; ++i) {
      core::Options opts;
      opts.block_input_during_recovery = true;
      cfgs.push_back(fault_cfg(spec, opts, 200 + static_cast<std::uint64_t>(i)));
      opts.block_input_during_recovery = false;
      cfgs.push_back(fault_cfg(spec, opts, 200 + static_cast<std::uint64_t>(i)));
    }
    auto rs = run_all(cfgs);
    for (std::size_t i = 0; i < rs.size(); i += 2) {
      broken_with += rs[i].broken_connections > 0;
      broken_without += rs[i + 1].broken_connections > 0;
    }
    std::printf("input blocking during recovery (§III):\n");
    std::printf("  blocked:   %d/%d trials broke a connection\n",
                broken_with, n);
    std::printf("  unblocked: %d/%d trials broke a connection (RST in the\n"
                "             netns-up/socket-missing window)\n\n",
                broken_without, n);
  }

  // ---- §III: DNC vs flush-to-NAS -------------------------------------------
  {
    apps::AppSpec spec = apps::ssdb_spec();  // disk-intensive
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.measure = measure_seconds();
    std::vector<harness::RunConfig> cfgs;
    cfgs.push_back(cfg);
    cfg.nilicon.fs_cache_via_dnc = false;
    cfgs.push_back(cfg);
    auto rs = run_all(cfgs);
    const auto& dnc = rs[0];
    const auto& nas = rs[1];
    std::printf("file-system-cache handling on ssdb (§III):\n");
    std::printf("  DNC + fgetfc:   stop %6.1fms/epoch\n",
                dnc.metrics.stop_time_ms.mean());
    std::printf("  flush to NAS:   stop %6.1fms/epoch\n",
                nas.metrics.stop_time_ms.mean());
    std::printf("  expected: the NAS flush adds tens of ms per epoch on\n"
                "  disk-intensive workloads (the paper calls it prohibitive)\n");
  }
  footer();
  BenchJson("ablation_mechanisms").write();
  return 0;
}
