// N-way quorum replication cost/benefit (DESIGN.md §16).
//
// Sweeps replica count N in {1, 2, 3} over both wiring topologies and
// reports what replication breadth costs on the three axes the design
// argues about:
//
//   wire bytes  — fan-out copies on the replication fabric (star pays
//                 N copies at the primary NIC; chain pays per-hop);
//   commit      — client-visible epoch commit latency, p50/p99 (quorum
//                 K = majority: the K-th fastest replica sets the pace);
//   failover    — client-observed interruption through a primary crash,
//                 plus the winner's re-silver transfer for N = 3.
//
// Gates (default ctest, label bench-smoke):
//   * N = 1 star is the seed engine: throughput and mean commit latency
//     within 3% of a default-Options run (the wiring is byte-identical;
//     3% absorbs nothing but timer noise across compilers);
//   * N = 3 star ships >= 2.5x the wire bytes of N = 1 (the fan-out is
//     real, not accounting fiction);
//   * every fault row fails over with zero KV errors.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace nlc;

double commit_mean(const harness::RunResult& r) {
  return r.metrics.commit_latency_ms.empty()
             ? 0.0
             : r.metrics.commit_latency_ms.mean();
}

double fanout_bytes(const harness::RunResult& r) {
  return static_cast<double>(r.metrics.wire_bytes_fanout);
}

}  // namespace

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Quorum replication: N x topology cost sweep",
         "beyond the paper: NiLiCon two-host testbed -> N-way quorum, "
         "DESIGN.md §16");

  apps::AppSpec spec = apps::netecho_spec();
  spec.kv_pages = 256;

  auto base_cfg = [&](int replicas, topo::Topology t) {
    harness::RunConfig c;
    c.spec = spec;
    c.mode = harness::Mode::kNiLiCon;
    c.measure = measure_seconds();
    c.warmup = nlc::milliseconds(500);
    if (replicas > 1) {
      c.nilicon.replicas = replicas;
      c.nilicon.quorum_k = 0;  // majority
      c.nilicon.topology = t;
    }
    return c;
  };

  struct Row {
    std::string label;
    int replicas;
    topo::Topology topology;
    bool fault;
  };
  std::vector<Row> rows = {
      {"seed-baseline", 0, topo::Topology::kStar, false},
      {"N1/star", 1, topo::Topology::kStar, false},
      {"N2/star", 2, topo::Topology::kStar, false},
      {"N3/star", 3, topo::Topology::kStar, false},
      {"N2/chain", 2, topo::Topology::kChain, false},
      {"N3/chain", 3, topo::Topology::kChain, false},
      {"fault/N1/star", 1, topo::Topology::kStar, true},
      {"fault/N3/star", 3, topo::Topology::kStar, true},
      {"fault/N3/chain", 3, topo::Topology::kChain, true},
  };

  std::vector<harness::RunConfig> cfgs;
  for (const Row& row : rows) {
    harness::RunConfig c = base_cfg(row.replicas, row.topology);
    if (row.replicas == 1) {
      // Explicit degenerate configuration (vs the baseline's defaults).
      c.nilicon.replicas = 1;
      c.nilicon.quorum_k = 1;
      c.nilicon.topology = row.topology;
    }
    if (row.fault) {
      c.inject_fault = true;
      c.kv_validation = true;
      c.client_connections = 3;
      c.seed = 29;
    }
    cfgs.push_back(c);
  }
  std::vector<harness::RunResult> results = run_all(cfgs);

  BenchJson json("quorum");
  std::printf("%-16s %12s %12s %12s %12s %10s\n", "config", "wire MB",
              "commit p50", "commit p99", "failover ms", "resilver");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const harness::RunResult& r = results[i];
    const double p50 = r.metrics.commit_latency_ms.empty()
                           ? 0.0
                           : r.metrics.commit_latency_ms.percentile(50);
    const double p99v = r.metrics.commit_latency_ms.empty()
                            ? 0.0
                            : r.metrics.commit_latency_ms.percentile(99);
    char failover[32] = "-";
    char resilver[32] = "-";
    if (row.fault) {
      std::snprintf(failover, sizeof failover, "%.0f",
                    to_millis(r.interruption));
      std::snprintf(resilver, sizeof resilver, "%llux/%.1fms",
                    static_cast<unsigned long long>(
                        r.recovery.replicas_resilvered),
                    to_millis(r.recovery.resilver_time));
    }
    bench::row("%-16s %12.2f %10.2fms %10.2fms %12s %10s", row.label.c_str(),
               fanout_bytes(r) / 1e6, p50, p99v, failover, resilver);
    json.point(row.label + "/commit_ms", r.metrics.commit_latency_ms);
    json.scalar(row.label + "/wire_bytes_fanout", fanout_bytes(r));
    json.scalar(row.label + "/throughput_rps", r.throughput_rps);
    if (row.fault) {
      json.scalar(row.label + "/interruption_ms", to_millis(r.interruption));
    }
  }

  bool ok = true;
  const harness::RunResult& base = results[0];
  const harness::RunResult& n1 = results[1];
  const harness::RunResult& n3star = results[3];

  // N = 1 must BE the seed engine (same wiring, same decisions).
  if (base.throughput_rps > 0 &&
      std::abs(n1.throughput_rps - base.throughput_rps) >
          0.03 * base.throughput_rps) {
    std::printf("GATE FAIL: N=1 throughput %.1f rps deviates > 3%% from "
                "seed baseline %.1f rps\n",
                n1.throughput_rps, base.throughput_rps);
    ok = false;
  }
  if (commit_mean(base) > 0 &&
      std::abs(commit_mean(n1) - commit_mean(base)) >
          0.03 * commit_mean(base)) {
    std::printf("GATE FAIL: N=1 commit latency %.3fms deviates > 3%% from "
                "seed baseline %.3fms\n",
                commit_mean(n1), commit_mean(base));
    ok = false;
  }
  json.scalar("n1_vs_seed_throughput_ratio",
              base.throughput_rps > 0
                  ? n1.throughput_rps / base.throughput_rps
                  : 0.0);

  // The star fan-out must actually hit the wire.
  const double fan_ratio =
      fanout_bytes(n1) > 0 ? fanout_bytes(n3star) / fanout_bytes(n1) : 0.0;
  if (fan_ratio < 2.5) {
    std::printf("GATE FAIL: N=3 star wire fan-out %.2fx < 2.5x N=1\n",
                fan_ratio);
    ok = false;
  }
  json.scalar("n3_star_fanout_ratio", fan_ratio);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].fault) continue;
    const harness::RunResult& r = results[i];
    if (!r.fault_injected || !r.recovered || r.kv_errors != 0) {
      std::printf("GATE FAIL: %s fault row recovered=%d kv_errors=%llu\n",
                  rows[i].label.c_str(), r.recovered ? 1 : 0,
                  static_cast<unsigned long long>(r.kv_errors));
      ok = false;
    }
  }

  std::printf("\nStar pays N wire copies at the primary NIC for the\n"
              "shortest commit path; chain trades commit latency at the\n"
              "tail for per-hop bandwidth. The quorum keeps the client\n"
              "pinned to the K-th fastest replica either way, and a\n"
              "primary crash promotes the most caught-up survivor.\n");
  footer();
  json.write();
  if (!ok) {
    std::printf("\nBENCH GATES FAILED\n");
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
