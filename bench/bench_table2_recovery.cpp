// Table II: recovery latency breakdown (Restore / ARP / TCP / Others) for
// the Net echo microbenchmark and for Redis with ~100MB of uploaded state.
//
// Method (§VII-B): probe clients continuously send single requests; the
// fault is injected mid-run; the service interruption is the probe's
// latency spike over its pre-fault median. Detection (~90ms, 3 x 30ms
// beats) is subtracted; Restore/ARP/Others come from the recovery driver's
// instrumentation and TCP is the residual retransmission wait.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct PaperRow {
  double restore, arp, tcp, others, total;
};

void run_case(const char* label, const apps::AppSpec& spec_in,
              std::uint64_t prefill_pages, const PaperRow& paper,
              BenchJson& json) {
  Samples restore_ms, arp_ms, tcp_ms, others_ms, total_ms;
  int n = runs(3, 10);
  // §VII-B setup: one light stress stream (~30% CPU) plus single-request
  // probes — not the saturation dirtying profile. The committed page set
  // is the uploaded data plus a modest working set.
  apps::AppSpec spec = spec_in;
  if (spec.kv_pages > 0) {
    spec.kv_writes_per_request = 40;
    spec.pages_per_request = 30;
  }
  std::vector<harness::RunConfig> cfgs;
  for (int i = 0; i < n; ++i) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.client_connections = 4;  // the §VII-B probe set
    cfg.client_pipeline = 1;     // single get/set per probe at a time
    cfg.measure = nlc::seconds(6);
    cfg.inject_fault = true;
    cfg.prefill_kv_pages = prefill_pages;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfgs.push_back(cfg);
  }
  for (const auto& r : run_all(cfgs)) {
    if (!r.recovered || r.interruption <= 0) continue;

    double interruption = to_millis(r.interruption);
    double detect = to_millis(r.recovery.detection_latency);
    double total = interruption - detect;
    double restore = to_millis(r.recovery.restore_time);
    double arp = to_millis(r.recovery.arp_time);
    double others = to_millis(r.recovery.misc_time);
    double tcp = total - restore - arp - others;
    if (tcp < 0) tcp = 0;
    restore_ms.add(restore);
    arp_ms.add(arp);
    tcp_ms.add(tcp);
    others_ms.add(others);
    total_ms.add(total);
  }
  if (total_ms.empty()) {
    std::printf("%-6s | no successful recovery samples\n", label);
    return;
  }
  json.point(std::string(label) + "_restore_ms", restore_ms);
  json.point(std::string(label) + "_total_ms", total_ms);
  std::printf("%-6s | %6.0fms (%3.0f) | %4.0fms (%2.0f) | %5.0fms (%2.0f) | "
              "%4.0fms (%1.0f) | %6.0fms (%3.0f)\n",
              label, restore_ms.mean(), paper.restore, arp_ms.mean(),
              paper.arp, tcp_ms.mean(), paper.tcp, others_ms.mean(),
              paper.others, total_ms.mean(), paper.total);
}

}  // namespace

int main() {
  header("Table II: recovery latency breakdown", "NiLiCon paper, Table II");
  std::printf("%-6s | %-15s | %-13s | %-14s | %-13s | %-15s\n", "", "Restore",
              "ARP", "TCP", "Others", "Total");
  std::printf("--------------------------------------------------------------"
              "--------------\n");
  BenchJson json("table2_recovery");
  run_case("Net", apps::netecho_spec(), 0, {218, 28, 54, 7, 307}, json);
  // Redis with ~100MB uploaded: 25600 pre-filled record pages.
  apps::AppSpec redis = apps::redis_spec();
  run_case("Redis", redis, 25'600, {314, 28, 23, 7, 372}, json);
  std::printf("\nDetection latency (~90ms) is measured separately and\n"
              "subtracted, as in the paper.\n");
  footer();
  json.write();
  return 0;
}
