// Epoch-length sweep: the tradeoff behind the paper's 30 ms choice (§II-A:
// "Due to this delay, in order to support client-server applications, the
// checkpointing interval is short — tens of milliseconds").
//
// Longer epochs amortize the per-checkpoint stop cost (lower throughput
// overhead) but every response waits for its epoch to commit (higher
// client latency). The sweep shows both curves on a request-bound echo
// service and a CPU-bound batch job.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Epoch-length sweep: overhead vs response latency",
         "NiLiCon paper §II-A (design rationale for 30ms epochs)");

  std::printf("%-10s | %-22s | %-22s | %-14s\n", "epoch", "echo latency",
              "batch overhead", "stop/epoch");
  std::printf("--------------------------------------------------------------"
              "--------\n");

  // One batch: the shared stock baseline plus, per epoch length, the
  // interactive latency probe and the protected batch run.
  const int points[] = {10, 20, 30, 60, 120, 240};
  std::vector<harness::RunConfig> cfgs;
  {
    harness::RunConfig batch;
    batch.spec = apps::streamcluster_spec();
    batch.mode = harness::Mode::kStock;
    batch.batch_work = batch_seconds();
    cfgs.push_back(batch);
  }
  for (int epoch_ms : points) {
    harness::RunConfig echo;
    echo.spec = apps::netecho_spec();
    echo.mode = harness::Mode::kNiLiCon;
    echo.nilicon.epoch_length = nlc::milliseconds(epoch_ms);
    echo.measure = nlc::seconds(4);
    echo.client_connections = 1;
    cfgs.push_back(echo);

    harness::RunConfig batch;
    batch.spec = apps::streamcluster_spec();
    batch.mode = harness::Mode::kNiLiCon;
    batch.nilicon.epoch_length = nlc::milliseconds(epoch_ms);
    batch.batch_work = batch_seconds();
    cfgs.push_back(batch);
  }
  auto rs = run_all(cfgs);

  BenchJson json("epoch_sweep");
  const auto& stock = rs[0];
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const auto& e = rs[1 + i * 2];
    const auto& b = rs[2 + i * 2];
    double overhead = static_cast<double>(b.batch_runtime) /
                          static_cast<double>(stock.batch_runtime) -
                      1.0;
    json.point("latency_ms_epoch_" + std::to_string(points[i]),
               e.mean_latency_ms);
    json.point("overhead_epoch_" + std::to_string(points[i]), overhead);

    std::printf("%6dms   | %12.1fms       | %12.1f%%       | %8.2fms\n",
                points[i], e.mean_latency_ms, overhead * 100.0,
                b.metrics.stop_time_ms.empty()
                    ? 0.0
                    : b.metrics.stop_time_ms.mean());
  }
  std::printf("\nShape check: latency grows ~linearly with the epoch (the\n"
              "output-commit delay); batch overhead falls as the per-epoch\n"
              "stop cost amortizes — tens of ms is the sweet spot for\n"
              "client-server applications.\n");
  footer();
  json.write();
  return 0;
}
