// Adaptive epoch controller vs the paper's fixed 30 ms (DESIGN.md §15).
//
// The paper pins every epoch at 30 ms (§II-A): short enough that the
// output-commit delay stays tolerable, long enough to amortize the stop
// cost. core::EpochController replaces the constant with a feedback loop,
// and this bench gates both of its promised wins against fixed-30ms
// baselines, per commit mode:
//
//   Epoch commit, single client (the Table VI frame, where the commit
//   cadence owns the response tail): p99 must improve on at least two
//   request-response apps and regress on none — the drain/busy shrink
//   gates must hold the capacity-bound apps exactly neutral.
//
//   Replay commit (latency decoupled from epoch length): the controller
//   stretches epochs toward the 2 s target, and dirty-set saturation must
//   cut the steady-state page wire rate >= 3x on the working-set-locality
//   apps at equal (±5%) p99, with stop time still inside the budget and
//   failover replay still inside 2x the recovery budget (fault rows).
//
// Steady-state figures use the measurement-window accounting
// (wire_bytes_window, latencies_window_ms): whole-run metrics include the
// adaptive ramp, which would dilute the wire rate and own the p99 tail.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace nlc;

/// Steady-state page wire rate, bytes per simulated second. Normalized per
/// epoch first: the window boundary can split an epoch, and at second-scale
/// lengths that jitter would be a ±25% error on a plain bytes/window rate.
double wire_rate(const harness::RunResult& r) {
  if (r.epochs_window == 0 || r.metrics.ctl_final_epoch_len == 0) return 0.0;
  double per_epoch = static_cast<double>(r.wire_bytes_window) /
                     static_cast<double>(r.epochs_window);
  return per_epoch * 1e9 / static_cast<double>(r.metrics.ctl_final_epoch_len);
}

/// Page wire bytes per completed request — the gated efficiency unit.
/// Long epochs cut the per-second wire rate AND raise throughput (fewer
/// pauses stretch less service time), so a per-second ratio undercounts
/// the win exactly on the apps where it is largest; per-request charges
/// both configurations for the work they actually served.
double wire_per_request(const harness::RunResult& r, Time window) {
  if (r.latencies_window_ms.empty()) return 0.0;
  // Numerator: the per-epoch-normalized steady rate (raw window bytes
  // carry a ±1-epoch boundary jitter at second-scale lengths). Denominator:
  // requests sent inside the same window (requests_completed also counts
  // the post-window drain, which skews second-scale service times).
  const double req_rate = static_cast<double>(r.latencies_window_ms.count()) *
                          1e9 / static_cast<double>(window);
  return wire_rate(r) / req_rate;
}

double p99(const harness::RunResult& r) {
  return r.latencies_window_ms.empty() ? 0.0
                                       : r.latencies_window_ms.percentile(99);
}

}  // namespace

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Adaptive epoch control vs fixed 30ms (both commit modes)",
         "beyond the paper: NiLiCon §II-A fixed-epoch rationale, DESIGN.md §15");

  struct AppRow {
    const char* name;
    apps::AppSpec spec;
    /// Working-set locality: dirty set saturates with epoch length, so the
    /// replay-mode wire gate applies. The excluded app (node) is
    /// stop-budget-bound — its fixed-30ms stop already sits at the budget,
    /// so the controller correctly refuses to stretch it.
    bool locality;
  };
  const std::vector<AppRow> apps_rows = {
      {"netecho", apps::netecho_spec(), true},
      {"node", apps::node_spec(), false},
      {"lighttpd", apps::lighttpd_spec(), true},
      {"djcms", apps::djcms_spec(), true},
  };

  const Time epoch_measure = measure_seconds();
  // Replay rows: the ramp to the 2 s target takes ~6 s of doubling steps,
  // so warmup covers it and the (longer) window then holds only
  // final-length epochs.
  const Time replay_warmup = nlc::seconds(8);
  const Time replay_measure = 4 * measure_seconds();

  // Per app: epoch fixed/adaptive (1 client), replay fixed/adaptive
  // (saturation clients), replay-adaptive fault probe. 5 rows.
  std::vector<harness::RunConfig> cfgs;
  for (const auto& a : apps_rows) {
    for (int adaptive = 0; adaptive < 2; ++adaptive) {
      harness::RunConfig c;
      c.spec = a.spec;
      c.mode = harness::Mode::kNiLiCon;
      c.nilicon.commit_mode = core::CommitMode::kEpoch;
      c.nilicon.epoch_policy = adaptive ? core::EpochPolicy::kAdaptive
                                        : core::EpochPolicy::kFixed;
      c.client_connections = 1;
      c.warmup = nlc::seconds(1);
      c.measure = epoch_measure;
      cfgs.push_back(c);
    }
    for (int row = 0; row < 3; ++row) {  // fixed, adaptive, adaptive+fault
      harness::RunConfig c;
      c.spec = a.spec;
      c.mode = harness::Mode::kNiLiCon;
      c.nilicon.commit_mode = core::CommitMode::kReplay;
      c.nilicon.epoch_policy = row >= 1 ? core::EpochPolicy::kAdaptive
                                        : core::EpochPolicy::kFixed;
      c.warmup = replay_warmup;
      c.measure = replay_measure;
      c.inject_fault = row == 2;
      cfgs.push_back(c);
    }
  }
  auto rs = run_all(cfgs);

  BenchJson json("epoch_adaptive");
  bool ok = true;
  int epoch_improved = 0;

  std::printf("%-9s | %-26s | %-30s | %-20s\n",
              "app", "epoch-commit p99 (1 client)", "replay wire rate (steady)",
              "replay p99 / stop");
  std::printf("---------------------------------------------------------------"
              "-----------------------------\n");

  const double stop_budget_ms = to_millis(core::Options{}.stop_budget);
  for (std::size_t i = 0; i < apps_rows.size(); ++i) {
    const auto& a = apps_rows[i];
    const auto& ef = rs[i * 5 + 0];  // epoch commit, fixed
    const auto& ea = rs[i * 5 + 1];  // epoch commit, adaptive
    const auto& rf = rs[i * 5 + 2];  // replay commit, fixed
    const auto& ra = rs[i * 5 + 3];  // replay commit, adaptive
    const auto& rx = rs[i * 5 + 4];  // replay commit, adaptive, fault

    const std::string app = a.name;
    json.point(app + "_epoch_fixed_ms", ef.latencies_window_ms);
    json.point(app + "_epoch_adaptive_ms", ea.latencies_window_ms);
    json.point(app + "_replay_fixed_ms", rf.latencies_window_ms);
    json.point(app + "_replay_adaptive_ms", ra.latencies_window_ms);
    json.scalar(app + "_epoch_adaptive_final_ms",
                to_millis(ea.metrics.ctl_final_epoch_len));
    json.scalar(app + "_replay_adaptive_final_ms",
                to_millis(ra.metrics.ctl_final_epoch_len));
    const double rate_f = wire_rate(rf);
    const double rate_a = wire_rate(ra);
    const double wpr_f = wire_per_request(rf, replay_measure);
    const double wpr_a = wire_per_request(ra, replay_measure);
    const double ratio = wpr_a > 0 ? wpr_f / wpr_a : 0.0;
    json.scalar(app + "_replay_wire_rate_fixed_mbs", rate_f / 1e6);
    json.scalar(app + "_replay_wire_rate_adaptive_mbs", rate_a / 1e6);
    json.scalar(app + "_replay_wire_ratio", ratio);
    json.scalar(app + "_replay_retained_peak_bytes",
                static_cast<double>(ra.metrics.log_retained_bytes_peak));
    json.scalar(app + "_replay_stop_ms", ra.metrics.stop_time_ms.empty()
                                             ? 0.0
                                             : ra.metrics.stop_time_ms.mean());
    json.scalar(app + "_fault_replay_ms", to_millis(rx.recovery.replay_time));
    json.scalar(app + "_fault_unavail_ms",
                to_millis(rx.recovery.total_unavailability));

    std::printf("%-9s | %8.1f -> %8.1fms       | %7.2f -> %7.2f MB/s %5.2fx/req"
                " | %6.1fms %6.1fms\n",
                a.name, p99(ef), p99(ea), rate_f / 1e6, rate_a / 1e6, ratio,
                p99(ra),
                ra.metrics.stop_time_ms.empty()
                    ? 0.0
                    : ra.metrics.stop_time_ms.mean());

    // ---- Gates --------------------------------------------------------------
    // Epoch commit: adaptive must never regress p99 past 5%; count the
    // apps it strictly improves (>3% to stay off measurement noise).
    if (p99(ef) > 0 && p99(ea) > 1.05 * p99(ef)) {
      std::printf("GATE FAIL: %s epoch-commit p99 regressed %.1f -> %.1fms\n",
                  a.name, p99(ef), p99(ea));
      ok = false;
    }
    if (p99(ef) > 0 && p99(ea) < 0.97 * p99(ef)) ++epoch_improved;

    // Adaptive stop time must respect the controller's budget in both
    // modes (whole-run mean, which includes the small ramp epochs).
    for (const auto* r : {&ea, &ra}) {
      if (!r->metrics.stop_time_ms.empty() &&
          r->metrics.stop_time_ms.mean() > stop_budget_ms) {
        std::printf("GATE FAIL: %s adaptive stop %.2fms > budget %.0fms\n",
                    a.name, r->metrics.stop_time_ms.mean(), stop_budget_ms);
        ok = false;
      }
    }

    // Replay commit on locality apps: the headline wire win at equal p99.
    if (a.locality) {
      if (ratio < 3.0) {
        std::printf("GATE FAIL: %s replay wire bytes/request ratio %.2fx "
                    "< 3.0x\n",
                    a.name, ratio);
        ok = false;
      }
      if (p99(rf) > 0 && p99(ra) > 1.05 * p99(rf)) {
        std::printf("GATE FAIL: %s replay p99 %.1fms > 1.05x fixed %.1fms\n",
                    a.name, p99(ra), p99(rf));
        ok = false;
      }
      // Long epochs only pay if checkpoint-commit truncation keeps the
      // backup's retained log bounded (segments must actually be pruned).
      if (ra.metrics.log_pruned_segments == 0) {
        std::printf("GATE FAIL: %s replay run pruned no log segments\n",
                    a.name);
        ok = false;
      }
      if (ra.metrics.log_retained_bytes_peak >
          core::Options{}.log_retained_budget) {
        std::printf("GATE FAIL: %s retained log peak %llu > budget %llu\n",
                    a.name,
                    static_cast<unsigned long long>(
                        ra.metrics.log_retained_bytes_peak),
                    static_cast<unsigned long long>(
                        core::Options{}.log_retained_budget));
        ok = false;
      }
    }

    // Fault probe: mid-adaptation failover must recover, with the log
    // replay inside 2x the recovery budget the controller planned for.
    if (!rx.fault_injected || !rx.recovered) {
      std::printf("GATE FAIL: %s fault row did not recover\n", a.name);
      ok = false;
    } else if (rx.recovery.replay_time > 2 * core::Options{}.replay_budget) {
      std::printf("GATE FAIL: %s failover replay %.1fms > 2x budget %.1fms\n",
                  a.name, to_millis(rx.recovery.replay_time),
                  to_millis(core::Options{}.replay_budget));
      ok = false;
    }
  }

  if (epoch_improved < 2) {
    std::printf("GATE FAIL: epoch-commit p99 improved on %d apps (< 2)\n",
                epoch_improved);
    ok = false;
  }
  json.scalar("epoch_p99_improved_apps", epoch_improved);

  std::printf("\nEpoch commit: the controller shrinks into idle headroom on\n"
              "request-response apps (p99 tracks the commit cadence) and the\n"
              "drain/busy gates hold capacity-bound apps at the baseline.\n"
              "Replay commit: epochs stretch to the 2s target and dirty-set\n"
              "saturation cuts the steady page wire rate >= 3x on the\n"
              "locality apps, with the retained event log truncated on every\n"
              "checkpoint commit and failover replay inside budget.\n");
  footer();
  json.write();
  if (!ok) {
    std::printf("\nBENCH GATES FAILED\n");
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
