// Epoch-length sweep: the tradeoff behind the paper's 30 ms choice (§II-A:
// "Due to this delay, in order to support client-server applications, the
// checkpointing interval is short — tens of milliseconds").
//
// Longer epochs amortize the per-checkpoint stop cost (lower throughput
// overhead) but every response waits for its epoch to commit (higher
// client latency). The sweep shows both curves on a request-bound echo
// service and a CPU-bound batch job.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Epoch-length sweep: overhead vs response latency",
         "NiLiCon paper §II-A (design rationale for 30ms epochs)");

  std::printf("%-10s | %-22s | %-22s | %-14s\n", "epoch", "echo latency",
              "batch overhead", "stop/epoch");
  std::printf("--------------------------------------------------------------"
              "--------\n");

  for (int epoch_ms : {10, 20, 30, 60, 120, 240}) {
    // Interactive latency probe.
    harness::RunConfig echo;
    echo.spec = apps::netecho_spec();
    echo.mode = harness::Mode::kNiLiCon;
    echo.nilicon.epoch_length = nlc::milliseconds(epoch_ms);
    echo.measure = nlc::seconds(4);
    echo.client_connections = 1;
    auto e = harness::run_experiment(echo);

    // Batch overhead at the same epoch length.
    harness::RunConfig batch;
    batch.spec = apps::streamcluster_spec();
    batch.mode = harness::Mode::kStock;
    batch.batch_work = batch_seconds();
    auto stock = harness::run_experiment(batch);
    batch.mode = harness::Mode::kNiLiCon;
    batch.nilicon.epoch_length = nlc::milliseconds(epoch_ms);
    auto b = harness::run_experiment(batch);
    double overhead = static_cast<double>(b.batch_runtime) /
                          static_cast<double>(stock.batch_runtime) -
                      1.0;

    std::printf("%6dms   | %12.1fms       | %12.1f%%       | %8.2fms\n",
                epoch_ms, e.mean_latency_ms, overhead * 100.0,
                b.metrics.stop_time_ms.empty()
                    ? 0.0
                    : b.metrics.stop_time_ms.mean());
  }
  std::printf("\nShape check: latency grows ~linearly with the epoch (the\n"
              "output-commit delay); batch overhead falls as the per-epoch\n"
              "stop cost amortizes — tens of ms is the sweet spot for\n"
              "client-server applications.\n");
  return 0;
}
