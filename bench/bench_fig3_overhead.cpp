// Figure 3: performance overhead of NiLiCon vs MC across the seven
// benchmarks, split into runtime overhead and stopped overhead.
//
// Overhead definitions (§VII-C): non-interactive benchmarks report the
// relative increase in execution time; server benchmarks report the
// relative reduction in maximum (saturated) throughput. The stopped
// component is reconstructed from the measured mean stop time per epoch;
// the runtime component is the remainder.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace nlc;
using namespace nlc::bench;
using harness::Mode;
using harness::RunConfig;
using harness::RunResult;

struct PaperPoint {
  double nilicon;
  double mc;
};

// Figure 3 values; assignment documented in DESIGN.md §6 (bar-label
// ambiguity resolved against the abstract's 19-67% NiLiCon range and
// Table I's 31% for streamcluster).
constexpr std::array<PaperPoint, 7> kPaper = {{
    {0.1948, 0.1254},  // swaptions
    {0.3183, 0.2596},  // streamcluster
    {0.3371, 0.3244},  // redis
    {0.3767, 0.3018},  // ssdb
    {0.6732, 0.7185},  // node
    {0.5832, 0.3897},  // lighttpd
    {0.5467, 0.5266},  // djcms
}};

struct Point {
  double overhead = 0;
  double stopped = 0;
  double runtime = 0;
};

RunConfig make_cfg(const apps::AppSpec& spec, Mode mode) {
  RunConfig cfg;
  cfg.spec = spec;
  cfg.mode = mode;
  cfg.measure = measure_seconds();
  cfg.batch_work = batch_seconds();
  return cfg;
}

Point score(const apps::AppSpec& spec, const RunResult& r,
            double stock_metric) {
  Point p;
  if (spec.interactive) {
    p.overhead = 1.0 - r.throughput_rps / stock_metric;
  } else {
    p.overhead = to_seconds(r.batch_runtime) / stock_metric - 1.0;
  }
  // Stopped overhead: fraction of wall time the container spent paused.
  double epoch_s = to_seconds(nlc::milliseconds(30));
  double stop_s = r.metrics.stop_time_ms.empty()
                      ? 0.0
                      : r.metrics.stop_time_ms.mean() / 1e3;
  p.stopped = stop_s / (epoch_s + stop_s);
  if (p.stopped > p.overhead) p.stopped = p.overhead;
  p.runtime = p.overhead - p.stopped;
  return p;
}

}  // namespace

int main() {
  header("Figure 3: performance overhead, NiLiCon vs MC (runtime + stopped)",
         "NiLiCon paper, Figure 3");

  auto specs = apps::paper_benchmarks();
  std::printf("%-14s | %-34s | %-34s\n", "benchmark", "NiLiCon overhead",
              "MC overhead");
  std::printf("%-14s | %-17s %-16s | %-17s %-16s\n", "", "total(paper)",
              "run/stop split", "total(paper)", "run/stop split");
  std::printf("---------------------------------------------------------"
              "---------------------------\n");

  // The full matrix — 7 benchmarks x {stock, NiLiCon-epoch, MC,
  // NiLiCon-replay} — in one parallel batch; each cell is an independent
  // simulation. The replay column also exposes the two wire streams
  // (page delta vs event log), accounted separately end to end.
  std::vector<RunConfig> cfgs;
  for (const auto& spec : specs) {
    cfgs.push_back(make_cfg(spec, Mode::kStock));
    cfgs.push_back(make_cfg(spec, Mode::kNiLiCon));
    cfgs.push_back(make_cfg(spec, Mode::kMc));
    RunConfig replay = make_cfg(spec, Mode::kNiLiCon);
    replay.nilicon.commit_mode = core::CommitMode::kReplay;
    cfgs.push_back(replay);
  }
  std::vector<RunResult> rs = bench::run_all(cfgs);

  bench::BenchJson json("fig3_overhead");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const RunResult& stock = rs[i * 4];
    double stock_metric = spec.interactive
                              ? stock.throughput_rps
                              : to_seconds(stock.batch_runtime);

    Point nil = score(spec, rs[i * 4 + 1], stock_metric);
    Point mc = score(spec, rs[i * 4 + 2], stock_metric);
    json.point(spec.name + "_nilicon", nil.overhead);
    json.point(spec.name + "_mc", mc.overhead);

    std::printf("%-14s | %6.2f%% (%6.2f%%) %6.2f%%/%6.2f%% | "
                "%6.2f%% (%6.2f%%) %6.2f%%/%6.2f%%\n",
                spec.name.c_str(), nil.overhead * 100, kPaper[i].nilicon * 100,
                nil.runtime * 100, nil.stopped * 100, mc.overhead * 100,
                kPaper[i].mc * 100, mc.runtime * 100, mc.stopped * 100);
  }

  // ---- Wire streams under the replay commit mode --------------------------
  std::printf("\nReplay commit mode: overhead and wire traffic by stream\n");
  std::printf("%-14s | %-9s | %-12s | %-12s | %-s\n", "benchmark",
              "overhead", "page stream", "log stream", "log share");
  std::printf("---------------------------------------------------------"
              "--------------\n");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const RunResult& stock = rs[i * 4];
    const RunResult& rep = rs[i * 4 + 3];
    double stock_metric = spec.interactive
                              ? stock.throughput_rps
                              : to_seconds(stock.batch_runtime);
    Point p = score(spec, rep, stock_metric);
    double page_mb =
        static_cast<double>(rep.metrics.bytes_shipped) / (1024.0 * 1024.0);
    double log_mb = static_cast<double>(rep.metrics.log_bytes_shipped) /
                    (1024.0 * 1024.0);
    double share = page_mb + log_mb > 0 ? log_mb / (page_mb + log_mb) : 0.0;
    json.point(spec.name + "_replay", p.overhead);
    json.point(spec.name + "_replay_page_mb", page_mb);
    json.point(spec.name + "_replay_log_mb", log_mb);
    std::printf("%-14s | %7.2f%% | %9.2f MB | %9.2f MB | %6.2f%%\n",
                spec.name.c_str(), p.overhead * 100, page_mb, log_mb,
                share * 100);
  }
  std::printf("\nShape checks: NiLiCon stop-dominated for most benchmarks;\n"
              "MC runtime-dominated; both in the same band per benchmark.\n"
              "The event log is a thin stream next to the page delta —\n"
              "ordering/RNG/timer records plus input payload sidecars.\n");
  footer();
  json.write();
  return 0;
}
