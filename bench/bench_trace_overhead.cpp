// Flight-recorder overhead gates (DESIGN.md §11).
//
// The tracing subsystem promises to be an observer: near-zero cost when
// Options::trace_level == kOff (every site is one `if (trace_ != nullptr)`
// branch) and cheap enough when recording that traced runs stay usable.
// Three measurements, two gates:
//
//   1. Disabled-site branch cost, microbenched through a volatile recorder
//      pointer (the compiler cannot assume it stays null). The gate is
//      analytic: sites-per-epoch x branch cost must be <= 1% of an epoch
//      (30 ms) — wall-clock ratios of two full runs cannot resolve a cost
//      this small above CI noise, the arithmetic can.
//   2. Enabled record cost, ns/event into a ring sized to never overflow.
//      The 5% gate is analytic too: events actually recorded by a traced
//      run x ns/event, plus the one-time ring allocation, against that
//      run's wall time. (A wall-clock ratio of two full runs cannot gate
//      this either — run-to-run drift on a busy single-core CI box is
//      +/-15%, while the true recording cost is <0.1%; measured here, the
//      traced arm sometimes finishes *faster*.)
//   3. End-to-end: the same redis experiment traced vs untraced,
//      alternating, best-of-N. Reported for the record, with only a loose
//      1.5x gross-regression backstop; the binding gates are the analytic
//      bounds plus byte-identical simulated observables (observer
//      contract).
//
// Writes BENCH_trace_overhead.json; runs in CI via the bench-smoke label.
#include <cstdio>
#include <cstring>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"
#include "trace/recorder.hpp"
#include "util/time.hpp"

namespace {

using namespace nlc;

// Instrumented sites that can fire within one 30 ms epoch (pause, harvest,
// encode, ship, recv, barrier-wait, fold, commit spans; the instants and
// counters around them; DRBD buffer/barrier/commit). Deliberately rounded
// up — the gate must hold for the busiest epoch, not the average one.
constexpr double kSitesPerEpoch = 48.0;
constexpr double kEpochNs = 30e6;

trace::Recorder* volatile g_rec = nullptr;

/// ns per *disabled* instrumentation site: the null-check branch the agents
/// pay when trace_level == kOff.
double disabled_branch_ns(long long iters) {
  const std::uint64_t t0 = util::wall_now_ns();
  for (long long i = 0; i < iters; ++i) {
    trace::Recorder* r = g_rec;
    if (r != nullptr) {
      r->instant(trace::Track::kPrimary, trace::Stage::kResume, 0, 0);
    }
  }
  const std::uint64_t t1 = util::wall_now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

/// ns per *recorded* event (ring large enough that nothing drops).
double record_ns(long long iters) {
  trace::Recorder rec(static_cast<std::size_t>(iters));
  const std::uint64_t t0 = util::wall_now_ns();
  for (long long i = 0; i < iters; ++i) {
    rec.instant(trace::Track::kPrimary, trace::Stage::kResume,
                static_cast<Time>(i), 0);
  }
  const std::uint64_t t1 = util::wall_now_ns();
  NLC_CHECK(rec.dropped() == 0);
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

/// ns to construct a full-size recorder: the one-time ring allocation a
/// traced run pays before the first event (~2.6 MB zeroed per thread).
double ring_alloc_ns() {
  const std::uint64_t t0 = util::wall_now_ns();
  trace::Recorder rec;
  rec.instant(trace::Track::kPrimary, trace::Stage::kResume, 0, 0);
  const std::uint64_t t1 = util::wall_now_ns();
  NLC_CHECK(rec.recorded() == 1);
  return static_cast<double>(t1 - t0);
}

harness::RunConfig run_config(bool traced, Time measure) {
  // The redis workload: enough per-epoch page traffic that a run costs
  // real wall time (~100 ms/simulated-second) — a ratio gate on a
  // sub-millisecond netecho run would only measure the recorder's one-time
  // ring allocation, not the recording cost.
  harness::RunConfig cfg;
  cfg.spec = apps::redis_spec();
  cfg.mode = harness::Mode::kNiLiCon;
  cfg.warmup = nlc::milliseconds(200);
  cfg.measure = measure;
  cfg.nilicon.trace_level =
      traced ? core::TraceLevel::kFull : core::TraceLevel::kOff;
  return cfg;
}

struct EndToEnd {
  double best_seconds = 1e18;
  harness::RunResult result;
};

EndToEnd run_once(bool traced, Time measure) {
  EndToEnd e;
  const std::uint64_t t0 = util::wall_now_ns();
  e.result = harness::run_experiment(run_config(traced, measure));
  e.best_seconds = util::wall_seconds_since(t0);
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nlc::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool full = full_mode() || (argc > 1 && std::strcmp(argv[1], "--full") == 0);

  const long long branch_iters = smoke ? 2'000'000 : 20'000'000;
  const long long record_iters = smoke ? 500'000 : full ? 8'000'000
                                                        : 2'000'000;
  const int reps = smoke ? 3 : full ? 7 : 5;
  const Time measure = nlc::seconds(smoke ? 2 : 4);

  header("Flight-recorder overhead: disabled branch, record cost, end-to-end",
         "extension — src/trace tracing subsystem");

  // Warm up, then best-of for both microbenches.
  (void)disabled_branch_ns(branch_iters / 10);
  (void)record_ns(record_iters / 10);
  Samples branch_ns, rec_ns, alloc_ns;
  for (int r = 0; r < reps; ++r) {
    branch_ns.add(disabled_branch_ns(branch_iters));
    rec_ns.add(record_ns(record_iters));
    alloc_ns.add(ring_alloc_ns());
  }
  double best_branch = branch_ns.percentile(0);
  double best_record = rec_ns.percentile(0);
  double best_alloc = alloc_ns.percentile(0);
  double disabled_frac = kSitesPerEpoch * best_branch / kEpochNs;

  std::printf("%-44s | %10.2f ns/site\n", "disabled site (null-check branch)",
              best_branch);
  std::printf("%-44s | %10.2f ns/event\n", "enabled record (ring write)",
              best_record);
  std::printf("%-44s | %10.0f ns one-time\n", "ring allocation (per thread)",
              best_alloc);
  std::printf("%-44s | %10.5f%% of a 30ms epoch (%.0f sites)\n",
              "disabled overhead bound", disabled_frac * 100.0,
              kSitesPerEpoch);

  // End-to-end, alternating off/on so slow drift hits both arms equally.
  EndToEnd off, on;
  (void)run_once(false, measure);  // warm-up run
  for (int r = 0; r < reps; ++r) {
    EndToEnd a = run_once(false, measure);
    if (a.best_seconds < off.best_seconds) off = std::move(a);
    EndToEnd b = run_once(true, measure);
    if (b.best_seconds < on.best_seconds) on = std::move(b);
  }
  double wall_ratio = off.best_seconds > 0
                          ? on.best_seconds / off.best_seconds
                          : 1.0;
  std::printf("%-44s | %10.3f s\n", "experiment, tracing off (best-of)",
              off.best_seconds);
  std::printf("%-44s | %10.3f s (ratio %.3f)\n",
              "experiment, tracing on (best-of)", on.best_seconds,
              wall_ratio);
  NLC_CHECK(on.result.trace != nullptr);
  const double recorded =
      static_cast<double>(on.result.trace->recorded());
  std::printf("%-44s | %10.0f events (%llu dropped)\n", "events recorded",
              recorded,
              static_cast<unsigned long long>(on.result.trace->dropped()));
  // Analytic enabled-overhead bound: what the traced run actually paid for
  // recording — events x ns/event plus the one-time ring allocation —
  // against that run's wall time.
  double enabled_frac = (recorded * best_record + best_alloc) /
                        (on.best_seconds * 1e9);
  std::printf("%-44s | %10.5f%% of the traced run\n",
              "enabled overhead bound", enabled_frac * 100.0);

  BenchJson json("trace_overhead");
  json.point("disabled_branch_ns", branch_ns);
  json.point("record_ns_per_event", rec_ns);
  json.point("ring_alloc_ns", alloc_ns);
  json.point("run_seconds_trace_off", off.best_seconds);
  json.point("run_seconds_trace_on", on.best_seconds);
  json.scalar("disabled_overhead_frac", disabled_frac);
  json.scalar("enabled_overhead_frac", enabled_frac);
  json.scalar("end_to_end_wall_ratio", wall_ratio);
  json.write();

  // ---- Gates ----------------------------------------------------------------
  // Observer contract: tracing must not perturb the simulation at all.
  NLC_CHECK_MSG(off.result.sim_events == on.result.sim_events,
                "tracing changed the simulated event count");
  NLC_CHECK_MSG(off.result.requests_completed == on.result.requests_completed,
                "tracing changed the completed request count");
  // Disabled: <= 1% of an epoch even assuming every site fires.
  NLC_CHECK_MSG(disabled_frac <= 0.01,
                "disabled tracing branch exceeds 1% of an epoch");
  // Enabled: recording work actually done <= 5% of the traced run.
  NLC_CHECK_MSG(enabled_frac <= 0.05,
                "enabled tracing exceeds 5% end-to-end overhead");
  // Gross-regression backstop only — run-to-run drift on a single-core CI
  // box is +/-15%, so anything tighter gates the machine, not the code.
  NLC_CHECK_MSG(wall_ratio <= 1.5,
                "traced run >1.5x untraced — tracing cost is no longer noise");
  return 0;
}
