// §VII-C process scalability: lighttpd with 1..8 worker processes (a core
// per process, clients scaled to keep the server saturated). The paper's
// overhead grows from 23% to 63%: per-process state retrieval, more
// sockets, more dirty pages.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Scalability: lighttpd, 1..8 processes",
         "NiLiCon paper, §VII-C (23% -> 63% overhead)");
  std::printf("%-8s | %-10s | %-12s | %-12s\n", "procs", "overhead",
              "stop (ms)", "dpages/epoch");
  std::printf("--------------------------------------------------\n");

  const int points[] = {1, 2, 4, 8};
  std::vector<harness::RunConfig> cfgs;
  for (int procs : points) {
    apps::AppSpec spec = apps::lighttpd_spec();
    spec.processes = procs;
    spec.cores = procs;
    spec.saturation_clients = procs * 2;  // paper: 2 clients per process
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.measure = measure_seconds();
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("scal_procs");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const auto& stock = rs[i * 2];
    const auto& nil = rs[i * 2 + 1];
    double overhead = 1.0 - nil.throughput_rps / stock.throughput_rps;
    json.point("procs_" + std::to_string(points[i]), overhead);
    std::printf("%-8d | %8.1f%% | %10.2f | %10.0f\n", points[i],
                overhead * 100.0, nil.metrics.stop_time_ms.mean(),
                nil.metrics.dirty_pages.mean());
  }
  std::printf("\nShape check: overhead roughly triples from 1 to 8 processes\n"
              "(paper: 23%% -> 63%%).\n");
  footer();
  json.write();
  return 0;
}
