// Wall-clock microbenchmark of the zero-copy checkpoint page pipeline
// (extension; see DESIGN.md §7).
//
// Measures real ns/page (wall clock, not simulated time) for one epoch of
// harvest -> ship -> commit over N content pages, twice:
//  * zero-copy: the engine as built — payload handles flow from the address
//    space through the image into the radix store; commit is a refcount
//    bump per page.
//  * deep-copy baseline: emulates the pre-zero-copy pipeline by cloning
//    every payload at the harvest-staging step and again at store-commit
//    (the two 4 KiB copies per page the handle pipeline removed).
//
// A second, partially-overwritten epoch then runs through the delta codec
// to report encode ns/page and the achieved compression ratio.
//
// A third section sweeps the sharded intra-epoch pipeline (DESIGN.md §10):
// harvest fill -> delta encode -> radix fold, at 1/2/4/8 shards over
// several page counts. The serial configuration runs the reference
// byte-at-a-time engine; sharded configurations run the word-scanning
// kernels plus the worker-pool fan-out, and the sweep checks that wire
// bytes, visit counts and stats stay byte-identical across shard counts.
//
// Results are printed and written to BENCH_page_pipeline.json and
// BENCH_page_shard.json in the working directory (consumed by the
// nlc_bench_smoke ctest targets).
//
// Modes: default ~20K pages; --smoke 2K (CI); --full / NLC_BENCH_FULL=1
// the acceptance-scale 100K.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"
#include "util/time.hpp"
#include "util/worker_pool.hpp"

namespace {

using namespace nlc;

double ns_between(std::uint64_t a_ns, std::uint64_t b_ns) {
  return static_cast<double>(b_ns - a_ns);
}

/// One self-contained world: a frozen container with `npages` of real
/// content, every page dirty, ready to harvest.
struct World {
  sim::Simulation sim;
  blk::Disk disk;
  kern::Kernel kernel;
  net::Network net;
  net::TcpStack tcp;
  kern::ContainerId cid;
  kern::Process* proc;
  kern::Vma vma;
  criu::CheckpointEngine engine;

  explicit World(std::uint64_t npages)
      : kernel(sim, nullptr, "bench", disk), net(sim),
        tcp(sim, nullptr, net, net.add_host("h", nullptr)),
        cid(kernel.create_container("bench").id()),
        proc(&kernel.create_process(cid, "app")),
        vma(proc->mm().map(npages, kern::VmaKind::kAnon)),
        engine(kernel, tcp) {
    std::vector<std::byte> cell(nlc::kPageSize);
    for (std::uint64_t p = 0; p < npages; ++p) {
      std::memset(cell.data(), static_cast<int>(p & 0xff), cell.size());
      proc->mm().write(vma.start + p, 0, cell);
    }
    proc->mm().clear_soft_dirty();
    proc->mm().touch_range(vma.start, npages);  // all dirty, content intact
    kernel.freeze_container(cid);
  }

  criu::HarvestResult harvest(std::uint64_t epoch, int shards = 1,
                              util::WorkerPool* pool = nullptr) {
    criu::HarvestOptions ho;
    ho.incremental = true;
    ho.shards = shards;
    ho.pool = pool;
    auto hr = engine.harvest(cid, epoch, nullptr, ho);
    // harvest clears soft-dirty; re-dirty for the next repetition.
    proc->mm().touch_range(vma.start, vma.npages);
    return hr;
  }
};

/// harvest -> ship (stage the message) -> commit into a fresh radix store.
/// `deep_copy` clones every payload at the staging and commit steps.
double run_pipeline_ns_per_page(World& w, std::uint64_t epoch,
                                bool deep_copy) {
  criu::RadixPageStore store;
  const std::uint64_t t0 = util::wall_now_ns();

  criu::HarvestResult hr = w.harvest(epoch);
  if (deep_copy) {
    // Staging copy: the legacy pipeline memcpy'd parasite pages into the
    // staging buffer records.
    for (criu::PageRecord& rec : hr.image.pages) {
      if (rec.has_content()) {
        rec.content = util::arena_make_shared<kern::PageBytes>(*rec.content);
      }
    }
  }

  store.begin_checkpoint(epoch);
  std::uint64_t visits = 0;
  for (const criu::PageRecord& rec : hr.image.pages) {
    if (deep_copy && rec.has_content()) {
      // Commit copy: the legacy store duplicated the bytes again.
      criu::PageRecord copy = rec;
      copy.content = util::arena_make_shared<kern::PageBytes>(*rec.content);
      visits += store.store(copy);
    } else {
      visits += store.store(rec);
    }
  }

  const std::uint64_t t1 = util::wall_now_ns();
  NLC_CHECK(store.page_count() == hr.image.pages.size());
  return ns_between(t0, t1) /
         static_cast<double>(hr.image.pages.size() > 0
                                 ? hr.image.pages.size()
                                 : 1);
}

/// One sharded-pipeline configuration: best-of ns/page over `reps` epochs
/// of harvest -> encode -> fold, plus the determinism fingerprint (wire
/// bytes / visits / content pages summed over the measured epochs).
struct ShardResult {
  double ns_per_page = 1e18;
  std::uint64_t wire_bytes = 0;
  std::uint64_t visits = 0;
  std::uint64_t content_pages = 0;
};

ShardResult run_shard_config(std::uint64_t npages, int nshards, int reps) {
  World w(npages);
  std::unique_ptr<util::WorkerPool> pool;
  if (nshards > 1) pool = std::make_unique<util::WorkerPool>(nshards - 1);
  criu::DeltaCodec codec(nshards);
  criu::RadixPageStore store(nshards);
  std::uint64_t epoch = 1;

  // Reference epoch: every page ships raw, the codec and store warm up.
  {
    criu::HarvestResult hr = w.harvest(epoch++, nshards, pool.get());
    codec.encode_epoch(hr.image, pool.get());
    store.begin_checkpoint(hr.image.epoch);
    store.store_batch(hr.image.pages, pool.get());
  }

  ShardResult res;
  std::vector<std::byte> val(900);
  for (int r = 0; r < reps; ++r) {
    // Every page is dirty (touch_range) but only every 5th changed: the
    // encoder mostly skips equal bytes — the page-pipeline common case —
    // with a real 900-byte run to emit on the changed pages. Alternating
    // the fill keeps every rep's delta work identical.
    std::memset(val.data(), r % 2 == 0 ? 0x5a : 0xa5, val.size());
    for (std::uint64_t p = 0; p < npages; p += 5) {
      w.proc->mm().write(w.vma.start + p, 512, val);
    }
    const std::uint64_t t0 = util::wall_now_ns();
    criu::HarvestResult hr = w.harvest(epoch, nshards, pool.get());
    criu::EpochDeltaStats ds = codec.encode_epoch(hr.image, pool.get());
    store.begin_checkpoint(epoch);
    std::uint64_t visits = store.store_batch(hr.image.pages, pool.get());
    const std::uint64_t t1 = util::wall_now_ns();
    ++epoch;
    res.ns_per_page = std::min(
        res.ns_per_page, ns_between(t0, t1) / static_cast<double>(npages));
    res.wire_bytes += ds.wire_bytes;
    res.visits += visits;
    res.content_pages += ds.content_pages;
  }
  NLC_CHECK(store.page_count() == npages);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nlc;
  using namespace nlc::bench;

  bool smoke = false;
  bool full = full_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::uint64_t npages = smoke ? 2'000 : (full ? 100'000 : 20'000);
  const int reps = smoke ? 2 : 3;

  header("Zero-copy page pipeline: wall-clock ns/page",
         "extension beyond the paper");
  std::printf("pages/epoch: %llu, reps: %d (best-of)\n\n",
              static_cast<unsigned long long>(npages), reps);

  World w(npages);
  std::uint64_t epoch = 1;

  // Warm-up epoch: populate allocator caches and the dirty machinery.
  (void)run_pipeline_ns_per_page(w, epoch++, /*deep_copy=*/false);

  double zero_ns = 1e18;
  double deep_ns = 1e18;
  for (int r = 0; r < reps; ++r) {
    deep_ns = std::min(deep_ns,
                       run_pipeline_ns_per_page(w, epoch++, true));
    zero_ns = std::min(zero_ns,
                       run_pipeline_ns_per_page(w, epoch++, false));
  }
  double speedup = deep_ns / zero_ns;
  std::printf("%-38s | %10.1f ns/page\n", "deep-copy baseline (2 copies/page)",
              deep_ns);
  std::printf("%-38s | %10.1f ns/page\n", "zero-copy handle pipeline",
              zero_ns);
  std::printf("%-38s | %10.2fx\n\n", "speedup", speedup);

  // ---- Delta codec: encode cost + ratio on a partially-changed epoch ------
  // Overwrite ~900 bytes of every 5th page (a KV-style update pattern),
  // then encode against the previously shipped versions.
  criu::DeltaCodec codec;
  {
    criu::HarvestResult base = w.harvest(epoch++);
    codec.encode_epoch(base.image);  // first epoch: all raw, sets references
  }
  std::vector<std::byte> val(900, std::byte{0x5a});
  w.proc->mm().clear_soft_dirty();
  for (std::uint64_t p = 0; p < npages; p += 5) {
    w.proc->mm().write(w.vma.start + p, 512, val);
  }
  criu::HarvestResult delta_hr = w.harvest(epoch++);
  const std::uint64_t d0 = util::wall_now_ns();
  criu::EpochDeltaStats ds = codec.encode_epoch(delta_hr.image);
  const std::uint64_t d1 = util::wall_now_ns();
  double delta_ns =
      ns_between(d0, d1) /
      static_cast<double>(ds.content_pages > 0 ? ds.content_pages : 1);
  std::printf("%-38s | %10.1f ns/page\n", "delta encode", delta_ns);
  std::printf("%-38s | %10.3f (wire/raw, %llu pages)\n", "compression ratio",
              ds.ratio(), static_cast<unsigned long long>(ds.content_pages));

  std::FILE* f = std::fopen("BENCH_page_pipeline.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"pages_per_epoch\": %llu,\n"
                 "  \"ns_per_page_deep_copy\": %.1f,\n"
                 "  \"ns_per_page_zero_copy\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"delta_encode_ns_per_page\": %.1f,\n"
                 "  \"compression_ratio\": %.4f\n"
                 "}\n",
                 static_cast<unsigned long long>(npages), deep_ns, zero_ns,
                 speedup, delta_ns, ds.ratio());
    std::fclose(f);
    std::printf("\nwrote BENCH_page_pipeline.json\n");
  }

  // ---- Sharded intra-epoch pipeline sweep (DESIGN.md §10) -----------------
  header("Sharded page pipeline: harvest -> encode -> fold",
         "serial reference engine vs sharded engine");
  std::printf("scan-kernel tier (sharded engine): %s\n\n",
              util::simd_tier_name(util::env_simd_tier()));
  std::vector<std::uint64_t> page_counts;
  if (smoke) {
    page_counts = {1'000};
  } else if (full) {
    page_counts = {1'000, 10'000, 100'000};
  } else {
    page_counts = {1'000, 10'000};
  }
  const int shard_counts[] = {1, 2, 4, 8};
  double sweep_speedup = 0;  // 8-shard speedup at the largest page count
  std::FILE* sf = std::fopen("BENCH_page_shard.json", "w");
  if (sf != nullptr) {
    std::fprintf(sf, "{\n  \"mode\": \"%s\",\n  \"configs\": [\n",
                 smoke ? "smoke" : (full ? "full" : "default"));
  }
  bool first_cfg = true;
  for (std::uint64_t pages : page_counts) {
    ShardResult serial;
    for (int nshards : shard_counts) {
      ShardResult r = run_shard_config(pages, nshards, reps);
      if (nshards == 1) {
        serial = r;
      } else {
        // The determinism contract: shipped bytes, stats and visit counts
        // must not depend on the shard count.
        NLC_CHECK_MSG(r.wire_bytes == serial.wire_bytes,
                      "sharded wire bytes diverge from serial");
        NLC_CHECK_MSG(r.visits == serial.visits,
                      "sharded visit counts diverge from serial");
        NLC_CHECK_MSG(r.content_pages == serial.content_pages,
                      "sharded page counts diverge from serial");
      }
      double sp = serial.ns_per_page / r.ns_per_page;
      if (nshards == 8 && pages == page_counts.back()) sweep_speedup = sp;
      std::printf("%8llu pages | %d shards | %10.1f ns/page | %6.2fx\n",
                  static_cast<unsigned long long>(pages), nshards,
                  r.ns_per_page, sp);
      if (sf != nullptr) {
        std::fprintf(sf,
                     "%s{\"pages\": %llu, \"shards\": %d, "
                     "\"ns_per_page\": %.1f, \"speedup\": %.2f, "
                     "\"wire_bytes\": %llu, \"visits\": %llu}",
                     first_cfg ? "    " : ",\n    ",
                     static_cast<unsigned long long>(pages), nshards,
                     r.ns_per_page, sp,
                     static_cast<unsigned long long>(r.wire_bytes),
                     static_cast<unsigned long long>(r.visits));
        first_cfg = false;
      }
    }
  }
  if (sf != nullptr) {
    std::fprintf(sf,
                 "\n  ],\n  \"speedup_8_shards_largest\": %.2f\n}\n",
                 sweep_speedup);
    std::fclose(sf);
    std::printf("\nwrote BENCH_page_shard.json\n");
  }

  // Sanity for the smoke ctest target: the handle pipeline must beat the
  // copying one, and the delta stage must actually compress.
  NLC_CHECK_MSG(zero_ns < deep_ns, "zero-copy slower than deep copy");
  NLC_CHECK_MSG(ds.ratio() < 1.0, "delta stage failed to compress");
  // The sharded engine must clearly beat the serial reference engine even
  // at smoke scale; the acceptance (--full, 100K pages) target is >= 6x
  // (arena payloads + SIMD scan kernels + prefetched walks, DESIGN.md §12).
  NLC_CHECK_MSG(sweep_speedup >= (full ? 6.0 : 1.2),
                "sharded pipeline speedup below gate");
  return 0;
}
