// Wall-clock microbenchmark of the zero-copy checkpoint page pipeline
// (extension; see DESIGN.md §7).
//
// Measures real ns/page (std::chrono, not simulated time) for one epoch of
// harvest -> ship -> commit over N content pages, twice:
//  * zero-copy: the engine as built — payload handles flow from the address
//    space through the image into the radix store; commit is a refcount
//    bump per page.
//  * deep-copy baseline: emulates the pre-zero-copy pipeline by cloning
//    every payload at the harvest-staging step and again at store-commit
//    (the two 4 KiB copies per page the handle pipeline removed).
//
// A second, partially-overwritten epoch then runs through the delta codec
// to report encode ns/page and the achieved compression ratio.
//
// Results are printed and written to BENCH_page_pipeline.json in the
// working directory (consumed by the nlc_bench_smoke ctest target).
//
// Modes: default ~20K pages; --smoke 2K (CI); --full / NLC_BENCH_FULL=1
// the acceptance-scale 100K.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/common.hpp"
#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace nlc;
using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// One self-contained world: a frozen container with `npages` of real
/// content, every page dirty, ready to harvest.
struct World {
  sim::Simulation sim;
  blk::Disk disk;
  kern::Kernel kernel;
  net::Network net;
  net::TcpStack tcp;
  kern::ContainerId cid;
  kern::Process* proc;
  kern::Vma vma;
  criu::CheckpointEngine engine;

  explicit World(std::uint64_t npages)
      : kernel(sim, nullptr, "bench", disk), net(sim),
        tcp(sim, nullptr, net, net.add_host("h", nullptr)),
        cid(kernel.create_container("bench").id()),
        proc(&kernel.create_process(cid, "app")),
        vma(proc->mm().map(npages, kern::VmaKind::kAnon)),
        engine(kernel, tcp) {
    std::vector<std::byte> cell(nlc::kPageSize);
    for (std::uint64_t p = 0; p < npages; ++p) {
      std::memset(cell.data(), static_cast<int>(p & 0xff), cell.size());
      proc->mm().write(vma.start + p, 0, cell);
    }
    proc->mm().clear_soft_dirty();
    proc->mm().touch_range(vma.start, npages);  // all dirty, content intact
    kernel.freeze_container(cid);
  }

  criu::HarvestResult harvest(std::uint64_t epoch) {
    criu::HarvestOptions ho;
    ho.incremental = true;
    auto hr = engine.harvest(cid, epoch, nullptr, ho);
    // harvest clears soft-dirty; re-dirty for the next repetition.
    proc->mm().touch_range(vma.start, vma.npages);
    return hr;
  }
};

/// harvest -> ship (stage the message) -> commit into a fresh radix store.
/// `deep_copy` clones every payload at the staging and commit steps.
double run_pipeline_ns_per_page(World& w, std::uint64_t epoch,
                                bool deep_copy) {
  criu::RadixPageStore store;
  auto t0 = Clock::now();

  criu::HarvestResult hr = w.harvest(epoch);
  if (deep_copy) {
    // Staging copy: the legacy pipeline memcpy'd parasite pages into the
    // staging buffer records.
    for (criu::PageRecord& rec : hr.image.pages) {
      if (rec.has_content()) {
        rec.content = std::make_shared<kern::PageBytes>(*rec.content);
      }
    }
  }

  store.begin_checkpoint(epoch);
  std::uint64_t visits = 0;
  for (const criu::PageRecord& rec : hr.image.pages) {
    if (deep_copy && rec.has_content()) {
      // Commit copy: the legacy store duplicated the bytes again.
      criu::PageRecord copy = rec;
      copy.content = std::make_shared<kern::PageBytes>(*rec.content);
      visits += store.store(copy);
    } else {
      visits += store.store(rec);
    }
  }

  auto t1 = Clock::now();
  NLC_CHECK(store.page_count() == hr.image.pages.size());
  return ns_between(t0, t1) /
         static_cast<double>(hr.image.pages.size() > 0
                                 ? hr.image.pages.size()
                                 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nlc;
  using namespace nlc::bench;

  bool smoke = false;
  bool full = full_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::uint64_t npages = smoke ? 2'000 : (full ? 100'000 : 20'000);
  const int reps = smoke ? 2 : 3;

  header("Zero-copy page pipeline: wall-clock ns/page",
         "extension beyond the paper");
  std::printf("pages/epoch: %llu, reps: %d (best-of)\n\n",
              static_cast<unsigned long long>(npages), reps);

  World w(npages);
  std::uint64_t epoch = 1;

  // Warm-up epoch: populate allocator caches and the dirty machinery.
  (void)run_pipeline_ns_per_page(w, epoch++, /*deep_copy=*/false);

  double zero_ns = 1e18;
  double deep_ns = 1e18;
  for (int r = 0; r < reps; ++r) {
    deep_ns = std::min(deep_ns,
                       run_pipeline_ns_per_page(w, epoch++, true));
    zero_ns = std::min(zero_ns,
                       run_pipeline_ns_per_page(w, epoch++, false));
  }
  double speedup = deep_ns / zero_ns;
  std::printf("%-38s | %10.1f ns/page\n", "deep-copy baseline (2 copies/page)",
              deep_ns);
  std::printf("%-38s | %10.1f ns/page\n", "zero-copy handle pipeline",
              zero_ns);
  std::printf("%-38s | %10.2fx\n\n", "speedup", speedup);

  // ---- Delta codec: encode cost + ratio on a partially-changed epoch ------
  // Overwrite ~900 bytes of every 5th page (a KV-style update pattern),
  // then encode against the previously shipped versions.
  criu::DeltaCodec codec;
  {
    criu::HarvestResult base = w.harvest(epoch++);
    codec.encode_epoch(base.image);  // first epoch: all raw, sets references
  }
  std::vector<std::byte> val(900, std::byte{0x5a});
  w.proc->mm().clear_soft_dirty();
  for (std::uint64_t p = 0; p < npages; p += 5) {
    w.proc->mm().write(w.vma.start + p, 512, val);
  }
  criu::HarvestResult delta_hr = w.harvest(epoch++);
  auto d0 = Clock::now();
  criu::EpochDeltaStats ds = codec.encode_epoch(delta_hr.image);
  auto d1 = Clock::now();
  double delta_ns =
      ns_between(d0, d1) /
      static_cast<double>(ds.content_pages > 0 ? ds.content_pages : 1);
  std::printf("%-38s | %10.1f ns/page\n", "delta encode", delta_ns);
  std::printf("%-38s | %10.3f (wire/raw, %llu pages)\n", "compression ratio",
              ds.ratio(), static_cast<unsigned long long>(ds.content_pages));

  std::FILE* f = std::fopen("BENCH_page_pipeline.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"pages_per_epoch\": %llu,\n"
                 "  \"ns_per_page_deep_copy\": %.1f,\n"
                 "  \"ns_per_page_zero_copy\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"delta_encode_ns_per_page\": %.1f,\n"
                 "  \"compression_ratio\": %.4f\n"
                 "}\n",
                 static_cast<unsigned long long>(npages), deep_ns, zero_ns,
                 speedup, delta_ns, ds.ratio());
    std::fclose(f);
    std::printf("\nwrote BENCH_page_pipeline.json\n");
  }

  // Sanity for the smoke ctest target: the handle pipeline must beat the
  // copying one, and the delta stage must actually compress.
  NLC_CHECK_MSG(zero_ns < deep_ns, "zero-copy slower than deep copy");
  NLC_CHECK_MSG(ds.ratio() < 1.0, "delta stage failed to compress");
  return 0;
}
