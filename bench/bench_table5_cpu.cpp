// Table V: core utilization on the active (primary) and backup hosts under
// NiLiCon.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct PaperRow {
  double active, backup;
};
constexpr std::array<PaperRow, 7> kPaper = {{
    {3.96, 0.07},  // swaptions
    {3.91, 0.08},  // streamcluster
    {0.98, 0.28},  // redis
    {1.70, 0.12},  // ssdb
    {1.01, 0.40},  // node
    {3.95, 0.18},  // lighttpd
    {1.41, 0.26},  // djcms
}};
}  // namespace

int main() {
  header("Table V: core utilization, active vs backup host",
         "NiLiCon paper, Table V");
  std::printf("%-14s | %-24s | %-24s\n", "benchmark", "active cores (paper)",
              "backup cores (paper)");
  std::printf("----------------------------------------------------------"
              "--------\n");

  auto specs = apps::paper_benchmarks();
  std::vector<harness::RunConfig> cfgs;
  for (const auto& spec : specs) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.measure = measure_seconds();
    cfg.batch_work = batch_seconds();
    // The paper's "active" column is measured on a host running the
    // benchmark WITHOUT replication (§VII-C); backup under NiLiCon.
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("table5_cpu");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& stock = rs[i * 2];
    const auto& nil = rs[i * 2 + 1];
    json.point(specs[i].name + "_active_cores", stock.active_cores);
    json.point(specs[i].name + "_backup_cores", nil.backup_cores);
    std::printf("%-14s |   %5.2f (%5.2f)        |   %5.2f (%5.2f)\n",
                specs[i].name.c_str(), stock.active_cores, kPaper[i].active,
                nil.backup_cores, kPaper[i].backup);
  }
  std::printf("\nShape check: backup utilization is a small fraction of the\n"
              "active host's — the warm-spare advantage over active\n"
              "replication (§VIII).\n");
  footer();
  json.write();
  return 0;
}
