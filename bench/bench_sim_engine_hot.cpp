// Wall-clock microbenchmark of the simulation event loop's hot path.
//
// The event mix of every experiment is dominated by plain coroutine
// resumes: sleep_for wakeups and sync-primitive (Event/Gate/Mailbox)
// hand-offs. The engine gives those a dedicated queue entry — (time, seq,
// domain, coroutine_handle) — that bypasses the shared_ptr<State> +
// type-erased std::function allocation the generic call_at path pays per
// event, and routes same-time wakeups (every sync-primitive hand-off)
// through a FIFO lane that skips the heap entirely. This bench measures
// events/sec on a sleep-heavy ping-pong workload with the fast path on vs
// off (Simulation::set_resume_fast_path, off = the legacy cost model) and
// on the timer path as a reference.
//
// Modes: default ~2M events per variant; --smoke 200K (CI, with a
// regression gate: the fast path must beat the generic path); --full /
// NLC_BENCH_FULL=1 ~20M.
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "util/time.hpp"

namespace {

using namespace nlc;

sim::task<> sleeper(sim::Simulation& sim, long long wakeups) {
  for (long long i = 0; i < wakeups; ++i) {
    co_await sim.sleep_for(nlc::microseconds(1));
  }
}

/// Two coroutines per pair bouncing a Mailbox token, with a sleep between
/// bounces — the sync-primitive + sleep mix of a real protocol loop.
sim::task<> ping(sim::Simulation& sim, sim::Mailbox<int>& out,
                 sim::Mailbox<int>& in, long long bounces) {
  for (long long i = 0; i < bounces; ++i) {
    out.send(1);
    (void)co_await in.recv();
    co_await sim.sleep_for(nlc::microseconds(1));
  }
}

sim::task<> pong(sim::Mailbox<int>& in, sim::Mailbox<int>& out,
                 long long bounces) {
  for (long long i = 0; i < bounces; ++i) {
    (void)co_await in.recv();
    out.send(1);
  }
}

struct Score {
  double events_per_sec = 0;
  std::uint64_t events = 0;
};

/// Sleep-dominated workload: `tasks` coroutines, `wakeups` sleeps each.
Score run_sleep(bool fast_path, int tasks, long long wakeups) {
  sim::Simulation sim;
  sim.set_resume_fast_path(fast_path);
  for (int t = 0; t < tasks; ++t) sim.spawn(sleeper(sim, wakeups));
  const std::uint64_t t0 = util::wall_now_ns();
  sim.run();
  Score s;
  s.events = sim.events_processed();
  double secs = util::wall_seconds_since(t0);
  s.events_per_sec = secs > 0 ? static_cast<double>(s.events) / secs : 0;
  return s;
}

Score run_pingpong(bool fast_path, int pairs, long long bounces) {
  sim::Simulation sim;
  sim.set_resume_fast_path(fast_path);
  std::vector<std::unique_ptr<sim::Mailbox<int>>> boxes;
  for (int p = 0; p < pairs * 2; ++p) {
    boxes.push_back(std::make_unique<sim::Mailbox<int>>(sim));
  }
  for (int p = 0; p < pairs; ++p) {
    sim.spawn(ping(sim, *boxes[p * 2], *boxes[p * 2 + 1], bounces));
    sim.spawn(pong(*boxes[p * 2], *boxes[p * 2 + 1], bounces));
  }
  const std::uint64_t t0 = util::wall_now_ns();
  sim.run();
  Score s;
  s.events = sim.events_processed();
  double secs = util::wall_seconds_since(t0);
  s.events_per_sec = secs > 0 ? static_cast<double>(s.events) / secs : 0;
  return s;
}

/// Timer-callback workload (call_after chains): unchanged by the fast
/// path; shows the cost floor of the generic entry.
Score run_timers(int chains, long long links) {
  sim::Simulation sim;
  struct Chain {
    sim::Simulation* sim;
    long long left;
    void fire() {
      if (--left <= 0) return;
      // NLC_LINT_OK(detached-this): chains outlive the run() below
      sim->call_after(nlc::microseconds(1), [this] { fire(); });
    }
  };
  std::vector<std::unique_ptr<Chain>> cs;
  for (int c = 0; c < chains; ++c) {
    cs.push_back(std::make_unique<Chain>(Chain{&sim, links}));
    Chain* ch = cs.back().get();
    sim.call_after(nlc::microseconds(1), [ch] { ch->fire(); });
  }
  const std::uint64_t t0 = util::wall_now_ns();
  sim.run();
  Score s;
  s.events = sim.events_processed();
  double secs = util::wall_seconds_since(t0);
  s.events_per_sec = secs > 0 ? static_cast<double>(s.events) / secs : 0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nlc::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool full = full_mode() || (argc > 1 && std::strcmp(argv[1], "--full") == 0);

  long long per_task = smoke ? 2'000 : full ? 200'000 : 20'000;
  const int kTasks = 100;  // sleepers; also 50 ping-pong pairs

  header("Engine hot path: dedicated coroutine-resume queue entry",
         "extension — simulation event-loop fast path");

  // Warm-up (page in, populate allocator caches) then best-of-3.
  (void)run_sleep(true, kTasks, per_task / 10);
  Score sleep_fast{}, sleep_generic{}, pp_fast{}, pp_generic{};
  for (int r = 0; r < 3; ++r) {
    auto a = run_sleep(true, kTasks, per_task);
    if (a.events_per_sec > sleep_fast.events_per_sec) sleep_fast = a;
    auto b = run_sleep(false, kTasks, per_task);
    if (b.events_per_sec > sleep_generic.events_per_sec) sleep_generic = b;
    auto c = run_pingpong(true, kTasks / 2, per_task);
    if (c.events_per_sec > pp_fast.events_per_sec) pp_fast = c;
    auto d = run_pingpong(false, kTasks / 2, per_task);
    if (d.events_per_sec > pp_generic.events_per_sec) pp_generic = d;
  }
  Score timers = run_timers(kTasks, per_task);

  double sleep_speedup = sleep_fast.events_per_sec /
                         (sleep_generic.events_per_sec > 0
                              ? sleep_generic.events_per_sec
                              : 1);
  double pp_speedup = pp_fast.events_per_sec /
                      (pp_generic.events_per_sec > 0
                           ? pp_generic.events_per_sec
                           : 1);

  std::printf("%-44s | %12s | %10s\n", "workload (events best-of-3)",
              "events/sec", "speedup");
  std::printf("--------------------------------------------------------------"
              "--------\n");
  std::printf("%-44s | %10.2fM | %9s\n", "sleep-heavy, generic entry",
              sleep_generic.events_per_sec / 1e6, "1.00x");
  std::printf("%-44s | %10.2fM | %9.2fx\n", "sleep-heavy, fast-path entry",
              sleep_fast.events_per_sec / 1e6, sleep_speedup);
  std::printf("%-44s | %10.2fM | %9s\n", "ping-pong+sleep, generic entry",
              pp_generic.events_per_sec / 1e6, "1.00x");
  std::printf("%-44s | %10.2fM | %9.2fx\n", "ping-pong+sleep, fast-path entry",
              pp_fast.events_per_sec / 1e6, pp_speedup);
  std::printf("%-44s | %10.2fM | %9s\n", "timer-callback chains (reference)",
              timers.events_per_sec / 1e6, "n/a");

  BenchJson json("sim_engine_hot");
  json.point("sleep_generic_events_per_sec", sleep_generic.events_per_sec);
  json.point("sleep_fast_events_per_sec", sleep_fast.events_per_sec);
  json.point("pingpong_generic_events_per_sec", pp_generic.events_per_sec);
  json.point("pingpong_fast_events_per_sec", pp_fast.events_per_sec);
  json.point("timer_events_per_sec", timers.events_per_sec);
  json.scalar("sleep_speedup", sleep_speedup);
  json.scalar("pingpong_speedup", pp_speedup);
  json.write();

  // Regression gates for the smoke ctest target (the acceptance target is
  // >= 2x on the sleep-heavy ping-pong workload; the gates sit below the
  // measured speedups to absorb CI noise).
  NLC_CHECK_MSG(pp_fast.events_per_sec > 1.6 * pp_generic.events_per_sec,
                "resume fast path lost its advantage on the ping-pong "
                "workload");
  NLC_CHECK_MSG(sleep_fast.events_per_sec > 1.2 * sleep_generic.events_per_sec,
                "resume fast path lost its advantage on the sleep workload");
  return 0;
}
