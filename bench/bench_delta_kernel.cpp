// Wall-clock microbenchmark of the dispatched delta scan kernels
// (DESIGN.md §12).
//
// Measures delta_encode ns/page per SimdTier over a mixed-run corpus that
// mirrors what the epoch pipeline actually feeds the encoder: unchanged
// pages, fully-rewritten pages, sparse KV-style 900-byte updates, runs
// whose boundaries land exactly on word/vector edges, and short tails.
// Every measured encode is checked bit-identical against the scalar
// reference (runs, raw flag, wire size) while the clock runs on a separate
// unverified pass, so the gate cannot pass on a kernel that is fast but
// wrong.
//
// Writes BENCH_delta_kernel.json. The smoke/default run gates the best
// fast tier at >= 3x the scalar reference on this corpus (skipped when the
// build cannot run any vector tier and SWAR alone misses it on exotic
// hardware is not expected — SWAR must hit the gate too).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/common.hpp"
#include "criu/delta.hpp"
#include "kernel/address_space.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/time.hpp"

namespace {

using namespace nlc;

struct Case {
  const char* name;
  kern::PageBytes prev;
  kern::PageBytes cur;
};

kern::PageBytes random_page(Rng& rng) {
  kern::PageBytes p(kPageSize);
  for (auto& b : p) b = static_cast<std::byte>(rng.next() & 0xff);
  return p;
}

/// The mixed-run corpus. Weights roughly follow the epoch pipeline: most
/// dirty pages are touched-but-unchanged or sparsely updated; full
/// rewrites and adversarial boundary patterns are the tail.
std::vector<Case> build_corpus() {
  Rng rng(0xBE7C'0001);
  std::vector<Case> corpus;

  // 1) Touched but unchanged (the dominant real-world case).
  for (int i = 0; i < 8; ++i) {
    kern::PageBytes p = random_page(rng);
    corpus.push_back({"all-same", p, p});
  }

  // 2) Fully rewritten (raw fallback path).
  for (int i = 0; i < 2; ++i) {
    kern::PageBytes p = random_page(rng);
    kern::PageBytes q = random_page(rng);
    corpus.push_back({"all-diff", std::move(p), std::move(q)});
  }

  // 3) Sparse KV-style update: one 900-byte run mid-page.
  for (int i = 0; i < 6; ++i) {
    kern::PageBytes p = random_page(rng);
    kern::PageBytes q = p;
    for (std::size_t j = 512; j < 512 + 900; ++j) {
      q[j] = static_cast<std::byte>(rng.next() & 0xff);
    }
    corpus.push_back({"kv-900B-run", std::move(p), std::move(q)});
  }

  // 4) Scattered small mutations (the fuzz shape).
  for (int i = 0; i < 4; ++i) {
    kern::PageBytes p = random_page(rng);
    kern::PageBytes q = p;
    for (int m = 0; m < 24; ++m) {
      auto pos = static_cast<std::size_t>(rng.uniform(0, kPageSize - 64));
      auto len = static_cast<std::size_t>(rng.uniform(1, 48));
      for (std::size_t j = pos; j < pos + len; ++j) {
        q[j] = static_cast<std::byte>(rng.next() & 0xff);
      }
    }
    corpus.push_back({"scattered", std::move(p), std::move(q)});
  }

  // 5) Run boundaries pinned to word/vector edges + sub-16B tails.
  for (std::size_t edge : {8ul, 31ul, 32ul, 33ul, 64ul, kPageSize - 33,
                           kPageSize - 15, kPageSize - 1}) {
    kern::PageBytes p = random_page(rng);
    kern::PageBytes q = p;
    const std::size_t len = std::min<std::size_t>(32, kPageSize - edge);
    for (std::size_t j = edge; j < edge + len; ++j) {
      q[j] = static_cast<std::byte>(static_cast<int>(q[j]) ^ 0xFF);
    }
    corpus.push_back({"edge-run", std::move(p), std::move(q)});
  }

  return corpus;
}

/// Verifies every corpus entry against the scalar reference at `tier`;
/// aborts the bench on any mismatch.
void verify_tier(const std::vector<Case>& corpus, util::SimdTier tier) {
  for (const Case& c : corpus) {
    criu::PageDelta ref = criu::delta_encode(&c.prev, c.cur);
    criu::PageDelta fast = criu::delta_encode_fast(&c.prev, c.cur, tier);
    NLC_CHECK_MSG(fast.raw == ref.raw && fast.wire_size == ref.wire_size &&
                      fast.runs.size() == ref.runs.size(),
                  "fast kernel diverges from reference");
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
      NLC_CHECK_MSG(fast.runs[i].offset == ref.runs[i].offset &&
                        fast.runs[i].bytes == ref.runs[i].bytes,
                    "fast kernel run diverges from reference");
    }
    kern::PageBytes back = criu::delta_apply(&c.prev, fast, &c.cur);
    NLC_CHECK_MSG(back == c.cur, "delta round-trip failed");
  }
}

/// Best-of ns/page for one tier over `reps` full corpus sweeps. The
/// accumulated wire size is returned through `sink` so the compiler cannot
/// drop the encode.
double measure_tier(const std::vector<Case>& corpus, util::SimdTier tier,
                    int reps, bool reference, std::uint64_t* sink) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t acc = 0;
    const std::uint64_t t0 = util::wall_now_ns();
    for (const Case& c : corpus) {
      criu::PageDelta d = reference
                              ? criu::delta_encode(&c.prev, c.cur)
                              : criu::delta_encode_fast(&c.prev, c.cur, tier);
      acc += d.wire_size;
    }
    const std::uint64_t t1 = util::wall_now_ns();
    *sink += acc;
    best = std::min(best, static_cast<double>(t1 - t0) /
                              static_cast<double>(corpus.size()));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nlc;
  using namespace nlc::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 30 : (full_mode() ? 300 : 100);

  header("Delta scan kernels: ns/page per SimdTier",
         "DESIGN.md §12 (extension beyond the paper)");

  std::vector<Case> corpus = build_corpus();
  std::printf("corpus: %zu pages (mixed runs), reps: %d (best-of)\n\n",
              corpus.size(), reps);

  std::vector<util::SimdTier> tiers{util::SimdTier::kScalar,
                                    util::SimdTier::kSwar64};
  if (util::cpu_supports_vector()) tiers.push_back(util::SimdTier::kVector);

  std::uint64_t sink = 0;
  double scalar_ns = 0;
  double best_fast_ns = 1e18;
  std::FILE* f = std::fopen("BENCH_delta_kernel.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"corpus_pages\": %zu,\n  \"tiers\": [\n",
                 corpus.size());
  }
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const util::SimdTier tier = tiers[t];
    const bool reference = tier == util::SimdTier::kScalar;
    if (!reference) verify_tier(corpus, tier);
    const double ns = measure_tier(corpus, tier, reps, reference, &sink);
    if (reference) {
      scalar_ns = ns;
    } else {
      best_fast_ns = std::min(best_fast_ns, ns);
    }
    const double sp = reference ? 1.0 : scalar_ns / ns;
    std::printf("%-10s | %10.1f ns/page | %6.2fx vs scalar\n",
                util::simd_tier_name(tier), ns, sp);
    if (f != nullptr) {
      std::fprintf(f,
                   "%s    {\"tier\": \"%s\", \"ns_per_page\": %.1f, "
                   "\"speedup_vs_scalar\": %.2f}",
                   t == 0 ? "" : ",\n", util::simd_tier_name(tier), ns, sp);
    }
  }
  const double speedup = scalar_ns / best_fast_ns;
  if (f != nullptr) {
    std::fprintf(f,
                 "\n  ],\n  \"best_fast_speedup\": %.2f,\n"
                 "  \"vector_supported\": %s\n}\n",
                 speedup, util::cpu_supports_vector() ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_delta_kernel.json\n");
  }
  std::printf("%-10s | %6.2fx (checksum %llu)\n", "best fast", speedup,
              static_cast<unsigned long long>(sink & 0xFFFF));

  // Acceptance gate (ISSUE 6): the fast tier must beat the byte-at-a-time
  // reference by >= 3x on the mixed corpus. Bit-identity was asserted above
  // before the timed passes.
  NLC_CHECK_MSG(speedup >= 3.0, "fast delta kernel below 3x gate");
  return 0;
}
