// §VII-C client scalability: lighttpd with 4 processes and 2..128
// concurrent clients. The paper's overhead rises from ~34% to 45%, almost
// entirely from socket-state checkpointing (1.2ms @2 clients -> 13ms @128).
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Scalability: lighttpd, 2..128 clients",
         "NiLiCon paper, §VII-C (~34% -> 45% overhead)");
  std::printf("%-8s | %-10s | %-12s\n", "clients", "overhead", "stop (ms)");
  std::printf("------------------------------------\n");

  const int points[] = {2, 8, 32, 128};
  std::vector<harness::RunConfig> cfgs;
  for (int clients : points) {
    apps::AppSpec spec = apps::lighttpd_spec();
    spec.saturation_clients = clients;
    // With few clients lighttpd is not CPU-saturated; requests are lighter
    // per connection so more clients genuinely add sockets, not just load.
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.measure = measure_seconds();
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("scal_clients");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const auto& stock = rs[i * 2];
    const auto& nil = rs[i * 2 + 1];
    double overhead = 1.0 - nil.throughput_rps / stock.throughput_rps;
    json.point("clients_" + std::to_string(points[i]), overhead);
    std::printf("%-8d | %8.1f%% | %10.2f\n", points[i], overhead * 100.0,
                nil.metrics.stop_time_ms.mean());
  }
  std::printf("\nShape check: overhead grows with the client count via\n"
              "socket-state checkpoint time (93us per established socket).\n");
  footer();
  json.write();
  return 0;
}
