// Google-benchmark microbenchmarks of the engine data structures: the
// backup page stores (the §V-A radix-vs-list ablation at the data-structure
// level) and the checkpoint harvest itself.
#include <benchmark/benchmark.h>

#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/pagestore.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace nlc;

criu::PageRecord make_rec(kern::PageNum p) {
  criu::PageRecord r;
  r.page = p;
  r.version = 1;
  return r;
}

/// Inserting one epoch's pages into the radix store after `prior` epochs:
/// cost must be independent of history.
void BM_RadixStoreEpoch(benchmark::State& state) {
  auto prior = static_cast<std::uint64_t>(state.range(0));
  criu::RadixPageStore store;
  for (std::uint64_t e = 0; e < prior; ++e) {
    store.begin_checkpoint(e);
    for (int p = 0; p < 64; ++p) {
      store.store(make_rec(static_cast<kern::PageNum>(e * 64 + p)));
    }
  }
  std::uint64_t epoch = prior;
  for (auto _ : state) {
    store.begin_checkpoint(epoch++);
    std::uint64_t visits = 0;
    for (int p = 0; p < 300; ++p) {
      visits += store.store(make_rec(static_cast<kern::PageNum>(p)));
    }
    benchmark::DoNotOptimize(visits);
  }
}
BENCHMARK(BM_RadixStoreEpoch)->Arg(0)->Arg(100)->Arg(1000);

/// The same insertion through stock CRIU's directory list: cost grows with
/// the number of prior checkpoints (the paper's bottleneck).
void BM_ListStoreEpoch(benchmark::State& state) {
  auto prior = static_cast<std::uint64_t>(state.range(0));
  criu::ListPageStore store;
  for (std::uint64_t e = 0; e < prior; ++e) {
    store.begin_checkpoint(e);
    for (int p = 0; p < 64; ++p) {
      store.store(make_rec(static_cast<kern::PageNum>(e * 64 + p)));
    }
  }
  std::uint64_t epoch = prior;
  for (auto _ : state) {
    store.begin_checkpoint(epoch++);
    std::uint64_t visits = 0;
    for (int p = 0; p < 300; ++p) {
      visits += store.store(make_rec(static_cast<kern::PageNum>(p)));
    }
    benchmark::DoNotOptimize(visits);
  }
}
BENCHMARK(BM_ListStoreEpoch)->Arg(0)->Arg(100)->Arg(1000);

/// Full incremental harvest of a populated container.
void BM_IncrementalHarvest(benchmark::State& state) {
  sim::Simulation sim;
  blk::Disk disk;
  kern::Kernel kernel(sim, nullptr, "bench", disk);
  net::Network net(sim);
  auto host = net.add_host("h", nullptr);
  net::TcpStack tcp(sim, nullptr, net, host);
  kern::Container& c = kernel.create_container("bench");
  kern::Process& p = kernel.create_process(c.id(), "app");
  auto vma = p.mm().map(static_cast<std::uint64_t>(state.range(0)),
                        kern::VmaKind::kAnon);
  criu::CheckpointEngine eng(kernel, tcp);
  kernel.freeze_container(c.id());
  std::uint64_t epoch = 1;
  for (auto _ : state) {
    state.PauseTiming();
    p.mm().clear_soft_dirty();
    p.mm().touch_range(vma.start, 300);
    state.ResumeTiming();
    auto res = eng.harvest(c.id(), epoch++, nullptr, {});
    benchmark::DoNotOptimize(res.image.pages.size());
  }
}
BENCHMARK(BM_IncrementalHarvest)->Arg(10'000)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
