// Table I: impact of NiLiCon's performance optimizations, applied
// cumulatively, on the streamcluster overhead.
//
// Each row enables one more optimization (real alternative code paths —
// list vs radix page store, 100ms freezer sleep vs polling, proxy copies,
// fresh vs cached infrequent state, firewall vs plug input blocking,
// smaps vs netlink, synchronous vs staged shipping, pipe vs shared-memory
// page transfer).
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"
#include "util/bytes.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

constexpr std::array<double, 7> kPaperOverhead = {19.40, 6.19, 0.84, 0.65,
                                                  0.53,  0.37, 0.31};
}  // namespace

int main() {
  header("Table I: impact of NiLiCon's optimizations (streamcluster)",
         "NiLiCon paper, Table I");
  BenchJson json("table1_optimizations");

  apps::AppSpec spec = apps::streamcluster_spec();
  // The basic configuration runs ~20x slower than real time; a modest work
  // quota keeps the row affordable while the overhead ratio is stable.
  Time work = full_mode() ? nlc::seconds(4) : nlc::milliseconds(1500);

  // One parallel batch: the stock baseline plus the 8 cumulative rows (all
  // independent simulations; results come back in submission order).
  std::vector<harness::RunConfig> cfgs;
  {
    harness::RunConfig stock_cfg;
    stock_cfg.spec = spec;
    stock_cfg.mode = harness::Mode::kStock;
    stock_cfg.batch_work = work;
    cfgs.push_back(stock_cfg);
  }
  for (int rowi = 0; rowi < 8; ++rowi) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.nilicon = core::Options::table1_row(rowi);
    cfg.batch_work = work;
    cfgs.push_back(cfg);
  }
  std::vector<harness::RunResult> rs = run_all(cfgs);

  double stock_s = to_seconds(rs[0].batch_runtime);
  std::printf("stock runtime: %.3fs (work quota %.1fs x 4 threads)\n\n",
              stock_s, to_seconds(work));
  std::printf("%-45s | %-22s\n", "configuration", "overhead (paper)");
  std::printf("--------------------------------------------------------------"
              "--------\n");

  for (int rowi = 0; rowi < 8; ++rowi) {
    const auto& r = rs[static_cast<std::size_t>(rowi) + 1];
    double overhead = to_seconds(r.batch_runtime) / stock_s - 1.0;
    json.point(core::Options::table1_row_name(rowi), overhead);
    if (rowi < 7) {
      std::printf("%-45s | %7.0f%% (%6.0f%%)\n",
                  core::Options::table1_row_name(rowi), overhead * 100.0,
                  kPaperOverhead[static_cast<std::size_t>(rowi)] * 100.0);
    } else {
      // Row 7 is our extension, not in the paper's table. streamcluster's
      // working set is accounting-only, so the overhead should match row 6;
      // the wire-byte effect is measured on the KV workload below.
      std::printf("%-45s | %7.0f%% (   n/a)\n",
                  core::Options::table1_row_name(rowi), overhead * 100.0);
    }
  }
  std::printf("\nShape check: a steep monotone staircase; caching the\n"
              "infrequently-modified state is the single largest win.\n");

  // ---- Delta-compression ablation (extension) -----------------------------
  // streamcluster dirties accounting pages (version-only), which the delta
  // stage cannot shrink. The wire-byte win shows on a content workload:
  // redis in KV-validation mode, where SETs write real 900-byte values into
  // 4 KiB record pages, so successive epochs re-ship mostly-unchanged pages.
  header("Extension: dirty-page delta compression (redis, KV content)",
         "extension beyond the paper");
  apps::AppSpec kv = apps::redis_spec();
  std::printf("%-32s | %14s | %14s | %s\n", "configuration",
              "wire bytes/ep", "dirty pages/ep", "compression");
  std::printf("--------------------------------------------------------------"
              "--------\n");
  std::vector<harness::RunConfig> delta_cfgs;
  for (bool delta : {false, true}) {
    harness::RunConfig cfg;
    cfg.spec = kv;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.nilicon = core::Options::table1_row(delta ? 7 : 6);
    cfg.kv_validation = true;
    cfg.measure = full_mode() ? nlc::seconds(8) : nlc::seconds(3);
    delta_cfgs.push_back(cfg);
  }
  std::vector<harness::RunResult> drs = run_all(delta_cfgs);
  double base_bytes = 0;
  for (std::size_t i = 0; i < drs.size(); ++i) {
    bool delta = i == 1;
    const auto& r = drs[i];
    double bytes = r.metrics.state_bytes.mean();
    if (!delta) base_bytes = bytes;
    double ratio = r.metrics.compression_ratio.count() > 0
                       ? r.metrics.compression_ratio.mean()
                       : 1.0;
    json.point(delta ? "kv_wire_bytes_delta" : "kv_wire_bytes_base",
               r.metrics.state_bytes);
    std::printf("%-32s | %12.0f B | %14.0f | wire/raw %.3f\n",
                delta ? "+ Delta-compress dirty pages" : "All paper opts",
                bytes, r.metrics.dirty_pages.mean(), ratio);
    if (delta && base_bytes > 0) {
      json.scalar("kv_wire_reduction", 1.0 - bytes / base_bytes);
      std::printf("\nper-epoch wire bytes reduced %.1f%% "
                  "(%.0f MiB kept off the replication link)\n",
                  (1.0 - bytes / base_bytes) * 100.0,
                  static_cast<double>(r.metrics.wire_bytes_saved) /
                      static_cast<double>(nlc::kMiB));
    }
  }
  footer();
  json.write();
  return 0;
}
