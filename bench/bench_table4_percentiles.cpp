// Table IV: stop time and transferred state size per epoch for NiLiCon,
// 10th/50th/90th percentiles.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"
#include "util/bytes.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct PaperRow {
  double stop_ms[3];     // P10, P50, P90
  double state_bytes[3];
};
constexpr double K = 1024.0, M = 1024.0 * 1024.0;
constexpr std::array<PaperRow, 7> kPaper = {{
    {{5.1, 5.1, 5.2}, {189 * K, 193 * K, 201 * K}},          // swaptions
    {{6.3, 6.4, 13.1}, {257 * K, 269 * K, 306 * K}},          // streamcluster
    {{15, 18, 20}, {17.9 * M, 24.2 * M, 30.0 * M}},           // redis
    {{9, 10, 11}, {1.43 * M, 2.88 * M, 3.41 * M}},            // ssdb
    {{38, 41, 46}, {22.7 * M, 24.2 * M, 25.2 * M}},           // node
    {{20, 25, 35}, {2.05 * M, 7.17 * M, 14.65 * M}},          // lighttpd
    {{16, 18, 21}, {53.1 * K, 9.5 * M, 13.3 * M}},            // djcms
}};
}  // namespace

int main() {
  header("Table IV: NiLiCon stop time and transferred state size, P10/50/90",
         "NiLiCon paper, Table IV");
  std::printf("%-14s | %-30s | %-42s\n", "benchmark",
              "stop ms P10/P50/P90 (paper)", "state P10/P50/P90 (paper)");
  std::printf("--------------------------------------------------------------"
              "--------------------------------\n");

  auto specs = apps::paper_benchmarks();
  std::vector<harness::RunConfig> cfgs;
  for (const auto& spec : specs) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.measure = measure_seconds();
    cfg.batch_work = batch_seconds();
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("table4_percentiles");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& r = rs[i];
    json.point(specs[i].name + "_stop_ms", r.metrics.stop_time_ms);
    json.point(specs[i].name + "_state_bytes", r.metrics.state_bytes);

    const auto& stop = r.metrics.stop_time_ms;
    const auto& state = r.metrics.state_bytes;
    std::printf(
        "%-14s | %5.1f/%5.1f/%5.1f (%4.1f/%4.1f/%4.1f) | "
        "%8s/%8s/%8s (%8s/%8s/%8s)\n",
        specs[i].name.c_str(), stop.percentile(10), stop.percentile(50),
        stop.percentile(90), kPaper[i].stop_ms[0], kPaper[i].stop_ms[1],
        kPaper[i].stop_ms[2],
        format_bytes(static_cast<std::uint64_t>(state.percentile(10))).c_str(),
        format_bytes(static_cast<std::uint64_t>(state.percentile(50))).c_str(),
        format_bytes(static_cast<std::uint64_t>(state.percentile(90))).c_str(),
        format_bytes(static_cast<std::uint64_t>(kPaper[i].state_bytes[0]))
            .c_str(),
        format_bytes(static_cast<std::uint64_t>(kPaper[i].state_bytes[1]))
            .c_str(),
        format_bytes(static_cast<std::uint64_t>(kPaper[i].state_bytes[2]))
            .c_str());
  }
  std::printf("\nNote: the paper's streamcluster state sizes (~270K) are\n"
              "inconsistent with its own Table III dirty-page count (303\n"
              "pages = 1.2M); we report the mechanistic pages x 4KiB value.\n");
  footer();
  json.write();
  return 0;
}
