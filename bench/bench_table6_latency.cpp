// Table VI: response latency with a single client, stock vs NiLiCon —
// extended with the replay commit mode (DESIGN.md §14).
//
// Two overheads inflate the protected latency (§VII-C): per-request
// checkpoint/runtime overhead, and output buffering — under the epoch
// commit mode a response waits for its whole epoch to commit before the
// plug releases it. The replay mode replaces that wait with a small
// event-log round trip, so the buffering term collapses from O(epoch)
// to O(log ack RTT). The sweep at the bottom shows the consequence:
// epoch-mode latency grows linearly with the epoch length while
// replay-mode latency stays flat.
//
// Emits BENCH_table6_latency.json with full percentile summaries
// (mean/p50/p99/p999 per point) and enforces three gates:
//   1. replay-mode p99 < epoch-mode p99 for every app at the 30 ms
//      default epoch;
//   2. replay-mode p50 <= 2x the unreplicated (stock) p50 for apps whose
//      median request fits between checkpoints (all but djcms — its
//      light-request median spans several epochs and absorbs stops under
//      either commit mode);
//   3. replay-mode p99 <= 2x stock p99 where the tail is set by service
//      time rather than the frozen window (ssdb, lighttpd, djcms). For
//      sub-5 ms services (redis, node) the p99 is bounded below by the
//      Table III pause (~10 ms of /proc walks, dirty discovery and TCP
//      repair dumps) that no commit mode removes — HyCoR pays the same
//      pause and compensates with ~1 s checkpoint intervals, which the
//      flat sweep below makes cheap.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct PaperRow {
  double stock_ms, nilicon_ms;
};
constexpr std::array<PaperRow, 5> kPaper = {{
    {3.1, 36.9},   // redis
    {93, 143},     // ssdb
    {2.4, 39.4},   // node
    {285, 542},    // lighttpd
    {89, 245},     // djcms
}};
}  // namespace

int main() {
  header("Table VI: response latency with a single client",
         "NiLiCon paper, Table VI + HyCoR-style replay commit");
  std::printf("%-10s | %-20s | %-20s | %-20s\n", "benchmark",
              "stock (paper)", "epoch commit (paper)", "replay commit");
  std::printf("----------------------------------------------------------"
              "--------------------\n");

  const apps::AppSpec server_specs[5] = {
      apps::redis_spec(), apps::ssdb_spec(), apps::node_spec(),
      apps::lighttpd_spec(), apps::djcms_spec()};
  std::vector<harness::RunConfig> cfgs;
  for (int i = 0; i < 5; ++i) {
    harness::RunConfig cfg;
    cfg.spec = server_specs[i];
    cfg.client_connections = 1;
    cfg.client_pipeline = 1;  // one request at a time (Table VI setup)
    cfg.measure = measure_seconds();
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.nilicon.commit_mode = core::CommitMode::kEpoch;
    cfgs.push_back(cfg);
    cfg.nilicon.commit_mode = core::CommitMode::kReplay;
    cfgs.push_back(cfg);
  }
  // Epoch-length sweep (redis): the response-time-vs-epoch-length curve
  // that motivates the replay mode. Same single-client setup.
  constexpr std::array<int, 4> kSweepMs = {10, 30, 50, 100};
  for (int ms : kSweepMs) {
    harness::RunConfig cfg;
    cfg.spec = server_specs[0];
    cfg.client_connections = 1;
    cfg.client_pipeline = 1;
    cfg.measure = measure_seconds();
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.nilicon.epoch_length = nlc::milliseconds(ms);
    cfg.nilicon.commit_mode = core::CommitMode::kEpoch;
    cfgs.push_back(cfg);
    cfg.nilicon.commit_mode = core::CommitMode::kReplay;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("table6_latency");
  int gate_failures = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& stock = rs[i * 3];
    const auto& epoch = rs[i * 3 + 1];
    const auto& replay = rs[i * 3 + 2];
    json.point(server_specs[i].name + "_stock", stock.latencies_ms);
    json.point(server_specs[i].name + "_epoch", epoch.latencies_ms);
    json.point(server_specs[i].name + "_replay", replay.latencies_ms);

    std::printf("%-10s | %6.1fms (%5.1f)    | %6.1fms (%5.1f)    | "
                "%6.1fms p99=%.1f\n",
                server_specs[i].name.c_str(), stock.mean_latency_ms,
                kPaper[i].stock_ms, epoch.mean_latency_ms,
                kPaper[i].nilicon_ms, replay.mean_latency_ms,
                replay.latencies_ms.percentile(99));

    // Gate 1: releasing on log ack must beat waiting for epoch commit.
    if (!(replay.latencies_ms.percentile(99) <
          epoch.latencies_ms.percentile(99))) {
      std::printf("  GATE FAIL: %s replay p99 %.2fms !< epoch p99 %.2fms\n",
                  server_specs[i].name.c_str(),
                  replay.latencies_ms.percentile(99),
                  epoch.latencies_ms.percentile(99));
      ++gate_failures;
    }
    // Gate 2: the median replay-mode request must be within 2x of running
    // unreplicated — it pays only the log-ack round trip.
    double p50_ratio = stock.latencies_ms.percentile(50) > 0
                           ? replay.latencies_ms.percentile(50) /
                                 stock.latencies_ms.percentile(50)
                           : 0.0;
    double p99_ratio = stock.latencies_ms.percentile(99) > 0
                           ? replay.latencies_ms.percentile(99) /
                                 stock.latencies_ms.percentile(99)
                           : 0.0;
    json.scalar(server_specs[i].name + "_replay_vs_stock_p50_ratio",
                p50_ratio);
    json.scalar(server_specs[i].name + "_replay_vs_stock_p99_ratio",
                p99_ratio);
    // Which percentile is meaningfully comparable per app (header note):
    // p50 unless the median request spans epochs (djcms); p99 where the
    // tail is service time, not the frozen window.
    const bool gate_p50 = server_specs[i].name != "djcms";
    const bool gate_p99 = server_specs[i].name == "ssdb" ||
                          server_specs[i].name == "lighttpd" ||
                          server_specs[i].name == "djcms";
    std::printf("  replay/stock: p50 %.2fx%s, p99 %.2fx%s\n", p50_ratio,
                gate_p50 ? " (gated <= 2x)" : "", p99_ratio,
                gate_p99 ? " (gated <= 2x)" : "");
    if (gate_p50 && !(p50_ratio <= 2.0)) {
      std::printf("  GATE FAIL: %s replay p50 %.2fx stock (gate <= 2x)\n",
                  server_specs[i].name.c_str(), p50_ratio);
      ++gate_failures;
    }
    if (gate_p99 && !(p99_ratio <= 2.0)) {
      std::printf("  GATE FAIL: %s replay p99 %.2fx stock (gate <= 2x)\n",
                  server_specs[i].name.c_str(), p99_ratio);
      ++gate_failures;
    }
  }

  std::printf("\nEpoch-length sweep (redis, single client):\n");
  std::printf("%-10s | %-22s | %-22s\n", "epoch", "epoch-commit p50/p99",
              "replay-commit p50/p99");
  for (std::size_t k = 0; k < kSweepMs.size(); ++k) {
    const auto& epoch = rs[15 + k * 2];
    const auto& replay = rs[15 + k * 2 + 1];
    char label[32];
    std::snprintf(label, sizeof label, "redis_sweep_%dms", kSweepMs[k]);
    json.point(std::string(label) + "_epoch", epoch.latencies_ms);
    json.point(std::string(label) + "_replay", replay.latencies_ms);
    std::printf("%7dms  | %7.1f / %-7.1fms    | %7.1f / %-7.1fms\n",
                kSweepMs[k], epoch.latencies_ms.percentile(50),
                epoch.latencies_ms.percentile(99),
                replay.latencies_ms.percentile(50),
                replay.latencies_ms.percentile(99));
  }

  std::printf("\nShape check: epoch-commit latency tracks the epoch length\n"
              "(a response waits ~epoch/2 + commit for release); replay\n"
              "commit stays flat — output waits only on the log ack.\n");
  footer();
  json.write();
  if (gate_failures > 0) {
    std::printf("FAILED: %d latency gate(s) violated\n", gate_failures);
    return 1;
  }
  return 0;
}
