// Table VI: response latency with a single client, stock vs NiLiCon.
//
// Two overheads inflate the protected latency (§VII-C): per-request
// checkpoint/runtime overhead, and output buffering — a response waits for
// its epoch to commit before the plug releases it.
#include <array>
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct PaperRow {
  double stock_ms, nilicon_ms;
};
constexpr std::array<PaperRow, 5> kPaper = {{
    {3.1, 36.9},   // redis
    {93, 143},     // ssdb
    {2.4, 39.4},   // node
    {285, 542},    // lighttpd
    {89, 245},     // djcms
}};
}  // namespace

int main() {
  header("Table VI: response latency with a single client",
         "NiLiCon paper, Table VI");
  std::printf("%-14s | %-22s | %-22s\n", "benchmark", "stock (paper)",
              "NiLiCon (paper)");
  std::printf("----------------------------------------------------------"
              "--------\n");

  const apps::AppSpec server_specs[5] = {
      apps::redis_spec(), apps::ssdb_spec(), apps::node_spec(),
      apps::lighttpd_spec(), apps::djcms_spec()};
  std::vector<harness::RunConfig> cfgs;
  for (int i = 0; i < 5; ++i) {
    harness::RunConfig cfg;
    cfg.spec = server_specs[i];
    cfg.client_connections = 1;
    cfg.client_pipeline = 1;  // one request at a time (Table VI setup)
    cfg.measure = measure_seconds();
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("table6_latency");
  for (int i = 0; i < 5; ++i) {
    const auto& stock = rs[static_cast<std::size_t>(i) * 2];
    const auto& nil = rs[static_cast<std::size_t>(i) * 2 + 1];
    json.point(server_specs[i].name + "_stock_ms", stock.mean_latency_ms);
    json.point(server_specs[i].name + "_nilicon_ms", nil.mean_latency_ms);

    std::printf("%-14s | %7.1fms (%5.1f)    | %7.1fms (%5.1f)\n",
                server_specs[i].name.c_str(), stock.mean_latency_ms,
                kPaper[i].stock_ms, nil.mean_latency_ms,
                kPaper[i].nilicon_ms);
  }
  std::printf("\nShape check: short-processing services (redis, node) pay\n"
              "mostly the buffering delay (tens of ms); long ones pay mostly\n"
              "the checkpoint overhead.\n");
  footer();
  json.write();
  return 0;
}
