// §VII-C thread scalability: streamcluster with 1..32 worker threads (one
// core per thread). The paper reports overhead growing 23% -> 52%, driven
// by per-thread state retrieval (148us -> 4ms), pagemap scans growing with
// the footprint (1441us -> 2887us), and more dirty pages per epoch
// (121 -> 495).
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace nlc;
  using namespace nlc::bench;
  header("Scalability: streamcluster, 1..32 threads",
         "NiLiCon paper, §VII-C (23% -> 52% overhead)");
  std::printf("%-8s | %-10s | %-12s | %-12s\n", "threads", "overhead",
              "stop (ms)", "dpages/epoch");
  std::printf("------------------------------------------------\n");

  const int points[] = {1, 2, 4, 8, 16, 32};
  std::vector<harness::RunConfig> cfgs;
  for (int threads : points) {
    apps::AppSpec spec = apps::streamcluster_spec();
    spec.threads_per_process = threads;
    spec.cores = threads;
    // Footprint grows with threads (49K pages @1 thread -> 111K @32).
    spec.mapped_pages = 49'000 + static_cast<std::uint64_t>(threads) * 1'940;

    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.batch_work = batch_seconds();
    cfg.mode = harness::Mode::kStock;
    cfgs.push_back(cfg);
    cfg.mode = harness::Mode::kNiLiCon;
    cfgs.push_back(cfg);
  }
  auto rs = run_all(cfgs);

  BenchJson json("scal_threads");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const auto& stock = rs[i * 2];
    const auto& nil = rs[i * 2 + 1];
    double overhead = static_cast<double>(nil.batch_runtime) /
                          static_cast<double>(stock.batch_runtime) -
                      1.0;
    json.point("threads_" + std::to_string(points[i]), overhead);
    std::printf("%-8d | %8.1f%% | %10.2f | %10.0f\n", points[i],
                overhead * 100.0, nil.metrics.stop_time_ms.mean(),
                nil.metrics.dirty_pages.mean());
  }
  std::printf("\nShape check: overhead roughly doubles from 1 to 32 threads\n"
              "(paper: 23%% -> 52%%), with stop time and dirty pages rising.\n");
  footer();
  json.write();
  return 0;
}
