// §VII-A validation: fault injection across the benchmark suite plus the
// two microbenchmarks. A fail-stop fault at a uniform-random point of the
// middle 80% of the run must always yield full recovery: no lost
// acknowledged writes, no broken TCP connections, no disk/memory
// inconsistency, and post-failover progress.
#include <cstdio>

#include "apps/catalog.hpp"
#include "bench/common.hpp"
#include "harness/experiment.hpp"

namespace {
using namespace nlc;
using namespace nlc::bench;

struct Tally {
  int attempts = 0;
  int recovered = 0;
  int progressed = 0;
  std::uint64_t kv_errors = 0;
  std::uint64_t broken = 0;
  std::uint64_t disk_errors = 0;
};

Tally run_workload(const apps::AppSpec& spec, bool kv, bool diskstress,
                   int n) {
  Tally t;
  std::vector<harness::RunConfig> cfgs;
  for (int i = 0; i < n; ++i) {
    harness::RunConfig cfg;
    cfg.spec = spec;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.measure = nlc::seconds(5);
    cfg.batch_work = nlc::seconds(2);
    cfg.inject_fault = true;
    cfg.kv_validation = kv;
    cfg.with_diskstress = diskstress;
    if (kv) cfg.client_connections = 4;
    cfg.seed = 7'000 + static_cast<std::uint64_t>(i) * 13;
    cfgs.push_back(cfg);
  }
  for (const auto& r : run_all(cfgs)) {
    ++t.attempts;
    if (r.recovered) ++t.recovered;
    bool progressed = spec.interactive ? r.requests_after_fault > 0
                                       : r.batch_runtime > 0;
    if (progressed) ++t.progressed;
    t.kv_errors += r.kv_errors;
    t.broken += r.broken_connections;
    t.disk_errors += r.diskstress_errors +
                     r.diskstress_post_failover_mismatches;
  }
  return t;
}

void print_row(const char* name, const Tally& t) {
  std::printf("%-16s | %3d/%3d recovered | %3d progressed | %4llu kv errs | "
              "%3llu broken conns | %3llu disk errs\n",
              name, t.recovered, t.attempts, t.progressed,
              static_cast<unsigned long long>(t.kv_errors),
              static_cast<unsigned long long>(t.broken),
              static_cast<unsigned long long>(t.disk_errors));
}

}  // namespace

int main() {
  header("Validation: recovery rate under fail-stop fault injection",
         "NiLiCon paper, §VII-A (paper: 100% over 50 runs/benchmark)");
  int n = runs(2, 50);
  std::printf("(%d trials per workload; NLC_BENCH_FULL=1 for the 50-run "
              "matrix)\n\n", n);

  BenchJson json("validation_recovery");
  auto report = [&json](const char* name, const Tally& t) {
    print_row(name, t);
    json.point(std::string(name) + "_recovered_frac",
               t.attempts > 0
                   ? static_cast<double>(t.recovered) / t.attempts
                   : 0.0);
  };
  // Microbenchmark 1: disk + fs cache + heap consistency.
  {
    apps::AppSpec quiet = apps::netecho_spec();
    Tally t = run_workload(quiet, /*kv=*/false, /*diskstress=*/true, n);
    report("diskstress", t);
  }
  // Microbenchmark 2: network stack + server stack memory (echo + KV).
  {
    apps::AppSpec echo = apps::netecho_spec();
    echo.kv_pages = 512;
    Tally t = run_workload(echo, /*kv=*/true, false, n);
    report("netecho(kv)", t);
  }
  // KV validation on the KV stores; plain fault injection elsewhere.
  for (const auto& spec : apps::paper_benchmarks()) {
    bool kv = spec.kv_pages > 0;
    Tally t = run_workload(spec, kv, false, n);
    report(spec.name.c_str(), t);
  }
  std::printf("\nPass criterion: every trial recovers, progresses, and shows\n"
              "zero KV/broken-connection/disk errors.\n");
  footer();
  json.write();
  return 0;
}
