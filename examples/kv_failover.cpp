// KV store failover demo: a Redis-style in-memory store protected by
// NiLiCon serves validating clients that write real bytes and verify every
// read — across a primary crash. The invariant on display is output
// commit: any response the client has seen reflects state the backup had
// already committed, so no acknowledged write can be lost.
//
//   $ ./build/examples/kv_failover
#include <cstdio>
#include <memory>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"

using namespace nlc;
using namespace nlc::literals;

int main() {
  core::Cluster cluster;

  apps::AppSpec spec = apps::redis_spec();
  spec.kv_pages = 4'096;  // a smaller keyspace keeps the demo snappy
  kern::Container& cont = cluster.create_service_container(spec.name);
  apps::AppEnv env{&cluster.sim, cluster.primary_kernel.get(),
                   &cluster.primary_tcp, core::kServiceIp, 11};
  apps::ServerApp app(env, spec);
  app.setup(cont.id());

  cluster.sim.spawn([](core::Cluster& cl, kern::ContainerId cid,
                       apps::ServerApp& a,
                       const apps::AppSpec& s) -> sim::task<> {
    co_await cl.protect(cid, core::Options{});
    a.set_dilation(s.dilation_nilicon);
  }(cluster, cont.id(), app, spec));

  apps::AppEnv backup_env{&cluster.sim, cluster.backup_kernel.get(),
                          &cluster.backup_tcp, core::kServiceIp, 12};
  auto restored = std::make_shared<std::unique_ptr<apps::ServerApp>>();
  cluster.sim.call_after(1_ms, [&, restored] {
    cluster.backup_agent->set_on_restored(
        [&, restored](const core::FailoverContext& ctx) {
          *restored = apps::ServerApp::attach_restored(backup_env, spec, ctx);
        });
  });

  clients::ClientConfig cc;
  cc.local_ip = core::kClientIp;
  cc.server_ip = core::kServiceIp;
  cc.port = spec.port;
  cc.connections = 4;
  cc.kv_mode = true;          // real payloads, verified GETs
  cc.kv_ops_per_request = 16;
  cc.keys_per_connection = 256;
  clients::ClosedLoopClient client(cluster.sim, cluster.client_domain,
                                   cluster.client_tcp, cc, 77);
  cluster.sim.call_after(5_ms, [&] { client.start(); });

  cluster.sim.call_after(3_s, [&] {
    std::printf("[%.3fs] crash: %llu batches acknowledged so far\n",
                to_seconds(cluster.sim.now()),
                static_cast<unsigned long long>(client.completed()));
    cluster.fail_primary();
  });
  cluster.sim.call_after(8_s, [&] {
    client.stop();
    cluster.sim.stop();
  });
  cluster.sim.run();

  std::printf("\n--- results ---\n");
  std::printf("KV batches completed:  %llu\n",
              static_cast<unsigned long long>(client.completed()));
  std::printf("verification errors:   %llu  (must be 0: no acknowledged\n"
              "                              write was lost in the failover)\n",
              static_cast<unsigned long long>(client.kv_errors()));
  std::printf("broken connections:    %llu  (must be 0)\n",
              static_cast<unsigned long long>(client.broken_connections()));
  std::printf("recovered on backup:   %s\n",
              cluster.backup_agent->recovered() ? "yes" : "NO");
  bool ok = client.kv_errors() == 0 && client.broken_connections() == 0 &&
            cluster.backup_agent->recovered();
  std::printf("\n%s\n", ok ? "SUCCESS: service survived the crash with full"
                             " consistency."
                           : "FAILURE: inconsistency detected.");
  return ok ? 0 : 1;
}
