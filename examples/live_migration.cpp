// Live migration: the CRIU engine used the way CRIU itself is meant to be
// used (§II-B) — checkpoint a running container on one host, restore it on
// another, with no failure involved. Shows the lower-level public API
// underneath NiLiCon: CheckpointEngine, page stores, RestoreEngine.
//
//   $ ./build/examples/live_migration
#include <cstdio>
#include <cstring>

#include "core/cluster.hpp"
#include "criu/checkpoint.hpp"
#include "criu/pagestore.hpp"
#include "criu/restore.hpp"
#include "criu/serialize.hpp"
#include "util/bytes.hpp"

using namespace nlc;
using namespace nlc::literals;

int main() {
  core::Cluster cluster;

  // A container with a process that has real state worth preserving.
  kern::Container& c = cluster.create_service_container("migrate-me");
  kern::Process& p = cluster.primary_kernel->create_process(c.id(), "app");
  auto vma = p.mm().map(2'000, kern::VmaKind::kAnon);
  const char note[] = "state that must survive the migration";
  std::vector<std::byte> bytes(sizeof note - 1);
  std::memcpy(bytes.data(), note, bytes.size());
  p.mm().write(vma.start + 17, 100, bytes);
  cluster.primary_kernel->mmap_file(p.pid(), 50, "/lib/libc.so.6");

  // Checkpoint (freeze -> harvest -> thaw), like `criu dump`.
  criu::CheckpointEngine dump(*cluster.primary_kernel, cluster.primary_tcp);
  cluster.primary_kernel->freeze_container(c.id());
  criu::HarvestOptions opts;
  opts.incremental = false;
  auto result = dump.harvest(c.id(), 0, nullptr, opts);
  cluster.primary_kernel->thaw_container(c.id());
  std::printf("checkpointed %zu processes, %zu pages, %s on the wire "
              "(harvest cost %.1fms)\n",
              result.image.processes.size(), result.image.pages.size(),
              format_bytes(result.image.byte_size()).c_str(),
              to_millis(result.cost.total()));

  // Write real image files and read them back on the destination — the
  // wire format a cold migration would actually ship.
  std::vector<std::byte> image_bytes = criu::serialize_image(result.image);
  std::printf("image file: %s on disk (serialized, framed, validated)\n",
              format_bytes(image_bytes.size()).c_str());
  criu::CheckpointImage shipped = criu::deserialize_image(image_bytes);

  // Ship pages through the backup-side store (as the page server would).
  criu::RadixPageStore store;
  store.begin_checkpoint(0);
  for (const auto& rec : shipped.pages) store.store(rec);

  // Restore on the other host, like `criu restore`.
  criu::RestoreEngine restore(*cluster.backup_kernel, cluster.backup_tcp);
  criu::RestoreTimeline tl;
  cluster.sim.spawn([](core::Cluster&, criu::RestoreEngine& eng,
                       const criu::CheckpointImage& img,
                       criu::RadixPageStore& st,
                       criu::RestoreTimeline& out) -> sim::task<> {
    out = co_await eng.restore(img, st.all_pages(), {}, true);
  }(cluster, restore, shipped, store, tl));
  cluster.sim.run();

  std::printf("restored in %.0fms (namespaces %.0fms in, sockets %.0fms in, "
              "%llu pages)\n",
              to_millis(tl.total()), to_millis(tl.namespaces_done - tl.started),
              to_millis(tl.sockets_done - tl.started),
              static_cast<unsigned long long>(tl.pages_restored));

  // The state made it.
  kern::Process* q = cluster.backup_kernel->process(p.pid());
  auto back = q->mm().read(vma.start + 17, 100, bytes.size());
  bool ok = back == bytes;
  std::printf("memory check on the destination host: %s\n",
              ok ? "intact" : "CORRUPTED");
  return ok ? 0 : 1;
}
