// Quickstart: protect a tiny echo service with NiLiCon, serve a client,
// crash the primary, and watch the service survive.
//
//   $ ./build/examples/quickstart
//
// Walks the core public API: Cluster (testbed topology), ServerApp (a
// workload on the simulated kernel), protect() (the agent pair), a
// closed-loop client, fail_primary(), and the recovery metrics.
#include <cstdio>
#include <memory>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"
#include "util/bytes.hpp"

using namespace nlc;
using namespace nlc::literals;

int main() {
  // 1. The paper's testbed: client + primary + backup hosts, 1GbE client
  //    links, a dedicated 10GbE replication link.
  core::Cluster cluster;

  // 2. A container on the primary running an echo server.
  apps::AppSpec spec = apps::netecho_spec();
  kern::Container& cont = cluster.create_service_container(spec.name);
  apps::AppEnv env{&cluster.sim, cluster.primary_kernel.get(),
                   &cluster.primary_tcp, core::kServiceIp, /*seed=*/1};
  apps::ServerApp app(env, spec);
  app.setup(cont.id());

  // 3. Protect it: initial synchronization, then 30ms epochs.
  cluster.sim.spawn([](core::Cluster& cl, kern::ContainerId cid,
                       apps::ServerApp& a,
                       const apps::AppSpec& s) -> sim::task<> {
    co_await cl.protect(cid, core::Options{});
    a.set_dilation(s.dilation_nilicon);
    std::printf("[%.3fs] container protected (initial sync done)\n",
                to_seconds(cl.sim.now()));
  }(cluster, cont.id(), app, spec));

  // On failover, re-attach the service on the backup host.
  apps::AppEnv backup_env{&cluster.sim, cluster.backup_kernel.get(),
                          &cluster.backup_tcp, core::kServiceIp, 2};
  auto restored = std::make_shared<std::unique_ptr<apps::ServerApp>>();
  cluster.sim.call_after(1_ms, [&, restored] {
    cluster.backup_agent->set_on_restored(
        [&, restored](const core::FailoverContext& ctx) {
          *restored = apps::ServerApp::attach_restored(backup_env, spec, ctx);
          std::printf("[%.3fs] service re-attached on the backup\n",
                      to_seconds(cluster.sim.now()));
        });
  });

  // 4. A client hammering the service.
  clients::ClientConfig cc;
  cc.local_ip = core::kClientIp;
  cc.server_ip = core::kServiceIp;
  cc.port = spec.port;
  cc.connections = 2;
  cc.request_bytes = 10;
  clients::ClosedLoopClient client(cluster.sim, cluster.client_domain,
                                   cluster.client_tcp, cc, /*seed=*/42);
  cluster.sim.call_after(5_ms, [&] { client.start(); });

  // 5. Crash the primary mid-run.
  cluster.sim.call_after(2_s, [&] {
    std::printf("[%.3fs] PRIMARY HOST CRASHED (fail-stop)\n",
                to_seconds(cluster.sim.now()));
    cluster.fail_primary();
  });

  cluster.sim.call_after(6_s, [&] {
    client.stop();
    cluster.sim.stop();
  });
  cluster.sim.run();

  // 6. What happened?
  std::printf("\n--- results ---\n");
  std::printf("requests completed:    %llu\n",
              static_cast<unsigned long long>(client.completed()));
  std::printf("broken connections:    %llu  (must be 0)\n",
              static_cast<unsigned long long>(client.broken_connections()));
  std::printf("epochs checkpointed:   %llu (mean stop %.2fms, state %s)\n",
              static_cast<unsigned long long>(
                  cluster.metrics.epochs_completed),
              cluster.metrics.stop_time_ms.mean(),
              format_bytes(static_cast<std::uint64_t>(
                               cluster.metrics.state_bytes.mean()))
                  .c_str());
  const auto& rm = cluster.backup_agent->recovery_metrics();
  std::printf("recovered:             %s\n",
              cluster.backup_agent->recovered() ? "yes" : "NO");
  std::printf("detection latency:     %.0fms\n",
              to_millis(rm.detection_latency));
  std::printf("restore time:          %.0fms (+%.0fms ARP, +%.0fms misc)\n",
              to_millis(rm.restore_time), to_millis(rm.arp_time),
              to_millis(rm.misc_time));
  std::printf("max client latency:    %.0fms (the failover blip)\n",
              client.latencies_ms().max());
  return client.broken_connections() == 0 ? 0 : 1;
}
