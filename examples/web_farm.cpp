// Web-farm overhead study: a lighttpd-style multi-process server under
// SIEGE-style concurrent load, measured stock vs NiLiCon vs MC — the
// Figure 3 methodology on one workload, with the per-epoch internals
// (stop time, dirty pages, state size) printed alongside.
//
//   $ ./build/examples/web_farm
#include <cstdio>

#include "apps/catalog.hpp"
#include "harness/experiment.hpp"
#include "util/bytes.hpp"

using namespace nlc;

int main() {
  apps::AppSpec spec = apps::lighttpd_spec();
  std::printf("workload: %s — %d processes, %d clients, %.0fms/request\n\n",
              spec.name.c_str(), spec.processes, spec.saturation_clients,
              to_millis(spec.service_cpu));

  harness::RunConfig cfg;
  cfg.spec = spec;
  cfg.measure = nlc::seconds(10);

  cfg.mode = harness::Mode::kStock;
  auto stock = harness::run_experiment(cfg);
  std::printf("stock:    %7.2f req/s, mean latency %.1fms\n",
              stock.throughput_rps, stock.mean_latency_ms);

  cfg.mode = harness::Mode::kNiLiCon;
  auto nil = harness::run_experiment(cfg);
  std::printf("NiLiCon:  %7.2f req/s  (overhead %.1f%%)\n",
              nil.throughput_rps,
              (1.0 - nil.throughput_rps / stock.throughput_rps) * 100.0);
  std::printf("          stop %.1fms/epoch, %s state/epoch, %.0f dirty "
              "pages/epoch\n",
              nil.metrics.stop_time_ms.mean(),
              format_bytes(static_cast<std::uint64_t>(
                               nil.metrics.state_bytes.mean()))
                  .c_str(),
              nil.metrics.dirty_pages.mean());
  std::printf("          active %.2f cores, backup %.2f cores\n",
              nil.active_cores, nil.backup_cores);

  cfg.mode = harness::Mode::kMc;
  auto mc = harness::run_experiment(cfg);
  std::printf("MC (VM):  %7.2f req/s  (overhead %.1f%%)\n",
              mc.throughput_rps,
              (1.0 - mc.throughput_rps / stock.throughput_rps) * 100.0);
  std::printf("          stop %.1fms/epoch, %.0f dirty pages/epoch\n",
              mc.metrics.stop_time_ms.mean(), mc.metrics.dirty_pages.mean());

  std::printf("\nThe container pays more stop time (in-kernel state harvest)\n"
              "but less runtime overhead (no VM exits) than the VM.\n");
  return 0;
}
