#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/qdisc.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"

namespace nlc::net {
namespace {

using namespace nlc::literals;
using sim::task;

constexpr IpAddr kClientIp = 0x0A000001;
constexpr IpAddr kPrimaryIp = 0x0A000002;
constexpr IpAddr kBackupIp = 0x0A000003;
constexpr IpAddr kServiceIp = 0x0A0000FE;  // container virtual IP

TEST(LinkTest, SerializationDelayMatchesBandwidth) {
  sim::Simulation s;
  Link link(s, kGigabit, 50_us);
  // 1 Gb/s => 125 MB/s => 1250 bytes take 10us.
  EXPECT_EQ(link.serialization_delay(1250), 10_us);
}

TEST(LinkTest, FifoWithBackToBackTransmissions) {
  sim::Simulation s;
  Link link(s, kGigabit, 0);
  std::vector<Time> arrivals;
  link.transmit(1250, nullptr, [&] { arrivals.push_back(s.now()); });
  link.transmit(1250, nullptr, [&] { arrivals.push_back(s.now()); });
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 10_us);
  EXPECT_EQ(arrivals[1], 20_us);  // serialized after the first
}

TEST(LinkTest, LatencyAddsAfterSerialization) {
  sim::Simulation s;
  Link link(s, kTenGigabit, 100_us);
  Time at = -1;
  link.transmit(12500, nullptr, [&] { at = s.now(); });
  s.run();
  EXPECT_EQ(at, 10_us + 100_us);  // 12.5KB @ 10Gb/s = 10us
}

// ------------------------------------------------------------ PlugQdisc --

TEST(PlugQdiscTest, DisengagedPassesThrough) {
  int sent = 0;
  PlugQdisc q([&](const Packet&) { ++sent; });
  q.enqueue(Packet{});
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(q.pending_packets(), 0u);
}

TEST(PlugQdiscTest, EngagedBuffersUntilMarkerRelease) {
  std::vector<std::uint64_t> sent;
  PlugQdisc q([&](const Packet& p) { sent.push_back(p.tag); });
  q.engage();
  Packet p;
  p.tag = 1;
  q.enqueue(p);
  p.tag = 2;
  q.enqueue(p);
  auto m1 = q.insert_marker();
  p.tag = 3;
  q.enqueue(p);  // belongs to the next epoch
  EXPECT_TRUE(sent.empty());
  q.release_to_marker(m1);
  EXPECT_EQ(sent, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(q.pending_packets(), 1u);
}

TEST(PlugQdiscTest, SequentialEpochReleases) {
  std::vector<std::uint64_t> sent;
  PlugQdisc q([&](const Packet& p) { sent.push_back(p.tag); });
  q.engage();
  Packet p;
  p.tag = 1;
  q.enqueue(p);
  auto m1 = q.insert_marker();
  p.tag = 2;
  q.enqueue(p);
  auto m2 = q.insert_marker();
  q.release_to_marker(m1);
  EXPECT_EQ(sent, (std::vector<std::uint64_t>{1}));
  q.release_to_marker(m2);
  EXPECT_EQ(sent, (std::vector<std::uint64_t>{1, 2}));
}

TEST(PlugQdiscTest, DiscardAllDropsUncommittedOutput) {
  int sent = 0;
  PlugQdisc q([&](const Packet&) { ++sent; });
  q.engage();
  q.enqueue(Packet{});
  q.discard_all();
  EXPECT_EQ(sent, 0);
  EXPECT_EQ(q.pending_packets(), 0u);
}

// --------------------------------------------------------- IngressFilter --

TEST(IngressFilterTest, BufferModeHoldsAndFlushes) {
  std::vector<std::uint64_t> got;
  IngressFilter f([&](const Packet& p) { got.push_back(p.tag); });
  f.set_mode(IngressFilter::Mode::kBuffer);
  Packet p;
  p.tag = 7;
  f.input(p);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(f.held_packets(), 1u);
  f.set_mode(IngressFilter::Mode::kPass);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{7}));
}

TEST(IngressFilterTest, DropModeDiscards) {
  int got = 0;
  IngressFilter f([&](const Packet&) { ++got; });
  f.set_mode(IngressFilter::Mode::kDrop);
  f.input(Packet{});
  f.set_mode(IngressFilter::Mode::kPass);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.dropped_total(), 1u);
}

// ------------------------------------------------------------ Test rig ----

/// Client host + primary host (+ optional backup host), with the paper's
/// link speeds.
struct Rig {
  sim::Simulation s;
  sim::DomainPtr client_dom = std::make_shared<sim::Domain>("client");
  sim::DomainPtr primary_dom = std::make_shared<sim::Domain>("primary");
  sim::DomainPtr backup_dom = std::make_shared<sim::Domain>("backup");
  Network net{s};
  HostId client_host = net.add_host("client", client_dom);
  HostId primary_host = net.add_host("primary", primary_dom);
  HostId backup_host = net.add_host("backup", backup_dom);
  TcpStack client{s, client_dom, net, client_host};
  TcpStack primary{s, primary_dom, net, primary_host};
  TcpStack backup{s, backup_dom, net, backup_host};

  Rig() {
    net.add_link(client_host, primary_host, kGigabit, 100_us);
    net.add_link(client_host, backup_host, kGigabit, 100_us);
    net.add_link(primary_host, backup_host, kTenGigabit, 20_us);
    client.add_address(kClientIp);
    primary.add_address(kPrimaryIp);
    backup.add_address(kBackupIp);
    primary.add_address(kServiceIp);  // container IP lives on primary
  }
};

TEST(TcpTest, ConnectAcceptRoundTrip) {
  Rig r;
  SocketId server_sock = 0, client_sock = 0;
  r.primary.listen({kServiceIp, 80});
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
  }(r, server_sock));
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& cs) -> task<> {
    cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
  }(r, client_sock));
  r.s.run();
  ASSERT_NE(client_sock, 0u);
  ASSERT_NE(server_sock, 0u);
  EXPECT_EQ(r.client.state(client_sock), TcpState::kEstablished);
  EXPECT_EQ(r.primary.state(server_sock), TcpState::kEstablished);
}

TEST(TcpTest, DataRoundTripWithTagAndPayload) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  std::optional<Segment> got;
  r.s.spawn(r.primary_dom, [](Rig& rr, std::optional<Segment>& g) -> task<> {
    SocketId ss = co_await rr.primary.accept({kServiceIp, 80});
    g = co_await rr.primary.recv(ss);
    rr.primary.send(ss, 500, /*tag=*/99);
  }(r, got));
  std::optional<Segment> reply;
  r.s.spawn(r.client_dom, [](Rig& rr, std::optional<Segment>& rep) -> task<> {
    SocketId cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    auto payload = std::make_shared<std::vector<std::byte>>(
        100, std::byte{0x5A});
    rr.client.send(cs, 100, /*tag=*/42, payload);
    rep = co_await rr.client.recv(cs);
  }(r, reply));
  r.s.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 42u);
  EXPECT_EQ(got->len, 100u);
  ASSERT_NE(got->payload, nullptr);
  EXPECT_EQ((*got->payload)[0], std::byte{0x5A});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->tag, 99u);
}

TEST(TcpTest, MultipleSegmentsInOrder) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  std::vector<std::uint64_t> tags;
  r.s.spawn(r.primary_dom, [](Rig& rr, std::vector<std::uint64_t>& t)
                -> task<> {
    SocketId ss = co_await rr.primary.accept({kServiceIp, 80});
    for (int i = 0; i < 3; ++i) {
      auto seg = co_await rr.primary.recv(ss);
      t.push_back(seg->tag);
    }
  }(r, tags));
  r.s.spawn(r.client_dom, [](Rig& rr) -> task<> {
    SocketId cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    rr.client.send(cs, 10, 1);
    rr.client.send(cs, 10, 2);
    rr.client.send(cs, 10, 3);
  }(r));
  r.s.run();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TcpTest, PeekLeavesSegmentInReadQueue) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
    auto seg = co_await rr.primary.peek(ss);
    EXPECT_EQ(seg->tag, 5u);
  }(r, server_sock));
  r.s.spawn(r.client_dom, [](Rig& rr) -> task<> {
    SocketId cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    rr.client.send(cs, 10, 5);
  }(r));
  r.s.run();
  EXPECT_EQ(r.primary.read_queue_bytes(server_sock), 10u);
  r.primary.consume(server_sock);
  EXPECT_EQ(r.primary.read_queue_bytes(server_sock), 0u);
}

TEST(TcpTest, ConnectToDeadPortGetsReset) {
  Rig r;
  SocketId cs = 1;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& out) -> task<> {
    out = co_await rr.client.connect(kClientIp, {kServiceIp, 9999});
  }(r, cs));
  r.s.run();
  EXPECT_EQ(cs, 0u);
  EXPECT_EQ(r.primary.rsts_sent(), 1u);
}

TEST(TcpTest, AckClearsWriteQueue) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
    rr.primary.send(ss, 1000, 1);
  }(r, server_sock));
  r.s.spawn(r.client_dom, [](Rig& rr) -> task<> {
    SocketId cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    co_await rr.client.recv(cs);
  }(r));
  r.s.run();
  EXPECT_EQ(r.primary.bytes_unacked(server_sock), 0u);
}

TEST(TcpTest, DroppedSynIsRetransmittedWithBackoff) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  // Firewall-style drop at the service for the first second (stock CRIU
  // input blocking: SYN lost, client retries after 1s).
  r.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kDrop);
  r.s.call_after(500_ms, [&] {
    r.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kPass);
  });
  SocketId cs = 0;
  Time connected_at = -1;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& out, Time& at) -> task<> {
    out = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    at = rr.s.now();
  }(r, cs, connected_at));
  r.s.run();
  ASSERT_NE(cs, 0u);
  EXPECT_GE(connected_at, 1_s);  // full SYN timeout burned
  EXPECT_GE(r.client.retransmissions(), 1u);
}

TEST(TcpTest, BufferedIngressAddsOnlyQueueingDelay) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  r.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kBuffer);
  r.s.call_after(5_ms, [&] {
    r.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kPass);
  });
  SocketId cs = 0;
  Time connected_at = -1;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& out, Time& at) -> task<> {
    out = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    at = rr.s.now();
  }(r, cs, connected_at));
  r.s.run();
  ASSERT_NE(cs, 0u);
  EXPECT_LT(connected_at, 10_ms);  // no SYN timeout, just the 5ms hold
  EXPECT_EQ(r.client.retransmissions(), 0u);
}

TEST(TcpTest, LostDataRecoveredByRetransmission) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  std::vector<std::uint64_t> tags;
  r.s.spawn(r.primary_dom,
            [](Rig& rr, SocketId& ss, std::vector<std::uint64_t>& t)
                -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
    for (int i = 0; i < 2; ++i) {
      auto seg = co_await rr.primary.recv(ss);
      t.push_back(seg->tag);
    }
  }(r, server_sock, tags));
  r.s.spawn(r.client_dom, [](Rig& rr) -> task<> {
    SocketId cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    rr.client.send(cs, 10, 1);
    // Drop the second segment at the service ingress.
    rr.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kDrop);
    rr.client.send(cs, 10, 2);
    co_await rr.s.sleep_for(10_ms);
    rr.primary.ingress(kServiceIp).set_mode(IngressFilter::Mode::kPass);
  }(r));
  r.s.run();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_GE(r.client.retransmissions(), 1u);
}

// --------------------------------------------------- repair / failover ----

/// Establishes a client<->primary connection, moves the server socket to
/// the backup via repair dump/restore, and rebinds the service IP — the
/// TCP half of a NiLiCon failover.
TEST(TcpRepairTest, FailoverPreservesConnection) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
    auto seg = co_await rr.primary.recv(ss);
    rr.primary.send(ss, 100, seg->tag + 1000);
  }(r, server_sock));

  SocketId client_sock = 0;
  std::vector<std::uint64_t> replies;
  r.s.spawn(r.client_dom,
            [](Rig& rr, SocketId& cs, std::vector<std::uint64_t>& rep)
                -> task<> {
    cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    rr.client.send(cs, 10, 1);
    auto first = co_await rr.client.recv(cs);
    rep.push_back(first->tag);
  }(r, client_sock, replies));
  r.s.run();
  ASSERT_EQ(replies, (std::vector<std::uint64_t>{1001}));

  // Checkpoint the server socket, kill the primary, restore on backup.
  TcpRepairState st = r.primary.repair_dump(server_sock);
  r.primary_dom->kill();
  SocketId restored = r.backup.repair_restore(st, /*rto_fixed=*/true);
  r.backup.takeover_address(kServiceIp);  // gratuitous ARP

  // The client sends another request; it must reach the backup socket and
  // get a response, with the connection intact.
  std::vector<std::uint64_t> tags2;
  r.s.spawn(r.backup_dom,
            [](Rig& rr, SocketId ss, std::vector<std::uint64_t>& t)
                -> task<> {
    auto seg = co_await rr.backup.recv(ss);
    t.push_back(seg->tag);
    rr.backup.send(ss, 100, seg->tag + 1000);
  }(r, restored, tags2));
  std::optional<Segment> reply2;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId cs,
                             std::optional<Segment>& rep) -> task<> {
    rr.client.send(cs, 10, 2);
    rep = co_await rr.client.recv(cs);
  }(r, client_sock, reply2));
  r.s.run();
  EXPECT_EQ(tags2, (std::vector<std::uint64_t>{2}));
  ASSERT_TRUE(reply2.has_value());
  EXPECT_EQ(reply2->tag, 1002u);
  EXPECT_EQ(r.client.state(client_sock), TcpState::kEstablished);
}

/// The §V-E scenario: at failover the server had sent data the client never
/// received. The restored socket must retransmit it after its RTO; with the
/// paper's fix that is 200ms instead of >= 1s.
TEST(TcpRepairTest, RestoredSocketRetransmitsUnackedData) {
  for (bool rto_fixed : {false, true}) {
    Rig r;
    r.primary.listen({kServiceIp, 80});
    SocketId server_sock = 0;
    r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
      ss = co_await rr.primary.accept({kServiceIp, 80});
      co_await rr.primary.recv(ss);
    }(r, server_sock));
    SocketId client_sock = 0;
    r.s.spawn(r.client_dom, [](Rig& rr, SocketId& cs) -> task<> {
      cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
      rr.client.send(cs, 10, 1);
    }(r, client_sock));
    r.s.run();

    // Server "sends" a response while partitioned: give the repair state a
    // write-queue entry the client has never seen.
    TcpRepairState st = r.primary.repair_dump(server_sock);
    Segment lost;
    lost.seq = st.snd_nxt;
    lost.len = 100;
    lost.tag = 777;
    st.write_queue.push_back(lost);
    st.snd_nxt += 100;

    r.primary_dom->kill();
    Time t0 = r.s.now();
    SocketId restored = r.backup.repair_restore(st, rto_fixed);
    r.backup.takeover_address(kServiceIp);

    std::optional<Segment> got;
    Time got_at = -1;
    r.s.spawn(r.client_dom, [](Rig& rr, SocketId cs,
                               std::optional<Segment>& g, Time& at)
                  -> task<> {
      g = co_await rr.client.recv(cs);
      at = rr.s.now();
    }(r, client_sock, got, got_at));
    r.s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, 777u);
    if (rto_fixed) {
      EXPECT_LT(got_at - t0, 300_ms);
      EXPECT_GE(got_at - t0, 200_ms);
    } else {
      EXPECT_GE(got_at - t0, 1_s);  // stock: >= 1s RTO
    }
    EXPECT_EQ(r.backup.bytes_unacked(restored), 0u);  // client ACKed
  }
}

/// Duplicate data after failover: client retransmits a request the
/// committed checkpoint already contained; the restored socket must ACK
/// without re-queueing it.
TEST(TcpRepairTest, DuplicateSegmentAfterFailoverIsAckedNotRequeued) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
  }(r, server_sock));
  SocketId client_sock = 0;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& cs) -> task<> {
    cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
    rr.client.send(cs, 10, 1);
  }(r, client_sock));
  r.s.run();

  // Checkpoint with the segment still unread in the read queue.
  TcpRepairState st = r.primary.repair_dump(server_sock);
  ASSERT_EQ(st.read_queue.size(), 1u);
  r.primary_dom->kill();
  SocketId restored = r.backup.repair_restore(st, true);
  r.backup.takeover_address(kServiceIp);

  // Force a client retransmission of the same segment (it was ACKed by the
  // primary, but pretend the ACK was lost: resend manually).
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId cs) -> task<> {
    co_await rr.s.sleep_for(1_ms);
    // Simulate retransmission by sending a packet with the original seq.
    (void)cs;
    co_return;
  }(r, client_sock));
  r.s.run();
  EXPECT_EQ(r.backup.read_queue_bytes(restored), 10u);  // exactly one copy
}

/// §III: a packet arriving between netns restore and socket restore causes
/// an RST that breaks the connection — unless ingress is blocked.
TEST(TcpRepairTest, RecoveryWithoutInputBlockingBreaksConnection) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
  }(r, server_sock));
  SocketId client_sock = 0;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& cs) -> task<> {
    cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
  }(r, client_sock));
  r.s.run();
  TcpRepairState st = r.primary.repair_dump(server_sock);
  r.primary_dom->kill();

  // Netns (address) is restored BEFORE the socket, with no input blocking:
  r.backup.takeover_address(kServiceIp);
  // Client data arrives in the window -> RST.
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId cs) -> task<> {
    rr.client.send(cs, 10, 1);
    co_return;
  }(r, client_sock));
  r.s.run();
  EXPECT_EQ(r.client.state(client_sock), TcpState::kReset);
  EXPECT_GE(r.backup.rsts_sent(), 1u);

  // Restoring the socket now is too late; the connection is broken. This
  // is exactly why NiLiCon disconnects the bridge during recovery.
  (void)st;
}

/// Same scenario but with recovery-time input blocking: no RST, connection
/// survives.
TEST(TcpRepairTest, RecoveryWithInputBlockingPreservesConnection) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](Rig& rr, SocketId& ss) -> task<> {
    ss = co_await rr.primary.accept({kServiceIp, 80});
  }(r, server_sock));
  SocketId client_sock = 0;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& cs) -> task<> {
    cs = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
  }(r, client_sock));
  r.s.run();
  TcpRepairState st = r.primary.repair_dump(server_sock);
  r.primary_dom->kill();

  r.backup.takeover_address(kServiceIp);
  r.backup.ingress(kServiceIp).set_mode(IngressFilter::Mode::kDrop);
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId cs) -> task<> {
    rr.client.send(cs, 10, 1);
    co_return;
  }(r, client_sock));
  r.s.run_until(r.s.now() + 50_ms);

  SocketId restored = r.backup.repair_restore(st, true);
  r.backup.ingress(kServiceIp).set_mode(IngressFilter::Mode::kPass);
  r.s.run();
  // Client retransmits the request after its RTO; backup receives it.
  EXPECT_EQ(r.client.state(client_sock), TcpState::kEstablished);
  EXPECT_EQ(r.backup.read_queue_bytes(restored), 10u);
  EXPECT_EQ(r.backup.rsts_sent(), 0u);
}

// -------------------------------------------------------------- Channel ----

TEST(ChannelTest, OrderedDeliveryWithWireTime) {
  sim::Simulation s;
  auto dom = std::make_shared<sim::Domain>("backup");
  Link link(s, kTenGigabit, 20_us);
  Channel<int> ch(s, link, dom);
  std::vector<std::pair<int, Time>> got;
  s.spawn(dom, [](Channel<int>& c, sim::Simulation& ss,
                  std::vector<std::pair<int, Time>>& g) -> task<> {
    for (int i = 0; i < 2; ++i) {
      int v = co_await c.recv();
      g.emplace_back(v, ss.now());
    }
  }(ch, s, got));
  ch.send(1, 125'000);  // 100us at 10Gb/s
  ch.send(2, 125'000);
  s.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[0].second, 120_us);
  EXPECT_EQ(got[1].second, 220_us);
}

TEST(ChannelTest, MessageToDeadHostDiscarded) {
  sim::Simulation s;
  auto dom = std::make_shared<sim::Domain>("backup");
  Link link(s, kTenGigabit, 20_us);
  Channel<int> ch(s, link, dom);
  int got = 0;
  s.spawn(dom, [](Channel<int>& c, int& g) -> task<> {
    g = co_await c.recv();
  }(ch, got));
  dom->kill();
  ch.send(42, 100);
  s.run();
  EXPECT_EQ(got, 0);
  s.shutdown();
}

// --------------------------------------------------------------- Network ----

TEST(NetworkTest, UnboundDestinationBlackholed) {
  Rig r;
  Packet p;
  p.src = {kClientIp, 1000};
  p.dst = {0xDEAD, 80};
  r.net.transmit(kClientIp, p);
  r.s.run();
  EXPECT_EQ(r.net.packets_blackholed(), 1u);
}

TEST(NetworkTest, RebindMovesDelivery) {
  Rig r;
  EXPECT_EQ(r.net.ip_host(kServiceIp), r.primary_host);
  r.backup.takeover_address(kServiceIp);
  EXPECT_EQ(r.net.ip_host(kServiceIp), r.backup_host);
}

TEST(NetworkTest, PacketToDeadHostVanishes) {
  Rig r;
  r.primary.listen({kServiceIp, 80});
  r.primary_dom->kill();
  SocketId cs = 1;
  r.s.spawn(r.client_dom, [](Rig& rr, SocketId& out) -> task<> {
    out = co_await rr.client.connect(kClientIp, {kServiceIp, 80});
  }(r, cs));
  r.s.run();
  // All SYN retries burned, no RST ever: connect fails with 0.
  EXPECT_EQ(cs, 0u);
  EXPECT_EQ(r.primary.rsts_sent(), 0u);
}

}  // namespace
}  // namespace nlc::net
