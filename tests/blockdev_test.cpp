#include <gtest/gtest.h>

#include <cstring>

#include "blockdev/disk.hpp"
#include "blockdev/drbd.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace nlc::blk {
namespace {

using namespace nlc::literals;
using sim::task;

std::vector<std::byte> block_of(char fill) {
  return std::vector<std::byte>(64, static_cast<std::byte>(fill));
}

TEST(DiskTest, WriteReadRoundTrip) {
  Disk d;
  auto data = block_of('A');
  d.write_block(5, 0, data);
  auto back = d.read_block(5, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  EXPECT_FALSE(d.read_block(5, 1).has_value());
  EXPECT_EQ(d.writes(), 1u);
}

TEST(DiskTest, SameContentComparison) {
  Disk a, b;
  a.write_block(1, 0, block_of('x'));
  EXPECT_FALSE(a.same_content(b));
  b.write_block(1, 0, block_of('x'));
  EXPECT_TRUE(a.same_content(b));
}

struct DrbdRig {
  sim::Simulation s;
  sim::DomainPtr primary_dom = std::make_shared<sim::Domain>("primary");
  sim::DomainPtr backup_dom = std::make_shared<sim::Domain>("backup");
  net::Link link{s, net::kTenGigabit, 20_us};
  net::Channel<DrbdMessage> chan{s, link, backup_dom};
  Disk primary_disk, backup_disk;
  DrbdPrimary primary{primary_disk, chan};
  DrbdBackup backup{s, backup_disk, chan};

  DrbdRig() { s.spawn(backup_dom, backup.run()); }
  ~DrbdRig() { s.shutdown(); }
};

TEST(DrbdTest, WritesBufferedUntilCommit) {
  DrbdRig r;
  r.primary.write_block(1, 0, block_of('a'));
  r.primary.send_barrier(1);
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(1);
  }(r));
  r.s.run();
  // Arrived and buffered, not applied.
  EXPECT_EQ(r.backup.buffered_writes(), 1u);
  EXPECT_FALSE(r.backup_disk.read_block(1, 0).has_value());
  r.backup.commit(1);
  EXPECT_TRUE(r.primary_disk.same_content(r.backup_disk));
  EXPECT_EQ(r.backup.committed_epoch(), 1u);
}

TEST(DrbdTest, PrimaryAppliesLocallyImmediately) {
  DrbdRig r;
  r.primary.write_block(3, 7, block_of('z'));
  EXPECT_TRUE(r.primary_disk.read_block(3, 7).has_value());
  auto back = r.primary.read_block(3, 7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)[0], static_cast<std::byte>('z'));
}

TEST(DrbdTest, DiscardUncommittedProtectsBackupDisk) {
  DrbdRig r;
  // Epoch 1 committed, epoch 2 in flight at failure.
  r.primary.write_block(1, 0, block_of('1'));
  r.primary.send_barrier(1);
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(1);
    rr.backup.commit(1);
  }(r));
  r.s.run();
  r.primary.write_block(1, 0, block_of('2'));  // uncommitted epoch 2
  r.primary.send_barrier(2);
  r.s.run();
  r.backup.discard_uncommitted();
  auto back = r.backup_disk.read_block(1, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)[0], static_cast<std::byte>('1'));  // epoch-1 content
}

TEST(DrbdTest, MultiEpochCommitInOrder) {
  DrbdRig r;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    r.primary.write_block(e, 0, block_of(static_cast<char>('0' + e)));
    r.primary.send_barrier(e);
  }
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(3);
  }(r));
  r.s.run();
  r.backup.commit(2);
  EXPECT_EQ(r.backup.committed_epoch(), 2u);
  EXPECT_TRUE(r.backup_disk.read_block(2, 0).has_value());
  EXPECT_FALSE(r.backup_disk.read_block(3, 0).has_value());
  r.backup.commit(3);
  EXPECT_TRUE(r.primary_disk.same_content(r.backup_disk));
}

TEST(DrbdTest, BarrierWithNoWrites) {
  DrbdRig r;
  r.primary.send_barrier(1);
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(1);
  }(r));
  r.s.run();
  r.backup.commit(1);
  EXPECT_EQ(r.backup.committed_epoch(), 1u);
  EXPECT_EQ(r.backup.writes_committed(), 0u);
}

TEST(DrbdTest, WriteAfterBarrierLandsInNextEpoch) {
  DrbdRig r;
  r.primary.write_block(1, 0, block_of('a'));
  r.primary.send_barrier(1);
  r.primary.write_block(2, 0, block_of('b'));
  r.primary.send_barrier(2);
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(2);
  }(r));
  r.s.run();
  r.backup.commit(1);
  EXPECT_TRUE(r.backup_disk.read_block(1, 0).has_value());
  EXPECT_FALSE(r.backup_disk.read_block(2, 0).has_value());
}

TEST(DrbdTest, ReplicationStopsWhenBackupDead) {
  DrbdRig r;
  r.backup_dom->kill();
  r.primary.write_block(1, 0, block_of('a'));
  r.primary.send_barrier(1);
  r.s.run();
  EXPECT_EQ(r.backup.buffered_writes(), 0u);
  // Primary disk unaffected.
  EXPECT_TRUE(r.primary_disk.read_block(1, 0).has_value());
}

/// Filesystem + DRBD integration: writeback on the primary reaches the
/// backup disk only after commit.
TEST(DrbdTest, FilesystemWritebackFlowsThroughReplication) {
  DrbdRig r;
  kern::Filesystem fs(r.primary);
  auto ino = fs.create("/db");
  const char msg[] = "durable";
  std::vector<std::byte> data(sizeof msg - 1);
  std::memcpy(data.data(), msg, data.size());
  fs.write(ino, 0, data, 1);
  fs.sync_all();
  r.primary.send_barrier(1);
  r.s.spawn(r.backup_dom, [](DrbdRig& rr) -> task<> {
    co_await rr.backup.wait_barrier(1);
    rr.backup.commit(1);
  }(r));
  r.s.run();

  // A filesystem mounted over the backup disk reads the same bytes.
  kern::Filesystem backup_fs(r.backup_disk);
  auto ino2 = backup_fs.create("/db");
  auto back = backup_fs.read(ino2, 0, data.size());
  EXPECT_EQ(back, data);
}

}  // namespace
}  // namespace nlc::blk
