#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "core/cluster.hpp"
#include "mc/micro_checkpoint.hpp"

namespace nlc::mc {
namespace {

using namespace nlc::literals;
using core::Cluster;
using sim::task;

struct McRig {
  Cluster cl;
  apps::AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp,
                   core::kServiceIp, 3};
  std::unique_ptr<apps::ServerApp> app;
  std::unique_ptr<McDriver> driver;
  kern::ContainerId cid;

  explicit McRig(std::uint64_t guest_noise = 100) {
    apps::AppSpec spec = apps::netecho_spec();
    kern::Container& c = cl.create_service_container(spec.name);
    cid = c.id();
    app = std::make_unique<apps::ServerApp>(env, spec);
    app->setup(cid);
    McOptions mo;
    mo.guest_noise_pages = guest_noise;
    driver = std::make_unique<McDriver>(mo, *cl.primary_kernel,
                                        cl.primary_tcp, cid,
                                        *cl.state_channel, *cl.ack_channel,
                                        cl.metrics);
    cl.sim.spawn(cl.backup_domain, driver->backup_responder());
    cl.sim.spawn([](McRig& r) -> task<> {
      co_await r.driver->start();
    }(*this));
  }
};

TEST(McTest, EpochsAdvance) {
  McRig rig;
  rig.cl.sim.run_until(1_s);
  EXPECT_GT(rig.cl.metrics.epochs_completed, 25u);
  EXPECT_LT(rig.cl.metrics.epochs_completed, 40u);
}

TEST(McTest, StopTimeSmallAndPageProportional) {
  McRig rig(/*guest_noise=*/100);
  rig.cl.sim.run_until(1_s);
  // ~100 noise pages + idle echo: stop = 2.16ms + ~100 x 1.15us ≈ 2.3ms.
  EXPECT_GT(rig.cl.metrics.stop_time_ms.mean(), 1.5);
  EXPECT_LT(rig.cl.metrics.stop_time_ms.mean(), 4.0);
}

TEST(McTest, GuestNoiseIncreasesDirtyPages) {
  McRig quiet(10), noisy(1000);
  quiet.cl.sim.run_until(1_s);
  noisy.cl.sim.run_until(1_s);
  EXPECT_GT(noisy.cl.metrics.dirty_pages.mean(),
            quiet.cl.metrics.dirty_pages.mean() + 500);
}

TEST(McTest, OutputBufferedUntilAck) {
  McRig rig;
  rig.cl.sim.run_until(500_ms);
  // Plug engaged and cycling through markers without leaking packets.
  EXPECT_TRUE(rig.cl.primary_tcp.plug(core::kServiceIp).engaged());
  EXPECT_GT(rig.cl.metrics.commit_latency_ms.count(), 5u);
}

TEST(McTest, BackupBusyTracksState) {
  McRig rig(2000);
  rig.cl.sim.run_until(1_s);
  EXPECT_GT(rig.cl.metrics.backup_busy, 0);
}

}  // namespace
}  // namespace nlc::mc
