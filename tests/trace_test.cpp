// Flight-recorder subsystem tests (DESIGN.md §11): ring semantics, span
// validation, exporter golden file, concurrent recording, the determinism
// contract (tracing is observer-only), failover timeline content, the
// critical-path analyzer and the trace ordering oracle.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "check/trace_oracle.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "trace/critical_path.hpp"
#include "trace/events.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "util/worker_pool.hpp"

namespace nlc {
namespace {

using trace::Event;
using trace::EventType;
using trace::Recorder;
using trace::Stage;
using trace::Track;

Event make_event(std::uint64_t seq, Time sim_ns, std::uint64_t arg,
                 EventType type, Track track, Stage stage) {
  return Event{seq, sim_ns, /*wall_ns=*/0, arg, type, track, stage};
}

// -------------------------------------------------------------- Recorder ----

TEST(RecorderTest, RecordsAndDrainsInOrder) {
  Recorder rec;
  rec.span_begin(Track::kPrimary, Stage::kPause, nlc::milliseconds(30), 0);
  rec.instant(Track::kPrimary, Stage::kAckRecv, nlc::milliseconds(31), 0);
  rec.counter(Track::kPrimary, Stage::kDirtyPages, nlc::milliseconds(31), 17);
  rec.span_end(Track::kPrimary, Stage::kPause, nlc::milliseconds(32), 0);
  std::vector<Event> ev = rec.drain();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].seq, i);
  }
  EXPECT_EQ(ev[2].arg, 17u);
  EXPECT_EQ(ev[2].type, EventType::kCounter);
  // Dual stamps: wall clock populated alongside the simulated time.
  EXPECT_GT(ev[0].wall_ns, 0u);
  EXPECT_EQ(ev[0].sim_ns, nlc::milliseconds(30));
}

TEST(RecorderTest, OverflowDropsNewestAndCounts) {
  Recorder rec(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    rec.instant(Track::kPrimary, Stage::kResume, nlc::milliseconds(i),
                static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  std::vector<Event> ev = rec.drain();
  ASSERT_EQ(ev.size(), 8u);
  // Drop-newest: the surviving prefix is the *oldest* 8 events, intact.
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].arg, i);
    EXPECT_EQ(ev[i].seq, i);
  }
}

TEST(RecorderTest, ConcurrentRecordingKeepsPerThreadOrder) {
  // Four tasks record in parallel through the WorkerPool (tsan covers this
  // under `ctest -L sanitize`): no events lost, the drained stream is
  // seq-sorted, and each task's events appear in its program order.
  Recorder rec;
  constexpr int kTasks = 4;
  constexpr std::uint64_t kPerTask = 1000;
  util::WorkerPool pool(kTasks - 1);
  pool.run(kTasks, [&](std::size_t t) {
    for (std::uint64_t j = 0; j < kPerTask; ++j) {
      rec.instant(Track::kPrimary, Stage::kResume, static_cast<Time>(j),
                  t * kPerTask + j);
    }
  });
  EXPECT_EQ(rec.recorded(), kTasks * kPerTask);
  EXPECT_EQ(rec.dropped(), 0u);
  std::vector<Event> ev = rec.drain();
  ASSERT_EQ(ev.size(), kTasks * kPerTask);
  std::vector<std::uint64_t> last_arg(kTasks, 0);
  std::vector<bool> seen(kTasks, false);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(ev[i - 1].seq, ev[i].seq);
    }
    auto t = static_cast<std::size_t>(ev[i].arg / kPerTask);
    ASSERT_LT(t, static_cast<std::size_t>(kTasks));
    if (seen[t]) {
      EXPECT_LT(last_arg[t], ev[i].arg);
    }
    last_arg[t] = ev[i].arg;
    seen[t] = true;
  }
}

// ------------------------------------------------------- span validation ----

TEST(SpanCheckTest, ValidNestingPasses) {
  std::vector<Event> ev;
  ev.push_back(make_event(0, 0, 1, EventType::kSpanBegin, Track::kBackup,
                          Stage::kCommit));
  ev.push_back(make_event(1, 1, 1, EventType::kSpanBegin, Track::kBackup,
                          Stage::kFold));
  ev.push_back(make_event(2, 2, 1, EventType::kSpanEnd, Track::kBackup,
                          Stage::kFold));
  // A span on another track may interleave freely.
  ev.push_back(make_event(3, 2, 1, EventType::kSpanBegin, Track::kPrimary,
                          Stage::kPause));
  ev.push_back(make_event(4, 3, 1, EventType::kSpanEnd, Track::kBackup,
                          Stage::kCommit));
  ev.push_back(make_event(5, 4, 1, EventType::kSpanEnd, Track::kPrimary,
                          Stage::kPause));
  trace::SpanCheck chk = trace::validate_spans(ev);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_EQ(chk.unclosed, 0u);
}

TEST(SpanCheckTest, MismatchedEndIsFlagged) {
  std::vector<Event> ev;
  ev.push_back(make_event(0, 0, 1, EventType::kSpanBegin, Track::kBackup,
                          Stage::kCommit));
  ev.push_back(make_event(1, 1, 1, EventType::kSpanEnd, Track::kBackup,
                          Stage::kFold));
  trace::SpanCheck chk = trace::validate_spans(ev);
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("fold"), std::string::npos);
}

TEST(SpanCheckTest, EndWithoutBeginIsFlagged) {
  std::vector<Event> ev;
  ev.push_back(make_event(0, 0, 1, EventType::kSpanEnd, Track::kPrimary,
                          Stage::kPause));
  trace::SpanCheck chk = trace::validate_spans(ev);
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("no open span"), std::string::npos);
}

TEST(SpanCheckTest, UnclosedSpansAreToleratedAndCounted) {
  // A flight recorder is truncated by design (e.g. the primary was killed
  // mid-pause): open spans are not an error.
  std::vector<Event> ev;
  ev.push_back(make_event(0, 0, 1, EventType::kSpanBegin, Track::kPrimary,
                          Stage::kPause));
  ev.push_back(make_event(1, 1, 1, EventType::kSpanBegin, Track::kPrimary,
                          Stage::kHarvest));
  trace::SpanCheck chk = trace::validate_spans(ev);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_EQ(chk.unclosed, 2u);
}

// -------------------------------------------------------------- exporter ----

std::vector<Event> exporter_fixture() {
  std::vector<Event> ev;
  std::uint64_t s = 0;
  ev.push_back(make_event(s++, nlc::milliseconds(30), 1,
                          EventType::kSpanBegin, Track::kPrimary,
                          Stage::kPause));
  ev.push_back(make_event(s++, nlc::milliseconds(30) + nlc::microseconds(200),
                          1, EventType::kSpanBegin, Track::kPrimary,
                          Stage::kHarvest));
  ev.push_back(make_event(s++, nlc::milliseconds(31), 1, EventType::kSpanEnd,
                          Track::kPrimary, Stage::kHarvest));
  ev.push_back(make_event(s++, nlc::milliseconds(31), 42,
                          EventType::kCounter, Track::kPrimary,
                          Stage::kDirtyPages));
  ev.push_back(make_event(s++, nlc::milliseconds(31) + nlc::microseconds(500),
                          1, EventType::kSpanEnd, Track::kPrimary,
                          Stage::kPause));
  ev.push_back(make_event(s++, nlc::milliseconds(32), 1,
                          EventType::kSpanBegin, Track::kPrimaryShip,
                          Stage::kShip));
  ev.push_back(make_event(s++, nlc::milliseconds(34), 1, EventType::kSpanEnd,
                          Track::kPrimaryShip, Stage::kShip));
  ev.push_back(make_event(s++, nlc::milliseconds(35), 1, EventType::kInstant,
                          Track::kDrbd, Stage::kDrbdBarrier));
  ev.push_back(make_event(s++, nlc::milliseconds(36), 1, EventType::kInstant,
                          Track::kPrimary, Stage::kAckRecv));
  ev.push_back(make_event(s++, nlc::milliseconds(36) + nlc::microseconds(100),
                          1, EventType::kInstant, Track::kPrimary,
                          Stage::kRelease));
  return ev;
}

TEST(ExportTest, ChromeTraceJsonMatchesGoldenFile) {
  // Wall stamps are the one nondeterministic field, so the golden export
  // omits them; everything else must be byte-stable. Regenerate with
  // NLC_UPDATE_GOLDEN=1 after an intentional format change.
  trace::ExportOptions opts;
  opts.wall_clock = false;
  std::string json = trace::chrome_trace_json(exporter_fixture(), opts);
  std::string path = std::string(NLC_TRACE_GOLDEN_DIR) + "/trace_golden.json";
  if (std::getenv("NLC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << json;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str());
}

TEST(ExportTest, JsonNamesTracksAndPhases) {
  std::string json = trace::chrome_trace_json(exporter_fixture());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"primary-agent\""), std::string::npos);
  EXPECT_NE(json.find("\"primary-ship\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
}

TEST(ExportTest, TextTimelineListsEvents) {
  std::string txt = trace::text_timeline(exporter_fixture());
  EXPECT_NE(txt.find("pause"), std::string::npos);
  EXPECT_NE(txt.find("dirty-pages"), std::string::npos);
  EXPECT_NE(txt.find("drbd-barrier"), std::string::npos);
}

// ----------------------------------------------------------- determinism ----

harness::RunConfig traced_config(bool tracing, int shards) {
  harness::RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 256;
  cfg.mode = harness::Mode::kNiLiCon;
  cfg.warmup = nlc::milliseconds(200);
  cfg.measure = nlc::seconds(2);
  cfg.nilicon.page_shards = shards;
  cfg.nilicon.trace_level =
      tracing ? core::TraceLevel::kFull : core::TraceLevel::kOff;
  return cfg;
}

void expect_same_observables(const harness::RunResult& a,
                             const harness::RunResult& b) {
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed);
  EXPECT_EQ(a.metrics.bytes_shipped, b.metrics.bytes_shipped);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.metrics.stop_time_ms.mean(),
                   b.metrics.stop_time_ms.mean());
}

TEST(TraceDeterminismTest, ObservablesIdenticalTraceOnVsOff) {
  // Tracing is observer-only: for any shard count, a traced run's simulated
  // observables are identical to the untraced run's.
  for (int shards : {1, 8}) {
    harness::RunResult off = harness::run_experiment(traced_config(false,
                                                                   shards));
    harness::RunResult on = harness::run_experiment(traced_config(true,
                                                                  shards));
    ASSERT_EQ(off.trace, nullptr);
    ASSERT_NE(on.trace, nullptr);
    EXPECT_GT(on.trace->recorded(), 0u);
    expect_same_observables(off, on);
  }
}

TEST(TraceDeterminismTest, ObservablesIdenticalAcrossTrialJobs) {
  // Same contract under the parallel trial runner: 1 job vs 4 jobs.
  auto trial = [](harness::TrialContext& ctx) {
    harness::RunConfig cfg = traced_config(true, 1);
    cfg.seed = 1 + ctx.index;
    harness::RunResult r = harness::run_experiment(cfg);
    ctx.sim_events = r.sim_events;
    return r;
  };
  harness::TrialRunner serial(1);
  harness::TrialRunner wide(4);
  std::vector<harness::RunResult> a = serial.run(4, trial);
  std::vector<harness::RunResult> b = wide.run(4, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_observables(a[i], b[i]);
    ASSERT_NE(b[i].trace, nullptr);
    trace::SpanCheck chk = trace::validate_spans(b[i].trace->drain());
    EXPECT_TRUE(chk.ok) << chk.error;
  }
}

// ------------------------------------------------------ failover timeline ----

TEST(TraceFailoverTest, TimelineShowsDetectionRestoreArpRetransmit) {
  harness::RunConfig cfg = traced_config(true, 1);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.kv_validation = true;
  cfg.client_connections = 3;
  // Seed chosen so the fault lands in the ship/ack window: the backup
  // committed an epoch whose output the primary never released, so the
  // restored sockets hold bytes the client is missing and the
  // shortened-RTO retransmit (§V-E) demonstrably fires. Most seeds kill
  // the primary mid-execute, where the client's own retransmitted request
  // acks everything and the server never needs to resend.
  cfg.seed = 21;
  harness::RunResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.recovered);
  ASSERT_NE(r.trace, nullptr);
  std::vector<Event> ev = r.trace->drain();

  auto count = [&](Track t, EventType ty, Stage s) {
    std::size_t n = 0;
    for (const Event& e : ev) {
      if (e.track == t && e.type == ty && e.stage == s) ++n;
    }
    return n;
  };
  // Detection: three consecutive heartbeat misses, then recovery.
  EXPECT_GE(count(Track::kDetector, EventType::kInstant,
                  Stage::kHeartbeatMiss), 3u);
  EXPECT_GE(count(Track::kDetector, EventType::kInstant,
                  Stage::kRecoveryStart), 1u);
  // Restore: full span plus image materialization on the backup.
  EXPECT_EQ(count(Track::kBackup, EventType::kSpanBegin, Stage::kRestore),
            1u);
  EXPECT_EQ(count(Track::kBackup, EventType::kSpanEnd, Stage::kRestore), 1u);
  EXPECT_EQ(count(Track::kBackup, EventType::kSpanBegin, Stage::kMaterialize),
            1u);
  // Takeover: gratuitous ARP, repaired sockets, shortened-RTO retransmits.
  EXPECT_GE(count(Track::kNetBackup, EventType::kInstant,
                  Stage::kGratuitousArp), 1u);
  EXPECT_GE(count(Track::kNetBackup, EventType::kInstant,
                  Stage::kSocketRepair), 1u);
  EXPECT_GE(count(Track::kNetBackup, EventType::kInstant, Stage::kRetransmit),
            1u);
  // Epoch pipeline ran on both agents before the fault.
  EXPECT_GE(count(Track::kPrimary, EventType::kSpanBegin, Stage::kPause), 2u);
  EXPECT_GE(count(Track::kBackup, EventType::kSpanBegin, Stage::kCommit), 2u);
  // The stream itself is structurally sound (open spans at the kill point
  // are fine; mismatched nesting is not).
  trace::SpanCheck chk = trace::validate_spans(ev);
  EXPECT_TRUE(chk.ok) << chk.error;
  // And the ordering oracle accepts what actually happened.
  check::TraceOrderStats stats = check::audit_trace_ordering(ev);
  EXPECT_GT(stats.release_checks, 0u);
  EXPECT_GT(stats.commit_checks, 0u);
}

// ---------------------------------------------------------- critical path ----

TEST(CriticalPathTest, DecomposesSyntheticEpochExactly) {
  std::vector<Event> ev;
  std::uint64_t s = 0;
  auto ms = [](double v) {
    return static_cast<Time>(v * 1e6);
  };
  ev.push_back(make_event(s++, ms(1.0), 5, EventType::kSpanBegin,
                          Track::kPrimary, Stage::kPause));
  ev.push_back(make_event(s++, ms(1.2), 5, EventType::kSpanBegin,
                          Track::kPrimary, Stage::kHarvest));
  ev.push_back(make_event(s++, ms(2.2), 5, EventType::kSpanEnd,
                          Track::kPrimary, Stage::kHarvest));
  ev.push_back(make_event(s++, ms(2.2), 5, EventType::kSpanBegin,
                          Track::kPrimary, Stage::kEncode));
  ev.push_back(make_event(s++, ms(2.4), 5, EventType::kSpanEnd,
                          Track::kPrimary, Stage::kEncode));
  ev.push_back(make_event(s++, ms(3.0), 5, EventType::kSpanEnd,
                          Track::kPrimary, Stage::kPause));
  ev.push_back(make_event(s++, ms(3.5), 5, EventType::kSpanBegin,
                          Track::kPrimaryShip, Stage::kShip));
  ev.push_back(make_event(s++, ms(6.5), 5, EventType::kSpanEnd,
                          Track::kPrimaryShip, Stage::kShip));
  ev.push_back(make_event(s++, ms(8.0), 5, EventType::kInstant,
                          Track::kPrimary, Stage::kRelease));

  trace::CriticalPath cp(ev);
  ASSERT_EQ(cp.epochs().size(), 1u);
  const trace::EpochAttribution* a = cp.find(5);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->commit_latency, ms(7.0));
  EXPECT_EQ(a->stage_ns[trace::kPsFreeze], ms(0.2));
  EXPECT_EQ(a->stage_ns[trace::kPsHarvest], ms(1.0));
  EXPECT_EQ(a->stage_ns[trace::kPsEncode], ms(0.2));
  EXPECT_EQ(a->stage_ns[trace::kPsTail], ms(1.1));
  EXPECT_EQ(a->stage_ns[trace::kPsShip], ms(3.0));
  EXPECT_EQ(a->stage_ns[trace::kPsAckWait], ms(1.5));
  Time sum = 0;
  for (Time t : a->stage_ns) sum += t;
  EXPECT_EQ(sum, a->commit_latency);
  EXPECT_EQ(a->dominant, trace::kPsShip);
  EXPECT_EQ(cp.find(6), nullptr);
  std::string tbl = cp.table();
  EXPECT_NE(tbl.find("ship"), std::string::npos);
}

TEST(CriticalPathTest, AttributesLiveRunAndSkipsTruncatedEpochs) {
  harness::RunResult r = harness::run_experiment(traced_config(true, 1));
  ASSERT_NE(r.trace, nullptr);
  std::vector<Event> ev = r.trace->drain();
  trace::CriticalPath cp(ev);
  ASSERT_GT(cp.epochs().size(), 1u);
  // Every attributed epoch's stages must sum to its commit latency.
  for (const trace::EpochAttribution& a : cp.epochs()) {
    Time sum = 0;
    for (Time t : a.stage_ns) sum += t;
    EXPECT_EQ(sum, a.commit_latency) << "epoch " << a.epoch;
    EXPECT_GT(a.commit_latency, 0) << "epoch " << a.epoch;
  }
  EXPECT_FALSE(cp.table().empty());
}

// ------------------------------------------------------------ trace oracle ----

TEST(TraceOracleTest, AcceptsOrderedStream) {
  std::vector<Event> ev;
  std::uint64_t s = 0;
  ev.push_back(make_event(s++, 1, 0, EventType::kInstant, Track::kDrbd,
                          Stage::kDrbdBarrier));
  ev.push_back(make_event(s++, 2, 0, EventType::kSpanBegin, Track::kBackup,
                          Stage::kCommit));
  ev.push_back(make_event(s++, 3, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kAckRecv));
  ev.push_back(make_event(s++, 4, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kRelease));
  check::TraceOrderStats stats = check::audit_trace_ordering(ev);
  EXPECT_EQ(stats.release_checks, 1u);
  EXPECT_EQ(stats.commit_checks, 1u);
  EXPECT_EQ(stats.total(), 2u);
}

TEST(TraceOracleTest, ReleaseBeforeAckRaises) {
  // Forged stream: epoch 0's output released with no ack recorded — the
  // same violation OutputCommitChecker catches live.
  std::vector<Event> ev;
  ev.push_back(make_event(0, 1, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kRelease));
  EXPECT_THROW(check::audit_trace_ordering(ev), InvariantError);

  // Ack for epoch 1 does not license releasing epoch 2.
  ev.clear();
  ev.push_back(make_event(0, 1, 1, EventType::kInstant, Track::kPrimary,
                          Stage::kAckRecv));
  ev.push_back(make_event(1, 2, 2, EventType::kInstant, Track::kPrimary,
                          Stage::kRelease));
  EXPECT_THROW(check::audit_trace_ordering(ev), InvariantError);
}

TEST(TraceOracleTest, CommitBeforeBarrierRaises) {
  std::vector<Event> ev;
  ev.push_back(make_event(0, 1, 0, EventType::kSpanBegin, Track::kBackup,
                          Stage::kCommit));
  EXPECT_THROW(check::audit_trace_ordering(ev), InvariantError);

  ev.clear();
  ev.push_back(make_event(0, 1, 3, EventType::kInstant, Track::kDrbd,
                          Stage::kDrbdBarrier));
  ev.push_back(make_event(1, 2, 4, EventType::kSpanBegin, Track::kBackup,
                          Stage::kCommit));
  EXPECT_THROW(check::audit_trace_ordering(ev), InvariantError);
}

TEST(TraceOracleTest, HarnessReportsTraceOrderChecks) {
  harness::RunConfig cfg = traced_config(true, 1);
  cfg.nilicon.audit_level = core::AuditLevel::kCommitPoints;
  harness::RunResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.audited);
  EXPECT_GT(r.audit.trace_order_checks, 0u);
}

}  // namespace
}  // namespace nlc
