// Replay commit mode (DESIGN.md §14): unit tests for the backup-side
// ReplayEngine's segment validation (truncation/corruption/gap rejection,
// checkpoint-boundary replay), plus the end-to-end contracts: observables
// are byte-identical for any NLC_SHARDS x NLC_JOBS combination, and a
// failover injected mid-epoch replays the accepted log on top of the
// restored checkpoint to the released-output point with no client-visible
// loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/catalog.hpp"
#include "core/event_log.hpp"
#include "core/protocol.hpp"
#include "core/replay.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace nlc {
namespace {

using core::EventLog;
using core::LogSegmentMsg;
using core::NdEvent;
using core::replay::ReplayEngine;
using core::replay::ReplayResult;
using harness::Mode;
using harness::RunConfig;
using harness::RunResult;
using harness::TrialRunner;

// ------------------------------------------------------------ ReplayEngine --

/// Records a deterministic mix of the three event types and cuts one
/// segment, exactly as the primary's flush loop would.
LogSegmentMsg make_segment(EventLog& log, int entries, std::uint64_t salt) {
  for (int i = 0; i < entries; ++i) {
    switch (i % 3) {
      case 0: log.on_net_input(salt, static_cast<std::uint64_t>(i),
                               salt * 31 + static_cast<std::uint64_t>(i));
              break;
      case 1: log.on_timer(salt & 0xff, static_cast<std::uint64_t>(i)); break;
      default: log.on_rng_draw(salt ^ (static_cast<std::uint64_t>(i) << 8));
    }
  }
  return log.cut_segment();
}

TEST(ReplayEngineTest, AcceptsOrderedSegmentsAndReplaysToAcceptedEnd) {
  EventLog log;
  ReplayEngine eng;
  for (std::uint64_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(eng.ingest(make_segment(log, 5, s)));
  }
  EXPECT_EQ(eng.accepted_end_index(), 20u);
  EXPECT_EQ(eng.accepted_end_fp(), log.chain_fp());
  EXPECT_EQ(eng.segments_rejected(), 0u);

  // Full replay from the chain seed re-reaches the primary's fingerprint.
  ReplayResult full = eng.replay(0, core::kNdChainSeed);
  EXPECT_EQ(full.entries_replayed, 20u);
  EXPECT_EQ(full.segments_replayed, 4u);
  EXPECT_EQ(full.final_fp, log.chain_fp());
  EXPECT_GT(full.cost, 0);

  // A checkpoint already at the accepted end leaves nothing to replay.
  ReplayResult none = eng.replay(20, log.chain_fp());
  EXPECT_EQ(none.entries_replayed, 0u);
  EXPECT_EQ(none.final_fp, log.chain_fp());
  EXPECT_EQ(none.cost, 0);
}

TEST(ReplayEngineTest, ReplaysOnlyTheSuffixPastTheCheckpointStamp) {
  EventLog log;
  ReplayEngine eng;
  LogSegmentMsg a = make_segment(log, 6, 1);
  // The mid-segment fingerprint a committed checkpoint would stamp.
  std::uint64_t fp = a.start_fp;
  for (int i = 0; i < 4; ++i) fp = core::nd_chain_fold(fp, a.entries[i]);
  ASSERT_TRUE(eng.ingest(a));
  ASSERT_TRUE(eng.ingest(make_segment(log, 3, 2)));

  ReplayResult r = eng.replay(4, fp);
  EXPECT_EQ(r.entries_replayed, 5u);  // 2 from segment a + 3 from b
  EXPECT_EQ(r.segments_replayed, 2u);
  EXPECT_EQ(r.final_fp, log.chain_fp());

  // Pruning keeps the straddling segment: entries past index 4 live in
  // segment a, so a prune at the checkpoint boundary must not drop it.
  eng.prune_below(4);
  EXPECT_EQ(eng.segments_held(), 2u);
  eng.prune_below(6);
  EXPECT_EQ(eng.segments_held(), 1u);
}

TEST(ReplayEngineTest, RejectsTruncatedSegment) {
  EventLog log;
  ReplayEngine eng;
  LogSegmentMsg seg = make_segment(log, 5, 7);
  seg.entries.pop_back();  // truncated in flight; claimed end_fp kept
  EXPECT_FALSE(eng.ingest(seg));
  EXPECT_EQ(eng.segments_rejected(), 1u);
  EXPECT_EQ(eng.accepted_end_index(), 0u);
  EXPECT_EQ(eng.accepted_end_fp(), core::kNdChainSeed);
  EXPECT_EQ(eng.segments_held(), 0u);
}

TEST(ReplayEngineTest, RejectsCorruptedEntry) {
  EventLog log;
  ReplayEngine eng;
  LogSegmentMsg seg = make_segment(log, 5, 9);
  seg.entries[2].a ^= 1;  // bit flip: chain fold cannot reproduce end_fp
  EXPECT_FALSE(eng.ingest(seg));
  EXPECT_EQ(eng.segments_rejected(), 1u);
  EXPECT_EQ(eng.accepted_end_index(), 0u);
}

TEST(ReplayEngineTest, RejectsSequenceGapAndStaleReplay) {
  EventLog log;
  ReplayEngine eng;
  LogSegmentMsg a = make_segment(log, 4, 3);
  LogSegmentMsg b = make_segment(log, 4, 4);
  EXPECT_FALSE(eng.ingest(b));  // gap: seq 1 before seq 0
  EXPECT_EQ(eng.accepted_end_index(), 0u);
  ASSERT_TRUE(eng.ingest(a));
  EXPECT_FALSE(eng.ingest(a));  // duplicate
  ASSERT_TRUE(eng.ingest(b));
  EXPECT_EQ(eng.segments_rejected(), 2u);
  EXPECT_EQ(eng.accepted_end_fp(), log.chain_fp());
}

// ------------------------------------------- shard x jobs byte-equivalence --

/// Everything replay mode promises is identical across NLC_SHARDS and
/// NLC_JOBS: the simulated world, both wire streams, and the client view.
struct Observables {
  std::uint64_t sim_events, requests, epochs, page_bytes;
  std::uint64_t log_bytes, log_segments, log_entries;
  std::uint64_t lat_count;
  double lat_mean, rps;

  static Observables of(const RunResult& r) {
    return {r.sim_events,
            r.requests_completed,
            r.metrics.epochs_completed,
            r.metrics.bytes_shipped,
            r.metrics.log_bytes_shipped,
            r.metrics.log_segments_shipped,
            r.metrics.log_entries_recorded,
            static_cast<std::uint64_t>(r.latencies_ms.count()),
            r.latencies_ms.mean(),
            r.throughput_rps};
  }
  bool operator==(const Observables&) const = default;
};

RunConfig replay_cfg(std::uint64_t seed, int shards) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 128;
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon.commit_mode = core::CommitMode::kReplay;
  cfg.nilicon.page_shards = shards;
  cfg.measure = nlc::seconds(2);
  cfg.seed = seed;
  return cfg;
}

TEST(ReplayDeterminismTest, ObservablesIdenticalAcrossShardsAndJobs) {
  const std::uint64_t kSeeds[] = {5, 6};
  std::vector<RunConfig> cfgs;
  for (std::uint64_t seed : kSeeds) {
    for (int shards : {1, 8}) cfgs.push_back(replay_cfg(seed, shards));
  }
  // The auditor riding along must not perturb any observable either.
  cfgs[1].nilicon.audit_level = core::AuditLevel::kCommitPoints;

  auto trial = [&](std::size_t i) {
    return Observables::of(harness::run_experiment(cfgs[i]));
  };
  TrialRunner serial(1);
  TrialRunner threaded(4);
  std::vector<Observables> a = serial.run(cfgs.size(), trial);
  std::vector<Observables> b = threaded.run(cfgs.size(), trial);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "jobs changed observables of trial " << i;
    EXPECT_GT(a[i].epochs, 10u);
    EXPECT_GT(a[i].log_entries, 0u);
    EXPECT_GT(a[i].log_bytes, 0u);
    EXPECT_LT(a[i].log_bytes, a[i].page_bytes);  // thin-stream asymmetry
  }
  // Shard count must not leak into any observable (seed-wise pairs).
  for (std::size_t s = 0; s < 2; ++s) {
    Observables one = a[s * 2], eight = a[s * 2 + 1];
    // (trial 1 runs with the auditor on; comparing within the pair is
    // still exact because audits are pure observers.)
    EXPECT_TRUE(one == eight) << "shards changed observables, seed set " << s;
  }
}

// ---------------------------------------------------- failover mid-epoch ----

TEST(ReplayFailoverTest, MidEpochFailoverReplaysLogToReleasePoint) {
  std::uint64_t events = 0, segments = 0, inputs = 0;
  for (std::uint64_t seed : {17u, 29u, 41u}) {
    RunConfig cfg = replay_cfg(seed, 1);
    cfg.measure = nlc::seconds(3);
    cfg.inject_fault = true;
    cfg.kv_validation = true;
    cfg.client_connections = 2;
    RunResult r = harness::run_experiment(cfg);
    ASSERT_TRUE(r.fault_injected) << seed;
    ASSERT_TRUE(r.recovered) << seed;
    EXPECT_TRUE(r.recovery.triggered) << seed;
    // Released output is never rolled back: the client sees no corruption
    // and no torn connection even though the crash landed past released
    // acks that only the event log can explain.
    EXPECT_EQ(r.kv_errors, 0u) << seed;
    EXPECT_EQ(r.broken_connections, 0u) << seed;
    EXPECT_GT(r.requests_after_fault, 0u) << seed;
    events += r.recovery.events_replayed;
    segments += r.recovery.segments_replayed;
    inputs += r.recovery.inputs_reinjected;
  }
  // Across the seed set, at least one crash lands mid-epoch with events
  // logged past the committed checkpoint — those must actually replay,
  // and their input sidecars must be re-injected into repaired sockets.
  EXPECT_GT(events, 0u);
  EXPECT_GT(segments, 0u);
  EXPECT_GT(inputs, 0u);
}

}  // namespace
}  // namespace nlc
