// Property-style parameterized suites over the system's core invariants:
// output commit, failover consistency, and page-store equivalence — swept
// across seeds, epoch lengths, fault times and optimization configurations.
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "harness/experiment.hpp"
#include "util/rng.hpp"

namespace nlc {
namespace {

using harness::Mode;
using harness::RunConfig;

// ---- Invariant: failover never loses acknowledged writes, never breaks
// ---- connections — for any fault time (seed-swept).

class FailoverConsistency : public ::testing::TestWithParam<int> {};

TEST_P(FailoverConsistency, NoLossAnySeed) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 256;
  cfg.mode = Mode::kNiLiCon;
  cfg.measure = nlc::seconds(3);
  cfg.inject_fault = true;
  cfg.kv_validation = true;
  cfg.client_connections = 2;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 13;
  auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.fault_injected);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, FailoverConsistency,
                         ::testing::Range(0, 8));

// ---- Invariant: the same holds for every Table I optimization level
// ---- (the optimizations must never change correctness, only cost).

class OptimizationLevels : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationLevels, FailoverCorrectAtEveryLevel) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 128;
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon = core::Options::table1_row(GetParam());
  cfg.measure = nlc::seconds(2);
  cfg.inject_fault = true;
  cfg.kv_validation = true;
  cfg.client_connections = 2;
  cfg.seed = 42;
  auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
}

// Row 7 = delta compression (extension): correctness must hold there too.
INSTANTIATE_TEST_SUITE_P(AllRows, OptimizationLevels, ::testing::Range(0, 8));

// ---- Invariant: the delta codec round-trips bit-exactly for arbitrary
// ---- page pairs, and never produces a wire size above the raw page.

class DeltaCodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DeltaCodecRoundTrip, ApplyInvertsEncode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ull + 3);
  kern::PageBytes prev(nlc::kPageSize);
  for (auto& b : prev) {
    b = static_cast<std::byte>(rng.uniform(0, 255));
  }
  // Mutate a random number of random-length runs of the previous page.
  kern::PageBytes cur = prev;
  int mutations = static_cast<int>(rng.uniform(0, 40));
  for (int m = 0; m < mutations; ++m) {
    auto off = static_cast<std::size_t>(rng.uniform(0, nlc::kPageSize - 1));
    auto len = std::min(static_cast<std::size_t>(rng.uniform(1, 300)),
                        nlc::kPageSize - off);
    for (std::size_t i = 0; i < len; ++i) {
      cur[off + i] = static_cast<std::byte>(rng.uniform(0, 255));
    }
  }

  criu::PageDelta d = criu::delta_encode(&prev, cur);
  EXPECT_LE(d.wire_size, nlc::kPageSize);
  kern::PageBytes decoded = criu::delta_apply(&prev, d, &cur);
  EXPECT_EQ(decoded, cur);

  if (mutations == 0) {
    // Unchanged page: only framing ships.
    EXPECT_FALSE(d.raw);
    EXPECT_EQ(d.wire_size, criu::kDeltaPageHeader);
  }

  // No reference => raw at full page cost, still correct.
  criu::PageDelta raw = criu::delta_encode(nullptr, cur);
  EXPECT_TRUE(raw.raw);
  EXPECT_EQ(raw.wire_size, nlc::kPageSize);
  EXPECT_EQ(criu::delta_apply(nullptr, raw, &cur), cur);
}

INSTANTIATE_TEST_SUITE_P(Pages, DeltaCodecRoundTrip, ::testing::Range(0, 16));

// ---- Invariant: response latency under protection is bounded below by
// ---- the commit delay and runs do not lose requests (epoch sweep).

class EpochLengths : public ::testing::TestWithParam<int> {};

TEST_P(EpochLengths, BufferingDelayTracksEpochLength) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon.epoch_length = nlc::milliseconds(GetParam());
  cfg.measure = nlc::seconds(2);
  cfg.client_connections = 1;
  auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.broken_connections, 0u);
  ASSERT_GT(r.requests_completed, 5u);
  // Mean latency at least ~half the epoch (release waits for commit).
  EXPECT_GT(r.mean_latency_ms, static_cast<double>(GetParam()) * 0.4);
}

INSTANTIATE_TEST_SUITE_P(Epochs, EpochLengths,
                         ::testing::Values(10, 30, 60, 120));

// ---- Invariant: list and radix page stores are observationally
// ---- equivalent (same lookups after any operation sequence).

class PageStoreEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PageStoreEquivalence, RandomOperationSequences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  criu::ListPageStore list;
  criu::RadixPageStore radix;
  for (std::uint64_t epoch = 0; epoch < 30; ++epoch) {
    list.begin_checkpoint(epoch);
    radix.begin_checkpoint(epoch);
    int n = static_cast<int>(rng.uniform(1, 40));
    for (int i = 0; i < n; ++i) {
      criu::PageRecord rec;
      rec.page = static_cast<kern::PageNum>(rng.uniform(0, 200));
      rec.version = epoch * 1000 + static_cast<std::uint64_t>(i);
      list.store(rec);
      radix.store(rec);
    }
  }
  ASSERT_EQ(list.page_count(), radix.page_count());
  for (kern::PageNum p = 0; p <= 200; ++p) {
    const criu::PageRecord* a = list.lookup(p);
    const criu::PageRecord* b = radix.lookup(p);
    ASSERT_EQ(a == nullptr, b == nullptr) << "page " << p;
    if (a != nullptr) {
      EXPECT_EQ(a->version, b->version) << "page " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sequences, PageStoreEquivalence,
                         ::testing::Range(0, 6));

// ---- Invariant: determinism — identical configs yield identical runs.

class Determinism : public ::testing::TestWithParam<int> {};

TEST_P(Determinism, RunsAreReproducible) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.measure = nlc::seconds(1);
  cfg.inject_fault = (GetParam() % 2) == 1;
  cfg.kv_validation = cfg.inject_fault;
  cfg.spec.kv_pages = cfg.kv_validation ? 64 : 0;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  auto a = harness::run_experiment(cfg);
  auto b = harness::run_experiment(cfg);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(to_millis(a.interruption), to_millis(b.interruption));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Range(0, 4));

}  // namespace
}  // namespace nlc
