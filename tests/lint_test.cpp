// Golden-fixture suite for the nlc_lint static analyzer (DESIGN.md §13).
//
// Each rule has a positive fixture (must produce exactly the expected
// rule IDs at the expected lines, exit status 1) and a negative fixture
// (must produce zero findings and exactly one suppressed entry, exit
// status 0 — the suppression comment path is exercised on every rule).
// The test drives the real built binary over --json output, so the CLI,
// the JSON writer, the lexer and the rule engine are all under test.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
  // (rule, line) pairs in report order (sorted by the analyzer).
  std::vector<std::pair<std::string, int>> findings;
  std::vector<std::pair<std::string, int>> suppressed;
};

std::string fixture(const std::string& name) {
  return std::string(NLC_LINT_FIXTURE_DIR) + "/" + name;
}

/// Extracts (rule, line) pairs from one JSON array section. The analyzer
/// emits one object per line, so a line-oriented scan is exact.
std::vector<std::pair<std::string, int>> parse_entries(
    const std::string& json, const char* key) {
  std::vector<std::pair<std::string, int>> out;
  std::size_t sec = json.find(std::string("\"") + key + "\": [");
  if (sec == std::string::npos) return out;
  std::size_t end = json.find(']', sec);
  std::size_t pos = sec;
  while (true) {
    std::size_t r = json.find("\"rule\": \"", pos);
    if (r == std::string::npos || r > end) break;
    r += 9;
    std::size_t rq = json.find('"', r);
    std::size_t l = json.find("\"line\": ", rq);
    out.emplace_back(json.substr(r, rq - r),
                     std::atoi(json.c_str() + l + 8));
    pos = l;
  }
  return out;
}

LintRun run_lint(const std::string& args) {
  LintRun res;
  std::string cmd = std::string(NLC_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) res.output.append(buf, n);
  int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  res.findings = parse_entries(res.output, "findings");
  res.suppressed = parse_entries(res.output, "suppressed");
  return res;
}

using Expected = std::vector<std::pair<std::string, int>>;

/// Positive fixture: exact findings, nothing suppressed, exit 1.
void expect_positive(const std::string& name, const Expected& want) {
  SCOPED_TRACE(name);
  LintRun r = run_lint("--json " + fixture(name));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.findings, want) << r.output;
  EXPECT_TRUE(r.suppressed.empty()) << r.output;
}

/// Negative fixture: no findings, exactly the expected suppressions
/// (every rule's negative fixture carries one), exit 0.
void expect_negative(const std::string& name, const Expected& want_sup) {
  SCOPED_TRACE(name);
  LintRun r = run_lint("--json " + fixture(name));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.findings.empty()) << r.output;
  EXPECT_EQ(r.suppressed, want_sup) << r.output;
}

TEST(LintFixtures, NoAssert) {
  expect_positive("pos_no_assert.cpp",
                  {{"no-assert", 2}, {"no-assert", 5}});
  expect_negative("neg_no_assert.cpp", {{"no-assert", 6}});
}

TEST(LintFixtures, NoNakedNew) {
  expect_positive("pos_no_naked_new.cpp",
                  {{"no-naked-new", 3}, {"no-naked-new", 4}});
  expect_negative("neg_no_naked_new.cpp", {{"no-naked-new", 11}});
}

TEST(LintFixtures, NoRawThread) {
  expect_positive("pos_no_raw_thread.cpp", {{"no-raw-thread", 4}});
  expect_negative("neg_no_raw_thread.cpp", {{"no-raw-thread", 7}});
}

TEST(LintFixtures, NoRawClock) {
  expect_positive("pos_no_raw_clock.cpp", {{"no-raw-clock", 4}});
  expect_negative("neg_no_raw_clock.cpp", {{"no-raw-clock", 4}});
}

TEST(LintFixtures, ArenaAlloc) {
  expect_positive("pos_arena_alloc.cpp",
                  {{"arena-alloc", 4}, {"arena-alloc", 7}});
  expect_negative("neg_arena_alloc.cpp", {{"arena-alloc", 6}});
}

TEST(LintFixtures, RawRand) {
  // Two findings share line 4 (engine + random_device); sorted by message.
  expect_positive("pos_raw_rand.cpp",
                  {{"raw-rand", 4}, {"raw-rand", 4}, {"raw-rand", 5}});
  expect_negative("neg_raw_rand.cpp", {{"raw-rand", 5}});
}

TEST(LintFixtures, UnorderedIter) {
  // Range-for with an order-dependent body, then an iterator loop.
  expect_positive("pos_unordered_iter.cpp",
                  {{"unordered-iter", 9}, {"unordered-iter", 14}});
  // Order-independent accumulation and ordered containers stay silent.
  expect_negative("neg_unordered_iter.cpp", {{"unordered-iter", 20}});
}

TEST(LintFixtures, PtrKey) {
  expect_positive("pos_ptr_key.cpp", {{"ptr-key", 5}, {"ptr-key", 6}});
  expect_negative("neg_ptr_key.cpp", {{"ptr-key", 8}});
}

TEST(LintFixtures, PtrSort) {
  expect_positive("pos_ptr_sort.cpp", {{"ptr-sort", 5}});
  expect_negative("neg_ptr_sort.cpp", {{"ptr-sort", 9}});
}

TEST(LintFixtures, ConcurrencyOwner) {
  expect_positive("pos_concurrency_owner.cpp",
                  {{"concurrency-owner", 5}, {"concurrency-owner", 6}});
  expect_negative("neg_concurrency_owner.cpp", {{"concurrency-owner", 5}});
}

TEST(LintFixtures, DetachedThis) {
  expect_positive("pos_detached_this.cpp", {{"detached-this", 4}});
  expect_negative("neg_detached_this.cpp", {{"detached-this", 6}});
}

TEST(LintFixtures, ReplayWallclock) {
  // Wall clock and a fresh Rng inside namespace ...::replay; the negative
  // fixture shows wall_now_ns is fine outside the engine namespace.
  expect_positive("pos_replay_wallclock.cpp",
                  {{"replay-wallclock", 3}, {"replay-wallclock", 5}});
  expect_negative("neg_replay_wallclock.cpp", {{"replay-wallclock", 10}});
}

TEST(LintFixtures, EpochctlWallclock) {
  // The adaptive epoch controller (namespace ...::epochctl) is held to
  // the same purity standard as the replay engine: wall clock or ambient
  // randomness there would break byte determinism across shard/job
  // configurations (DESIGN.md §15).
  expect_positive("pos_epochctl_wallclock.cpp",
                  {{"replay-wallclock", 3}, {"replay-wallclock", 5}});
  expect_negative("neg_epochctl_wallclock.cpp", {{"replay-wallclock", 10}});
}

// Test code is exempt from the unordered-iteration rule (tests may assert
// over hash order locally); --assume-test marks explicit files as tests.
TEST(LintCli, AssumeTestExemptsUnorderedIter) {
  LintRun r = run_lint("--json --assume-test " +
                       fixture("pos_unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.findings.empty()) << r.output;
}

TEST(LintCli, ListRulesMatchesCatalog) {
  LintRun r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  const char* kRules[] = {"no-assert",      "no-naked-new",
                          "no-raw-thread",  "no-raw-clock",
                          "arena-alloc",    "raw-rand",
                          "unordered-iter", "ptr-key",
                          "ptr-sort",       "concurrency-owner",
                          "detached-this",  "replay-wallclock"};
  for (const char* rule : kRules) {
    EXPECT_NE(r.output.find(std::string(rule) + "\n"), std::string::npos)
        << "missing rule: " << rule;
  }
}

// Linting all fixtures at once must find every positive violation and no
// cross-fixture false positives from the shared symbol table.
TEST(LintCli, WholeFixtureDirIsStable) {
  std::string all;
  const char* kPos[] = {
      "pos_no_assert.cpp",     "pos_no_naked_new.cpp",
      "pos_no_raw_thread.cpp", "pos_no_raw_clock.cpp",
      "pos_arena_alloc.cpp",   "pos_raw_rand.cpp",
      "pos_unordered_iter.cpp", "pos_ptr_key.cpp",
      "pos_ptr_sort.cpp",      "pos_concurrency_owner.cpp",
      "pos_detached_this.cpp", "pos_replay_wallclock.cpp",
      "pos_epochctl_wallclock.cpp"};
  const char* kNeg[] = {
      "neg_no_assert.cpp",     "neg_no_naked_new.cpp",
      "neg_no_raw_thread.cpp", "neg_no_raw_clock.cpp",
      "neg_arena_alloc.cpp",   "neg_raw_rand.cpp",
      "neg_unordered_iter.cpp", "neg_ptr_key.cpp",
      "neg_ptr_sort.cpp",      "neg_concurrency_owner.cpp",
      "neg_detached_this.cpp", "neg_replay_wallclock.cpp",
      "neg_epochctl_wallclock.cpp"};
  for (const char* f : kPos) all += " " + fixture(f);
  for (const char* f : kNeg) all += " " + fixture(f);
  LintRun r = run_lint("--json" + all);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.findings.size(), 23u) << r.output;   // sum of all positives
  EXPECT_EQ(r.suppressed.size(), 13u) << r.output; // one per negative
  // No finding may escape from a negative fixture: the findings array
  // (everything before the suppressed section) names only pos_ files.
  EXPECT_EQ(r.output.substr(0, r.output.find("\"suppressed\"")).find("/neg_"),
            std::string::npos)
      << r.output;
}

// src/topo (DESIGN.md §16) is inside the concurrency-owner rule's scope:
// replication plans and fault-domain placement must stay pure
// simulation-deterministic bookkeeping, so a raw primitive there is a
// finding, while the owning modules (src/harness etc.) stay exempt.
TEST(LintCli, TopoModuleIsInConcurrencyOwnerScope) {
  namespace fs = std::filesystem;
  fs::path tmp = fs::path(::testing::TempDir()) / "lint_topo_scope";
  fs::create_directories(tmp / "src/topo");
  fs::create_directories(tmp / "src/harness");
  std::ofstream(tmp / "src/topo/probe.cpp") << "#include <mutex>\n"
                                               "std::mutex topo_m;\n";
  std::ofstream(tmp / "src/harness/probe.cpp") << "#include <mutex>\n"
                                                  "std::mutex harness_m;\n";
  LintRun r = run_lint("--json --root " + tmp.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  ASSERT_EQ(r.findings.size(), 1u) << r.output;
  EXPECT_EQ(r.findings[0].first, "concurrency-owner");
  EXPECT_NE(r.output.find("src/topo/probe.cpp"), std::string::npos)
      << r.output;
  fs::remove_all(tmp);
}

}  // namespace
