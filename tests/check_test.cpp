// Tests for the invariant-audit layer (src/check).
//
// Two tiers: unit tests drive each checker's event API directly, including
// negative sequences that must throw InvariantError; integration tests run
// an audited cluster and tamper with live state (mutating a frozen payload,
// releasing plug output behind the agent's back) to prove the auditor
// catches protocol violations end to end, not just in isolation.
#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "check/audit.hpp"
#include "check/invariants.hpp"
#include "core/cluster.hpp"
#include "core/options.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"

namespace nlc::check {
namespace {

using namespace nlc::literals;
using sim::task;

kern::PagePayload make_payload(std::byte fill) {
  auto bytes = util::arena_make_shared<kern::PageBytes>(nlc::kPageSize, fill);
  return bytes;
}

// ---------------------------------------------------------------------------
// OutputCommitChecker

TEST(OutputCommitTest, AcceptsReleaseAfterAck) {
  OutputCommitChecker occ;
  occ.packet_buffered();
  occ.packet_buffered();
  occ.marker_inserted(0, 1);
  EXPECT_EQ(occ.mirrored_packets(), 2u);
  occ.ack_received(0);
  occ.released(1, 2, 0);
  EXPECT_EQ(occ.mirrored_packets(), 0u);
}

TEST(OutputCommitTest, AcceptsSyncPathAckBeforeMarker) {
  // Initial-sync ordering: the ack arrives while the container is still
  // paused, before the epoch's marker is inserted.
  OutputCommitChecker occ;
  occ.ack_received(0);
  occ.marker_inserted(0, 1);
  occ.released(1, 0, 0);
}

TEST(OutputCommitTest, RejectsReleaseBeforeAck) {
  OutputCommitChecker occ;
  occ.packet_buffered();
  occ.marker_inserted(0, 1);
  EXPECT_THROW(occ.released(1, 1, 0), InvariantError);
}

TEST(OutputCommitTest, RejectsReleaseOfLaterUnackedEpoch) {
  OutputCommitChecker occ;
  occ.marker_inserted(0, 1);
  occ.ack_received(0);
  occ.packet_buffered();
  occ.marker_inserted(1, 2);
  // Epoch 0 is acked; epoch 1 is not. Releasing up to epoch 1's marker
  // would leak epoch 1's packet.
  EXPECT_THROW(occ.released(2, 1, 1), InvariantError);
}

TEST(OutputCommitTest, RejectsWrongPacketCount) {
  OutputCommitChecker occ;
  occ.packet_buffered();
  occ.packet_buffered();
  occ.marker_inserted(0, 1);
  occ.ack_received(0);
  EXPECT_THROW(occ.released(1, 1, 0), InvariantError);
}

TEST(OutputCommitTest, RejectsUnknownMarker) {
  OutputCommitChecker occ;
  occ.ack_received(0);
  EXPECT_THROW(occ.released(7, 0), InvariantError);
}

TEST(OutputCommitTest, DiscardMustMatchMirror) {
  OutputCommitChecker occ;
  occ.packet_buffered();
  occ.marker_inserted(0, 1);
  occ.packet_buffered();
  occ.discarded(2);  // failover drop of everything buffered: fine
  OutputCommitChecker occ2;
  occ2.packet_buffered();
  EXPECT_THROW(occ2.discarded(0), InvariantError);
}

// ---------------------------------------------------------------------------
// EpochCommitChecker

TEST(EpochCommitTest, HappyPathTwoEpochs) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.commit_begin(0);
  ec.drbd_applied(0);
  ec.committed(0);
  ec.ack_sent(1, 1);
  ec.commit_begin(1);
  ec.drbd_applied(1);
  ec.committed(1);
  EXPECT_EQ(ec.committed_count(), 2u);
}

TEST(EpochCommitTest, RejectsSkippedAck) {
  EpochCommitChecker ec;
  EXPECT_THROW(ec.ack_sent(1, 1), InvariantError);
}

TEST(EpochCommitTest, RejectsAckBeforeBarrier) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.commit_begin(0);
  ec.committed(0);
  // Epoch 1's barrier has not arrived (newest barrier still 0).
  EXPECT_THROW(ec.ack_sent(1, 0), InvariantError);
}

TEST(EpochCommitTest, RejectsCommitWithoutAck) {
  EpochCommitChecker ec;
  EXPECT_THROW(ec.commit_begin(0), InvariantError);
}

TEST(EpochCommitTest, RejectsDoubleCommit) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.commit_begin(0);
  ec.committed(0);
  EXPECT_THROW(ec.commit_begin(0), InvariantError);
}

TEST(EpochCommitTest, RejectsOverlappingCommits) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.ack_sent(1, 1);
  ec.commit_begin(0);
  EXPECT_THROW(ec.commit_begin(1), InvariantError);
}

TEST(EpochCommitTest, RejectsDrbdApplyOutsideFold) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  EXPECT_THROW(ec.drbd_applied(0), InvariantError);
}

TEST(EpochCommitTest, RejectsDrbdApplyOfFutureEpoch) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.ack_sent(1, 1);
  ec.commit_begin(0);
  EXPECT_THROW(ec.drbd_applied(1), InvariantError);
}

TEST(EpochCommitTest, RejectsDrbdDiscardOutsideRecovery) {
  EpochCommitChecker ec;
  EXPECT_THROW(ec.drbd_discarded(), InvariantError);
}

TEST(EpochCommitTest, RecoveryLifecycle) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.commit_begin(0);
  ec.committed(0);
  ec.recovery_started(0);
  ec.drbd_discarded();
  ec.recovered(0);
  EXPECT_FALSE(ec.in_recovery());
}

TEST(EpochCommitTest, RejectsRestoreFromStaleEpoch) {
  EpochCommitChecker ec;
  ec.ack_sent(0, 0);
  ec.commit_begin(0);
  ec.committed(0);
  ec.ack_sent(1, 1);
  ec.commit_begin(1);
  ec.committed(1);
  ec.recovery_started(1);
  // Restoring from epoch 0 would silently drop committed epoch 1.
  EXPECT_THROW(ec.recovered(0), InvariantError);
}

// ---------------------------------------------------------------------------
// PayloadFreezeGuard

TEST(PayloadFreezeTest, CleanPayloadVerifies) {
  PayloadFreezeGuard guard;
  kern::PagePayload p = make_payload(std::byte{0x5A});
  guard.pin(p);
  guard.pin(p);  // idempotent
  EXPECT_EQ(guard.pins(), 1u);
  guard.verify_all();
  EXPECT_EQ(guard.verifications(), 1u);
}

TEST(PayloadFreezeTest, DetectsMutation) {
  PayloadFreezeGuard guard;
  kern::PagePayload p = make_payload(std::byte{0x5A});
  guard.pin(p);
  // Simulates a buggy pipeline stage scribbling over bytes it promised to
  // keep frozen (the exact violation COW cloning exists to prevent).
  const_cast<kern::PageBytes&>(*p)[17] = std::byte{0xFF};
  EXPECT_THROW(guard.verify_all(), InvariantError);
}

TEST(PayloadFreezeTest, RetiredPayloadsAreDropped) {
  PayloadFreezeGuard guard;
  kern::PagePayload p = make_payload(std::byte{1});
  guard.pin(p);
  p.reset();  // last strong reference gone: mutation is no longer possible
  guard.verify_all();
  EXPECT_EQ(guard.live(), 0u);
}

TEST(PayloadFreezeTest, BudgetedSweepReachesEveryPayload) {
  PayloadFreezeGuard guard;
  std::vector<kern::PagePayload> keep;
  for (int i = 0; i < 5; ++i) {
    keep.push_back(make_payload(std::byte(i)));
    guard.pin(keep.back());
  }
  guard.verify_budget(2);
  guard.verify_budget(2);
  guard.verify_budget(2);
  EXPECT_GE(guard.verifications(), 5u);
}

TEST(PayloadFreezeTest, BudgetedSweepDetectsMutation) {
  PayloadFreezeGuard guard;
  kern::PagePayload p = make_payload(std::byte{9});
  guard.pin(p);
  const_cast<kern::PageBytes&>(*p)[0] = std::byte{0};
  EXPECT_THROW(guard.verify_budget(8), InvariantError);
}

// ---------------------------------------------------------------------------
// StoreEquivalenceChecker

criu::PageRecord content_record(kern::PageNum page, std::uint64_t version,
                                std::byte fill) {
  criu::PageRecord rec;
  rec.page = page;
  rec.version = version;
  rec.content = make_payload(fill);
  return rec;
}

TEST(StoreEquivalenceTest, MatchingStorePasses) {
  criu::RadixPageStore store;
  store.begin_checkpoint(0);
  criu::CheckpointImage img;
  img.pages.push_back(content_record(100, 3, std::byte{0xAB}));
  store.store(img.pages.back());
  StoreEquivalenceChecker checker;
  checker.check(store, img);
  EXPECT_EQ(checker.checks(), 1u);
}

TEST(StoreEquivalenceTest, RejectsMissingPage) {
  criu::RadixPageStore store;
  criu::CheckpointImage img;
  img.pages.push_back(content_record(100, 3, std::byte{0xAB}));
  StoreEquivalenceChecker checker;
  EXPECT_THROW(checker.check(store, img), InvariantError);
}

TEST(StoreEquivalenceTest, RejectsStaleVersion) {
  criu::RadixPageStore store;
  store.begin_checkpoint(0);
  store.store(content_record(100, 2, std::byte{0xAB}));
  criu::CheckpointImage img;
  img.pages.push_back(content_record(100, 3, std::byte{0xAB}));
  StoreEquivalenceChecker checker;
  EXPECT_THROW(checker.check(store, img), InvariantError);
}

TEST(StoreEquivalenceTest, RejectsDivergedBytes) {
  criu::RadixPageStore store;
  store.begin_checkpoint(0);
  store.store(content_record(100, 3, std::byte{0xCD}));
  criu::CheckpointImage img;
  img.pages.push_back(content_record(100, 3, std::byte{0xAB}));
  StoreEquivalenceChecker checker;
  EXPECT_THROW(checker.check(store, img), InvariantError);
}

// ---------------------------------------------------------------------------
// DeltaReplayChecker

TEST(DeltaReplayTest, AgreesWithTheRealCodec) {
  criu::CheckpointImage e0;
  e0.pages.push_back(content_record(7, 1, std::byte{0x11}));
  criu::CheckpointImage e1;
  e1.pages.push_back(content_record(7, 2, std::byte{0x11}));
  const_cast<kern::PageBytes&>(*e1.pages[0].content)[100] = std::byte{0x22};

  criu::DeltaCodec codec;
  codec.encode_epoch(e0);
  codec.encode_epoch(e1);
  EXPECT_LT(e1.pages[0].wire_size, nlc::kPageSize);  // compression won

  DeltaReplayChecker replay;
  replay.replay(e0, /*delta_enabled=*/true);
  replay.replay(e1, /*delta_enabled=*/true);
  EXPECT_EQ(replay.checks(), 2u);
}

TEST(DeltaReplayTest, RejectsTamperedWireStamp) {
  criu::CheckpointImage img;
  img.pages.push_back(content_record(7, 1, std::byte{0x11}));
  criu::DeltaCodec codec;
  codec.encode_epoch(img);
  img.pages[0].wire_size -= 1;  // a lying size stamp under-bills the wire
  DeltaReplayChecker replay;
  EXPECT_THROW(replay.replay(img, true), InvariantError);
}

TEST(DeltaReplayTest, RejectsCompressedStampWithDeltaOff) {
  criu::CheckpointImage img;
  img.pages.push_back(content_record(7, 1, std::byte{0x11}));
  img.pages[0].wire_size = 100;
  DeltaReplayChecker replay;
  EXPECT_THROW(replay.replay(img, false), InvariantError);
}

// ---------------------------------------------------------------------------
// Integration: a protected cluster with the auditor attached.

struct AuditedService {
  core::Cluster cl;
  apps::AppEnv env;
  std::unique_ptr<apps::ServerApp> app;
  std::unique_ptr<InvariantAuditor> auditor;
  kern::ContainerId cid{};

  explicit AuditedService(core::AuditLevel level)
      : env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp,
            core::kServiceIp, 7} {
    apps::AppSpec spec = apps::netecho_spec();
    kern::Container& c = cl.create_service_container(spec.name);
    cid = c.id();
    app = std::make_unique<apps::ServerApp>(env, spec);
    app->setup(cid);

    core::Options opts;
    opts.audit_level = level;
    cl.on_agents_created = [this, opts] {
      auditor = std::make_unique<InvariantAuditor>(cl, cid, opts);
      auditor->attach();
    };
    bool ready = false;
    cl.sim.spawn([](core::Cluster& cc, kern::ContainerId id,
                    core::Options o, bool& r) -> task<> {
      co_await cc.protect(id, o);
      r = true;
    }(cl, cid, opts, ready));
    Time deadline = cl.sim.now() + 5_s;
    while (!ready && cl.sim.now() < deadline && cl.sim.step()) {
    }
    EXPECT_TRUE(ready);
  }

  /// Dirties content pages in the service process so epochs carry real
  /// payloads through the pipeline.
  void write_content(std::byte fill) {
    kern::Process* p = cl.primary_kernel->container_processes(cid).front();
    std::vector<std::byte> data(64, fill);
    p->mm().write(p->mm().vmas().front().start, 0, data);
  }
};

TEST(AuditedClusterTest, ContinuousAuditedRunIsClean) {
  AuditedService svc(core::AuditLevel::kContinuous);
  svc.write_content(std::byte{0x42});
  svc.cl.sim.run_until(svc.cl.sim.now() + 1_s);
  svc.auditor->final_audit();
  AuditStats st = svc.auditor->stats();
  EXPECT_GT(st.output_commit_checks, 10u);
  EXPECT_GT(st.epoch_commit_checks, 50u);
  EXPECT_GT(st.payload_pins, 0u);
  EXPECT_GT(st.payload_verifications, 0u);
  EXPECT_GT(st.store_equivalence_checks, 0u);
  EXPECT_GT(st.sweeps, 0u);
}

TEST(AuditedClusterTest, CommitPointsLevelSkipsContinuousChecks) {
  AuditedService svc(core::AuditLevel::kCommitPoints);
  svc.write_content(std::byte{0x42});
  svc.cl.sim.run_until(svc.cl.sim.now() + 500_ms);
  AuditStats st = svc.auditor->stats();
  EXPECT_GT(st.store_equivalence_checks, 0u);
  EXPECT_EQ(st.sweeps, 0u);
  EXPECT_EQ(st.payload_pins, 0u);
  EXPECT_EQ(st.delta_replay_checks, 0u);
}

TEST(AuditedClusterTest, DetectsFrozenPayloadMutation) {
  AuditedService svc(core::AuditLevel::kContinuous);
  svc.write_content(std::byte{0x42});
  svc.cl.sim.run_until(svc.cl.sim.now() + 200_ms);
  // Reach behind the COW discipline and scribble on a payload the backup's
  // page store holds — the bug class the freeze audit exists to catch
  // (every legal mutation path clones shared payloads first).
  auto pages = svc.cl.backup_agent->page_store().all_pages();
  const criu::PageRecord* victim = nullptr;
  for (const criu::PageRecord* rec : pages) {
    if (rec->has_content()) {
      victim = rec;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const_cast<kern::PageBytes&>(*victim->content)[0] ^= std::byte{0xFF};
  EXPECT_THROW(svc.cl.sim.run_until(svc.cl.sim.now() + 500_ms),
               InvariantError);
}

TEST(AuditedClusterTest, DetectsPlugReleaseBehindAgentsBack) {
  AuditedService svc(core::AuditLevel::kCommitPoints);
  svc.cl.sim.run_until(svc.cl.sim.now() + 200_ms);
  // A marker+release pair the agent never issued: output would escape
  // without any epoch commit behind it.
  net::PlugQdisc& plug = svc.cl.primary_tcp.plug(core::kServiceIp);
  std::uint64_t rogue = plug.insert_marker();
  EXPECT_THROW(plug.release_to_marker(rogue), InvariantError);
}

}  // namespace
}  // namespace nlc::check
