#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"
#include "core/options.hpp"
#include "core/state_cache.hpp"
#include "sim/simulation.hpp"

namespace nlc::core {
namespace {

using namespace nlc::literals;
using sim::task;

apps::AppSpec tiny_spec() {
  apps::AppSpec s = apps::netecho_spec();
  s.kv_pages = 256;  // enable KV for validation tests
  return s;
}

struct ProtectedService {
  Cluster cl;
  apps::AppEnv env;
  std::unique_ptr<apps::ServerApp> app;
  kern::ContainerId cid;

  explicit ProtectedService(apps::AppSpec spec = tiny_spec(),
                            Options opts = {})
      : env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
            7} {
    kern::Container& c = cl.create_service_container(spec.name);
    cid = c.id();
    app = std::make_unique<apps::ServerApp>(env, spec);
    app->setup(cid);
    bool ready = false;
    cl.sim.spawn([](Cluster& cc, kern::ContainerId id, Options o,
                    bool& r) -> task<> {
      co_await cc.protect(id, o);
      r = true;
    }(cl, cid, opts, ready));
    // Run only until protection is up so tests measure from a clean start.
    Time deadline = cl.sim.now() + 5_s;
    while (!ready && cl.sim.now() < deadline && cl.sim.step()) {
    }
    EXPECT_TRUE(ready);
  }
};

TEST(ClusterTest, ProtectCompletesInitialSync) {
  ProtectedService svc;
  EXPECT_GE(svc.cl.primary_agent->acked_epoch(), 0u);
  // An idle container has no resident pages (full dumps skip holes), so
  // dirty some memory and let an incremental epoch ship it.
  kern::Process* p =
      svc.cl.primary_kernel->container_processes(svc.cid).front();
  p->mm().touch_range(p->mm().vmas().front().start, 16);
  svc.cl.sim.run_until(svc.cl.sim.now() + 200_ms);
  EXPECT_GE(svc.cl.backup_agent->committed_epoch(), 1u);
  EXPECT_GE(svc.cl.backup_agent->page_store().page_count(), 16u);
}

TEST(ClusterTest, EpochsAdvanceAndMetricsAccumulate) {
  ProtectedService svc;
  svc.cl.sim.run_until(svc.cl.sim.now() + 1_s);
  // ~30ms epochs: expect on the order of 30 epochs in a second.
  EXPECT_GT(svc.cl.metrics.epochs_completed, 20u);
  EXPECT_LT(svc.cl.metrics.epochs_completed, 40u);
  EXPECT_GT(svc.cl.metrics.stop_time_ms.count(), 20u);
  // Idle echo container: stop time a few ms (freeze + harvest).
  EXPECT_LT(svc.cl.metrics.stop_time_ms.mean(), 10.0);
  EXPECT_GT(svc.cl.metrics.stop_time_ms.mean(), 0.5);
}

TEST(ClusterTest, BackupCommitsTrackPrimaryEpochs) {
  ProtectedService svc;
  svc.cl.sim.run_until(svc.cl.sim.now() + 1_s);
  auto primary_epoch = svc.cl.primary_agent->current_epoch();
  auto committed = svc.cl.backup_agent->committed_epoch();
  EXPECT_GE(committed + 3, primary_epoch);  // at most a couple in flight
}

/// Output commit: a response never reaches the client before the epoch
/// that produced it is acknowledged by the backup.
TEST(ClusterTest, ResponseDelayedUntilEpochCommit) {
  ProtectedService svc;
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = svc.app->spec().port;
  cc.connections = 1;
  cc.request_bytes = 10;
  clients::ClosedLoopClient client(svc.cl.sim, svc.cl.client_domain,
                                   svc.cl.client_tcp, cc, 42);
  client.start();
  svc.cl.sim.run_until(svc.cl.sim.now() + 2_s);
  client.stop();
  ASSERT_GT(client.completed(), 10u);
  // An echo takes <1ms unprotected; under 30ms epochs the release waits
  // for the next epoch boundary: mean latency must reflect the buffering
  // delay (≈ half an epoch at minimum).
  EXPECT_GT(client.latencies_ms().mean(), 10.0);
  EXPECT_EQ(client.broken_connections(), 0u);
}

TEST(ClusterTest, PlugHoldsPacketsBetweenEpochs) {
  ProtectedService svc;
  // Enqueue something mid-epoch and verify the plug is engaged.
  EXPECT_TRUE(svc.cl.primary_tcp.plug(kServiceIp).engaged());
}

TEST(StateCacheTest, InvalidationOnMount) {
  Cluster cl;
  kern::Container& c = cl.create_service_container("x");
  InfrequentStateCache cache(*cl.primary_kernel, c.id());
  EXPECT_FALSE(cache.valid());
  criu::CheckpointEngine eng(*cl.primary_kernel, cl.primary_tcp);
  cache.update(eng.harvest_infrequent(c.id()));
  EXPECT_TRUE(cache.valid());
  cl.primary_kernel->do_mount(c.id(), {"tmpfs", "/y", "tmpfs", 0});
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(StateCacheTest, OtherContainersDoNotInvalidate) {
  Cluster cl;
  kern::Container& a = cl.create_service_container("a");
  kern::Container& b = cl.primary_kernel->create_container("b");
  InfrequentStateCache cache(*cl.primary_kernel, a.id());
  criu::CheckpointEngine eng(*cl.primary_kernel, cl.primary_tcp);
  cache.update(eng.harvest_infrequent(a.id()));
  cl.primary_kernel->do_mount(b.id(), {"tmpfs", "/y", "tmpfs", 0});
  EXPECT_TRUE(cache.valid());
}

TEST(ClusterTest, HeartbeatDetectionLatency) {
  ProtectedService svc;
  svc.cl.sim.run_until(svc.cl.sim.now() + 500_ms);
  Time kill_time = svc.cl.sim.now();
  svc.cl.fail_primary();
  svc.cl.sim.run_until(kill_time + 3_s);
  ASSERT_TRUE(svc.cl.backup_agent->recovered());
  const RecoveryMetrics& rm = svc.cl.backup_agent->recovery_metrics();
  // Detection: 3 missed 30ms beats => ~60-150ms after the crash.
  Time detect_after = rm.detection_started - kill_time;
  EXPECT_GE(detect_after, 60_ms);
  EXPECT_LE(detect_after, 160_ms);
}

TEST(ClusterTest, RecoveryRestoresContainerOnBackup) {
  ProtectedService svc;
  svc.cl.sim.run_until(svc.cl.sim.now() + 500_ms);
  svc.cl.fail_primary();
  svc.cl.sim.run_until(svc.cl.sim.now() + 3_s);
  ASSERT_TRUE(svc.cl.backup_agent->recovered());
  kern::Container* restored = svc.cl.backup_kernel->container(svc.cid);
  ASSERT_NE(restored, nullptr);
  EXPECT_FALSE(svc.cl.backup_kernel->container_processes(svc.cid).empty());
  // Service address now answered by the backup host.
  EXPECT_EQ(svc.cl.network.ip_host(kServiceIp), svc.cl.backup_host);
  const RecoveryMetrics& rm = svc.cl.backup_agent->recovery_metrics();
  EXPECT_GT(rm.restore_time, 100_ms);   // Table II scale
  EXPECT_LT(rm.restore_time, 600_ms);
  EXPECT_EQ(rm.arp_time, 28_ms);
  EXPECT_EQ(rm.misc_time, 7_ms);
}

TEST(ClusterTest, RecoveryWithoutCommittedSyncThrows) {
  Cluster cl;
  cl.create_service_container("x");
  // No protect(): manual trigger must fail loudly, not corrupt.
  // (Backup agent requires protect(); construct directly is not exposed,
  // so this simply documents that protect-before-fail is required.)
  SUCCEED();
}

TEST(ClusterTest, UncommittedEpochDiscardedOnFailover) {
  ProtectedService svc;
  svc.cl.sim.run_until(svc.cl.sim.now() + 500_ms);
  auto committed_before = svc.cl.backup_agent->committed_epoch();
  svc.cl.fail_primary();
  svc.cl.sim.run_until(svc.cl.sim.now() + 3_s);
  ASSERT_TRUE(svc.cl.backup_agent->recovered());
  // Restored from a committed epoch at or after what we saw.
  EXPECT_GE(svc.cl.backup_agent->recovery_metrics().committed_epoch,
            committed_before);
}

/// End-to-end: a KV client never observes a lost acknowledged write or a
/// broken connection across a failover.
TEST(ClusterTest, FailoverPreservesAcknowledgedWrites) {
  apps::AppSpec spec = tiny_spec();
  ProtectedService svc(spec);
  apps::AppEnv backup_env{&svc.cl.sim, svc.cl.backup_kernel.get(),
                          &svc.cl.backup_tcp, kServiceIp, 8};
  auto holder = std::make_shared<std::unique_ptr<apps::ServerApp>>();
  svc.cl.backup_agent->set_on_restored(
      [&, holder](const core::FailoverContext& ctx) {
        *holder = apps::ServerApp::attach_restored(backup_env, spec, ctx);
      });

  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = spec.port;
  cc.connections = 2;
  cc.kv_mode = true;
  cc.kv_ops_per_request = 8;
  cc.keys_per_connection = 64;
  clients::ClosedLoopClient client(svc.cl.sim, svc.cl.client_domain,
                                   svc.cl.client_tcp, cc, 99);
  client.start();
  svc.cl.sim.run_until(svc.cl.sim.now() + 1_s);
  auto before_fault = client.completed();
  ASSERT_GT(before_fault, 5u);

  svc.cl.fail_primary();
  svc.cl.sim.run_until(svc.cl.sim.now() + 5_s);
  client.stop();
  svc.cl.sim.run_until(svc.cl.sim.now() + 1_s);

  EXPECT_TRUE(svc.cl.backup_agent->recovered());
  EXPECT_GT(client.completed(), before_fault);  // service resumed
  EXPECT_EQ(client.kv_errors(), 0u);            // no lost acknowledged write
  EXPECT_EQ(client.broken_connections(), 0u);   // no RST (§III)
  EXPECT_EQ(client.protocol_errors(), 0u);
}

/// Disk state: after failover the backup's disk+cache view equals the
/// committed epoch (DRBD barrier/commit discipline).
TEST(ClusterTest, DrbdBufferedWritesCommittedWithEpochs) {
  ProtectedService svc;
  // Generate some filesystem traffic on the primary.
  auto ino = svc.cl.primary_kernel->fs().create("/data/t");
  std::vector<std::byte> blob(8192, std::byte{0x42});
  svc.cl.primary_kernel->fs().write(ino, 0, blob, 1);
  svc.cl.primary_kernel->fs().sync_all();
  svc.cl.sim.run_until(svc.cl.sim.now() + 200_ms);
  // Writes replicated and committed with the epoch stream.
  EXPECT_GT(svc.cl.drbd_backup->writes_committed(), 0u);
  EXPECT_TRUE(svc.cl.primary_disk.same_content(svc.cl.backup_disk));
}

TEST(OptionsTest, Table1RowsAreCumulative) {
  Options r0 = Options::table1_row(0);
  EXPECT_FALSE(r0.optimize_criu);
  EXPECT_FALSE(r0.pages_via_shared_memory);
  Options r3 = Options::table1_row(3);
  EXPECT_TRUE(r3.optimize_criu);
  EXPECT_TRUE(r3.plug_input_blocking);
  EXPECT_FALSE(r3.vma_via_netlink);
  Options r6 = Options::table1_row(6);
  EXPECT_TRUE(r6.pages_via_shared_memory);
}

TEST(ClusterTest, FirewallInputBlockingSlowsConnectionSetup) {
  Options slow;
  slow.plug_input_blocking = false;
  ProtectedService svc(tiny_spec(), slow);
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = svc.app->spec().port;
  cc.connections = 1;
  cc.request_bytes = 10;
  clients::ClosedLoopClient client(svc.cl.sim, svc.cl.client_domain,
                                   svc.cl.client_tcp, cc, 5);
  client.start();
  svc.cl.sim.run_until(svc.cl.sim.now() + 4_s);
  client.stop();
  // SYNs dropped by the firewall during pauses force multi-second
  // retransmission delays (§V-C); with 30ms epochs and ~7ms pauses a SYN
  // has a fair chance of hitting one.
  EXPECT_GT(client.completed(), 0u);
}

}  // namespace
}  // namespace nlc::core
