#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "kernel/address_space.hpp"
#include "kernel/cpu.hpp"
#include "kernel/fs.hpp"
#include "kernel/kernel.hpp"
#include "sim/simulation.hpp"
#include "util/assert.hpp"

namespace nlc::kern {
namespace {

using namespace nlc::literals;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

/// Minimal in-memory block store for kernel-level tests.
class FakeStore : public BlockStore {
 public:
  void write_block(InodeNum ino, std::uint64_t page,
                   std::span<const std::byte> data) override {
    blocks_[{ino, page}].assign(data.begin(), data.end());
    ++writes_;
  }
  std::optional<std::vector<std::byte>> read_block(
      InodeNum ino, std::uint64_t page) const override {
    auto it = blocks_.find({ino, page});
    if (it == blocks_.end()) return std::nullopt;
    return it->second;
  }
  std::uint64_t writes() const { return writes_; }

 private:
  std::map<std::pair<InodeNum, std::uint64_t>, std::vector<std::byte>> blocks_;
  std::uint64_t writes_ = 0;
};

// ---------------------------------------------------------------- VMAs ----

TEST(AddressSpaceTest, MapAllocatesDisjointRanges) {
  AddressSpace as;
  const Vma& a = as.map(10, VmaKind::kAnon);
  const Vma& b = as.map(20, VmaKind::kStack);
  EXPECT_GE(b.start, a.end());
  EXPECT_EQ(as.mapped_pages(), 30u);
  EXPECT_EQ(as.vmas().size(), 2u);
}

TEST(AddressSpaceTest, UnmapDropsPagesAndContent) {
  AddressSpace as;
  auto id = as.map(4, VmaKind::kAnon).id;
  auto start = as.vmas()[0].start;
  as.write(start, 0, bytes_of("hi"));
  as.unmap(id);
  EXPECT_EQ(as.mapped_pages(), 0u);
  EXPECT_TRUE(as.vmas().empty());
}

TEST(AddressSpaceTest, TouchWithoutTrackingIsFree) {
  AddressSpace as;
  auto start = as.map(4, VmaKind::kAnon).start;
  EXPECT_FALSE(as.touch(start));
  EXPECT_TRUE(as.dirty_pages().empty());
}

TEST(AddressSpaceTest, SoftDirtyTrackingReportsWriteFaultOncePerPage) {
  AddressSpace as;
  auto start = as.map(4, VmaKind::kAnon).start;
  as.clear_soft_dirty();
  EXPECT_TRUE(as.touch(start));    // first write: fault
  EXPECT_FALSE(as.touch(start));   // subsequent writes: no fault
  EXPECT_TRUE(as.touch(start + 1));
  EXPECT_EQ(as.dirty_pages().size(), 2u);
}

TEST(AddressSpaceTest, ClearSoftDirtyRearmsFaults) {
  AddressSpace as;
  auto start = as.map(2, VmaKind::kAnon).start;
  as.clear_soft_dirty();
  as.touch(start);
  as.clear_soft_dirty();
  EXPECT_TRUE(as.dirty_pages().empty());
  EXPECT_TRUE(as.touch(start));
}

TEST(AddressSpaceTest, TouchRangeCountsFreshFaults) {
  AddressSpace as;
  auto start = as.map(10, VmaKind::kAnon).start;
  as.clear_soft_dirty();
  EXPECT_EQ(as.touch_range(start, 5), 5u);
  EXPECT_EQ(as.touch_range(start + 3, 5), 3u);  // 3,4 already dirty
}

TEST(AddressSpaceTest, ContentRoundTrip) {
  AddressSpace as;
  auto start = as.map(2, VmaKind::kAnon).start;
  as.write(start, 100, bytes_of("payload"));
  auto back = as.read(start, 100, 7);
  EXPECT_EQ(0, std::memcmp(back.data(), "payload", 7));
  // Unwritten bytes read as zero.
  auto zeros = as.read(start + 1, 0, 4);
  for (auto b : zeros) EXPECT_EQ(b, std::byte{0});
}

TEST(AddressSpaceTest, ContentPageHasFullPageBuffer) {
  AddressSpace as;
  auto start = as.map(1, VmaKind::kAnon).start;
  as.write(start, 0, bytes_of("x"));
  PagePayload c = as.content(start);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->size(), kPageSize);
  EXPECT_EQ(as.content(start + 100), nullptr);
}

TEST(AddressSpaceTest, ContentHandleIsImmutableAcrossWrites) {
  // The zero-copy pipeline's core guarantee: a handle taken at checkpoint
  // time pins the bytes; a later write clones (copy-on-write) instead of
  // mutating the shared payload.
  AddressSpace as;
  auto start = as.map(1, VmaKind::kAnon).start;
  as.write(start, 0, bytes_of("before"));
  PagePayload snapshot = as.content(start);
  EXPECT_EQ(as.cow_clones(), 0u);

  as.write(start, 0, bytes_of("AFTER!"));
  EXPECT_EQ(as.cow_clones(), 1u);
  EXPECT_EQ(0, std::memcmp(snapshot->data(), "before", 6));
  auto now = as.read(start, 0, 6);
  EXPECT_EQ(0, std::memcmp(now.data(), "AFTER!", 6));
  // The clone broke sharing: further writes mutate in place.
  as.write(start, 0, bytes_of("third!"));
  EXPECT_EQ(as.cow_clones(), 1u);
}

TEST(AddressSpaceTest, DroppingHandlesRestoresInPlaceWrites) {
  AddressSpace as;
  auto start = as.map(1, VmaKind::kAnon).start;
  as.write(start, 0, bytes_of("a"));
  { PagePayload h = as.content(start); }  // handle dropped immediately
  as.write(start, 1, bytes_of("b"));
  EXPECT_EQ(as.cow_clones(), 0u);
}

TEST(AddressSpaceTest, AccessToUnmappedPageThrows) {
  AddressSpace as;
  as.map(2, VmaKind::kAnon);
  EXPECT_THROW(as.touch(1), InvariantError);
}

TEST(AddressSpaceTest, InstallVmaPreservesPageIdentity) {
  AddressSpace src;
  const Vma v = src.map(8, VmaKind::kAnon);
  AddressSpace dst;
  dst.install_vma(v);
  EXPECT_EQ(dst.vmas()[0].start, v.start);
  EXPECT_NO_THROW(dst.touch(v.start + 7));
}

TEST(AddressSpaceTest, InstallVmaRejectsOverlap) {
  AddressSpace as;
  const Vma v = as.map(8, VmaKind::kAnon);
  Vma overlap = v;
  overlap.id = v.id + 100;
  overlap.start = v.start + 4;
  EXPECT_THROW(as.install_vma(overlap), InvariantError);
}

TEST(AddressSpaceTest, PageVersionMonotone) {
  AddressSpace as;
  auto start = as.map(1, VmaKind::kAnon).start;
  auto v0 = as.page_version(start);
  as.touch(start);
  as.touch(start);
  EXPECT_EQ(as.page_version(start), v0 + 2);
}

// ----------------------------------------------------------------- CPU ----

TEST(CpuSetTest, ConsumeAdvancesUsage) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  s.spawn([](CpuSet& c) -> sim::task<> { co_await c.consume(10_ms); }(cpu));
  s.run();
  EXPECT_EQ(cpu.usage(), 10_ms);
  EXPECT_EQ(s.now(), 10_ms);
}

TEST(CpuSetTest, FreezeSuspendsBurst) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  Time finished = -1;
  s.spawn([](sim::Simulation& ss, CpuSet& c, Time& f) -> sim::task<> {
    co_await c.consume(10_ms);
    f = ss.now();
  }(s, cpu, finished));
  s.call_after(4_ms, [&] { cpu.freeze(); });
  s.call_after(9_ms, [&] { cpu.unfreeze(); });
  s.run();
  // 4ms ran, frozen for 5ms, then the remaining 6ms: ends at 15ms.
  EXPECT_EQ(finished, 15_ms);
  EXPECT_EQ(cpu.usage(), 10_ms);
}

TEST(CpuSetTest, UsageExcludesFrozenTime) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  s.spawn([](CpuSet& c) -> sim::task<> { co_await c.consume(20_ms); }(cpu));
  s.call_after(5_ms, [&] { cpu.freeze(); });
  s.run_until(10_ms);
  EXPECT_EQ(cpu.usage(), 5_ms);  // only pre-freeze time counted
  cpu.unfreeze();
  s.run();
  EXPECT_EQ(cpu.usage(), 20_ms);
}

TEST(CpuSetTest, ConsumeWhileFrozenWaitsForThaw) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  cpu.freeze();
  Time finished = -1;
  s.spawn([](sim::Simulation& ss, CpuSet& c, Time& f) -> sim::task<> {
    co_await c.consume(3_ms);
    f = ss.now();
  }(s, cpu, finished));
  s.call_after(10_ms, [&] { cpu.unfreeze(); });
  s.run();
  EXPECT_EQ(finished, 13_ms);
}

TEST(CpuSetTest, ParallelBurstsOnDedicatedCores) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    s.spawn([](CpuSet& c, int& d) -> sim::task<> {
      co_await c.consume(10_ms);
      ++d;
    }(cpu, done));
  }
  s.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(s.now(), 10_ms);        // parallel, not serialized
  EXPECT_EQ(cpu.usage(), 40_ms);    // 4 cores x 10ms
}

TEST(CpuSetTest, FreezeAtExactCompletionInstant) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  bool finished = false;
  s.spawn([](CpuSet& c, bool& f) -> sim::task<> {
    co_await c.consume(5_ms);
    f = true;
  }(cpu, finished));
  s.call_after(5_ms, [&] { cpu.freeze(); });
  s.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cpu.usage(), 5_ms);
}

TEST(CpuSetTest, ZeroConsumeCompletesInline) {
  sim::Simulation s;
  CpuSet cpu(s, nullptr);
  bool finished = false;
  s.spawn([](CpuSet& c, bool& f) -> sim::task<> {
    co_await c.consume(0);
    f = true;
  }(cpu, finished));
  EXPECT_TRUE(finished);
}

// ---------------------------------------------------------- Filesystem ----

TEST(FilesystemTest, CreateLookupRoundTrip) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/data/file.db");
  EXPECT_EQ(fs.lookup("/data/file.db"), ino);
  EXPECT_EQ(fs.lookup("/missing"), 0u);
  EXPECT_EQ(fs.attr(ino)->size, 0u);
}

TEST(FilesystemTest, WriteReadThroughCache) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.write(ino, 10, bytes_of("hello"), 1);
  auto back = fs.read(ino, 10, 5);
  EXPECT_EQ(0, std::memcmp(back.data(), "hello", 5));
  EXPECT_EQ(fs.attr(ino)->size, 15u);
  EXPECT_EQ(store.writes(), 0u);  // nothing flushed yet
}

TEST(FilesystemTest, WriteSpanningPages) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  std::vector<std::byte> big(kPageSize + 100, std::byte{0xAB});
  fs.write(ino, kPageSize - 50, big, 1);
  auto back = fs.read(ino, kPageSize - 50, big.size());
  EXPECT_EQ(back, big);
  EXPECT_EQ(fs.cached_page_count(), 3u);
}

TEST(FilesystemTest, WritebackFlushesDirtyKeepsDnc) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.write(ino, 0, bytes_of("x"), 1);
  EXPECT_EQ(fs.dirty_page_count(), 1u);
  EXPECT_EQ(fs.dnc_page_count(), 1u);
  EXPECT_EQ(fs.writeback(100), 1u);
  EXPECT_EQ(fs.dirty_page_count(), 0u);
  EXPECT_EQ(fs.dnc_page_count(), 1u);  // DNC survives writeback (§III)
  EXPECT_EQ(store.writes(), 1u);
}

TEST(FilesystemTest, HarvestDncClearsOnlyDnc) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.write(ino, 0, bytes_of("abc"), 1);
  auto h = fs.harvest_dnc();
  EXPECT_EQ(h.pages.size(), 1u);
  EXPECT_GE(h.inodes.size(), 1u);
  EXPECT_EQ(fs.dnc_page_count(), 0u);
  EXPECT_EQ(fs.dirty_page_count(), 1u);  // still needs writeback
  // Second harvest with no new writes is empty.
  auto h2 = fs.harvest_dnc();
  EXPECT_TRUE(h2.pages.empty());
  EXPECT_TRUE(h2.inodes.empty());
}

TEST(FilesystemTest, RewriteAfterHarvestSetsDncAgain) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.write(ino, 0, bytes_of("a"), 1);
  fs.harvest_dnc();
  fs.write(ino, 0, bytes_of("b"), 2);
  EXPECT_EQ(fs.dnc_page_count(), 1u);
}

TEST(FilesystemTest, ApplyDncReconstitutesFileOnBackup) {
  FakeStore store_p, store_b;
  Filesystem primary(store_p), backup(store_b);
  auto ino = primary.create("/db");
  primary.write(ino, 100, bytes_of("committed"), 1);
  auto h = primary.harvest_dnc();

  backup.apply_dnc(h, 2);
  auto back = backup.read(ino, 100, 9);
  EXPECT_EQ(0, std::memcmp(back.data(), "committed", 9));
  EXPECT_EQ(backup.lookup("/db"), ino);
  EXPECT_EQ(backup.attr(ino)->size, 109u);
}

TEST(FilesystemTest, ReadFallsBackToDiskAfterCacheFlush) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.write(ino, 0, bytes_of("disk-data"), 1);
  fs.sync_all();
  // Simulate cache eviction by reading through a fresh Filesystem over the
  // same store: block must come from disk.
  Filesystem fs2(store);
  auto ino2 = fs2.create("/f");
  (void)ino2;
  auto back = fs2.read(ino2, 0, 9);
  EXPECT_EQ(0, std::memcmp(back.data(), "disk-data", 9));
}

TEST(FilesystemTest, SetAttrMarksInodeDnc) {
  FakeStore store;
  Filesystem fs(store);
  auto ino = fs.create("/f");
  fs.harvest_dnc();
  fs.set_attr(ino, 1000, 1000, 0600);
  auto h = fs.harvest_dnc();
  ASSERT_EQ(h.inodes.size(), 1u);
  EXPECT_EQ(h.inodes[0].attr.uid, 1000u);
  EXPECT_EQ(h.inodes[0].attr.mode, 0600u);
}

// --------------------------------------------------------------- Kernel ----

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : kernel_(sim_, nullptr, "primary", store_) {}

  sim::Simulation sim_;
  FakeStore store_;
  Kernel kernel_;
};

TEST_F(KernelTest, ContainerHasFullNamespaceSet) {
  Container& c = kernel_.create_container("web");
  EXPECT_EQ(c.namespaces().size(),
            static_cast<std::size_t>(kNamespaceTypeCount));
  EXPECT_NE(c.net_ns_id(), 0u);
  EXPECT_GE(c.mounts().size(), 5u);
  EXPECT_GE(c.devices().size(), 5u);
}

TEST_F(KernelTest, ProcessAndThreadCreation) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  kernel_.create_thread(p.pid());
  kernel_.create_thread(p.pid());
  EXPECT_EQ(p.threads().size(), 3u);  // main + 2
  EXPECT_EQ(kernel_.total_threads(c.id()), 3u);
  EXPECT_EQ(kernel_.container_processes(c.id()).size(), 1u);
}

TEST_F(KernelTest, FreezerStopsCpuAndMarksThreads) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  Time finished = -1;
  sim_.spawn([](sim::Simulation& s, CpuSet& cpu, Time& f) -> sim::task<> {
    co_await cpu.consume(10_ms);
    f = s.now();
  }(sim_, c.cpu(), finished));
  sim_.call_after(3_ms, [&] { kernel_.freeze_container(c.id()); });
  sim_.call_after(8_ms, [&] { kernel_.thaw_container(c.id()); });
  sim_.run();
  EXPECT_EQ(finished, 15_ms);
  EXPECT_FALSE(p.threads()[0].frozen);
}

TEST_F(KernelTest, FreezeForcesSyscallReturn) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  p.threads()[0].in_syscall = true;
  kernel_.freeze_container(c.id());
  EXPECT_TRUE(p.threads()[0].frozen);
  EXPECT_FALSE(p.threads()[0].in_syscall);
}

TEST_F(KernelTest, MountFiresFtraceHookAndBumpsVersion) {
  Container& c = kernel_.create_container("web");
  auto v0 = c.infrequent_state_version();
  int hook_calls = 0;
  kernel_.ftrace().attach("do_mount",
                          [&](const TraceEvent&) { ++hook_calls; });
  kernel_.do_mount(c.id(), {"tmpfs", "/scratch", "tmpfs", 0});
  EXPECT_EQ(hook_calls, 1);
  EXPECT_GT(c.infrequent_state_version(), v0);
}

TEST_F(KernelTest, MknodAndSetnsAndCgroupFireHooks) {
  Container& c = kernel_.create_container("web");
  int hooks = 0;
  for (const char* fn : {"mknod", "setns", "cgroup_attach_task"}) {
    kernel_.ftrace().attach(fn, [&](const TraceEvent&) { ++hooks; });
  }
  kernel_.mknod(c.id(), {"/dev/shm0", 1, 14});
  kernel_.setns_config(c.id(), NamespaceType::kNet, 8192);
  kernel_.cgroup_modify(c.id(), 100000, 1 << 30);
  EXPECT_EQ(hooks, 3);
}

TEST_F(KernelTest, MmapFileCountsAsFileMapping) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  auto v0 = c.infrequent_state_version();
  kernel_.mmap_file(p.pid(), 50, "/lib/libc.so.6");
  kernel_.mmap_file(p.pid(), 20, "/lib/libssl.so");
  EXPECT_EQ(kernel_.total_file_mappings(c.id()), 2u);
  EXPECT_GT(c.infrequent_state_version(), v0);
}

TEST_F(KernelTest, FdAccounting) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  p.install_fd(FdEntry{.kind = FdKind::kFile, .inode = 5});
  p.install_fd(FdEntry{.kind = FdKind::kSocket, .socket = 77});
  p.install_fd(FdEntry{.kind = FdKind::kSocket, .socket = 78});
  EXPECT_EQ(kernel_.total_fds(c.id()), 3u);
  EXPECT_EQ(kernel_.total_sockets(c.id()), 2u);
}

TEST_F(KernelTest, DestroyProcessRemovesFromContainer) {
  Container& c = kernel_.create_container("web");
  Process& p = kernel_.create_process(c.id(), "server");
  Pid pid = p.pid();
  kernel_.destroy_process(pid);
  EXPECT_EQ(kernel_.process(pid), nullptr);
  EXPECT_TRUE(c.pids().empty());
}

TEST_F(KernelTest, InstallContainerPreservesId) {
  Container& c = kernel_.install_container(42, "restored");
  EXPECT_EQ(c.id(), 42);
  EXPECT_EQ(kernel_.container(42), &c);
  // Next create does not collide.
  Container& d = kernel_.create_container("fresh");
  EXPECT_GT(d.id(), 42);
}

TEST_F(KernelTest, InstallProcessPreservesPid) {
  kernel_.install_container(1, "c");
  Process& p = kernel_.install_process(1, 500, "restored");
  EXPECT_EQ(p.pid(), 500);
  Process& q = kernel_.create_process(1, "fresh");
  EXPECT_GT(q.pid(), 500);
}

TEST_F(KernelTest, FreezeIsIdempotent) {
  Container& c = kernel_.create_container("web");
  kernel_.freeze_container(c.id());
  kernel_.freeze_container(c.id());
  EXPECT_TRUE(c.frozen());
  kernel_.thaw_container(c.id());
  kernel_.thaw_container(c.id());
  EXPECT_FALSE(c.frozen());
}

}  // namespace
}  // namespace nlc::kern
