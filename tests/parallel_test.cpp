// Determinism regression tests for the parallel trial runner and the
// event-loop coroutine fast path: identical seeds must produce
// byte-identical metrics and event counts (a) serial vs parallel runner,
// (b) across repeats, (c) fast-path vs generic resume queue entries.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "util/time.hpp"

namespace nlc {
namespace {

using harness::RunConfig;
using harness::RunResult;
using harness::TrialContext;
using harness::TrialRunner;

/// Exact (bit-for-bit) fingerprint of everything the benches report.
std::string fingerprint(const RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.throughput_rps << '|' << r.requests_completed << '|'
     << r.mean_latency_ms << '|' << r.batch_runtime << '|'
     << r.metrics.epochs_completed << '|' << r.metrics.bytes_shipped << '|'
     << r.metrics.stop_time_ms.sum() << '|' << r.metrics.dirty_pages.sum()
     << '|' << r.metrics.state_bytes.sum() << '|' << r.recovered << '|'
     << r.kv_errors << '|' << r.broken_connections << '|' << r.sim_events;
  return os.str();
}

/// A small but representative trial mix: interactive + batch, protected +
/// stock, one fault-injection run.
std::vector<RunConfig> trial_mix() {
  std::vector<RunConfig> cfgs;
  {
    RunConfig cfg;
    cfg.spec = apps::netecho_spec();
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.measure = nlc::milliseconds(800);
    cfg.client_connections = 2;
    cfg.seed = 11;
    cfgs.push_back(cfg);
  }
  {
    RunConfig cfg;
    cfg.spec = apps::streamcluster_spec();
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.batch_work = nlc::milliseconds(300);
    cfg.seed = 22;
    cfgs.push_back(cfg);
  }
  {
    RunConfig cfg;
    cfg.spec = apps::netecho_spec();
    cfg.mode = harness::Mode::kStock;
    cfg.measure = nlc::milliseconds(800);
    cfg.seed = 33;
    cfgs.push_back(cfg);
  }
  {
    RunConfig cfg;
    cfg.spec = apps::netecho_spec();
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.measure = nlc::seconds(3);
    cfg.inject_fault = true;
    cfg.seed = 44;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

std::vector<std::string> run_mix(TrialRunner& runner) {
  auto cfgs = trial_mix();
  auto rs = runner.run(cfgs.size(), [&](TrialContext& ctx) {
    RunResult r = harness::run_experiment(cfgs[ctx.index]);
    ctx.sim_events = r.sim_events;
    return fingerprint(r);
  });
  return rs;
}

TEST(TrialRunnerDeterminism, SerialVsParallelByteIdentical) {
  TrialRunner serial(1);
  TrialRunner parallel(4);
  auto a = run_mix(serial);
  auto b = run_mix(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "trial " << i;
  }
  // events_processed flows through TrialContext identically.
  ASSERT_EQ(serial.stats().size(), parallel.stats().size());
  for (std::size_t i = 0; i < serial.stats().size(); ++i) {
    EXPECT_EQ(serial.stats()[i].sim_events, parallel.stats()[i].sim_events);
    EXPECT_GT(serial.stats()[i].sim_events, 0u);
  }
  EXPECT_GT(serial.total_sim_events(), 0u);
  EXPECT_EQ(serial.total_sim_events(), parallel.total_sim_events());
}

TEST(TrialRunnerDeterminism, RepeatsByteIdentical) {
  TrialRunner r1(4);
  TrialRunner r2(4);
  EXPECT_EQ(run_mix(r1), run_mix(r2));
}

TEST(TrialRunner, ResultsInSubmissionOrder) {
  TrialRunner runner(8);
  auto out = runner.run(64, [](std::size_t i) { return i * 3; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(TrialRunner, LowestIndexExceptionPropagates) {
  TrialRunner runner(4);
  EXPECT_THROW(
      {
        try {
          runner.run(16, [](std::size_t i) -> int {
            if (i == 11) throw std::runtime_error("trial 11 failed");
            if (i == 5) throw std::runtime_error("trial 5 failed");
            return 0;
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "trial 5 failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(TrialRunner, SerialPathCreatesNoThreads) {
  // NLC_JOBS=1 semantics: jobs()==1 runs inline; also n==1 with many jobs.
  TrialRunner runner(1);
  auto ids = runner.run(3, [](std::size_t) {
    return std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(TrialRunner, WallClockAccounting) {
  TrialRunner runner(2);
  runner.run(4, [](TrialContext& ctx) {
    ctx.sim_events = 100;
    return 0;
  });
  EXPECT_EQ(runner.total_sim_events(), 400u);
  EXPECT_GE(runner.batch_wall_seconds(), 0.0);
  EXPECT_GE(runner.total_trial_seconds(), 0.0);
}

// ---- (c) fast-path vs generic resume entry --------------------------------

sim::task<> mixed_workload(sim::Simulation& sim, sim::Event& ev,
                           std::vector<int>& log, int id) {
  for (int i = 0; i < 50; ++i) {
    co_await sim.sleep_for(nlc::microseconds(7 + id));
    log.push_back(id * 1000 + i);
    if (i == 25 && id == 0) ev.set();
  }
}

sim::task<> event_waiter(sim::Event& ev, std::vector<int>& log) {
  co_await ev.wait();
  log.push_back(-1);
}

struct EngineTrace {
  std::vector<int> log;
  std::uint64_t events = 0;
  Time end_time = 0;
};

EngineTrace run_engine(bool fast_path) {
  sim::Simulation sim;
  sim.set_resume_fast_path(fast_path);
  sim::Event ev(sim);
  EngineTrace tr;
  // Mix of plain resumes, sync-primitive wakeups, timers, and a domain
  // kill mid-run (dead-domain wakeups must be skipped identically).
  auto dom = std::make_shared<sim::Domain>("victim");
  sim.spawn(event_waiter(ev, tr.log));
  for (int id = 0; id < 4; ++id) {
    sim.spawn(id == 3 ? dom : nullptr, mixed_workload(sim, ev, tr.log, id));
  }
  sim.call_after(nlc::microseconds(100),
                 [&] { tr.log.push_back(-2); });
  sim.call_after(nlc::microseconds(120), [&] { dom->kill(); });
  sim.run();
  tr.events = sim.events_processed();
  tr.end_time = sim.now();
  sim.shutdown();
  return tr;
}

TEST(SimEngineDeterminism, FastPathVsGenericEntryIdentical) {
  EngineTrace fast = run_engine(true);
  EngineTrace generic = run_engine(false);
  EXPECT_EQ(fast.log, generic.log);
  EXPECT_EQ(fast.events, generic.events);
  EXPECT_EQ(fast.end_time, generic.end_time);
  EXPECT_GT(fast.events, 0u);
}

TEST(SimEngineDeterminism, ExperimentEventsStableAcrossRepeats) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.mode = harness::Mode::kNiLiCon;
  cfg.measure = nlc::milliseconds(500);
  cfg.seed = 7;
  RunResult a = harness::run_experiment(cfg);
  RunResult b = harness::run_experiment(cfg);
  EXPECT_GT(a.sim_events, 0u);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace nlc
