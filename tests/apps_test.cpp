#include <gtest/gtest.h>

#include "apps/batch_app.hpp"
#include "apps/catalog.hpp"
#include "apps/diskstress.hpp"
#include "apps/kv.hpp"
#include "apps/server_app.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"

namespace nlc::apps {
namespace {

using namespace nlc::literals;
using core::Cluster;
using core::kClientIp;
using core::kServiceIp;
using sim::task;

// ------------------------------------------------------------- KV codec ----

TEST(KvCodecTest, EncodeDecodeRoundTrip) {
  std::vector<KvOp> ops;
  ops.push_back({KvOpType::kSet, 42, 0xABCDEF, 900, false, 0});
  ops.push_back({KvOpType::kGet, 43, 0, 0, true, 0x1234});
  auto buf = kv_encode(ops);
  auto back = kv_decode(*buf);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].op, KvOpType::kSet);
  EXPECT_EQ(back[0].key, 42u);
  EXPECT_EQ(back[0].seed, 0xABCDEFu);
  EXPECT_EQ(back[0].len, 900);
  EXPECT_EQ(back[1].op, KvOpType::kGet);
  EXPECT_TRUE(back[1].found);
  EXPECT_EQ(back[1].reply_seed, 0x1234u);
}

TEST(KvCodecTest, ValueBytesDeterministic) {
  auto a = kv_value_bytes(7, 100);
  auto b = kv_value_bytes(7, 100);
  EXPECT_EQ(a, b);
  auto c = kv_value_bytes(8, 100);
  EXPECT_NE(a, c);
}

TEST(KvCodecTest, ContentHashDiscriminates) {
  auto a = kv_value_bytes(1, 64);
  auto b = kv_value_bytes(2, 64);
  EXPECT_NE(kv_content_hash(a.data(), a.size()),
            kv_content_hash(b.data(), b.size()));
}

TEST(KvCodecTest, CorruptPayloadRejected) {
  std::vector<std::byte> garbage(kKvOpWireSize + 1);
  EXPECT_THROW(kv_decode(garbage), InvariantError);
}

// ------------------------------------------------------------ ServerApp ----

struct ServerRig {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             3};
  std::unique_ptr<ServerApp> app;
  kern::ContainerId cid;

  explicit ServerRig(AppSpec spec) {
    kern::Container& c = cl.create_service_container(spec.name);
    cid = c.id();
    app = std::make_unique<ServerApp>(env, spec);
    app->setup(cid);
  }
};

TEST(ServerAppTest, SetupBuildsDeclaredTopology) {
  AppSpec spec = lighttpd_spec();
  ServerRig rig(spec);
  auto procs = rig.cl.primary_kernel->container_processes(rig.cid);
  // 4 app processes + 1 keepalive.
  EXPECT_EQ(procs.size(), 5u);
  EXPECT_EQ(rig.cl.primary_kernel->total_file_mappings(rig.cid),
            static_cast<std::uint64_t>(spec.processes * spec.mmap_files));
  EXPECT_GE(rig.cl.primary_kernel->total_threads(rig.cid),
            static_cast<std::uint64_t>(spec.processes));
}

TEST(ServerAppTest, ServesPlainRequests) {
  ServerRig rig(netecho_spec());
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = rig.app->spec().port;
  cc.connections = 2;
  cc.request_bytes = 10;
  clients::ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                                   rig.cl.client_tcp, cc, 5);
  client.start();
  rig.cl.sim.run_until(500_ms);
  client.stop();
  EXPECT_GT(client.completed(), 100u);  // echo is fast when unprotected
  EXPECT_EQ(client.broken_connections(), 0u);
  EXPECT_EQ(rig.app->requests_completed(), client.completed());
}

TEST(ServerAppTest, KvSetGetRoundTrip) {
  AppSpec spec = netecho_spec();
  spec.kv_pages = 128;
  ServerRig rig(spec);
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = spec.port;
  cc.connections = 1;
  cc.kv_mode = true;
  cc.kv_ops_per_request = 8;
  cc.keys_per_connection = 64;
  clients::ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                                   rig.cl.client_tcp, cc, 6);
  client.start();
  rig.cl.sim.run_until(1_s);
  client.stop();
  EXPECT_GT(client.completed(), 50u);
  EXPECT_EQ(client.kv_errors(), 0u);
}

TEST(ServerAppTest, DirtyPagesTrackedUnderLoad) {
  ServerRig rig(netecho_spec());
  for (kern::Process* p :
       rig.cl.primary_kernel->container_processes(rig.cid)) {
    p->mm().clear_soft_dirty();
  }
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = rig.app->spec().port;
  cc.connections = 1;
  cc.request_bytes = 10;
  clients::ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                                   rig.cl.client_tcp, cc, 7);
  client.start();
  rig.cl.sim.run_until(200_ms);
  client.stop();
  std::uint64_t dirty = 0;
  for (kern::Process* p :
       rig.cl.primary_kernel->container_processes(rig.cid)) {
    dirty += p->mm().dirty_pages().size();
  }
  EXPECT_GT(dirty, 0u);
}

TEST(ServerAppTest, DiskSpecWritesThroughFilesystem) {
  AppSpec spec = ssdb_spec();
  spec.service_cpu = 1_ms;  // keep the test fast
  ServerRig rig(spec);
  clients::ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = spec.port;
  cc.connections = 1;
  cc.request_bytes = 100;
  clients::ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                                   rig.cl.client_tcp, cc, 8);
  client.start();
  rig.cl.sim.run_until(400_ms);
  client.stop();
  EXPECT_GT(client.completed(), 0u);
  auto ino = rig.cl.primary_kernel->fs().lookup("/data/ssdb.db");
  ASSERT_NE(ino, 0u);
  EXPECT_GT(rig.cl.primary_kernel->fs().attr(ino)->size, 0u);
  // Writeback + DRBD primary applied locally.
  rig.cl.sim.run_until(rig.cl.sim.now() + 300_ms);
  EXPECT_GT(rig.cl.primary_disk.writes(), 0u);
}

// ------------------------------------------------------------- BatchApp ----

TEST(BatchAppTest, RunsToCompletionInIdealTimeWhenUnprotected) {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             4};
  AppSpec spec = swaptions_spec();
  spec.batch_cpu_per_thread = 500_ms;
  kern::Container& c = cl.create_service_container(spec.name);
  BatchApp app(env, spec);
  app.setup(c.id());
  app.start();
  cl.sim.spawn([](BatchApp& a, Cluster& cc) -> task<> {
    co_await a.wait_done();
    cc.sim.stop();
  }(app, cl));
  cl.sim.run();
  EXPECT_TRUE(app.done());
  // Dedicated cores, no protection: only the keepalive's ~us-scale core
  // sharing separates runtime from the work quota.
  EXPECT_NEAR(to_seconds(app.runtime()), 0.5, 0.001);
  EXPECT_EQ(app.recorded_progress(), 4 * 500_ms);
}

TEST(BatchAppTest, DilationStretchesRuntime) {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             4};
  AppSpec spec = swaptions_spec();
  spec.batch_cpu_per_thread = 500_ms;
  kern::Container& c = cl.create_service_container(spec.name);
  BatchApp app(env, spec);
  app.setup(c.id());
  app.set_dilation(1.2);
  app.start();
  cl.sim.spawn([](BatchApp& a, Cluster& cc) -> task<> {
    co_await a.wait_done();
    cc.sim.stop();
  }(app, cl));
  cl.sim.run();
  EXPECT_NEAR(to_seconds(app.runtime()), 0.6, 0.01);
}

TEST(BatchAppTest, WorkersDirtyPagesWithStreamingPattern) {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             4};
  AppSpec spec = streamcluster_spec();
  spec.batch_cpu_per_thread = 200_ms;
  kern::Container& c = cl.create_service_container(spec.name);
  BatchApp app(env, spec);
  app.setup(c.id());
  for (kern::Process* p : cl.primary_kernel->container_processes(c.id())) {
    p->mm().clear_soft_dirty();
  }
  app.start();
  cl.sim.run_until(30_ms);
  std::uint64_t dirty = 0;
  for (kern::Process* p : cl.primary_kernel->container_processes(c.id())) {
    dirty += p->mm().dirty_pages().size();
  }
  // 4 threads x 13 pages/5ms quantum x ~6 quanta ≈ 312 (+ progress pages).
  EXPECT_GT(dirty, 250u);
  EXPECT_LT(dirty, 400u);
}

// ------------------------------------------------------------ DiskStress ----

TEST(DiskStressTest, SelfChecksPassWithoutFaults) {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             4};
  kern::Container& c = cl.create_service_container("stress");
  DiskStressApp app(env, 123);
  app.setup(c.id());
  cl.sim.run_until(400_ms);
  app.stop();
  EXPECT_GT(app.operations(), 500u);
  EXPECT_EQ(app.errors(), 0u);
  EXPECT_EQ(app.verify_all(), 0u);
}

TEST(DiskStressTest, DetectsCorruption) {
  Cluster cl;
  AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp, kServiceIp,
             4};
  kern::Container& c = cl.create_service_container("stress");
  DiskStressApp app(env, 123);
  app.setup(c.id());
  cl.sim.run_until(200_ms);
  app.stop();
  // Corrupt the file behind the app's back: verify_all must notice.
  auto ino = cl.primary_kernel->fs().lookup("/data/diskstress.dat");
  std::vector<std::byte> junk(64, std::byte{0xEE});
  for (std::uint64_t slot = 0; slot < DiskStressApp::kSlots; ++slot) {
    cl.primary_kernel->fs().write(ino, slot * DiskStressApp::kSlotBytes,
                                  junk, 1);
  }
  EXPECT_GT(app.verify_all(), 0u);
}

// --------------------------------------------------------------- Catalog ----

TEST(CatalogTest, SevenBenchmarksInTableOrder) {
  auto specs = paper_benchmarks();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "swaptions");
  EXPECT_EQ(specs[1].name, "streamcluster");
  EXPECT_EQ(specs[2].name, "redis");
  EXPECT_EQ(specs[3].name, "ssdb");
  EXPECT_EQ(specs[4].name, "node");
  EXPECT_EQ(specs[5].name, "lighttpd");
  EXPECT_EQ(specs[6].name, "djcms");
}

TEST(CatalogTest, SpecInvariants) {
  for (const auto& s : paper_benchmarks()) {
    EXPECT_GE(s.dilation_nilicon, 1.0) << s.name;
    EXPECT_GE(s.dilation_mc, 1.0) << s.name;
    EXPECT_GT(s.mapped_pages, 0u) << s.name;
    if (s.interactive) {
      EXPECT_GT(s.service_cpu, 0) << s.name;
      EXPECT_GT(s.saturation_clients, 0) << s.name;
    } else {
      EXPECT_GT(s.pages_per_quantum, 0u) << s.name;
    }
  }
}

TEST(CatalogTest, KvStoresHaveKeySpace) {
  EXPECT_GT(redis_spec().kv_pages, 0u);
  EXPECT_GT(ssdb_spec().kv_pages, 0u);
  EXPECT_GT(ssdb_spec().disk_bytes_per_request, 0u);
}

}  // namespace
}  // namespace nlc::apps
