#include <gtest/gtest.h>

#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/serialize.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "util/arena.hpp"

namespace nlc::criu {
namespace {

CheckpointImage sample_image() {
  CheckpointImage img;
  img.epoch = 42;
  img.container = 7;
  img.container_name = "web";
  img.service_ip = 0x0A0000FE;
  img.net_ns_id = 0x40000001;
  img.full = true;

  kern::Namespace ns;
  ns.type = kern::NamespaceType::kNet;
  ns.ns_id = 0x40000001;
  ns.config_bytes = 4096;
  ns.version = 3;
  img.infrequent.namespaces.push_back(ns);
  img.infrequent.cgroup = {"/sys/fs/cgroup/web", 100000, 1 << 30, 2};
  img.infrequent.mounts.push_back({"proc", "/proc", "proc", 0});
  img.infrequent.devices.push_back({"/dev/null", 1, 3});
  img.infrequent.mmap_files.push_back("/lib/libc.so.6");
  img.infrequent.version = 9;

  ProcessRecord p;
  p.pid = 101;
  p.comm = "server";
  p.sigmask = 0xFF00;
  ThreadRecord t;
  t.tid = 201;
  t.regs.gpr[3] = 0x1234;
  t.regs.rip = 0x400000;
  t.policy = kern::SchedPolicy::kFifo;
  t.priority = 5;
  p.threads.push_back(t);
  kern::Vma v;
  v.id = 1;
  v.start = 0x1000;
  v.npages = 64;
  v.kind = kern::VmaKind::kAnon;
  v.backing_file = "[heap]";
  p.vmas.push_back(v);
  p.plain_fds[3] = kern::FdEntry{.kind = kern::FdKind::kFile, .inode = 55};
  img.processes.push_back(p);

  SocketRecord sr;
  sr.pid = 101;
  sr.fd = 4;
  sr.repair.local = {0x0A0000FE, 80};
  sr.repair.remote = {0x0A000001, 40001};
  sr.repair.snd_una = 1000;
  sr.repair.snd_nxt = 1500;
  sr.repair.rcv_nxt = 2200;
  net::Segment seg;
  seg.seq = 1000;
  seg.len = 500;
  seg.tag = 77;
  seg.payload = std::make_shared<const std::vector<std::byte>>(
      500, std::byte{0x3C});
  sr.repair.write_queue.push_back(seg);
  img.sockets.push_back(sr);
  img.listeners.push_back({0, 0, {0x0A0000FE, 80}});

  img.fs_cache.inodes.push_back(
      kern::DncInodeEntry{{200, "/data/db", 8192, 0600, 1000, 1000, 123}});
  kern::DncPageEntry pe;
  pe.ino = 200;
  pe.page_index = 1;
  pe.data.assign(kPageSize, std::byte{0x7E});
  img.fs_cache.pages.push_back(pe);

  PageRecord pr;
  pr.page = 0x1005;
  pr.version = 12;
  pr.content = util::arena_make_shared<kern::PageBytes>(kPageSize, std::byte{0x42});
  pr.wire_size = 916;  // delta-compressed on the wire
  img.pages.push_back(pr);
  PageRecord accounting;
  accounting.page = 0x1006;
  accounting.version = 13;
  img.pages.push_back(accounting);
  return img;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  CheckpointImage img = sample_image();
  auto bytes = serialize_image(img);
  CheckpointImage back = deserialize_image(bytes);

  EXPECT_EQ(back.epoch, img.epoch);
  EXPECT_EQ(back.container, img.container);
  EXPECT_EQ(back.container_name, img.container_name);
  EXPECT_EQ(back.service_ip, img.service_ip);
  EXPECT_EQ(back.net_ns_id, img.net_ns_id);
  EXPECT_EQ(back.full, img.full);

  ASSERT_EQ(back.infrequent.namespaces.size(), 1u);
  EXPECT_EQ(back.infrequent.namespaces[0], img.infrequent.namespaces[0]);
  EXPECT_EQ(back.infrequent.cgroup, img.infrequent.cgroup);
  EXPECT_EQ(back.infrequent.mounts, img.infrequent.mounts);
  EXPECT_EQ(back.infrequent.devices, img.infrequent.devices);
  EXPECT_EQ(back.infrequent.mmap_files, img.infrequent.mmap_files);

  ASSERT_EQ(back.processes.size(), 1u);
  EXPECT_EQ(back.processes[0].pid, 101);
  EXPECT_EQ(back.processes[0].comm, "server");
  EXPECT_EQ(back.processes[0].sigmask, 0xFF00u);
  ASSERT_EQ(back.processes[0].threads.size(), 1u);
  EXPECT_EQ(back.processes[0].threads[0].regs, img.processes[0].threads[0].regs);
  EXPECT_EQ(back.processes[0].threads[0].policy, kern::SchedPolicy::kFifo);
  ASSERT_EQ(back.processes[0].vmas.size(), 1u);
  EXPECT_EQ(back.processes[0].vmas[0].backing_file, "[heap]");
  EXPECT_EQ(back.processes[0].plain_fds.at(3).inode, 55u);

  ASSERT_EQ(back.sockets.size(), 1u);
  EXPECT_EQ(back.sockets[0].repair.snd_nxt, 1500u);
  ASSERT_EQ(back.sockets[0].repair.write_queue.size(), 1u);
  ASSERT_NE(back.sockets[0].repair.write_queue[0].payload, nullptr);
  EXPECT_EQ((*back.sockets[0].repair.write_queue[0].payload)[0],
            std::byte{0x3C});
  ASSERT_EQ(back.listeners.size(), 1u);
  EXPECT_EQ(back.listeners[0].local.port, 80);

  ASSERT_EQ(back.fs_cache.inodes.size(), 1u);
  EXPECT_EQ(back.fs_cache.inodes[0].attr.path, "/data/db");
  ASSERT_EQ(back.fs_cache.pages.size(), 1u);
  EXPECT_EQ(back.fs_cache.pages[0].data[0], std::byte{0x7E});

  ASSERT_EQ(back.pages.size(), 2u);
  ASSERT_TRUE(back.pages[0].has_content());
  EXPECT_EQ((*back.pages[0].content)[100], std::byte{0x42});
  EXPECT_EQ(back.pages[0].wire_size, 916u);
  EXPECT_FALSE(back.pages[1].has_content());
  EXPECT_EQ(back.pages[1].wire_size, kPageSize);
}

TEST(SerializeTest, EmptyImageRoundTrips) {
  CheckpointImage img;
  auto bytes = serialize_image(img);
  CheckpointImage back = deserialize_image(bytes);
  EXPECT_EQ(back.epoch, 0u);
  EXPECT_TRUE(back.processes.empty());
  EXPECT_TRUE(back.pages.empty());
}

TEST(SerializeTest, BadMagicRejected) {
  auto bytes = serialize_image(sample_image());
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(deserialize_image(bytes), InvariantError);
}

TEST(SerializeTest, TruncationRejected) {
  auto bytes = serialize_image(sample_image());
  for (std::size_t cut :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{10}}) {
    std::span<const std::byte> trunc(bytes.data(), cut);
    EXPECT_THROW(deserialize_image(trunc), InvariantError) << cut;
  }
}

TEST(SerializeTest, TrailingGarbageRejected) {
  auto bytes = serialize_image(sample_image());
  bytes.push_back(std::byte{0xAA});
  EXPECT_THROW(deserialize_image(bytes), InvariantError);
}

TEST(SerializeTest, FramingCorruptionRejected) {
  CheckpointImage img = sample_image();
  auto bytes = serialize_image(img);
  // Flip a byte inside a section-length field region; either a framing
  // check or a bounds check must fire (never silent misparse into success
  // with different content).
  auto mutated = bytes;
  mutated[40] = static_cast<std::byte>(
      static_cast<std::uint8_t>(mutated[40]) ^ 0xFF);
  bool threw = false;
  CheckpointImage back;
  try {
    back = deserialize_image(mutated);
  } catch (const InvariantError&) {
    threw = true;
  }
  if (!threw) {
    // Parsed, but the corruption must not vanish: re-serializing the
    // parsed image must reproduce the mutated bytes, not the original
    // (round-trip fidelity means no byte is silently ignored).
    auto reserialized = serialize_image(back);
    EXPECT_NE(reserialized, bytes);
    EXPECT_EQ(reserialized, mutated);
  }
}

/// Integration: a real harvested image round-trips bit-faithfully enough
/// to restore from (sizes and counts preserved).
TEST(SerializeTest, HarvestedImageRoundTrips) {
  sim::Simulation s;
  blk::Disk disk;
  kern::Kernel kernel(s, nullptr, "h", disk);
  net::Network net(s);
  auto host = net.add_host("h", nullptr);
  net::TcpStack tcp(s, nullptr, net, host);
  kern::Container& c = kernel.create_container("rt");
  kern::Process& p = kernel.create_process(c.id(), "app");
  p.mm().map(32, kern::VmaKind::kAnon);
  kernel.mmap_file(p.pid(), 8, "/lib/x.so");
  kernel.freeze_container(c.id());
  CheckpointEngine eng(kernel, tcp);
  HarvestOptions opts;
  opts.incremental = false;
  auto hr = eng.harvest(c.id(), 0, nullptr, opts);

  auto bytes = serialize_image(hr.image);
  CheckpointImage back = deserialize_image(bytes);
  EXPECT_EQ(back.pages.size(), hr.image.pages.size());
  EXPECT_EQ(back.processes.size(), hr.image.processes.size());
  EXPECT_EQ(back.infrequent.mmap_files, hr.image.infrequent.mmap_files);
  EXPECT_EQ(back.byte_size(), hr.image.byte_size());
}

}  // namespace
}  // namespace nlc::criu
