// Adaptive epoch controller (DESIGN.md §15): unit tests for the
// EpochController's feedback law (shrink/grow bands, the drain/busy/duty
// shrink gates, the replay-mode stretch and its three budget caps), plus
// the end-to-end contracts: observables — including the controller's own
// trajectory — are byte-identical for any NLC_SHARDS x NLC_JOBS
// combination, a fault injected mid-adaptation recovers losslessly in both
// commit modes, and checkpoint-commit truncation bounds the backup's
// retained log even at second-scale epochs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/catalog.hpp"
#include "core/epoch_controller.hpp"
#include "core/options.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace nlc {
namespace {

using core::CommitMode;
using core::EpochPolicy;
using core::Options;
using core::epochctl::EpochController;
using core::epochctl::EpochObservation;
using harness::Mode;
using harness::RunConfig;
using harness::RunResult;
using harness::TrialRunner;

// --------------------------------------------------------- EpochController --

/// Builds one steady-state observation from the knobs the decision law
/// actually reads: the pause-side overhead fraction, the stop time, the
/// output-drain flag and the busy fraction. epoch_wall is len + stop (no
/// pipeline stall), matching what the primary agent stamps in the common
/// case.
EpochObservation obs(std::uint64_t epoch, Time len, double overhead,
                     Time stop, bool drained, double busy) {
  EpochObservation o;
  o.epoch = epoch;
  o.stop = stop;
  o.epoch_wall = len + stop;
  const double wall = static_cast<double>(o.epoch_wall);
  o.path.stage_ns[trace::kPsFreeze] = static_cast<Time>(overhead * wall);
  o.output_packets = 1;
  o.plug_drained = drained;
  o.busy = static_cast<Time>(busy * wall);
  return o;
}

/// Drives `n` identical observations through the controller, tracking the
/// current length so the overhead fraction stays consistent as it adapts.
void feed(EpochController& ctl, std::uint64_t n, double overhead, Time stop,
          bool drained, double busy, std::uint64_t* epoch) {
  for (std::uint64_t i = 0; i < n; ++i) {
    ctl.observe(obs(++*epoch, ctl.epoch_length(), overhead, stop, drained,
                    busy));
  }
}

TEST(EpochControllerTest, FixedPolicyIsAPassThroughPacer) {
  Options o;  // epoch_policy defaults to kFixed
  EpochController ctl(o);
  EXPECT_FALSE(ctl.adaptive());
  std::uint64_t epoch = 0;
  // Wildly over-budget stops and saturated overhead: a fixed pacer must
  // not move regardless.
  feed(ctl, 20, 0.9, nlc::milliseconds(500), true, 1.0, &epoch);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_length);
  EXPECT_EQ(ctl.grow_steps() + ctl.shrink_steps(), 0u);
  EXPECT_EQ(ctl.last_change_epoch(), 0u);

  EpochController mc = EpochController::fixed(nlc::milliseconds(7));
  EXPECT_EQ(mc.epoch_length(), nlc::milliseconds(7));
}

TEST(EpochControllerTest, EpochModeShrinksIntoIdleRequestResponseSlack) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController ctl(o);
  EXPECT_TRUE(ctl.adaptive());
  EXPECT_FALSE(ctl.replay_mode());
  std::uint64_t epoch = 0;
  // Cheap dump, full drains, mostly idle: the commit cadence bounds p99,
  // so the controller must walk the length down.
  feed(ctl, 40, 0.05, nlc::milliseconds(2), true, 0.1, &epoch);
  EXPECT_GT(ctl.shrink_steps(), 2u);
  EXPECT_EQ(ctl.grow_steps(), 0u);
  EXPECT_LT(ctl.epoch_length(), o.epoch_length);
  EXPECT_GE(ctl.epoch_length(), o.epoch_min);
  EXPECT_GT(ctl.last_change_epoch(), 0u);
  // Epoch-mode lengths land on the 1 ms quantum.
  EXPECT_EQ(ctl.epoch_length() % nlc::milliseconds(1), 0u);
}

TEST(EpochControllerTest, EpochModeGrowsOutOfDumpOverhead) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // Pause-side work above the 50% ceiling: every decision must be a grow
  // until the fraction would fall back into the band (it never does here —
  // the fed overhead is constant — so the length rails at epoch_max).
  feed(ctl, 60, 0.7, nlc::milliseconds(2), true, 0.1, &epoch);
  EXPECT_GT(ctl.grow_steps(), 2u);
  EXPECT_EQ(ctl.shrink_steps(), 0u);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_max);
}

TEST(EpochControllerTest, StopBudgetOverrunForcesShrinkInBothModes) {
  for (CommitMode mode : {CommitMode::kEpoch, CommitMode::kReplay}) {
    Options o;
    o.epoch_policy = EpochPolicy::kAdaptive;
    o.commit_mode = mode;
    EpochController ctl(o);
    std::uint64_t epoch = 0;
    // Otherwise-growable conditions (high overhead in epoch mode; cold
    // log rates in replay mode) — but the stop EWMA is over budget, and
    // that constraint is hard in both modes.
    feed(ctl, 20, 0.7, o.stop_budget * 2, true, 0.1, &epoch);
    EXPECT_GT(ctl.shrink_steps(), 0u) << static_cast<int>(mode);
    EXPECT_EQ(ctl.grow_steps(), 0u) << static_cast<int>(mode);
    EXPECT_LT(ctl.epoch_length(), o.epoch_length) << static_cast<int>(mode);
  }
}

TEST(EpochControllerTest, PendingOutputBlocksEpochModeShrink) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // Same cheap-dump conditions as the shrink test, but every release
  // leaves output pending: responses stream across epochs, the cadence is
  // on no response's path, and a shrink would only add pauses.
  feed(ctl, 40, 0.05, nlc::milliseconds(2), /*drained=*/false, 0.1, &epoch);
  EXPECT_EQ(ctl.shrink_steps(), 0u);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_length);
}

TEST(EpochControllerTest, BusyContainerBlocksEpochModeShrink) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // Full drains and a cheap dump, but the container is busy 90% of the
  // wall: there is no idle slack to pay the extra pauses from.
  feed(ctl, 40, 0.05, nlc::milliseconds(2), true, /*busy=*/0.9, &epoch);
  EXPECT_EQ(ctl.shrink_steps(), 0u);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_length);
}

TEST(EpochControllerTest, PredictiveDutyGuardStopsTheShrinkWalk) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // 3 ms of length-invariant pause work. At 30 ms that is a 9% duty —
  // well under the shrink band — but the walk must stop before the
  // candidate length would push pause/(cand + pause) past the 35% floor:
  // cand > 3 ms * (1 - 0.35) / 0.35 ≈ 5.57 ms, i.e. the length can never
  // go below 6 ms even though epoch_min is 5 ms.
  for (std::uint64_t i = 0; i < 60; ++i) {
    EpochObservation ob =
        obs(++epoch, ctl.epoch_length(), 0.0, nlc::milliseconds(2), true,
            0.1);
    ob.path.stage_ns[trace::kPsFreeze] = nlc::milliseconds(3);
    ctl.observe(ob);
  }
  EXPECT_GT(ctl.shrink_steps(), 0u);
  EXPECT_GE(ctl.epoch_length(), nlc::milliseconds(6));
  EXPECT_GT(ctl.epoch_length(), o.epoch_min);
}

/// Replay-mode observation: log rates ride along with the usual fields.
EpochObservation replay_obs(std::uint64_t epoch, Time len, Time stop,
                            std::uint64_t log_entries,
                            std::uint64_t log_bytes) {
  EpochObservation o = obs(epoch, len, 0.1, stop, true, 0.3);
  o.log_entries = log_entries;
  o.log_bytes = log_bytes;
  return o;
}

TEST(EpochControllerTest, ReplayModeStretchesToTheTarget) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  o.commit_mode = CommitMode::kReplay;
  EpochController ctl(o);
  EXPECT_TRUE(ctl.replay_mode());
  std::uint64_t epoch = 0;
  // Small stop, thin log: every budget holds at every candidate, so the
  // geometric stretch must reach replay_epoch_target (doubling from 30 ms
  // needs 7 grows; decisions are per-epoch after the 2-epoch warmup).
  for (std::uint64_t i = 0; i < 16; ++i) {
    ctl.observe(replay_obs(++epoch, ctl.epoch_length(), nlc::milliseconds(5),
                           100, 4096));
  }
  EXPECT_EQ(ctl.epoch_length(), o.replay_epoch_target);
  EXPECT_GE(ctl.grow_steps(), 6u);
  EXPECT_EQ(ctl.shrink_steps(), 0u);
  // Replay-mode lengths land on the 10 ms quantum.
  EXPECT_EQ(ctl.epoch_length() % nlc::milliseconds(10), 0u);
}

TEST(EpochControllerTest, ReplayBudgetCapsTheStretch) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  o.commit_mode = CommitMode::kReplay;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // A hot log: ~1e6 entries per 30 ms epoch ≈ 0.03 entries/ns. The
  // failover estimate 2 * rate * cand * 150 ns already exceeds the 150 ms
  // replay budget at the first doubling (2 * 0.03 * 60 ms * 150 ≈ 540 ms),
  // so the controller must refuse to grow at all.
  for (std::uint64_t i = 0; i < 12; ++i) {
    ctl.observe(replay_obs(++epoch, ctl.epoch_length(), nlc::milliseconds(5),
                           1'000'000, 4096));
  }
  EXPECT_EQ(ctl.grow_steps(), 0u);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_length);
}

TEST(EpochControllerTest, RetainedLogBudgetCapsTheStretch) {
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  o.commit_mode = CommitMode::kReplay;
  EpochController ctl(o);
  std::uint64_t epoch = 0;
  // A fat log stream: 8 MiB per 30 ms epoch ≈ 0.26 bytes/ns. Retained
  // estimate 2 * rate * cand hits ~32 MiB at the first doubling — past
  // the 16 MiB budget — so the length must not move even though stop and
  // replay-time budgets are cold.
  for (std::uint64_t i = 0; i < 12; ++i) {
    ctl.observe(replay_obs(++epoch, ctl.epoch_length(), nlc::milliseconds(5),
                           100, 8u << 20));
  }
  EXPECT_EQ(ctl.grow_steps(), 0u);
  EXPECT_EQ(ctl.epoch_length(), o.epoch_length);
}

TEST(EpochControllerTest, IdenticalFeedsGiveIdenticalTrajectories) {
  // The controller is a pure function of its observation sequence — the
  // property every byte-determinism guarantee downstream leans on. Replay
  // the same mixed feed into two instances and compare every output.
  Options o;
  o.epoch_policy = EpochPolicy::kAdaptive;
  EpochController a(o), b(o);
  std::uint64_t ea = 0, eb = 0;
  std::vector<Time> ta, tb;
  auto drive = [](EpochController& c, std::uint64_t* e, std::vector<Time>* t) {
    // Phases: idle request-response (shrink), heavy dump (grow back),
    // over-budget stops (shrink again).
    for (int i = 0; i < 20; ++i) {
      c.observe(obs(++*e, c.epoch_length(), 0.05, nlc::milliseconds(2), true,
                    0.1));
      t->push_back(c.epoch_length());
    }
    for (int i = 0; i < 20; ++i) {
      c.observe(obs(++*e, c.epoch_length(), 0.7, nlc::milliseconds(8), false,
                    0.8));
      t->push_back(c.epoch_length());
    }
    for (int i = 0; i < 20; ++i) {
      c.observe(obs(++*e, c.epoch_length(), 0.2, nlc::milliseconds(90), true,
                    0.2));
      t->push_back(c.epoch_length());
    }
  };
  drive(a, &ea, &ta);
  drive(b, &eb, &tb);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.grow_steps(), b.grow_steps());
  EXPECT_EQ(a.shrink_steps(), b.shrink_steps());
  EXPECT_EQ(a.last_change_epoch(), b.last_change_epoch());
  // The mixed feed actually exercised both directions.
  EXPECT_GT(a.grow_steps(), 0u);
  EXPECT_GT(a.shrink_steps(), 0u);
}

// ------------------------------------------- shard x jobs byte-equivalence --

/// Everything the adaptive policy can observe or decide is identical
/// across NLC_SHARDS and NLC_JOBS: the simulated world, both wire
/// streams, the client view, and the controller's own trajectory.
struct Observables {
  std::uint64_t sim_events, requests, epochs, page_bytes;
  std::uint64_t log_bytes, retained_peak, pruned;
  std::uint64_t lat_count, len_count;
  double lat_mean, len_mean;
  std::uint64_t grow, shrink, last_change;
  Time final_len;

  static Observables of(const RunResult& r) {
    return {r.sim_events,
            r.requests_completed,
            r.metrics.epochs_completed,
            r.metrics.bytes_shipped,
            r.metrics.log_bytes_shipped,
            r.metrics.log_retained_bytes_peak,
            r.metrics.log_pruned_segments,
            static_cast<std::uint64_t>(r.latencies_ms.count()),
            static_cast<std::uint64_t>(r.metrics.epoch_len_ms.count()),
            r.latencies_ms.mean(),
            r.metrics.epoch_len_ms.mean(),
            r.metrics.ctl_grow_steps,
            r.metrics.ctl_shrink_steps,
            r.metrics.ctl_last_change_epoch,
            r.metrics.ctl_final_epoch_len};
  }
  bool operator==(const Observables&) const = default;
};

RunConfig adaptive_cfg(std::uint64_t seed, int shards, CommitMode commit) {
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 128;
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon.commit_mode = commit;
  cfg.nilicon.epoch_policy = EpochPolicy::kAdaptive;
  cfg.nilicon.page_shards = shards;
  // Single closed-loop client: the request-response regime where the
  // epoch-commit controller's drain/busy gates open and it demonstrably
  // adapts (a saturating population keeps it parked by design).
  cfg.client_connections = 1;
  cfg.measure = nlc::seconds(2);
  cfg.seed = seed;
  return cfg;
}

TEST(AdaptiveDeterminismTest, ObservablesIdenticalAcrossShardsAndJobs) {
  std::vector<RunConfig> cfgs;
  for (CommitMode commit : {CommitMode::kEpoch, CommitMode::kReplay}) {
    for (std::uint64_t seed : {5u, 6u}) {
      for (int shards : {1, 8}) {
        cfgs.push_back(adaptive_cfg(seed, shards, commit));
      }
    }
  }

  auto trial = [&](std::size_t i) {
    return Observables::of(harness::run_experiment(cfgs[i]));
  };
  TrialRunner serial(1);
  TrialRunner threaded(4);
  std::vector<Observables> a = serial.run(cfgs.size(), trial);
  std::vector<Observables> b = threaded.run(cfgs.size(), trial);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "jobs changed observables of trial " << i;
    EXPECT_GT(a[i].epochs, 4u);
    // The controller actually adapted in every configuration — this suite
    // guards a moving length, not a fixed one that never exercises the
    // feedback path.
    EXPECT_GT(a[i].last_change, 0u) << "trial " << i << " never adapted";
  }
  // Shard count must not leak into any observable (seed-wise pairs).
  for (std::size_t p = 0; p < cfgs.size() / 2; ++p) {
    EXPECT_TRUE(a[p * 2] == a[p * 2 + 1])
        << "shards changed observables, pair " << p;
  }
}

// ------------------------------------------------ failover mid-adaptation --

TEST(AdaptiveFailoverTest, EpochModeFaultDuringAdaptationRecovers) {
  RunConfig cfg = adaptive_cfg(23, 1, CommitMode::kEpoch);
  cfg.measure = nlc::seconds(3);
  cfg.inject_fault = true;
  cfg.kv_validation = true;
  RunResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.fault_injected);
  ASSERT_TRUE(r.recovered);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
  // The fault really landed on an adapted schedule.
  EXPECT_GT(r.metrics.ctl_last_change_epoch, 0u);
  EXPECT_LT(r.metrics.ctl_final_epoch_len, Options{}.epoch_length);
}

TEST(AdaptiveFailoverTest, ReplayModeFaultAtLongEpochsRecovers) {
  // Regression for the commit-during-restore race: with second-scale
  // adapted epochs, BackupAgent::recover()'s modeled sleeps are long
  // enough for a NEW checkpoint to drain from the state channel mid-
  // restore, advancing the committed log cursor under a restore built
  // from the older image — the replay filter then skipped inputs the
  // restored TCP state never saw, tripping the rcv_nxt continuity
  // invariant at re-injection. recovering_ now freezes commit-begin for
  // the duration of the restore. This exact configuration (node, replay,
  // adaptive, seed 2, 24 s) reproduced the race before the fix.
  RunConfig cfg;
  cfg.spec = apps::node_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon.commit_mode = CommitMode::kReplay;
  cfg.nilicon.epoch_policy = EpochPolicy::kAdaptive;
  cfg.measure = nlc::seconds(24);
  cfg.seed = 2;
  cfg.inject_fault = true;
  RunResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.fault_injected);
  ASSERT_TRUE(r.recovered);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
  // The crash interrupted genuinely long epochs, not the 30 ms seed.
  EXPECT_GT(r.metrics.ctl_final_epoch_len, Options{}.epoch_length);
}

// ------------------------------------------------- retained-log truncation --

TEST(AdaptiveLogTruncationTest, CheckpointCommitBoundsRetainedLogAt1sEpochs) {
  // Fixed 1 s epochs, long run: without checkpoint-commit truncation the
  // backup would retain the whole accepted log (every shipped byte); with
  // it the high-water mark stays around two epochs of segments no matter
  // how long the run is.
  RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.spec.kv_pages = 128;
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon.commit_mode = CommitMode::kReplay;
  cfg.nilicon.epoch_length = nlc::seconds(1);
  cfg.measure = nlc::seconds(8);
  cfg.seed = 11;
  RunResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.metrics.epochs_completed, 6u);
  EXPECT_GT(r.metrics.log_retained_bytes_peak, 0u);
  EXPECT_GT(r.metrics.log_pruned_segments, 0u);
  // ~2 epochs retained out of ~8: well under half of everything shipped.
  EXPECT_LT(r.metrics.log_retained_bytes_peak,
            r.metrics.log_bytes_shipped / 2);
  EXPECT_LE(r.metrics.log_retained_bytes_peak, Options{}.log_retained_budget);
}

}  // namespace
}  // namespace nlc
