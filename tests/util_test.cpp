#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace nlc {
namespace {

using namespace nlc::literals;

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(30_ms, 30'000'000);
  EXPECT_EQ(43_us, 43'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_millis(30_ms), 30.0);
  EXPECT_DOUBLE_EQ(to_micros(43_us), 43.0);
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
}

TEST(TimeTest, FractionalHelpers) {
  EXPECT_EQ(microseconds_f(2.2), 2200);
  EXPECT_EQ(milliseconds_f(0.5), 500'000);
  EXPECT_EQ(seconds_f(0.001), 1'000'000);
}

TEST(AssertTest, CheckThrowsInvariantError) {
  EXPECT_THROW(NLC_CHECK(1 == 2), InvariantError);
  EXPECT_NO_THROW(NLC_CHECK(1 == 1));
}

TEST(AssertTest, CheckMessageIncludesContext) {
  try {
    NLC_CHECK_MSG(false, "epoch ordering");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("epoch ordering"),
              std::string::npos);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, SplitIndependence) {
  Rng root(7);
  Rng c1 = root.split(1);
  Rng c2 = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next() == c2.next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, Uniform01Bounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r(5);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.exponential(10.0);
  EXPECT_NEAR(acc / n, 10.0, 0.5);
}

TEST(RngTest, NormalClamped) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    double v = r.normal_clamped(0.0, 100.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SamplesTest, MeanAndExtrema) {
  Samples s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SamplesTest, PercentilesExactOnUniformRamp) {
  Samples s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SamplesTest, PercentileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(10), 1.0);
}

TEST(SamplesTest, SingleSample) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(10), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SamplesTest, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), InvariantError);
  EXPECT_THROW(s.percentile(50), InvariantError);
}

TEST(SamplesTest, AddAfterPercentileKeepsSorted) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SamplesTest, StddevAndCv) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_NEAR(s.cv(), 2.138 / 5.0, 0.001);
}

TEST(SamplesTest, Clear) {
  Samples s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.5);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(BytesTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(53 * kKiB + 100), "53.1K");
  EXPECT_EQ(format_bytes(24 * kMiB + 200 * kKiB), "24.2M");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00G");
}

TEST(BytesTest, FormatDuration) {
  EXPECT_EQ(format_duration_ns(5'100'000), "5.10ms");
  EXPECT_EQ(format_duration_ns(43'000), "43.0us");
  EXPECT_EQ(format_duration_ns(2'000'000'000), "2.00s");
  EXPECT_EQ(format_duration_ns(999), "999ns");
}

TEST(BytesTest, PageSizeIs4K) { EXPECT_EQ(kPageSize, 4096u); }

TEST(SplitMixTest, KnownAvalanche) {
  // Adjacent inputs must differ in roughly half the bits.
  auto a = splitmix64(1), b = splitmix64(2);
  int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

}  // namespace
}  // namespace nlc
