#include <gtest/gtest.h>

#include <cstring>

#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/costs.hpp"
#include "criu/image.hpp"
#include "criu/pagestore.hpp"
#include "criu/restore.hpp"
#include "net/network.hpp"
#include "util/arena.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"

namespace nlc::criu {
namespace {

using namespace nlc::literals;
using sim::task;

constexpr net::IpAddr kClientIp = 0x0A000001;
constexpr net::IpAddr kServiceIp = 0x0A0000FE;

// ------------------------------------------------------------ PageStore ----

PageRecord rec(kern::PageNum p, std::uint64_t v = 1) {
  PageRecord r;
  r.page = p;
  r.version = v;
  return r;
}

template <typename Store>
class PageStoreTypedTest : public ::testing::Test {
 protected:
  Store store_;
};

using StoreTypes = ::testing::Types<ListPageStore, RadixPageStore>;
TYPED_TEST_SUITE(PageStoreTypedTest, StoreTypes);

TYPED_TEST(PageStoreTypedTest, StoreAndLookup) {
  this->store_.begin_checkpoint(1);
  this->store_.store(rec(100, 7));
  const PageRecord* r = this->store_.lookup(100);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->version, 7u);
  EXPECT_EQ(this->store_.lookup(101), nullptr);
  EXPECT_EQ(this->store_.page_count(), 1u);
}

TYPED_TEST(PageStoreTypedTest, LaterCheckpointOverwrites) {
  this->store_.begin_checkpoint(1);
  this->store_.store(rec(100, 1));
  this->store_.begin_checkpoint(2);
  this->store_.store(rec(100, 2));
  EXPECT_EQ(this->store_.lookup(100)->version, 2u);
  EXPECT_EQ(this->store_.page_count(), 1u);
}

TYPED_TEST(PageStoreTypedTest, AllPagesReturnsLatestVersions) {
  this->store_.begin_checkpoint(1);
  this->store_.store(rec(1, 1));
  this->store_.store(rec(2, 1));
  this->store_.begin_checkpoint(2);
  this->store_.store(rec(2, 2));
  auto all = this->store_.all_pages();
  EXPECT_EQ(all.size(), 2u);
  for (const PageRecord* r : all) {
    if (r->page == 2) {
      EXPECT_EQ(r->version, 2u);
    }
  }
}

// Restore and the store-equivalence audits walk all_pages(); its order must
// be a function of the committed pages alone — globally ascending by page
// number for both stores — never of hash-bucket layout or insertion order.
// Regression: ListPageStore used to leak per-directory hash order here.
TYPED_TEST(PageStoreTypedTest, AllPagesIsAscendingByPageNumber) {
  // Scattered, insertion-order-hostile page numbers across 4 checkpoints.
  for (std::uint64_t ck = 0; ck < 4; ++ck) {
    this->store_.begin_checkpoint(ck + 1);
    for (std::uint64_t i = 0; i < 64; ++i) {
      const kern::PageNum p = (ck * 64 + i) * 2654435761ull % 100003ull;
      this->store_.store(rec(p, ck + 1));
    }
  }
  auto all = this->store_.all_pages();
  ASSERT_EQ(all.size(), this->store_.page_count());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->page, all[i]->page) << "at index " << i;
  }
}

// The two Table I ablation stores must expose identical page walks for the
// same committed state, so restore and the equivalence mirror cannot tell
// them apart.
TEST(PageStoreTest, ListAndRadixAgreeOnAllPagesOrder) {
  ListPageStore list;
  RadixPageStore radix;
  for (std::uint64_t ck = 0; ck < 3; ++ck) {
    list.begin_checkpoint(ck + 1);
    radix.begin_checkpoint(ck + 1);
    for (std::uint64_t i = 0; i < 100; ++i) {
      PageRecord r = rec((ck * 100 + i) * 7919ull % 4096ull, ck + 1);
      list.store(r);
      radix.store(r);
    }
  }
  auto lp = list.all_pages();
  auto rp = radix.all_pages();
  ASSERT_EQ(lp.size(), rp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_EQ(lp[i]->page, rp[i]->page) << "at index " << i;
    EXPECT_EQ(lp[i]->version, rp[i]->version) << "at index " << i;
  }
}

TYPED_TEST(PageStoreTypedTest, ContentPreserved) {
  this->store_.begin_checkpoint(1);
  PageRecord r = rec(5);
  r.content = util::arena_make_shared<kern::PageBytes>(kPageSize, std::byte{0x7F});
  this->store_.store(r);
  const PageRecord* back = this->store_.lookup(5);
  ASSERT_TRUE(back->has_content());
  EXPECT_EQ((*back->content)[0], std::byte{0x7F});
  // Zero-copy: the store holds a handle to the same buffer, not a copy.
  EXPECT_EQ(back->content.get(), r.content.get());
}

TYPED_TEST(PageStoreTypedTest, SparsePageNumbers) {
  this->store_.begin_checkpoint(1);
  // Page numbers spanning several radix levels.
  for (kern::PageNum p : {0ull, 511ull, 512ull, (1ull << 18) + 3,
                          (1ull << 27) + 9, (1ull << 33) + 1}) {
    this->store_.store(rec(p, p + 1));
  }
  EXPECT_EQ(this->store_.page_count(), 6u);
  EXPECT_EQ(this->store_.lookup((1ull << 27) + 9)->version, (1ull << 27) + 10);
}

TEST(ListPageStoreTest, CostGrowsWithCheckpointCount) {
  ListPageStore store;
  std::uint64_t visits_at_1 = 0, visits_at_100 = 0;
  store.begin_checkpoint(0);
  visits_at_1 = store.store(rec(42));
  for (int e = 1; e <= 99; ++e) {
    store.begin_checkpoint(e);
    store.store(rec(1000 + e));
  }
  store.begin_checkpoint(100);
  visits_at_100 = store.store(rec(42));
  EXPECT_EQ(visits_at_1, 1u);
  EXPECT_EQ(visits_at_100, 101u);  // walks all prior directories (§V-A)
}

TEST(ListPageStoreTest, HotPageCostIsConstantAfterEarlyExit) {
  // A page stored every checkpoint lives in exactly one (the previous)
  // directory, so the backward walk stops after one hop: 1 visit to find
  // and drop the old copy + 1 to insert = 2, independent of history.
  // Cold pages (CostGrowsWithCheckpointCount) still pay the full walk, so
  // the §V-A O(#checkpoints) behaviour the radix store fixes is intact.
  ListPageStore store;
  store.begin_checkpoint(0);
  EXPECT_EQ(store.store(rec(42)), 1u);
  for (int e = 1; e <= 50; ++e) {
    store.begin_checkpoint(e);
    store.store(rec(1000 + e));   // unrelated churn
    EXPECT_EQ(store.store(rec(42, e)), 2u);
  }
  EXPECT_EQ(store.page_count(), 51u);
  EXPECT_EQ(store.lookup(42)->version, 50u);
}

TEST(RadixPageStoreTest, CostIsConstant) {
  RadixPageStore store;
  store.begin_checkpoint(0);
  EXPECT_EQ(store.store(rec(42)), RadixPageStore::kLevels);
  for (int e = 1; e <= 99; ++e) {
    store.begin_checkpoint(e);
    store.store(rec(1000 + e));
  }
  store.begin_checkpoint(100);
  EXPECT_EQ(store.store(rec(42)), RadixPageStore::kLevels);
}

TEST(ListPageStoreTest, OldCopyRemovedOnRestore) {
  ListPageStore store;
  store.begin_checkpoint(0);
  PageRecord r = rec(7, 1);
  store.store(r);
  store.begin_checkpoint(1);
  store.store(rec(7, 2));
  // Exactly one copy across all directories.
  EXPECT_EQ(store.page_count(), 1u);
  EXPECT_EQ(store.all_pages().size(), 1u);
}

// ------------------------------------------------- Checkpoint & Restore ----

struct CriuRig {
  sim::Simulation s;
  sim::DomainPtr primary_dom = std::make_shared<sim::Domain>("primary");
  sim::DomainPtr backup_dom = std::make_shared<sim::Domain>("backup");
  sim::DomainPtr client_dom = std::make_shared<sim::Domain>("client");
  blk::Disk primary_disk, backup_disk;
  net::Network net{s};
  net::HostId client_host = net.add_host("client", client_dom);
  net::HostId primary_host = net.add_host("primary", primary_dom);
  net::HostId backup_host = net.add_host("backup", backup_dom);
  net::TcpStack client_tcp{s, client_dom, net, client_host};
  net::TcpStack primary_tcp{s, primary_dom, net, primary_host};
  net::TcpStack backup_tcp{s, backup_dom, net, backup_host};
  kern::Kernel primary{s, primary_dom, "primary", primary_disk};
  kern::Kernel backup{s, backup_dom, "backup", backup_disk};
  CheckpointEngine ckpt{primary, primary_tcp};
  RestoreEngine rest{backup, backup_tcp};

  CriuRig() {
    net.add_link(client_host, primary_host, net::kGigabit, 100_us);
    net.add_link(client_host, backup_host, net::kGigabit, 100_us);
    net.add_link(primary_host, backup_host, net::kTenGigabit, 20_us);
    client_tcp.add_address(kClientIp);
    primary_tcp.add_address(kServiceIp);
  }
  ~CriuRig() { s.shutdown(); }

  kern::Container& make_container() {
    kern::Container& c = primary.create_container("web");
    c.set_service_ip(kServiceIp);
    return c;
  }
};

TEST(CheckpointTest, RequiresFrozenContainer) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  EXPECT_THROW(r.ckpt.harvest(c.id(), 0, nullptr, {}), InvariantError);
}

TEST(CheckpointTest, FullImageContainsEverything) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  auto anon = p.mm().map(100, kern::VmaKind::kAnon);
  auto lib = r.primary.mmap_file(p.pid(), 50, "/lib/libc.so");
  // Resident pages only: a full dump skips holes (never-touched pages),
  // exactly like CRIU. Touch part of each mapping.
  p.mm().touch_range(anon.start, 80);
  p.mm().touch_range(lib.start, 50);
  r.primary.freeze_container(c.id());

  HarvestOptions opts;
  opts.incremental = false;
  auto res = r.ckpt.harvest(c.id(), 0, nullptr, opts);
  EXPECT_TRUE(res.image.full);
  EXPECT_EQ(res.image.processes.size(), 1u);
  EXPECT_EQ(res.image.pages.size(), 130u);  // resident, not mapped (150)
  EXPECT_EQ(res.image.infrequent.namespaces.size(), 7u);
  EXPECT_EQ(res.image.infrequent.mmap_files.size(), 1u);
  EXPECT_GT(res.image.byte_size(), 130u * kPageSize);
  EXPECT_GT(res.cost.total(), 0);
}

TEST(CheckpointTest, IncrementalCapturesOnlyDirtyPages) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  auto vma = p.mm().map(100, kern::VmaKind::kAnon);
  p.mm().clear_soft_dirty();
  p.mm().touch_range(vma.start, 10);

  r.primary.freeze_container(c.id());
  auto res = r.ckpt.harvest(c.id(), 1, nullptr, {});
  EXPECT_EQ(res.image.pages.size(), 10u);
  // Harvest cleared soft-dirty: a second harvest sees nothing.
  auto res2 = r.ckpt.harvest(c.id(), 2, nullptr, {});
  EXPECT_EQ(res2.image.pages.size(), 0u);
}

TEST(CheckpointTest, CachedInfrequentStateSkipsExpensiveHarvest) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  r.primary.freeze_container(c.id());

  InfrequentState cached = r.ckpt.harvest_infrequent(c.id());
  auto with_cache = r.ckpt.harvest(c.id(), 1, &cached, {});
  auto without = r.ckpt.harvest(c.id(), 2, nullptr, {});
  EXPECT_LT(with_cache.cost.infrequent, 100_us);
  EXPECT_GT(without.cost.infrequent, 100_ms);  // ~160ms (§V-B)
}

TEST(CheckpointTest, StaleCacheIsNotUsed) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  InfrequentState cached = r.ckpt.harvest_infrequent(c.id());
  // Mutation invalidates: mount something new.
  r.primary.do_mount(c.id(), {"tmpfs", "/x", "tmpfs", 0});
  r.primary.freeze_container(c.id());
  auto res = r.ckpt.harvest(c.id(), 1, &cached, {});
  EXPECT_GT(res.cost.infrequent, 100_ms);  // fell back to full harvest
  EXPECT_EQ(res.image.infrequent.mounts.size(), cached.mounts.size() + 1);
}

TEST(CheckpointTest, VmaCostSmapsVsNetlink) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  for (int i = 0; i < 70; ++i) p.mm().map(2, kern::VmaKind::kAnon);
  r.primary.freeze_container(c.id());

  HarvestOptions smaps;
  smaps.vma_via_netlink = false;
  HarvestOptions netlink;
  auto slow = r.ckpt.harvest(c.id(), 1, nullptr, smaps);
  auto fast = r.ckpt.harvest(c.id(), 2, nullptr, netlink);
  EXPECT_GT(slow.cost.vmas, 3_ms);   // 70 VMAs x ~50us
  EXPECT_LT(fast.cost.vmas, 500_us);
}

TEST(CheckpointTest, PipeVsSharedMemoryPageCost) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  auto vma = p.mm().map(400, kern::VmaKind::kAnon);
  p.mm().clear_soft_dirty();

  HarvestOptions pipe_opts;
  pipe_opts.pages_via_shared_memory = false;
  p.mm().touch_range(vma.start, 300);
  r.primary.freeze_container(c.id());
  auto pipe_res = r.ckpt.harvest(c.id(), 1, nullptr, pipe_opts);
  r.primary.thaw_container(c.id());

  p.mm().touch_range(vma.start, 300);
  r.primary.freeze_container(c.id());
  auto shm_res = r.ckpt.harvest(c.id(), 2, nullptr, {});
  EXPECT_GT(pipe_res.cost.page_copy, shm_res.cost.page_copy);
  // 300 pages x 6us pipe overhead = 1.8ms difference (Table I last row).
  EXPECT_NEAR(to_millis(pipe_res.cost.page_copy - shm_res.cost.page_copy),
              1.8, 0.2);
}

TEST(CheckpointTest, SocketStateCaptured) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  r.primary_tcp.listen({kServiceIp, 80});

  net::SocketId server_sock = 0;
  r.s.spawn(r.primary_dom, [](CriuRig& rr, net::SocketId& ss) -> task<> {
    ss = co_await rr.primary_tcp.accept({kServiceIp, 80});
  }(r, server_sock));
  r.s.spawn(r.client_dom, [](CriuRig& rr) -> task<> {
    auto cs = co_await rr.client_tcp.connect(kClientIp, {kServiceIp, 80});
    rr.client_tcp.send(cs, 64, 9);
  }(r));
  r.s.run();
  p.install_fd(kern::FdEntry{.kind = kern::FdKind::kSocket,
                             .socket = server_sock});

  r.primary.freeze_container(c.id());
  auto res = r.ckpt.harvest(c.id(), 1, nullptr, {});
  ASSERT_EQ(res.image.sockets.size(), 1u);
  EXPECT_EQ(res.image.sockets[0].repair.read_queue.size(), 1u);
  ASSERT_EQ(res.image.listeners.size(), 1u);
  EXPECT_EQ(res.image.listeners[0].local.port, 80);
  EXPECT_GT(res.cost.sockets, 1_ms);
}

TEST(CheckpointTest, FsCacheDeltaHarvested) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  auto ino = r.primary.fs().create("/data");
  std::vector<std::byte> data(100, std::byte{1});
  r.primary.fs().write(ino, 0, data, 1);

  r.primary.freeze_container(c.id());
  auto res = r.ckpt.harvest(c.id(), 1, nullptr, {});
  EXPECT_EQ(res.image.fs_cache.pages.size(), 1u);
  EXPECT_GE(res.image.fs_cache.inodes.size(), 1u);
  // DNC cleared by the harvest.
  auto res2 = r.ckpt.harvest(c.id(), 2, nullptr, {});
  EXPECT_TRUE(res2.image.fs_cache.pages.empty());
}

TEST(CheckpointTest, NasFlushAblationCostsMore) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  auto ino = r.primary.fs().create("/data");
  for (int i = 0; i < 100; ++i) {
    std::vector<std::byte> data(kPageSize, std::byte{1});
    r.primary.fs().write(ino, static_cast<std::uint64_t>(i) * kPageSize,
                         data, 1);
  }
  r.primary.freeze_container(c.id());
  HarvestOptions nas;
  nas.fs_cache_via_dnc = false;
  auto nas_res = r.ckpt.harvest(c.id(), 1, nullptr, nas);
  EXPECT_GT(nas_res.cost.fs_cache, 40_ms);  // "hundreds of ms" territory
}

// Full checkpoint -> restore round trip with memory content, fds, sockets.
TEST(RestoreTest, FullRoundTripPreservesState) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  r.primary.create_thread(p.pid());
  auto vma = p.mm().map(50, kern::VmaKind::kAnon);
  p.mm().touch_range(vma.start, 50);  // make every page resident
  const char msg[] = "precious bytes";
  std::vector<std::byte> data(sizeof msg - 1);
  std::memcpy(data.data(), msg, data.size());
  p.mm().write(vma.start + 3, 40, data);
  p.sigmask = 0xDEAD;
  p.threads()[0].regs.gpr[0] = 0x1234;
  auto file_ino = r.primary.fs().create("/cfg");
  p.install_fd(kern::FdEntry{.kind = kern::FdKind::kFile,
                             .inode = file_ino});

  r.primary.freeze_container(c.id());
  HarvestOptions opts;
  opts.incremental = false;
  auto res = r.ckpt.harvest(c.id(), 0, nullptr, opts);

  // Materialize through a page store like the backup agent would.
  RadixPageStore store;
  store.begin_checkpoint(0);
  for (const auto& pg : res.image.pages) store.store(pg);

  RestoreTimeline tl;
  r.s.spawn(r.backup_dom, [](CriuRig& rr, const HarvestResult& hr,
                             RadixPageStore& st, RestoreTimeline& out)
                -> task<> {
    out = co_await rr.rest.restore(hr.image, st.all_pages(), {}, true);
  }(r, res, store, tl));
  r.s.run();

  kern::Process* bp = r.backup.process(p.pid());
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->sigmask, 0xDEADu);
  EXPECT_EQ(bp->threads().size(), 2u);
  EXPECT_EQ(bp->threads()[0].regs.gpr[0], 0x1234u);
  EXPECT_EQ(bp->mm().mapped_pages(), 50u);
  auto back = bp->mm().read(vma.start + 3, 40, data.size());
  EXPECT_EQ(back, data);
  EXPECT_NE(bp->fd(3), nullptr);
  EXPECT_EQ(tl.pages_restored, 50u);
  EXPECT_GT(tl.total(), 100_ms);  // restore is expensive (Table II)
  EXPECT_GT(tl.sockets_done, tl.namespaces_done);
}

// Zero-copy pipeline aliasing: harvest hands out shared payload handles,
// so a post-thaw write must copy-on-write rather than mutate the bytes the
// in-flight image / committed store / restored container already captured.
TEST(RestoreTest, PostThawWritesDoNotAliasShippedImage) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  auto vma = p.mm().map(4, kern::VmaKind::kAnon);
  std::vector<std::byte> v1(kPageSize, std::byte{0x11});
  p.mm().write(vma.start, 0, v1);

  r.primary.freeze_container(c.id());
  HarvestOptions opts;
  opts.incremental = false;
  auto res = r.ckpt.harvest(c.id(), 0, nullptr, opts);
  RadixPageStore store;
  store.begin_checkpoint(0);
  for (const auto& pg : res.image.pages) store.store(pg);
  r.primary.thaw_container(c.id());

  // The container keeps running and overwrites the page.
  std::vector<std::byte> v2(kPageSize, std::byte{0x22});
  p.mm().write(vma.start, 0, v2);
  EXPECT_GE(p.mm().cow_clones(), 1u);

  // Neither the staged image nor the committed store saw the new bytes.
  ASSERT_TRUE(res.image.pages[0].has_content());
  EXPECT_EQ((*res.image.pages[0].content)[0], std::byte{0x11});
  const PageRecord* committed = store.lookup(vma.start);
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ((*committed->content)[0], std::byte{0x11});

  // Restore from the store: the backup materializes the checkpointed bytes.
  r.s.spawn(r.backup_dom, [](CriuRig& rr, const HarvestResult& hr,
                             RadixPageStore& st) -> task<> {
    (void)co_await rr.rest.restore(hr.image, st.all_pages(), {}, true);
  }(r, res, store));
  r.s.run();
  kern::Process* bp = r.backup.process(p.pid());
  ASSERT_NE(bp, nullptr);
  auto restored = bp->mm().read(vma.start, 0, 4);
  EXPECT_EQ(restored[0], std::byte{0x11});

  // And writes in the restored container clone too: the store's committed
  // copy (shared with the restored address space) stays frozen.
  std::vector<std::byte> v3(kPageSize, std::byte{0x33});
  bp->mm().write(vma.start, 0, v3);
  EXPECT_EQ((*store.lookup(vma.start)->content)[0], std::byte{0x11});
}

TEST(RestoreTest, TimelineStagesAreOrdered) {
  CriuRig r;
  kern::Container& c = r.make_container();
  kern::Process& p = r.primary.create_process(c.id(), "srv");
  p.mm().map(10, kern::VmaKind::kAnon);
  r.primary.freeze_container(c.id());
  HarvestOptions opts;
  opts.incremental = false;
  auto res = r.ckpt.harvest(c.id(), 0, nullptr, opts);
  RadixPageStore store;
  store.begin_checkpoint(0);
  for (const auto& pg : res.image.pages) store.store(pg);

  RestoreTimeline tl;
  r.s.spawn(r.backup_dom, [](CriuRig& rr, const HarvestResult& hr,
                             RadixPageStore& st, RestoreTimeline& out)
                -> task<> {
    out = co_await rr.rest.restore(hr.image, st.all_pages(), {}, true);
  }(r, res, store, tl));
  r.s.run();
  EXPECT_LT(tl.started, tl.namespaces_done);
  EXPECT_LE(tl.namespaces_done, tl.processes_done);
  EXPECT_LE(tl.processes_done, tl.sockets_done);
  EXPECT_LE(tl.sockets_done, tl.memory_done);
  EXPECT_LE(tl.memory_done, tl.finished);
}

TEST(RestoreTest, FsCacheApplied) {
  CriuRig r;
  kern::Container& c = r.make_container();
  r.primary.create_process(c.id(), "srv");
  auto ino = r.primary.fs().create("/db");
  const char msg[] = "fscache";
  std::vector<std::byte> data(sizeof msg - 1);
  std::memcpy(data.data(), msg, data.size());
  r.primary.fs().write(ino, 0, data, 1);

  r.primary.freeze_container(c.id());
  HarvestOptions opts;
  opts.incremental = false;
  auto res = r.ckpt.harvest(c.id(), 0, nullptr, opts);

  RestoreTimeline tl;
  r.s.spawn(r.backup_dom, [](CriuRig& rr, const HarvestResult& hr,
                             RestoreTimeline& out) -> task<> {
    out = co_await rr.rest.restore(hr.image, {}, hr.image.fs_cache, true);
  }(r, res, tl));
  r.s.run();
  auto back = r.backup.fs().read(ino, 0, data.size());
  EXPECT_EQ(back, data);
}

}  // namespace
}  // namespace nlc::criu
