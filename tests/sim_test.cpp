#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/assert.hpp"

namespace nlc::sim {
namespace {

using namespace nlc::literals;

TEST(SimulationTest, TimeStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulationTest, CallbacksFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.call_after(20_ms, [&] { order.push_back(2); });
  sim.call_after(10_ms, [&] { order.push_back(1); });
  sim.call_after(30_ms, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(SimulationTest, SameTimeFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.call_after(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  Time inner_fired = -1;
  sim.call_after(10_ms, [&] {
    sim.call_after(5_ms, [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, 15_ms);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.call_after(10_ms, [&] { ++fired; });
  sim.call_after(50_ms, [&] { ++fired; });
  sim.run_until(20_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_ms);
  sim.run_until(60_ms);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelledTimerDoesNotFire) {
  Simulation sim;
  bool fired = false;
  auto h = sim.call_after(10_ms, [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(h.active());
}

TEST(SimulationTest, PastSchedulingRejected) {
  Simulation sim;
  sim.call_after(10_ms, [] {});
  sim.run();
  EXPECT_THROW(sim.call_at(5_ms, [] {}), InvariantError);
}

TEST(SimulationTest, StopBreaksRun) {
  Simulation sim;
  int fired = 0;
  sim.call_after(1_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.call_after(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(DomainTest, DeadDomainEventsDiscarded) {
  Simulation sim;
  auto host = std::make_shared<Domain>("primary");
  int host_fired = 0, wire_fired = 0;
  sim.call_after(10_ms, host, [&] { ++host_fired; });
  sim.call_after(10_ms, nullptr, [&] { ++wire_fired; });
  sim.call_after(5_ms, [&] { host->kill(); });
  sim.run();
  EXPECT_EQ(host_fired, 0);
  EXPECT_EQ(wire_fired, 1);
}

TEST(DomainTest, EventsBeforeKillStillFire) {
  Simulation sim;
  auto host = std::make_shared<Domain>("primary");
  int fired = 0;
  sim.call_after(1_ms, host, [&] { ++fired; });
  sim.call_after(5_ms, [&] { host->kill(); });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(CoroutineTest, SpawnRunsEagerlyToFirstSuspend) {
  Simulation sim;
  int stage = 0;
  sim.spawn([](Simulation& s, int& st) -> task<> {
    st = 1;
    co_await s.sleep_for(10_ms);
    st = 2;
  }(sim, stage));
  EXPECT_EQ(stage, 1);  // ran before run()
  sim.run();
  EXPECT_EQ(stage, 2);
}

TEST(CoroutineTest, SleepAdvancesTime) {
  Simulation sim;
  Time woke = -1;
  sim.spawn([](Simulation& s, Time& w) -> task<> {
    co_await s.sleep_for(30_ms);
    co_await s.sleep_for(12_ms);
    w = s.now();
  }(sim, woke));
  sim.run();
  EXPECT_EQ(woke, 42_ms);
}

task<int> add_later(Simulation& sim, int a, int b) {
  co_await sim.sleep_for(1_ms);
  co_return a + b;
}

TEST(CoroutineTest, NestedTaskReturnsValue) {
  Simulation sim;
  int result = 0;
  sim.spawn([](Simulation& s, int& r) -> task<> {
    r = co_await add_later(s, 2, 3);
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 5);
}

task<> thrower(Simulation& sim) {
  co_await sim.sleep_for(1_ms);
  throw std::runtime_error("boom");
}

TEST(CoroutineTest, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn([](Simulation& s, bool& c) -> task<> {
    try {
      co_await thrower(s);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(CoroutineTest, UncaughtExceptionRethrownFromRun) {
  Simulation sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(CoroutineTest, DomainKillFreezesCoroutine) {
  Simulation sim;
  auto host = std::make_shared<Domain>("h");
  int stage = 0;
  sim.spawn(host, [](Simulation& s, int& st) -> task<> {
    st = 1;
    co_await s.sleep_for(10_ms);
    st = 2;  // must never run: host dies at 5ms
  }(sim, stage));
  sim.call_after(5_ms, [&] { host->kill(); });
  sim.run();
  EXPECT_EQ(stage, 1);
  sim.shutdown();  // frozen frame reclaimed without touching stage
  EXPECT_EQ(stage, 1);
}

TEST(CoroutineTest, SpawnOnDeadDomainIsNoop) {
  Simulation sim;
  auto host = std::make_shared<Domain>("h");
  host->kill();
  int stage = 0;
  sim.spawn(host, [](Simulation& s, int& st) -> task<> {
    st = 1;
    co_await s.sleep_for(1_ms);
  }(sim, stage));
  sim.run();
  EXPECT_EQ(stage, 0);
}

TEST(CoroutineTest, ManySequentialTasks) {
  Simulation sim;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    sim.spawn([](Simulation& s, int& d, int delay) -> task<> {
      co_await s.sleep_for(milliseconds(delay));
      ++d;
    }(sim, done, i));
  }
  sim.run();
  EXPECT_EQ(done, 100);
}

TEST(EventTest, WaitersReleasedOnSet) {
  Simulation sim;
  Event ev(sim);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Event& e, int& r) -> task<> {
      co_await e.wait();
      ++r;
    }(ev, released));
  }
  sim.call_after(10_ms, [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(released, 3);
}

TEST(EventTest, WaitAfterSetCompletesImmediately) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  Time when = -1;
  sim.spawn([](Simulation& s, Event& e, Time& w) -> task<> {
    co_await e.wait();
    w = s.now();
  }(sim, ev, when));
  sim.run();
  EXPECT_EQ(when, 0);
}

TEST(EventTest, ResetReArms) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

TEST(GateTest, ClosedGateParksUntilOpen) {
  Simulation sim;
  Gate gate(sim, /*open=*/false);
  Time passed = -1;
  sim.spawn([](Simulation& s, Gate& g, Time& p) -> task<> {
    co_await g.passage();
    p = s.now();
  }(sim, gate, passed));
  sim.call_after(7_ms, [&] { gate.open(); });
  sim.run();
  EXPECT_EQ(passed, 7_ms);
}

TEST(GateTest, OpenGatePassesImmediately) {
  Simulation sim;
  Gate gate(sim, true);
  bool passed = false;
  sim.spawn([](Gate& g, bool& p) -> task<> {
    co_await g.passage();
    p = true;
  }(gate, passed));
  EXPECT_TRUE(passed);  // ran synchronously during spawn
}

TEST(GateTest, ReleasedWaiterPassesEvenIfGateRecloses) {
  Simulation sim;
  Gate gate(sim, false);
  bool passed = false;
  sim.spawn([](Gate& g, bool& p) -> task<> {
    co_await g.passage();
    p = true;
  }(gate, passed));
  sim.call_after(1_ms, [&] {
    gate.open();
    gate.close();  // closes again before the wakeup event fires
  });
  sim.run();
  EXPECT_TRUE(passed);
}

TEST(MailboxTest, FifoDelivery) {
  Simulation sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.spawn([](Mailbox<int>& m, std::vector<int>& g) -> task<> {
    for (int i = 0; i < 3; ++i) g.push_back(co_await m.recv());
  }(mb, got));
  sim.call_after(1_ms, [&] {
    mb.send(10);
    mb.send(20);
    mb.send(30);
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(MailboxTest, QueuedValueReceivedWithoutSuspend) {
  Simulation sim;
  Mailbox<int> mb(sim);
  mb.send(42);
  int got = 0;
  sim.spawn([](Mailbox<int>& m, int& g) -> task<> {
    g = co_await m.recv();
  }(mb, got));
  EXPECT_EQ(got, 42);
}

TEST(MailboxTest, MultipleWaitersFifoHandoff) {
  Simulation sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Mailbox<int>& m, std::vector<int>& g) -> task<> {
      g.push_back(co_await m.recv());
    }(mb, got));
  }
  sim.call_after(1_ms, [&] {
    mb.send(1);
    mb.send(2);
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(MailboxTest, TryRecv) {
  Simulation sim;
  Mailbox<std::string> mb(sim);
  EXPECT_FALSE(mb.try_recv().has_value());
  mb.send("x");
  auto v = mb.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "x");
}

TEST(MailboxTest, DeadReceiverDoesNotConsume) {
  Simulation sim;
  auto host = std::make_shared<Domain>("h");
  Mailbox<int> mb(sim);
  int got = -1;
  sim.spawn(host, [](Mailbox<int>& m, int& g) -> task<> {
    g = co_await m.recv();
  }(mb, got));
  sim.call_after(1_ms, [&] { host->kill(); });
  sim.call_after(2_ms, [&] { mb.send(99); });
  sim.run();
  // The parked receiver was handed the value but its wakeup was discarded:
  // the value is lost with the host, exactly like data handed to a dead
  // kernel. The sender must use timeouts/acks for reliability.
  EXPECT_EQ(got, -1);
  sim.shutdown();
}

TEST(WaitGroupTest, WaitsForAll) {
  Simulation sim;
  WaitGroup wg(sim);
  int done_at = -1;
  wg.add(3);
  for (int i = 1; i <= 3; ++i) {
    sim.call_after(milliseconds(i * 10), [&wg] { wg.done(); });
  }
  sim.spawn([](Simulation& s, WaitGroup& w, int& d) -> task<> {
    co_await w.wait();
    d = static_cast<int>(to_millis(s.now()));
  }(sim, wg, done_at));
  sim.run();
  EXPECT_EQ(done_at, 30);
}

TEST(WaitGroupTest, EmptyGroupCompletesImmediately) {
  Simulation sim;
  WaitGroup wg(sim);
  bool done = false;
  sim.spawn([](WaitGroup& w, bool& d) -> task<> {
    co_await w.wait();
    d = true;
  }(wg, done));
  EXPECT_TRUE(done);
}

TEST(WaitGroupTest, UnbalancedDoneThrows) {
  Simulation sim;
  WaitGroup wg(sim);
  EXPECT_THROW(wg.done(), InvariantError);
}

TEST(SimulationTest, DeterministicEventCount) {
  auto run_once = [] {
    Simulation sim;
    Event ev(sim);
    for (int i = 0; i < 50; ++i) {
      sim.spawn([](Simulation& s, Event& e, int salt) -> task<> {
        co_await s.sleep_for(microseconds(salt * 7 % 13));
        co_await e.wait();
      }(sim, ev, i));
    }
    sim.call_after(1_ms, [&] { ev.set(); });
    sim.run();
    return sim.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nlc::sim
