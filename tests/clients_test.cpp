#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/server_app.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"

namespace nlc::clients {
namespace {

using namespace nlc::literals;
using core::Cluster;
using core::kClientIp;
using core::kServiceIp;

struct Rig {
  Cluster cl;
  apps::AppEnv env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp,
                   kServiceIp, 3};
  std::unique_ptr<apps::ServerApp> app;

  explicit Rig(apps::AppSpec spec) {
    kern::Container& c = cl.create_service_container(spec.name);
    app = std::make_unique<apps::ServerApp>(env, spec);
    app->setup(c.id());
  }

  ClientConfig base() const {
    ClientConfig cc;
    cc.local_ip = kClientIp;
    cc.server_ip = kServiceIp;
    cc.port = app->spec().port;
    cc.request_bytes = 10;
    return cc;
  }
};

TEST(ClosedLoopClientTest, CompletesRequestsAndMeasuresLatency) {
  Rig rig(apps::netecho_spec());
  ClientConfig cc = rig.base();
  ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                          rig.cl.client_tcp, cc, 1);
  client.start();
  rig.cl.sim.run_until(300_ms);
  client.stop();
  EXPECT_GT(client.completed(), 50u);
  EXPECT_GT(client.latencies_ms().mean(), 0.0);
  EXPECT_EQ(client.protocol_errors(), 0u);
  EXPECT_EQ(client.latency_trace().size(), client.completed());
}

TEST(ClosedLoopClientTest, PipelineKeepsMultipleOutstanding) {
  // Pipelining hides the round-trip: a wire-latency-bound echo client
  // completes several times more requests with 4 outstanding than with 1.
  apps::AppSpec spec = apps::netecho_spec();
  Rig rig(spec);
  ClientConfig cc = rig.base();
  cc.pipeline = 4;
  ClosedLoopClient piped(rig.cl.sim, rig.cl.client_domain,
                         rig.cl.client_tcp, cc, 2);
  piped.start();
  rig.cl.sim.run_until(500_ms);
  piped.stop();

  Rig rig2(spec);
  ClientConfig cc2 = rig2.base();
  cc2.pipeline = 1;
  ClosedLoopClient serial(rig2.cl.sim, rig2.cl.client_domain,
                          rig2.cl.client_tcp, cc2, 2);
  serial.start();
  rig2.cl.sim.run_until(500_ms);
  serial.stop();

  EXPECT_GT(piped.completed(), serial.completed() * 2);
}

TEST(ClosedLoopClientTest, ThroughputWindowing) {
  Rig rig(apps::netecho_spec());
  ClientConfig cc = rig.base();
  ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                          rig.cl.client_tcp, cc, 3);
  client.start();
  rig.cl.sim.run_until(1_s);
  client.stop();
  double early = client.throughput(0, 500_ms);
  double late = client.throughput(500_ms, 1_s);
  EXPECT_GT(early, 0.0);
  EXPECT_NEAR(early, late, early * 0.5);  // steady state
}

TEST(ClosedLoopClientTest, KvModeDetectsServerWithoutStore) {
  // Server without a KV region replies without payload: every request
  // counts one kv error, none crash.
  Rig rig(apps::netecho_spec());  // kv_pages == 0
  ClientConfig cc = rig.base();
  cc.kv_mode = true;
  cc.kv_ops_per_request = 4;
  ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                          rig.cl.client_tcp, cc, 4);
  client.start();
  rig.cl.sim.run_until(100_ms);
  client.stop();
  EXPECT_GT(client.completed(), 0u);
  EXPECT_EQ(client.kv_errors(), client.completed());
}

TEST(ClosedLoopClientTest, ThinkTimeThrottles) {
  Rig rig(apps::netecho_spec());
  ClientConfig cc = rig.base();
  cc.think_time = 50_ms;
  ClosedLoopClient client(rig.cl.sim, rig.cl.client_domain,
                          rig.cl.client_tcp, cc, 5);
  client.start();
  rig.cl.sim.run_until(1_s);
  client.stop();
  EXPECT_LE(client.completed(), 22u);  // ~20 with 50ms think time
}

TEST(ClosedLoopClientTest, ConnectFailureCountsBroken) {
  Cluster cl;  // nobody listening on the service address
  cl.create_service_container("ghost");
  ClientConfig cc;
  cc.local_ip = kClientIp;
  cc.server_ip = kServiceIp;
  cc.port = 4242;
  ClosedLoopClient client(cl.sim, cl.client_domain, cl.client_tcp, cc, 6);
  client.start();
  cl.sim.run_until(1_s);
  EXPECT_EQ(client.broken_connections(), 1u);
  EXPECT_EQ(client.completed(), 0u);
}

}  // namespace
}  // namespace nlc::clients
