// N-way quorum replication (DESIGN.md §16): the QuorumCommitChecker's
// K-of-N release discipline, the trace oracle's quorum and promotion
// rules, and the end-to-end behavior of a 3-replica cluster — backup-lag
// tolerance, single-backup-crash absorption, double failure, correlated
// rack failure and the promotion-picks-most-caught-up regression. The
// final tests pin the N = 1 degenerate case to the two-node seed engine.
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "check/invariants.hpp"
#include "check/trace_oracle.hpp"
#include "harness/experiment.hpp"
#include "util/assert.hpp"

namespace nlc {
namespace {

using trace::Event;
using trace::EventType;
using trace::Stage;
using trace::Track;

// ------------------------------------------------- QuorumCommitChecker ----

TEST(QuorumCheckerTest, QuorumAdvanceNeedsKthLargestCursor) {
  check::QuorumCommitChecker q(3, 2);
  q.replica_ack(0, 0);
  // Only one cursor covers epoch 0: declaring a quorum advance is the
  // release-before-K-acks violation.
  EXPECT_THROW(q.quorum_advanced(0), InvariantError);

  check::QuorumCommitChecker q2(3, 2);
  q2.replica_ack(0, 0);
  q2.replica_ack(2, 0);
  q2.quorum_advanced(0);
  q2.replica_ack(0, 1);
  q2.replica_ack(1, 0);
  q2.replica_ack(1, 1);
  q2.quorum_advanced(1);
  EXPECT_GT(q2.checks(), 0u);
}

TEST(QuorumCheckerTest, ReplicaCursorsAreMonotone) {
  check::QuorumCommitChecker q(2, 1);
  q.replica_ack(0, 3);
  EXPECT_THROW(q.replica_ack(0, 2), InvariantError);
}

TEST(QuorumCheckerTest, LogReleaseNeedsKAcksAndNoDuplicates) {
  check::QuorumCommitChecker q(3, 2);
  q.replica_log_ack(0, 1);
  EXPECT_THROW(q.log_release(1), InvariantError);

  check::QuorumCommitChecker q2(3, 2);
  q2.replica_log_ack(0, 1);
  EXPECT_THROW(q2.replica_log_ack(0, 1), InvariantError);

  check::QuorumCommitChecker q3(3, 2);
  q3.replica_log_ack(0, 1);
  q3.replica_log_ack(2, 1);
  q3.log_release(1);
  EXPECT_THROW(q3.log_release(1), InvariantError);  // not released twice
}

TEST(QuorumCheckerTest, PromotionMustPickMaximalCandidate) {
  using Candidate = check::QuorumCommitChecker::Candidate;
  check::QuorumCommitChecker q(3, 2);
  std::vector<Candidate> cands = {
      {0, true, 7, 10},
      {1, true, 9, 4},
  };
  // Replica 1 has the higher acked cursor; promoting 0 is the
  // lost-progress violation.
  EXPECT_THROW(q.promoted(0, cands), InvariantError);

  check::QuorumCommitChecker q2(3, 2);
  q2.promoted(1, cands);
  EXPECT_GT(q2.checks(), 0u);
}

TEST(QuorumCheckerTest, PromotionWinnerMustCoverQuorumCursor) {
  using Candidate = check::QuorumCommitChecker::Candidate;
  check::QuorumCommitChecker q(3, 2);
  q.replica_ack(0, 5);
  q.replica_ack(1, 5);
  q.quorum_advanced(5);  // output for epoch 5 is released
  // The only survivor stops at epoch 3: promoting it would lose released
  // output — exactly what quorum K > 1 exists to prevent.
  std::vector<Candidate> behind = {{2, true, 3, 0}};
  EXPECT_THROW(q.promoted(2, behind), InvariantError);
}

// ------------------------------------------------------- trace oracle ----

Event make_event(std::uint64_t seq, Time sim_ns, std::uint64_t arg,
                 EventType type, Track track, Stage stage) {
  return Event{seq, sim_ns, /*wall_ns=*/0, arg, type, track, stage};
}

TEST(QuorumTraceOracleTest, ReleaseNeedsKReplicaAcks) {
  std::vector<Event> ev;
  std::uint64_t s = 0;
  ev.push_back(make_event(s++, 1, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kAckRecv));
  ev.push_back(make_event(s++, 1, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kReplicaAck));
  ev.push_back(make_event(s++, 2, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kReplicaAck));
  ev.push_back(make_event(s++, 3, 0, EventType::kInstant, Track::kPrimary,
                          Stage::kRelease));
  check::TraceOrderStats stats = check::audit_trace_ordering(ev, 2);
  EXPECT_EQ(stats.quorum_release_checks, 1u);
  EXPECT_EQ(stats.release_checks, 1u);

  // One replica ack is not a quorum of two.
  std::vector<Event> bad;
  s = 0;
  bad.push_back(make_event(s++, 1, 0, EventType::kInstant, Track::kPrimary,
                           Stage::kAckRecv));
  bad.push_back(make_event(s++, 1, 0, EventType::kInstant, Track::kPrimary,
                           Stage::kReplicaAck));
  bad.push_back(make_event(s++, 2, 0, EventType::kInstant, Track::kPrimary,
                           Stage::kRelease));
  EXPECT_THROW(check::audit_trace_ordering(bad, 2), InvariantError);
}

TEST(QuorumTraceOracleTest, ResilverNeedsPromotionFirst) {
  std::vector<Event> ev;
  ev.push_back(make_event(0, 1, 1, EventType::kSpanBegin, Track::kBackup,
                          Stage::kResilver));
  EXPECT_THROW(check::audit_trace_ordering(ev, 2), InvariantError);

  ev.clear();
  ev.push_back(make_event(0, 1, 0, EventType::kInstant, Track::kDetector,
                          Stage::kPromote));
  ev.push_back(make_event(1, 2, 1, EventType::kSpanBegin, Track::kBackup,
                          Stage::kResilver));
  check::TraceOrderStats stats = check::audit_trace_ordering(ev, 2);
  EXPECT_EQ(stats.promotion_checks, 1u);
}

// --------------------------------------------------------- end to end ----

apps::AppSpec fast_spec() {
  apps::AppSpec s = apps::netecho_spec();
  s.kv_pages = 256;
  return s;
}

harness::RunConfig quorum_config(int replicas, topo::Topology topology) {
  harness::RunConfig cfg;
  cfg.spec = fast_spec();
  cfg.mode = harness::Mode::kNiLiCon;
  cfg.measure = nlc::seconds(2);
  cfg.warmup = nlc::milliseconds(200);
  cfg.nilicon.replicas = replicas;
  cfg.nilicon.quorum_k = replicas > 1 ? 2 : 0;
  cfg.nilicon.topology = topology;
  cfg.nilicon.audit_level = core::AuditLevel::kCommitPoints;
  cfg.kv_validation = true;
  cfg.client_connections = 3;
  return cfg;
}

TEST(QuorumEndToEndTest, KOfNReleasesAndAudits) {
  auto r = run_experiment(quorum_config(3, topo::Topology::kStar));
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  ASSERT_TRUE(r.audited);
  // The quorum mirror saw every advance, and per-replica lag was sampled
  // for all three replicas.
  EXPECT_GT(r.audit.quorum_checks, 0u);
  ASSERT_EQ(r.metrics.replica_ack_lag.size(), 3u);
  EXPECT_FALSE(r.metrics.quorum_wait_ms.empty());
  // Star fan-out puts every replica's copy on the wire.
  EXPECT_GT(r.metrics.wire_bytes_fanout,
            2 * (r.metrics.bytes_shipped + r.metrics.log_bytes_shipped));
}

TEST(QuorumEndToEndTest, ChainToleratesTailLag) {
  // In a chain the tail replica is fed store-and-forward through two hops:
  // its ack cursor must lag the head's, and K = 2 of 3 must keep releasing
  // output without waiting for the tail.
  auto r = run_experiment(quorum_config(3, topo::Topology::kChain));
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_EQ(r.kv_errors, 0u);
  ASSERT_EQ(r.metrics.replica_ack_lag.size(), 3u);
  double head = r.metrics.replica_ack_lag[0].empty()
                    ? 0.0
                    : r.metrics.replica_ack_lag[0].mean();
  double tail = r.metrics.replica_ack_lag[2].empty()
                    ? 0.0
                    : r.metrics.replica_ack_lag[2].mean();
  EXPECT_GE(tail, head);
  ASSERT_TRUE(r.audited);
  EXPECT_GT(r.audit.quorum_checks, 0u);
}

TEST(QuorumEndToEndTest, SingleBackupCrashIsAbsorbed) {
  harness::RunConfig cfg = quorum_config(3, topo::Topology::kStar);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.fault_kind = harness::FaultKind::kBackup;
  cfg.fault_backup_index = 1;
  cfg.seed = 11;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.fault_injected);
  // The primary is healthy: no failover, no client-visible loss, and the
  // run keeps serving on the surviving 2-of-3 quorum.
  EXPECT_FALSE(r.recovered);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
}

TEST(QuorumEndToEndTest, DoubleFailureStillRecovers) {
  harness::RunConfig cfg = quorum_config(3, topo::Topology::kStar);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.fault_kind = harness::FaultKind::kDouble;
  cfg.fault_backup_index = 1;
  cfg.seed = 13;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.fault_injected);
  ASSERT_TRUE(r.recovered);
  EXPECT_NE(r.recovery.promoted_replica, 1);  // the dead replica can't win
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
}

TEST(QuorumEndToEndTest, RackFailureSurvivedByAntiAffinity) {
  harness::RunConfig cfg = quorum_config(3, topo::Topology::kStar);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.fault_kind = harness::FaultKind::kRack;
  cfg.seed = 17;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.fault_injected);
  // The primary's rack also holds one backup (2 racks, 4 hosts): the
  // election must run among the other rack's survivors.
  ASSERT_TRUE(r.recovered);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_GT(r.requests_after_fault, 0u);
}

TEST(QuorumEndToEndTest, PromotionPicksMostCaughtUpReplica) {
  // Chain: replica 0 is fed directly and always holds the highest acked
  // cursor; the tail trails by the forwarding hops. The arbiter must
  // promote the head (the auditor's promoted() mirror would throw on any
  // cursor-losing pick; this pins the concrete expected winner too).
  harness::RunConfig cfg = quorum_config(3, topo::Topology::kChain);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.fault_kind = harness::FaultKind::kPrimary;
  cfg.seed = 19;
  auto r = run_experiment(cfg);
  ASSERT_TRUE(r.recovered);
  EXPECT_EQ(r.recovery.promoted_replica, 0);
  EXPECT_EQ(r.kv_errors, 0u);
  // The winner re-silvered the two survivors over the replication link.
  EXPECT_EQ(r.recovery.replicas_resilvered, 2u);
  EXPECT_GT(r.recovery.resilver_bytes, 0u);
}

// ------------------------------------------------ N = 1 degenerate case ----

TEST(QuorumEndToEndTest, SingleReplicaMatchesSeedEngineExactly) {
  // replicas = 1 + star must take the exact same protocol decisions as the
  // untouched two-node engine: same simulation event count, same epochs,
  // same wire bytes, same client-visible results.
  harness::RunConfig base;
  base.spec = fast_spec();
  base.mode = harness::Mode::kNiLiCon;
  base.measure = nlc::seconds(2);
  base.warmup = nlc::milliseconds(200);
  base.kv_validation = true;
  base.client_connections = 3;
  base.seed = 23;

  harness::RunConfig explicit_cfg = base;
  explicit_cfg.nilicon.replicas = 1;
  explicit_cfg.nilicon.quorum_k = 1;
  explicit_cfg.nilicon.topology = topo::Topology::kStar;

  auto a = run_experiment(base);
  auto b = run_experiment(explicit_cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed);
  EXPECT_EQ(a.metrics.bytes_shipped, b.metrics.bytes_shipped);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  // N = 1 books no quorum-only metrics, and the fan-out counter is the
  // same wire both ways. It exceeds bytes_shipped + log_bytes_shipped only
  // by the initial full-sync image and any shipped-but-unacked tail epoch,
  // both of which the per-epoch seed metrics deliberately exclude.
  EXPECT_TRUE(b.metrics.replica_ack_lag.empty());
  EXPECT_TRUE(b.metrics.quorum_wait_ms.empty());
  EXPECT_EQ(a.metrics.wire_bytes_fanout, b.metrics.wire_bytes_fanout);
  EXPECT_GE(b.metrics.wire_bytes_fanout,
            b.metrics.bytes_shipped + b.metrics.log_bytes_shipped);
}

}  // namespace
}  // namespace nlc
