// Determinism contract of the sharded intra-epoch page pipeline
// (DESIGN.md §10): for ANY NLC_SHARDS value, the serial reference engine
// and the sharded engine must produce byte-identical wire bytes, delta
// stats, visit counts and restore images. Also unit-tests the shared
// util::WorkerPool (the fan-out primitive) and property-tests the
// word-scanning delta kernel against the byte-at-a-time reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "criu/serialize.hpp"
#include "harness/experiment.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace nlc {
namespace {

// ----------------------------------------------------------- WorkerPool ----

TEST(WorkerPoolTest, CoversEveryIndexExactlyOnce) {
  util::WorkerPool pool(3);
  constexpr std::size_t kN = 1000;
  // NLC_LINT_OK(concurrency-owner): exercises WorkerPool cross-thread
  std::vector<std::atomic<int>> hits(kN);
  pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPoolTest, ZeroHelpersRunsInline) {
  util::WorkerPool pool(0);
  EXPECT_EQ(pool.helpers(), 0);
  std::vector<int> hits(64, 0);
  pool.run(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPoolTest, LowestIndexExceptionWins) {
  util::WorkerPool pool(3);
  try {
    pool.run(32, [](std::size_t i) {
      if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(WorkerPoolTest, NestedRunExecutesInline) {
  // "Outermost fan-out wins": a run() issued from inside a running task of
  // the same pool must not deadlock or oversubscribe — it executes inline.
  util::WorkerPool pool(2);
  // NLC_LINT_OK(concurrency-owner): exercises nested-pool concurrency
  std::atomic<int> inner_total{0};
  pool.run(4, [&](std::size_t) {
    pool.run(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(WorkerPoolTest, ConcurrentCallersBothComplete) {
  // Two external threads racing for the same pool: one wins the dispatch,
  // the other falls back to its own inline loop. Both must finish with
  // exact coverage.
  util::WorkerPool pool(2);
  auto batch = [&pool]() {
    // NLC_LINT_OK(concurrency-owner): exercises concurrent pool use
    std::vector<std::atomic<int>> hits(256);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    int total = 0;
    for (auto& h : hits) total += h.load();
    return total;
  };
  // NLC_LINT_OK(concurrency-owner): two racing batches, on purpose
  auto f1 = std::async(std::launch::async, batch);
  // NLC_LINT_OK(concurrency-owner): two racing batches, on purpose
  auto f2 = std::async(std::launch::async, batch);
  EXPECT_EQ(f1.get(), 256);
  EXPECT_EQ(f2.get(), 256);
}

// --------------------------------------------------------- delta kernels ----

kern::PageBytes random_page(Rng& rng) {
  kern::PageBytes p(kPageSize);
  for (auto& b : p) b = static_cast<std::byte>(rng.next() & 0xff);
  return p;
}

void expect_same_delta(const kern::PageBytes& prev,
                       const kern::PageBytes& cur) {
  criu::PageDelta ref = criu::delta_encode(&prev, cur);
  criu::PageDelta fast = criu::delta_encode_fast(&prev, cur);
  ASSERT_EQ(fast.raw, ref.raw);
  ASSERT_EQ(fast.wire_size, ref.wire_size);
  ASSERT_EQ(fast.runs.size(), ref.runs.size());
  for (std::size_t i = 0; i < ref.runs.size(); ++i) {
    EXPECT_EQ(fast.runs[i].offset, ref.runs[i].offset);
    EXPECT_EQ(fast.runs[i].bytes, ref.runs[i].bytes);
  }
  // And the codec round-trips: apply(prev, encode(prev, cur)) == cur.
  kern::PageBytes back = criu::delta_apply(&prev, fast, &cur);
  EXPECT_EQ(back, cur);
}

TEST(DeltaKernelTest, FastMatchesReferenceOnRandomMutations) {
  Rng rng(0xD157'0001);
  for (int iter = 0; iter < 200; ++iter) {
    kern::PageBytes prev = random_page(rng);
    kern::PageBytes cur = prev;
    int nmut = static_cast<int>(rng.uniform(0, 40));
    for (int m = 0; m < nmut; ++m) {
      auto pos = static_cast<std::size_t>(rng.uniform(0, kPageSize - 1));
      auto len = static_cast<std::size_t>(rng.uniform(1, 64));
      for (std::size_t j = pos; j < std::min(pos + len, kPageSize); ++j) {
        cur[j] = static_cast<std::byte>(rng.next() & 0xff);
      }
    }
    expect_same_delta(prev, cur);
  }
}

TEST(DeltaKernelTest, FastMatchesReferenceOnEdgeCases) {
  Rng rng(0xD157'0002);
  kern::PageBytes prev = random_page(rng);
  // Identical pages: zero runs either way.
  expect_same_delta(prev, prev);
  // Fully different: raw fallback.
  kern::PageBytes inv = prev;
  for (auto& b : inv) b = static_cast<std::byte>(~static_cast<int>(b));
  expect_same_delta(prev, inv);
  // Single-byte diffs at word boundaries and page edges.
  for (std::size_t pos : {0ul, 1ul, 7ul, 8ul, 9ul, 63ul, 64ul, 2048ul,
                          kPageSize - 9, kPageSize - 8, kPageSize - 1}) {
    kern::PageBytes cur = prev;
    cur[pos] = static_cast<std::byte>(static_cast<int>(cur[pos]) ^ 0x1);
    expect_same_delta(prev, cur);
  }
  // Diff pairs separated by every gap width around the run-merge threshold
  // (kDeltaRunHeader): exercises the absorb-vs-new-run decision exactly.
  for (std::size_t gap = 1; gap <= criu::kDeltaRunHeader + 3; ++gap) {
    for (std::size_t base : {100ul, 1000ul, kPageSize - 32}) {
      kern::PageBytes cur = prev;
      cur[base] = static_cast<std::byte>(static_cast<int>(cur[base]) ^ 0xFF);
      cur[base + gap + 1] =
          static_cast<std::byte>(static_cast<int>(cur[base + gap + 1]) ^ 0xFF);
      expect_same_delta(prev, cur);
    }
  }
}

TEST(DeltaKernelTest, NoReferenceIsRawInBothKernels) {
  Rng rng(0xD157'0003);
  kern::PageBytes cur = random_page(rng);
  criu::PageDelta ref = criu::delta_encode(nullptr, cur);
  criu::PageDelta fast = criu::delta_encode_fast(nullptr, cur);
  EXPECT_TRUE(ref.raw);
  EXPECT_TRUE(fast.raw);
  EXPECT_EQ(ref.wire_size, fast.wire_size);
}

// The sharded codec short-circuits a page whose record still carries the
// exact reference handle (identity implies byte equality under COW
// freezing). The stamped wire size and stats must match what the serial
// reference codec computes by scanning the identical bytes.
TEST(DeltaKernelTest, IdentityShortCircuitMatchesReferenceCodec) {
  Rng rng(0xD157'0004);
  auto payload = util::arena_make_shared<kern::PageBytes>(random_page(rng));

  auto make_image = [&](std::uint64_t epoch) {
    criu::CheckpointImage img;
    img.epoch = epoch;
    criu::PageRecord rec;
    rec.page = 7;
    rec.content = payload;
    img.pages.push_back(rec);
    return img;
  };

  criu::DeltaCodec serial(1);
  criu::DeltaCodec sharded(2);
  criu::CheckpointImage s0 = make_image(0);
  criu::CheckpointImage p0 = make_image(0);
  serial.encode_epoch(s0);
  sharded.encode_epoch(p0);

  // Second epoch ships the same handle: serial scans 4 KiB of equal
  // bytes, sharded takes the identity path; results must be identical.
  criu::CheckpointImage s1 = make_image(1);
  criu::CheckpointImage p1 = make_image(1);
  criu::EpochDeltaStats a = serial.encode_epoch(s1);
  criu::EpochDeltaStats b = sharded.encode_epoch(p1);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.delta_pages, b.delta_pages);
  EXPECT_EQ(a.raw_pages, b.raw_pages);
  EXPECT_EQ(s1.pages[0].wire_size, p1.pages[0].wire_size);
  EXPECT_EQ(p1.pages[0].wire_size, criu::kDeltaPageHeader);
}

// ---------------------------------------------- end-to-end shard contract ----

/// A container with `npages` of content, every page dirty, frozen — the
/// same input for every shard configuration.
struct PipelineRig {
  sim::Simulation sim;
  blk::Disk disk;
  kern::Kernel kernel;
  net::Network net;
  net::TcpStack tcp;
  kern::ContainerId cid;
  kern::Process* proc;
  kern::Vma vma;
  criu::CheckpointEngine engine;

  explicit PipelineRig(std::uint64_t npages)
      : kernel(sim, nullptr, "shard", disk), net(sim),
        tcp(sim, nullptr, net, net.add_host("h", nullptr)),
        cid(kernel.create_container("shard").id()),
        proc(&kernel.create_process(cid, "app")),
        vma(proc->mm().map(npages, kern::VmaKind::kAnon)),
        engine(kernel, tcp) {
    Rng rng(0x5EED);
    std::vector<std::byte> cell(kPageSize);
    for (std::uint64_t p = 0; p < npages; ++p) {
      for (auto& b : cell) b = static_cast<std::byte>(rng.next() & 0xff);
      proc->mm().write(vma.start + p, 0, cell);
    }
    proc->mm().clear_soft_dirty();
    proc->mm().touch_range(vma.start, npages);
    kernel.freeze_container(cid);
  }

  /// Deterministic per-epoch mutation: overwrite a seeded-random slice of
  /// a seeded-random subset of pages (identical for every rig instance).
  void mutate(std::uint64_t epoch) {
    Rng rng(0xABCD ^ epoch);
    std::vector<std::byte> val(256);
    for (auto& b : val) b = static_cast<std::byte>(rng.next() & 0xff);
    for (std::uint64_t p = 0; p < vma.npages; p += 3) {
      auto off = static_cast<std::uint64_t>(rng.uniform(0, kPageSize - 256));
      proc->mm().write(vma.start + p, off, val);
    }
    proc->mm().touch_range(vma.start, vma.npages);
  }
};

/// Everything the contract says must not depend on the shard count.
struct PipelineTrace {
  std::vector<std::byte> wire;            // concatenated serialized epochs
  std::vector<std::uint64_t> stats;       // per-epoch EpochDeltaStats fields
  std::uint64_t visits = 0;               // page-store visit total
  std::vector<std::uint64_t> restore;     // flattened all_pages() records
  std::vector<std::byte> restore_bytes;   // their payload bytes
};

PipelineTrace run_pipeline(int nshards, int epochs) {
  constexpr std::uint64_t kPages = 700;
  PipelineRig rig(kPages);
  std::unique_ptr<util::WorkerPool> pool;
  if (nshards > 1) pool = std::make_unique<util::WorkerPool>(nshards - 1);
  criu::DeltaCodec codec(nshards);
  criu::RadixPageStore store(nshards);
  PipelineTrace tr;

  for (int e = 0; e < epochs; ++e) {
    if (e > 0) rig.mutate(static_cast<std::uint64_t>(e));
    criu::HarvestOptions ho;
    ho.incremental = true;
    ho.shards = nshards;
    ho.pool = pool.get();
    criu::HarvestResult hr =
        rig.engine.harvest(rig.cid, static_cast<std::uint64_t>(e), nullptr,
                           ho);
    criu::EpochDeltaStats ds = codec.encode_epoch(hr.image, pool.get());
    tr.stats.insert(tr.stats.end(),
                    {ds.content_pages, ds.delta_pages, ds.raw_pages,
                     ds.raw_bytes, ds.wire_bytes});
    std::vector<std::byte> bytes =
        serialize_image(hr.image, nshards, pool.get());
    tr.wire.insert(tr.wire.end(), bytes.begin(), bytes.end());
    store.begin_checkpoint(static_cast<std::uint64_t>(e));
    tr.visits += store.store_batch(hr.image.pages, pool.get());
  }

  for (const criu::PageRecord* r : store.all_pages()) {
    tr.restore.insert(tr.restore.end(),
                      {r->page, r->version,
                       static_cast<std::uint64_t>(r->wire_size)});
    if (r->has_content()) {
      tr.restore_bytes.insert(tr.restore_bytes.end(), r->content->begin(),
                              r->content->end());
    }
  }
  return tr;
}

TEST(ShardDeterminismTest, WireBytesStatsAndRestoreIdenticalAcrossShards) {
  PipelineTrace serial = run_pipeline(1, 4);
  // The serialized stream must also round-trip through the serial parser.
  for (int nshards : {2, 3, 8}) {
    PipelineTrace sharded = run_pipeline(nshards, 4);
    EXPECT_EQ(sharded.wire, serial.wire) << nshards << " shards";
    EXPECT_EQ(sharded.stats, serial.stats) << nshards << " shards";
    EXPECT_EQ(sharded.visits, serial.visits) << nshards << " shards";
    EXPECT_EQ(sharded.restore, serial.restore) << nshards << " shards";
    EXPECT_EQ(sharded.restore_bytes, serial.restore_bytes)
        << nshards << " shards";
  }
}

TEST(ShardDeterminismTest, ShardedSerializedImageDeserializes) {
  constexpr std::uint64_t kPages = 300;
  PipelineRig rig(kPages);
  util::WorkerPool pool(3);
  criu::HarvestOptions ho;
  ho.incremental = true;
  ho.shards = 4;
  ho.pool = &pool;
  criu::HarvestResult hr = rig.engine.harvest(rig.cid, 1, nullptr, ho);
  std::vector<std::byte> bytes = serialize_image(hr.image, 4, &pool);
  criu::CheckpointImage back = criu::deserialize_image(bytes);
  ASSERT_EQ(back.pages.size(), hr.image.pages.size());
  for (std::size_t i = 0; i < back.pages.size(); ++i) {
    EXPECT_EQ(back.pages[i].page, hr.image.pages[i].page);
    ASSERT_TRUE(back.pages[i].has_content());
    EXPECT_EQ(*back.pages[i].content, *hr.image.pages[i].content);
  }
}

TEST(ShardDeterminismTest, FullSimMetricsIdenticalAcrossShardCounts) {
  auto run = [](int shards) {
    harness::RunConfig cfg;
    cfg.spec = apps::netecho_spec();
    cfg.spec.kv_pages = 256;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.warmup = nlc::milliseconds(200);
    cfg.measure = nlc::seconds(2);
    cfg.nilicon.delta_compress_pages = true;
    cfg.nilicon.page_shards = shards;
    return harness::run_experiment(cfg);
  };
  harness::RunResult a = run(1);
  harness::RunResult b = run(8);
  EXPECT_EQ(b.metrics.page_shards_used, 8);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed);
  EXPECT_EQ(a.metrics.bytes_shipped, b.metrics.bytes_shipped);
  EXPECT_DOUBLE_EQ(a.metrics.stop_time_ms.mean(),
                   b.metrics.stop_time_ms.mean());
  EXPECT_DOUBLE_EQ(a.metrics.state_bytes.mean(), b.metrics.state_bytes.mean());
  ASSERT_EQ(a.metrics.compression_ratio.count(),
            b.metrics.compression_ratio.count());
  if (!a.metrics.compression_ratio.empty()) {
    EXPECT_DOUBLE_EQ(a.metrics.compression_ratio.mean(),
                     b.metrics.compression_ratio.mean());
  }
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
}

}  // namespace
}  // namespace nlc
