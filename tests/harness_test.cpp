#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "harness/experiment.hpp"

namespace nlc::harness {
namespace {

apps::AppSpec fast_spec() {
  apps::AppSpec s = apps::netecho_spec();
  s.kv_pages = 256;
  return s;
}

RunConfig base_config(Mode mode) {
  RunConfig cfg;
  cfg.spec = fast_spec();
  cfg.mode = mode;
  cfg.measure = nlc::seconds(2);
  cfg.warmup = nlc::milliseconds(200);
  return cfg;
}

TEST(HarnessTest, StockRunProducesThroughput) {
  auto r = run_experiment(base_config(Mode::kStock));
  EXPECT_GT(r.throughput_rps, 100.0);  // unprotected echo is fast
  EXPECT_EQ(r.metrics.epochs_completed, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.active_cores, 0.0);
}

TEST(HarnessTest, NiLiConRunCheckpointsAndServes) {
  auto r = run_experiment(base_config(Mode::kNiLiCon));
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_GT(r.metrics.epochs_completed, 40u);
  EXPECT_GT(r.metrics.stop_time_ms.mean(), 0.5);
  EXPECT_GT(r.backup_cores, 0.0);
  EXPECT_LT(r.backup_cores, r.active_cores + 0.5);
}

TEST(HarnessTest, McRunCheckpointsAndServes) {
  auto r = run_experiment(base_config(Mode::kMc));
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_GT(r.metrics.epochs_completed, 40u);
  // MC stop is small: vcpu state + a few dirty pages.
  EXPECT_LT(r.metrics.stop_time_ms.mean(), 5.0);
}

TEST(HarnessTest, ProtectionCostsThroughput) {
  auto stock = run_experiment(base_config(Mode::kStock));
  auto nil = run_experiment(base_config(Mode::kNiLiCon));
  EXPECT_LT(nil.throughput_rps, stock.throughput_rps);
}

TEST(HarnessTest, MeasureOverheadIsPositive) {
  // A single un-pipelined echo client is latency-bound: under protection
  // every response waits for its epoch to commit, so the throughput
  // reduction approaches (but never reaches) 100%.
  double overhead = measure_overhead(base_config(Mode::kNiLiCon));
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 1.0);
}

TEST(HarnessTest, BatchRunMeasuresRuntime) {
  RunConfig cfg;
  cfg.spec = apps::swaptions_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.batch_work = nlc::milliseconds(800);
  auto r = run_experiment(cfg);
  EXPECT_GT(r.batch_runtime, r.batch_ideal);  // protection adds time
  EXPECT_GT(r.metrics.epochs_completed, 10u);
}

TEST(HarnessTest, FaultInjectionRecoversWithValidation) {
  RunConfig cfg = base_config(Mode::kNiLiCon);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.kv_validation = true;
  cfg.client_connections = 3;
  cfg.seed = 17;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.fault_injected);
  EXPECT_TRUE(r.recovered);
  EXPECT_GT(r.requests_after_fault, 0u);
  EXPECT_EQ(r.kv_errors, 0u);
  EXPECT_EQ(r.broken_connections, 0u);
  EXPECT_GT(r.interruption, nlc::milliseconds(200));  // detection+restore
  EXPECT_LT(r.interruption, nlc::seconds(2));
}

TEST(HarnessTest, FaultInjectionWithDiskStress) {
  RunConfig cfg = base_config(Mode::kNiLiCon);
  cfg.measure = nlc::seconds(4);
  cfg.inject_fault = true;
  cfg.with_diskstress = true;
  cfg.seed = 23;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.diskstress_errors, 0u);
  EXPECT_EQ(r.diskstress_post_failover_mismatches, 0u);
}

TEST(HarnessTest, BatchFaultInjectionResumesFromCommittedProgress) {
  RunConfig cfg;
  cfg.spec = apps::swaptions_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.batch_work = nlc::seconds(1);
  cfg.inject_fault = true;
  cfg.seed = 31;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.recovered);
  // The run finished on the backup: total wall time exceeds the quota by
  // at least the outage, and the re-executed slice since the last commit.
  EXPECT_GT(r.batch_runtime, r.batch_ideal);
}

TEST(HarnessTest, DeterministicAcrossRepetition) {
  auto a = run_experiment(base_config(Mode::kNiLiCon));
  auto b = run_experiment(base_config(Mode::kNiLiCon));
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed);
}

TEST(HarnessTest, SeedChangesOutcomeDetails) {
  auto a = run_experiment(base_config(Mode::kNiLiCon));
  RunConfig cfg = base_config(Mode::kNiLiCon);
  cfg.seed = 999;
  auto b = run_experiment(cfg);
  // Different stochastic paths, same order of magnitude.
  EXPECT_NEAR(b.throughput_rps / a.throughput_rps, 1.0, 0.5);
}

TEST(HarnessTest, Table1RowZeroIsCatastrophicallySlow) {
  RunConfig cfg;
  cfg.spec = apps::streamcluster_spec();
  cfg.mode = Mode::kNiLiCon;
  cfg.nilicon = core::Options::table1_row(0);
  cfg.batch_work = nlc::milliseconds(300);
  auto basic = run_experiment(cfg);
  cfg.nilicon = core::Options::table1_row(6);
  auto optimized = run_experiment(cfg);
  // The unoptimized stack is an order of magnitude worse (Table I).
  EXPECT_GT(basic.batch_runtime, optimized.batch_runtime * 4);
}

}  // namespace
}  // namespace nlc::harness
