// Tier-equivalence suite for the dispatched scan kernels and the slab
// arena (DESIGN.md §12).
//
// Contract under test: every SimdTier produces bit-identical results —
// for the find_diff/find_same primitives over arbitrary spans (including
// sub-word tails), for delta_encode_fast against the byte-at-a-time
// reference over adversarial run patterns, and for the full sharded
// harvest -> encode -> serialize -> fold pipeline across
// (shards, tier) combinations. Plus sanity for the payload/node arena:
// blocks flow across threads and the stats counters move.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "blockdev/disk.hpp"
#include "criu/checkpoint.hpp"
#include "criu/delta.hpp"
#include "criu/pagestore.hpp"
#include "criu/serialize.hpp"
#include "harness/experiment.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/worker_pool.hpp"

namespace nlc {
namespace {

/// Every tier this build + CPU can run (kVector only where AVX2 exists;
/// the dispatcher would clamp it anyway, which would just repeat kSwar64).
std::vector<util::SimdTier> runnable_tiers() {
  std::vector<util::SimdTier> tiers{util::SimdTier::kScalar,
                                    util::SimdTier::kSwar64};
  if (util::cpu_supports_vector()) tiers.push_back(util::SimdTier::kVector);
  return tiers;
}

// ------------------------------------------------------ scan primitives ----

TEST(SimdKernelTest, FindPrimitivesMatchScalarOnArbitrarySpans) {
  Rng rng(0x51D0'0001);
  for (int iter = 0; iter < 300; ++iter) {
    // Lengths deliberately cover 0, sub-word (< 8), sub-vector (< 32) and
    // just-past-vector tails.
    const auto n = static_cast<std::size_t>(rng.uniform(0, 170));
    std::vector<std::byte> a(n);
    std::vector<std::byte> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::byte>(rng.next() & 0xff);
      // Mostly-equal buffers so both primitives exercise their skip loops.
      b[i] = (rng.next() % 4 == 0)
                 ? static_cast<std::byte>(rng.next() & 0xff)
                 : a[i];
    }
    for (std::size_t start = 0; start <= n; start += 1 + (n / 7)) {
      const std::size_t rd =
          util::find_diff(a.data(), b.data(), start, n, util::SimdTier::kScalar);
      const std::size_t rs =
          util::find_same(a.data(), b.data(), start, n, util::SimdTier::kScalar);
      for (util::SimdTier t : runnable_tiers()) {
        EXPECT_EQ(util::find_diff(a.data(), b.data(), start, n, t), rd)
            << "find_diff tier " << util::simd_tier_name(t) << " n=" << n
            << " start=" << start;
        EXPECT_EQ(util::find_same(a.data(), b.data(), start, n, t), rs)
            << "find_same tier " << util::simd_tier_name(t) << " n=" << n
            << " start=" << start;
      }
    }
  }
}

TEST(SimdKernelTest, FindPrimitivesExactAroundVectorEdges) {
  // A single differing (resp. equal) byte swept across every position of a
  // region spanning word and vector boundaries: the returned index must be
  // exact, not just "somewhere in the differing word/lane".
  constexpr std::size_t kN = 96;  // 3 AVX2 lanes
  for (std::size_t pos = 0; pos < kN; ++pos) {
    std::vector<std::byte> a(kN, std::byte{0x11});
    std::vector<std::byte> b(kN, std::byte{0x11});
    b[pos] = std::byte{0x22};
    std::vector<std::byte> c(kN, std::byte{0x33});  // all-diff vs a...
    c[pos] = std::byte{0x11};                       // ...except one byte
    for (util::SimdTier t : runnable_tiers()) {
      EXPECT_EQ(util::find_diff(a.data(), b.data(), 0, kN, t), pos)
          << util::simd_tier_name(t);
      EXPECT_EQ(util::find_same(a.data(), c.data(), 0, kN, t), pos)
          << util::simd_tier_name(t);
    }
  }
}

// ------------------------------------------------------- encoder kernels ----

kern::PageBytes random_page(Rng& rng) {
  kern::PageBytes p(kPageSize);
  for (auto& b : p) b = static_cast<std::byte>(rng.next() & 0xff);
  return p;
}

/// Asserts delta_encode_fast(tier) == delta_encode for every runnable tier
/// (runs, raw flag, wire size) and that each tier's delta round-trips.
void expect_tiers_match_reference(const kern::PageBytes& prev,
                                  const kern::PageBytes& cur) {
  const criu::PageDelta ref = criu::delta_encode(&prev, cur);
  for (util::SimdTier t : runnable_tiers()) {
    criu::PageDelta fast = criu::delta_encode_fast(&prev, cur, t);
    ASSERT_EQ(fast.raw, ref.raw) << util::simd_tier_name(t);
    ASSERT_EQ(fast.wire_size, ref.wire_size) << util::simd_tier_name(t);
    ASSERT_EQ(fast.runs.size(), ref.runs.size()) << util::simd_tier_name(t);
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
      EXPECT_EQ(fast.runs[i].offset, ref.runs[i].offset);
      EXPECT_EQ(fast.runs[i].bytes, ref.runs[i].bytes);
    }
    kern::PageBytes back = criu::delta_apply(&prev, fast, &cur);
    EXPECT_EQ(back, cur) << util::simd_tier_name(t);
  }
}

TEST(SimdKernelTest, EncoderTiersMatchOnAdversarialPatterns) {
  Rng rng(0x51D0'0002);
  kern::PageBytes prev = random_page(rng);

  // All-same and all-diff.
  expect_tiers_match_reference(prev, prev);
  kern::PageBytes inv = prev;
  for (auto& b : inv) b = static_cast<std::byte>(~static_cast<int>(b));
  expect_tiers_match_reference(prev, inv);

  // Single-byte runs with boundaries swept across word and vector edges
  // (the lanes where a masked compare could mis-report the exact index).
  for (std::size_t pos :
       {0ul, 7ul, 8ul, 15ul, 16ul, 31ul, 32ul, 33ul, 63ul, 64ul, 65ul,
        kPageSize - 33, kPageSize - 32, kPageSize - 31, kPageSize - 1}) {
    kern::PageBytes cur = prev;
    cur[pos] = static_cast<std::byte>(static_cast<int>(cur[pos]) ^ 0x1);
    expect_tiers_match_reference(prev, cur);
  }

  // Runs that start/end exactly on vector edges, and runs crossing them.
  for (auto [start, len] : std::initializer_list<std::pair<std::size_t,
                                                           std::size_t>>{
           {0, 32}, {32, 32}, {30, 4}, {31, 2}, {32, 1}, {60, 40},
           {kPageSize - 64, 64}, {kPageSize - 5, 5}}) {
    kern::PageBytes cur = prev;
    for (std::size_t j = start; j < start + len; ++j) {
      cur[j] = static_cast<std::byte>(static_cast<int>(cur[j]) ^ 0xFF);
    }
    expect_tiers_match_reference(prev, cur);
  }

  // Equal gaps of every width around the absorb threshold, placed so the
  // gap itself straddles a vector edge.
  for (std::size_t gap = 1; gap <= criu::kDeltaRunHeader + 3; ++gap) {
    for (std::size_t base : {28ul, 30ul, 62ul, 1000ul, kPageSize - 48}) {
      kern::PageBytes cur = prev;
      cur[base] = static_cast<std::byte>(static_cast<int>(cur[base]) ^ 0xFF);
      cur[base + gap + 1] = static_cast<std::byte>(
          static_cast<int>(cur[base + gap + 1]) ^ 0xFF);
      expect_tiers_match_reference(prev, cur);
    }
  }

  // Alternating 1-byte stripes: worst case for the absorb logic (every
  // gap is absorbable, the whole page collapses into one run -> raw).
  kern::PageBytes stripes = prev;
  for (std::size_t j = 0; j < kPageSize; j += 2) {
    stripes[j] = static_cast<std::byte>(static_cast<int>(stripes[j]) ^ 0x55);
  }
  expect_tiers_match_reference(prev, stripes);
}

TEST(SimdKernelTest, EncoderTiersMatchOnRandomMutationFuzz) {
  Rng rng(0x51D0'0003);
  for (int iter = 0; iter < 150; ++iter) {
    kern::PageBytes prev = random_page(rng);
    kern::PageBytes cur = prev;
    const int nmut = static_cast<int>(rng.uniform(0, 50));
    for (int m = 0; m < nmut; ++m) {
      auto pos = static_cast<std::size_t>(rng.uniform(0, kPageSize - 1));
      auto len = static_cast<std::size_t>(rng.uniform(1, 90));
      for (std::size_t j = pos; j < std::min(pos + len, kPageSize); ++j) {
        cur[j] = static_cast<std::byte>(rng.next() & 0xff);
      }
    }
    expect_tiers_match_reference(prev, cur);
  }
}

// --------------------------------------------- pipeline tier determinism ----

/// A frozen container with seeded content — identical for every
/// (shards, tier) configuration (same rig as shard_determinism_test).
struct PipelineRig {
  sim::Simulation sim;
  blk::Disk disk;
  kern::Kernel kernel;
  net::Network net;
  net::TcpStack tcp;
  kern::ContainerId cid;
  kern::Process* proc;
  kern::Vma vma;
  criu::CheckpointEngine engine;

  explicit PipelineRig(std::uint64_t npages)
      : kernel(sim, nullptr, "simd", disk), net(sim),
        tcp(sim, nullptr, net, net.add_host("h", nullptr)),
        cid(kernel.create_container("simd").id()),
        proc(&kernel.create_process(cid, "app")),
        vma(proc->mm().map(npages, kern::VmaKind::kAnon)),
        engine(kernel, tcp) {
    Rng rng(0x5EED'51D0);
    std::vector<std::byte> cell(kPageSize);
    for (std::uint64_t p = 0; p < npages; ++p) {
      for (auto& b : cell) b = static_cast<std::byte>(rng.next() & 0xff);
      proc->mm().write(vma.start + p, 0, cell);
    }
    proc->mm().clear_soft_dirty();
    proc->mm().touch_range(vma.start, npages);
    kernel.freeze_container(cid);
  }

  void mutate(std::uint64_t epoch) {
    Rng rng(0xF00D ^ epoch);
    std::vector<std::byte> val(300);
    for (auto& b : val) b = static_cast<std::byte>(rng.next() & 0xff);
    for (std::uint64_t p = 0; p < vma.npages; p += 3) {
      auto off = static_cast<std::uint64_t>(rng.uniform(0, kPageSize - 300));
      proc->mm().write(vma.start + p, off, val);
    }
    proc->mm().touch_range(vma.start, vma.npages);
  }
};

struct PipelineTrace {
  std::vector<std::byte> wire;
  std::vector<std::uint64_t> stats;
  std::uint64_t visits = 0;
  std::vector<std::uint64_t> restore;
  std::vector<std::byte> restore_bytes;
};

PipelineTrace run_pipeline(int nshards, util::SimdTier tier, int epochs) {
  constexpr std::uint64_t kPages = 500;
  PipelineRig rig(kPages);
  std::unique_ptr<util::WorkerPool> pool;
  if (nshards > 1) pool = std::make_unique<util::WorkerPool>(nshards - 1);
  criu::DeltaCodec codec(nshards, tier);
  criu::RadixPageStore store(nshards);
  PipelineTrace tr;

  for (int e = 0; e < epochs; ++e) {
    if (e > 0) rig.mutate(static_cast<std::uint64_t>(e));
    criu::HarvestOptions ho;
    ho.incremental = true;
    ho.shards = nshards;
    ho.pool = pool.get();
    criu::HarvestResult hr = rig.engine.harvest(
        rig.cid, static_cast<std::uint64_t>(e), nullptr, ho);
    criu::EpochDeltaStats ds = codec.encode_epoch(hr.image, pool.get());
    tr.stats.insert(tr.stats.end(),
                    {ds.content_pages, ds.delta_pages, ds.raw_pages,
                     ds.raw_bytes, ds.wire_bytes});
    std::vector<std::byte> bytes =
        serialize_image(hr.image, nshards, pool.get());
    tr.wire.insert(tr.wire.end(), bytes.begin(), bytes.end());
    store.begin_checkpoint(static_cast<std::uint64_t>(e));
    tr.visits += store.store_batch(hr.image.pages, pool.get());
  }

  for (const criu::PageRecord* r : store.all_pages()) {
    tr.restore.insert(tr.restore.end(),
                      {r->page, r->version,
                       static_cast<std::uint64_t>(r->wire_size)});
    if (r->has_content()) {
      tr.restore_bytes.insert(tr.restore_bytes.end(), r->content->begin(),
                              r->content->end());
    }
  }
  return tr;
}

TEST(SimdPipelineTest, ObservablesIdenticalAcrossTiersAndShards) {
  // The serial reference engine at the scalar tier is the oracle.
  PipelineTrace ref = run_pipeline(1, util::SimdTier::kScalar, 4);
  for (int nshards : {1, 8}) {
    for (util::SimdTier tier : runnable_tiers()) {
      if (nshards == 1 && tier == util::SimdTier::kScalar) continue;
      PipelineTrace tr = run_pipeline(nshards, tier, 4);
      const char* tn = util::simd_tier_name(tier);
      EXPECT_EQ(tr.wire, ref.wire) << nshards << " shards, " << tn;
      EXPECT_EQ(tr.stats, ref.stats) << nshards << " shards, " << tn;
      EXPECT_EQ(tr.visits, ref.visits) << nshards << " shards, " << tn;
      EXPECT_EQ(tr.restore, ref.restore) << nshards << " shards, " << tn;
      EXPECT_EQ(tr.restore_bytes, ref.restore_bytes)
          << nshards << " shards, " << tn;
    }
  }
}

TEST(SimdPipelineTest, FullSimMetricsIdenticalAcrossTiers) {
  // End-to-end: a whole NiLiCon run (epochs, output commit, delta wire
  // accounting) must not depend on the scan-kernel tier.
  auto run = [](util::SimdTier tier) {
    harness::RunConfig cfg;
    cfg.spec = apps::netecho_spec();
    cfg.spec.kv_pages = 256;
    cfg.mode = harness::Mode::kNiLiCon;
    cfg.warmup = nlc::milliseconds(200);
    cfg.measure = nlc::seconds(2);
    cfg.nilicon.delta_compress_pages = true;
    cfg.nilicon.page_shards = 8;
    cfg.nilicon.simd_tier = tier;
    return harness::run_experiment(cfg);
  };
  harness::RunResult a = run(util::SimdTier::kScalar);
  EXPECT_EQ(a.metrics.simd_tier_used, util::SimdTier::kScalar);
  for (util::SimdTier tier : runnable_tiers()) {
    if (tier == util::SimdTier::kScalar) continue;
    harness::RunResult b = run(tier);
    const char* tn = util::simd_tier_name(tier);
    EXPECT_EQ(b.metrics.simd_tier_used, tier) << tn;
    EXPECT_EQ(a.sim_events, b.sim_events) << tn;
    EXPECT_EQ(a.requests_completed, b.requests_completed) << tn;
    EXPECT_EQ(a.metrics.epochs_completed, b.metrics.epochs_completed) << tn;
    EXPECT_EQ(a.metrics.bytes_shipped, b.metrics.bytes_shipped) << tn;
    EXPECT_DOUBLE_EQ(a.metrics.stop_time_ms.mean(),
                     b.metrics.stop_time_ms.mean());
    EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps) << tn;
  }
}

// ------------------------------------------------------------- the arena ----

TEST(ArenaTest, ServesPayloadsAndCountsThem) {
  const util::ArenaStats before = util::arena_stats();
  std::vector<kern::PagePayload> payloads;
  constexpr int kN = 64;
  payloads.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    payloads.push_back(util::arena_make_shared<kern::PageBytes>(
        kPageSize, static_cast<std::byte>(i)));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ((*payloads[static_cast<std::size_t>(i)])[0],
              static_cast<std::byte>(i));
  }
  const util::ArenaStats after = util::arena_stats();
  // Each payload needs two arena blocks (control block + 4 KiB buffer) and
  // both size classes are arena-served, so none of these allocations may
  // have routed to the operator-new fallback. (arena_allocs only counts
  // central refills, so with warm thread caches it can legitimately stay
  // flat — the fallback counter is the deterministic observable.)
  EXPECT_EQ(after.fallback_allocs, before.fallback_allocs);
  EXPECT_GT(after.slab_bytes, 0u);
  EXPECT_GT(after.slabs, 0u);
  EXPECT_GT(after.arena_allocs, 0u);
}

TEST(ArenaTest, OversizedRequestsFallBackToHeap) {
  const util::ArenaStats before = util::arena_stats();
  using Big = std::vector<std::byte, util::ArenaAllocator<std::byte>>;
  Big big(util::kArenaMaxBlock * 2);  // beyond the largest size class
  big[big.size() - 1] = std::byte{0x5A};
  const util::ArenaStats after = util::arena_stats();
  EXPECT_GE(after.fallback_allocs, before.fallback_allocs + 1);
}

TEST(ArenaTest, BlocksFlowAcrossThreads) {
  // Allocate on a worker thread, free on this one (and vice versa), many
  // times: the freed blocks join the freeing thread's cache and get reused.
  // Run under tsan/asan this doubles as the arena's race/leak check.
  for (int round = 0; round < 4; ++round) {
    std::vector<kern::PagePayload> from_worker =
        // NLC_LINT_OK(concurrency-owner): cross-thread arena free, on purpose
        std::async(std::launch::async, [] {
          std::vector<kern::PagePayload> out;
          for (int i = 0; i < 128; ++i) {
            out.push_back(util::arena_make_shared<kern::PageBytes>(
                kPageSize, static_cast<std::byte>(i)));
          }
          return out;
        }).get();
    for (int i = 0; i < 128; ++i) {
      ASSERT_EQ((*from_worker[static_cast<std::size_t>(i)])[kPageSize - 1],
                static_cast<std::byte>(i));
    }
    std::vector<kern::PagePayload> local;
    for (int i = 0; i < 128; ++i) {
      local.push_back(
          util::arena_make_shared<kern::PageBytes>(kPageSize, std::byte{7}));
    }
    // NLC_LINT_OK(concurrency-owner): cross-thread arena free, on purpose
    std::async(std::launch::async, [&from_worker, &local] {
      from_worker.clear();  // free worker-allocated blocks here
      local.clear();        // free main-allocated blocks here
    }).get();
  }
  SUCCEED();
}

TEST(ArenaTest, SlabSizeEnvIsClampedAndCached) {
  // The env var is read once at first use; by now the arena has allocated,
  // so this just checks the resolved value is inside the documented range.
  const std::size_t bytes = util::env_arena_slab_bytes();
  EXPECT_GE(bytes, 64u * 1024u);
  EXPECT_LE(bytes, 16u * 1024u * 1024u);
}

}  // namespace
}  // namespace nlc
