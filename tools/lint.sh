#!/bin/sh
# Repository lint: enforces the invariant-checking and ownership conventions
# that the sanitizer/audit pipeline relies on.
#
#   * no raw assert()/cassert — invariants must throw nlc::InvariantError
#     via NLC_CHECK/NLC_CHECK_MSG so they fire in every build type and are
#     catchable by the audit drivers and negative tests;
#   * no naked new/delete — ownership goes through smart pointers, so ASan
#     leak reports stay actionable.
#
# Exits non-zero with the offending lines on a violation. Run directly or
# via the `lint` CMake target (which also runs clang-tidy when available).
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo" || exit 2

status=0

# grep -n over the C++ sources; $1 = pattern, $2 = description, $3 = filter
# regex removing allowed matches (applied with grep -v).
scan() {
    pattern=$1; what=$2; allow=$3
    hits=$(find src tests tools bench examples -name '*.hpp' -o -name '*.cpp' \
        | sort | xargs grep -nE "$pattern" 2>/dev/null \
        | grep -vE "$allow")
    if [ -n "$hits" ]; then
        echo "lint: $what:" >&2
        echo "$hits" >&2
        status=1
    fi
}

# Raw assert: matches assert( not preceded by an identifier character
# (excludes static_assert and NLC_CHECK's own definition site).
scan '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
    'raw assert() — use NLC_CHECK/NLC_CHECK_MSG (util/assert.hpp)' \
    'static_assert|//.*assert'

scan '#[[:space:]]*include[[:space:]]*<cassert>|#[[:space:]]*include[[:space:]]*<assert\.h>' \
    '<cassert> include — use util/assert.hpp' \
    '^$'

# Naked new: `new Type` outside a smart-pointer factory. Placement new and
# comments mentioning "new" are allowed.
scan '(^|[^_[:alnum:]])new[[:space:]]+[[:alnum:]_:]+' \
    'naked new — use std::make_unique/std::make_shared' \
    '//|make_unique|make_shared'

scan '(^|[^_[:alnum:]])delete[[:space:]]+[[:alnum:]_]' \
    'naked delete — owning raw pointers are banned' \
    '//|= delete|delete\]'

# Raw thread spawning: all fan-out goes through util::WorkerPool (or the
# TrialRunner on top of it) so the nested-pool policy and the
# deterministic-merge contract cannot be bypassed. hardware_concurrency
# queries and the pool implementation itself are allowed; tests may use
# std::async to exercise pool concurrency.
scan 'std::thread|std::jthread' \
    'raw std::thread — use util::WorkerPool (src/util/worker_pool.hpp)' \
    '//|worker_pool|hardware_concurrency'

# Per-page heap traffic: payload buffers and radix-store nodes allocate
# from the slab arena (DESIGN.md §12) — util::arena_make_shared for
# refcounted payloads, ArenaAllocator-backed containers for nodes. A plain
# make_shared/make_unique of these types reintroduces one general-purpose
# heap hit per page on the epoch hot path.
scan '(^|[^_[:alnum:]])(make_shared|make_unique)<[[:space:]]*(kern::)?(PageBytes|Node)[>[:space:]]' \
    'raw payload/node heap allocation — use util::arena_make_shared (src/util/arena.hpp)' \
    '//|^src/util/arena\.hpp'

# Raw wall-clock reads: all wall time flows through util::wall_now_ns() so
# flight-recorder stamps and ShardStageNanos share one clock domain
# (src/util/time.hpp is the single allowed steady_clock site).
scan 'steady_clock' \
    'raw steady_clock — use util::wall_now_ns() (src/util/time.hpp)' \
    '^src/util/|//'

if [ "$status" -eq 0 ]; then
    echo "lint: OK"
fi
exit "$status"
