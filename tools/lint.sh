#!/bin/sh
# Thin wrapper over the nlc_lint static analyzer (tools/nlc_lint,
# DESIGN.md §13), which replaced the grep-based conventions check.
# Prefers an already-built binary from a build tree; otherwise compiles the
# analyzer directly (it is three small files with no dependencies).
#
# Usage: tools/lint.sh [nlc_lint args...]   (default: whole-tree scan)
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

bin=""
for d in build build-asan build-tsan; do
    if [ -x "$repo/$d/tools/nlc_lint/nlc_lint" ]; then
        bin="$repo/$d/tools/nlc_lint/nlc_lint"
        break
    fi
done

src="$repo/tools/nlc_lint"
if [ -n "$bin" ]; then
    # Rebuild if any analyzer source is newer than the cached binary.
    for f in "$src"/*.cpp "$src"/*.hpp; do
        if [ "$f" -nt "$bin" ]; then bin=""; break; fi
    done
fi

if [ -z "$bin" ]; then
    bin="${TMPDIR:-/tmp}/nlc_lint.$$"
    trap 'rm -f "$bin"' EXIT
    ${CXX:-c++} -std=c++20 -O1 -o "$bin" \
        "$src/lexer.cpp" "$src/rules.cpp" "$src/main.cpp" || exit 2
fi

exec "$bin" --root "$repo" "$@"
