// nlc_run — command-line driver for single experiments.
//
//   nlc_run --workload redis --mode nilicon --seconds 8 --seed 3
//   nlc_run --workload streamcluster --mode mc --batch-seconds 4
//   nlc_run --workload netecho --mode nilicon --fault --kv
//   nlc_run --list
//
// Prints one experiment's results as both a human summary and a single
// JSON line (machine-scrapable for scripting sweeps).
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "harness/experiment.hpp"
#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "util/assert.hpp"

namespace {

using namespace nlc;

std::optional<apps::AppSpec> find_spec(const std::string& name) {
  if (name == "netecho") return apps::netecho_spec();
  for (const auto& s : apps::paper_benchmarks()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

void usage() {
  std::printf(
      "usage: nlc_run [options]\n"
      "  --workload NAME    swaptions|streamcluster|redis|ssdb|node|\n"
      "                     lighttpd|djcms|netecho (default: netecho)\n"
      "  --mode MODE        stock|nilicon|mc (default: nilicon)\n"
      "  --seconds N        measurement window for servers (default 6)\n"
      "  --batch-seconds N  per-thread CPU quota for batch apps (default 3)\n"
      "  --epoch-ms N       NiLiCon epoch length (default 30)\n"
      "  --epoch-policy P   fixed|adaptive (default fixed; adaptive =\n"
      "                     trace-driven epoch-length controller,\n"
      "                     DESIGN.md §15)\n"
      "  --commit M         output-commit scheme: epoch|replay (default\n"
      "                     epoch; replay = HyCoR-style event-log release,\n"
      "                     DESIGN.md §14)\n"
      "  --opt-level N      Table I cumulative optimization row 0..7\n"
      "                     (7 = all + delta-compressed dirty pages)\n"
      "  --clients N        override client connections\n"
      "  --pipeline N       override per-connection request pipeline\n"
      "  --seed N           RNG seed (default 1)\n"
      "  --replicas N       backup replica count (default 1; N>1 enables\n"
      "                     quorum output commit, DESIGN.md §16)\n"
      "  --quorum K         replica acks required to release output\n"
      "                     (default 0 = majority of N)\n"
      "  --topology T       replication wiring: star|chain (default star)\n"
      "  --fault            inject a fail-stop fault mid-run\n"
      "  --fault-kind F     what fails: primary|backup|rack|double\n"
      "                     (default primary; others need --replicas > 1)\n"
      "  --audit L          attach the invariant auditor: off|commit|\n"
      "                     continuous (default off; violations exit 1)\n"
      "  --kv               validating KV payloads\n"
      "  --diskstress       run the disk/memory consistency microbenchmark\n"
      "  --trace FILE       record a flight-recorder trace and write it as\n"
      "                     Chrome trace-event JSON (open in Perfetto:\n"
      "                     ui.perfetto.dev); also prints the per-epoch\n"
      "                     critical-path table (--trace=FILE works too)\n"
      "  --list             list workloads and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  harness::RunConfig cfg;
  cfg.spec = apps::netecho_spec();
  cfg.measure = nlc::seconds(6);
  cfg.batch_work = nlc::seconds(3);
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      auto spec = find_spec(next());
      if (!spec) {
        std::fprintf(stderr, "unknown workload\n");
        return 2;
      }
      cfg.spec = *spec;
    } else if (arg == "--mode") {
      std::string m = next();
      if (m == "stock") cfg.mode = harness::Mode::kStock;
      else if (m == "nilicon") cfg.mode = harness::Mode::kNiLiCon;
      else if (m == "mc") cfg.mode = harness::Mode::kMc;
      else {
        std::fprintf(stderr, "unknown mode\n");
        return 2;
      }
    } else if (arg == "--seconds") {
      cfg.measure = nlc::seconds(std::atoi(next()));
    } else if (arg == "--batch-seconds") {
      cfg.batch_work = nlc::seconds(std::atoi(next()));
    } else if (arg == "--epoch-ms") {
      cfg.nilicon.epoch_length = nlc::milliseconds(std::atoi(next()));
    } else if (arg == "--epoch-policy") {
      std::string p = next();
      if (p == "fixed") cfg.nilicon.epoch_policy = core::EpochPolicy::kFixed;
      else if (p == "adaptive")
        cfg.nilicon.epoch_policy = core::EpochPolicy::kAdaptive;
      else {
        std::fprintf(stderr, "unknown epoch policy\n");
        return 2;
      }
    } else if (arg == "--commit") {
      std::string m = next();
      if (m == "epoch") cfg.nilicon.commit_mode = core::CommitMode::kEpoch;
      else if (m == "replay")
        cfg.nilicon.commit_mode = core::CommitMode::kReplay;
      else {
        std::fprintf(stderr, "unknown commit mode\n");
        return 2;
      }
    } else if (arg == "--opt-level") {
      cfg.nilicon = core::Options::table1_row(std::atoi(next()));
    } else if (arg == "--clients") {
      cfg.client_connections = std::atoi(next());
    } else if (arg == "--pipeline") {
      cfg.client_pipeline = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--replicas") {
      cfg.nilicon.replicas = std::atoi(next());
    } else if (arg == "--quorum") {
      cfg.nilicon.quorum_k = std::atoi(next());
    } else if (arg == "--topology") {
      if (!topo::parse_topology(next(), &cfg.nilicon.topology)) {
        std::fprintf(stderr, "unknown topology\n");
        return 2;
      }
    } else if (arg == "--fault") {
      cfg.inject_fault = true;
    } else if (arg == "--fault-kind") {
      std::string f = next();
      if (f == "primary") cfg.fault_kind = harness::FaultKind::kPrimary;
      else if (f == "backup") cfg.fault_kind = harness::FaultKind::kBackup;
      else if (f == "rack") cfg.fault_kind = harness::FaultKind::kRack;
      else if (f == "double") cfg.fault_kind = harness::FaultKind::kDouble;
      else {
        std::fprintf(stderr, "unknown fault kind\n");
        return 2;
      }
    } else if (arg == "--audit") {
      std::string l = next();
      if (l == "off") cfg.nilicon.audit_level = core::AuditLevel::kOff;
      else if (l == "commit")
        cfg.nilicon.audit_level = core::AuditLevel::kCommitPoints;
      else if (l == "continuous")
        cfg.nilicon.audit_level = core::AuditLevel::kContinuous;
      else {
        std::fprintf(stderr, "unknown audit level\n");
        return 2;
      }
    } else if (arg == "--trace") {
      trace_path = next();
      cfg.nilicon.trace_level = core::TraceLevel::kFull;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
      cfg.nilicon.trace_level = core::TraceLevel::kFull;
    } else if (arg == "--kv") {
      cfg.kv_validation = true;
    } else if (arg == "--diskstress") {
      cfg.with_diskstress = true;
    } else if (arg == "--list") {
      std::printf("netecho\n");
      for (const auto& s : apps::paper_benchmarks()) {
        std::printf("%s\n", s.name.c_str());
      }
      return 0;
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (cfg.kv_validation && cfg.spec.kv_pages == 0) {
    cfg.spec.kv_pages = 512;  // give non-KV workloads a store to validate
  }
  harness::RunResult r;
  try {
    r = harness::run_experiment(cfg);
  } catch (const InvariantError& e) {
    std::fprintf(stderr, "AUDIT VIOLATION: %s\n", e.what());
    return 1;
  }

  std::printf("workload=%s mode=%s seed=%llu\n", cfg.spec.name.c_str(),
              harness::mode_name(cfg.mode),
              static_cast<unsigned long long>(cfg.seed));
  if (cfg.spec.interactive) {
    std::printf("throughput: %.1f req/s, mean latency %.2fms, "
                "%llu requests\n",
                r.throughput_rps, r.mean_latency_ms,
                static_cast<unsigned long long>(r.requests_completed));
  } else {
    std::printf("batch runtime: %.3fs (ideal %.3fs, overhead %.1f%%)\n",
                to_seconds(r.batch_runtime), to_seconds(r.batch_ideal),
                (static_cast<double>(r.batch_runtime) /
                     static_cast<double>(r.batch_ideal) -
                 1.0) * 100.0);
  }
  if (cfg.mode != harness::Mode::kStock) {
    std::printf("epochs: %llu, stop %.2fms, state %.0f bytes, "
                "dirty pages %.0f, backup %.2f cores\n",
                static_cast<unsigned long long>(r.metrics.epochs_completed),
                r.metrics.stop_time_ms.empty()
                    ? 0.0 : r.metrics.stop_time_ms.mean(),
                r.metrics.state_bytes.empty()
                    ? 0.0 : r.metrics.state_bytes.mean(),
                r.metrics.dirty_pages.empty()
                    ? 0.0 : r.metrics.dirty_pages.mean(),
                r.backup_cores);
    if (cfg.nilicon.epoch_policy == core::EpochPolicy::kAdaptive &&
        cfg.mode == harness::Mode::kNiLiCon) {
      // Chosen-lengths histogram: lengths are quantized (1 ms epoch-mode,
      // 10 ms replay-mode), so distinct values are few — print each with
      // its epoch count.
      std::map<long long, std::uint64_t> hist;
      for (double v : r.metrics.epoch_len_ms.values()) {
        ++hist[static_cast<long long>(v + 0.5)];
      }
      std::string h;
      for (const auto& [ms, n] : hist) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s%lldms:%llu", h.empty() ? "" : " ",
                      ms, static_cast<unsigned long long>(n));
        h += buf;
      }
      std::printf("epoch controller: final %.0fms, converged@epoch %llu, "
                  "+%llu/-%llu steps, lengths {%s}\n",
                  to_millis(r.metrics.ctl_final_epoch_len),
                  static_cast<unsigned long long>(
                      r.metrics.ctl_last_change_epoch),
                  static_cast<unsigned long long>(r.metrics.ctl_grow_steps),
                  static_cast<unsigned long long>(r.metrics.ctl_shrink_steps),
                  h.c_str());
    }
    if (cfg.mode == harness::Mode::kNiLiCon && cfg.nilicon.replicas > 1) {
      std::string lags;
      for (std::size_t i = 0; i < r.metrics.replica_ack_lag.size(); ++i) {
        const auto& s = r.metrics.replica_ack_lag[i];
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s%zu:%.2f", lags.empty() ? "" : " ",
                      i, s.empty() ? 0.0 : s.mean());
        lags += buf;
      }
      std::printf("replication: N=%d K=%d topology=%s, quorum wait "
                  "%.3f/%.3fms (mean/p99), ack lag {%s} epochs, "
                  "fan-out %llu wire bytes\n",
                  cfg.nilicon.replicas, cfg.nilicon.resolved_quorum(),
                  topo::topology_name(cfg.nilicon.topology),
                  r.metrics.quorum_wait_ms.empty()
                      ? 0.0 : r.metrics.quorum_wait_ms.mean(),
                  r.metrics.quorum_wait_ms.empty()
                      ? 0.0 : r.metrics.quorum_wait_ms.percentile(99),
                  lags.c_str(),
                  static_cast<unsigned long long>(
                      r.metrics.wire_bytes_fanout));
    }
    if (cfg.nilicon.commit_mode == core::CommitMode::kReplay) {
      std::printf("event log: %llu entries in %llu segments, %llu bytes, "
                  "release latency %.3fms (epoch commit %.2fms)\n",
                  static_cast<unsigned long long>(
                      r.metrics.log_entries_recorded),
                  static_cast<unsigned long long>(
                      r.metrics.log_segments_shipped),
                  static_cast<unsigned long long>(r.metrics.log_bytes_shipped),
                  r.metrics.log_commit_latency_ms.empty()
                      ? 0.0 : r.metrics.log_commit_latency_ms.mean(),
                  r.metrics.commit_latency_ms.empty()
                      ? 0.0 : r.metrics.commit_latency_ms.mean());
      std::printf("log retention: peak %llu bytes, %llu segments pruned\n",
                  static_cast<unsigned long long>(
                      r.metrics.log_retained_bytes_peak),
                  static_cast<unsigned long long>(
                      r.metrics.log_pruned_segments));
    }
  }
  if (cfg.inject_fault) {
    std::printf("fault: kind=%s recovered=%s interruption=%.0fms "
                "kv_errors=%llu broken=%llu disk_errors=%llu\n",
                harness::fault_kind_name(cfg.fault_kind),
                r.recovered ? "yes" : "NO", to_millis(r.interruption),
                static_cast<unsigned long long>(r.kv_errors),
                static_cast<unsigned long long>(r.broken_connections),
                static_cast<unsigned long long>(
                    r.diskstress_errors +
                    r.diskstress_post_failover_mismatches));
    if (r.recovered && cfg.nilicon.replicas > 1) {
      std::printf("failover: promoted replica %d, re-silvered %llu "
                  "survivors (%llu bytes, %.1fms)\n",
                  r.recovery.promoted_replica,
                  static_cast<unsigned long long>(
                      r.recovery.replicas_resilvered),
                  static_cast<unsigned long long>(r.recovery.resilver_bytes),
                  to_millis(r.recovery.resilver_time));
    }
  }

  if (r.audited) {
    std::printf("audit: %llu invariant checks, 0 violations\n",
                static_cast<unsigned long long>(r.audit.total()));
  }

  if (!trace_path.empty()) {
    if (r.trace == nullptr) {
      std::fprintf(stderr,
                   "--trace requires --mode nilicon (no trace recorded)\n");
      return 2;
    }
    if (!trace::write_chrome_trace(trace_path, *r.trace)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 2;
    }
    std::vector<trace::Event> events = r.trace->drain();
    std::printf("trace: %zu events (%llu dropped) -> %s\n", events.size(),
                static_cast<unsigned long long>(r.trace->dropped()),
                trace_path.c_str());
    std::printf("%s", trace::CriticalPath(events).table().c_str());
  }

  // Machine-readable line.
  std::printf(
      "JSON {\"workload\":\"%s\",\"mode\":\"%s\",\"seed\":%llu,"
      "\"throughput_rps\":%.3f,\"mean_latency_ms\":%.3f,"
      "\"batch_runtime_s\":%.6f,\"epochs\":%llu,\"stop_ms\":%.3f,"
      "\"dirty_pages\":%.1f,\"recovered\":%s,\"kv_errors\":%llu,"
      "\"broken_connections\":%llu}\n",
      cfg.spec.name.c_str(), harness::mode_name(cfg.mode),
      static_cast<unsigned long long>(cfg.seed), r.throughput_rps,
      r.mean_latency_ms, to_seconds(r.batch_runtime),
      static_cast<unsigned long long>(r.metrics.epochs_completed),
      r.metrics.stop_time_ms.empty() ? 0.0 : r.metrics.stop_time_ms.mean(),
      r.metrics.dirty_pages.empty() ? 0.0 : r.metrics.dirty_pages.mean(),
      r.recovered ? "true" : "false",
      static_cast<unsigned long long>(r.kv_errors),
      static_cast<unsigned long long>(r.broken_connections));
  // A backup crash must NOT fail over (the primary is healthy; the quorum
  // absorbs the loss); every other fault kind must.
  bool failover_ok = cfg.fault_kind == harness::FaultKind::kBackup
                         ? !r.recovered
                         : r.recovered;
  bool ok = !cfg.inject_fault ||
            (failover_ok && r.kv_errors == 0 && r.broken_connections == 0);
  return ok ? 0 : 1;
}
