// nlc_audit — deterministic seed-sweep driver for the invariant auditor.
//
//   nlc_audit                          # 20 seeds, continuous, crash injection
//   nlc_audit --seeds 40 --base-seed 7
//   nlc_audit --level commit --no-fault
//
// Each seed runs one app from the catalog (rotating through it) under full
// NiLiCon protection with the invariant auditor attached, a fail-stop crash
// injected at a seed-randomized epoch, and the delta codec exercised on odd
// seeds. Every third seed additionally runs N=3/K=2 quorum replication
// with a rotating fault scenario (primary over a chain; backup-crash,
// correlated rack failure and double failure over a star). A run passes when the experiment completes without the auditor
// throwing InvariantError and the failover recovered; the sweep exits
// non-zero on the first violation, printing the offending seed so the run
// can be replayed under a debugger:
//
//   nlc_audit --seeds 1 --base-seed <seed>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "util/assert.hpp"

namespace {

using namespace nlc;

void usage() {
  std::printf(
      "usage: nlc_audit [options]\n"
      "  --seeds N        number of seeds to sweep (default 20)\n"
      "  --base-seed N    first seed (default 1)\n"
      "  --level L        commit|continuous audit level (default continuous)\n"
      "  --measure-ms N   measurement window per run (default 1200)\n"
      "  --no-fault       skip crash injection (protocol-only audit)\n");
}

/// N-way sweep policy (DESIGN.md §16): every third seed runs N=3/K=2 with
/// a rotating fault scenario — primary crash through the chain topology,
/// then (star) a single backup crash the quorum must absorb, a correlated
/// rack failure, and a backup-then-primary double failure. Chain is kept
/// to the primary-crash kind on purpose: killing a mid-chain replica
/// starves everything downstream of it, so a crashed-backup scenario on a
/// chain would (correctly) stall the quorum instead of testing release.
struct QuorumPolicy {
  bool on = false;
  harness::FaultKind kind = harness::FaultKind::kPrimary;
  topo::Topology topology = topo::Topology::kStar;
};

QuorumPolicy quorum_policy(std::uint64_t s) {
  QuorumPolicy p;
  if (s % 3 != 2) return p;
  p.on = true;
  switch ((s / 3) % 4) {
    case 0:
      p.kind = harness::FaultKind::kPrimary;
      p.topology = topo::Topology::kChain;
      break;
    case 1: p.kind = harness::FaultKind::kBackup; break;
    case 2: p.kind = harness::FaultKind::kRack; break;
    case 3: p.kind = harness::FaultKind::kDouble; break;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 20;
  std::uint64_t base_seed = 1;
  core::AuditLevel level = core::AuditLevel::kContinuous;
  Time measure = nlc::milliseconds(1200);
  bool fault = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--base-seed") {
      base_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--level") {
      std::string l = next();
      if (l == "commit") level = core::AuditLevel::kCommitPoints;
      else if (l == "continuous") level = core::AuditLevel::kContinuous;
      else {
        std::fprintf(stderr, "unknown audit level\n");
        return 2;
      }
    } else if (arg == "--measure-ms") {
      measure = nlc::milliseconds(std::atoi(next()));
    } else if (arg == "--no-fault") {
      fault = false;
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  std::vector<apps::AppSpec> catalog = apps::paper_benchmarks();
  catalog.push_back(apps::netecho_spec());

  check::AuditStats total;
  std::uint64_t runs_passed = 0;

  // One independent simulation per seed: the sweep is the repo's canonical
  // embarrassingly-parallel workload, so it runs on the TrialRunner
  // (NLC_JOBS workers, results in seed order). Exceptions are captured
  // per-trial so the report below is deterministic: the lowest failing
  // seed wins, exactly as in the serial sweep.
  struct SeedOutcome {
    harness::RunResult r;
    bool violation = false;
    bool error = false;
    std::string what;
  };
  harness::TrialRunner runner;
  std::vector<SeedOutcome> outcomes = runner.run(
      seeds, [&](harness::TrialContext& ctx) {
        std::uint64_t s = base_seed + ctx.index;
        const apps::AppSpec& spec = catalog[s % catalog.size()];
        harness::RunConfig cfg;
        cfg.spec = spec;
        cfg.mode = harness::Mode::kNiLiCon;
        // Alternate the delta codec so both wire paths get audited; row 6
        // is every CRIU optimization without compression, row 7 adds it.
        cfg.nilicon = core::Options::table1_row(s % 2 == 1 ? 7 : 6);
        // Alternate the output-commit mode on a longer period so every
        // (delta, commit-mode) combination appears in the sweep. Replay
        // seeds exercise the event-log chain, the release-on-log-ack path
        // and the failover replay audit.
        if (s % 4 >= 2) cfg.nilicon.commit_mode = core::CommitMode::kReplay;
        // ...and the epoch policy on the odd half of each commit-mode
        // period, so the auditors also watch epochs whose length is being
        // retuned mid-run (DESIGN.md §15): adaptation must never move a
        // commit point in a way any invariant can observe.
        if (s % 4 == 1 || s % 4 == 3) {
          cfg.nilicon.epoch_policy = core::EpochPolicy::kAdaptive;
        }
        cfg.nilicon.seed = s;
        cfg.nilicon.audit_level = level;
        // A third of the sweep runs N-way quorum replication so the
        // quorum mirrors, the promotion arbiter and the re-silver path
        // see the same seed/workload rotation as the two-node engine.
        QuorumPolicy qp = quorum_policy(s);
        if (qp.on) {
          cfg.nilicon.replicas = 3;
          cfg.nilicon.quorum_k = 2;
          cfg.nilicon.topology = qp.topology;
          cfg.fault_kind = qp.kind;
        }
        cfg.seed = s;
        cfg.measure = measure;
        cfg.warmup = nlc::milliseconds(300);
        cfg.batch_work = measure;
        cfg.inject_fault = fault;  // crash at a seed-randomized epoch
        if (spec.interactive) {
          // Real KV payloads give the interactive apps content pages, so
          // the COW-freeze, delta-replay and restore-equivalence checkers
          // see actual bytes instead of accounting-only pages.
          cfg.kv_validation = true;
          if (cfg.spec.kv_pages == 0) cfg.spec.kv_pages = 512;
        }

        SeedOutcome out;
        try {
          out.r = harness::run_experiment(cfg);
          ctx.sim_events = out.r.sim_events;
        } catch (const InvariantError& e) {
          out.violation = true;
          out.what = e.what();
        } catch (const std::exception& e) {
          out.error = true;
          out.what = e.what();
        }
        return out;
      });

  for (std::uint64_t s = base_seed; s < base_seed + seeds; ++s) {
    const apps::AppSpec& spec = catalog[s % catalog.size()];
    SeedOutcome& out = outcomes[s - base_seed];
    if (out.violation) {
      std::fprintf(stderr,
                   "VIOLATION seed=%llu workload=%s level=%s\n  %s\n",
                   static_cast<unsigned long long>(s), spec.name.c_str(),
                   level == core::AuditLevel::kContinuous ? "continuous"
                                                          : "commit",
                   out.what.c_str());
      return 1;
    }
    if (out.error) {
      std::fprintf(stderr, "ERROR seed=%llu workload=%s\n  %s\n",
                   static_cast<unsigned long long>(s), spec.name.c_str(),
                   out.what.c_str());
      return 1;
    }
    harness::RunResult& r = out.r;
    QuorumPolicy qp = quorum_policy(s);
    // Per-kind failover expectation: a lone backup crash must be absorbed
    // by the quorum without promoting anyone; every other kind kills the
    // primary and must recover.
    bool expect_failover =
        !(qp.on && qp.kind == harness::FaultKind::kBackup);
    if (fault && expect_failover && !r.recovered) {
      std::fprintf(stderr, "ERROR seed=%llu workload=%s: fault injected but "
                   "no failover happened\n",
                   static_cast<unsigned long long>(s), spec.name.c_str());
      return 1;
    }
    if (fault && !expect_failover && r.recovered) {
      std::fprintf(stderr, "ERROR seed=%llu workload=%s: backup crash must "
                   "not trigger a failover\n",
                   static_cast<unsigned long long>(s), spec.name.c_str());
      return 1;
    }
    if (fault && qp.on && r.kv_errors != 0) {
      std::fprintf(stderr, "ERROR seed=%llu workload=%s: %llu KV errors — "
                   "client-visible output loss under N=3/K=2\n",
                   static_cast<unsigned long long>(s), spec.name.c_str(),
                   static_cast<unsigned long long>(r.kv_errors));
      return 1;
    }
    NLC_CHECK(r.audited);
    char rep[96] = "";
    if (qp.on) {
      std::snprintf(rep, sizeof rep, " rep=N3K2/%s/%s quorum=%llu",
                    topo::topology_name(qp.topology),
                    harness::fault_kind_name(qp.kind),
                    static_cast<unsigned long long>(r.audit.quorum_checks));
    }
    std::printf(
        "seed=%llu workload=%-13s mode=%s/%-8s epochs=%-4llu occ=%llu "
        "epoch=%llu store=%llu delta=%llu cow=%llu restore=%llu "
        "replay=%llu sweeps=%llu%s%s\n",
        static_cast<unsigned long long>(s), spec.name.c_str(),
        s % 4 >= 2 ? "replay" : "epoch ",
        s % 2 == 1 ? "adaptive" : "fixed",
        static_cast<unsigned long long>(r.metrics.epochs_completed),
        static_cast<unsigned long long>(r.audit.output_commit_checks),
        static_cast<unsigned long long>(r.audit.epoch_commit_checks),
        static_cast<unsigned long long>(r.audit.store_equivalence_checks),
        static_cast<unsigned long long>(r.audit.delta_replay_checks),
        static_cast<unsigned long long>(r.audit.payload_verifications),
        static_cast<unsigned long long>(r.audit.restore_equivalence_checks),
        static_cast<unsigned long long>(r.audit.replay_equivalence_checks),
        static_cast<unsigned long long>(r.audit.sweeps), rep,
        fault ? (r.recovered ? " [failover ok]"
                             : (!expect_failover ? " [absorbed]" : ""))
              : "");
    std::fflush(stdout);
    total.output_commit_checks += r.audit.output_commit_checks;
    total.epoch_commit_checks += r.audit.epoch_commit_checks;
    total.payload_pins += r.audit.payload_pins;
    total.payload_verifications += r.audit.payload_verifications;
    total.store_equivalence_checks += r.audit.store_equivalence_checks;
    total.delta_replay_checks += r.audit.delta_replay_checks;
    total.restore_equivalence_checks += r.audit.restore_equivalence_checks;
    total.replay_equivalence_checks += r.audit.replay_equivalence_checks;
    total.quorum_checks += r.audit.quorum_checks;
    total.sweeps += r.audit.sweeps;
    ++runs_passed;
  }

  std::printf("[runner] %llu seeds on %d jobs: %.2fs wall "
              "(serial-equivalent %.2fs), %.2fM events/sec\n",
              static_cast<unsigned long long>(seeds), runner.jobs(),
              runner.batch_wall_seconds(), runner.total_trial_seconds(),
              runner.events_per_second() / 1e6);
  std::printf(
      "PASS %llu/%llu runs, %llu invariant checks "
      "(occ=%llu epoch=%llu store=%llu delta=%llu cow=%llu restore=%llu "
      "replay=%llu quorum=%llu), 0 violations\n",
      static_cast<unsigned long long>(runs_passed),
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(total.total()),
      static_cast<unsigned long long>(total.output_commit_checks),
      static_cast<unsigned long long>(total.epoch_commit_checks),
      static_cast<unsigned long long>(total.store_equivalence_checks),
      static_cast<unsigned long long>(total.delta_replay_checks),
      static_cast<unsigned long long>(total.payload_verifications),
      static_cast<unsigned long long>(total.restore_equivalence_checks),
      static_cast<unsigned long long>(total.replay_equivalence_checks),
      static_cast<unsigned long long>(total.quorum_checks));
  return 0;
}
