#include "rules.hpp"

#include <algorithm>

namespace nlc::lint {

namespace {

using Toks = std::vector<Token>;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_punct(const Toks& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}
bool is_ident(const Toks& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == text;
}
bool is_any_ident(const Toks& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}
bool ident_in(const Toks& t, std::size_t i, const std::set<std::string>& s) {
  return i < t.size() && t[i].kind == TokKind::kIdent &&
         s.count(t[i].text) > 0;
}

/// Index just past the token matching the opener at `open`, or npos.
std::size_t match_forward(const Toks& t, std::size_t open, const char* o,
                          const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t, i, o)) ++depth;
    if (is_punct(t, i, c) && --depth == 0) return i;
  }
  return npos;
}

/// Matches a template argument list starting at the '<' at `open`.
/// Statement terminators abort the match: a lone '<' is usually a
/// comparison, and runaway scans would attribute declarations wildly.
std::size_t match_angle(const Toks& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t, i, "<")) ++depth;
    if (is_punct(t, i, ">") && --depth == 0) return i;
    if (is_punct(t, i, ";") || is_punct(t, i, "{")) return npos;
  }
  return npos;
}

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
const std::set<std::string> kOrderedContainers = {
    "vector", "deque",    "list",     "forward_list", "array",
    "span",   "map",      "set",      "multimap",     "multiset",
    "string", "basic_string", "flat_map", "flat_set"};
const std::set<std::string> kKeyedContainers = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kConcurrencyPrims = {
    "mutex",         "recursive_mutex", "shared_mutex",
    "timed_mutex",   "recursive_timed_mutex",
    "condition_variable", "condition_variable_any",
    "atomic",        "atomic_flag",     "atomic_ref",
    "counting_semaphore", "binary_semaphore",
    "latch",         "barrier",         "future",
    "shared_future", "promise",         "async",
    "packaged_task"};
const std::set<std::string> kRandomEngines = {
    "mt19937",      "mt19937_64",  "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
const std::set<std::string> kDetachedQueueApis = {"call_at", "call_after",
                                                  "set_audit_probe"};
// Callees an order-independent accumulation loop body may invoke.
const std::set<std::string> kPureCallees = {"size", "count",  "empty",
                                            "min",  "max",    "length"};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// Per-file declaration facts; the same scanner feeds the global table
/// (ambiguity resolution) and each file's local table (which wins).
struct LocalDecls {
  std::set<std::string> unordered;
  std::set<std::string> ordered;
  std::set<std::string> ptr_vectors;
};

/// Is the first template argument of the list opening at `open` ('<') a
/// raw pointer type? (Last token of the argument is '*'.)
bool first_template_arg_is_pointer(const Toks& t, std::size_t open) {
  int depth = 0;
  std::size_t last = npos;
  for (std::size_t i = open + 1; i < t.size(); ++i) {
    if (is_punct(t, i, "<")) ++depth;
    if (is_punct(t, i, ">")) {
      if (depth == 0) break;
      --depth;
    }
    if (depth == 0 && is_punct(t, i, ",")) break;
    if (depth == 0 && (is_punct(t, i, ";") || is_punct(t, i, "{"))) {
      return false;
    }
    last = i;
  }
  return last != npos && is_punct(t, last, "*");
}

/// Scans declarations: `container<...> [&] name <delim>` plus alias-typed
/// `Alias [&] name <delim>`. Returns the declared name, or empty.
std::string decl_name_after(const Toks& t, std::size_t j) {
  if (is_punct(t, j, "&")) ++j;
  if (!is_any_ident(t, j)) return "";
  static const std::set<std::string> kDelims = {";", "=", "{", "(", ",", ")"};
  if (j + 1 < t.size() && t[j + 1].kind == TokKind::kPunct &&
      kDelims.count(t[j + 1].text) > 0) {
    return t[j].text;
  }
  return "";
}

void scan_decls(const Toks& t, const std::set<std::string>& aliases,
                LocalDecls& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool unordered = kUnorderedContainers.count(t[i].text) > 0;
    const bool ordered = kOrderedContainers.count(t[i].text) > 0;
    if ((unordered || ordered) && is_punct(t, i + 1, "<")) {
      std::size_t close = match_angle(t, i + 1);
      if (close == npos) continue;
      std::string name = decl_name_after(t, close + 1);
      if (!name.empty()) {
        (unordered ? out.unordered : out.ordered).insert(name);
        if (t[i].text == "vector" &&
            first_template_arg_is_pointer(t, i + 1)) {
          out.ptr_vectors.insert(name);
        }
      }
      continue;
    }
    // Alias-typed declaration (skip the `using Alias = ...` line itself).
    if (aliases.count(t[i].text) > 0 && !(i > 0 && is_ident(t, i - 1, "using")) &&
        !(i > 0 && is_punct(t, i - 1, "::"))) {
      std::string name = decl_name_after(t, i + 1);
      if (!name.empty()) out.unordered.insert(name);
    }
  }
}

void scan_aliases(const Toks& t, std::set<std::string>& aliases) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t, i, "using") || !is_any_ident(t, i + 1) ||
        !is_punct(t, i + 2, "=")) {
      continue;
    }
    for (std::size_t j = i + 3; j < t.size() && !is_punct(t, j, ";"); ++j) {
      if (ident_in(t, j, kUnorderedContainers)) {
        aliases.insert(t[i + 1].text);
        break;
      }
    }
  }
}

struct RuleCtx {
  const AnalyzedFile& f;
  const SymbolTable& sym;
  LocalDecls local;
  std::vector<Finding>* out;

  void add(const std::string& rule, int line, std::string msg) {
    out->push_back(Finding{rule, f.path, line, std::move(msg)});
  }

  /// Name-based unordered resolution: the declaring file wins; otherwise a
  /// project-wide unambiguous unordered declaration counts.
  bool is_unordered(const std::string& name) const {
    if (local.unordered.count(name) > 0) return true;
    if (local.ordered.count(name) > 0) return false;
    return sym.unordered_names.count(name) > 0 &&
           sym.ordered_names.count(name) == 0;
  }
  bool is_ptr_vector(const std::string& name) const {
    return local.ptr_vectors.count(name) > 0 ||
           sym.ptr_vector_names.count(name) > 0;
  }
};

// ---------------------------------------------------------------------------
// Ported grep rules (far fewer false-positive escapes: strings, comments
// and preprocessor text are already stripped by the lexer).

void rule_no_assert(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "assert") || !is_punct(t, i + 1, "(")) continue;
    if (i > 0 && t[i - 1].kind == TokKind::kPunct &&
        (t[i - 1].text == "." || t[i - 1].text == "->")) {
      continue;  // member function named assert
    }
    c.add("no-assert", t[i].line,
          "raw assert() — use NLC_CHECK/NLC_CHECK_MSG (src/util/assert.hpp) "
          "so invariants fire in every build type and are catchable");
  }
  for (const Directive& d : c.f.lex.directives) {
    if (contains(d.text, "include") &&
        (contains(d.text, "<cassert>") || contains(d.text, "<assert.h>"))) {
      c.add("no-assert", d.line,
            "<cassert> include — use src/util/assert.hpp");
    }
  }
}

void rule_no_naked_new(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t, i, "new")) {
      if (is_punct(t, i + 1, "(")) continue;  // placement new
      c.add("no-naked-new", t[i].line,
            "naked new — ownership goes through "
            "std::make_unique/std::make_shared/util::arena_make_shared");
    } else if (is_ident(t, i, "delete")) {
      if (i > 0 && is_punct(t, i - 1, "=")) continue;  // deleted function
      if (i > 0 && is_ident(t, i - 1, "operator")) continue;
      c.add("no-naked-new", t[i].line,
            "naked delete — owning raw pointers are banned");
    }
  }
}

void rule_no_raw_thread(RuleCtx& c) {
  if (contains(c.f.path, "util/worker_pool")) return;
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i, "std") || !is_punct(t, i + 1, "::")) continue;
    if (!is_ident(t, i + 2, "thread") && !is_ident(t, i + 2, "jthread")) {
      continue;
    }
    if (is_punct(t, i + 3, "::") &&
        is_ident(t, i + 4, "hardware_concurrency")) {
      continue;  // capacity query, not a spawn
    }
    c.add("no-raw-thread", t[i + 2].line,
          "raw std::" + t[i + 2].text +
              " — all fan-out goes through util::WorkerPool "
              "(src/util/worker_pool.hpp) so the deterministic-merge "
              "contract cannot be bypassed");
  }
}

void rule_no_raw_clock(RuleCtx& c) {
  if (starts_with(c.f.path, "src/util/")) return;
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t, i, "steady_clock")) {
      c.add("no-raw-clock", t[i].line,
            "raw steady_clock — all wall time flows through "
            "util::wall_now_ns() (src/util/time.hpp), one clock domain");
    }
  }
}

void rule_arena_alloc(RuleCtx& c) {
  if (contains(c.f.path, "util/arena.")) return;
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "make_shared") && !is_ident(t, i, "make_unique")) {
      continue;
    }
    if (!is_punct(t, i + 1, "<")) continue;
    std::size_t j = i + 2;
    if (is_ident(t, j, "kern") && is_punct(t, j + 1, "::")) j += 2;
    if ((is_ident(t, j, "PageBytes") || is_ident(t, j, "Node")) &&
        is_punct(t, j + 1, ">")) {
      c.add("arena-alloc", t[i].line,
            "raw payload/node heap allocation — use "
            "util::arena_make_shared (src/util/arena.hpp); a general-purpose "
            "heap hit per page reopens the epoch hot-path cost (DESIGN.md "
            "§12)");
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism rules.

void rule_raw_rand(RuleCtx& c) {
  if (c.f.path.size() >= 12 &&
      c.f.path.compare(c.f.path.size() - 12, 12, "util/rng.hpp") == 0) {
    return;
  }
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if ((t[i].text == "rand" || t[i].text == "srand") &&
        is_punct(t, i + 1, "(")) {
      if (i > 0 && t[i - 1].kind == TokKind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->")) {
        continue;
      }
      c.add("raw-rand", t[i].line,
            "raw " + t[i].text +
                "() — all randomness derives from the seeded nlc::Rng seam "
                "(src/util/rng.hpp) so every trial is reproducible");
    } else if (t[i].text == "random_device") {
      c.add("raw-rand", t[i].line,
            "std::random_device — nondeterministic entropy; derive seeds "
            "via nlc::Rng::split (src/util/rng.hpp)");
    } else if (kRandomEngines.count(t[i].text) > 0) {
      c.add("raw-rand", t[i].line,
            "raw " + t[i].text +
                " engine — wrap in nlc::Rng (src/util/rng.hpp) so seed "
                "derivation stays centralized");
    }
  }
}

/// True if the loop body only accumulates order-independently: compound
/// additive/bitwise updates and calls to pure size-like accessors; no plain
/// assignment, indexing, container growth, early exit, or I/O.
bool body_is_order_independent(const Toks& t, std::size_t begin,
                               std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind == TokKind::kIdent) {
      if (is_punct(t, i + 1, "(") && kPureCallees.count(t[i].text) == 0) {
        return false;
      }
      if (t[i].text == "return" || t[i].text == "break" ||
          t[i].text == "co_return" || t[i].text == "co_await" ||
          t[i].text == "throw" || t[i].text == "goto") {
        return false;
      }
      continue;
    }
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "=" || t[i].text == "[") return false;
    if (t[i].text == "<" && is_punct(t, i + 1, "<")) return false;  // stream
  }
  return true;
}

/// Last identifier of a range expression after stripping trailing call
/// parens: `p->mm().page_states()` → page_states, `d.pages` → pages.
std::string range_expr_name(const Toks& t, std::size_t begin,
                            std::size_t end) {
  std::size_t e = end;  // one past last expr token
  while (e > begin && is_punct(t, e - 1, ")")) {
    int depth = 0;
    std::size_t i = e;
    while (i > begin) {
      --i;
      if (is_punct(t, i, ")")) ++depth;
      if (is_punct(t, i, "(") && --depth == 0) break;
    }
    if (depth != 0) return "";
    e = i;
  }
  if (e > begin && t[e - 1].kind == TokKind::kIdent) return t[e - 1].text;
  return "";
}

void rule_unordered_iter(RuleCtx& c) {
  if (c.f.is_test) return;  // test code may iterate however it likes
  const Toks& t = c.f.lex.tokens;

  // `auto x = ...unordered...;` propagation (e.g. moving a member into a
  // local before iterating it).
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i, "auto")) continue;
    std::size_t j = i + 1;
    if (is_punct(t, j, "&")) ++j;
    if (!is_any_ident(t, j) || !is_punct(t, j + 1, "=")) continue;
    for (std::size_t k = j + 2; k < t.size() && !is_punct(t, k, ";"); ++k) {
      if (t[k].kind == TokKind::kIdent && c.is_unordered(t[k].text)) {
        c.local.unordered.insert(t[j].text);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "for") || !is_punct(t, i + 1, "(")) continue;
    std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close == npos) continue;

    // Range-for: a ':' at paren depth 1.
    std::size_t colon = npos;
    int depth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(t, k, "(")) ++depth;
      if (is_punct(t, k, ")")) --depth;
      if (depth == 1 && k > i + 1 && is_punct(t, k, ":")) {
        colon = k;
        break;
      }
    }
    if (colon != npos) {
      std::string name = range_expr_name(t, colon + 1, close);
      if (name.empty() || !c.is_unordered(name)) continue;
      std::size_t body_begin, body_end;
      if (is_punct(t, close + 1, "{")) {
        body_end = match_forward(t, close + 1, "{", "}");
        body_begin = close + 2;
        if (body_end == npos) body_end = t.size();
      } else {
        body_begin = close + 1;
        body_end = body_begin;
        while (body_end < t.size() && !is_punct(t, body_end, ";")) ++body_end;
      }
      if (body_is_order_independent(t, body_begin, body_end)) continue;
      c.add("unordered-iter", t[i].line,
            "iteration over unordered container '" + name +
                "' with an order-dependent body — hash order is not "
                "deterministic across runs/platforms; iterate a sorted copy "
                "or an insertion-order index");
      continue;
    }

    // Iterator loop: `x.begin()` / `x->cbegin()` inside the header.
    for (std::size_t k = i + 1; k + 2 < close; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      if (!is_punct(t, k + 1, ".") && !is_punct(t, k + 1, "->")) continue;
      if ((is_ident(t, k + 2, "begin") || is_ident(t, k + 2, "cbegin")) &&
          is_punct(t, k + 3, "(") && c.is_unordered(t[k].text)) {
        c.add("unordered-iter", t[i].line,
              "iterator loop over unordered container '" + t[k].text +
                  "' — hash order is not deterministic; iterate a sorted "
                  "copy or an insertion-order index");
        break;
      }
    }
  }
}

void rule_ptr_key(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident_in(t, i, kKeyedContainers) || !is_punct(t, i + 1, "<")) {
      continue;
    }
    if (first_template_arg_is_pointer(t, i + 1)) {
      c.add("ptr-key", t[i].line,
            "pointer-keyed " + t[i].text +
                " — key order (and hash spread) follows allocation "
                "addresses, which differ across runs; key by a stable id or "
                "confine the map to identity lookups");
    }
  }
}

void rule_ptr_sort(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i, "std") || !is_punct(t, i + 1, "::") ||
        !is_ident(t, i + 2, "sort") || !is_punct(t, i + 3, "(")) {
      continue;
    }
    std::size_t close = match_forward(t, i + 3, "(", ")");
    if (close == npos) continue;
    // Split args at depth-0 commas.
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t start = i + 4;
    int depth = 0;
    for (std::size_t k = i + 4; k < close; ++k) {
      if (is_punct(t, k, "(") || is_punct(t, k, "[") || is_punct(t, k, "{")) {
        ++depth;
      }
      if (is_punct(t, k, ")") || is_punct(t, k, "]") || is_punct(t, k, "}")) {
        --depth;
      }
      if (depth == 0 && is_punct(t, k, ",")) {
        args.emplace_back(start, k);
        start = k + 1;
      }
    }
    args.emplace_back(start, close);
    if (args.size() != 2) continue;  // explicit comparator: judged elsewhere
    auto arg_base = [&](std::size_t b, std::size_t e,
                        const char* member) -> std::string {
      // Suffix must be `<base> . member ( )`.
      if (e - b < 5) return "";
      if (!is_punct(t, e - 1, ")") || !is_punct(t, e - 2, "(") ||
          !is_ident(t, e - 3, member) || !is_punct(t, e - 4, ".")) {
        return "";
      }
      return is_any_ident(t, e - 5) ? t[e - 5].text : "";
    };
    std::string b1 = arg_base(args[0].first, args[0].second, "begin");
    std::string b2 = arg_base(args[1].first, args[1].second, "end");
    if (!b1.empty() && b1 == b2 && c.is_ptr_vector(b1)) {
      c.add("ptr-sort", t[i + 2].line,
            "std::sort of raw pointers in '" + b1 +
                "' without a comparator — address order differs across "
                "runs; sort by a stable field instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Replay-determinism rule (DESIGN.md §14).

/// The deterministic replay engine (any `namespace ... replay { ... }`
/// region, e.g. nlc::core::replay) must be a pure function of the
/// committed event log: a wall-clock read or any non-logged randomness
/// source would diverge the backup's replayed state from the outputs the
/// primary already released. The adaptive epoch controller (`namespace
/// ... epochctl`, DESIGN.md §15) is held to the same standard for a
/// different reason: it feeds back into the epoch schedule, so any
/// non-simulated input would break byte determinism across every
/// NLC_SHARDS x NLC_JOBS configuration.
void rule_replay_wallclock(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "namespace")) continue;
    // `namespace replay {`, `namespace nlc::core::epochctl {`, ...: the
    // name path must end in a determinism-critical terminal right before
    // the opening brace.
    std::size_t j = i + 1;
    while (is_any_ident(t, j) && is_punct(t, j + 1, "::")) j += 2;
    const bool engine = is_ident(t, j, "replay");
    const bool ctl = is_ident(t, j, "epochctl");
    if ((!engine && !ctl) || !is_punct(t, j + 1, "{")) continue;
    const std::string region =
        engine ? "the replay engine" : "the epoch controller";
    std::size_t open = j + 1;
    std::size_t close = match_forward(t, open, "{", "}");
    if (close == npos) close = t.size();
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      const bool member = t[k - 1].kind == TokKind::kPunct &&
                          (t[k - 1].text == "." || t[k - 1].text == "->");
      if (is_ident(t, k, "wall_now_ns") && !member) {
        c.add("replay-wallclock", t[k].line,
              "wall_now_ns() inside " + region + " — " +
                  (engine ? "replayed state must be a pure function of the "
                            "committed event log (DESIGN.md §14); stamp "
                            "times into the log at record time"
                          : "epoch lengths must be a pure function of "
                            "simulated-time observables (DESIGN.md §15); "
                            "read the simulation clock instead"));
      } else if (is_ident(t, k, "Rng") && !member) {
        c.add("replay-wallclock", t[k].line,
              "Rng inside " + region + " — " +
                  (engine ? "fresh draws diverge replay from the primary; "
                            "replay the logged kRngDraw entries instead "
                            "(DESIGN.md §14)"
                          : "ambient randomness diverges the adapted epoch "
                            "schedule across shard/job configurations "
                            "(DESIGN.md §15)"));
      } else if (t[k].text == "random_device" ||
                 kRandomEngines.count(t[k].text) > 0) {
        c.add("replay-wallclock", t[k].line,
              t[k].text + " inside " + region +
                  " — non-logged entropy breaks " +
                  (engine ? "replay equivalence (DESIGN.md §14)"
                          : "byte determinism (DESIGN.md §15)"));
      } else if ((t[k].text == "rand" || t[k].text == "srand") &&
                 is_punct(t, k + 1, "(") && !member) {
        c.add("replay-wallclock", t[k].line,
              t[k].text + "() inside " + region +
                  " — non-logged entropy breaks " +
                  (engine ? "replay equivalence (DESIGN.md §14)"
                          : "byte determinism (DESIGN.md §15)"));
      }
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// Ownership/concurrency rules.

void rule_concurrency_owner(RuleCtx& c) {
  // Exempt ONLY the concurrency-owning modules. Everything else — the
  // simulation-deterministic core and explicitly src/topo (replication
  // plans and fault-domain placement must stay pure bookkeeping, see
  // DESIGN.md §16) — is in scope.
  if (starts_with(c.f.path, "src/util/") ||
      starts_with(c.f.path, "src/trace/") ||
      starts_with(c.f.path, "src/harness/")) {
    return;
  }
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t, i, "std") || !is_punct(t, i + 1, "::")) continue;
    if (!ident_in(t, i + 2, kConcurrencyPrims)) continue;
    c.add("concurrency-owner", t[i + 2].line,
          "std::" + t[i + 2].text +
              " outside the concurrency-owning modules (src/util, "
              "src/trace, src/harness) — fan-out goes through "
              "util::WorkerPool; new synchronization needs an owning seam");
  }
}

void rule_detached_this(RuleCtx& c) {
  const Toks& t = c.f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident_in(t, i, kDetachedQueueApis) || !is_punct(t, i + 1, "(")) {
      continue;
    }
    std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close == npos) continue;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (!is_punct(t, k, "[")) continue;
      std::size_t cap_close = match_forward(t, k, "[", "]");
      if (cap_close == npos || cap_close > close) break;
      bool captures_this = false;
      for (std::size_t m = k + 1; m < cap_close; ++m) {
        if (is_ident(t, m, "this")) captures_this = true;
      }
      bool default_capture =
          cap_close == k + 2 &&
          (is_punct(t, k + 1, "=") || is_punct(t, k + 1, "&"));
      if (captures_this ||
          (default_capture && !c.f.is_test && starts_with(c.f.path, "src/"))) {
        c.add("detached-this", t[k].line,
              "lambda capturing `this` (or everything) queued on " +
                  t[i].text +
                  " — the callback can outlive the object; hold the "
                  "TimerHandle and cancel it in the destructor, or capture "
                  "owning/weak state");
      }
      k = cap_close;
    }
  }
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "no-assert",      "no-naked-new", "no-raw-thread",     "no-raw-clock",
      "arena-alloc",    "raw-rand",     "unordered-iter",    "ptr-key",
      "ptr-sort",       "concurrency-owner", "detached-this",
      "replay-wallclock"};
  return kRules;
}

void collect_symbols(const AnalyzedFile& f, SymbolTable& sym) {
  scan_aliases(f.lex.tokens, sym.unordered_aliases);
  LocalDecls d;
  scan_decls(f.lex.tokens, sym.unordered_aliases, d);
  sym.unordered_names.insert(d.unordered.begin(), d.unordered.end());
  sym.ordered_names.insert(d.ordered.begin(), d.ordered.end());
  sym.ptr_vector_names.insert(d.ptr_vectors.begin(), d.ptr_vectors.end());
}

void run_rules(const AnalyzedFile& f, const SymbolTable& sym,
               std::vector<Finding>& out) {
  RuleCtx c{f, sym, {}, &out};
  scan_decls(f.lex.tokens, sym.unordered_aliases, c.local);
  rule_no_assert(c);
  rule_no_naked_new(c);
  rule_no_raw_thread(c);
  rule_no_raw_clock(c);
  rule_arena_alloc(c);
  rule_raw_rand(c);
  rule_unordered_iter(c);
  rule_ptr_key(c);
  rule_ptr_sort(c);
  rule_concurrency_owner(c);
  rule_detached_this(c);
  rule_replay_wallclock(c);
}

namespace {

/// Lines covered by `// NLC_LINT_OK(rule[, rule...]): reason` comments.
/// A suppression covers findings on its own line and the following line.
std::map<int, std::set<std::string>> suppressions_of(const LexedFile& lex) {
  std::map<int, std::set<std::string>> out;
  for (const Comment& cm : lex.comments) {
    std::size_t at = cm.text.find("NLC_LINT_OK(");
    if (at == std::string::npos) continue;
    std::size_t open = at + 11;  // index of '('
    std::size_t close = cm.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string rules = cm.text.substr(open + 1, close - open - 1);
    std::size_t pos = 0;
    while (pos <= rules.size()) {
      std::size_t comma = rules.find(',', pos);
      std::string one = rules.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      std::size_t b = one.find_first_not_of(" \t");
      std::size_t e = one.find_last_not_of(" \t");
      if (b != std::string::npos) {
        out[cm.line].insert(one.substr(b, e - b + 1));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return out;
}

}  // namespace

AnalysisResult analyze(const std::vector<AnalyzedFile>& files) {
  SymbolTable sym;
  // Two rounds: the second pass resolves declarations whose alias was
  // defined in a file processed later (or later in the same file).
  for (const AnalyzedFile& f : files) collect_symbols(f, sym);
  for (const AnalyzedFile& f : files) collect_symbols(f, sym);

  AnalysisResult res;
  for (const AnalyzedFile& f : files) {
    std::vector<Finding> raw;
    run_rules(f, sym, raw);
    auto sup = suppressions_of(f.lex);
    for (Finding& fd : raw) {
      auto covers = [&](int line) {
        auto it = sup.find(line);
        return it != sup.end() && it->second.count(fd.rule) > 0;
      };
      if (covers(fd.line) || covers(fd.line - 1)) {
        res.suppressed.push_back(std::move(fd));
      } else {
        res.findings.push_back(std::move(fd));
      }
    }
  }
  std::sort(res.findings.begin(), res.findings.end());
  std::sort(res.suppressed.begin(), res.suppressed.end());
  return res;
}

}  // namespace nlc::lint
