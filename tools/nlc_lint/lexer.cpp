#include "lexer.hpp"

#include <cctype>

namespace nlc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  int line() const { return line_; }
  std::size_t pos() const { return pos_; }
  std::string_view slice(std::size_t from, std::size_t to) const {
    return src_.substr(from, to - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// Consumes a quoted literal body after the opening quote, honouring escapes.
void skip_quoted(Cursor& c, char quote) {
  while (!c.done()) {
    char ch = c.take();
    if (ch == '\\' && !c.done()) {
      c.take();
      continue;
    }
    if (ch == quote || ch == '\n') return;  // newline: unterminated literal
  }
}

// Consumes R"delim( ... )delim" after the opening R" has been taken.
void skip_raw_string(Cursor& c) {
  std::string delim;
  while (!c.done() && c.peek() != '(') delim.push_back(c.take());
  if (c.done()) return;
  c.take();  // '('
  const std::string close = ")" + delim + "\"";
  std::string window;
  while (!c.done()) {
    window.push_back(c.take());
    if (window.size() > close.size()) window.erase(window.begin());
    if (window == close) return;
  }
}

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  Cursor c(src);
  while (!c.done()) {
    char ch = c.peek();
    int line = c.line();

    if (ch == '\n' || ch == ' ' || ch == '\t' || ch == '\r' || ch == '\f' ||
        ch == '\v') {
      c.take();
      continue;
    }

    // Preprocessor directive: '#' first non-whitespace on a line. The lexer
    // hands the whole (continuation-joined) line to the directive list; its
    // tokens never enter the main stream.
    if (ch == '#') {
      std::string text;
      while (!c.done()) {
        char d = c.take();
        if (d == '\\' && c.peek() == '\n') {
          c.take();
          text.push_back(' ');
          continue;
        }
        if (d == '\n') break;
        // A // comment terminates the directive's interesting part.
        if (d == '/' && c.peek() == '/') {
          while (!c.done() && c.peek() != '\n') c.take();
          break;
        }
        text.push_back(d);
      }
      out.directives.push_back(Directive{std::move(text), line});
      continue;
    }

    if (ch == '/' && c.peek(1) == '/') {
      c.take();
      c.take();
      std::string text;
      while (!c.done() && c.peek() != '\n') text.push_back(c.take());
      out.comments.push_back(Comment{std::move(text), line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.take();
      c.take();
      std::string text;
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          c.take();
          c.take();
          break;
        }
        text.push_back(c.take());
      }
      out.comments.push_back(Comment{std::move(text), line});
      continue;
    }

    if (ident_start(ch)) {
      std::size_t start = c.pos();
      while (!c.done() && ident_char(c.peek())) c.take();
      std::string word(c.slice(start, c.pos()));
      // String-literal prefixes: R"...", u8"...", L'...', etc.
      bool raw = !word.empty() && word.back() == 'R' &&
                 (word == "R" || word == "uR" || word == "UR" ||
                  word == "LR" || word == "u8R") &&
                 c.peek() == '"';
      if (raw) {
        c.take();  // '"'
        skip_raw_string(c);
        out.tokens.push_back(Token{TokKind::kString, "", line});
        continue;
      }
      if ((word == "u8" || word == "u" || word == "U" || word == "L") &&
          (c.peek() == '"' || c.peek() == '\'')) {
        char q = c.take();
        skip_quoted(c, q);
        out.tokens.push_back(Token{
            q == '"' ? TokKind::kString : TokKind::kChar, "", line});
        continue;
      }
      out.tokens.push_back(Token{TokKind::kIdent, std::move(word), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::size_t start = c.pos();
      c.take();
      while (!c.done()) {
        char d = c.peek();
        if (ident_char(d) || d == '.' || d == '\'') {
          c.take();
        } else if ((d == '+' || d == '-') && !c.done()) {
          char prev = src[c.pos() - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.take();
          } else {
            break;
          }
        } else {
          break;
        }
      }
      out.tokens.push_back(
          Token{TokKind::kNumber, std::string(c.slice(start, c.pos())), line});
      continue;
    }

    if (ch == '"') {
      c.take();
      std::size_t start = c.pos();
      skip_quoted(c, '"');
      std::size_t end = c.pos() > start ? c.pos() - 1 : start;
      out.tokens.push_back(
          Token{TokKind::kString, std::string(c.slice(start, end)), line});
      continue;
    }
    if (ch == '\'') {
      c.take();
      skip_quoted(c, '\'');
      out.tokens.push_back(Token{TokKind::kChar, "", line});
      continue;
    }

    // Punctuation. Fused pairs: qualified-name and member-access tokens
    // (:: ->), comparisons and compound assignments (so a bare `=` token
    // reliably means plain assignment), and ++/--/&&/||. << and >> stay
    // unfused so template argument scanning needs no >> special case.
    c.take();
    char next = c.peek();
    auto fuse = [&](const char* tok) {
      c.take();
      out.tokens.push_back(Token{TokKind::kPunct, tok, line});
    };
    switch (ch) {
      case ':':
        if (next == ':') { fuse("::"); continue; }
        break;
      case '-':
        if (next == '>') { fuse("->"); continue; }
        if (next == '-') { fuse("--"); continue; }
        if (next == '=') { fuse("-="); continue; }
        break;
      case '+':
        if (next == '+') { fuse("++"); continue; }
        if (next == '=') { fuse("+="); continue; }
        break;
      case '&':
        if (next == '&') { fuse("&&"); continue; }
        if (next == '=') { fuse("&="); continue; }
        break;
      case '|':
        if (next == '|') { fuse("||"); continue; }
        if (next == '=') { fuse("|="); continue; }
        break;
      case '=':
        if (next == '=') { fuse("=="); continue; }
        break;
      case '!':
        if (next == '=') { fuse("!="); continue; }
        break;
      case '<':
        if (next == '=') { fuse("<="); continue; }
        break;
      case '>':
        if (next == '=') { fuse(">="); continue; }
        break;
      case '*':
        if (next == '=') { fuse("*="); continue; }
        break;
      case '/':
        if (next == '=') { fuse("/="); continue; }
        break;
      case '%':
        if (next == '=') { fuse("%="); continue; }
        break;
      case '^':
        if (next == '=') { fuse("^="); continue; }
        break;
      default:
        break;
    }
    out.tokens.push_back(Token{TokKind::kPunct, std::string(1, ch), line});
  }
  return out;
}

}  // namespace nlc::lint
