// nlc_lint rule engine: determinism/ownership rules over lexed token
// streams (DESIGN.md §13).
//
// Analysis runs in two passes. Pass 1 walks every file and builds a
// project-wide symbol table of declaration facts the rules need: which
// names are declared as unordered containers (or aliases of them, or
// functions returning references to them), which are declared as ordered
// containers (for ambiguity resolution), and which are vectors of raw
// pointers. Pass 2 walks each file's token stream and applies the rule
// set; findings are filtered against `// NLC_LINT_OK(<rule>): <reason>`
// suppression comments on the same or the preceding line.
//
// Name resolution is deliberately name-based, not type-checked: a name is
// treated as unordered if this file declares it unordered, or if it is
// declared unordered somewhere in the project and nowhere declared as an
// ordered container (ambiguous names resolve only in their declaring
// file). This keeps the analyzer to one pass over tokens while catching
// the cross-file cases a grep cannot (e.g. iterating a function that
// returns an unordered map declared in another header).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace nlc::lint {

struct Finding {
  std::string rule;
  std::string file;  // path as given (repo-relative in tree scans)
  int line;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

/// Declaration facts shared across translation units.
struct SymbolTable {
  std::set<std::string> unordered_names;  // vars/members/functions
  std::set<std::string> unordered_aliases;
  std::set<std::string> ordered_names;  // names also seen with ordered types
  std::set<std::string> ptr_vector_names;
};

struct AnalyzedFile {
  std::string path;
  bool is_test = false;  // unordered-iter exempts test code
  LexedFile lex;
};

struct AnalysisResult {
  std::vector<Finding> findings;    // unsuppressed — these fail the build
  std::vector<Finding> suppressed;  // matched an NLC_LINT_OK comment
};

/// All rule IDs, for --list-rules and fixture coverage checks.
const std::vector<std::string>& all_rules();

/// Pass 1 over one file: merge its declaration facts into `sym`.
void collect_symbols(const AnalyzedFile& f, SymbolTable& sym);

/// Pass 2 over one file: append findings (pre-suppression) for every rule.
void run_rules(const AnalyzedFile& f, const SymbolTable& sym,
               std::vector<Finding>& out);

/// Full analysis: collect over all files, run rules, apply suppressions.
AnalysisResult analyze(const std::vector<AnalyzedFile>& files);

}  // namespace nlc::lint
