// nlc_lint lexer: a minimal, correct C++ tokenizer for static analysis.
//
// Unlike the grep-based lint it replaces, this lexer understands the three
// contexts that made regexes lie: comments (line and block), string/char
// literals (including raw strings and escape sequences), and preprocessor
// directives (including line continuations). Tokens carry 1-based line
// numbers so findings are clickable; comments and directives are captured
// out-of-band because the suppression scanner and the include rules need
// them, while the rule engine walks the clean token stream.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nlc::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords (C++ keywords are not special-cased)
  kNumber,  // numeric literal, including ' digit separators and suffixes
  kString,  // "...", R"(...)", L/u/U/u8 prefixed forms; text excludes quotes
  kChar,    // '...'
  kPunct,   // operators/punctuation; multi-char only for :: and ->
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

/// A // or /* */ comment, with the line its first character sits on.
struct Comment {
  std::string text;  // without the delimiters
  int line;
};

/// One preprocessor directive, joined across backslash continuations.
struct Directive {
  std::string text;  // full directive text starting at '#'
  int line;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
};

/// Tokenizes `src`. Never fails: unterminated constructs lex to the end of
/// the input (the rules only need a best-effort stream, not a diagnosis).
LexedFile lex(std::string_view src);

}  // namespace nlc::lint
