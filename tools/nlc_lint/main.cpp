// nlc_lint CLI: determinism/ownership static analysis over the repository
// (DESIGN.md §13). Replaces the grep lint with a real lexer + rule engine.
//
//   nlc_lint --root <repo> [dirs...]      tree scan (default dirs: src
//                                         tests bench tools examples)
//   nlc_lint [--assume-test] <files...>   lint explicit files (fixtures)
//   --json                                findings as JSON on stdout
//   --json-out <file>                     also write the JSON artifact
//   --list-rules                          print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 usage/io error. Suppress individual
// findings with `// NLC_LINT_OK(<rule>): <reason>` on the same or the
// preceding line.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using nlc::lint::AnalyzedFile;
using nlc::lint::Finding;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string to_json(const std::vector<Finding>& findings,
                    const std::vector<Finding>& suppressed) {
  std::ostringstream os;
  os << "{\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "    {\"rule\": \"" << f.rule << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"message\": \"" << json_escape(f.message) << "\"}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"suppressed\": [\n";
  for (std::size_t i = 0; i < suppressed.size(); ++i) {
    const Finding& f = suppressed[i];
    os << "    {\"rule\": \"" << f.rule << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line << "}"
       << (i + 1 < suppressed.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"finding_count\": " << findings.size()
     << ",\n  \"suppressed_count\": " << suppressed.size() << "\n}\n";
  return os.str();
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool is_source(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

/// Directories never scanned: test fixtures (deliberate violations) and
/// golden data.
bool skipped_dir(const fs::path& p) {
  return p.filename() == "fixtures" || p.filename() == "data" ||
         p.filename() == "build" || p.filename().string().rfind("build-", 0) == 0;
}

void collect_tree(const fs::path& dir, std::vector<fs::path>& out) {
  if (!fs::exists(dir)) return;
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && is_source(it->path())) out.push_back(it->path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool assume_test = false;
  std::string json_out;
  fs::path root;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--assume-test") {
      assume_test = true;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& r : nlc::lint::all_rules()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nlc_lint [--json] [--json-out FILE] [--root DIR] "
                   "[--assume-test] [--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nlc_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  // Resolve the work list: explicit files, or a tree scan under --root.
  std::vector<fs::path> files;
  std::vector<std::string> rel;  // path strings the rules see
  if (!root.empty()) {
    std::vector<std::string> dirs =
        paths.empty() ? std::vector<std::string>{"src", "tests", "bench",
                                                 "tools", "examples"}
                      : paths;
    for (const std::string& d : dirs) collect_tree(root / d, files);
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      rel.push_back(fs::relative(f, root).generic_string());
    }
  } else {
    for (const std::string& p : paths) files.emplace_back(p);
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) rel.push_back(f.generic_string());
  }
  if (files.empty()) {
    std::cerr << "nlc_lint: no input files (pass --root <repo> or files)\n";
    return 2;
  }

  std::vector<AnalyzedFile> units;
  units.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string src;
    if (!read_file(files[i], src)) {
      std::cerr << "nlc_lint: cannot read " << files[i] << "\n";
      return 2;
    }
    AnalyzedFile u;
    u.path = rel[i];
    u.is_test = root.empty() ? assume_test
                             : u.path.rfind("tests/", 0) == 0;
    u.lex = nlc::lint::lex(src);
    units.push_back(std::move(u));
  }

  nlc::lint::AnalysisResult res = nlc::lint::analyze(units);

  std::string j = to_json(res.findings, res.suppressed);
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "nlc_lint: cannot write " << json_out << "\n";
      return 2;
    }
    out << j;
  }
  if (json) {
    std::cout << j;
  } else {
    for (const Finding& f : res.findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cout << "nlc_lint: " << units.size() << " files, "
              << res.findings.size() << " finding"
              << (res.findings.size() == 1 ? "" : "s") << ", "
              << res.suppressed.size() << " suppressed\n";
  }
  return res.findings.empty() ? 0 : 1;
}
