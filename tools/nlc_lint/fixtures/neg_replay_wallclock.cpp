// Negative fixture: the replay engine stays log-driven (pure folds over
// recorded entries); the one wall-clock read inside the namespace is an
// annotated diagnostics path, and wall_now_ns outside the engine namespace
// is out of the rule's scope entirely.
namespace nlc::core::replay {
inline unsigned long fold(unsigned long fp, unsigned long h) {
  return (fp ^ h) * 0x9e3779b97f4a7c15ull;
}
// NLC_LINT_OK(replay-wallclock): crash-report timestamp, not replay state
inline long stamp() { return static_cast<long>(util::wall_now_ns()); }
}  // namespace nlc::core::replay

namespace nlc::core {
inline long epoch_deadline() {
  return static_cast<long>(util::wall_now_ns());
}
}  // namespace nlc::core
