// Positive fixture: sorting raw pointers by their addresses.
#include <algorithm>
#include <vector>
void f(std::vector<const Page*>& pages) {
  std::sort(pages.begin(), pages.end());
}
