// Negative fixture: the seeded Rng seam, a member rand(), suppression.
int g(nlc::Rng& rng, Dist& d) {
  int a = d.rand();
  // NLC_LINT_OK(raw-rand): fixture exercises the suppression path
  int b = rand();
  return a + b + static_cast<int>(rng.next());
}
