// Positive fixture: `this` captured into a detached-queue callback.
struct S {
  void arm(Sim& sim) {
    sim.call_after(10, [this] { tick(); });
  }
  void tick();
};
