// Positive fixture: raw steady_clock read outside src/util/.
#include <chrono>
long f() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
