// Positive fixture: naked new and naked delete.
int* f() {
  int* p = new int(7);
  delete p;
  return nullptr;
}
