// Negative fixture: owning-capture callback plus a suppressed `this`.
struct S {
  void arm(Sim& sim, std::shared_ptr<State> st) {
    sim.call_after(10, [st] { st->tick(); });
    // NLC_LINT_OK(detached-this): handle owned and cancelled; fixture
    sim.call_after(10, [this] { tick(); });
  }
  void tick();
};
