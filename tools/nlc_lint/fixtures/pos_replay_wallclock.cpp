// Positive fixture: wall clock + fresh Rng inside the replay engine.
namespace nlc::core::replay {
inline long now() { return static_cast<long>(util::wall_now_ns()); }
inline int draw() {
  nlc::Rng rng(7);
  return static_cast<int>(rng.next());
}
}  // namespace nlc::core::replay
