// Negative fixture: pool-mediated fan-out plus a suppressed primitive.
struct S {
  util::WorkerPool pool;
  // NLC_LINT_OK(concurrency-owner): fixture exercises the suppression path
  std::atomic<int> refs{0};
};
