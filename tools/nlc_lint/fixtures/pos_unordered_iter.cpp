// Positive fixture: order-dependent walks over an unordered container —
// a range-for with an emitting body and an explicit iterator loop.
#include <unordered_map>
#include <vector>
struct S {
  std::unordered_map<int, int> table;
  std::vector<int> out;
  void emit() {
    for (const auto& [k, v] : table) {
      out.push_back(v);
    }
  }
  int first() {
    for (auto it = table.begin(); it != table.end(); ++it) {
      return it->second;
    }
    return 0;
  }
};
