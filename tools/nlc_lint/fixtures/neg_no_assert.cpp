// Negative fixture: member-function assert, string mention, suppression.
void g(Checker& c, int x) {
  c.assert(x > 0);
  const char* s = "assert(everything)";
  // NLC_LINT_OK(no-assert): fixture exercises the suppression path
  assert(x);
  (void)s;
}
