// Negative fixture: the one-clock seam plus a suppressed raw read.
#include <chrono>
// NLC_LINT_OK(no-raw-clock): fixture exercises the suppression path
long g() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long h() { return wall_now_ns(); }
