// Negative fixture: the arena seam, a non-payload allocation, suppression.
#include <memory>
auto f() { return util::arena_make_shared(); }
auto g() { return std::make_shared<int>(7); }
// NLC_LINT_OK(arena-alloc): fixture exercises the suppression path
auto h() { return std::make_shared<PageBytes>(); }
