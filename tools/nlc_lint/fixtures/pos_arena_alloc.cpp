// Positive fixture: page payload / node allocated on the general heap.
#include <memory>
auto f() {
  return std::make_shared<PageBytes>();
}
auto g() {
  return std::make_unique<kern::Node>();
}
