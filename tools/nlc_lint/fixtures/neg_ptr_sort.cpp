// Negative fixture: comparator-sorted pointers, a value sort, suppression.
#include <algorithm>
#include <vector>
void g(std::vector<const Page*>& pages, std::vector<int>& vals) {
  std::sort(pages.begin(), pages.end(),
            [](const Page* a, const Page* b) { return a->id() < b->id(); });
  std::sort(vals.begin(), vals.end());
  // NLC_LINT_OK(ptr-sort): fixture exercises the suppression path
  std::sort(pages.begin(), pages.end());
}
