// Positive fixture: raw std::thread spawn.
#include <thread>
void f() {
  std::thread t([] {});
  t.join();
}
