// Positive fixture: wall clock + fresh Rng inside the epoch controller.
namespace nlc::core::epochctl {
inline long jitter() { return static_cast<long>(util::wall_now_ns()); }
inline double noise() {
  nlc::Rng rng(13);
  return static_cast<double>(rng.next() & 0xff) / 256.0;
}
}  // namespace nlc::core::epochctl
