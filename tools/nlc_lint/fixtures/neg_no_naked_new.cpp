// Negative fixture: smart-pointer factory, deleted functions, placement
// new, and a suppressed delete.
#include <memory>
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};
void g(void* buf) {
  auto p = std::make_unique<int>(7);
  new (buf) int(3);
  // NLC_LINT_OK(no-naked-new): fixture exercises the suppression path
  delete static_cast<int*>(buf);
}
