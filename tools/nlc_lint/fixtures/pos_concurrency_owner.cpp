// Positive fixture: synchronization primitives outside the owning modules.
#include <atomic>
#include <mutex>
struct S {
  std::mutex mu;
  std::atomic<int> refs{0};
};
