// Positive fixture: raw rand(), random_device entropy, bare engine.
#include <random>
int f() {
  std::mt19937 gen(std::random_device{}());
  return rand();
}
