// Negative fixture: capacity query is allowed; spawn is suppressed.
#include <thread>
unsigned g() {
  return std::thread::hardware_concurrency();
}
// NLC_LINT_OK(no-raw-thread): fixture exercises the suppression path
void h() { std::jthread t([] {}); }
