// Positive fixture: raw assert() and the <cassert> include.
#include <cassert>

void f(int x) {
  assert(x > 0);
}
