// Negative fixture: id-keyed maps plus a suppressed identity-lookup index.
#include <map>
#include <unordered_map>
struct S {
  std::unordered_map<unsigned long, int> by_id;
  std::map<PageNum, Record> by_page;
  // NLC_LINT_OK(ptr-key): identity lookups only; fixture suppression
  std::unordered_map<const Page*, int> index;
};
