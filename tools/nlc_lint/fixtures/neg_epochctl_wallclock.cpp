// Negative fixture: the controller stays a pure function of simulated
// observables (EWMA folds over stamped epochs); the one wall-clock read
// inside the namespace is an annotated diagnostics path, and wall_now_ns
// outside the controller namespace is out of the rule's scope entirely.
namespace nlc::core::epochctl {
inline double fold(double acc, double sample) {
  return acc < 0.0 ? sample : acc + (sample - acc) * 0.25;
}
// NLC_LINT_OK(replay-wallclock): controller-summary timestamp, not state
inline long stamp() { return static_cast<long>(util::wall_now_ns()); }
}  // namespace nlc::core::epochctl

namespace nlc::core {
inline long deadline() { return static_cast<long>(util::wall_now_ns()); }
}  // namespace nlc::core
