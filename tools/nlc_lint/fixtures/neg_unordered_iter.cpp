// Negative fixture: order-independent accumulation over an unordered
// container, an ordered-container walk, and a suppressed hash-order walk.
#include <map>
#include <unordered_map>
struct S {
  std::unordered_map<int, int> table;
  std::map<int, int> sorted;
  long sum() const {
    long acc = 0;
    for (const auto& [k, v] : table) {
      acc += v;
    }
    return acc;
  }
  void walk() {
    for (const auto& [k, v] : sorted) {
      emit(k, v);
    }
    // NLC_LINT_OK(unordered-iter): fixture exercises the suppression path
    for (const auto& [k, v] : table) {
      emit(k, v);
    }
  }
};
