// Positive fixture: pointer-keyed associative containers.
#include <set>
#include <unordered_map>
struct S {
  std::unordered_map<const Page*, int> refs;
  std::set<Node*> live;
};
