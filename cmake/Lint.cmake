# `lint` target: the nlc_lint static analyzer (tools/nlc_lint, DESIGN.md
# §13) over the whole tree, plus clang-tidy when the toolchain provides it.
# tools/lint.sh is a thin wrapper that builds and invokes the same binary.
# The analyzer also runs as a ctest test labeled "lint" (see tools/
# CMakeLists.txt) so `ctest --output-on-failure -j` fails on any new
# finding; the JSON artifact lands in ${CMAKE_BINARY_DIR}/nlc_lint.json for
# tooling.
find_program(NLC_CLANG_TIDY clang-tidy)

if(NLC_CLANG_TIDY)
  # clang-tidy reads compile commands from the build tree.
  set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
  add_custom_target(lint
    COMMAND $<TARGET_FILE:nlc_lint> --root ${CMAKE_SOURCE_DIR}
            --json-out ${CMAKE_BINARY_DIR}/nlc_lint.json
    COMMAND sh -c
      "find '${CMAKE_SOURCE_DIR}/src' -name '*.cpp' | xargs '${NLC_CLANG_TIDY}' -p '${CMAKE_BINARY_DIR}' --quiet"
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "nlc_lint + clang-tidy"
    VERBATIM)
else()
  add_custom_target(lint
    COMMAND $<TARGET_FILE:nlc_lint> --root ${CMAKE_SOURCE_DIR}
            --json-out ${CMAKE_BINARY_DIR}/nlc_lint.json
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "nlc_lint (clang-tidy not found; analyzer only)"
    VERBATIM)
endif()
add_dependencies(lint nlc_lint)
