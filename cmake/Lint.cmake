# `lint` target: repo conventions (tools/lint.sh) plus clang-tidy when the
# toolchain provides it. lint.sh always runs; clang-tidy is optional because
# gcc-only containers are a supported build environment — the .clang-tidy
# config at the repo root is still the source of truth for the check set.
find_program(NLC_CLANG_TIDY clang-tidy)

if(NLC_CLANG_TIDY)
  # clang-tidy reads compile commands from the build tree.
  set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
  add_custom_target(lint
    COMMAND ${CMAKE_SOURCE_DIR}/tools/lint.sh
    COMMAND sh -c
      "find '${CMAKE_SOURCE_DIR}/src' -name '*.cpp' | xargs '${NLC_CLANG_TIDY}' -p '${CMAKE_BINARY_DIR}' --quiet"
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "lint.sh + clang-tidy"
    VERBATIM)
else()
  add_custom_target(lint
    COMMAND ${CMAKE_SOURCE_DIR}/tools/lint.sh
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "lint.sh (clang-tidy not found; conventions only)"
    VERBATIM)
endif()
