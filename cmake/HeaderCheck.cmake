# Header self-containedness gate: every public header under src/ must
# compile as the sole include of a translation unit, so hidden transitive-
# include dependencies cannot accumulate. One TU per header is generated
# into the build tree and compiled as an OBJECT library; the ctest entry
# (label "lint") builds that target, so `ctest -L lint` catches a header
# that stopped standing on its own.
file(GLOB_RECURSE NLC_PUBLIC_HEADERS RELATIVE ${CMAKE_SOURCE_DIR}/src
     CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.hpp)

set(NLC_HEADER_CHECK_TUS "")
foreach(hdr ${NLC_PUBLIC_HEADERS})
  string(REPLACE "/" "_" tu_name ${hdr})
  string(REPLACE ".hpp" ".cpp" tu_name ${tu_name})
  set(tu ${CMAKE_BINARY_DIR}/header_check/${tu_name})
  file(WRITE ${tu} "// generated: self-containedness TU\n#include \"${hdr}\"\n")
  list(APPEND NLC_HEADER_CHECK_TUS ${tu})
endforeach()

add_library(nlc_header_check OBJECT EXCLUDE_FROM_ALL ${NLC_HEADER_CHECK_TUS})
target_include_directories(nlc_header_check PRIVATE ${CMAKE_SOURCE_DIR}/src)

add_test(NAME header_selfcontained
         COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
                 --target nlc_header_check)
set_tests_properties(header_selfcontained PROPERTIES LABELS lint TIMEOUT 600
                     RUN_SERIAL TRUE)
