// Simulated local block device.
//
// Stores real block contents (keyed by inode + page index, the granularity
// the simulated filesystem writes at) so disk-state consistency after a
// failover is checkable byte-for-byte. Latency is charged per operation by
// the callers that model synchronous I/O; the store itself is a plain map
// because writeback happens inside already-timed coroutines.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "kernel/fs.hpp"

namespace nlc::blk {

class Disk : public kern::BlockStore {
 public:
  void write_block(kern::InodeNum ino, std::uint64_t page,
                   std::span<const std::byte> data) override {
    blocks_[{ino, page}].assign(data.begin(), data.end());
    ++writes_;
    bytes_written_ += data.size();
  }

  std::optional<std::vector<std::byte>> read_block(
      kern::InodeNum ino, std::uint64_t page) const override {
    auto it = blocks_.find({ino, page});
    if (it == blocks_.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t block_count() const { return blocks_.size(); }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Content equality with another disk (tests: primary vs backup after
  /// commit).
  bool same_content(const Disk& other) const {
    return blocks_ == other.blocks_;
  }

 private:
  std::map<std::pair<kern::InodeNum, std::uint64_t>, std::vector<std::byte>>
      blocks_;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace nlc::blk
