// DRBD-style replicated block device with Remus epoch barriers (§II-A, §IV).
//
// The primary's writes are applied to the local disk immediately and
// shipped asynchronously over the replication link. The backup BUFFERS the
// received writes in memory, segmented by epoch barriers. When the primary
// agent ends an epoch it sends a barrier; when the backup agent has both
// (a) all disk writes up to the barrier and (b) the container state of that
// epoch, the epoch commits: the buffered writes are applied to the backup
// disk. On failover, writes of the uncommitted epoch are discarded, so the
// backup disk holds exactly the state of the last committed checkpoint.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "blockdev/disk.hpp"
#include "net/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace nlc::blk {

struct DiskWrite {
  kern::InodeNum ino = 0;
  std::uint64_t page = 0;
  std::vector<std::byte> data;
};

struct Barrier {
  std::uint64_t epoch = 0;
};

using DrbdMessage = std::variant<DiskWrite, Barrier>;

/// Primary-side DRBD: local write-through + async replication.
class DrbdPrimary : public kern::BlockStore {
 public:
  DrbdPrimary(Disk& local, net::Channel<DrbdMessage>& to_backup)
      : local_(&local), channels_{&to_backup} {}

  void write_block(kern::InodeNum ino, std::uint64_t page,
                   std::span<const std::byte> data) override {
    local_->write_block(ino, page, data);
    const std::uint64_t wire = data.size() + kWriteHeaderBytes;
    DiskWrite w{ino, page, {data.begin(), data.end()}};
    // Star fan-out (DESIGN.md §16): every directly-fed replica gets its own
    // copy of the write stream; the channels share the primary's
    // replication NIC, so the copies contend there.
    for (std::size_t i = 0; i + 1 < channels_.size(); ++i) {
      channels_[i]->send(DrbdMessage{w}, wire);
    }
    channels_.back()->send(DrbdMessage{std::move(w)}, wire);
  }

  std::optional<std::vector<std::byte>> read_block(
      kern::InodeNum ino, std::uint64_t page) const override {
    return local_->read_block(ino, page);
  }

  /// End-of-epoch barrier (sent by the primary agent at each pause).
  void send_barrier(std::uint64_t epoch) {
    for (net::Channel<DrbdMessage>* ch : channels_) {
      ch->send(DrbdMessage{Barrier{epoch}}, kBarrierBytes);
    }
  }

  /// Adds a directly-fed replica's write channel (star topology, N > 1).
  void add_channel(net::Channel<DrbdMessage>& ch) {
    channels_.push_back(&ch);
  }

  Disk& local_disk() { return *local_; }

  static constexpr std::uint64_t kWriteHeaderBytes = 64;
  static constexpr std::uint64_t kBarrierBytes = 32;

 private:
  Disk* local_;
  std::vector<net::Channel<DrbdMessage>*> channels_;
};

/// Observer seam for the invariant auditor (src/check): reports when
/// buffered epochs reach the backup disk and when the uncommitted tail is
/// dropped at failover.
class DrbdObserver {
 public:
  virtual ~DrbdObserver() = default;
  /// One buffered epoch's writes were applied to the backup disk.
  virtual void on_drbd_epoch_applied(std::uint64_t epoch,
                                     std::uint64_t writes) = 0;
  /// Failover discarded `writes` buffered, uncommitted writes.
  virtual void on_drbd_discard(std::uint64_t writes) = 0;
};

/// Backup-side DRBD: receives writes, buffers per epoch, commits on demand.
class DrbdBackup {
 public:
  DrbdBackup(sim::Simulation& s, Disk& local,
             net::Channel<DrbdMessage>& from_primary)
      : sim_(&s), local_(&local), channel_(&from_primary),
        barrier_arrived_(s) {}

  /// Receiver loop; spawn on the backup host.
  sim::task<> run() {
    while (true) {
      DrbdMessage m = co_await channel_->recv();
      if (forward_ != nullptr) {
        // Chain topology (DESIGN.md §16): store-and-forward a copy to the
        // next replica down the chain before consuming the message, with
        // the same wire accounting the primary used.
        const auto* fw = std::get_if<DiskWrite>(&m);
        forward_->send(DrbdMessage{m},
                       fw != nullptr
                           ? fw->data.size() + DrbdPrimary::kWriteHeaderBytes
                           : DrbdPrimary::kBarrierBytes);
      }
      if (auto* w = std::get_if<DiskWrite>(&m)) {
        pending_.push_back(std::move(*w));
      } else {
        last_barrier_ = std::get<Barrier>(m).epoch;
        any_barrier_ = true;
        epochs_.push_back(EpochWrites{last_barrier_, std::move(pending_)});
        pending_.clear();
        if (trace_ != nullptr) {
          trace_->instant(trace::Track::kDrbd, trace::Stage::kDrbdBuffer,
                          sim_->now(), epochs_.back().writes.size());
          trace_->instant(trace::Track::kDrbd, trace::Stage::kDrbdBarrier,
                          sim_->now(), last_barrier_);
          trace_->counter(trace::Track::kDrbd,
                          trace::Stage::kDrbdBufferedWrites, sim_->now(),
                          buffered_writes());
        }
        barrier_arrived_.set();
      }
    }
  }

  /// Awaits arrival of the barrier for `epoch` (all of that epoch's writes
  /// are then buffered).
  sim::task<> wait_barrier(std::uint64_t epoch) {
    // last_barrier_ == 0 also covers "no barrier yet" (epochs are 0-based):
    // without the flag, epoch 0 would be acknowledged before its disk
    // writes were buffered here, and a crash right after the epoch-0 commit
    // would lose them.
    while (!any_barrier_ || last_barrier_ < epoch) {
      barrier_arrived_.reset();
      co_await barrier_arrived_.wait();
    }
  }

  /// Applies all buffered writes up to and including `epoch`.
  void commit(std::uint64_t epoch) {
    while (!epochs_.empty() && epochs_.front().epoch <= epoch) {
      for (const DiskWrite& w : epochs_.front().writes) {
        local_->write_block(w.ino, w.page, w.data);
        ++writes_committed_;
      }
      committed_epoch_ = epochs_.front().epoch;
      if (observer_ != nullptr) {
        observer_->on_drbd_epoch_applied(epochs_.front().epoch,
                                         epochs_.front().writes.size());
      }
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kDrbd, trace::Stage::kDrbdCommit,
                        sim_->now(), committed_epoch_);
      }
      epochs_.pop_front();
    }
    if (trace_ != nullptr) {
      trace_->counter(trace::Track::kDrbd,
                      trace::Stage::kDrbdBufferedWrites, sim_->now(),
                      buffered_writes());
    }
  }

  /// Failover: drops every buffered write of uncommitted epochs (including
  /// writes not yet closed by a barrier).
  void discard_uncommitted() {
    std::uint64_t dropped = buffered_writes();
    epochs_.clear();
    pending_.clear();
    if (observer_ != nullptr) observer_->on_drbd_discard(dropped);
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kDrbd, trace::Stage::kDrbdDiscard,
                      sim_->now(), dropped);
      trace_->counter(trace::Track::kDrbd,
                      trace::Stage::kDrbdBufferedWrites, sim_->now(), 0);
    }
  }

  /// Installs (or clears, with nullptr) the audit observer.
  void set_observer(DrbdObserver* o) { observer_ = o; }

  /// Chain topology: forward every received message down this channel.
  void set_forward(net::Channel<DrbdMessage>* down) { forward_ = down; }

  /// Attaches (or clears) the flight recorder (observer only).
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  Disk& local_disk() { return *local_; }
  std::uint64_t committed_epoch() const { return committed_epoch_; }
  std::uint64_t last_barrier() const { return last_barrier_; }
  std::uint64_t buffered_writes() const {
    std::uint64_t n = pending_.size();
    for (const auto& e : epochs_) n += e.writes.size();
    return n;
  }
  std::uint64_t writes_committed() const { return writes_committed_; }

 private:
  struct EpochWrites {
    std::uint64_t epoch;
    std::vector<DiskWrite> writes;
  };

  sim::Simulation* sim_;
  Disk* local_;
  net::Channel<DrbdMessage>* channel_;
  net::Channel<DrbdMessage>* forward_ = nullptr;
  DrbdObserver* observer_ = nullptr;
  trace::Recorder* trace_ = nullptr;
  sim::Event barrier_arrived_;
  std::vector<DiskWrite> pending_;
  std::deque<EpochWrites> epochs_;
  std::uint64_t last_barrier_ = 0;
  bool any_barrier_ = false;
  std::uint64_t committed_epoch_ = 0;
  std::uint64_t writes_committed_ = 0;
};

}  // namespace nlc::blk
