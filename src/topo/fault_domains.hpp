// Hierarchical fault-domain tree (DESIGN.md §16).
//
// Models the placement hierarchy a fleet operator cares about for
// correlated failures: site / rack / host. Hosts are placed one at a time
// with anti-affinity — each new host goes into the least-loaded rack,
// preferring the least-loaded site on a tie — so 1 primary + N backups
// spread across non-overlapping domains and a single rack (or site) loss
// can never take out more than ceil((N+1)/racks) members. DAOS's pool-map
// fault domains are the template (ROADMAP item 1).
//
// Placement is pure bookkeeping: deterministic, no simulation objects, no
// randomness — the same construction sequence always yields the same
// rack assignment, which the crash-injection scenarios (correlated rack
// failure) rely on.
#pragma once

#include <vector>

namespace nlc::topo {

class FaultDomainTree {
 public:
  /// `sites` top-level domains, each holding `racks_per_site` racks.
  explicit FaultDomainTree(int sites = 1, int racks_per_site = 2);

  /// Places the next host (hosts are indexed by placement order) and
  /// returns its global rack id.
  int place_host();

  int rack_of(int host) const;
  int site_of_rack(int rack) const { return rack / racks_per_site_; }
  int rack_count() const { return sites_ * racks_per_site_; }
  int site_count() const { return sites_; }
  int hosts_placed() const { return static_cast<int>(host_rack_.size()); }
  int rack_load(int rack) const;
  /// Hosts placed into `rack`, in placement order.
  std::vector<int> hosts_in_rack(int rack) const;

 private:
  int sites_;
  int racks_per_site_;
  std::vector<int> rack_load_;
  std::vector<int> host_rack_;
};

}  // namespace nlc::topo
