#include "topo/topology.hpp"

#include "util/assert.hpp"

namespace nlc::topo {

std::vector<ReplicaRoute> StarPlan::routes(int replicas) const {
  NLC_CHECK_MSG(replicas >= 1, "star plan needs at least one replica");
  std::vector<ReplicaRoute> out;
  out.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) out.push_back(ReplicaRoute{i, -1, -1});
  return out;
}

std::vector<ReplicaRoute> ChainPlan::routes(int replicas) const {
  NLC_CHECK_MSG(replicas >= 1, "chain plan needs at least one replica");
  std::vector<ReplicaRoute> out;
  out.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    out.push_back(ReplicaRoute{i, i == 0 ? -1 : i - 1,
                               i + 1 < replicas ? i + 1 : -1});
  }
  return out;
}

std::unique_ptr<ReplicationPlan> make_plan(Topology t) {
  if (t == Topology::kChain) return std::make_unique<ChainPlan>();
  return std::make_unique<StarPlan>();
}

const char* topology_name(Topology t) {
  return t == Topology::kChain ? "chain" : "star";
}

bool parse_topology(const std::string& s, Topology* out) {
  if (s == "star") {
    *out = Topology::kStar;
    return true;
  }
  if (s == "chain") {
    *out = Topology::kChain;
    return true;
  }
  return false;
}

}  // namespace nlc::topo
