// Pluggable replication topologies (DESIGN.md §16).
//
// A `ReplicationPlan` decides how epoch state and the nd-event log flow
// from the primary to the N backup replicas:
//
//   star  — the primary fans out to every replica over its single
//           replication NIC (all streams contend on the same 10 GbE
//           qdisc; acks return on per-replica links).
//   chain — the primary feeds replica 0 only; each replica
//           store-and-forwards downstream over a per-hop link. Acks still
//           go directly back to the primary, so the quorum gate sees
//           per-replica cursors either way.
//
// This header is intentionally dependency-light (enum + POD routes) so
// `core::Options` can carry a `Topology` knob without pulling in the
// simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nlc::topo {

enum class Topology : std::uint8_t { kStar, kChain };

/// Per-replica routing decision. `upstream == -1` means the replica is fed
/// directly by the primary; `downstream == -1` means it forwards to nobody.
struct ReplicaRoute {
  int index = 0;
  int upstream = -1;
  int downstream = -1;
};

class ReplicationPlan {
 public:
  virtual ~ReplicationPlan() = default;
  virtual Topology topology() const = 0;
  virtual const char* name() const = 0;
  /// Routes for replicas 0..replicas-1, in index order.
  virtual std::vector<ReplicaRoute> routes(int replicas) const = 0;
};

class StarPlan final : public ReplicationPlan {
 public:
  Topology topology() const override { return Topology::kStar; }
  const char* name() const override { return "star"; }
  std::vector<ReplicaRoute> routes(int replicas) const override;
};

class ChainPlan final : public ReplicationPlan {
 public:
  Topology topology() const override { return Topology::kChain; }
  const char* name() const override { return "chain"; }
  std::vector<ReplicaRoute> routes(int replicas) const override;
};

std::unique_ptr<ReplicationPlan> make_plan(Topology t);
const char* topology_name(Topology t);
/// Parses "star" / "chain"; returns false (and leaves *out alone) on
/// anything else.
bool parse_topology(const std::string& s, Topology* out);

}  // namespace nlc::topo
