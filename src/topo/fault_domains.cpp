#include "topo/fault_domains.hpp"

#include "util/assert.hpp"

namespace nlc::topo {

FaultDomainTree::FaultDomainTree(int sites, int racks_per_site)
    : sites_(sites), racks_per_site_(racks_per_site) {
  NLC_CHECK_MSG(sites >= 1 && racks_per_site >= 1,
                "fault-domain tree needs at least one rack in one site");
  rack_load_.assign(static_cast<std::size_t>(rack_count()), 0);
}

int FaultDomainTree::place_host() {
  // Anti-affinity: least-loaded rack; on a tie, least-loaded site; on a
  // further tie, lowest rack id (a total order, so placement is a pure
  // function of the call sequence).
  std::vector<int> site_load(static_cast<std::size_t>(sites_), 0);
  for (int r = 0; r < rack_count(); ++r) {
    site_load[static_cast<std::size_t>(site_of_rack(r))] +=
        rack_load_[static_cast<std::size_t>(r)];
  }
  int best = 0;
  for (int r = 1; r < rack_count(); ++r) {
    const int rl = rack_load_[static_cast<std::size_t>(r)];
    const int bl = rack_load_[static_cast<std::size_t>(best)];
    if (rl < bl) {
      best = r;
      continue;
    }
    if (rl == bl) {
      const int rs = site_load[static_cast<std::size_t>(site_of_rack(r))];
      const int bs = site_load[static_cast<std::size_t>(site_of_rack(best))];
      if (rs < bs) best = r;
    }
  }
  ++rack_load_[static_cast<std::size_t>(best)];
  host_rack_.push_back(best);
  return best;
}

int FaultDomainTree::rack_of(int host) const {
  NLC_CHECK_MSG(host >= 0 && host < hosts_placed(),
                "rack_of: host was never placed");
  return host_rack_[static_cast<std::size_t>(host)];
}

int FaultDomainTree::rack_load(int rack) const {
  NLC_CHECK_MSG(rack >= 0 && rack < rack_count(), "rack_load: no such rack");
  return rack_load_[static_cast<std::size_t>(rack)];
}

std::vector<int> FaultDomainTree::hosts_in_rack(int rack) const {
  std::vector<int> hosts;
  for (int h = 0; h < hosts_placed(); ++h) {
    if (host_rack_[static_cast<std::size_t>(h)] == rack) hosts.push_back(h);
  }
  return hosts;
}

}  // namespace nlc::topo
