// Deterministic parallel trial execution.
//
// Every experiment in this repo is a set of *independent* trials: each
// trial constructs its own sim::Simulation (its own Cluster, apps, RNGs)
// and runs it to completion. Parallelism is therefore strictly *across*
// simulations, never within one — a trial's event order, metrics and
// events_processed() are byte-identical whether it runs on the calling
// thread or on a worker, which is what keeps the reproduction's numbers
// seed-stable while the wall clock drops by ~#cores.
//
// Design: work-stealing-free. Workers pull trial indices from a single
// atomic counter (no deques, no stealing, no ordering dependence) and
// write results into a slot pre-addressed by the submission index, so
// `run()` returns results in submission order regardless of completion
// order. The first-failing-*index* exception is rethrown (not the first
// in wall-clock order, which would be racy).
//
// The fan-out itself lives in util::WorkerPool (shared with the sharded
// intra-epoch page pipeline, DESIGN.md §10); TrialRunner owns a pool of
// jobs-1 helpers, created lazily on the first parallel run() and reused
// across batches, with the calling thread always participating.
//
// Concurrency knob: NLC_JOBS. Unset or 0 = hardware_concurrency;
// NLC_JOBS=1 forces the old serial path (trials run inline on the calling
// thread, no worker threads are created at all).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"
#include "util/worker_pool.hpp"

namespace nlc::harness {

/// Per-trial accounting filled in by the runner (wall clock) and by the
/// trial itself (simulation events, via TrialContext).
struct TrialStats {
  double wall_seconds = 0;
  std::uint64_t sim_events = 0;
};

/// Handed to each trial closure. `index` is the submission index;
/// `sim_events` should be set to Simulation::events_processed() before the
/// closure returns so the harness can report aggregate events/sec.
struct TrialContext {
  std::size_t index = 0;
  std::uint64_t sim_events = 0;
};

namespace detail {
/// Adapts a trial closure taking either (TrialContext&) or (std::size_t).
template <typename Fn>
auto invoke_trial(Fn& fn, TrialContext& ctx) {
  if constexpr (std::is_invocable_v<Fn&, TrialContext&>) {
    return fn(ctx);
  } else {
    return fn(ctx.index);
  }
}
}  // namespace detail

class TrialRunner {
 public:
  /// Reads NLC_JOBS; unset/0 means hardware_concurrency, minimum 1.
  static int env_jobs();

  explicit TrialRunner(int jobs = env_jobs())
      : jobs_(jobs < 1 ? 1 : jobs) {}

  int jobs() const { return jobs_; }

  /// Executes trials 0..n-1. `fn` is invoked as fn(TrialContext&) or
  /// fn(std::size_t index), must be const-callable from multiple threads,
  /// and must not touch shared mutable state (each trial owns its world).
  /// Returns results in submission order. If any trial throws, the
  /// exception of the lowest-index failing trial is rethrown after all
  /// workers have drained.
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<decltype(detail::invoke_trial(
          fn, std::declval<TrialContext&>()))> {
    using R = decltype(detail::invoke_trial(fn, std::declval<TrialContext&>()));
    std::vector<std::optional<R>> slots(n);
    std::vector<std::exception_ptr> errors(n);
    stats_.assign(n, TrialStats{});
    const std::uint64_t batch_start = util::wall_now_ns();

    auto one = [&](std::size_t i) {
      TrialContext ctx;
      ctx.index = i;
      const std::uint64_t t0 = util::wall_now_ns();
      try {
        slots[i].emplace(detail::invoke_trial(fn, ctx));
      } catch (...) {
        errors[i] = std::current_exception();
      }
      stats_[i].wall_seconds = util::wall_seconds_since(t0);
      stats_[i].sim_events = ctx.sim_events;
    };

    int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) one(i);
    } else {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<util::WorkerPool>(jobs_ - 1);
      }
      pool_->run(n, one);
    }

    batch_wall_seconds_ = util::wall_seconds_since(batch_start);

    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    std::vector<R> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      NLC_CHECK_MSG(slots[i].has_value(), "trial produced no result");
      out.push_back(std::move(*slots[i]));
    }
    return out;
  }

  /// Accounting for the most recent run().
  const std::vector<TrialStats>& stats() const { return stats_; }
  /// Wall clock of the whole batch (not the sum of per-trial times).
  double batch_wall_seconds() const { return batch_wall_seconds_; }
  /// Sum of per-trial wall clocks (= serial-equivalent time).
  double total_trial_seconds() const;
  std::uint64_t total_sim_events() const;
  /// Aggregate simulation events per wall-clock second of the batch.
  double events_per_second() const;

 private:
  int jobs_;
  /// Lazily created on the first parallel run(); reused across batches so
  /// repeated sweeps do not pay thread creation per call.
  std::unique_ptr<util::WorkerPool> pool_;
  std::vector<TrialStats> stats_;
  double batch_wall_seconds_ = 0;
};

}  // namespace nlc::harness
