#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>

#include "apps/batch_app.hpp"
#include "apps/diskstress.hpp"
#include "apps/kv.hpp"
#include "apps/server_app.hpp"
#include "check/audit.hpp"
#include "check/trace_oracle.hpp"
#include "clients/closed_loop.hpp"
#include "core/cluster.hpp"
#include "harness/parallel.hpp"
#include "mc/micro_checkpoint.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nlc::harness {

using namespace nlc::literals;
using core::Cluster;
using sim::task;

namespace {

/// Pre-uploads `pages` KV records into the server's store (the §VII-B
/// Redis experiment uploads ~100 MB before the fault).
void prefill_kv(Cluster& cl, apps::ServerApp& app, std::uint64_t pages,
                std::uint64_t seed) {
  kern::Container* c = cl.primary_kernel->container(app.container());
  NLC_CHECK(c != nullptr);
  for (kern::Process* p : cl.primary_kernel->container_processes(
           app.container())) {
    for (const kern::Vma& v : p->mm().vmas()) {
      if (v.backing_file != apps::kKvLabel) continue;
      std::uint64_t n = std::min<std::uint64_t>(pages, v.npages);
      Rng rng(seed);
      // A slice of the records carries real bytes (content-validated);
      // the rest are accounting pages, which keeps a 100MB upload from
      // occupying 100MB of simulator RAM while preserving checkpoint,
      // transfer and restore costs.
      constexpr std::uint64_t kContentSlice = 128;
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i < kContentSlice) {
          std::uint16_t len = 900;
          std::uint64_t s = rng.next();
          std::vector<std::byte> cell(16 + len);
          std::memcpy(cell.data(), &len, 2);
          std::memcpy(cell.data() + 2, &s, 8);
          cell[10] = std::byte{1};
          auto value = apps::kv_value_bytes(s, len);
          std::copy(value.begin(), value.end(), cell.begin() + 16);
          p->mm().write(v.start + i, 0, cell);
        } else {
          p->mm().touch(v.start + i);
        }
      }
      return;
    }
  }
}

struct ServerRunState {
  std::unique_ptr<apps::ServerApp> restored_app;
  std::unique_ptr<apps::BatchApp> restored_batch;
  std::unique_ptr<apps::DiskStressApp> restored_diskstress;
};

}  // namespace

RunResult run_experiment(const RunConfig& cfg) {
  RunResult res;
  // The cluster's replica set and wiring topology are construction-time
  // properties (protect() cross-checks them against the Options).
  core::ClusterConfig ccfg;
  if (cfg.mode == Mode::kNiLiCon) {
    ccfg.replicas = cfg.nilicon.replicas;
    ccfg.topology = cfg.nilicon.topology;
  }
  Cluster cl(ccfg);
  Rng rng(cfg.seed);

  // Declared after cl so the auditor detaches from the still-live cluster
  // components on destruction.
  std::unique_ptr<check::InvariantAuditor> auditor;

  kern::Container& cont = cl.create_service_container(cfg.spec.name);
  kern::ContainerId cid = cont.id();

  if (cfg.mode == Mode::kNiLiCon &&
      cfg.nilicon.audit_level != core::AuditLevel::kOff) {
    cl.on_agents_created = [&cl, &auditor, &cfg, cid] {
      auditor = std::make_unique<check::InvariantAuditor>(cl, cid,
                                                          cfg.nilicon);
      auditor->attach();
    };
  }

  apps::AppEnv primary_env{&cl.sim, cl.primary_kernel.get(), &cl.primary_tcp,
                           core::kServiceIp, cfg.seed ^ 0xA11};

  std::unique_ptr<apps::ServerApp> server;
  std::unique_ptr<apps::BatchApp> batch;
  std::unique_ptr<apps::DiskStressApp> diskstress;
  auto state = std::make_shared<ServerRunState>();

  apps::AppSpec batch_spec = cfg.spec;  // batch variant with the work quota
  batch_spec.batch_cpu_per_thread = cfg.batch_work;
  if (cfg.spec.interactive) {
    server = std::make_unique<apps::ServerApp>(primary_env, cfg.spec);
    server->setup(cid);
    if (cfg.prefill_kv_pages > 0) {
      prefill_kv(cl, *server, cfg.prefill_kv_pages, cfg.seed ^ 0xF111);
    }
  } else {
    batch = std::make_unique<apps::BatchApp>(primary_env, batch_spec);
    batch->setup(cid);
  }
  if (cfg.with_diskstress) {
    diskstress = std::make_unique<apps::DiskStressApp>(primary_env,
                                                       cfg.seed ^ 0xD155);
    diskstress->setup(cid);
  }

  // MC plumbing (only used in MC mode).
  std::unique_ptr<mc::McDriver> mc_driver;
  if (cfg.mode == Mode::kMc) {
    mc::McOptions mo;
    mo.guest_noise_pages = cfg.spec.mc_guest_noise_pages;
    mo.seed = cfg.seed;
    mc_driver = std::make_unique<mc::McDriver>(
        mo, *cl.primary_kernel, cl.primary_tcp, cid, *cl.state_channel,
        *cl.ack_channel, cl.metrics);
    cl.sim.spawn(cl.backup_domain, mc_driver->backup_responder());
  }

  // Client population.
  clients::ClientConfig cc;
  cc.local_ip = core::kClientIp;
  cc.server_ip = core::kServiceIp;
  cc.port = cfg.spec.port;
  cc.connections = cfg.client_connections.value_or(
      cfg.spec.saturation_clients);
  cc.request_bytes = cfg.spec.request_bytes;
  cc.pipeline = cfg.client_pipeline.value_or(cfg.spec.client_pipeline);
  cc.kv_mode = cfg.kv_validation;
  if (cc.kv_mode && cfg.spec.kv_pages > 0) {
    // Key ranges must be disjoint per connection AND map to distinct pages
    // (one page per key): clamp the per-connection keyspace.
    std::uint64_t per_conn =
        cfg.spec.kv_pages / static_cast<std::uint64_t>(cc.connections);
    cc.keys_per_connection = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cc.keys_per_connection,
                                std::max<std::uint64_t>(per_conn, 1)));
  }
  clients::ClosedLoopClient client(cl.sim, cl.client_domain, cl.client_tcp,
                                   cc, cfg.seed ^ 0xC11E);

  // Shared measurement bookkeeping filled by the orchestrator.
  struct Window {
    Time start = 0, end = 0;
    std::uint64_t completed_at_start = 0;
    Time cpu_at_start = 0, backup_busy_at_start = 0;
    std::uint64_t wire_at_start = 0, epochs_at_start = 0;
    Time fault_time = -1;
    std::uint64_t completed_at_fault = 0;
  };
  auto win = std::make_shared<Window>();

  // Post-failover application reattachment.
  if (cl.backup_agent == nullptr && cfg.mode == Mode::kNiLiCon) {
    // created inside protect(); hook installed right after.
  }

  // Fault dispatch: which host(s) die at the injection point.
  auto do_fault = [&cl, &cfg] {
    switch (cfg.fault_kind) {
      case FaultKind::kPrimary:
        cl.fail_primary();
        break;
      case FaultKind::kBackup:
        cl.fail_backup(cfg.fault_backup_index);
        break;
      case FaultKind::kRack:
        // Correlated loss of the primary's rack — the anti-affinity
        // placement decides which backups (if any) go down with it.
        cl.fail_rack(cl.fault_domains.rack_of(0));
        break;
      case FaultKind::kDouble:
        cl.fail_backup(cfg.fault_backup_index);
        cl.sim.call_after(nlc::milliseconds(50), [&cl] { cl.fail_primary(); });
        break;
    }
  };

  auto orchestrator = [&]() -> task<> {
    // Protection first (small initial sync), then load.
    if (cfg.mode == Mode::kNiLiCon) {
      co_await cl.protect(cid, cfg.nilicon);
      // Every replica gets the reattachment hook: with N > 1 the arbiter
      // decides at fault time which backup restores, so the hook must be
      // armed everywhere with that replica's own kernel/TCP environment.
      for (int i = 0; i < cl.replica_count(); ++i) {
        apps::AppEnv renv{&cl.sim, &cl.backup_kernel_of(i),
                          &cl.backup_tcp_of(i), core::kServiceIp,
                          cfg.seed ^ 0xB22};
        cl.backup(i).set_on_restored(
            [&, state, renv](const core::FailoverContext& ctx) {
              if (cfg.spec.interactive) {
                state->restored_app = apps::ServerApp::attach_restored(
                    renv, cfg.spec, ctx);
                state->restored_app->set_dilation(1.0);  // unprotected now
              } else {
                state->restored_batch = apps::BatchApp::attach_restored(
                    renv, batch_spec, ctx);
              }
              if (cfg.with_diskstress) {
                state->restored_diskstress =
                    apps::DiskStressApp::attach_restored(renv, ctx);
                res.diskstress_post_failover_mismatches =
                    state->restored_diskstress->verify_all();
              }
            });
      }
      if (server) server->set_dilation(cfg.spec.dilation_nilicon);
      if (batch) batch->set_dilation(cfg.spec.dilation_nilicon);
    } else if (cfg.mode == Mode::kMc) {
      co_await mc_driver->start();
      if (server) server->set_dilation(cfg.spec.dilation_mc);
      if (batch) batch->set_dilation(cfg.spec.dilation_mc);
    }

    if (cfg.spec.interactive) {
      client.start();
      co_await client.wait_connected();
      co_await cl.sim.sleep_for(cfg.warmup);

      win->start = cl.sim.now();
      win->end = win->start + cfg.measure;
      win->completed_at_start = client.completed();
      win->cpu_at_start = cont.cpu().usage();
      win->backup_busy_at_start = cl.metrics.backup_busy;
      win->wire_at_start = cl.metrics.bytes_shipped;
      win->epochs_at_start = cl.metrics.epochs_completed;

      if (cfg.inject_fault) {
        double frac = 0.1 + 0.8 * rng.uniform01();
        Time when = win->start + static_cast<Time>(
                                     frac * static_cast<double>(cfg.measure));
        cl.sim.call_after(when - cl.sim.now(), [&cl, win, &client, &do_fault] {
          win->fault_time = cl.sim.now();
          win->completed_at_fault = client.completed();
          do_fault();
        });
      }
      co_await cl.sim.sleep_for(cfg.measure);
      win->end = cl.sim.now();
      client.stop();
      // Allow in-flight requests to drain, then stop the world.
      co_await cl.sim.sleep_for(2_s);
    } else {
      batch->start();
      win->start = cl.sim.now();
      win->cpu_at_start = cont.cpu().usage();
      win->backup_busy_at_start = cl.metrics.backup_busy;
      win->wire_at_start = cl.metrics.bytes_shipped;
      win->epochs_at_start = cl.metrics.epochs_completed;
      if (cfg.inject_fault) {
        // Middle 80% of the expected runtime.
        double frac = 0.1 + 0.8 * rng.uniform01();
        Time when = win->start +
                    static_cast<Time>(frac *
                                      static_cast<double>(cfg.batch_work));
        cl.sim.call_after(when - cl.sim.now(),
                          [win, &cl, &do_fault] {
                            win->fault_time = cl.sim.now();
                            do_fault();
                          });
      }
      // The original workers die with the primary on a fault run; the
      // restored instance (if any) finishes the remaining quota.
      while (!batch->done() &&
             !(state->restored_batch && state->restored_batch->done())) {
        if (batch->done()) break;
        co_await cl.sim.sleep_for(20_ms);
        if (!cfg.inject_fault && batch->done()) break;
      }
      win->end = cl.sim.now();
    }
    if (cl.primary_agent) cl.primary_agent->stop();
    if (mc_driver) mc_driver->stop();
    if (cl.backup_agent) {
      for (int i = 0; i < cl.replica_count(); ++i) cl.backup(i).disarm();
    }
    cl.sim.stop();
  };
  cl.sim.spawn(orchestrator());
  cl.sim.run();

  res.trace = cl.tracer;
  if (auditor) {
    auditor->final_audit();
    res.audited = true;
    res.audit = auditor->stats();
    if (res.trace != nullptr) {
      // Re-verify the commit orderings post hoc from the recorded stream —
      // the trace must tell the same story the live mirrors saw (with
      // N > 1 this includes the K-of-N quorum-release rule).
      res.audit.trace_order_checks =
          check::audit_trace_ordering(res.trace->drain(),
                                      cfg.nilicon.resolved_quorum())
              .total();
    }
  }

  // ---- Collect ------------------------------------------------------------
  Time window = win->end - win->start;
  NLC_CHECK(window > 0);
  if (cfg.spec.interactive) {
    res.requests_completed = client.completed() - win->completed_at_start;
    res.throughput_rps = client.throughput(win->start, win->end);
    res.latencies_ms = client.latencies_ms();
    if (!res.latencies_ms.empty()) {
      res.mean_latency_ms = res.latencies_ms.mean();
    }
    for (const auto& [sent, lat] : client.latency_trace()) {
      if (sent >= win->start && sent < win->end) {
        res.latencies_window_ms.add(to_millis(lat));
      }
    }
  } else if (batch->done()) {
    res.batch_runtime = batch->runtime();
    res.batch_ideal = batch->ideal_runtime();
  } else {
    // Finished on the backup after a failover: wall time from the original
    // start to the restored instance's completion.
    res.batch_runtime = win->end - win->start;
    res.batch_ideal = batch->ideal_runtime();
  }
  res.metrics = cl.metrics;
  res.wire_bytes_window = cl.metrics.bytes_shipped - win->wire_at_start;
  res.epochs_window = cl.metrics.epochs_completed - win->epochs_at_start;
  // With N > 1 the arbiter may have promoted any surviving replica; the
  // end-of-run kernel (and the recovery metrics) are the winner's.
  core::BackupAgent* survivor = nullptr;
  int survivor_index = 0;
  if (cl.backup_agent != nullptr) {
    for (int i = 0; i < cl.replica_count(); ++i) {
      if (cl.backup(i).recovered()) {
        survivor = &cl.backup(i);
        survivor_index = i;
      }
    }
  }
  kern::Kernel* end_kernel = (cfg.inject_fault && survivor != nullptr)
                                 ? &cl.backup_kernel_of(survivor_index)
                                 : cl.primary_kernel.get();
  kern::Container* end_cont = end_kernel->container(cid);
  Time cpu_end = 0;
  if (cfg.inject_fault && survivor != nullptr) {
    // Active-core accounting spans hosts after a failover; report the
    // pre-fault primary usage rate instead.
    cpu_end = win->fault_time > 0 ? cont.cpu().usage() : 0;
    Time span = win->fault_time > 0 ? win->fault_time - win->start : window;
    if (span > 0) {
      res.active_cores =
          static_cast<double>(cpu_end - win->cpu_at_start) /
          static_cast<double>(span);
    }
  } else if (end_cont != nullptr) {
    res.active_cores =
        static_cast<double>(end_cont->cpu().usage() - win->cpu_at_start) /
        static_cast<double>(window);
  }
  res.backup_cores =
      static_cast<double>(cl.metrics.backup_busy - win->backup_busy_at_start) /
      static_cast<double>(window);

  if (cfg.inject_fault) {
    res.fault_injected = win->fault_time > 0;
    if (survivor != nullptr) {
      res.recovered = true;
      res.recovery = survivor->recovery_metrics();
    } else if (cl.backup_agent) {
      res.recovered = false;
      res.recovery = cl.backup_agent->recovery_metrics();
    }
    res.requests_after_fault = client.completed() - win->completed_at_fault;
    res.kv_errors = client.kv_errors();
    res.broken_connections = client.broken_connections();
    if (diskstress) res.diskstress_errors = diskstress->errors();
    if (state->restored_diskstress) {
      res.diskstress_errors += state->restored_diskstress->errors() -
                               res.diskstress_post_failover_mismatches;
    }

    // Client-observed interruption: latency spike over the pre-fault median.
    Samples pre;
    Time max_post = 0;
    for (const auto& [sent, lat] : client.latency_trace()) {
      if (sent + lat < win->fault_time) {
        pre.add(static_cast<double>(lat));
      } else {
        max_post = std::max(max_post, lat);
      }
    }
    if (!pre.empty() && max_post > 0) {
      res.interruption =
          max_post - static_cast<Time>(pre.percentile(50));
    }
  } else {
    res.kv_errors = client.kv_errors();
    res.broken_connections = client.broken_connections();
  }
  res.sim_events = cl.sim.events_processed();
  return res;
}

double measure_overhead(const RunConfig& protected_cfg) {
  RunConfig stock_cfg = protected_cfg;
  stock_cfg.mode = Mode::kStock;
  stock_cfg.inject_fault = false;
  // The stock baseline and the protected run are independent simulations:
  // run them as two trials on the shared runner.
  TrialRunner runner;
  std::vector<RunResult> rs =
      runner.run(2, [&](TrialContext& ctx) {
        RunResult r =
            run_experiment(ctx.index == 0 ? stock_cfg : protected_cfg);
        ctx.sim_events = r.sim_events;
        return r;
      });
  RunResult& stock = rs[0];
  RunResult& prot = rs[1];
  if (protected_cfg.spec.interactive) {
    NLC_CHECK(stock.throughput_rps > 0);
    return 1.0 - prot.throughput_rps / stock.throughput_rps;
  }
  NLC_CHECK(stock.batch_runtime > 0);
  return static_cast<double>(prot.batch_runtime) /
             static_cast<double>(stock.batch_runtime) -
         1.0;
}

}  // namespace nlc::harness
