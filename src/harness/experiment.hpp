// Experiment harness: runs one benchmark in one protection mode on a fresh
// Cluster and returns everything the paper's tables report.
//
// Protection modes: stock (no replication), NiLiCon (the paper's system,
// with per-optimization toggles), MC (the Remus-on-KVM baseline).
// Optional fail-stop fault injection at a random point of the middle 80 %
// of the measurement window (§VII-A), with KV/content validation.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apps/spec.hpp"
#include "check/invariants.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "trace/recorder.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace nlc::harness {

enum class Mode { kStock, kNiLiCon, kMc };

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kStock: return "stock";
    case Mode::kNiLiCon: return "NiLiCon";
    case Mode::kMc: return "MC";
  }
  return "?";
}

/// What fails when RunConfig::inject_fault is set (DESIGN.md §16). The
/// non-primary kinds need mode == kNiLiCon with Options::replicas > 1.
enum class FaultKind {
  kPrimary,     // fail-stop primary crash (the paper's §VII-A scenario)
  kBackup,      // fail-stop crash of one backup replica — no failover;
                //   the quorum must absorb it with zero client-visible loss
  kRack,        // correlated failure of the primary's whole rack (takes any
                //   backup the anti-affinity placement co-located with it)
  kDouble,      // one backup crashes, the primary follows 50 ms later —
                //   the surviving replicas must still elect and recover
};

inline const char* fault_kind_name(FaultKind f) {
  switch (f) {
    case FaultKind::kPrimary: return "primary";
    case FaultKind::kBackup: return "backup";
    case FaultKind::kRack: return "rack";
    case FaultKind::kDouble: return "double";
  }
  return "?";
}

struct RunConfig {
  apps::AppSpec spec;
  Mode mode = Mode::kNiLiCon;
  core::Options nilicon;           // used when mode == kNiLiCon
  std::uint64_t seed = 1;

  // Interactive (server) runs.
  Time warmup = nlc::milliseconds(500);
  Time measure = nlc::seconds(8);
  std::optional<int> client_connections;  // default: spec.saturation_clients
  std::optional<int> client_pipeline;     // default: spec.client_pipeline
  bool kv_validation = false;             // real content payloads + checks
  std::uint64_t prefill_kv_pages = 0;     // pre-uploaded records (§VII-B)

  // Batch runs.
  Time batch_work = nlc::seconds(3);      // per-thread CPU quota

  // Fault injection (§VII-A): at a uniform-random point of the middle 80 %
  // of the measurement window. After recovery the run continues to the end
  // of the window so post-failover progress is observable.
  bool inject_fault = false;
  /// Which host(s) the injected fault takes (N-way runs can crash backups
  /// and whole racks, not just the primary).
  FaultKind fault_kind = FaultKind::kPrimary;
  /// Replica index crashed by kBackup / kDouble (0 = the first backup).
  int fault_backup_index = 1;
  /// Run a diskstress process alongside (first validation microbenchmark).
  bool with_diskstress = false;
};

struct RunResult {
  // Interactive.
  double throughput_rps = 0;
  std::uint64_t requests_completed = 0;
  Samples latencies_ms;
  double mean_latency_ms = 0;

  // Batch.
  Time batch_runtime = 0;
  Time batch_ideal = 0;

  // Replication internals (empty for stock runs).
  core::ReplicationMetrics metrics;

  /// Checkpoint (page/state) wire bytes shipped inside the measurement
  /// window only — metrics.bytes_shipped also counts warmup, including an
  /// adaptive controller's ramp, so wire-rate comparisons between epoch
  /// policies use this steady-state figure (bench_epoch_sweep).
  std::uint64_t wire_bytes_window = 0;
  std::uint64_t epochs_window = 0;
  /// Latencies of requests *sent* inside the measurement window only —
  /// latencies_ms spans the whole run including warmup, which an adaptive
  /// controller's ramp pollutes (a handful of pre-convergence samples can
  /// own the p99 tail). Percentile comparisons between epoch policies use
  /// this steady-state set.
  Samples latencies_window_ms;

  // Table V.
  double active_cores = 0;
  double backup_cores = 0;

  // Fault injection.
  bool fault_injected = false;
  bool recovered = false;
  core::RecoveryMetrics recovery;
  std::uint64_t requests_after_fault = 0;
  std::uint64_t kv_errors = 0;
  std::uint64_t broken_connections = 0;
  std::uint64_t diskstress_errors = 0;
  std::uint64_t diskstress_post_failover_mismatches = 0;
  /// Client-observed service interruption (max latency spike minus the
  /// pre-fault median), for Table II.
  Time interruption = 0;

  /// Invariant-audit results (cfg.nilicon.audit_level != kOff). A run that
  /// returns at all passed: a violation throws InvariantError out of
  /// run_experiment.
  bool audited = false;
  check::AuditStats audit;

  /// Flight recorder (cfg.nilicon.trace_level != kOff): the cluster's
  /// tracer, kept alive past the Cluster so the caller can export the
  /// stream (trace/export.hpp) or run the critical-path analyzer.
  std::shared_ptr<trace::Recorder> trace;

  /// Events processed by this trial's simulation loop — the TrialRunner
  /// aggregates these into events/sec, and the determinism tests compare
  /// them across serial/parallel and fast-path/generic runs.
  std::uint64_t sim_events = 0;
};

/// Runs one experiment. Deterministic for a given config+seed.
RunResult run_experiment(const RunConfig& cfg);

/// Convenience: overhead of `mode` versus a stock run with the same seed.
/// For servers: relative throughput reduction; for batch: relative runtime
/// increase (§VII-C definitions).
double measure_overhead(const RunConfig& protected_cfg);

}  // namespace nlc::harness
