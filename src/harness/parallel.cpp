#include "harness/parallel.hpp"

#include <cstdlib>
#include <thread>

namespace nlc::harness {

int TrialRunner::env_jobs() {
  if (const char* v = std::getenv("NLC_JOBS"); v != nullptr && v[0] != '\0') {
    int j = std::atoi(v);
    if (j >= 1) return j;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

double TrialRunner::total_trial_seconds() const {
  double s = 0;
  for (const auto& t : stats_) s += t.wall_seconds;
  return s;
}

std::uint64_t TrialRunner::total_sim_events() const {
  std::uint64_t e = 0;
  for (const auto& t : stats_) e += t.sim_events;
  return e;
}

double TrialRunner::events_per_second() const {
  if (batch_wall_seconds_ <= 0) return 0;
  return static_cast<double>(total_sim_events()) / batch_wall_seconds_;
}

}  // namespace nlc::harness
