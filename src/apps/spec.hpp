// Workload specifications for the paper's benchmarks (§VI).
//
// Each spec describes a benchmark's resource profile: process/thread/core
// topology, memory layout, per-request CPU and state-mutation behaviour,
// and the calibration constants documented in EXPERIMENTS.md. The specs
// drive both the app models (src/apps) and the saturation clients
// (src/clients).
#pragma once

#include <cstdint>
#include <string>

#include "net/types.hpp"
#include "util/time.hpp"

namespace nlc::apps {

struct AppSpec {
  std::string name;
  bool interactive = true;  // server app vs non-interactive batch

  // ---- Topology ------------------------------------------------------------
  int processes = 1;
  int threads_per_process = 1;  // worker threads beyond the main thread
  int cores = 4;
  net::Port port = 80;

  // ---- Memory layout ---------------------------------------------------------
  std::uint64_t mapped_pages = 25'000;   // anon working set (pagemap scan size)
  std::uint64_t kv_pages = 0;            // content-carrying KV region (1 page/key)
  int mmap_files = 40;                   // shared libraries (stat cost, §V)
  int plain_fds = 12;                    // regular files, pipes, ...

  // ---- Request model (interactive apps) --------------------------------------
  Time service_cpu = nlc::microseconds(500);  // CPU per request, stock
  std::uint64_t request_bytes = 200;
  std::uint64_t response_bytes = 1'000;
  /// Pages dirtied while serving one request (drawn from the working set,
  /// spread across the request's CPU quanta).
  std::uint64_t pages_per_request = 8;
  /// For KV workloads: writes per batch request (pages dirtied in kv_pages).
  std::uint64_t kv_writes_per_request = 0;
  /// Bytes written through the filesystem per request (SSDB persistence,
  /// DJCMS database updates).
  std::uint64_t disk_bytes_per_request = 0;
  /// Fraction of requests that are "heavy": multiply CPU and dirtying by
  /// heavy_factor (DJCMS's bimodal admin-dashboard requests).
  double heavy_request_fraction = 0.0;
  double heavy_factor = 1.0;

  // ---- Batch model (non-interactive apps) -------------------------------------
  Time batch_cpu_per_thread = 0;            // total work per worker thread
  Time batch_quantum = nlc::milliseconds(5);
  std::uint64_t pages_per_quantum = 0;      // streamed dirtying per quantum

  // ---- Protection-mode calibration (EXPERIMENTS.md) ---------------------------
  /// Service-time dilation while protected: page-fault tracking, cache
  /// pollution from the agent. Calibrated per benchmark from Figure 3's
  /// runtime/stopped split.
  double dilation_nilicon = 1.03;
  double dilation_mc = 1.10;
  /// Extra guest-kernel pages dirtied per epoch when the workload runs in
  /// a VM under MC (guest OS activity the container variant keeps in the
  /// host kernel). Calibrated from Table III's MC-vs-NiLiCon dirty pages.
  std::uint64_t mc_guest_noise_pages = 150;

  // ---- Client shape (used by the harness) -------------------------------------
  int saturation_clients = 8;
  /// Outstanding requests per connection (the YCSB batcher streams
  /// pipelined batches; web clients are strict closed-loop).
  int client_pipeline = 1;
};

}  // namespace nlc::apps
