// The paper's benchmark suite (§VI) as AppSpec instances, plus the two
// §VII-A validation microbenchmarks.
//
// Structural parameters (processes, threads, cores, memory, request sizes)
// come from the paper's setup; dirtying rates are set so per-epoch dirty
// pages land at Table III; the protection dilation factors are calibrated
// from Figure 3's runtime/stopped overhead split (see EXPERIMENTS.md for
// the full derivation).
#pragma once

#include <vector>

#include "apps/spec.hpp"

namespace nlc::apps {

/// NoSQL in-memory store, batched 1K-op requests, 50/50 read/write,
/// 100K x 1KB records (YCSB). Wire-bound at saturation (~0.98 cores busy).
AppSpec redis_spec();

/// NoSQL store with full persistence: every write batch lands on disk
/// through the page cache, stressing DNC + DRBD.
AppSpec ssdb_spec();

/// Node.js service: single-threaded event loop, 128 concurrent clients,
/// database search + large generated responses. Most socket-heavy state.
AppSpec node_spec();

/// Lighttpd + PHP image watermarking: 4 processes, CPU-heavy requests.
AppSpec lighttpd_spec();

/// Django CMS (nginx + python + MySQL): 3 processes, bimodal
/// admin-dashboard requests with database writes.
AppSpec djcms_spec();

/// PARSEC streamcluster: 4 worker threads, large streamed working set.
AppSpec streamcluster_spec();

/// PARSEC swaptions: 4 worker threads, small working set.
AppSpec swaptions_spec();

/// "Net" echo microbenchmark (§VII-B): 10-byte echo.
AppSpec netecho_spec();

/// All seven paper benchmarks, in the tables' column order.
std::vector<AppSpec> paper_benchmarks();

}  // namespace nlc::apps
