// Non-interactive CPU/memory-intensive workload model (streamcluster,
// swaptions — PARSEC, §VI).
//
// Each worker thread streams through its slice of the working set: per
// quantum it dirties `pages_per_quantum` pages with a wrapping cursor
// (streaming access, so the per-epoch dirty set is proportional to epoch
// length) and consumes one CPU quantum. The app finishes when every thread
// has consumed `batch_cpu_per_thread`; the performance overhead metric is
// the relative increase of the finish time over the unprotected run.
#pragma once

#include <memory>
#include <vector>

#include "apps/server_app.hpp"  // AppEnv
#include "apps/spec.hpp"
#include "core/backup_agent.hpp"
#include "kernel/kernel.hpp"
#include "sim/sync.hpp"

namespace nlc::apps {

class BatchApp {
 public:
  BatchApp(AppEnv env, AppSpec spec);

  /// Builds processes/threads/memory and the keep-alive process (workers
  /// do not run yet).
  void setup(kern::ContainerId cid);

  /// Spawns the workers; runtime is measured from this instant.
  void start();

  /// Rebuilds the app around a restored container on the backup after a
  /// failover: reads each worker's committed progress from its progress
  /// page and resumes the remaining work. Exercises memory-content
  /// restoration end to end.
  static std::unique_ptr<BatchApp> attach_restored(
      AppEnv backup_env, AppSpec spec, const core::FailoverContext& ctx);

  /// Sum of per-worker completed work as recorded in the (checkpointed)
  /// progress pages.
  Time recorded_progress() const;

  /// Completes when all workers finished their work quota.
  sim::task<> wait_done();
  bool done() const { return finished_ == workers_; }

  /// Wall-clock lower bound: the per-thread CPU quota (threads run on
  /// dedicated cores).
  Time ideal_runtime() const { return spec_.batch_cpu_per_thread; }

  /// Wall time from start() to the last worker finishing.
  Time runtime() const { return done_time_ - start_time_; }

  void set_dilation(double d) { dilation_ = d; }
  kern::ContainerId container() const { return cid_; }

 private:
  sim::task<> worker(kern::Pid pid, kern::PageNum region_start,
                     std::uint64_t region_pages, std::uint64_t salt,
                     Time already_done);
  sim::task<> keepalive_loop();
  void attach_existing(kern::ContainerId cid);

  AppEnv env_;
  AppSpec spec_;
  kern::ContainerId cid_ = kern::kNoContainer;
  double dilation_ = 1.0;
  int workers_ = 0;
  int finished_ = 0;
  Time start_time_ = 0;
  Time done_time_ = 0;
  kern::Pid pid_ = 0;
  std::vector<std::pair<kern::PageNum, std::uint64_t>> regions_;
  kern::PageNum progress_start_ = 0;
  std::unique_ptr<sim::Event> all_done_;
};

}  // namespace nlc::apps
