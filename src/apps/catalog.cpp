#include "apps/catalog.hpp"

namespace nlc::apps {

using namespace nlc::literals;

AppSpec swaptions_spec() {
  AppSpec s;
  s.name = "swaptions";
  s.interactive = false;
  s.threads_per_process = 4;
  s.cores = 4;
  s.mapped_pages = 2'600;       // small resident set
  s.mmap_files = 30;
  s.plain_fds = 6;
  s.batch_quantum = 5_ms;
  s.pages_per_quantum = 2;      // 4 thr x 2 x 6 quanta ~ 48 dirty/epoch
  s.dilation_nilicon = 1.010;   // Fig 3 runtime split
  s.dilation_mc = 1.042;
  s.mc_guest_noise_pages = 166; // Table III: 212 vs 46
  return s;
}

AppSpec streamcluster_spec() {
  AppSpec s;
  s.name = "streamcluster";
  s.interactive = false;
  s.threads_per_process = 4;
  s.cores = 4;
  s.mapped_pages = 111'000;     // §VII-C: 111K pages at 32 threads; the
                                // native input keeps ~111K mapped overall
  s.mmap_files = 35;
  s.plain_fds = 6;
  s.batch_quantum = 5_ms;
  s.pages_per_quantum = 13;     // 4 x 13 x 6 ~ 312 dirty/epoch (~303)
  s.dilation_nilicon = 1.090;
  s.dilation_mc = 1.145;
  s.mc_guest_noise_pages = 159; // 462 vs 303
  return s;
}

AppSpec redis_spec() {
  AppSpec s;
  s.name = "redis";
  s.port = 6379;
  s.processes = 1;
  s.threads_per_process = 3;    // main + io threads
  s.cores = 1;                  // single-threaded command loop (Table V: 0.98)
  s.mapped_pages = 30'000;
  s.kv_pages = 100'000;         // 100K records, one page each
  s.mmap_files = 45;
  s.plain_fds = 10;
  // One request = a 1K-op pipelined batch (50% reads). Saturation is
  // wire-bound: ~500 x 1KB GET replies per batch on the 1 GbE client link.
  s.service_cpu = 2'200_us;
  s.request_bytes = 50'000;
  s.response_bytes = 100'000;
  s.pages_per_request = 60;       // response buffers, dict bookkeeping
  s.kv_writes_per_request = 420;  // ~500 writes, some key collisions
  s.saturation_clients = 3;
  s.client_pipeline = 14;         // pipelined batch stream
  s.dilation_nilicon = 1.02;
  s.dilation_mc = 1.04;
  s.mc_guest_noise_pages = 0;   // 6.2K vs 6.3K: guest noise in the noise
  return s;
}

AppSpec ssdb_spec() {
  AppSpec s;
  s.name = "ssdb";
  s.port = 8888;
  s.processes = 1;
  s.threads_per_process = 2;
  s.cores = 2;                  // Table V: ~1.7 cores busy
  s.mapped_pages = 22'000;
  s.kv_pages = 100'000;
  s.mmap_files = 40;
  s.plain_fds = 14;
  s.service_cpu = 68_ms;        // batch parse + LSM work (stock: 93 ms
                                // end-to-end per batch, Table VI)
  s.request_bytes = 50'000;
  s.response_bytes = 150'000;
  s.pages_per_request = 300;
  s.kv_writes_per_request = 430;
  s.disk_bytes_per_request = 512 * 1024;  // full persistence
  s.saturation_clients = 4;
  s.client_pipeline = 2;
  s.dilation_nilicon = 1.19;
  s.dilation_mc = 1.30;
  s.mc_guest_noise_pages = 517;  // 1107 vs 590
  return s;
}

AppSpec node_spec() {
  AppSpec s;
  s.name = "node";
  s.port = 3000;
  s.processes = 1;
  s.threads_per_process = 2;    // event loop + worker
  s.cores = 1;                  // single-threaded event loop (~1.01 busy)
  s.mapped_pages = 60'000;
  s.mmap_files = 60;
  s.plain_fds = 16;
  s.service_cpu = 2'000_us;     // stock single-client latency 2.4 ms
  s.request_bytes = 400;
  s.response_bytes = 42'000;    // generated page with figures
  s.pages_per_request = 350;
  s.saturation_clients = 128;   // §VII-C: 128 clients to saturate
  s.dilation_nilicon = 1.35;
  s.dilation_mc = 2.70;         // VM exits on a syscall-heavy event loop
  s.mc_guest_noise_pages = 3'800;
  return s;
}

AppSpec lighttpd_spec() {
  AppSpec s;
  s.name = "lighttpd";
  s.port = 80;
  s.processes = 4;
  s.threads_per_process = 1;
  s.cores = 4;                  // ~3.95 busy: CPU-bound watermarking
  s.mapped_pages = 40'000;
  s.mmap_files = 38;
  s.plain_fds = 10;
  s.service_cpu = 278_ms;       // PHP image watermark (stock 285 ms)
  s.request_bytes = 300;
  s.response_bytes = 700'000;   // watermarked image
  s.pages_per_request = 5'600;
  s.saturation_clients = 16;
  s.dilation_nilicon = 1.31;
  s.dilation_mc = 1.41;
  s.mc_guest_noise_pages = 1'300;  // 2.9K vs 1.6K
  return s;
}

AppSpec djcms_spec() {
  AppSpec s;
  s.name = "djcms";
  s.port = 8000;
  s.processes = 3;              // nginx, python, mysql
  s.threads_per_process = 2;
  s.cores = 2;                  // Table V: ~1.41 cores busy
  s.mapped_pages = 48'000;
  s.mmap_files = 70;
  s.plain_fds = 22;
  s.service_cpu = 58_ms;        // admin dashboard page (stock 89 ms
                                // mean over the light/heavy mix)
  s.request_bytes = 600;
  s.response_bytes = 120'000;
  s.pages_per_request = 5'200;
  s.heavy_request_fraction = 0.25;  // Table IV: highly variable state size
  s.heavy_factor = 3.0;
  s.disk_bytes_per_request = 64 * 1024;  // MySQL writes
  s.saturation_clients = 16;
  s.dilation_nilicon = 1.35;
  s.dilation_mc = 1.50;
  s.mc_guest_noise_pages = 300;
  return s;
}

AppSpec netecho_spec() {
  AppSpec s;
  s.name = "netecho";
  s.port = 7;
  s.processes = 1;
  s.threads_per_process = 1;
  s.cores = 2;
  s.mapped_pages = 1'200;
  s.kv_pages = 0;
  s.mmap_files = 12;
  s.plain_fds = 4;
  s.service_cpu = 50_us;
  s.request_bytes = 10;
  s.response_bytes = 10;
  s.pages_per_request = 1;
  s.saturation_clients = 1;
  s.dilation_nilicon = 1.01;
  s.dilation_mc = 1.05;
  s.mc_guest_noise_pages = 60;
  return s;
}

std::vector<AppSpec> paper_benchmarks() {
  return {swaptions_spec(), streamcluster_spec(), redis_spec(), ssdb_spec(),
          node_spec(),      lighttpd_spec(),      djcms_spec()};
}

}  // namespace nlc::apps
