// Generic server application model running on the simulated kernel.
//
// One accept loop feeds per-connection handler coroutines. A handler
// peeks the next request (leaving it in the checkpointed read queue),
// performs the request's CPU work in quanta while dirtying working-set
// pages, applies KV operations to real content pages, issues filesystem
// writes, and only then consumes the request and sends the response — so
// an epoch boundary anywhere inside a request leaves a committed state
// from which a restored backup reprocesses it (DESIGN.md §5.5).
//
// attach_restored() rebuilds the app object around the restored kernel
// objects on the backup after a failover, re-spawning handlers for every
// repaired connection.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/kv.hpp"
#include "apps/spec.hpp"
#include "core/backup_agent.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace nlc::apps {

struct AppEnv {
  sim::Simulation* sim;
  kern::Kernel* kernel;
  net::TcpStack* tcp;
  net::IpAddr service_ip;
  std::uint64_t seed = 1;
};

/// Pseudo-names of the app's anonymous VMAs (like /proc/maps labels);
/// attach_restored() relocates regions by these.
inline constexpr const char* kHeapLabel = "[heap]";
inline constexpr const char* kKvLabel = "[kv-store]";

class ServerApp {
 public:
  ServerApp(AppEnv env, AppSpec spec);

  /// Builds the container contents (processes, threads, memory regions,
  /// mmapped libraries, fds, data file), starts listening and spawns the
  /// accept loop, the keep-alive process (§IV) and the writeback daemon.
  /// Requires the container to exist already.
  void setup(kern::ContainerId cid);

  /// Rebuilds the app around a restored container on the backup host:
  /// spawns handlers for repaired connections and re-arms the accept loop.
  static std::unique_ptr<ServerApp> attach_restored(
      AppEnv backup_env, AppSpec spec, const core::FailoverContext& ctx);

  /// Service-time dilation while protected (calibrated; 1.0 = stock).
  void set_dilation(double d) { dilation_ = d; }

  std::uint64_t requests_completed() const { return requests_completed_; }
  kern::ContainerId container() const { return cid_; }
  const AppSpec& spec() const { return spec_; }

 private:
  struct Region {
    kern::Pid pid = 0;
    kern::PageNum start = 0;
    std::uint64_t npages = 0;
  };

  sim::task<> accept_loop(net::Endpoint ep);
  sim::task<> handler(kern::Pid pid, net::SocketId sock, kern::Fd fd);
  sim::task<> serve_one(kern::Pid pid, const net::Segment& request,
                        std::shared_ptr<std::vector<std::byte>>* reply,
                        std::uint64_t* reply_len);
  sim::task<> keepalive_loop();
  sim::task<> writeback_loop();
  std::shared_ptr<std::vector<std::byte>> apply_kv(
      const std::vector<std::byte>& payload);
  void dirty_pages(const Region& r, std::uint64_t count, Rng& rng);
  void attach_existing(kern::ContainerId cid);

  /// The nondeterministic-event sink the replication layer installed on
  /// the container (nullptr when unprotected or in epoch commit mode).
  /// Recording only mirrors values the app already drew — it never
  /// advances rng_ or changes any observable.
  kern::NondetSink* nondet_sink() const {
    kern::Container* c = env_.kernel->container(cid_);
    return c != nullptr ? c->nondet_sink() : nullptr;
  }

  AppEnv env_;
  AppSpec spec_;
  kern::ContainerId cid_ = kern::kNoContainer;
  std::vector<kern::Pid> pids_;
  std::vector<Region> heaps_;  // one per process
  Region kv_;                  // process 0 only (kv_pages > 0)
  kern::InodeNum data_file_ = 0;
  std::uint64_t disk_cursor_ = 0;
  Rng rng_;
  double dilation_ = 1.0;
  std::uint64_t requests_completed_ = 0;
  int next_proc_ = 0;  // round-robin connection placement

  /// Bounded data-file region so long runs do not grow without limit.
  static constexpr std::uint64_t kDataFileBytes = 16 * 1024 * 1024;
};

}  // namespace nlc::apps
