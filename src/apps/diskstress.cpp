#include "apps/diskstress.hpp"

#include <cstring>

#include "apps/kv.hpp"
#include "util/assert.hpp"

namespace nlc::apps {

using namespace nlc::literals;

namespace {
/// Slot expectation record stored in the table page: occupied flag, value
/// length, generator seed.
struct SlotRecord {
  std::uint8_t occupied = 0;
  std::uint32_t len = 0;
  std::uint64_t seed = 0;
};
constexpr std::uint32_t kRecordBytes = 16;
}  // namespace

DiskStressApp::DiskStressApp(AppEnv env, std::uint64_t seed)
    : env_(env), rng_(seed) {}

void DiskStressApp::setup(kern::ContainerId cid) {
  cid_ = cid;
  kern::Container* cont = env_.kernel->container(cid);
  NLC_CHECK(cont != nullptr);
  cont->cpu().set_core_limit(2);

  kern::Process& p = env_.kernel->create_process(cid_, "diskstress");
  pid_ = p.pid();
  kern::Vma table = p.mm().map(kSlots, kern::VmaKind::kAnon,
                               kDiskStressTableLabel);
  table_start_ = table.start;
  p.mm().map(64, kern::VmaKind::kStack);
  file_ = env_.kernel->fs().create("/data/diskstress.dat");

  env_.sim->spawn(env_.kernel->domain(), run_loop());
  // Writeback so the data flows disk-ward through DRBD, not only DNC.
  env_.sim->spawn(env_.kernel->domain(), [](AppEnv env) -> sim::task<> {
    while (true) {
      co_await env.sim->sleep_for(80_ms);
      env.kernel->fs().writeback(256);
    }
  }(env_));
}

void DiskStressApp::attach_existing(kern::ContainerId cid) {
  cid_ = cid;
  for (kern::Process* p : env_.kernel->container_processes(cid)) {
    for (const kern::Vma& v : p->mm().vmas()) {
      if (v.backing_file == kDiskStressTableLabel) {
        pid_ = p->pid();
        table_start_ = v.start;
      }
    }
  }
  NLC_CHECK_MSG(pid_ != 0, "restored container lacks the expectation table");
  file_ = env_.kernel->fs().lookup("/data/diskstress.dat");
  NLC_CHECK_MSG(file_ != 0, "restored fs lacks the diskstress file");
}

std::unique_ptr<DiskStressApp> DiskStressApp::attach_restored(
    AppEnv backup_env, const core::FailoverContext& ctx) {
  auto app = std::make_unique<DiskStressApp>(backup_env, /*seed=*/0xD15C);
  app->attach_existing(ctx.container);
  backup_env.sim->spawn(backup_env.kernel->domain(), app->run_loop());
  return app;
}

void DiskStressApp::write_slot(std::uint64_t slot, std::uint64_t seed,
                               std::uint32_t len) {
  kern::Process* p = env_.kernel->process(pid_);
  // The file write and the expectation record update happen in one
  // synchronous step (no suspension point), so every checkpoint sees them
  // together — matching a real process whose store instructions cannot be
  // split by the freezer mid-sequence without also being restored together.
  auto value = kv_value_bytes(seed, static_cast<std::uint16_t>(len));
  env_.kernel->fs().write(file_, slot * kSlotBytes, value,
                          static_cast<std::uint64_t>(env_.sim->now()));
  std::vector<std::byte> rec(kRecordBytes);
  rec[0] = std::byte{1};
  std::memcpy(rec.data() + 4, &len, 4);
  std::memcpy(rec.data() + 8, &seed, 8);
  p->mm().write(table_start_ + slot, 0, rec);
}

bool DiskStressApp::check_slot(std::uint64_t slot) {
  kern::Process* p = env_.kernel->process(pid_);
  auto rec = p->mm().read(table_start_ + slot, 0, kRecordBytes);
  if (rec[0] != std::byte{1}) return true;  // never written
  std::uint32_t len = 0;
  std::uint64_t seed = 0;
  std::memcpy(&len, rec.data() + 4, 4);
  std::memcpy(&seed, rec.data() + 8, 8);
  auto disk = env_.kernel->fs().read(file_, slot * kSlotBytes, len);
  auto expect = kv_value_bytes(seed, static_cast<std::uint16_t>(len));
  return disk == expect;
}

std::uint64_t DiskStressApp::verify_all() {
  std::uint64_t bad = 0;
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    if (!check_slot(s)) ++bad;
  }
  errors_ += bad;
  return bad;
}

sim::task<> DiskStressApp::run_loop() {
  kern::Container* cont = env_.kernel->container(cid_);
  while (running_) {
    auto slot = static_cast<std::uint64_t>(
        rng_.uniform(0, static_cast<std::int64_t>(kSlots) - 1));
    if (rng_.chance(0.7)) {
      auto len = static_cast<std::uint32_t>(rng_.uniform(1, 8192));
      if (len > kSlotBytes) len = kSlotBytes;
      write_slot(slot, rng_.next(), len);
    } else {
      if (!check_slot(slot)) ++errors_;
    }
    ++operations_;
    co_await cont->cpu().consume(60_us);
    co_await env_.sim->sleep_for(140_us);
  }
}

}  // namespace nlc::apps
