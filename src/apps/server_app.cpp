#include "apps/server_app.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::apps {

using namespace nlc::literals;

ServerApp::ServerApp(AppEnv env, AppSpec spec)
    : env_(env), spec_(std::move(spec)), rng_(env.seed) {}

void ServerApp::setup(kern::ContainerId cid) {
  cid_ = cid;
  kern::Container* cont = env_.kernel->container(cid);
  NLC_CHECK_MSG(cont != nullptr, "setup on unknown container");
  cont->cpu().set_core_limit(spec_.cores);

  std::uint64_t heap_pages =
      std::max<std::uint64_t>(1, spec_.mapped_pages /
                                     static_cast<std::uint64_t>(
                                         spec_.processes));
  for (int i = 0; i < spec_.processes; ++i) {
    kern::Process& p = env_.kernel->create_process(cid_, spec_.name);
    pids_.push_back(p.pid());
    for (int t = 0; t < spec_.threads_per_process; ++t) {
      env_.kernel->create_thread(p.pid());
    }
    kern::Vma heap = p.mm().map(heap_pages, kern::VmaKind::kAnon, kHeapLabel);
    heaps_.push_back(Region{p.pid(), heap.start, heap.npages});
    p.mm().map(64, kern::VmaKind::kStack);
    for (int f = 0; f < spec_.mmap_files; ++f) {
      env_.kernel->mmap_file(
          p.pid(), 24, "/usr/lib/lib" + std::to_string(f) + ".so");
    }
    for (int f = 0; f < spec_.plain_fds; ++f) {
      p.install_fd(kern::FdEntry{.kind = kern::FdKind::kFile,
                                 .inode = 10'000u + static_cast<unsigned>(f)});
    }
  }
  if (spec_.kv_pages > 0) {
    kern::Process& p0 = *env_.kernel->process(pids_[0]);
    kern::Vma kv = p0.mm().map(spec_.kv_pages, kern::VmaKind::kAnon,
                               kKvLabel);
    kv_ = Region{p0.pid(), kv.start, kv.npages};
  }
  if (spec_.disk_bytes_per_request > 0) {
    data_file_ = env_.kernel->fs().create("/data/" + spec_.name + ".db");
  }

  net::Endpoint ep{env_.service_ip, spec_.port};
  env_.tcp->listen(ep);
  env_.sim->spawn(env_.kernel->domain(), accept_loop(ep));
  env_.sim->spawn(env_.kernel->domain(), keepalive_loop());
  if (spec_.disk_bytes_per_request > 0) {
    env_.sim->spawn(env_.kernel->domain(), writeback_loop());
  }
}

void ServerApp::attach_existing(kern::ContainerId cid) {
  cid_ = cid;
  for (kern::Process* p : env_.kernel->container_processes(cid)) {
    // Keep-alive helper processes are rebuilt separately.
    if (p->comm != spec_.name) continue;
    pids_.push_back(p->pid());
    for (const kern::Vma& v : p->mm().vmas()) {
      if (v.backing_file == kHeapLabel) {
        heaps_.push_back(Region{p->pid(), v.start, v.npages});
      } else if (v.backing_file == kKvLabel) {
        kv_ = Region{p->pid(), v.start, v.npages};
      }
    }
  }
  NLC_CHECK_MSG(!pids_.empty(), "restored container has no app processes");
  if (spec_.disk_bytes_per_request > 0) {
    data_file_ = env_.kernel->fs().lookup("/data/" + spec_.name + ".db");
    NLC_CHECK_MSG(data_file_ != 0, "restored fs lacks the app data file");
  }
}

std::unique_ptr<ServerApp> ServerApp::attach_restored(
    AppEnv backup_env, AppSpec spec, const core::FailoverContext& ctx) {
  auto app = std::make_unique<ServerApp>(backup_env, std::move(spec));
  app->attach_existing(ctx.container);
  kern::Container* cont = backup_env.kernel->container(ctx.container);
  NLC_CHECK(cont != nullptr);
  cont->cpu().set_core_limit(app->spec_.cores);

  // Re-arm accept loops for every restored listener.
  for (const net::Endpoint& ep :
       backup_env.tcp->listeners_on_ip(backup_env.service_ip)) {
    backup_env.sim->spawn(backup_env.kernel->domain(), app->accept_loop(ep));
  }
  // Resume a handler for every repaired connection.
  for (kern::Pid pid : app->pids_) {
    kern::Process* p = backup_env.kernel->process(pid);
    for (const auto& [fd, entry] : p->fds()) {
      if (entry.kind == kern::FdKind::kSocket && entry.socket != 0 &&
          backup_env.tcp->valid(entry.socket)) {
        backup_env.sim->spawn(backup_env.kernel->domain(),
                              app->handler(pid, entry.socket, fd));
      }
    }
  }
  backup_env.sim->spawn(backup_env.kernel->domain(), app->keepalive_loop());
  if (app->spec_.disk_bytes_per_request > 0) {
    backup_env.sim->spawn(backup_env.kernel->domain(),
                          app->writeback_loop());
  }
  return app;
}

sim::task<> ServerApp::accept_loop(net::Endpoint ep) {
  while (true) {
    net::SocketId sock = co_await env_.tcp->accept(ep);
    kern::Pid pid = pids_[static_cast<std::size_t>(next_proc_) %
                          pids_.size()];
    next_proc_ = (next_proc_ + 1) % static_cast<int>(pids_.size());
    kern::Process* p = env_.kernel->process(pid);
    kern::Fd fd = p->install_fd(
        kern::FdEntry{.kind = kern::FdKind::kSocket, .socket = sock});
    env_.sim->spawn(env_.kernel->domain(), handler(pid, sock, fd));
  }
}

void ServerApp::dirty_pages(const Region& r, std::uint64_t count, Rng& rng) {
  kern::Process* p = env_.kernel->process(r.pid);
  if (p == nullptr || r.npages == 0) return;
  std::uint64_t fold = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto off = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(r.npages) - 1));
    fold = splitmix64(fold ^ off);
    p->mm().touch(r.start + off);
  }
  // One log entry summarising the whole draw sequence: the fold pins the
  // exact offsets without a per-page entry on the wire.
  if (count > 0) {
    if (kern::NondetSink* s = nondet_sink()) s->on_rng_draw(fold);
  }
}

std::shared_ptr<std::vector<std::byte>> ServerApp::apply_kv(
    const std::vector<std::byte>& payload) {
  kern::Process* p = env_.kernel->process(kv_.pid);
  NLC_CHECK_MSG(p != nullptr && kv_.npages > 0,
                "KV request against an app without a KV region");
  std::vector<KvOp> ops = kv_decode(payload);
  for (KvOp& op : ops) {
    kern::PageNum page = kv_.start + op.key % kv_.npages;
    if (op.op == KvOpType::kSet) {
      NLC_CHECK(op.len <= kPageSize - 16);
      std::vector<std::byte> cell(16 + op.len);
      std::memcpy(cell.data(), &op.len, 2);
      std::memcpy(cell.data() + 2, &op.seed, 8);
      cell[10] = std::byte{1};  // occupied
      auto value = kv_value_bytes(op.seed, op.len);
      std::copy(value.begin(), value.end(), cell.begin() + 16);
      p->mm().write(page, 0, cell);
      op.found = true;
    } else {
      auto header = p->mm().read(page, 0, 16);
      op.found = header[10] == std::byte{1};
      if (op.found) {
        std::memcpy(&op.len, header.data(), 2);
        std::memcpy(&op.seed, header.data() + 2, 8);
        auto stored = p->mm().read(page, 16, op.len);
        op.reply_seed = kv_content_hash(stored.data(), stored.size());
      }
    }
  }
  return kv_encode(ops);
}

sim::task<> ServerApp::serve_one(
    kern::Pid pid, const net::Segment& request,
    std::shared_ptr<std::vector<std::byte>>* reply,
    std::uint64_t* reply_len) {
  kern::Container* cont = env_.kernel->container(cid_);
  NLC_CHECK(cont != nullptr);
  const Region* heap = nullptr;
  for (const Region& r : heaps_) {
    if (r.pid == pid) heap = &r;
  }
  NLC_CHECK_MSG(heap != nullptr, "handler process lost its heap");

  bool heavy = false;
  if (spec_.heavy_request_fraction > 0.0) {
    heavy = rng_.chance(spec_.heavy_request_fraction);
    if (kern::NondetSink* s = nondet_sink()) {
      s->on_rng_draw(heavy ? 1 : 0);
    }
  }
  double scale = heavy ? spec_.heavy_factor : 1.0;
  Time cpu = static_cast<Time>(static_cast<double>(spec_.service_cpu) *
                               scale * dilation_);
  auto pages = static_cast<std::uint64_t>(
      static_cast<double>(spec_.pages_per_request) * scale);

  // Spread CPU and page dirtying over ~2 ms quanta so a pause lands in the
  // middle of realistic partial work.
  Time quantum = 2_ms;
  auto quanta = static_cast<std::uint64_t>((cpu + quantum - 1) / quantum);
  if (quanta == 0) quanta = 1;
  Time remaining = cpu;
  std::uint64_t pages_left = pages;
  for (std::uint64_t q = 0; q < quanta; ++q) {
    std::uint64_t chunk = pages_left / (quanta - q);
    dirty_pages(*heap, chunk, rng_);
    pages_left -= chunk;
    Time slice = std::min(remaining, quantum);
    co_await cont->cpu().consume(slice);
    remaining -= slice;
  }
  // KV mutation pages (dirtying the KV region without content, load mode).
  if (spec_.kv_writes_per_request > 0 && kv_.npages > 0 &&
      request.payload == nullptr) {
    dirty_pages(kv_, spec_.kv_writes_per_request, rng_);
  }
  // Validation mode: real content operations.
  if (request.payload != nullptr && kv_.npages > 0) {
    *reply = apply_kv(*request.payload);
    *reply_len = (*reply)->size();
  }
  // Filesystem persistence.
  if (spec_.disk_bytes_per_request > 0 && data_file_ != 0) {
    std::vector<std::byte> blob(
        static_cast<std::size_t>(
            static_cast<double>(spec_.disk_bytes_per_request) * scale),
        std::byte{0x5C});
    std::uint64_t off = disk_cursor_ % kDataFileBytes;
    disk_cursor_ += blob.size();
    env_.kernel->fs().write(data_file_, off, blob,
                            static_cast<std::uint64_t>(env_.sim->now()));
  }
}

sim::task<> ServerApp::handler(kern::Pid pid, net::SocketId sock,
                               kern::Fd fd) {
  while (true) {
    auto request = co_await env_.tcp->peek(sock);
    if (!request.has_value()) break;  // peer closed or connection reset

    std::shared_ptr<std::vector<std::byte>> reply;
    std::uint64_t reply_len = spec_.response_bytes;
    co_await serve_one(pid, *request, &reply, &reply_len);

    // Commit point: drop the request from the (checkpointed) read queue
    // and emit the response in the same quiescent step. The log entry
    // pins this request's identity and consumption order (DESIGN.md §14).
    if (kern::NondetSink* s = nondet_sink()) {
      s->on_net_input(sock, request->tag,
                      request->payload != nullptr
                          ? kv_content_hash(request->payload->data(),
                                            request->payload->size())
                          : 0);
    }
    env_.tcp->consume(sock);
    env_.tcp->send(sock, static_cast<std::uint32_t>(reply_len),
                   request->tag, std::move(reply));
    ++requests_completed_;
  }
  if (kern::Process* p = env_.kernel->process(pid)) p->close_fd(fd);
}

sim::task<> ServerApp::keepalive_loop() {
  // §IV: a tiny process wakes every 30 ms and executes ~1000 instructions
  // so cpuacct.usage keeps increasing while the service is idle.
  kern::Process& ka = env_.kernel->create_process(cid_, "keepalive");
  ka.mm().map(4, kern::VmaKind::kAnon);
  kern::Container* cont = env_.kernel->container(cid_);
  std::uint64_t ticks = 0;
  while (true) {
    co_await env_.sim->sleep_for(30_ms);
    if (kern::NondetSink* s = nondet_sink()) s->on_timer(0, ticks);
    ++ticks;
    co_await cont->cpu().consume(nlc::nanoseconds(400));
  }
}

sim::task<> ServerApp::writeback_loop() {
  std::uint64_t ticks = 0;
  while (true) {
    co_await env_.sim->sleep_for(100_ms);
    if (kern::NondetSink* s = nondet_sink()) s->on_timer(1, ticks);
    ++ticks;
    env_.kernel->fs().writeback(512);
  }
}

}  // namespace nlc::apps
