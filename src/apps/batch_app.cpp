#include "apps/batch_app.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace nlc::apps {

using namespace nlc::literals;

namespace {
constexpr const char* kProgressLabel = "[progress]";
}

BatchApp::BatchApp(AppEnv env, AppSpec spec)
    : env_(env), spec_(std::move(spec)) {}

void BatchApp::setup(kern::ContainerId cid) {
  cid_ = cid;
  all_done_ = std::make_unique<sim::Event>(*env_.sim);
  kern::Container* cont = env_.kernel->container(cid);
  NLC_CHECK(cont != nullptr);
  cont->cpu().set_core_limit(spec_.cores);

  kern::Process& p = env_.kernel->create_process(cid_, spec_.name);
  int threads = spec_.threads_per_process;
  NLC_CHECK(threads >= 1);
  for (int t = 1; t < threads; ++t) env_.kernel->create_thread(p.pid());
  for (int f = 0; f < spec_.mmap_files; ++f) {
    env_.kernel->mmap_file(p.pid(), 24,
                           "/usr/lib/lib" + std::to_string(f) + ".so");
  }
  p.mm().map(64, kern::VmaKind::kStack);

  std::uint64_t slice =
      std::max<std::uint64_t>(1, spec_.mapped_pages /
                                     static_cast<std::uint64_t>(threads));
  workers_ = threads;
  pid_ = p.pid();
  for (int t = 0; t < threads; ++t) {
    kern::Vma region = p.mm().map(slice, kern::VmaKind::kAnon, kHeapLabel);
    regions_.emplace_back(region.start, region.npages);
  }
  // One progress page per worker: completed work is recorded in
  // checkpointed memory so a restored run resumes where the committed
  // state left off (and validation can audit total work).
  kern::Vma progress = p.mm().map(static_cast<std::uint64_t>(threads),
                                  kern::VmaKind::kAnon, kProgressLabel);
  progress_start_ = progress.start;
  env_.sim->spawn(env_.kernel->domain(), keepalive_loop());
}

void BatchApp::start() {
  start_time_ = env_.sim->now();
  for (std::size_t t = 0; t < regions_.size(); ++t) {
    env_.sim->spawn(env_.kernel->domain(),
                    worker(pid_, regions_[t].first, regions_[t].second,
                           static_cast<std::uint64_t>(t), 0));
  }
}

void BatchApp::attach_existing(kern::ContainerId cid) {
  cid_ = cid;
  for (kern::Process* p : env_.kernel->container_processes(cid)) {
    if (p->comm != spec_.name) continue;
    pid_ = p->pid();
    for (const kern::Vma& v : p->mm().vmas()) {
      if (v.backing_file == kHeapLabel) {
        regions_.emplace_back(v.start, v.npages);
      } else if (v.backing_file == kProgressLabel) {
        progress_start_ = v.start;
      }
    }
  }
  NLC_CHECK_MSG(pid_ != 0 && progress_start_ != 0,
                "restored container lacks the batch app layout");
}

std::unique_ptr<BatchApp> BatchApp::attach_restored(
    AppEnv backup_env, AppSpec spec, const core::FailoverContext& ctx) {
  auto app = std::make_unique<BatchApp>(backup_env, std::move(spec));
  app->all_done_ = std::make_unique<sim::Event>(*backup_env.sim);
  app->attach_existing(ctx.container);
  kern::Container* cont = backup_env.kernel->container(ctx.container);
  NLC_CHECK(cont != nullptr);
  cont->cpu().set_core_limit(app->spec_.cores);
  app->workers_ = static_cast<int>(app->regions_.size());
  app->start_time_ = backup_env.sim->now();
  kern::Process* p = backup_env.kernel->process(app->pid_);
  for (std::size_t t = 0; t < app->regions_.size(); ++t) {
    // Resume from the committed progress (work since the last committed
    // checkpoint is re-executed, exactly like the paper's restored run).
    auto rec = p->mm().read(app->progress_start_ + t, 0, 8);
    Time done = 0;
    std::memcpy(&done, rec.data(), 8);
    backup_env.sim->spawn(
        backup_env.kernel->domain(),
        app->worker(app->pid_, app->regions_[t].first,
                    app->regions_[t].second, static_cast<std::uint64_t>(t),
                    done));
  }
  backup_env.sim->spawn(backup_env.kernel->domain(), app->keepalive_loop());
  return app;
}

Time BatchApp::recorded_progress() const {
  kern::Process* p = env_.kernel->process(pid_);
  if (p == nullptr || progress_start_ == 0) return 0;
  Time total = 0;
  for (std::size_t t = 0; t < regions_.size(); ++t) {
    auto rec = p->mm().read(progress_start_ + t, 0, 8);
    Time done = 0;
    std::memcpy(&done, rec.data(), 8);
    total += done;
  }
  return total;
}

sim::task<> BatchApp::worker(kern::Pid pid, kern::PageNum region_start,
                             std::uint64_t region_pages, std::uint64_t salt,
                             Time already_done) {
  kern::Container* cont = env_.kernel->container(cid_);
  kern::Process* p = env_.kernel->process(pid);
  kern::PageNum progress_page = progress_start_ + salt;
  Time done_work = already_done;
  std::uint64_t cursor = splitmix64(salt) % region_pages;
  while (done_work < spec_.batch_cpu_per_thread) {
    for (std::uint64_t i = 0; i < spec_.pages_per_quantum; ++i) {
      p->mm().touch(region_start + cursor);
      cursor = (cursor + 1) % region_pages;
    }
    Time q = std::min(spec_.batch_quantum,
                      spec_.batch_cpu_per_thread - done_work);
    co_await cont->cpu().consume(
        static_cast<Time>(static_cast<double>(q) * dilation_));
    done_work += q;
    std::vector<std::byte> rec(8);
    std::memcpy(rec.data(), &done_work, 8);
    p->mm().write(progress_page, 0, rec);
  }
  ++finished_;
  if (finished_ == workers_) {
    done_time_ = env_.sim->now();
    all_done_->set();
  }
}

sim::task<> BatchApp::wait_done() { co_await all_done_->wait(); }

sim::task<> BatchApp::keepalive_loop() {
  kern::Process& ka = env_.kernel->create_process(cid_, "keepalive");
  ka.mm().map(4, kern::VmaKind::kAnon);
  kern::Container* cont = env_.kernel->container(cid_);
  while (true) {
    co_await env_.sim->sleep_for(30_ms);
    co_await cont->cpu().consume(nlc::nanoseconds(400));
  }
}

}  // namespace nlc::apps
