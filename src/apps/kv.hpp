// Key-value request codec shared by the KV apps (Redis/SSDB models) and
// the validation clients.
//
// A request payload is a sequence of operations; values are generated
// deterministically from a seed so the client can verify a GET response
// against what it previously SET without storing the bytes itself. One key
// maps to one page in the app's KV region, so SET/GET traffic exercises
// the real content-page checkpoint path.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nlc::apps {

enum class KvOpType : std::uint8_t { kSet = 1, kGet = 2 };

struct KvOp {
  KvOpType op = KvOpType::kSet;
  std::uint32_t key = 0;
  std::uint64_t seed = 0;   // value generator seed (kSet)
  std::uint16_t len = 0;    // value length (kSet), or result length (reply)
  bool found = false;       // reply: key existed
  std::uint64_t reply_seed = 0;  // reply to kGet: stored seed echoed back
};

inline constexpr std::size_t kKvOpWireSize = 24;

/// Deterministic value byte at position i for a (seed, len) value.
inline std::byte kv_value_byte(std::uint64_t seed, std::uint32_t i) {
  return static_cast<std::byte>(splitmix64(seed + i / 8) >> ((i % 8) * 8));
}

inline std::vector<std::byte> kv_value_bytes(std::uint64_t seed,
                                             std::uint16_t len) {
  std::vector<std::byte> out(len);
  for (std::uint32_t i = 0; i < len; ++i) out[i] = kv_value_byte(seed, i);
  return out;
}

/// FNV-1a over a byte range; used to verify that GET responses reflect
/// bytes that really round-tripped through checkpoint/restore.
inline std::uint64_t kv_content_hash(const std::byte* data,
                                     std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::shared_ptr<std::vector<std::byte>> kv_encode(
    const std::vector<KvOp>& ops) {
  auto buf = std::make_shared<std::vector<std::byte>>(ops.size() *
                                                      kKvOpWireSize);
  std::byte* p = buf->data();
  for (const KvOp& op : ops) {
    std::uint8_t t = static_cast<std::uint8_t>(op.op);
    std::uint8_t f = op.found ? 1 : 0;
    std::memcpy(p, &t, 1);
    std::memcpy(p + 1, &f, 1);
    std::memcpy(p + 2, &op.len, 2);
    std::memcpy(p + 4, &op.key, 4);
    std::memcpy(p + 8, &op.seed, 8);
    std::memcpy(p + 16, &op.reply_seed, 8);
    p += kKvOpWireSize;
  }
  return buf;
}

inline std::vector<KvOp> kv_decode(const std::vector<std::byte>& buf) {
  NLC_CHECK_MSG(buf.size() % kKvOpWireSize == 0, "corrupt KV payload");
  std::vector<KvOp> ops(buf.size() / kKvOpWireSize);
  const std::byte* p = buf.data();
  for (KvOp& op : ops) {
    std::uint8_t t = 0, f = 0;
    std::memcpy(&t, p, 1);
    std::memcpy(&f, p + 1, 1);
    std::memcpy(&op.len, p + 2, 2);
    std::memcpy(&op.key, p + 4, 4);
    std::memcpy(&op.seed, p + 8, 8);
    std::memcpy(&op.reply_seed, p + 16, 8);
    op.op = static_cast<KvOpType>(t);
    op.found = f != 0;
    p += kKvOpWireSize;
  }
  return ops;
}

}  // namespace nlc::apps
