// The first §VII-A validation microbenchmark: stresses the disk, the
// file-system cache (DNC path) and heap memory together.
//
// The app keeps an expectation table in heap *content* pages — one slot per
// page recording (length, seed) of the last write to that slot's file
// range — and continuously writes deterministic byte strings of random
// length (1..8192) to random slots, reading slots back and verifying as it
// goes. Because both the table (memory checkpoint) and the file data (DNC +
// DRBD) are checkpointed, a failover to an inconsistent combination of
// memory/file-cache/disk state is caught by verify_all(): the table and the
// file must come from the same committed epoch.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/server_app.hpp"  // AppEnv
#include "core/backup_agent.hpp"
#include "kernel/kernel.hpp"
#include "util/rng.hpp"

namespace nlc::apps {

inline constexpr const char* kDiskStressTableLabel = "[expect-table]";

class DiskStressApp {
 public:
  DiskStressApp(AppEnv env, std::uint64_t seed);

  /// Builds the process, expectation table and data file, and starts the
  /// write/read loop.
  void setup(kern::ContainerId cid);

  /// Rebuilds around a restored container and immediately verifies every
  /// occupied slot against the restored file system.
  static std::unique_ptr<DiskStressApp> attach_restored(
      AppEnv backup_env, const core::FailoverContext& ctx);

  /// Re-reads every occupied slot and compares with the expectation table.
  /// Returns the number of mismatches (0 = consistent).
  std::uint64_t verify_all();

  std::uint64_t operations() const { return operations_; }
  std::uint64_t errors() const { return errors_; }
  void stop() { running_ = false; }

  static constexpr std::uint64_t kSlots = 256;
  static constexpr std::uint64_t kSlotBytes = 8192;

 private:
  sim::task<> run_loop();
  void write_slot(std::uint64_t slot, std::uint64_t seed, std::uint32_t len);
  bool check_slot(std::uint64_t slot);
  void attach_existing(kern::ContainerId cid);

  AppEnv env_;
  kern::ContainerId cid_ = kern::kNoContainer;
  kern::Pid pid_ = 0;
  kern::PageNum table_start_ = 0;
  kern::InodeNum file_ = 0;
  Rng rng_;
  bool running_ = true;
  std::uint64_t operations_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace nlc::apps
