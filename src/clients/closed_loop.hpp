// Closed-loop client population: N connections, one outstanding request
// each (the YCSB/hiredis batch clients and the SIEGE web clients of §VI).
//
// In KV-validation mode each connection owns a disjoint key range and
// attaches real operation payloads; GET replies carry a content hash of
// the server's stored bytes, which the client checks against the value it
// previously wrote — across failovers. Because requests alternate with
// responses and NiLiCon releases output only after the backing state
// committed, the client's expectation map is always consistent with any
// state the service can resume from (DESIGN.md §5.4).
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "apps/kv.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nlc::clients {

struct ClientConfig {
  net::IpAddr local_ip = 0;
  net::IpAddr server_ip = 0;
  net::Port port = 80;
  int connections = 1;
  /// Requests in flight per connection. NiLiCon's output commit delays
  /// every response by up to an epoch; a driver that wants to saturate the
  /// server must keep several requests outstanding (the paper's YCSB
  /// batcher streams continuously).
  int pipeline = 1;
  std::uint64_t request_bytes = 200;
  Time think_time = 0;

  // KV-validation mode.
  bool kv_mode = false;
  int kv_ops_per_request = 16;
  std::uint32_t keys_per_connection = 256;
  double set_fraction = 0.5;
  std::uint16_t value_len = 900;
};

class ClosedLoopClient {
 public:
  ClosedLoopClient(sim::Simulation& s, sim::DomainPtr domain,
                   net::TcpStack& tcp, ClientConfig cfg, std::uint64_t seed);

  /// Spawns all connections.
  void start();
  /// Stops issuing new requests (in-flight ones finish).
  void stop() { running_ = false; }
  /// Completes when every connection finished its handshake.
  sim::task<> wait_connected();

  std::uint64_t completed() const { return completed_; }
  std::uint64_t kv_errors() const { return kv_errors_; }
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  std::uint64_t broken_connections() const { return broken_; }
  const Samples& latencies_ms() const { return latencies_; }
  /// (send time, latency) per request — recovery benches scan this for the
  /// interruption spike.
  const std::vector<std::pair<Time, Time>>& latency_trace() const {
    return trace_;
  }
  /// Throughput over [from, to) in requests/second.
  double throughput(Time from, Time to) const;

 private:
  struct Pending {
    std::uint64_t tag;
    Time sent_at;
    std::vector<apps::KvOp> expected;  // kv mode: expectations per op
  };
  sim::task<> connection(int index);
  void verify_reply(const net::Segment& reply, const Pending& p);

  sim::Simulation* sim_;
  sim::DomainPtr domain_;
  net::TcpStack* tcp_;
  ClientConfig cfg_;
  Rng rng_;
  bool running_ = true;
  std::uint64_t next_tag_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t kv_errors_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t broken_ = 0;
  Samples latencies_;
  std::vector<std::pair<Time, Time>> trace_;
  std::unique_ptr<sim::WaitGroup> connected_;
};

}  // namespace nlc::clients
