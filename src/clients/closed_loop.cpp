#include "clients/closed_loop.hpp"

#include <deque>

#include "util/assert.hpp"

namespace nlc::clients {

using apps::KvOp;
using apps::KvOpType;

ClosedLoopClient::ClosedLoopClient(sim::Simulation& s, sim::DomainPtr domain,
                                   net::TcpStack& tcp, ClientConfig cfg,
                                   std::uint64_t seed)
    : sim_(&s), domain_(std::move(domain)), tcp_(&tcp), cfg_(cfg),
      rng_(seed), connected_(std::make_unique<sim::WaitGroup>(s)) {}

void ClosedLoopClient::start() {
  connected_->add(cfg_.connections);
  for (int i = 0; i < cfg_.connections; ++i) {
    sim_->spawn(domain_, connection(i));
  }
}

sim::task<> ClosedLoopClient::wait_connected() {
  co_await connected_->wait();
}

double ClosedLoopClient::throughput(Time from, Time to) const {
  NLC_CHECK(to > from);
  std::uint64_t n = 0;
  for (const auto& [sent, lat] : trace_) {
    Time done = sent + lat;
    if (done >= from && done < to) ++n;
  }
  return static_cast<double>(n) / to_seconds(to - from);
}

void ClosedLoopClient::verify_reply(const net::Segment& reply,
                                    const Pending& p) {
  if (!cfg_.kv_mode) return;
  if (reply.payload == nullptr) {
    ++kv_errors_;
    return;
  }
  std::vector<KvOp> replies = apps::kv_decode(*reply.payload);
  if (replies.size() != p.expected.size()) {
    ++kv_errors_;
    return;
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const KvOp& want = p.expected[i];
    const KvOp& got = replies[i];
    if (want.op != KvOpType::kGet) continue;
    if (got.found != want.found) {
      ++kv_errors_;
      continue;
    }
    if (!want.found) continue;
    auto expect_bytes = apps::kv_value_bytes(want.seed, want.len);
    std::uint64_t expect_hash =
        apps::kv_content_hash(expect_bytes.data(), expect_bytes.size());
    if (got.reply_seed != expect_hash || got.len != want.len) {
      ++kv_errors_;
    }
  }
}

sim::task<> ClosedLoopClient::connection(int index) {
  Rng rng = rng_.split(static_cast<std::uint64_t>(index));
  net::SocketId sock =
      co_await tcp_->connect(cfg_.local_ip, {cfg_.server_ip, cfg_.port});
  if (sock == 0) {
    ++broken_;
    connected_->done();
    co_return;
  }
  connected_->done();

  // Per-connection expectation map: key -> (seed, len) of the last SET
  // composed on this connection (disjoint key ranges per connection, and
  // requests are processed in order, so compose-time expectations hold).
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint16_t>> expect;
  std::uint32_t key_base =
      static_cast<std::uint32_t>(index) * cfg_.keys_per_connection;
  std::deque<Pending> outstanding;

  auto compose_and_send = [&] {
    Pending p;
    p.tag = next_tag_++;
    p.sent_at = sim_->now();
    std::shared_ptr<std::vector<std::byte>> payload;
    std::uint64_t req_len = cfg_.request_bytes;
    if (cfg_.kv_mode) {
      std::vector<KvOp> ops;
      for (int i = 0; i < cfg_.kv_ops_per_request; ++i) {
        KvOp op;
        op.key = key_base + static_cast<std::uint32_t>(rng.uniform(
                                0, cfg_.keys_per_connection - 1));
        if (rng.chance(cfg_.set_fraction)) {
          op.op = KvOpType::kSet;
          op.seed = rng.next();
          op.len = cfg_.value_len;
          expect[op.key] = {op.seed, op.len};
        } else {
          op.op = KvOpType::kGet;
        }
        ops.push_back(op);
        KvOp snap = op;
        if (op.op == KvOpType::kGet) {
          auto it = expect.find(op.key);
          if (it != expect.end()) {
            snap.found = true;
            snap.seed = it->second.first;
            snap.len = it->second.second;
          } else {
            snap.found = false;
          }
        }
        p.expected.push_back(snap);
      }
      payload = apps::kv_encode(ops);
      req_len = payload->size();
    }
    tcp_->send(sock, static_cast<std::uint32_t>(req_len), p.tag, payload);
    outstanding.push_back(std::move(p));
  };

  while (running_) {
    while (running_ &&
           outstanding.size() < static_cast<std::size_t>(cfg_.pipeline)) {
      compose_and_send();
    }
    auto reply = co_await tcp_->recv(sock);
    if (!reply.has_value()) {
      ++broken_;
      co_return;
    }
    NLC_CHECK(!outstanding.empty());
    Pending p = std::move(outstanding.front());
    outstanding.pop_front();
    if (reply->tag != p.tag) {
      ++protocol_errors_;
      continue;
    }
    Time lat = sim_->now() - p.sent_at;
    latencies_.add(to_millis(lat));
    trace_.emplace_back(p.sent_at, lat);
    ++completed_;
    verify_reply(*reply, p);
    if (cfg_.think_time > 0) co_await sim_->sleep_for(cfg_.think_time);
  }
  // Drain whatever is still in flight so latency accounting stays sane.
  while (!outstanding.empty()) {
    auto reply = co_await tcp_->recv(sock);
    if (!reply.has_value()) break;
    Pending p = std::move(outstanding.front());
    outstanding.pop_front();
    if (reply->tag != p.tag) continue;
    Time lat = sim_->now() - p.sent_at;
    latencies_.add(to_millis(lat));
    trace_.emplace_back(p.sent_at, lat);
    ++completed_;
    verify_reply(*reply, p);
  }
}

}  // namespace nlc::clients
