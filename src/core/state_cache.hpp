// Cache of infrequently-modified in-kernel container state (§V-B).
//
// The most effective NiLiCon optimization: control groups, namespaces,
// mount points, device files and memory-mapped files rarely change, so the
// agent caches their harvested form and replays it into each checkpoint.
// A kernel module hooks (via ftrace) every code path that can mutate them;
// when a hook fires for the protected container the cache is invalidated
// and the next checkpoint re-harvests.
//
// Like the paper's research prototype, the hook set covers the common
// mutation paths; the version counter double-checks staleness at use time,
// so a missed hook degrades cost, never correctness.
#pragma once

#include <optional>

#include "criu/checkpoint.hpp"
#include "kernel/kernel.hpp"

namespace nlc::core {

class InfrequentStateCache {
 public:
  InfrequentStateCache(kern::Kernel& k, kern::ContainerId cid)
      : kernel_(&k), cid_(cid) {
    attach_hooks();
  }

  /// The cached snapshot, or nullptr when invalid (checkpoint engine then
  /// harvests afresh).
  const criu::InfrequentState* get() const {
    if (!cached_.has_value()) return nullptr;
    return &*cached_;
  }

  /// Installs a fresh harvest into the cache.
  void update(criu::InfrequentState st) { cached_ = std::move(st); }

  void invalidate() {
    cached_.reset();
    ++invalidations_;
  }

  bool valid() const { return cached_.has_value(); }
  std::uint64_t invalidations() const { return invalidations_; }

 private:
  void attach_hooks() {
    // The kernel functions NiLiCon's module instruments (§V-B).
    static constexpr const char* kHookTargets[] = {
        "do_mount",       "do_umount", "setns",
        "cgroup_attach_task", "mknod", "mmap_region",
        "create_new_namespaces",
    };
    for (const char* fn : kHookTargets) {
      kernel_->ftrace().attach(fn, [this](const kern::TraceEvent& ev) {
        // The hook checks the calling thread's container (§V-B): events
        // from other containers don't invalidate this cache.
        if (ev.container == cid_) invalidate();
      });
    }
  }

  kern::Kernel* kernel_;
  kern::ContainerId cid_;
  std::optional<criu::InfrequentState> cached_;
  std::uint64_t invalidations_ = 0;
};

}  // namespace nlc::core
