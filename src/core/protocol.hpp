// Messages between the primary and backup agents on the dedicated
// replication link.
#pragma once

#include <cstdint>

#include "criu/image.hpp"
#include "net/channel.hpp"
#include "util/time.hpp"

namespace nlc::core {

struct EpochStateMsg {
  std::uint64_t epoch = 0;
  criu::CheckpointImage image;
  std::uint64_t wire_bytes = 0;
  /// Content pages run through the delta encoder (0 when compression off);
  /// the primary charges encode cost, the backup decode cost, per page.
  std::uint64_t compressed_pages = 0;
};

struct AckMsg {
  std::uint64_t epoch = 0;
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
  Time sent_at = 0;
};

using StateChannel = net::Channel<EpochStateMsg>;
using AckChannel = net::Channel<AckMsg>;
using HeartbeatChannel = net::Channel<HeartbeatMsg>;

/// Number of read()-sized chunks the state of one epoch arrives in at the
/// backup. Page data streams in 64 KiB chunks; TCP socket state arrives in
/// small per-queue pieces (~512 B), which is why socket-heavy workloads
/// (Node) burn more backup CPU than page-heavy ones of equal size
/// (Table V discussion).
inline std::uint64_t chunk_count(const criu::CheckpointImage& img) {
  auto ceil_div = [](std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
  };
  std::uint64_t n = 2;  // header + trailer
  // Delta-compressed pages stream fewer bytes, hence fewer reads.
  n += ceil_div(img.page_wire_bytes(), 64 * nlc::kKiB);
  n += ceil_div(img.socket_bytes(), 512);
  n += img.processes.size();
  n += ceil_div(img.fs_cache.byte_size(), 4 * nlc::kKiB);
  return n;
}

}  // namespace nlc::core
