// Messages between the primary and backup agents on the dedicated
// replication link.
#pragma once

#include <cstdint>
#include <vector>

#include "criu/image.hpp"
#include "net/channel.hpp"
#include "net/tcp.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace nlc::core {

// ---------------------------------------------------------------------------
// Nondeterministic-event log (DESIGN.md §14, commit_mode = kReplay)

/// Taxonomy of nondeterminism the container app observes. Everything the
/// backup needs to re-reach the primary's released-output point is one of:
enum class NdEventType : std::uint8_t {
  kNetInput,  ///< a request was consumed from a socket (ordering + content)
  kTimer,     ///< a periodic app timer fired (keepalive, writeback)
  kRngDraw,   ///< the app observed a seeded-RNG outcome
};

/// One logged event. Field meaning by type:
///   kNetInput: a = socket id, b = request tag, c = payload content hash
///   kTimer:    a = timer id,  b = firing sequence number, c = 0
///   kRngDraw:  a = folded draw value, b = 0, c = 0
struct NdEvent {
  NdEventType type = NdEventType::kNetInput;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Seed of every event chain; also the fingerprint of an empty log.
inline constexpr std::uint64_t kNdChainSeed = 0x6e69'4c69'436f'6e21ull;

inline constexpr std::uint64_t nd_entry_hash(const NdEvent& e) {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(e.type));
  h = splitmix64(h ^ e.a);
  h = splitmix64(h ^ e.b);
  return splitmix64(h ^ e.c);
}

/// Chain fold: fp' = mix(fp ^ hash(event)). Order-sensitive, so two logs
/// with equal fingerprints recorded the same events in the same order —
/// the sim's byte-identical-state evidence for replay equivalence.
inline constexpr std::uint64_t nd_chain_fold(std::uint64_t fp,
                                             const NdEvent& e) {
  return splitmix64(fp ^ nd_entry_hash(e));
}

/// Payload sidecar of a kNetInput entry: the received segment itself,
/// addressed by connection tuple (stable across failover, unlike socket
/// ids). This is what makes the log *functional*, not just evidence — at
/// failover the backup re-injects every retained input the restored
/// checkpoint does not already contain, so a client whose request was
/// TCP-acked after the checkpoint (the ack released on a log ack) never
/// needs to retransmit data the new primary has never seen.
struct NetInputRec {
  std::uint64_t entry_index = 0;  ///< position of the entry on the chain
  net::Endpoint local;
  net::Endpoint remote;
  net::Segment seg;
};

/// One shipped slice of the event log. Segments partition the chain:
/// entries [start_index, start_index + entries.size()) fold start_fp into
/// end_fp. The backup validates both the fold and the continuity against
/// its accepted prefix before acknowledging.
struct LogSegmentMsg {
  std::uint64_t seq = 0;
  std::uint64_t start_index = 0;
  std::uint64_t start_fp = kNdChainSeed;
  std::uint64_t end_fp = kNdChainSeed;
  std::vector<NdEvent> entries;
  /// Sidecars for this slice's kNetInput entries, in chain order.
  std::vector<NetInputRec> inputs;
};

struct LogAckMsg {
  std::uint64_t seq = 0;
};

/// Wire model: fixed header (seq, index, two fingerprints, length) plus a
/// packed 26-byte entry (type byte + three varint-packed operands), plus
/// each net-input sidecar's tuple header and payload bytes. Still orders
/// of magnitude below the page delta for request/response workloads —
/// that asymmetry is the whole point.
inline constexpr std::uint64_t kLogSegmentHeaderWire = 40;
inline constexpr std::uint64_t kLogEntryWire = 26;
inline constexpr std::uint64_t kLogInputHeaderWire = 16;

inline std::uint64_t log_segment_wire_bytes(const LogSegmentMsg& m) {
  std::uint64_t n = kLogSegmentHeaderWire + kLogEntryWire * m.entries.size();
  for (const NetInputRec& in : m.inputs) {
    n += kLogInputHeaderWire + in.seg.len;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Epoch state

struct EpochStateMsg {
  std::uint64_t epoch = 0;
  criu::CheckpointImage image;
  std::uint64_t wire_bytes = 0;
  /// Content pages run through the delta encoder (0 when compression off);
  /// the primary charges encode cost, the backup decode cost, per page.
  std::uint64_t compressed_pages = 0;
  /// Event-log position at the instant this checkpoint was cut (replay
  /// mode): count and chain fingerprint of every event whose effect is
  /// already inside the image. Failover replays only what follows.
  std::uint64_t nd_entries = 0;
  std::uint64_t nd_fp = kNdChainSeed;
  /// Execute-phase length the epoch ran (adaptive controller, DESIGN.md
  /// §15). Observability for the backup: it sizes nothing off this today,
  /// but records the primary's current cadence so operators (and tests)
  /// can see adaptation from either end of the wire.
  Time epoch_len = 0;
};

struct AckMsg {
  std::uint64_t epoch = 0;
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
  Time sent_at = 0;
};

using StateChannel = net::Channel<EpochStateMsg>;
using AckChannel = net::Channel<AckMsg>;
using HeartbeatChannel = net::Channel<HeartbeatMsg>;
using LogChannel = net::Channel<LogSegmentMsg>;
using LogAckChannel = net::Channel<LogAckMsg>;

/// Number of read()-sized chunks the state of one epoch arrives in at the
/// backup. Page data streams in 64 KiB chunks; TCP socket state arrives in
/// small per-queue pieces (~512 B), which is why socket-heavy workloads
/// (Node) burn more backup CPU than page-heavy ones of equal size
/// (Table V discussion).
inline std::uint64_t chunk_count(const criu::CheckpointImage& img) {
  auto ceil_div = [](std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
  };
  std::uint64_t n = 2;  // header + trailer
  // Delta-compressed pages stream fewer bytes, hence fewer reads.
  n += ceil_div(img.page_wire_bytes(), 64 * nlc::kKiB);
  n += ceil_div(img.socket_bytes(), 512);
  n += img.processes.size();
  n += ceil_div(img.fs_cache.byte_size(), 4 * nlc::kKiB);
  return n;
}

}  // namespace nlc::core
