#include "core/promotion.hpp"

#include <tuple>

#include "core/backup_agent.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace nlc::core {

void PromotionArbiter::report(int reporter) {
  NLC_CHECK(reporter >= 0 &&
            reporter < static_cast<int>(replicas_.size()));
  ++reports_;
  if (closed_) return;
  // The closer runs under the reporter's domain: if this reporter dies
  // while the election is open its closer dies with it, and another
  // reporter's closer closes the election instead.
  sim_->spawn(replicas_[static_cast<std::size_t>(reporter)].domain,
              close_election());
}

sim::task<> PromotionArbiter::close_election() {
  // Hold the election open long enough for every surviving watchdog to
  // report (their miss counters run on the same heartbeat clock, so two
  // intervals bound the spread).
  co_await sim_->sleep_for(2 * opts_.heartbeat_interval);
  if (closed_) co_return;  // another reporter's closer won the race
  closed_ = true;

  std::vector<PromotionCandidate> candidates;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Entry& e = replicas_[i];
    if (!e.domain->alive()) continue;  // died with (or after) the primary
    candidates.push_back(PromotionCandidate{
        static_cast<int>(i), e.agent->any_ack_sent(),
        e.agent->acked_epoch(), e.agent->committed_nd_entries()});
  }
  NLC_CHECK_MSG(!candidates.empty(), "election with no surviving replica");

  // Most caught-up replica wins: the acked cursor first (it bounds every
  // epoch output may have been released for — a quorum needs K acks and
  // the winner's cursor is the max, so nothing released is lost), the
  // accepted log prefix as the replay-mode tiebreak, lowest index last
  // (deterministic).
  const PromotionCandidate* best = &candidates.front();
  for (const PromotionCandidate& c : candidates) {
    if (std::tuple(c.any_ack, c.acked_epoch, c.committed_nd_entries,
                   -c.index) > std::tuple(best->any_ack, best->acked_epoch,
                                          best->committed_nd_entries,
                                          -best->index)) {
      best = &c;
    }
  }
  winner_ = best->index;

  Entry& w = replicas_[static_cast<std::size_t>(winner_)];
  w.agent->note_promoted(winner_);
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kDetector, trace::Stage::kPromote,
                    sim_->now(), static_cast<std::uint64_t>(winner_));
  }
  if (on_promoted_) on_promoted_(winner_, candidates);
  w.agent->promote();
  // Re-silvering runs under the winner's domain: it is the new primary's
  // responsibility, and dies with it.
  sim_->spawn(w.domain, resilver_survivors());
}

sim::task<> PromotionArbiter::resilver_survivors() {
  Entry& w = replicas_[static_cast<std::size_t>(winner_)];
  // The winner's committed stores are frozen (and consistent) only once
  // its restore has finished; poll on the heartbeat clock.
  while (!w.agent->recovered()) {
    co_await sim_->sleep_for(opts_.heartbeat_interval);
  }
  // Sequential full-state catch-up of each survivor, metered on the shared
  // replication link (they would contend there anyway; sequential is the
  // conservative model and keeps the transfers deterministic).
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Entry& s = replicas_[i];
    if (static_cast<int>(i) == winner_ || !s.domain->alive()) continue;
    const std::uint64_t bytes =
        w.agent->page_store().page_count() * nlc::kPageSize;
    const Time xfer =
        resilver_latency_ +
        static_cast<Time>(static_cast<double>(bytes) * 8.0 /
                          resilver_bps_ * 1e9);
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kResilver,
                         sim_->now(), static_cast<std::uint64_t>(i));
    }
    co_await sim_->sleep_for(xfer);
    s.agent->adopt_resilver(*w.agent);
    w.agent->record_resilver(bytes, xfer);
    ++resilvered_;
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kResilver,
                       sim_->now(), static_cast<std::uint64_t>(i));
    }
  }
}

}  // namespace nlc::core
