// Promotion arbiter for N-way replication (DESIGN.md §16).
//
// With a single backup, the watchdog that detects the primary's death IS
// the failover decision. With N replicas each watchdog only *reports* the
// detection here; the arbiter holds the election open for two heartbeat
// intervals (long enough for every surviving watchdog to weigh in), then
// promotes the most caught-up live replica — the one whose acked cursor is
// highest, i.e. whose committed-or-in-flight state covers every epoch a
// quorum may have released output for. After the winner's restore
// completes, the survivors are re-silvered: each receives a full-state
// copy of the winner's committed stores, metered on the shared
// replication link.
//
// The sim has no real consensus protocol underneath this (the model is
// fail-stop hosts on a reliable fabric, not partitions); the arbiter is
// the simulation stand-in for the leader-election piece a production
// deployment would run, and the invariant it must uphold — promote a
// replica whose cursor is >= every other live cursor — is what the
// auditor mirrors.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/options.hpp"
#include "sim/simulation.hpp"
#include "trace/recorder.hpp"
#include "util/time.hpp"

namespace nlc::core {

class BackupAgent;

/// One replica's election key as sampled at election close; handed to the
/// audit hook so the checker can independently re-run the election.
struct PromotionCandidate {
  int index = 0;
  bool any_ack = false;
  std::uint64_t acked_epoch = 0;
  std::uint64_t committed_nd_entries = 0;
};

class PromotionArbiter {
 public:
  PromotionArbiter(Options opts, sim::Simulation& sim)
      : opts_(opts), sim_(&sim) {}

  /// Registers one replica (call in replica-index order, before start).
  void register_replica(BackupAgent& agent, sim::DomainPtr domain) {
    replicas_.push_back(Entry{&agent, std::move(domain)});
  }

  /// Parameters of the link the re-silver transfers are metered on (the
  /// shared replication NIC).
  void set_resilver_link(double bps, Time latency) {
    resilver_bps_ = bps;
    resilver_latency_ = latency;
  }

  /// Attaches (or clears) the flight recorder (observer only).
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  /// Audit seam (src/check): fires at election close, before the winner's
  /// restore is spawned, with the full candidate set.
  void set_on_promoted(
      std::function<void(int, const std::vector<PromotionCandidate>&)> fn) {
    on_promoted_ = std::move(fn);
  }

  /// Watchdog entry point: replica `reporter` detected the primary's
  /// death. Every reporter spawns its own (idempotent) election closer, so
  /// the election still closes if a reporter dies while it is open.
  void report(int reporter);

  bool election_closed() const { return closed_; }
  /// Promoted replica index; -1 until the election closed.
  int winner() const { return winner_; }
  std::uint64_t reports() const { return reports_; }
  std::uint64_t resilvered() const { return resilvered_; }

 private:
  struct Entry {
    BackupAgent* agent;
    sim::DomainPtr domain;
  };

  sim::task<> close_election();
  sim::task<> resilver_survivors();

  Options opts_;
  sim::Simulation* sim_;
  std::vector<Entry> replicas_;
  trace::Recorder* trace_ = nullptr;
  std::function<void(int, const std::vector<PromotionCandidate>&)>
      on_promoted_;
  double resilver_bps_ = 10e9;
  Time resilver_latency_ = 0;
  bool closed_ = false;
  int winner_ = -1;
  std::uint64_t reports_ = 0;
  std::uint64_t resilvered_ = 0;
};

}  // namespace nlc::core
