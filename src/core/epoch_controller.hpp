// Adaptive epoch-length controller (DESIGN.md §15).
//
// Closes the loop the flight recorder opened: the primary agent feeds one
// EpochObservation per committed epoch — the same six critical-path
// segments trace::CriticalPath attributes post-hoc, plus stop time,
// pause-to-pause wall time, dirty-set size and log-stream rates — and the
// controller retunes the next execute-phase length instead of running the
// paper's fixed 30 ms.
//
// Two policies (Options::epoch_policy):
//   kFixed    — epoch_length() always returns Options::epoch_length; the
//               controller is a pass-through pacer (the mc driver and the
//               fixed rows of the benches run through it too, so there is
//               exactly one pacing abstraction).
//   kAdaptive — epoch commit mode: minimize p99 response time subject to
//               the stop-time budget. Client latency tracks the epoch
//               length (output is held until the next commit), so the
//               controller shrinks while the freeze/dump overhead fraction
//               stays low AND most epochs actually release client output —
//               when a typical request spans many epochs (heavy services),
//               the commit cadence is on no response's path and shrinking
//               only stretches service time with extra pauses. It grows
//               back when the overhead fraction — pause-side work over
//               pause-to-pause wall time — crosses the ceiling or the stop
//               budget is exceeded.
//               Replay commit mode: client latency is decoupled from epoch
//               length (released on log acks), so the controller stretches
//               epochs toward Options::replay_epoch_target to cut page
//               wire bytes, as long as the stop budget, the estimated
//               failover replay time and the estimated backup-retained
//               log bytes (post checkpoint-commit truncation, ≈ 2 epochs
//               of segments) all stay inside their budgets.
//
// Everything in this namespace is a pure function of simulated-time
// observables: no wall clock, no ambient randomness (enforced by the
// nlc_lint `replay-wallclock` rule, which covers `epochctl` regions), so
// every byte-determinism guarantee (any NLC_SHARDS × NLC_JOBS) survives
// adaptation.
#pragma once

#include <cstdint>

#include "core/event_log.hpp"
#include "core/options.hpp"
#include "trace/critical_path.hpp"
#include "util/time.hpp"

namespace nlc::core::epochctl {

/// One committed epoch as the controller sees it. All fields are simulated
/// time or simulated counters stamped by the primary agent.
struct EpochObservation {
  std::uint64_t epoch = 0;
  /// The six-segment commit-path decomposition (same vocabulary and math
  /// as trace::CriticalPath, assembled online from the agent's stamps).
  trace::SegmentSample path;
  /// Container stop time of this epoch's checkpoint.
  Time stop = 0;
  /// Pause-begin to pause-begin wall time (execute + stop + pipeline
  /// stalls); the denominator of the overhead fraction.
  Time epoch_wall = 0;
  std::uint64_t dirty_pages = 0;
  std::uint64_t wire_bytes = 0;
  /// Client output packets released since the previous observation, and
  /// whether that release left the plug empty. Together they form the
  /// epoch-mode shrink gate: a release that emits output AND drains the
  /// plug is the request-response idiom (the whole response waited on the
  /// commit cadence); a release that leaves output pending is a response
  /// streaming across epochs (or a saturated pipeline), whose latency the
  /// cadence does not bound.
  std::uint64_t output_packets = 0;
  bool plug_drained = false;
  /// Container CPU time consumed since the previous observation. The busy
  /// fraction (busy / epoch_wall) is the second epoch-mode shrink gate:
  /// extra pauses cost capacity, so shrinking is only safe while the
  /// container has idle headroom — a busy container (saturated clients, a
  /// pipelined connection, heavy per-request work) pays every added pause
  /// as stretched service time.
  Time busy = 0;
  /// Nondeterministic-event log growth during this epoch (replay mode).
  std::uint64_t log_entries = 0;
  std::uint64_t log_bytes = 0;
};

class EpochController {
 public:
  explicit EpochController(const Options& opts, LogCostModel log_costs = {});

  /// A pass-through pacer at `len` (kFixed policy); the mc driver's pacing
  /// abstraction.
  static EpochController fixed(Time len);

  /// The execute-phase length the next epoch should run.
  Time epoch_length() const { return len_; }
  bool adaptive() const { return adaptive_; }
  bool replay_mode() const { return replay_; }

  /// Feeds one committed epoch; may retune epoch_length(). Observations
  /// must arrive in epoch order (the ack pipeline guarantees it).
  void observe(const EpochObservation& o);

  std::uint64_t observations() const { return observations_; }
  std::uint64_t grow_steps() const { return grow_steps_; }
  std::uint64_t shrink_steps() const { return shrink_steps_; }
  /// Epoch of the last length change; 0 = never adapted. The convergence
  /// point nlc_run's controller summary reports.
  std::uint64_t last_change_epoch() const { return last_change_epoch_; }

 private:
  void decide(const EpochObservation& o);
  Time clamp_quantize(double ns) const;
  void apply(Time next, std::uint64_t epoch);

  // Config (copied, not referenced: the controller outlives no one).
  bool adaptive_ = false;
  bool replay_ = false;
  Time initial_len_ = 0;
  Time min_len_ = 0;
  Time max_len_ = 0;
  Time stop_budget_ = 0;
  Time replay_budget_ = 0;
  std::uint64_t log_retained_budget_ = 0;
  Time quantum_ = 0;
  LogCostModel log_costs_;

  Time len_ = 0;

  // EWMA state (alpha = 1/4 after the seeding sample). Doubles are fine
  // for determinism: IEEE arithmetic over the same observation sequence
  // is bit-identical on every shard/job configuration.
  double stop_ewma_ = -1.0;
  double wall_ewma_ = -1.0;
  double pause_side_ewma_ = -1.0;  // freeze + harvest + encode, ns
  double ship_side_ewma_ = -1.0;   // tail + ship + ack-wait, ns
  double entry_rate_ewma_ = -1.0;  // log entries per simulated ns
  double byte_rate_ewma_ = -1.0;   // log wire bytes per simulated ns
  double drain_ewma_ = -1.0;  // fraction of epochs with a full output drain
  double busy_ewma_ = -1.0;   // container busy fraction of the epoch wall

  std::uint64_t observations_ = 0;
  std::uint64_t since_decision_ = 0;
  std::uint64_t grow_steps_ = 0;
  std::uint64_t shrink_steps_ = 0;
  std::uint64_t last_change_epoch_ = 0;
};

}  // namespace nlc::core::epochctl
