// The NiLiCon backup agent (§III, §IV): receives epoch state, buffers it,
// acknowledges, commits — and on primary failure, materializes images and
// restores the container.
//
// Unlike Remus, the backup never runs a warm container: applying in-kernel
// state requires too many syscalls per epoch. Instead the committed state
// lives in buffers (page store, latest record image, accumulated fs-cache
// delta, DRBD write buffer) and is applied only at failover.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "blockdev/drbd.hpp"
#include "core/audit_hooks.hpp"
#include "core/event_log.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "core/replay.hpp"
#include "criu/pagestore.hpp"
#include "criu/restore.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace nlc::core {

class PromotionArbiter;

/// Passed to the application-level failover hook after restore: the app
/// framework re-attaches its service loops to the restored kernel objects
/// (the simulation analogue of the restored processes resuming execution).
struct FailoverContext {
  kern::Kernel* kernel;
  net::TcpStack* tcp;
  kern::ContainerId container;
  std::uint64_t committed_epoch;
};

class BackupAgent {
 public:
  BackupAgent(Options opts, kern::Kernel& kernel, net::TcpStack& tcp,
              blk::DrbdBackup& drbd, StateChannel& state_in,
              AckChannel& ack_out, HeartbeatChannel& hb_in,
              LogChannel& log_in, LogAckChannel& log_ack_out,
              ReplicationMetrics& metrics);

  /// Spawns the state receiver, the DRBD receiver, and the heartbeat
  /// watchdog under the backup host's domain.
  void start();

  /// Application-level post-restore hook.
  void set_on_restored(std::function<void(const FailoverContext&)> fn) {
    on_restored_ = std::move(fn);
  }

  /// Disables the watchdog (used while tearing an experiment down).
  void disarm();

  /// Forces recovery now (tests / manual failover).
  void trigger_recovery();

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  /// This replica's index in the cluster (0 = the paper's single backup).
  void set_replica_index(int i) { replica_index_ = i; }
  int replica_index() const { return replica_index_; }
  /// Chain topology: store-and-forward received state / log segments to
  /// the next replica down the chain.
  void set_downstream(StateChannel* state, LogChannel* log) {
    downstream_state_ = state;
    downstream_log_ = log;
  }
  /// With an arbiter installed (N > 1), the watchdog reports the primary's
  /// death there instead of recovering unilaterally; the arbiter elects
  /// the most caught-up replica and calls promote() on the winner.
  void set_arbiter(PromotionArbiter* a) { arbiter_ = a; }
  /// Arbiter entry point: run the failover restore on this replica.
  void promote();
  /// Last epoch this replica acknowledged (its catch-up cursor — the
  /// election key; ahead of committed_epoch() while a commit is in
  /// flight).
  std::uint64_t acked_epoch() const { return acked_epoch_; }
  bool any_ack_sent() const { return any_ack_sent_; }
  std::uint64_t committed_nd_entries() const { return committed_nd_entries_; }
  /// Re-silvering (DESIGN.md §16): replace this survivor's committed
  /// stores with copies of the promoted winner's (the transfer itself is
  /// metered by the arbiter on the replication link).
  void adopt_resilver(const BackupAgent& src);
  /// Arbiter bookkeeping recorded into this (winner) replica's recovery
  /// metrics.
  void note_promoted(int winner_index) {
    recovery_.promoted_replica = winner_index;
  }
  void record_resilver(std::uint64_t bytes, Time elapsed) {
    recovery_.resilver_bytes += bytes;
    ++recovery_.replicas_resilvered;
    recovery_.resilver_time += elapsed;
  }

  /// Installs (or clears, with nullptr) the invariant auditor's hooks.
  void set_audit_hooks(BackupAuditHooks* hooks) { audit_ = hooks; }

  /// Attaches (or clears) the flight recorder. Observer only, like the
  /// audit hooks: recording changes no simulated observable.
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  std::uint64_t committed_epoch() const { return committed_epoch_; }
  /// Execute-phase length stamped on the newest committed checkpoint —
  /// the primary's adapted cadence as seen from this end of the wire.
  Time last_primary_epoch_len() const { return last_primary_epoch_len_; }
  bool recovered() const { return recovered_; }
  const RecoveryMetrics& recovery_metrics() const { return recovery_; }
  const criu::PageStore& page_store() const { return *pages_; }
  /// Replay commit mode: the accepted event-log prefix (tests/auditing).
  const replay::ReplayEngine& replay_engine() const { return replay_; }

 private:
  sim::task<> state_loop();
  sim::task<> log_loop();
  sim::task<> watchdog();
  sim::task<> recover();
  criu::CheckpointImage take_restore_image();

  Options opts_;
  kern::Kernel* kernel_;
  net::TcpStack* tcp_;
  blk::DrbdBackup* drbd_;
  StateChannel* state_in_;
  AckChannel* ack_out_;
  HeartbeatChannel* hb_in_;
  LogChannel* log_in_;
  LogAckChannel* log_ack_out_;
  ReplicationMetrics* metrics_;
  BackupAuditHooks* audit_ = nullptr;
  trace::Recorder* trace_ = nullptr;
  std::function<void(const FailoverContext&)> on_restored_;

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  int replica_index_ = 0;
  StateChannel* downstream_state_ = nullptr;
  LogChannel* downstream_log_ = nullptr;
  PromotionArbiter* arbiter_ = nullptr;
  std::uint64_t acked_epoch_ = 0;
  bool any_ack_sent_ = false;

  std::unique_ptr<criu::PageStore> pages_;
  /// Non-null iff pages_ is a RadixPageStore: lets the commit fold take
  /// the sharded store_batch() fast path (DESIGN.md §10) without a
  /// dynamic_cast per epoch.
  criu::RadixPageStore* radix_ = nullptr;
  std::optional<criu::CheckpointImage> committed_image_;  // latest records
  std::map<std::pair<kern::InodeNum, std::uint64_t>, kern::DncPageEntry>
      committed_fs_pages_;
  std::map<kern::InodeNum, kern::InodeAttr> committed_fs_inodes_;
  std::uint64_t committed_epoch_ = 0;

  Time last_heartbeat_ = 0;
  std::uint64_t heartbeats_seen_ = 0;
  bool armed_ = false;
  bool recovered_ = false;
  bool commit_in_progress_ = false;
  /// Set at the instant recovery starts. A commit already in progress is
  /// waited out (its state fully arrived — it belongs in the restored
  /// image), but no NEW commit may begin: the restore's modeled sleeps
  /// span real simulated time, and a checkpoint draining from the state
  /// channel during them would advance committed_nd_entries_ / prune the
  /// log / fold pages underneath a restore already built from the older
  /// image — the replay filter would then skip inputs the restored TCP
  /// state has never seen, leaving a receive-stream gap at re-injection.
  /// Uncommitted in-flight state dies with the primary (§IV).
  bool recovering_ = false;
  std::unique_ptr<sim::Event> commit_idle_;
  RecoveryMetrics recovery_;
  criu::BackupCosts backup_costs_;

  // ---- Replay commit mode (DESIGN.md §14) ---------------------------------
  replay::ReplayEngine replay_;
  LogCostModel log_costs_;
  /// Event-log stamp of the newest committed checkpoint: the point replay
  /// starts from at failover.
  std::uint64_t committed_nd_entries_ = 0;
  std::uint64_t committed_nd_fp_ = kNdChainSeed;
  Time last_primary_epoch_len_ = 0;
};

}  // namespace nlc::core
