// Cluster: the paper's testbed in one object (§VI).
//
// Three hosts — client, primary, backup — with 1 GbE links from the client
// to each server host and a dedicated 10 GbE replication link between the
// servers. Owns the kernels, disks, DRBD pair, TCP stacks and the
// replication channels; protect() instantiates the NiLiCon agent pair for a
// container.
//
// This is the main entry point of the library: build a Cluster, create a
// container + workload on the primary kernel, call protect(), run the
// simulation.
#pragma once

#include <functional>
#include <memory>

#include "blockdev/disk.hpp"
#include "blockdev/drbd.hpp"
#include "core/backup_agent.hpp"
#include "core/options.hpp"
#include "core/primary_agent.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "trace/recorder.hpp"

namespace nlc::core {

/// Default addresses of the testbed.
inline constexpr net::IpAddr kClientIp = 0x0A00'0001;
inline constexpr net::IpAddr kPrimaryHostIp = 0x0A00'0002;
inline constexpr net::IpAddr kBackupHostIp = 0x0A00'0003;
inline constexpr net::IpAddr kServiceIp = 0x0A00'00FE;

struct ClusterConfig {
  double client_link_bps = 1e9;        // 1 GbE to the client host
  Time client_link_latency = nlc::microseconds(100);
  double replication_link_bps = 10e9;  // dedicated 10 GbE
  Time replication_link_latency = nlc::microseconds(20);
  /// Management network (the hosts' 1 GbE NICs) used for the failure
  /// detector's heartbeats, so bulk state transfers cannot starve them —
  /// on real hardware TCP fair-sharing provides the same isolation, which
  /// a FIFO link model does not.
  double control_link_bps = 1e9;
  Time control_link_latency = nlc::microseconds(100);
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Simulation must outlive (and be torn down before) everything below.
  sim::Simulation sim;

  sim::DomainPtr client_domain;
  sim::DomainPtr primary_domain;
  sim::DomainPtr backup_domain;

  net::Network network;
  net::HostId client_host;
  net::HostId primary_host;
  net::HostId backup_host;

  net::TcpStack client_tcp;
  net::TcpStack primary_tcp;
  net::TcpStack backup_tcp;

  blk::Disk primary_disk;
  blk::Disk backup_disk;
  std::unique_ptr<net::Channel<blk::DrbdMessage>> drbd_channel;
  std::unique_ptr<blk::DrbdPrimary> drbd_primary;
  std::unique_ptr<blk::DrbdBackup> drbd_backup;

  std::unique_ptr<kern::Kernel> primary_kernel;
  std::unique_ptr<kern::Kernel> backup_kernel;

  std::unique_ptr<net::Link> control_link;
  std::unique_ptr<StateChannel> state_channel;
  std::unique_ptr<AckChannel> ack_channel;
  std::unique_ptr<HeartbeatChannel> heartbeat_channel;
  /// Event-log side channel (commit_mode = kReplay, DESIGN.md §14): a
  /// strict-priority traffic class on the replication NIC, modeled as its
  /// own lane so the tiny log segments never serialize behind a multi-MB
  /// page delta — otherwise log-ack latency (and hence client-visible
  /// p99) would grow with the epoch length, defeating the commit mode.
  std::unique_ptr<net::Link> log_priority_link;
  std::unique_ptr<LogChannel> log_channel;
  std::unique_ptr<LogAckChannel> log_ack_channel;

  ReplicationMetrics metrics;
  std::unique_ptr<PrimaryAgent> primary_agent;
  std::unique_ptr<BackupAgent> backup_agent;

  /// Flight recorder (src/trace), created by protect() when
  /// Options::trace_level != kOff and wired into both agents, both server
  /// TCP stacks and the DRBD backup. Shared so the harness can hand the
  /// trace to exporters after the Cluster is gone.
  std::shared_ptr<trace::Recorder> tracer;

  /// Invoked by protect() right after the agent pair is constructed and
  /// before either agent runs: the harness uses this to attach the
  /// invariant auditor (src/check) while every observed component exists
  /// but no epoch has started, so the audit mirrors see the protocol from
  /// its very first event.
  std::function<void()> on_agents_created;

  /// Creates a container on the primary with the service address bound and
  /// its egress/ingress plumbing in place.
  kern::Container& create_service_container(const std::string& name,
                                            net::IpAddr service_ip
                                            = kServiceIp);

  /// Builds the agent pair for `cid` and runs the initial synchronization.
  /// Awaitable; afterwards the container is protected.
  sim::task<> protect(kern::ContainerId cid, const Options& opts);

  /// Fail-stop crash of the primary host (§VII-A fault injection).
  void fail_primary() {
    if (tracer != nullptr) {
      tracer->instant(trace::Track::kNetPrimary, trace::Stage::kUnplug,
                      sim.now());
    }
    primary_domain->kill();
  }

  /// The paper's manual test: unplug every network cable of the primary
  /// (§VII-A). The primary stays alive but can neither replicate nor talk
  /// to clients; output commit guarantees its unreleased responses never
  /// escaped, so the backup's takeover is still consistent.
  void unplug_primary();

  net::Link& replication_link();
};

}  // namespace nlc::core
