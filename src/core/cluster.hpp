// Cluster: the paper's testbed in one object (§VI).
//
// Three hosts — client, primary, backup — with 1 GbE links from the client
// to each server host and a dedicated 10 GbE replication link between the
// servers. Owns the kernels, disks, DRBD pair, TCP stacks and the
// replication channels; protect() instantiates the NiLiCon agent pair for a
// container.
//
// This is the main entry point of the library: build a Cluster, create a
// container + workload on the primary kernel, call protect(), run the
// simulation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "blockdev/disk.hpp"
#include "blockdev/drbd.hpp"
#include "core/backup_agent.hpp"
#include "core/options.hpp"
#include "core/primary_agent.hpp"
#include "core/promotion.hpp"
#include "kernel/kernel.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "sim/simulation.hpp"
#include "topo/fault_domains.hpp"
#include "topo/topology.hpp"
#include "trace/recorder.hpp"

namespace nlc::core {

/// Default addresses of the testbed.
inline constexpr net::IpAddr kClientIp = 0x0A00'0001;
inline constexpr net::IpAddr kPrimaryHostIp = 0x0A00'0002;
inline constexpr net::IpAddr kBackupHostIp = 0x0A00'0003;
inline constexpr net::IpAddr kServiceIp = 0x0A00'00FE;

struct ClusterConfig {
  double client_link_bps = 1e9;        // 1 GbE to the client host
  Time client_link_latency = nlc::microseconds(100);
  double replication_link_bps = 10e9;  // dedicated 10 GbE
  Time replication_link_latency = nlc::microseconds(20);
  /// Management network (the hosts' 1 GbE NICs) used for the failure
  /// detector's heartbeats, so bulk state transfers cannot starve them —
  /// on real hardware TCP fair-sharing provides the same isolation, which
  /// a FIFO link model does not.
  double control_link_bps = 1e9;
  Time control_link_latency = nlc::microseconds(100);

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  /// Backup replica count. 1 reproduces the paper's two-host testbed
  /// exactly; extras are appended as additional backup hosts placed across
  /// the fault-domain tree. Must match Options::replicas at protect().
  int replicas = 1;
  /// How replicated state flows: star (primary fans out over its shared
  /// replication NIC) or chain (per-hop links, store-and-forward).
  topo::Topology topology = topo::Topology::kStar;
  /// Fault-domain tree shape the hosts are spread across (primary first,
  /// then backups, with rack anti-affinity).
  int sites = 1;
  int racks_per_site = 2;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Simulation must outlive (and be torn down before) everything below.
  sim::Simulation sim;

  sim::DomainPtr client_domain;
  sim::DomainPtr primary_domain;
  sim::DomainPtr backup_domain;

  net::Network network;
  net::HostId client_host;
  net::HostId primary_host;
  net::HostId backup_host;

  net::TcpStack client_tcp;
  net::TcpStack primary_tcp;
  net::TcpStack backup_tcp;

  blk::Disk primary_disk;
  blk::Disk backup_disk;
  std::unique_ptr<net::Channel<blk::DrbdMessage>> drbd_channel;
  std::unique_ptr<blk::DrbdPrimary> drbd_primary;
  std::unique_ptr<blk::DrbdBackup> drbd_backup;

  std::unique_ptr<kern::Kernel> primary_kernel;
  std::unique_ptr<kern::Kernel> backup_kernel;

  std::unique_ptr<net::Link> control_link;
  std::unique_ptr<StateChannel> state_channel;
  std::unique_ptr<AckChannel> ack_channel;
  std::unique_ptr<HeartbeatChannel> heartbeat_channel;
  /// Event-log side channel (commit_mode = kReplay, DESIGN.md §14): a
  /// strict-priority traffic class on the replication NIC, modeled as its
  /// own lane so the tiny log segments never serialize behind a multi-MB
  /// page delta — otherwise log-ack latency (and hence client-visible
  /// p99) would grow with the epoch length, defeating the commit mode.
  std::unique_ptr<net::Link> log_priority_link;
  std::unique_ptr<LogChannel> log_channel;
  std::unique_ptr<LogAckChannel> log_ack_channel;

  ReplicationMetrics metrics;
  std::unique_ptr<PrimaryAgent> primary_agent;
  std::unique_ptr<BackupAgent> backup_agent;

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  /// The construction-time config (replicas, topology, tree shape).
  ClusterConfig config;
  /// Placement bookkeeping: host 0 = primary, host 1 + i = backup replica
  /// i. The client sits outside the replicated fault hierarchy.
  topo::FaultDomainTree fault_domains;
  /// Everything one extra backup replica owns (replica i lives at index
  /// i - 1; replica 0 is the flat two-host member set above, untouched so
  /// replicas = 1 stays byte-identical to the seed engine).
  struct BackupReplica {
    sim::DomainPtr domain;
    net::HostId host = -1;
    std::unique_ptr<net::TcpStack> tcp;
    std::unique_ptr<blk::Disk> disk;
    std::unique_ptr<net::Channel<blk::DrbdMessage>> drbd_channel;
    std::unique_ptr<blk::DrbdBackup> drbd;
    std::unique_ptr<kern::Kernel> kernel;
    /// Chain only: the hop link feeding this replica (state + DRBD);
    /// star replicas ride the primary's shared replication NIC instead.
    std::unique_ptr<net::Link> hop_link;
    /// Chain only: the hop's event-log priority lane; star replicas share
    /// the primary NIC's log lane.
    std::unique_ptr<net::Link> log_link;
    std::unique_ptr<StateChannel> state_channel;
    std::unique_ptr<AckChannel> ack_channel;
    std::unique_ptr<HeartbeatChannel> heartbeat_channel;
    std::unique_ptr<LogChannel> log_channel;
    std::unique_ptr<LogAckChannel> log_ack_channel;
    std::unique_ptr<BackupAgent> agent;
  };
  std::vector<std::unique_ptr<BackupReplica>> extra_backups;
  /// Election + re-silvering coordinator; created by protect() iff
  /// replicas > 1.
  std::unique_ptr<PromotionArbiter> arbiter;

  /// Flight recorder (src/trace), created by protect() when
  /// Options::trace_level != kOff and wired into both agents, both server
  /// TCP stacks and the DRBD backup. Shared so the harness can hand the
  /// trace to exporters after the Cluster is gone.
  std::shared_ptr<trace::Recorder> tracer;

  /// Invoked by protect() right after the agent pair is constructed and
  /// before either agent runs: the harness uses this to attach the
  /// invariant auditor (src/check) while every observed component exists
  /// but no epoch has started, so the audit mirrors see the protocol from
  /// its very first event.
  std::function<void()> on_agents_created;

  /// Creates a container on the primary with the service address bound and
  /// its egress/ingress plumbing in place.
  kern::Container& create_service_container(const std::string& name,
                                            net::IpAddr service_ip
                                            = kServiceIp);

  /// Builds the agent pair for `cid` and runs the initial synchronization.
  /// Awaitable; afterwards the container is protected.
  sim::task<> protect(kern::ContainerId cid, const Options& opts);

  /// Fail-stop crash of the primary host (§VII-A fault injection).
  void fail_primary() {
    if (tracer != nullptr) {
      tracer->instant(trace::Track::kNetPrimary, trace::Stage::kUnplug,
                      sim.now());
    }
    primary_domain->kill();
  }

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  int replica_count() const { return config.replicas; }
  /// Backup replica `i`'s agent / kernel / TCP stack / failure domain.
  BackupAgent& backup(int i);
  kern::Kernel& backup_kernel_of(int i);
  net::TcpStack& backup_tcp_of(int i);
  sim::DomainPtr backup_domain_of(int i);
  /// Fail-stop crash of backup replica `i`.
  void fail_backup(int i);
  /// Correlated failure: fail-stop every replicated host placed in `rack`
  /// (possibly the primary and backups together — the scenario the
  /// anti-affinity placement exists to survive).
  void fail_rack(int rack);

  /// The paper's manual test: unplug every network cable of the primary
  /// (§VII-A). The primary stays alive but can neither replicate nor talk
  /// to clients; output commit guarantees its unreleased responses never
  /// escaped, so the backup's takeover is still consistent.
  void unplug_primary();

  net::Link& replication_link();
};

}  // namespace nlc::core
