#include "core/event_log.hpp"

namespace nlc::core {

void EventLog::on_net_input(std::uint64_t sock, std::uint64_t tag,
                            std::uint64_t payload_hash) {
  record(NdEvent{NdEventType::kNetInput, sock, tag, payload_hash});
}

void EventLog::on_timer(std::uint64_t timer_id, std::uint64_t seq) {
  record(NdEvent{NdEventType::kTimer, timer_id, seq, 0});
}

void EventLog::on_rng_draw(std::uint64_t value) {
  record(NdEvent{NdEventType::kRngDraw, value, 0, 0});
}

void EventLog::record_net_input(net::SocketId sock, net::Endpoint local,
                                net::Endpoint remote,
                                const net::Segment& seg) {
  // The chain covers the bytes' identity (seq, len, tag); the sidecar
  // carries the bytes themselves for failover re-injection.
  std::uint64_t h = splitmix64(seg.seq);
  h = splitmix64(h ^ seg.len);
  h = splitmix64(h ^ seg.tag);
  NetInputRec rec;
  rec.entry_index = entries_total_;  // index this entry is about to take
  rec.local = local;
  rec.remote = remote;
  rec.seg = seg;
  pending_wire_ += kLogInputHeaderWire + seg.len;
  pending_inputs_.push_back(std::move(rec));
  record(NdEvent{NdEventType::kNetInput, sock, seg.tag, h});
}

void EventLog::record(const NdEvent& e) {
  chain_fp_ = nd_chain_fold(chain_fp_, e);
  ++entries_total_;
  pending_.push_back(e);
  pending_wire_ += kLogEntryWire;
  if (on_append_) on_append_();
}

LogSegmentMsg EventLog::cut_segment() {
  LogSegmentMsg seg;
  seg.seq = next_seq_++;
  seg.start_index = pending_start_index_;
  seg.start_fp = pending_start_fp_;
  seg.end_fp = chain_fp_;
  seg.entries = std::move(pending_);
  pending_.clear();
  seg.inputs = std::move(pending_inputs_);
  pending_inputs_.clear();
  pending_wire_ = 0;
  pending_start_index_ = entries_total_;
  pending_start_fp_ = chain_fp_;
  return seg;
}

}  // namespace nlc::core
