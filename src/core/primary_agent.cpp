#include "core/primary_agent.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace nlc::core {

PrimaryAgent::PrimaryAgent(Options opts, kern::Kernel& kernel,
                           net::TcpStack& tcp, kern::ContainerId cid,
                           blk::DrbdPrimary& drbd, StateChannel& state_out,
                           AckChannel& ack_in, HeartbeatChannel& hb_out,
                           ReplicationMetrics& metrics)
    : opts_(opts), kernel_(&kernel), tcp_(&tcp), cid_(cid), drbd_(&drbd),
      state_out_(&state_out), ack_in_(&ack_in), hb_out_(&hb_out),
      metrics_(&metrics), ckpt_(kernel, tcp), cache_(kernel, cid),
      delta_(opts.resolved_page_shards(), opts.resolved_simd_tier()),
      rng_(opts.seed ^ 0x9e37'79b9'7f4a'7c15ull),
      ack_event_(std::make_unique<sim::Event>(kernel.simulation())) {
  metrics_->page_shards_used = delta_.shards();
  metrics_->simd_tier_used = delta_.simd_tier();
}

net::IpAddr PrimaryAgent::service_ip() const {
  return static_cast<net::IpAddr>(kernel_->container(cid_)->service_ip());
}

PrimaryAgent::EpochRec& PrimaryAgent::emplace_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  NLC_CHECK_MSG(!rec.live, "epoch window overflow: un-acked epochs exceed "
                           "the bounded pipeline depth");
  rec = EpochRec{};
  rec.epoch = epoch;
  rec.live = true;
  return rec;
}

PrimaryAgent::EpochRec* PrimaryAgent::find_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  return rec.live && rec.epoch == epoch ? &rec : nullptr;
}

void PrimaryAgent::erase_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  if (rec.live && rec.epoch == epoch) rec.live = false;
}

net::PlugQdisc& PrimaryAgent::plug() {
  // TcpStack keeps plugs in per-IP unique_ptrs, so the resolved pointer is
  // stable for the agent's lifetime.
  if (plug_ == nullptr) plug_ = &tcp_->plug(service_ip());
  return *plug_;
}

sim::task<> PrimaryAgent::start() {
  sim::Simulation& sim = kernel_->simulation();
  // Output commit from the very beginning: no packet escapes without a
  // committed checkpoint behind it.
  plug().engage();
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kPlugEngage,
                    sim.now());
  }

  // Heartbeats start before the initial synchronization: the initial full
  // state copy takes far longer than the detector's 90 ms budget, and the
  // agent driving it is proof of life.
  sim.spawn(kernel_->domain(), heartbeat_loop());
  sim.spawn(kernel_->domain(), ack_loop());

  // Initial full synchronization (Remus's initial state copy).
  co_await checkpoint_once(/*initial=*/true);

  sim.spawn(kernel_->domain(), epoch_loop());
}

sim::task<> PrimaryAgent::epoch_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (running_) {
    co_await sim.sleep_for(opts_.epoch_length);  // execute phase
    if (!running_) break;
    // The ack gates output *release*, not the next epoch: transfer of
    // epoch k overlaps execution of k+1 (Remus's asynchronous pipeline).
    // A bounded window of two un-acked epochs provides the back-pressure
    // that keeps a slow backup (Table I's "Basic" list-walk page store)
    // from accumulating unbounded staged state.
    NLC_CHECK(epoch_ >= 1);
    if (epoch_ >= 2) co_await wait_acked(epoch_ - 2);
    co_await checkpoint_once(false);
  }
}

sim::task<> PrimaryAgent::wait_acked(std::uint64_t epoch) {
  // acked_epoch_ == 0 also covers "no ack yet" (epochs are 0-based), so the
  // flag, not the counter, decides whether epoch 0 was acknowledged —
  // otherwise epoch 0's buffered output would be released un-acked.
  while (!any_acked_ || acked_epoch_ < epoch) {
    ack_event_->reset();
    co_await ack_event_->wait();
  }
}

Time PrimaryAgent::send_side_cost(const EpochStateMsg& msg, bool staged) const {
  const auto& c = ckpt_.costs();
  double mb = static_cast<double>(msg.wire_bytes) /
              static_cast<double>(nlc::kMiB);
  // Staged shipping streams out of the staging buffer concurrently with
  // execution at near-wire speed; the synchronous path pays the full
  // user-space TCP copy cost while the container is paused (§V-D(2)).
  Time t = static_cast<Time>(
      mb * static_cast<double>(staged ? c.staged_send_per_mb
                                      : c.sync_send_per_mb));
  if (!opts_.optimize_criu) {
    // Stock CRIU page-server proxies: two extra full copies (§V-A).
    t += static_cast<Time>(2.0 * mb *
                           static_cast<double>(c.proxy_copy_per_mb));
  }
  // Delta encoding runs on the shipping path: staged, it overlaps the next
  // execute phase instead of extending the pause.
  t += static_cast<Time>(msg.compressed_pages) * c.delta_compress_per_page;
  return t;
}

sim::task<> PrimaryAgent::ship_state(EpochStateMsg msg, bool staged) {
  sim::Simulation& sim = kernel_->simulation();
  const std::uint64_t epoch = msg.epoch;
  Time cost = send_side_cost(msg, staged);
  metrics_->primary_agent_busy += cost;
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimaryShip, trace::Stage::kShip,
                       sim.now(), epoch);
  }
  co_await sim.sleep_for(cost);
  std::uint64_t bytes = msg.wire_bytes;
  state_out_->send(std::move(msg), bytes);
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimaryShip, trace::Stage::kShip,
                     sim.now(), epoch);
  }
}

sim::task<> PrimaryAgent::checkpoint_once(bool initial) {
  sim::Simulation& sim = kernel_->simulation();
  const auto& costs = ckpt_.costs();
  std::uint64_t epoch = epoch_;
  EpochRec& rec = emplace_rec(epoch);
  rec.stop_begin = sim.now();
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimary, trace::Stage::kPause,
                       sim.now(), epoch);
  }

  // ---- Stop the container (freezer, §II-B / §V-A) -------------------------
  kernel_->freeze_container(cid_);
  if (opts_.optimize_criu) {
    Time poll = static_cast<Time>(rng_.normal_clamped(
        static_cast<double>(costs.freezer_poll_mean),
        static_cast<double>(costs.freezer_poll_mean) / 2.0,
        50e3, 1e6));
    co_await sim.sleep_for(poll);
  } else {
    co_await sim.sleep_for(costs.freezer_sleep_quantum);
  }

  // ---- Block network input (§III / §V-C) -----------------------------------
  auto& ingress = tcp_->ingress(service_ip());
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kIngressBlock,
                    sim.now(), epoch);
  }
  if (opts_.plug_input_blocking) {
    ingress.set_mode(net::IngressFilter::Mode::kBuffer);
    co_await sim.sleep_for(costs.plug_block_cost);
  } else {
    ingress.set_mode(net::IngressFilter::Mode::kDrop);
    co_await sim.sleep_for(costs.firewall_block_cost);
  }

  // ---- Mark the end of this epoch's disk writes ----------------------------
  drbd_->send_barrier(epoch);
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kPrimary, trace::Stage::kBarrierSent,
                    sim.now(), epoch);
  }

  // ---- Harvest the container state (CRIU engine) ---------------------------
  // Sharded page pipeline (DESIGN.md §10): harvest fill, delta encode and
  // the backup's fold all fan out on the shared pool when shards > 1;
  // outputs are byte-identical to the serial engine either way.
  int pshards = delta_.shards();
  util::WorkerPool* ppool = pshards > 1 ? &util::shard_pool() : nullptr;
  criu::HarvestOptions ho;
  ho.incremental = !initial;
  ho.vma_via_netlink = opts_.vma_via_netlink;
  ho.pages_via_shared_memory = opts_.pages_via_shared_memory;
  ho.fs_cache_via_dnc = opts_.fs_cache_via_dnc;
  ho.shards = pshards;
  ho.pool = ppool;
  const criu::InfrequentState* cached =
      opts_.cache_infrequent_state ? cache_.get() : nullptr;
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimary, trace::Stage::kHarvest,
                       sim.now(), epoch);
  }
  const std::uint64_t harvest_t0 = util::wall_now_ns();
  criu::HarvestResult hr = ckpt_.harvest(cid_, epoch, cached, ho);
  metrics_->shard_stage_ns.harvest += util::wall_now_ns() - harvest_t0;
  if (opts_.cache_infrequent_state) cache_.update(hr.image.infrequent);
  co_await sim.sleep_for(hr.cost.total());
  metrics_->primary_agent_busy += hr.cost.total();
  metrics_->payload_copies_avoided += hr.content_pages;
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimary, trace::Stage::kHarvest,
                     sim.now(), epoch);
  }

  EpochStateMsg msg;
  msg.epoch = epoch;
  if (opts_.delta_compress_pages) {
    // Stamp per-page compressed wire sizes (real XOR/run-length encode
    // against the last shipped versions); the modeled CPU cost rides the
    // shipping path below.
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kPrimary, trace::Stage::kEncode,
                         sim.now(), epoch);
    }
    const std::uint64_t encode_t0 = util::wall_now_ns();
    criu::EpochDeltaStats ds = delta_.encode_epoch(hr.image, ppool);
    metrics_->shard_stage_ns.encode += util::wall_now_ns() - encode_t0;
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kPrimary, trace::Stage::kEncode,
                       sim.now(), epoch);
    }
    msg.compressed_pages = ds.content_pages;
    if (!initial && ds.content_pages > 0) {
      metrics_->compression_ratio.add(ds.ratio());
      metrics_->wire_bytes_saved += ds.raw_bytes - ds.wire_bytes;
    }
  }
  msg.wire_bytes = hr.image.byte_size();
  std::uint64_t dirty = hr.image.dirty_page_count();
  std::uint64_t bytes = msg.wire_bytes;
  msg.image = std::move(hr.image);
  if (audit_ != nullptr) audit_->on_state_ready(msg, initial);
  if (trace_ != nullptr) {
    trace_->counter(trace::Track::kPrimary, trace::Stage::kDirtyPages,
                    sim.now(), dirty);
    trace_->counter(trace::Track::kPrimary, trace::Stage::kWireBytes,
                    sim.now(), bytes);
  }

  // ---- Ship (synchronously if no staging buffer, §V-D(2)) ------------------
  bool sync_ship = initial || !opts_.staging_buffer;
  if (sync_ship) {
    co_await ship_state(std::move(msg), /*staged=*/false);
    co_await wait_acked(epoch);
  }

  // ---- Unblock input, arm output commit, resume ---------------------------
  if (opts_.plug_input_blocking) {
    ingress.set_mode(net::IngressFilter::Mode::kPass);
  } else {
    ingress.set_mode(net::IngressFilter::Mode::kPass);
    co_await sim.sleep_for(costs.firewall_unblock_cost);
  }
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary,
                    trace::Stage::kIngressUnblock, sim.now(), epoch);
  }
  rec.marker = plug().insert_marker();
  rec.marker_inserted = true;
  if (audit_ != nullptr) audit_->on_marker_inserted(epoch, rec.marker);
  kernel_->thaw_container(cid_);
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimary, trace::Stage::kPause,
                     sim.now(), epoch);
    trace_->instant(trace::Track::kPrimary, trace::Stage::kResume,
                    sim.now(), epoch);
  }

  Time stop = sim.now() - rec.stop_begin;
  // The initial full synchronization is a one-off warm-up, not an epoch of
  // steady-state operation: keep it out of the per-epoch statistics.
  if (!initial) {
    metrics_->stop_time_ms.add(to_millis(stop));
    metrics_->state_bytes.add(static_cast<double>(bytes));
    metrics_->dirty_pages.add(static_cast<double>(dirty));
    ++metrics_->epochs_completed;
    metrics_->bytes_shipped += bytes;
  }

  if (sync_ship) {
    // The ack arrived while the container was still paused: the epoch is
    // committed, release its buffered output now.
    release_epoch(rec);
  } else {
    // Staged: ship concurrently with the next execute phase; the ack_loop
    // releases the marker when the backup confirms.
    sim.spawn(kernel_->domain(), ship_state(std::move(msg), /*staged=*/true));
  }
  ++epoch_;
}

sim::task<> PrimaryAgent::ack_loop() {
  // Gated on running_ like epoch_loop/heartbeat_loop: after stop() the
  // next ack (if any) is still applied — releasing output that the backup
  // committed is always correct — but then the loop exits instead of
  // parking on recv() until teardown destroys the frame.
  while (running_) {
    AckMsg ack = co_await ack_in_->recv();
    NLC_CHECK_MSG(ack.epoch >= acked_epoch_, "acks must be monotone");
    acked_epoch_ = ack.epoch;
    any_acked_ = true;
    if (audit_ != nullptr) audit_->on_ack_received(ack.epoch);
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kPrimary, trace::Stage::kAckRecv,
                      kernel_->simulation().now(), ack.epoch);
    }
    ack_event_->set();
    EpochRec* rec = find_rec(ack.epoch);
    if (rec != nullptr && rec->marker_inserted) release_epoch(*rec);
  }
}

void PrimaryAgent::release_epoch(EpochRec& rec) {
  if (audit_ != nullptr) audit_->on_release(rec.epoch);
  if (trace_ != nullptr) {
    const Time now = kernel_->simulation().now();
    trace_->instant(trace::Track::kPrimary, trace::Stage::kRelease, now,
                    rec.epoch);
    const std::uint64_t released_before = plug().released_total();
    plug().release_to_marker(rec.marker);
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kPlugRelease,
                    now, plug().released_total() - released_before);
  } else {
    plug().release_to_marker(rec.marker);
  }
  metrics_->commit_latency_ms.add(
      to_millis(kernel_->simulation().now() - rec.stop_begin));
  erase_rec(rec.epoch);
}

sim::task<> PrimaryAgent::heartbeat_loop() {
  sim::Simulation& sim = kernel_->simulation();
  std::uint64_t seq = 0;
  Time last_usage = -1;
  while (running_) {
    co_await sim.sleep_for(opts_.heartbeat_interval);
    const kern::Container* c = kernel_->container(cid_);
    if (c == nullptr) break;
    Time usage = c->cpu().usage();
    // Send as long as the container makes progress (§IV). A container
    // frozen by our own checkpoint is alive by construction, so the agent
    // keeps beating through long pauses instead of inducing a false alarm.
    if (usage > last_usage || c->frozen()) {
      hb_out_->send(HeartbeatMsg{seq++, sim.now()}, 64);
    }
    last_usage = usage;
  }
}

}  // namespace nlc::core
