#include "core/primary_agent.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace nlc::core {

PrimaryAgent::PrimaryAgent(Options opts, kern::Kernel& kernel,
                           net::TcpStack& tcp, kern::ContainerId cid,
                           blk::DrbdPrimary& drbd, StateChannel& state_out,
                           AckChannel& ack_in, HeartbeatChannel& hb_out,
                           LogChannel& log_out, LogAckChannel& log_ack_in,
                           ReplicationMetrics& metrics)
    : opts_(opts), kernel_(&kernel), tcp_(&tcp), cid_(cid), drbd_(&drbd),
      metrics_(&metrics), ckpt_(kernel, tcp), cache_(kernel, cid),
      delta_(opts.resolved_page_shards(), opts.resolved_simd_tier()),
      rng_(opts.seed ^ 0x9e37'79b9'7f4a'7c15ull),
      ack_event_(std::make_unique<sim::Event>(kernel.simulation())),
      controller_(opts, log_costs_),
      log_flush_event_(std::make_unique<sim::Event>(kernel.simulation())) {
  metrics_->page_shards_used = delta_.shards();
  metrics_->simd_tier_used = delta_.simd_tier();
  replicas_.push_back(Replica{&state_out, &ack_in, &hb_out, &log_out,
                              &log_ack_in, /*direct=*/true, 0, false});
  quorum_k_ = opts_.resolved_quorum();
}

void PrimaryAgent::add_replica(StateChannel& state_out, AckChannel& ack_in,
                               HeartbeatChannel& hb_out, LogChannel& log_out,
                               LogAckChannel& log_ack_in, bool direct) {
  NLC_CHECK_MSG(!started_, "add_replica after start");
  NLC_CHECK_MSG(replicas_.size() < kMaxReplicas, "too many replicas");
  replicas_.push_back(
      Replica{&state_out, &ack_in, &hb_out, &log_out, &log_ack_in, direct,
              0, false});
}

PrimaryAgent::~PrimaryAgent() {
  // The plug (TcpStack) and the container (Kernel) outlive the agent;
  // drop the callbacks that point back into this object.
  if (plug_ != nullptr) plug_->set_enqueue_hook(nullptr);
  kern::Container* cont = kernel_->container(cid_);
  if (cont != nullptr) {
    if (cont->nondet_sink() == &nd_log_) cont->set_nondet_sink(nullptr);
    if (opts_.commit_mode == CommitMode::kReplay) {
      tcp_->set_input_tap(service_ip(), nullptr);
    }
  }
}

net::IpAddr PrimaryAgent::service_ip() const {
  return static_cast<net::IpAddr>(kernel_->container(cid_)->service_ip());
}

PrimaryAgent::EpochRec& PrimaryAgent::emplace_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  NLC_CHECK_MSG(!rec.live, "epoch window overflow: un-acked epochs exceed "
                           "the bounded pipeline depth");
  rec = EpochRec{};
  rec.epoch = epoch;
  rec.live = true;
  return rec;
}

PrimaryAgent::EpochRec* PrimaryAgent::find_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  return rec.live && rec.epoch == epoch ? &rec : nullptr;
}

void PrimaryAgent::erase_rec(std::uint64_t epoch) {
  EpochRec& rec = epoch_recs_[epoch % kEpochWindow];
  if (rec.live && rec.epoch == epoch) rec.live = false;
}

net::PlugQdisc& PrimaryAgent::plug() {
  // TcpStack keeps plugs in per-IP unique_ptrs, so the resolved pointer is
  // stable for the agent's lifetime.
  if (plug_ == nullptr) plug_ = &tcp_->plug(service_ip());
  return *plug_;
}

sim::task<> PrimaryAgent::start() {
  sim::Simulation& sim = kernel_->simulation();
  started_ = true;
  NLC_CHECK_MSG(quorum_k_ <= static_cast<int>(replicas_.size()),
                "quorum K exceeds the registered replica count");
  if (replicas_.size() > 1) {
    metrics_->replica_ack_lag.assign(replicas_.size(), Samples{});
  }
  // Output commit from the very beginning: no packet escapes without a
  // committed checkpoint behind it.
  plug().engage();
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kPlugEngage,
                    sim.now());
  }

  // Heartbeats start before the initial synchronization: the initial full
  // state copy takes far longer than the detector's 90 ms budget, and the
  // agent driving it is proof of life.
  sim.spawn(kernel_->domain(), heartbeat_loop());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    sim.spawn(kernel_->domain(), ack_loop(r));
  }

  if (replay_mode()) {
    // HyCoR output commit (DESIGN.md §14): record every nondeterministic
    // input the container observes, and release buffered output on the
    // event-log ack instead of the epoch ack.
    kern::Container* cont = kernel_->container(cid_);
    NLC_CHECK_MSG(cont != nullptr, "protecting an unknown container");
    cont->set_nondet_sink(&nd_log_);
    // Receive-time input durability: every in-order data segment enters
    // the log (with its payload sidecar) before its TCP ack reaches the
    // plug, so a released ack implies the input is already at the backup.
    tcp_->set_input_tap(
        service_ip(),
        [this](net::SocketId sock, net::Endpoint local, net::Endpoint remote,
               const net::Segment& seg) {
          nd_log_.record_net_input(sock, local, remote, seg);
        });
    plug().set_enqueue_hook([this] { log_flush_event_->set(); });
    sim.spawn(kernel_->domain(), log_flush_loop());
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      sim.spawn(kernel_->domain(), log_ack_loop(r));
    }
  }

  // Initial full synchronization (Remus's initial state copy).
  co_await checkpoint_once(/*initial=*/true);

  sim.spawn(kernel_->domain(), epoch_loop());
}

sim::task<> PrimaryAgent::epoch_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (running_) {
    // The controller's current length; stamped into the epoch's record at
    // the checkpoint so observations attribute it to the right epoch even
    // after the controller has moved on.
    last_execute_len_ = controller_.epoch_length();
    co_await sim.sleep_for(last_execute_len_);  // execute phase
    if (!running_) break;
    // The ack gates output *release*, not the next epoch: transfer of
    // epoch k overlaps execution of k+1 (Remus's asynchronous pipeline).
    // A bounded window of two un-acked epochs provides the back-pressure
    // that keeps a slow backup (Table I's "Basic" list-walk page store)
    // from accumulating unbounded staged state.
    NLC_CHECK(epoch_ >= 1);
    if (epoch_ >= 2) co_await wait_acked(epoch_ - 2);
    co_await checkpoint_once(false);
  }
}

sim::task<> PrimaryAgent::wait_acked(std::uint64_t epoch) {
  // acked_epoch_ == 0 also covers "no ack yet" (epochs are 0-based), so the
  // flag, not the counter, decides whether epoch 0 was acknowledged —
  // otherwise epoch 0's buffered output would be released un-acked.
  while (!any_acked_ || acked_epoch_ < epoch) {
    ack_event_->reset();
    co_await ack_event_->wait();
  }
}

Time PrimaryAgent::send_side_cost(const EpochStateMsg& msg, bool staged) const {
  const auto& c = ckpt_.costs();
  double mb = static_cast<double>(msg.wire_bytes) /
              static_cast<double>(nlc::kMiB);
  // Staged shipping streams out of the staging buffer concurrently with
  // execution at near-wire speed; the synchronous path pays the full
  // user-space TCP copy cost while the container is paused (§V-D(2)).
  Time t = static_cast<Time>(
      mb * static_cast<double>(staged ? c.staged_send_per_mb
                                      : c.sync_send_per_mb));
  if (!opts_.optimize_criu) {
    // Stock CRIU page-server proxies: two extra full copies (§V-A).
    t += static_cast<Time>(2.0 * mb *
                           static_cast<double>(c.proxy_copy_per_mb));
  }
  // Delta encoding runs on the shipping path: staged, it overlaps the next
  // execute phase instead of extending the pause.
  t += static_cast<Time>(msg.compressed_pages) * c.delta_compress_per_page;
  return t;
}

sim::task<> PrimaryAgent::ship_state(EpochStateMsg msg, bool staged,
                                     Time precopy) {
  sim::Simulation& sim = kernel_->simulation();
  const std::uint64_t epoch = msg.epoch;
  // Star fan-out (DESIGN.md §16): each directly-fed replica is a separate
  // socket write from the one dumper thread — the per-MB send cost repeats
  // per destination, while the COW copy-out and the delta encode happen
  // once regardless of fan-out.
  int ndirect = 0;
  for (const Replica& rp : replicas_) ndirect += rp.direct ? 1 : 0;
  NLC_CHECK(ndirect >= 1);
  const Time per_dest = send_side_cost(msg, staged);
  const Time encode_once = static_cast<Time>(msg.compressed_pages) *
                           ckpt_.costs().delta_compress_per_page;
  Time cost = precopy + per_dest +
              static_cast<Time>(ndirect - 1) * (per_dest - encode_once);
  metrics_->primary_agent_busy += cost;
  // One dumper/sender thread: staged ships of consecutive epochs queue
  // behind each other rather than overlapping. Besides modeling the real
  // backpressure, this keeps EpochStateMsg arrivals in epoch order — a
  // long copy-out (COW dump) followed by a short one must not let the
  // later epoch's send overtake the earlier one on the channel.
  Time start = sim.now() > ship_busy_until_ ? sim.now() : ship_busy_until_;
  ship_busy_until_ = start + cost;
  // Span includes the queue wait behind the previous epoch's ship — same
  // convention as the trace span, so the controller and the post-hoc
  // critical path attribute identically.
  if (EpochRec* rec = find_rec(epoch)) rec->ship_b = sim.now();
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimaryShip, trace::Stage::kShip,
                       sim.now(), epoch);
  }
  co_await sim.sleep_for(ship_busy_until_ - sim.now());
  std::uint64_t bytes = msg.wire_bytes;
  metrics_->wire_bytes_fanout += bytes * static_cast<std::uint64_t>(ndirect);
  StateChannel* last_out = nullptr;
  for (Replica& rp : replicas_) {
    if (rp.direct) last_out = rp.state_out;
  }
  for (Replica& rp : replicas_) {
    if (!rp.direct || rp.state_out == last_out) continue;
    EpochStateMsg copy = msg;
    rp.state_out->send(std::move(copy), bytes);
  }
  last_out->send(std::move(msg), bytes);
  if (EpochRec* rec = find_rec(epoch)) rec->ship_e = sim.now();
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimaryShip, trace::Stage::kShip,
                     sim.now(), epoch);
  }
}

sim::task<> PrimaryAgent::checkpoint_once(bool initial) {
  sim::Simulation& sim = kernel_->simulation();
  const auto& costs = ckpt_.costs();
  std::uint64_t epoch = epoch_;
  EpochRec& rec = emplace_rec(epoch);
  rec.initial = initial;
  rec.len_used = initial ? 0 : last_execute_len_;
  rec.stop_begin = sim.now();
  // Pause-to-pause wall time: the denominator of the controller's
  // overhead fraction. Zero for the first steady epoch (its predecessor
  // is the initial full sync, whose wall time is no epoch's).
  if (!initial) {
    rec.epoch_wall =
        last_steady_stop_begin_ >= 0 ? sim.now() - last_steady_stop_begin_ : 0;
    last_steady_stop_begin_ = sim.now();
  }
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimary, trace::Stage::kPause,
                       sim.now(), epoch);
  }

  // ---- Stop the container (freezer, §II-B / §V-A) -------------------------
  kernel_->freeze_container(cid_);
  if (opts_.optimize_criu) {
    Time poll = static_cast<Time>(rng_.normal_clamped(
        static_cast<double>(costs.freezer_poll_mean),
        static_cast<double>(costs.freezer_poll_mean) / 2.0,
        50e3, 1e6));
    co_await sim.sleep_for(poll);
  } else {
    co_await sim.sleep_for(costs.freezer_sleep_quantum);
  }

  // ---- Block network input (§III / §V-C) -----------------------------------
  auto& ingress = tcp_->ingress(service_ip());
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kIngressBlock,
                    sim.now(), epoch);
  }
  if (opts_.plug_input_blocking) {
    ingress.set_mode(net::IngressFilter::Mode::kBuffer);
    co_await sim.sleep_for(costs.plug_block_cost);
  } else {
    ingress.set_mode(net::IngressFilter::Mode::kDrop);
    co_await sim.sleep_for(costs.firewall_block_cost);
  }

  // ---- Mark the end of this epoch's disk writes ----------------------------
  drbd_->send_barrier(epoch);
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kPrimary, trace::Stage::kBarrierSent,
                    sim.now(), epoch);
  }

  // ---- Harvest the container state (CRIU engine) ---------------------------
  // Sharded page pipeline (DESIGN.md §10): harvest fill, delta encode and
  // the backup's fold all fan out on the shared pool when shards > 1;
  // outputs are byte-identical to the serial engine either way.
  int pshards = delta_.shards();
  util::WorkerPool* ppool = pshards > 1 ? &util::shard_pool() : nullptr;
  criu::HarvestOptions ho;
  ho.incremental = !initial;
  ho.vma_via_netlink = opts_.vma_via_netlink;
  ho.pages_via_shared_memory = opts_.pages_via_shared_memory;
  ho.fs_cache_via_dnc = opts_.fs_cache_via_dnc;
  ho.shards = pshards;
  ho.pool = ppool;
  const criu::InfrequentState* cached =
      opts_.cache_infrequent_state ? cache_.get() : nullptr;
  rec.harvest_b = sim.now();
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kPrimary, trace::Stage::kHarvest,
                       sim.now(), epoch);
  }
  const std::uint64_t harvest_t0 = util::wall_now_ns();
  criu::HarvestResult hr = ckpt_.harvest(cid_, epoch, cached, ho);
  metrics_->shard_stage_ns.harvest += util::wall_now_ns() - harvest_t0;
  if (opts_.cache_infrequent_state) cache_.update(hr.image.infrequent);
  // HyCoR-style COW dump (replay mode, DESIGN.md §14): the frozen window
  // arms write protection on the dirty set instead of copying it; the
  // copy-out overlaps the next execute phase and is charged to the
  // shipping path below (the delta cannot serialize before it finishes).
  // Epoch mode keeps the copy inside the stop (NiLiCon §V-D), since the
  // epoch's output is plugged until commit anyway.
  const bool cow_dump = replay_mode() && opts_.staging_buffer && !initial;
  Time stop_cost = hr.cost.total();
  Time deferred_copy = 0;
  if (cow_dump) {
    deferred_copy = hr.cost.page_copy;
    stop_cost -= deferred_copy;
    stop_cost += static_cast<Time>(hr.image.dirty_page_count()) *
                 costs.cow_protect_per_page;
  }
  co_await sim.sleep_for(stop_cost);
  metrics_->primary_agent_busy += stop_cost;
  metrics_->payload_copies_avoided += hr.content_pages;
  rec.harvest_e = sim.now();
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimary, trace::Stage::kHarvest,
                     sim.now(), epoch);
  }

  EpochStateMsg msg;
  msg.epoch = epoch;
  if (opts_.delta_compress_pages) {
    // Stamp per-page compressed wire sizes (real XOR/run-length encode
    // against the last shipped versions); the modeled CPU cost rides the
    // shipping path below.
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kPrimary, trace::Stage::kEncode,
                         sim.now(), epoch);
    }
    const std::uint64_t encode_t0 = util::wall_now_ns();
    criu::EpochDeltaStats ds = delta_.encode_epoch(hr.image, ppool);
    metrics_->shard_stage_ns.encode += util::wall_now_ns() - encode_t0;
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kPrimary, trace::Stage::kEncode,
                       sim.now(), epoch);
    }
    msg.compressed_pages = ds.content_pages;
    // Per-epoch log-stream bytes (replay mode): everything the log
    // channel shipped since the previous checkpoint. Kept out of the page
    // stream's wire/compression accounting.
    ds.log_bytes = metrics_->log_bytes_shipped - log_bytes_at_last_epoch_;
    log_bytes_at_last_epoch_ = metrics_->log_bytes_shipped;
    if (!initial && ds.content_pages > 0) {
      metrics_->compression_ratio.add(ds.ratio());
      metrics_->wire_bytes_saved += ds.raw_bytes - ds.wire_bytes;
    }
  }
  msg.wire_bytes = hr.image.byte_size();
  std::uint64_t dirty = hr.image.dirty_page_count();
  std::uint64_t bytes = msg.wire_bytes;
  msg.image = std::move(hr.image);
  // Replay mode: stamp the event-log position whose effects this image
  // already contains. The container is frozen, so the stamp is exact;
  // failover replays only events recorded after it.
  msg.nd_entries = nd_log_.entries_total();
  msg.nd_fp = nd_log_.chain_fp();
  msg.epoch_len = rec.len_used;
  // Controller feed: dirty set, page wire bytes and the epoch's log-stream
  // growth (entries recorded / bytes shipped since the last checkpoint).
  rec.dirty = dirty;
  rec.wire_bytes = bytes;
  rec.nd_entries_delta = nd_log_.entries_total() - nd_entries_mark_;
  nd_entries_mark_ = nd_log_.entries_total();
  rec.log_bytes_delta = metrics_->log_bytes_shipped - log_bytes_ctl_mark_;
  log_bytes_ctl_mark_ = metrics_->log_bytes_shipped;
  if (audit_ != nullptr) audit_->on_state_ready(msg, initial);
  if (trace_ != nullptr) {
    trace_->counter(trace::Track::kPrimary, trace::Stage::kDirtyPages,
                    sim.now(), dirty);
    trace_->counter(trace::Track::kPrimary, trace::Stage::kWireBytes,
                    sim.now(), bytes);
  }

  // ---- Ship (synchronously if no staging buffer, §V-D(2)) ------------------
  bool sync_ship = initial || !opts_.staging_buffer;
  if (sync_ship) {
    co_await ship_state(std::move(msg), /*staged=*/false);
    co_await wait_acked(epoch);
  }

  // ---- Unblock input, arm output commit, resume ---------------------------
  if (opts_.plug_input_blocking) {
    ingress.set_mode(net::IngressFilter::Mode::kPass);
  } else {
    ingress.set_mode(net::IngressFilter::Mode::kPass);
    co_await sim.sleep_for(costs.firewall_unblock_cost);
  }
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetPrimary,
                    trace::Stage::kIngressUnblock, sim.now(), epoch);
  }
  if (!replay_mode()) {
    rec.marker = plug().insert_marker();
    if (audit_ != nullptr) audit_->on_marker_inserted(epoch, rec.marker);
  }
  // In replay mode no epoch marker exists — output is bounded by log-
  // segment markers and released by log_ack_loop() — but the record is
  // still armed so the epoch ack retires it (and its commit latency).
  rec.marker_inserted = true;
  kernel_->thaw_container(cid_);
  rec.pause_end = sim.now();
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kPrimary, trace::Stage::kPause,
                     sim.now(), epoch);
    trace_->instant(trace::Track::kPrimary, trace::Stage::kResume,
                    sim.now(), epoch);
  }

  Time stop = sim.now() - rec.stop_begin;
  // The initial full synchronization is a one-off warm-up, not an epoch of
  // steady-state operation: keep it out of the per-epoch statistics.
  if (!initial) {
    metrics_->stop_time_ms.add(to_millis(stop));
    metrics_->state_bytes.add(static_cast<double>(bytes));
    metrics_->dirty_pages.add(static_cast<double>(dirty));
    metrics_->epoch_len_ms.add(to_millis(rec.len_used));
    ++metrics_->epochs_completed;
    metrics_->bytes_shipped += bytes;
  }

  if (sync_ship) {
    // The ack arrived while the container was still paused: the epoch is
    // committed, release its buffered output now.
    release_epoch(rec);
  } else {
    // Staged: ship concurrently with the next execute phase; the ack_loop
    // releases the marker when the backup confirms.
    sim.spawn(kernel_->domain(),
              ship_state(std::move(msg), /*staged=*/true, deferred_copy));
  }
  ++epoch_;
}

sim::task<> PrimaryAgent::ack_loop(std::size_t replica) {
  // Gated on running_ like epoch_loop/heartbeat_loop: after stop() the
  // next ack (if any) is still applied — releasing output that the backup
  // committed is always correct — but then the loop exits instead of
  // parking on recv() until teardown destroys the frame.
  while (running_) {
    AckMsg ack = co_await replicas_[replica].ack_in->recv();
    apply_replica_ack(replica, ack.epoch);
  }
}

std::uint64_t PrimaryAgent::quorum_epoch(bool* any) const {
  std::array<std::uint64_t, kMaxReplicas> cur{};
  std::size_t n = 0;
  for (const Replica& rp : replicas_) {
    if (rp.any_acked) cur[n++] = rp.acked_epoch;
  }
  if (n < static_cast<std::size_t>(quorum_k_)) {
    *any = false;
    return 0;
  }
  std::sort(cur.begin(), cur.begin() + static_cast<std::ptrdiff_t>(n),
            std::greater<>());
  *any = true;
  return cur[static_cast<std::size_t>(quorum_k_) - 1];
}

void PrimaryAgent::sample_quorum_metrics(std::uint64_t q, Time now) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& rp = replicas_[i];
    const std::uint64_t cursor = rp.any_acked ? rp.acked_epoch : 0;
    if (i < metrics_->replica_ack_lag.size()) {
      metrics_->replica_ack_lag[i].add(
          static_cast<double>(cursor >= q ? 0 : q - cursor));
    }
  }
  if (EpochRec* rec = find_rec(q);
      rec != nullptr && rec->first_ack_at >= 0) {
    metrics_->quorum_wait_ms.add(to_millis(now - rec->first_ack_at));
  }
}

void PrimaryAgent::apply_replica_ack(std::size_t r, std::uint64_t epoch) {
  Replica& rep = replicas_[r];
  NLC_CHECK_MSG(!rep.any_acked || epoch >= rep.acked_epoch,
                "acks must be monotone");
  rep.acked_epoch = epoch;
  rep.any_acked = true;
  const Time now = kernel_->simulation().now();
  const bool multi = replicas_.size() > 1;
  if (audit_ != nullptr) audit_->on_replica_ack(static_cast<int>(r), epoch);
  if (multi) {
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kPrimary, trace::Stage::kReplicaAck, now,
                      epoch);
    }
    if (EpochRec* rec = find_rec(epoch);
        rec != nullptr && rec->first_ack_at < 0) {
      rec->first_ack_at = now;
    }
  }
  // Quorum gate: the released cursor is the K-th largest per-replica
  // cursor. At N = 1 every ack IS a quorum advance (K = 1), reproducing
  // the two-node engine's behaviour exactly.
  bool qany = false;
  const std::uint64_t q = quorum_epoch(&qany);
  if (!qany) return;
  const bool advanced = !multi || !any_acked_ || q > acked_epoch_;
  if (!advanced) return;
  const std::uint64_t prev = acked_epoch_;
  const bool had = any_acked_;
  acked_epoch_ = q;
  any_acked_ = true;
  if (audit_ != nullptr) audit_->on_ack_received(q);
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kPrimary, trace::Stage::kAckRecv, now, q);
  }
  ack_event_->set();
  if (multi) sample_quorum_metrics(q, now);
  // Release every live epoch the quorum advance covers. A single advance
  // can commit several epochs at once when the K-th replica catches up in
  // one jump (chain topology under lag).
  const std::uint64_t from = had ? prev + 1 : 0;
  for (std::uint64_t e = from; e <= q; ++e) {
    EpochRec* rec = find_rec(e);
    if (rec != nullptr && rec->marker_inserted) release_epoch(*rec);
  }
}

void PrimaryAgent::feed_controller(const EpochRec& rec, Time now) {
  // Same segment math as trace::CriticalPath, over the record's stamps
  // (encode is zero-width in simulated time; its modeled cost rides the
  // ship span). Unset stamps collapse to their predecessor, as in the
  // post-hoc analyzer.
  auto clamp0 = [](Time t) { return t < 0 ? Time{0} : t; };
  const Time harvest_b = rec.harvest_b > 0 ? rec.harvest_b : rec.stop_begin;
  const Time harvest_e = rec.harvest_e > 0 ? rec.harvest_e : harvest_b;
  const Time ship_b = rec.ship_b > 0 ? rec.ship_b : harvest_e;
  const Time ship_e = rec.ship_e > 0 ? rec.ship_e : ship_b;
  epochctl::EpochObservation o;
  o.epoch = rec.epoch;
  auto& s = o.path.stage_ns;
  s[trace::kPsFreeze] = clamp0(harvest_b - rec.stop_begin);
  s[trace::kPsHarvest] = clamp0(harvest_e - harvest_b);
  s[trace::kPsEncode] = 0;
  s[trace::kPsTail] = clamp0(ship_b - harvest_e);
  s[trace::kPsShip] = clamp0(ship_e - ship_b);
  s[trace::kPsAckWait] = clamp0(now - ship_e);
  o.path.commit_latency = clamp0(now - rec.stop_begin);
  o.stop = clamp0(rec.pause_end - rec.stop_begin);
  o.epoch_wall = rec.epoch_wall;
  o.dirty_pages = rec.dirty;
  o.wire_bytes = rec.wire_bytes;
  o.log_entries = rec.nd_entries_delta;
  o.log_bytes = rec.log_bytes_delta;
  // Released-output presence since the previous observation (the epoch-mode
  // shrink gate). released_total() is cumulative across release paths
  // (epoch markers and replay log acks alike).
  const std::uint64_t released_now = plug().released_total();
  o.output_packets = released_now - released_mark_;
  released_mark_ = released_now;
  o.plug_drained = last_release_drained_;
  // Container capacity signal: CPU time consumed since the previous feed.
  const Time cpu_now = kernel_->container(cid_)->cpu().usage();
  o.busy = cpu_now - cpu_mark_;
  cpu_mark_ = cpu_now;
  controller_.observe(o);
  metrics_->ctl_grow_steps = controller_.grow_steps();
  metrics_->ctl_shrink_steps = controller_.shrink_steps();
  metrics_->ctl_last_change_epoch = controller_.last_change_epoch();
  metrics_->ctl_final_epoch_len = controller_.epoch_length();
}

void PrimaryAgent::release_epoch(EpochRec& rec) {
  if (!rec.initial) {
    feed_controller(rec, kernel_->simulation().now());
  }
  if (replay_mode()) {
    // Output already flows on log acks; the epoch ack only marks the
    // asynchronous page-delta commit and retires the pipeline record.
    metrics_->commit_latency_ms.add(
        to_millis(kernel_->simulation().now() - rec.stop_begin));
    erase_rec(rec.epoch);
    return;
  }
  if (audit_ != nullptr) audit_->on_release(rec.epoch);
  if (trace_ != nullptr) {
    const Time now = kernel_->simulation().now();
    trace_->instant(trace::Track::kPrimary, trace::Stage::kRelease, now,
                    rec.epoch);
    const std::uint64_t released_before = plug().released_total();
    plug().release_to_marker(rec.marker);
    trace_->instant(trace::Track::kNetPrimary, trace::Stage::kPlugRelease,
                    now, plug().released_total() - released_before);
  } else {
    plug().release_to_marker(rec.marker);
  }
  // Post-release plug state for the controller's next observation: an
  // empty plug here means this commit drained all outstanding output (the
  // request-response regime the epoch-mode shrink gate looks for).
  last_release_drained_ = plug().pending_bytes() == 0;
  metrics_->commit_latency_ms.add(
      to_millis(kernel_->simulation().now() - rec.stop_begin));
  erase_rec(rec.epoch);
}

sim::task<> PrimaryAgent::log_flush_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (running_) {
    co_await log_flush_event_->wait();
    log_flush_event_->reset();
    if (!running_) break;
    // Coalesce: output enqueued within the window shares one segment (and
    // one replication-link round trip).
    co_await sim.sleep_for(opts_.log_flush_delay);
    if (opts_.epoch_policy == EpochPolicy::kAdaptive) {
      // Adaptive segment cut (DESIGN.md §15): instead of shipping after
      // every flush tick, keep coalescing until enough buffered-output or
      // pending-log bytes justify a wire round trip — fewer, larger log
      // ships under long epochs — but never hold a response longer than
      // log_cut_max_delay past the first wake.
      const Time armed_at = sim.now();
      while (running_ && plug().pending_bytes() < opts_.log_cut_bytes &&
             nd_log_.pending_wire_bytes() < opts_.log_cut_bytes &&
             sim.now() - armed_at < opts_.log_cut_max_delay) {
        co_await sim.sleep_for(opts_.log_flush_delay);
      }
    }
    // Cut and marker insert run in one scheduler step, so the marker
    // bounds exactly the output produced by the events in this segment.
    LogSegmentMsg seg = nd_log_.cut_segment();
    const std::uint64_t seq = seg.seq;
    const std::uint64_t marker = plug().insert_marker();
    seg_recs_.emplace(seq, SegRec{marker, sim.now()});
    if (audit_ != nullptr) audit_->on_log_shipped(seg, marker);
    const std::uint64_t bytes = log_segment_wire_bytes(seg);
    const Time cost =
        log_costs_.flush_base +
        static_cast<Time>(seg.entries.size()) * log_costs_.flush_per_entry;
    metrics_->primary_agent_busy += cost;
    metrics_->log_entries_recorded += seg.entries.size();
    ++metrics_->log_segments_shipped;
    metrics_->log_bytes_shipped += bytes;
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kPrimaryShip, trace::Stage::kLogShip,
                         sim.now(), seq);
      trace_->counter(trace::Track::kPrimaryShip, trace::Stage::kLogBytes,
                      sim.now(), bytes);
    }
    co_await sim.sleep_for(cost);
    // Fan out to every directly-fed replica (star); chain replicas get the
    // segment forwarded by their upstream BackupAgent.
    LogChannel* last_out = nullptr;
    int ndirect = 0;
    for (Replica& rp : replicas_) {
      if (rp.direct) {
        last_out = rp.log_out;
        ++ndirect;
      }
    }
    metrics_->wire_bytes_fanout +=
        bytes * static_cast<std::uint64_t>(ndirect);
    for (Replica& rp : replicas_) {
      if (!rp.direct || rp.log_out == last_out) continue;
      LogSegmentMsg copy = seg;
      rp.log_out->send(std::move(copy), bytes);
    }
    last_out->send(std::move(seg), bytes);
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kPrimaryShip, trace::Stage::kLogShip,
                       sim.now(), seq);
    }
  }
}

sim::task<> PrimaryAgent::log_ack_loop(std::size_t replica) {
  while (running_) {
    LogAckMsg ack = co_await replicas_[replica].log_ack_in->recv();
    auto it = seg_recs_.find(ack.seq);
    NLC_CHECK_MSG(it != seg_recs_.end(), "log ack for an unknown segment");
    if (audit_ != nullptr) {
      audit_->on_replica_log_ack(static_cast<int>(replica), ack.seq);
    }
    SegRec& sr = it->second;
    ++sr.acks;
    if (!sr.released && sr.acks >= quorum_k_) {
      // K-of-N log quorum: the K-th replica can replay to this segment's
      // end, so everything buffered before its marker may leave.
      sr.released = true;
      if (audit_ != nullptr) audit_->on_log_ack_received(ack.seq);
      const Time now = kernel_->simulation().now();
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kPrimary, trace::Stage::kLogAckRecv,
                        now, ack.seq);
      }
      if (audit_ != nullptr) audit_->on_log_release(ack.seq);
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kPrimary, trace::Stage::kLogRelease,
                        now, ack.seq);
        const std::uint64_t released_before = plug().released_total();
        plug().release_to_marker(sr.marker);
        trace_->instant(trace::Track::kNetPrimary,
                        trace::Stage::kPlugRelease, now,
                        plug().released_total() - released_before);
      } else {
        plug().release_to_marker(sr.marker);
      }
      metrics_->log_commit_latency_ms.add(to_millis(now - sr.cut_at));
    }
    // Retire only once every replica confirmed; with N = 1 that is the
    // same step as the release above, keeping the two-node path intact.
    if (sr.acks >= static_cast<int>(replicas_.size())) seg_recs_.erase(it);
  }
}

sim::task<> PrimaryAgent::heartbeat_loop() {
  sim::Simulation& sim = kernel_->simulation();
  std::uint64_t seq = 0;
  Time last_usage = -1;
  while (running_) {
    co_await sim.sleep_for(opts_.heartbeat_interval);
    const kern::Container* c = kernel_->container(cid_);
    if (c == nullptr) break;
    Time usage = c->cpu().usage();
    // Send as long as the container makes progress (§IV). A container
    // frozen by our own checkpoint is alive by construction, so the agent
    // keeps beating through long pauses instead of inducing a false alarm.
    if (usage > last_usage || c->frozen()) {
      // The control plane is a star regardless of replication topology:
      // every replica's detector hears the primary directly.
      for (Replica& rp : replicas_) {
        rp.hb_out->send(HeartbeatMsg{seq, sim.now()}, 64);
      }
      ++seq;
    }
    last_usage = usage;
  }
}

}  // namespace nlc::core
