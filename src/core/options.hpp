// NiLiCon configuration: epoch timing, failure detection, and one flag per
// optimization so Table I's ablation runs real alternative code paths.
#pragma once

#include <cstdint>
#include <string>

#include "topo/topology.hpp"
#include "util/simd.hpp"
#include "util/time.hpp"
#include "util/worker_pool.hpp"

namespace nlc::core {

/// How aggressively the invariant auditor (src/check) validates the
/// replication protocol at runtime.
///  kOff          — no observers installed; zero cost.
///  kCommitPoints — ordering and equivalence invariants checked at every
///                  epoch commit and at failover.
///  kContinuous   — additionally re-fingerprints frozen COW payloads on
///                  every commit and on a periodic simulation probe, and
///                  shadow-replays the delta codec per shipped epoch.
enum class AuditLevel : std::uint8_t { kOff, kCommitPoints, kContinuous };

/// Flight-recorder tracing level (src/trace).
///  kOff  — no recorder attached; every instrumentation site is a single
///          null-pointer test (bench_trace_overhead gates this at <= 1%).
///  kFull — record every epoch- and failover-pipeline event into the
///          per-thread rings. Tracing is an observer only: all simulated
///          observables stay byte-identical with tracing on or off.
enum class TraceLevel : std::uint8_t { kOff, kFull };

/// Output-commit discipline (DESIGN.md §14).
///  kEpoch  — NiLiCon: client output is held until the whole epoch's dirty
///            state is shipped and acknowledged (p99 tracks epoch length).
///  kReplay — HyCoR: nondeterministic events are logged and shipped on a
///            small side channel; output is released as soon as the event
///            log covering it is acknowledged, while the page delta commits
///            asynchronously. On failover the backup replays the committed
///            log on top of the restored checkpoint.
enum class CommitMode : std::uint8_t { kEpoch, kReplay };

/// Epoch-length policy (DESIGN.md §15).
///  kFixed    — the paper's behaviour: every epoch runs Options::epoch_length.
///  kAdaptive — core::EpochController retunes the length at runtime from the
///              per-epoch critical-path segments. In epoch commit mode it
///              minimizes p99 response time subject to the stop-time budget;
///              in replay commit mode (where the latency sweep is flat) it
///              stretches epochs toward replay_epoch_target to cut page wire
///              bytes, bounded by the recovery-replay and log-memory budgets.
enum class EpochPolicy : std::uint8_t { kFixed, kAdaptive };

struct Options {
  /// Execution-phase length per epoch (paper: 30 ms). With
  /// epoch_policy = kAdaptive this is only the starting point.
  Time epoch_length = nlc::milliseconds(30);

  // ---- Adaptive epoch control (DESIGN.md §15) ------------------------------
  EpochPolicy epoch_policy = EpochPolicy::kFixed;
  /// Clamp range for adapted lengths (epoch commit mode; replay mode may
  /// grow past epoch_max up to replay_epoch_target).
  Time epoch_min = nlc::milliseconds(5);
  Time epoch_max = nlc::milliseconds(240);
  /// Replay mode: the HyCoR-style long-epoch target (second-scale
  /// checkpoints). 2 s is where the paper benchmarks' dirty-set saturation
  /// pays off: every locality app re-dirties enough of its working set
  /// that page wire bytes drop >= 3x vs the fixed 30 ms epochs.
  Time replay_epoch_target = nlc::seconds(2);
  /// Hard ceiling on the per-epoch container stop time; the controller
  /// shrinks whenever the observed stop EWMA exceeds it. Calibrated just
  /// above the paper's worst Table III stop (node: 38.2 ms at the default
  /// 30 ms epochs) — a budget below what the fixed-epoch baseline already
  /// incurs would misread the workload as over-length and shrink into
  /// pure capacity loss (the stop is base-dominated there, so shrinking
  /// cannot buy it back).
  Time stop_budget = nlc::milliseconds(40);
  /// Replay mode: bound on the estimated failover replay time implied by
  /// the un-checkpointed log backlog (≤ 2 epochs of entries).
  Time replay_budget = nlc::milliseconds(150);
  /// Replay mode: bound on the estimated backup-retained log bytes
  /// (checkpoint-commit truncation keeps ~2 epochs of segments alive).
  std::uint64_t log_retained_budget = 16ull << 20;
  /// Adaptive segment cut (replay mode): flush once this many buffered
  /// output bytes are waiting on the log, instead of after every
  /// log_flush_delay tick...
  std::uint64_t log_cut_bytes = 4096;
  /// ...but never hold a response longer than this past the first wake.
  Time log_cut_max_delay = nlc::microseconds(250);

  // ---- Table I optimizations (cumulative rows) ----------------------------
  /// §V-A: radix-tree page store on the backup, polling freezer instead of
  /// the 100 ms sleep, and direct agent-to-agent transfer (no proxies).
  bool optimize_criu = true;
  /// §V-B: cache infrequently-modified in-kernel state, invalidated via
  /// ftrace hooks.
  bool cache_infrequent_state = true;
  /// §V-C: block network input by buffering (sch_plug) instead of firewall
  /// drops.
  bool plug_input_blocking = true;
  /// §V-D(1): VMA discovery via the task-diag netlink patch.
  bool vma_via_netlink = true;
  /// §V-D(2): copy dirty pages to a local staging buffer and resume the
  /// container before shipping them.
  bool staging_buffer = true;
  /// §V-D(3): parasite hands pages over shared memory instead of a pipe.
  bool pages_via_shared_memory = true;
  /// Extension beyond the paper: XOR/run-length delta-compress each dirty
  /// content page against its last shipped version before putting it on
  /// the replication wire (criu/delta.hpp). Off by default so the stock
  /// configuration matches the paper's Table I calibration.
  bool delta_compress_pages = false;

  // ---- Other mechanisms ----------------------------------------------------
  /// §V-E: clamp the repaired-socket retransmission timeout to 200 ms.
  bool rto_repair_fix = true;
  /// §III: harvest the fs cache via DNC/fgetfc (false = flush-to-NAS
  /// ablation).
  bool fs_cache_via_dnc = true;
  /// §III/§IV: keep ingress blocked during recovery until sockets exist.
  bool block_input_during_recovery = true;

  // ---- Output commit (DESIGN.md §14) ---------------------------------------
  /// kEpoch reproduces the paper; kReplay releases output on event-log ack.
  CommitMode commit_mode = CommitMode::kEpoch;
  /// Replay mode: how long the primary coalesces buffered output before
  /// cutting and shipping a log segment. Bounds the added client latency
  /// together with the replication-link round trip.
  Time log_flush_delay = nlc::microseconds(50);

  // ---- N-way replication (DESIGN.md §16) -----------------------------------
  /// Backup replica count. 1 reproduces the paper's two-node testbed
  /// byte-identically; N > 1 places the backups across the cluster's
  /// fault-domain tree and releases output on a K-of-N quorum.
  int replicas = 1;
  /// Acks required before plugged output (and, in replay mode, the log
  /// segment) releases. 0 = auto: a majority, replicas / 2 + 1.
  int quorum_k = 0;
  /// How epoch state and the nd-event log reach the replicas: star fan-out
  /// from the primary's replication NIC, or a store-and-forward chain
  /// through the backups (topo/topology.hpp).
  topo::Topology topology = topo::Topology::kStar;

  int resolved_quorum() const {
    int k = quorum_k > 0 ? quorum_k : replicas / 2 + 1;
    if (k < 1) k = 1;
    return k > replicas ? replicas : k;
  }

  // ---- Failure detection (§IV) ---------------------------------------------
  Time heartbeat_interval = nlc::milliseconds(30);
  int heartbeat_miss_threshold = 3;

  std::uint64_t seed = 1;

  /// Runtime invariant auditing (src/check). The harness attaches an
  /// InvariantAuditor to the agent pair when this is not kOff.
  AuditLevel audit_level = AuditLevel::kOff;

  /// Flight-recorder tracing (src/trace, DESIGN.md §11). The Cluster creates
  /// a trace::Recorder and wires it into both agents, both TCP stacks and
  /// the DRBD backup when this is not kOff.
  TraceLevel trace_level = TraceLevel::kOff;

  /// DESIGN.md §10: intra-epoch page-pipeline shard count. 0 = auto
  /// (NLC_SHARDS env, else hardware concurrency); 1 = the serial reference
  /// engine. All shipped bytes, stats and visit counts are byte-identical
  /// for any value — only wall clock changes.
  int page_shards = 0;

  int resolved_page_shards() const {
    int s = page_shards > 0 ? page_shards : util::env_shards();
    if (s < 1) return 1;
    return s > util::kMaxShards ? util::kMaxShards : s;
  }

  /// DESIGN.md §12: scan-kernel tier of the sharded delta codec. kAuto
  /// defers to NLC_SIMD (scalar | swar64 | simd | auto = fastest the CPU
  /// runs). Every tier produces byte-identical observables — only wall
  /// clock changes; NLC_SHARDS=1 keeps the scalar reference engine
  /// regardless of tier.
  util::SimdTier simd_tier = util::SimdTier::kAuto;

  util::SimdTier resolved_simd_tier() const {
    return util::resolve_simd_tier(simd_tier);
  }

  /// The seven cumulative configurations of Table I, row index 0..6.
  /// Row 7 is our ablation extension: everything plus page delta
  /// compression.
  static Options table1_row(int row) {
    Options o;
    o.optimize_criu = row >= 1;
    o.cache_infrequent_state = row >= 2;
    o.plug_input_blocking = row >= 3;
    o.vma_via_netlink = row >= 4;
    o.staging_buffer = row >= 5;
    o.pages_via_shared_memory = row >= 6;
    o.delta_compress_pages = row >= 7;
    return o;
  }

  static const char* table1_row_name(int row) {
    switch (row) {
      case 0: return "Basic implementation";
      case 1: return "+ Optimize CRIU";
      case 2: return "+ Cache infrequently-modified state";
      case 3: return "+ Optimize blocking network input";
      case 4: return "+ Obtain VMAs from netlink";
      case 5: return "+ Add memory staging buffer";
      case 6: return "+ Transfer dirty pages via shared memory";
      case 7: return "+ Delta-compress dirty pages (extension)";
    }
    return "?";
  }
};

}  // namespace nlc::core
