#include "core/replay.hpp"

#include "util/assert.hpp"

namespace nlc::core::replay {

bool ReplayEngine::ingest(const LogSegmentMsg& seg) {
  // Sequence gap, duplicate, or reordering: the chain below would also
  // catch it, but the seq check names the failure precisely.
  if (seg.seq != next_seq_) {
    ++rejected_;
    return false;
  }
  // Continuity: the segment must extend the accepted prefix exactly.
  if (seg.start_index != end_index_ || seg.start_fp != end_fp_) {
    ++rejected_;
    return false;
  }
  // Refold the entries: a truncated or corrupted segment cannot reproduce
  // the end fingerprint it claims.
  std::uint64_t fp = seg.start_fp;
  for (const NdEvent& e : seg.entries) fp = nd_chain_fold(fp, e);
  if (fp != seg.end_fp) {
    ++rejected_;
    return false;
  }
  end_index_ += seg.entries.size();
  end_fp_ = seg.end_fp;
  ++next_seq_;
  retained_bytes_ += log_segment_wire_bytes(seg);
  segments_.push_back(seg);
  return true;
}

std::size_t ReplayEngine::prune_below(std::uint64_t entry_index) {
  // A segment straddling the boundary stays: replay() skips its covered
  // prefix entry by entry.
  std::size_t pruned = 0;
  while (!segments_.empty()) {
    const LogSegmentMsg& front = segments_.front();
    if (front.start_index + front.entries.size() > entry_index) break;
    retained_bytes_ -= log_segment_wire_bytes(front);
    segments_.pop_front();
    ++pruned;
  }
  return pruned;
}

ReplayResult ReplayEngine::replay(std::uint64_t from_entry,
                                  std::uint64_t from_fp) const {
  ReplayResult r;
  r.final_fp = from_fp;
  if (from_entry >= end_index_) return r;
  r.cost = costs_.replay_base;
  for (const LogSegmentMsg& seg : segments_) {
    std::uint64_t index = seg.start_index;
    std::uint64_t fp = seg.start_fp;
    bool touched = false;
    for (const NdEvent& e : seg.entries) {
      if (index >= from_entry) {
        if (index == from_entry) {
          // The committed checkpoint's stamp must lie on the logged chain,
          // or the restored state is not the replay's starting point.
          NLC_CHECK_MSG(fp == from_fp,
                        "replay: committed checkpoint stamp is off the "
                        "accepted event chain");
          fp = from_fp;
        }
        fp = nd_chain_fold(fp, e);
        ++r.entries_replayed;
        touched = true;
        r.final_fp = fp;
      } else {
        fp = nd_chain_fold(fp, e);
      }
      ++index;
    }
    if (touched) ++r.segments_replayed;
  }
  r.cost += static_cast<Time>(r.entries_replayed) * costs_.replay_per_entry;
  return r;
}

}  // namespace nlc::core::replay
