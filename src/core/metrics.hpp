// Measurement collectors for the evaluation harness (Tables III-V).
#pragma once

#include <cstdint>
#include <vector>

#include "util/simd.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace nlc::core {

/// Wall-clock (util::wall_now_ns) nanoseconds spent in each stage of the
/// sharded intra-epoch page pipeline (DESIGN.md §10). Observability only:
/// these never feed back into simulated time or the cost model, so the
/// simulation's numbers stay identical across shard counts.
struct ShardStageNanos {
  std::uint64_t harvest = 0;  // frozen-state page-record fill
  std::uint64_t encode = 0;   // delta encode + wire-size stamping
  std::uint64_t fold = 0;     // backup radix-store fold
};

struct ReplicationMetrics {
  /// Per-epoch container stop time (Table III / IV).
  Samples stop_time_ms;
  /// Per-epoch transferred state size in bytes (Table IV).
  Samples state_bytes;
  /// Per-epoch dirty page count (Table III).
  Samples dirty_pages;
  /// Per-epoch time from pause begin to buffered-output release
  /// (checkpoint commit latency; bounds added response delay).
  Samples commit_latency_ms;

  std::uint64_t epochs_completed = 0;
  std::uint64_t bytes_shipped = 0;

  // ---- Event-log stream (commit_mode = kReplay, DESIGN.md §14) ------------
  /// Event-log wire bytes, accounted separately from `bytes_shipped` (the
  /// page-delta stream) so overhead reports show both streams.
  std::uint64_t log_bytes_shipped = 0;
  std::uint64_t log_segments_shipped = 0;
  std::uint64_t log_entries_recorded = 0;
  /// Per-segment time from log cut to buffered-output release — the
  /// client-visible output-commit delay in replay mode (compare against
  /// `commit_latency_ms`, which still tracks the full epoch commit).
  Samples log_commit_latency_ms;
  /// High-water mark of log bytes the backup holds accepted but not yet
  /// pruned. Checkpoint-commit truncation keeps this bounded (≈ 2 epochs
  /// of segments) regardless of run length — regression-tested with 1 s
  /// epochs.
  std::uint64_t log_retained_bytes_peak = 0;
  /// Segments the backup dropped because a committed checkpoint already
  /// contained their effects.
  std::uint64_t log_pruned_segments = 0;

  // ---- N-way quorum replication (DESIGN.md §16) ---------------------------
  /// Per-replica ack cursor lag behind the quorum cursor (epochs), sampled
  /// at every quorum advance. Empty in the two-node configuration (N = 1),
  /// so existing reports are untouched.
  std::vector<Samples> replica_ack_lag;
  /// Per epoch: time from the first replica's ack to the K-th (the quorum
  /// wait the slowest needed replica adds). N > 1 only.
  Samples quorum_wait_ms;
  /// State + log bytes actually placed on replication links, counting every
  /// fan-out copy (primary sends per direct replica; chain forwards add
  /// theirs). At N = 1 this equals bytes_shipped + log_bytes_shipped.
  std::uint64_t wire_bytes_fanout = 0;

  // ---- Adaptive epoch controller (DESIGN.md §15) --------------------------
  /// Execute-phase length each completed epoch actually ran (constant
  /// under EpochPolicy::kFixed; nlc_run renders the histogram).
  Samples epoch_len_ms;
  std::uint64_t ctl_grow_steps = 0;
  std::uint64_t ctl_shrink_steps = 0;
  /// Epoch of the controller's last length change (0 = never adapted):
  /// the convergence point.
  std::uint64_t ctl_last_change_epoch = 0;
  /// Length the controller had converged to when the run ended.
  Time ctl_final_epoch_len = 0;

  // ---- Zero-copy page pipeline + delta compression (extension) ------------
  /// Per-epoch page-payload compression ratio (wire / raw; 1.0 = no gain).
  Samples compression_ratio;
  /// Page bytes the delta stage kept off the replication wire.
  std::uint64_t wire_bytes_saved = 0;
  /// Content-page payloads handed through the pipeline as shared handles
  /// (each one a 4 KiB deep copy the pre-zero-copy pipeline would have
  /// made at harvest alone).
  std::uint64_t payload_copies_avoided = 0;

  // ---- Sharded page pipeline (DESIGN.md §10/§12) --------------------------
  /// Shard count the agent pair ran with (resolved from Options/NLC_SHARDS).
  int page_shards_used = 1;
  /// Delta-codec scan-kernel tier the primary ran with (resolved from
  /// Options::simd_tier / NLC_SIMD; util::simd_tier_name() renders it).
  /// Observability only — observables are tier-independent.
  util::SimdTier simd_tier_used = util::SimdTier::kScalar;
  /// Per-stage wall-clock accounting (not simulated time).
  ShardStageNanos shard_stage_ns;

  /// Simulated CPU time the backup agent spent processing state (Table V).
  Time backup_busy = 0;
  /// Simulated CPU time the primary agent spent outside the container
  /// (harvest, bookkeeping).
  Time primary_agent_busy = 0;

  void record_epoch(Time stop, std::uint64_t bytes, std::uint64_t dpages,
                    Time commit_latency) {
    stop_time_ms.add(to_millis(stop));
    state_bytes.add(static_cast<double>(bytes));
    dirty_pages.add(static_cast<double>(dpages));
    commit_latency_ms.add(to_millis(commit_latency));
    ++epochs_completed;
    bytes_shipped += bytes;
  }
};

struct RecoveryMetrics {
  bool triggered = false;
  Time detection_started = 0;   // primary declared dead
  Time detection_latency = 0;   // silence until declaration
  Time restore_time = 0;        // image build + restore engine
  Time arp_time = 0;
  Time misc_time = 0;
  Time total_unavailability = 0;  // as seen by the recovery driver
  std::uint64_t pages_restored = 0;
  std::uint64_t sockets_restored = 0;
  std::uint64_t committed_epoch = 0;
  // ---- Replay commit mode (DESIGN.md §14) ---------------------------------
  /// Logged events re-executed on top of the restored checkpoint to reach
  /// the released-output point.
  std::uint64_t events_replayed = 0;
  std::uint64_t segments_replayed = 0;
  /// Client inputs re-injected into repaired sockets from log sidecars
  /// (inputs whose server ACK escaped before the crash are never
  /// retransmitted by the client, so the log must carry them).
  std::uint64_t inputs_reinjected = 0;
  Time replay_time = 0;
  // ---- N-way quorum replication (DESIGN.md §16) ---------------------------
  /// Replica index the arbiter promoted (-1 = the lone backup / none).
  int promoted_replica = -1;
  /// Full-state catch-up stream to the surviving backups after promotion.
  std::uint64_t resilver_bytes = 0;
  std::uint64_t replicas_resilvered = 0;
  Time resilver_time = 0;
};

}  // namespace nlc::core
