#include "core/cluster.hpp"

#include <string>

#include "util/assert.hpp"

namespace nlc::core {

Cluster::Cluster(ClusterConfig cfg)
    : client_domain(std::make_shared<sim::Domain>("client")),
      primary_domain(std::make_shared<sim::Domain>("primary")),
      backup_domain(std::make_shared<sim::Domain>("backup")),
      network(sim),
      client_host(network.add_host("client", client_domain)),
      primary_host(network.add_host("primary", primary_domain)),
      backup_host(network.add_host("backup", backup_domain)),
      client_tcp(sim, client_domain, network, client_host),
      primary_tcp(sim, primary_domain, network, primary_host),
      backup_tcp(sim, backup_domain, network, backup_host) {
  network.add_link(client_host, primary_host, cfg.client_link_bps,
                   cfg.client_link_latency);
  network.add_link(client_host, backup_host, cfg.client_link_bps,
                   cfg.client_link_latency);
  network.add_link(primary_host, backup_host, cfg.replication_link_bps,
                   cfg.replication_link_latency);

  client_tcp.add_address(kClientIp);
  primary_tcp.add_address(kPrimaryHostIp);
  backup_tcp.add_address(kBackupHostIp);

  net::Link* p2b = network.link_between(primary_host, backup_host);
  net::Link* b2p = network.link_between(backup_host, primary_host);
  NLC_CHECK(p2b != nullptr && b2p != nullptr);

  drbd_channel = std::make_unique<net::Channel<blk::DrbdMessage>>(
      sim, *p2b, backup_domain);
  drbd_primary =
      std::make_unique<blk::DrbdPrimary>(primary_disk, *drbd_channel);
  drbd_backup =
      std::make_unique<blk::DrbdBackup>(sim, backup_disk, *drbd_channel);

  // The primary kernel's filesystem writes through the replicated block
  // device; the backup kernel mounts the backup disk directly.
  primary_kernel = std::make_unique<kern::Kernel>(sim, primary_domain,
                                                  "primary", *drbd_primary);
  backup_kernel = std::make_unique<kern::Kernel>(sim, backup_domain,
                                                 "backup", backup_disk);

  state_channel = std::make_unique<StateChannel>(sim, *p2b, backup_domain);
  ack_channel = std::make_unique<AckChannel>(sim, *b2p, primary_domain);
  // Priority lane (802.1p-style class) for the event log: shares the
  // physical 10 GbE but never queues behind page-delta serialization.
  log_priority_link = std::make_unique<net::Link>(
      sim, cfg.replication_link_bps, cfg.replication_link_latency);
  log_channel = std::make_unique<LogChannel>(sim, *log_priority_link,
                                             backup_domain);
  log_ack_channel = std::make_unique<LogAckChannel>(sim, *b2p,
                                                    primary_domain);
  control_link = std::make_unique<net::Link>(sim, cfg.control_link_bps,
                                             cfg.control_link_latency);
  heartbeat_channel = std::make_unique<HeartbeatChannel>(
      sim, *control_link, backup_domain);

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  // Everything below appends to the two-host member set built above;
  // nothing before this line depends on cfg.replicas, so replicas = 1
  // constructs the exact seed object graph.
  NLC_CHECK_MSG(cfg.replicas >= 1 && cfg.replicas <= 16,
                "replicas out of range");
  config = cfg;
  fault_domains = topo::FaultDomainTree(cfg.sites, cfg.racks_per_site);
  fault_domains.place_host();  // host 0: primary
  fault_domains.place_host();  // host 1: backup replica 0
  const bool chain = cfg.topology == topo::Topology::kChain;
  for (int i = 1; i < cfg.replicas; ++i) {
    auto r = std::make_unique<BackupReplica>();
    const std::string name = "backup" + std::to_string(i);
    fault_domains.place_host();  // host 1 + i: backup replica i
    r->domain = std::make_shared<sim::Domain>(name);
    r->host = network.add_host(name, r->domain);
    network.add_link(client_host, r->host, cfg.client_link_bps,
                     cfg.client_link_latency);
    // The return path for this replica's acks (and, post-failover, a
    // fabric path to the primary). Replication *data* does not ride the
    // forward direction of this pair: star traffic contends on the
    // primary's single replication NIC (p2b above), chain traffic on the
    // per-hop links below — no replica gets a free dedicated feed.
    network.add_link(primary_host, r->host, cfg.replication_link_bps,
                     cfg.replication_link_latency);
    r->tcp = std::make_unique<net::TcpStack>(sim, r->domain, network,
                                             r->host);
    r->tcp->add_address(kBackupHostIp + static_cast<net::IpAddr>(i));
    r->disk = std::make_unique<blk::Disk>();
    net::Link* feed = p2b;
    if (chain) {
      r->hop_link = std::make_unique<net::Link>(
          sim, cfg.replication_link_bps, cfg.replication_link_latency);
      feed = r->hop_link.get();
    }
    r->drbd_channel = std::make_unique<net::Channel<blk::DrbdMessage>>(
        sim, *feed, r->domain);
    r->drbd = std::make_unique<blk::DrbdBackup>(sim, *r->disk,
                                                *r->drbd_channel);
    r->kernel = std::make_unique<kern::Kernel>(sim, r->domain, name,
                                               *r->disk);
    r->state_channel = std::make_unique<StateChannel>(sim, *feed,
                                                      r->domain);
    if (chain) {
      // Per-hop log priority lane, mirroring the primary NIC's lane.
      r->log_link = std::make_unique<net::Link>(
          sim, cfg.replication_link_bps, cfg.replication_link_latency);
      r->log_channel = std::make_unique<LogChannel>(sim, *r->log_link,
                                                    r->domain);
    } else {
      r->log_channel = std::make_unique<LogChannel>(
          sim, *log_priority_link, r->domain);
    }
    net::Link* ret = network.link_between(r->host, primary_host);
    NLC_CHECK(ret != nullptr);
    r->ack_channel = std::make_unique<AckChannel>(sim, *ret,
                                                  primary_domain);
    r->log_ack_channel = std::make_unique<LogAckChannel>(sim, *ret,
                                                         primary_domain);
    // Control plane is star regardless of topology: every replica's
    // failure detector listens on the shared management network.
    r->heartbeat_channel = std::make_unique<HeartbeatChannel>(
        sim, *control_link, r->domain);
    extra_backups.push_back(std::move(r));
  }
}

Cluster::~Cluster() {
  // Destroy suspended coroutine frames while every component they
  // reference is still alive.
  sim.shutdown();
}

kern::Container& Cluster::create_service_container(const std::string& name,
                                                   net::IpAddr service_ip) {
  kern::Container& c = primary_kernel->create_container(name);
  c.set_service_ip(service_ip);
  primary_tcp.add_address(service_ip);
  return c;
}

sim::task<> Cluster::protect(kern::ContainerId cid, const Options& opts) {
  NLC_CHECK_MSG(primary_agent == nullptr, "cluster already protecting");
  NLC_CHECK_MSG(opts.replicas == config.replicas,
                "Options::replicas must match ClusterConfig::replicas");
  NLC_CHECK_MSG(opts.replicas == 1 || opts.topology == config.topology,
                "Options::topology must match ClusterConfig::topology");
  primary_agent = std::make_unique<PrimaryAgent>(
      opts, *primary_kernel, primary_tcp, cid, *drbd_primary, *state_channel,
      *ack_channel, *heartbeat_channel, *log_channel, *log_ack_channel,
      metrics);
  backup_agent = std::make_unique<BackupAgent>(
      opts, *backup_kernel, backup_tcp, *drbd_backup, *state_channel,
      *ack_channel, *heartbeat_channel, *log_channel, *log_ack_channel,
      metrics);
  // Extra replicas (DESIGN.md §16). Star: every replica is fed directly by
  // the primary (add_channel fans the DRBD stream out too). Chain: the
  // primary feeds replica 0 only; each replica store-and-forwards to the
  // next. Acks always return directly to the primary's quorum gate.
  const bool chain = config.topology == topo::Topology::kChain;
  for (std::size_t x = 0; x < extra_backups.size(); ++x) {
    BackupReplica& r = *extra_backups[x];
    r.agent = std::make_unique<BackupAgent>(
        opts, *r.kernel, *r.tcp, *r.drbd, *r.state_channel, *r.ack_channel,
        *r.heartbeat_channel, *r.log_channel, *r.log_ack_channel, metrics);
    r.agent->set_replica_index(static_cast<int>(x) + 1);
    primary_agent->add_replica(*r.state_channel, *r.ack_channel,
                               *r.heartbeat_channel, *r.log_channel,
                               *r.log_ack_channel, /*direct=*/!chain);
    if (chain) {
      BackupAgent& up = x == 0 ? *backup_agent : *extra_backups[x - 1]->agent;
      up.set_downstream(r.state_channel.get(), r.log_channel.get());
      blk::DrbdBackup& up_drbd =
          x == 0 ? *drbd_backup : *extra_backups[x - 1]->drbd;
      up_drbd.set_forward(r.drbd_channel.get());
    } else {
      drbd_primary->add_channel(*r.drbd_channel);
    }
  }
  if (config.replicas > 1) {
    arbiter = std::make_unique<PromotionArbiter>(opts, sim);
    arbiter->set_resilver_link(config.replication_link_bps,
                               config.replication_link_latency);
    arbiter->register_replica(*backup_agent, backup_domain);
    backup_agent->set_arbiter(arbiter.get());
    for (auto& r : extra_backups) {
      arbiter->register_replica(*r->agent, r->domain);
      r->agent->set_arbiter(arbiter.get());
    }
  }
  if (opts.trace_level != TraceLevel::kOff) {
    if (tracer == nullptr) tracer = std::make_shared<trace::Recorder>();
    primary_agent->set_trace(tracer.get());
    backup_agent->set_trace(tracer.get());
    primary_tcp.set_trace(tracer.get(), trace::Track::kNetPrimary);
    backup_tcp.set_trace(tracer.get(), trace::Track::kNetBackup);
    drbd_backup->set_trace(tracer.get());
    // Extra replicas stay untraced (their spans would interleave with
    // replica 0's on the shared backup track); the arbiter's promotion and
    // re-silver events are recorded, and the primary's kReplicaAck
    // instants carry the per-replica ack stream.
    if (arbiter != nullptr) arbiter->set_trace(tracer.get());
  }
  if (on_agents_created) on_agents_created();
  backup_agent->start();
  for (auto& r : extra_backups) r->agent->start();
  co_await primary_agent->start();
}

BackupAgent& Cluster::backup(int i) {
  if (i == 0) return *backup_agent;
  return *extra_backups[static_cast<std::size_t>(i - 1)]->agent;
}

kern::Kernel& Cluster::backup_kernel_of(int i) {
  if (i == 0) return *backup_kernel;
  return *extra_backups[static_cast<std::size_t>(i - 1)]->kernel;
}

net::TcpStack& Cluster::backup_tcp_of(int i) {
  if (i == 0) return backup_tcp;
  return *extra_backups[static_cast<std::size_t>(i - 1)]->tcp;
}

sim::DomainPtr Cluster::backup_domain_of(int i) {
  if (i == 0) return backup_domain;
  return extra_backups[static_cast<std::size_t>(i - 1)]->domain;
}

void Cluster::fail_backup(int i) {
  if (tracer != nullptr) {
    tracer->instant(trace::Track::kNetBackup, trace::Stage::kUnplug,
                    sim.now(), static_cast<std::uint64_t>(i));
  }
  backup_domain_of(i)->kill();
}

void Cluster::fail_rack(int rack) {
  // Placement order: host 0 = primary, host 1 + i = backup replica i.
  for (int h : fault_domains.hosts_in_rack(rack)) {
    if (h == 0) {
      fail_primary();
    } else {
      fail_backup(h - 1);
    }
  }
}

void Cluster::unplug_primary() {
  if (tracer != nullptr) {
    tracer->instant(trace::Track::kNetPrimary, trace::Stage::kUnplug,
                    sim.now());
  }
  // Both directions of every primary link, plus the management NIC.
  for (net::HostId peer : {client_host, backup_host}) {
    if (net::Link* l = network.link_between(primary_host, peer)) {
      l->set_down(true);
    }
    if (net::Link* l = network.link_between(peer, primary_host)) {
      l->set_down(true);
    }
  }
  for (auto& r : extra_backups) {
    if (net::Link* l = network.link_between(primary_host, r->host)) {
      l->set_down(true);
    }
    if (net::Link* l = network.link_between(r->host, primary_host)) {
      l->set_down(true);
    }
  }
  control_link->set_down(true);
}

net::Link& Cluster::replication_link() {
  net::Link* l = network.link_between(primary_host, backup_host);
  NLC_CHECK(l != nullptr);
  return *l;
}

}  // namespace nlc::core
