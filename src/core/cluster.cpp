#include "core/cluster.hpp"

#include "util/assert.hpp"

namespace nlc::core {

Cluster::Cluster(ClusterConfig cfg)
    : client_domain(std::make_shared<sim::Domain>("client")),
      primary_domain(std::make_shared<sim::Domain>("primary")),
      backup_domain(std::make_shared<sim::Domain>("backup")),
      network(sim),
      client_host(network.add_host("client", client_domain)),
      primary_host(network.add_host("primary", primary_domain)),
      backup_host(network.add_host("backup", backup_domain)),
      client_tcp(sim, client_domain, network, client_host),
      primary_tcp(sim, primary_domain, network, primary_host),
      backup_tcp(sim, backup_domain, network, backup_host) {
  network.add_link(client_host, primary_host, cfg.client_link_bps,
                   cfg.client_link_latency);
  network.add_link(client_host, backup_host, cfg.client_link_bps,
                   cfg.client_link_latency);
  network.add_link(primary_host, backup_host, cfg.replication_link_bps,
                   cfg.replication_link_latency);

  client_tcp.add_address(kClientIp);
  primary_tcp.add_address(kPrimaryHostIp);
  backup_tcp.add_address(kBackupHostIp);

  net::Link* p2b = network.link_between(primary_host, backup_host);
  net::Link* b2p = network.link_between(backup_host, primary_host);
  NLC_CHECK(p2b != nullptr && b2p != nullptr);

  drbd_channel = std::make_unique<net::Channel<blk::DrbdMessage>>(
      sim, *p2b, backup_domain);
  drbd_primary =
      std::make_unique<blk::DrbdPrimary>(primary_disk, *drbd_channel);
  drbd_backup =
      std::make_unique<blk::DrbdBackup>(sim, backup_disk, *drbd_channel);

  // The primary kernel's filesystem writes through the replicated block
  // device; the backup kernel mounts the backup disk directly.
  primary_kernel = std::make_unique<kern::Kernel>(sim, primary_domain,
                                                  "primary", *drbd_primary);
  backup_kernel = std::make_unique<kern::Kernel>(sim, backup_domain,
                                                 "backup", backup_disk);

  state_channel = std::make_unique<StateChannel>(sim, *p2b, backup_domain);
  ack_channel = std::make_unique<AckChannel>(sim, *b2p, primary_domain);
  // Priority lane (802.1p-style class) for the event log: shares the
  // physical 10 GbE but never queues behind page-delta serialization.
  log_priority_link = std::make_unique<net::Link>(
      sim, cfg.replication_link_bps, cfg.replication_link_latency);
  log_channel = std::make_unique<LogChannel>(sim, *log_priority_link,
                                             backup_domain);
  log_ack_channel = std::make_unique<LogAckChannel>(sim, *b2p,
                                                    primary_domain);
  control_link = std::make_unique<net::Link>(sim, cfg.control_link_bps,
                                             cfg.control_link_latency);
  heartbeat_channel = std::make_unique<HeartbeatChannel>(
      sim, *control_link, backup_domain);
}

Cluster::~Cluster() {
  // Destroy suspended coroutine frames while every component they
  // reference is still alive.
  sim.shutdown();
}

kern::Container& Cluster::create_service_container(const std::string& name,
                                                   net::IpAddr service_ip) {
  kern::Container& c = primary_kernel->create_container(name);
  c.set_service_ip(service_ip);
  primary_tcp.add_address(service_ip);
  return c;
}

sim::task<> Cluster::protect(kern::ContainerId cid, const Options& opts) {
  NLC_CHECK_MSG(primary_agent == nullptr, "cluster already protecting");
  primary_agent = std::make_unique<PrimaryAgent>(
      opts, *primary_kernel, primary_tcp, cid, *drbd_primary, *state_channel,
      *ack_channel, *heartbeat_channel, *log_channel, *log_ack_channel,
      metrics);
  backup_agent = std::make_unique<BackupAgent>(
      opts, *backup_kernel, backup_tcp, *drbd_backup, *state_channel,
      *ack_channel, *heartbeat_channel, *log_channel, *log_ack_channel,
      metrics);
  if (opts.trace_level != TraceLevel::kOff) {
    if (tracer == nullptr) tracer = std::make_shared<trace::Recorder>();
    primary_agent->set_trace(tracer.get());
    backup_agent->set_trace(tracer.get());
    primary_tcp.set_trace(tracer.get(), trace::Track::kNetPrimary);
    backup_tcp.set_trace(tracer.get(), trace::Track::kNetBackup);
    drbd_backup->set_trace(tracer.get());
  }
  if (on_agents_created) on_agents_created();
  backup_agent->start();
  co_await primary_agent->start();
}

void Cluster::unplug_primary() {
  if (tracer != nullptr) {
    tracer->instant(trace::Track::kNetPrimary, trace::Stage::kUnplug,
                    sim.now());
  }
  // Both directions of every primary link, plus the management NIC.
  for (net::HostId peer : {client_host, backup_host}) {
    if (net::Link* l = network.link_between(primary_host, peer)) {
      l->set_down(true);
    }
    if (net::Link* l = network.link_between(peer, primary_host)) {
      l->set_down(true);
    }
  }
  control_link->set_down(true);
}

net::Link& Cluster::replication_link() {
  net::Link* l = network.link_between(primary_host, backup_host);
  NLC_CHECK(l != nullptr);
  return *l;
}

}  // namespace nlc::core
