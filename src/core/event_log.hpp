// Primary-side nondeterministic-event log (DESIGN.md §14).
//
// In replay commit mode the PrimaryAgent installs an EventLog as the
// protected container's NondetSink. Apps report every nondeterminism
// source (network-input ordering, timer firings, RNG draws) at the point
// it takes effect; the log folds each entry into a running chain
// fingerprint and buffers it until the flush loop cuts a LogSegmentMsg.
// Segments partition the chain, so the backup (and the replay-equivalence
// auditor) can verify that every shipped slice extends the same history.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "kernel/container.hpp"
#include "util/time.hpp"

namespace nlc::core {

/// Simulated CPU cost of the event-log pipeline. All knobs are tiny by
/// construction: the entire point of replay mode is that the log path is
/// orders of magnitude cheaper than the page-delta path.
struct LogCostModel {
  /// Primary: cut + serialize + hand a segment to the NIC.
  Time flush_base = nlc::microseconds(2);
  Time flush_per_entry = nlc::nanoseconds(20);
  /// Backup: receive + chain validation.
  Time recv_base = nlc::microseconds(1);
  Time recv_per_entry = nlc::nanoseconds(10);
  /// Backup failover: deterministic re-execution of one logged event on
  /// top of the restored checkpoint.
  Time replay_base = nlc::microseconds(40);
  Time replay_per_entry = nlc::nanoseconds(150);
};

class EventLog final : public kern::NondetSink {
 public:
  /// Installs (or clears) a callback fired on every recorded entry; the
  /// flush loop uses it to wake when there is something worth shipping.
  void set_on_append(std::function<void()> fn) { on_append_ = std::move(fn); }

  void on_net_input(std::uint64_t sock, std::uint64_t tag,
                    std::uint64_t payload_hash) override;
  void on_timer(std::uint64_t timer_id, std::uint64_t seq) override;
  void on_rng_draw(std::uint64_t value) override;

  /// TCP receive-time input record (installed as the stack's input tap on
  /// the service IP). Unlike the app-level on_net_input — consume order —
  /// this carries the received segment itself as a sidecar, so an
  /// acknowledged slice of the log makes the input durable at the backup
  /// before any output that depends on it can be released.
  void record_net_input(net::SocketId sock, net::Endpoint local,
                        net::Endpoint remote, const net::Segment& seg);

  /// Total entries ever recorded, including ones not yet cut into a
  /// segment. Checkpoints stamp this (EpochStateMsg::nd_entries).
  std::uint64_t entries_total() const { return entries_total_; }
  /// Chain fingerprint over all recorded entries.
  std::uint64_t chain_fp() const { return chain_fp_; }
  std::uint64_t pending_entries() const { return pending_.size(); }
  /// Wire bytes the pending entries and input sidecars would occupy in the
  /// next segment (sans header). Maintained incrementally: the adaptive
  /// segment-cut policy polls it per flush tick as its pressure signal.
  std::uint64_t pending_wire_bytes() const { return pending_wire_; }
  std::uint64_t segments_cut() const { return next_seq_; }

  /// Moves the pending entries into a fresh segment. The caller must
  /// insert the matching plug marker in the same scheduler step so the
  /// marker bounds exactly the output produced by events up to this cut.
  LogSegmentMsg cut_segment();

 private:
  void record(const NdEvent& e);

  std::vector<NdEvent> pending_;
  std::vector<NetInputRec> pending_inputs_;
  std::uint64_t pending_wire_ = 0;
  std::uint64_t pending_start_index_ = 0;
  std::uint64_t pending_start_fp_ = kNdChainSeed;
  std::uint64_t entries_total_ = 0;
  std::uint64_t chain_fp_ = kNdChainSeed;
  std::uint64_t next_seq_ = 0;
  std::function<void()> on_append_;
};

}  // namespace nlc::core
