#include "core/backup_agent.hpp"

#include <utility>

#include "core/promotion.hpp"
#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace nlc::core {

BackupAgent::BackupAgent(Options opts, kern::Kernel& kernel,
                         net::TcpStack& tcp, blk::DrbdBackup& drbd,
                         StateChannel& state_in, AckChannel& ack_out,
                         HeartbeatChannel& hb_in, LogChannel& log_in,
                         LogAckChannel& log_ack_out,
                         ReplicationMetrics& metrics)
    : opts_(opts), kernel_(&kernel), tcp_(&tcp), drbd_(&drbd),
      state_in_(&state_in), ack_out_(&ack_out), hb_in_(&hb_in),
      log_in_(&log_in), log_ack_out_(&log_ack_out),
      metrics_(&metrics),
      commit_idle_(std::make_unique<sim::Event>(kernel.simulation())) {
  if (opts_.optimize_criu) {
    auto radix =
        std::make_unique<criu::RadixPageStore>(opts_.resolved_page_shards());
    radix_ = radix.get();
    pages_ = std::move(radix);
  } else {
    pages_ = std::make_unique<criu::ListPageStore>();
  }
  commit_idle_->set();
}

void BackupAgent::start() {
  sim::Simulation& sim = kernel_->simulation();
  last_heartbeat_ = sim.now();
  armed_ = true;
  sim.spawn(kernel_->domain(), state_loop());
  if (opts_.commit_mode == CommitMode::kReplay) {
    sim.spawn(kernel_->domain(), log_loop());
  }
  sim.spawn(kernel_->domain(), drbd_->run());
  sim.spawn(kernel_->domain(), watchdog());
  // Heartbeat receiver: just tracks arrival times.
  sim.spawn(kernel_->domain(), [](BackupAgent* self) -> sim::task<> {
    while (true) {
      (void)co_await self->hb_in_->recv();
      self->last_heartbeat_ = self->kernel_->simulation().now();
      ++self->heartbeats_seen_;
    }
  }(this));
}

void BackupAgent::disarm() { armed_ = false; }

sim::task<> BackupAgent::state_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (true) {
    EpochStateMsg msg = co_await state_in_->recv();
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kRecv,
                         sim.now(), msg.epoch);
    }

    // Receive-side processing: read() per chunk into the staging buffers.
    Time recv_cost = backup_costs_.recv_base +
                     static_cast<Time>(chunk_count(msg.image)) *
                         backup_costs_.read_per_chunk;
    co_await sim.sleep_for(recv_cost);
    metrics_->backup_busy += recv_cost;
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kRecv,
                       sim.now(), msg.epoch);
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kBarrierWait,
                         sim.now(), msg.epoch);
    }

    // Chain topology (DESIGN.md §16): store-and-forward the received state
    // to the next replica down the chain, with the primary's wire
    // accounting. Forwarding happens after the receive-side processing (the
    // message is fully buffered here first) but before the barrier wait, so
    // the downstream replica's receive overlaps this one's commit.
    if (downstream_state_ != nullptr) {
      metrics_->wire_bytes_fanout += msg.wire_bytes;
      downstream_state_->send(EpochStateMsg{msg}, msg.wire_bytes);
    }

    // The epoch is durable at the backup once all its disk writes (up to
    // the barrier) and its container state are buffered here: acknowledge,
    // letting the primary release the epoch's buffered output (§IV).
    co_await drbd_->wait_barrier(msg.epoch);
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kBarrierWait,
                       sim.now(), msg.epoch);
    }
    if (audit_ != nullptr) audit_->on_ack_sent(msg.epoch, drbd_->last_barrier());
    // The acked cursor is this replica's catch-up position — the promotion
    // arbiter's election key (DESIGN.md §16).
    acked_epoch_ = msg.epoch;
    any_ack_sent_ = true;
    ack_out_->send(AckMsg{msg.epoch}, 64);
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kBackup, trace::Stage::kAckSent,
                      sim.now(), msg.epoch);
    }

    // Once recovery has started, no new commit may begin: the restore is
    // (or will be) built from the currently-committed image, and folding
    // another epoch underneath it would desynchronize the replay cursor
    // from the restored TCP state (see recovering_ in the header).
    if (recovering_) co_return;

    // Commit: fold the epoch into the committed stores.
    commit_in_progress_ = true;
    if (audit_ != nullptr) audit_->on_commit_begin(msg.epoch);
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kCommit,
                         sim.now(), msg.epoch);
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kFold,
                         sim.now(), msg.epoch);
    }
    commit_idle_->reset();
    pages_->begin_checkpoint(msg.epoch);
    std::uint64_t visits = 0;
    const std::uint64_t fold_t0 = util::wall_now_ns();
    if (radix_ != nullptr && radix_->shards() > 1) {
      // Sharded fold (DESIGN.md §10): same state and modeled visit total
      // as the per-record loop, fanned out over the shard subtrees.
      visits = radix_->store_batch(msg.image.pages, &util::shard_pool());
    } else {
      for (const criu::PageRecord& pr : msg.image.pages) {
        visits += pages_->store(pr);
      }
    }
    metrics_->shard_stage_ns.fold += util::wall_now_ns() - fold_t0;
    if (trace_ != nullptr) {
      // Zero-width in simulated time (the modeled cost is the commit sleep
      // below); the wall stamps expose the real fold cost.
      trace_->span_end(trace::Track::kBackup, trace::Stage::kFold,
                       sim.now(), msg.epoch);
    }
    Time commit_cost =
        static_cast<Time>(visits) * backup_costs_.pagestore_per_visit +
        static_cast<Time>(msg.image.pages.size()) *
            backup_costs_.commit_per_page +
        // Delta-compressed pages are reconstructed against the committed
        // version while folding (decompress-and-fold, extension).
        static_cast<Time>(msg.compressed_pages) *
            backup_costs_.delta_fold_per_page;
    co_await sim.sleep_for(commit_cost);
    metrics_->backup_busy += commit_cost;

    drbd_->commit(msg.epoch);
    for (const kern::DncInodeEntry& ie : msg.image.fs_cache.inodes) {
      committed_fs_inodes_[ie.attr.ino] = ie.attr;
    }
    for (kern::DncPageEntry& pe : msg.image.fs_cache.pages) {
      committed_fs_pages_[{pe.ino, pe.page_index}] = std::move(pe);
    }
    // Audited before the folded sections are cleared so the auditor can
    // compare the shipped records against what the page store now holds.
    if (audit_ != nullptr) audit_->on_commit(msg);
    msg.image.pages.clear();     // folded into the page store
    msg.image.fs_cache = {};     // folded into the fs-cache maps
    committed_image_ = std::move(msg.image);
    committed_epoch_ = msg.epoch;
    // Replay mode: this checkpoint bakes in every event at or below its
    // stamp; failover replays only what follows, so fully-covered log
    // segments can be dropped.
    committed_nd_entries_ = msg.nd_entries;
    committed_nd_fp_ = msg.nd_fp;
    last_primary_epoch_len_ = msg.epoch_len;
    if (opts_.commit_mode == CommitMode::kReplay) {
      metrics_->log_pruned_segments += replay_.prune_below(msg.nd_entries);
    }
    commit_in_progress_ = false;
    commit_idle_->set();
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kCommit,
                       sim.now(), msg.epoch);
    }
  }
}

sim::task<> BackupAgent::log_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (true) {
    LogSegmentMsg seg = co_await log_in_->recv();
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kLogRecv,
                         sim.now(), seg.seq);
    }
    Time cost = log_costs_.recv_base +
                static_cast<Time>(seg.entries.size()) *
                    log_costs_.recv_per_entry;
    co_await sim.sleep_for(cost);
    metrics_->backup_busy += cost;
    // Chain topology: forward before validating — the downstream replica
    // runs the same deterministic validation itself.
    if (downstream_log_ != nullptr) {
      const std::uint64_t fw_bytes = log_segment_wire_bytes(seg);
      metrics_->wire_bytes_fanout += fw_bytes;
      downstream_log_->send(LogSegmentMsg{seg}, fw_bytes);
    }
    const bool accepted = replay_.ingest(seg);
    if (accepted &&
        replay_.retained_bytes() > metrics_->log_retained_bytes_peak) {
      metrics_->log_retained_bytes_peak = replay_.retained_bytes();
    }
    if (audit_ != nullptr) audit_->on_log_ingested(seg, accepted);
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kLogRecv,
                       sim.now(), seg.seq);
    }
    if (!accepted) {
      // Never acknowledged: the primary holds the matching output forever
      // rather than releasing output this backup cannot replay
      // (correctness over liveness; a real system would resynchronize
      // with a fresh checkpoint).
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kBackup, trace::Stage::kLogReject,
                        sim.now(), seg.seq);
      }
      continue;
    }
    // The ack is the promise that failover replays to this segment's end.
    log_ack_out_->send(LogAckMsg{seg.seq}, 64);
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kBackup, trace::Stage::kLogAckSent,
                      sim.now(), seg.seq);
    }
  }
}

sim::task<> BackupAgent::watchdog() {
  sim::Simulation& sim = kernel_->simulation();
  int misses = 0;
  std::uint64_t seen_at_last_tick = 0;
  while (true) {
    co_await sim.sleep_for(opts_.heartbeat_interval);
    if (!armed_) continue;
    // A 30ms interval with no new heartbeat counts as a miss (§IV).
    if (heartbeats_seen_ == seen_at_last_tick) {
      ++misses;
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kDetector,
                        trace::Stage::kHeartbeatMiss, sim.now(),
                        static_cast<std::uint64_t>(misses));
      }
    } else {
      misses = 0;
    }
    seen_at_last_tick = heartbeats_seen_;
    if (misses >= opts_.heartbeat_miss_threshold) {
      armed_ = false;
      recovery_.detection_started = sim.now();
      recovery_.detection_latency = sim.now() - last_heartbeat_;
      if (trace_ != nullptr) {
        trace_->instant(trace::Track::kDetector,
                        trace::Stage::kRecoveryStart, sim.now(),
                        committed_epoch_);
      }
      if (arbiter_ != nullptr) {
        // N > 1: report the detection instead of recovering unilaterally;
        // the arbiter elects the most caught-up replica and promotes it.
        arbiter_->report(replica_index_);
        co_return;
      }
      co_await recover();
      co_return;
    }
  }
}

void BackupAgent::trigger_recovery() {
  NLC_CHECK_MSG(!recovered_, "already recovered");
  armed_ = false;
  sim::Simulation& sim = kernel_->simulation();
  recovery_.detection_started = sim.now();
  recovery_.detection_latency = 0;
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kDetector, trace::Stage::kRecoveryStart,
                    sim.now(), committed_epoch_);
  }
  sim.spawn(kernel_->domain(), recover());
}

void BackupAgent::promote() {
  NLC_CHECK_MSG(!recovered_, "already recovered");
  armed_ = false;
  sim::Simulation& sim = kernel_->simulation();
  // The winner's own watchdog usually stamped detection when it reported;
  // if another replica's watchdog won the race to the arbiter, stamp now.
  if (recovery_.detection_started == 0) {
    recovery_.detection_started = sim.now();
    recovery_.detection_latency = sim.now() - last_heartbeat_;
    if (trace_ != nullptr) {
      trace_->instant(trace::Track::kDetector, trace::Stage::kRecoveryStart,
                      sim.now(), committed_epoch_);
    }
  }
  sim.spawn(kernel_->domain(), recover());
}

void BackupAgent::adopt_resilver(const BackupAgent& src) {
  // Rebuild the committed stores as copies of the winner's. Page payloads
  // are shared handles, so this copies records, not page bytes; the bulk
  // transfer itself is metered by the arbiter on the replication link.
  if (opts_.optimize_criu) {
    auto radix =
        std::make_unique<criu::RadixPageStore>(opts_.resolved_page_shards());
    radix_ = radix.get();
    pages_ = std::move(radix);
  } else {
    radix_ = nullptr;
    pages_ = std::make_unique<criu::ListPageStore>();
  }
  pages_->begin_checkpoint(src.committed_epoch_);
  for (const criu::PageRecord* pr : src.pages_->all_pages()) {
    pages_->store(*pr);
  }
  committed_fs_pages_ = src.committed_fs_pages_;
  committed_fs_inodes_ = src.committed_fs_inodes_;
  committed_epoch_ = src.committed_epoch_;
  committed_nd_entries_ = src.committed_nd_entries_;
  committed_nd_fp_ = src.committed_nd_fp_;
  last_primary_epoch_len_ = src.last_primary_epoch_len_;
  acked_epoch_ = src.committed_epoch_;
  if (audit_ != nullptr) audit_->on_resilver_adopted(committed_epoch_);
  // The dead primary's uncommitted buffered tail dies here too.
  drbd_->discard_uncommitted();
  // The winner consumed its record image during its restore, so there is
  // no current record set to copy; the survivor is caught up on pages, fs
  // cache and cursors, and would take fresh records from the promoted
  // node's first post-failover checkpoint once re-protected.
  committed_image_.reset();
  armed_ = false;  // no primary heartbeats to watch until re-protected
}

criu::CheckpointImage BackupAgent::take_restore_image() {
  NLC_CHECK_MSG(committed_image_.has_value(),
                "failover before the initial synchronization committed");
  // Recovery runs once: move the committed records out instead of copying
  // them (page payloads already live in the page store as shared handles).
  criu::CheckpointImage img = std::move(*committed_image_);
  committed_image_.reset();
  img.fs_cache.inodes.clear();
  img.fs_cache.pages.clear();
  return img;
}

sim::task<> BackupAgent::recover() {
  sim::Simulation& sim = kernel_->simulation();
  criu::KernelInterfaceCosts costs;  // restore-side cost model
  // From here on the committed stores are frozen for the restore: an
  // in-flight commit below drains, but no new one may start (the flag is
  // checked in state_loop before commit-begin).
  recovering_ = true;
  Time t0 = sim.now();
  if (audit_ != nullptr) audit_->on_recovery_started(committed_epoch_);

  // Never restore from a half-committed epoch: wait out an in-flight
  // commit (its state fully arrived and was acknowledged, so it belongs in
  // the restored image).
  co_await commit_idle_->wait();
  // The restore span opens after the in-flight commit drains so the two
  // spans nest cleanly on the backup track; the detection point itself is
  // the kRecoveryStart instant on the detector track.
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kBackup, trace::Stage::kRestore,
                       sim.now(), committed_epoch_);
  }

  // Uncommitted buffered state dies with the primary (§IV).
  drbd_->discard_uncommitted();

  criu::CheckpointImage img = take_restore_image();
  auto service_ip = static_cast<net::IpAddr>(img.service_ip);

  // Connect the container's address to this host but keep ingress blocked:
  // the §III RST hazard window is open from netns creation until the
  // sockets are repaired.
  tcp_->add_address(service_ip);
  // Blocking uses the same buffer-and-release mechanism as the epoch pause
  // (§V-C): packets arriving during the restore are held and delivered once
  // the sockets exist, so clients pay no retransmission backoff on top of
  // the restore itself.
  tcp_->ingress(service_ip).set_mode(
      opts_.block_input_during_recovery ? net::IngressFilter::Mode::kBuffer
                                        : net::IngressFilter::Mode::kPass);

  // Materialize CRIU image files from the buffered state.
  if (trace_ != nullptr) {
    trace_->span_begin(trace::Track::kBackup, trace::Stage::kMaterialize,
                       sim.now(), committed_epoch_);
  }
  double mb = static_cast<double>(img.byte_size() +
                                  pages_->page_count() * nlc::kPageSize) /
              static_cast<double>(nlc::kMiB);
  co_await sim.sleep_for(costs.image_build_base +
                         static_cast<Time>(mb * static_cast<double>(
                                                    costs.image_build_per_mb)));
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kBackup, trace::Stage::kMaterialize,
                     sim.now(), committed_epoch_);
  }

  kern::DncHarvest fs;
  for (const auto& [ino, attr] : committed_fs_inodes_) {
    fs.inodes.push_back(kern::DncInodeEntry{attr});
  }
  for (const auto& [key, pe] : committed_fs_pages_) {
    fs.pages.push_back(pe);
  }

  criu::RestoreEngine engine(*kernel_, *tcp_, costs);
  criu::RestoreTimeline tl = co_await engine.restore(
      img, pages_->all_pages(), fs, opts_.rto_repair_fix,
      /*ack_runahead=*/opts_.commit_mode == CommitMode::kReplay);

  // Residual recovery actions (Table II "Others").
  co_await sim.sleep_for(costs.recovery_misc);

  if (opts_.commit_mode == CommitMode::kReplay) {
    // Deterministic replay (DESIGN.md §14): re-drive the accepted event
    // log on top of the restored checkpoint, so the container re-reaches
    // the exact point whose output was already released. The sim's
    // restored TCP queues re-deliver the same requests in logged order;
    // the engine charges the cost and the fingerprint proves equivalence.
    if (trace_ != nullptr) {
      trace_->span_begin(trace::Track::kBackup, trace::Stage::kReplay,
                         sim.now(), committed_epoch_);
    }
    replay::ReplayResult rr =
        replay_.replay(committed_nd_entries_, committed_nd_fp_);
    co_await sim.sleep_for(rr.cost);
    // Re-inject logged inputs the restored checkpoint has never seen:
    // their TCP acks were released on log acks, so the clients will never
    // retransmit them. Injection is idempotent by sequence number, so
    // inputs already inside the checkpoint's read queues are skipped.
    for (const LogSegmentMsg& held : replay_.held_segments()) {
      for (const NetInputRec& in : held.inputs) {
        if (in.entry_index < committed_nd_entries_) continue;
        if (tcp_->inject_repaired_input(in.local, in.remote, in.seg)) {
          ++recovery_.inputs_reinjected;
        }
      }
    }
    recovery_.events_replayed = rr.entries_replayed;
    recovery_.segments_replayed = rr.segments_replayed;
    recovery_.replay_time = rr.cost;
    if (audit_ != nullptr) audit_->on_replayed(rr.final_fp,
                                               rr.entries_replayed);
    if (trace_ != nullptr) {
      trace_->span_end(trace::Track::kBackup, trace::Stage::kReplay,
                       sim.now(), committed_epoch_);
    }
  }

  // Reconnect to the bridge: gratuitous ARP moves the service address.
  co_await sim.sleep_for(costs.gratuitous_arp);
  if (trace_ != nullptr) {
    trace_->instant(trace::Track::kNetBackup, trace::Stage::kGratuitousArp,
                    sim.now(), committed_epoch_);
  }
  tcp_->takeover_address(service_ip);
  tcp_->ingress(service_ip).set_mode(net::IngressFilter::Mode::kPass);

  recovery_.triggered = true;
  recovery_.restore_time = tl.finished - t0;
  recovery_.arp_time = costs.gratuitous_arp;
  recovery_.misc_time = costs.recovery_misc;
  recovery_.total_unavailability = sim.now() - t0;
  recovery_.pages_restored = tl.pages_restored;
  recovery_.sockets_restored = tl.sockets_restored;
  recovery_.committed_epoch = committed_epoch_;
  recovered_ = true;
  if (audit_ != nullptr) audit_->on_recovered(committed_epoch_);
  if (trace_ != nullptr) {
    trace_->span_end(trace::Track::kBackup, trace::Stage::kRestore,
                     sim.now(), committed_epoch_);
  }

  if (on_restored_) {
    on_restored_(FailoverContext{kernel_, tcp_, img.container,
                                 committed_epoch_});
  }
}

}  // namespace nlc::core
