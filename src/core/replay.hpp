// Backup-side deterministic replay engine (DESIGN.md §14).
//
// Accepts event-log segments in order, validating each one's chain fold
// and its continuity against the accepted prefix before it may be
// acknowledged — an ack is a promise that failover can re-reach every
// released-output point. On failover, replay() walks the accepted log
// from the committed checkpoint's stamp to the accepted end, charging
// the deterministic re-execution cost and returning the final chain
// fingerprint as the replayed-state identity.
//
// Everything in this namespace is a pure function of the committed log:
// no wall clock, no ambient randomness (enforced by the nlc_lint
// `replay-wallclock` rule).
#pragma once

#include <cstdint>
#include <deque>

#include "core/event_log.hpp"
#include "util/time.hpp"

namespace nlc::core::replay {

struct ReplayResult {
  /// Chain fingerprint of the replayed state — must equal the fingerprint
  /// at the last acknowledged (hence possibly released) output point.
  std::uint64_t final_fp = kNdChainSeed;
  std::uint64_t entries_replayed = 0;
  std::uint64_t segments_replayed = 0;
  /// Simulated re-execution time, charged during recovery.
  Time cost = 0;
};

class ReplayEngine {
 public:
  explicit ReplayEngine(LogCostModel costs = {}) : costs_(costs) {}

  /// Validates and stores one segment. Returns false — and leaves the
  /// accepted prefix untouched — on a sequence gap, a continuity break
  /// against the accepted end, or a chain fold that does not reproduce
  /// the claimed end fingerprint (truncated or corrupted entries).
  bool ingest(const LogSegmentMsg& seg);

  /// Drops fully-covered segments once a committed checkpoint includes
  /// their effects (entries below `entry_index` can never be replayed).
  /// Returns how many segments were dropped — this truncation is what
  /// keeps retained_bytes() bounded under long (≈1 s) epochs.
  std::size_t prune_below(std::uint64_t entry_index);

  /// Replays the accepted log from the committed checkpoint boundary
  /// (`from_entry` entries folded into `from_fp`) to the accepted end.
  /// Empty when the checkpoint is already at or past the accepted end.
  ReplayResult replay(std::uint64_t from_entry, std::uint64_t from_fp) const;

  std::uint64_t accepted_end_index() const { return end_index_; }
  std::uint64_t accepted_end_fp() const { return end_fp_; }
  /// Accepted segments not yet pruned — the slice of the log a failover
  /// replays; their input sidecars are what recovery re-injects.
  const std::deque<LogSegmentMsg>& held_segments() const { return segments_; }
  std::uint64_t segments_held() const { return segments_.size(); }
  /// Wire bytes of the held (accepted, un-pruned) segments, maintained
  /// incrementally on ingest/prune — the backup's log-memory footprint.
  std::uint64_t retained_bytes() const { return retained_bytes_; }
  std::uint64_t segments_rejected() const { return rejected_; }

 private:
  LogCostModel costs_;
  std::deque<LogSegmentMsg> segments_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t end_index_ = 0;
  std::uint64_t end_fp_ = kNdChainSeed;
  std::uint64_t rejected_ = 0;
  std::uint64_t retained_bytes_ = 0;
};

}  // namespace nlc::core::replay
