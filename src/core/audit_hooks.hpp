// Observation seams the NiLiCon agents expose to the invariant auditor
// (src/check).
//
// The agents call these hooks at the protocol's commit points; with no
// hooks installed (the default) each site costs one null check. The hooks
// deliberately receive the same objects the protocol acts on (the epoch
// state message before it is moved to the wire or folded away), so the
// auditor can cross-check bytes, not just counters, without the agents
// copying anything on its behalf.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"

namespace nlc::core {

/// Primary-agent commit points, in per-epoch order: state_ready -> (ship)
/// -> marker_inserted -> ack_received -> release.
class PrimaryAuditHooks {
 public:
  virtual ~PrimaryAuditHooks() = default;
  /// Epoch state harvested (and, if enabled, delta-encoded); fires before
  /// the image moves onto the replication wire.
  virtual void on_state_ready(const EpochStateMsg& msg, bool initial) = 0;
  /// The output-commit marker for `epoch` was inserted into the plug.
  virtual void on_marker_inserted(std::uint64_t epoch,
                                  std::uint64_t marker) = 0;
  /// An ack for `epoch` arrived from the backup.
  virtual void on_ack_received(std::uint64_t epoch) = 0;
  /// Epoch `epoch`'s buffered output is about to be released to the wire.
  virtual void on_release(std::uint64_t epoch) = 0;

  // ---- Replay commit mode (DESIGN.md §14); default no-ops so epoch-mode
  // auditors and tests need not care. Per-segment order: log_shipped ->
  // log_ack_received -> log_release.
  /// A log segment was cut and is about to ship; `marker` is the plug
  /// marker bounding the output it covers.
  virtual void on_log_shipped(const LogSegmentMsg& /*seg*/,
                              std::uint64_t /*marker*/) {}
  /// The backup acknowledged segment `seq`.
  virtual void on_log_ack_received(std::uint64_t /*seq*/) {}
  /// Segment `seq`'s buffered output is about to be released to the wire.
  virtual void on_log_release(std::uint64_t /*seq*/) {}

  // ---- N-way quorum replication (DESIGN.md §16); default no-ops. With
  // replicas > 1, on_ack_received / on_log_ack_received report *quorum*
  // advances; these report the underlying per-replica cursor movements.
  /// Replica `replica`'s ack for `epoch` arrived (fires before the quorum
  /// gate decides).
  virtual void on_replica_ack(int /*replica*/, std::uint64_t /*epoch*/) {}
  /// Replica `replica` acknowledged log segment `seq`.
  virtual void on_replica_log_ack(int /*replica*/, std::uint64_t /*seq*/) {}
};

/// Backup-agent commit points, in per-epoch order: ack_sent ->
/// commit_begin -> (DRBD apply) -> commit. Recovery hooks bracket failover.
class BackupAuditHooks {
 public:
  virtual ~BackupAuditHooks() = default;
  /// State fully buffered and the epoch's DRBD barrier arrived; the ack is
  /// about to be sent. `last_barrier` is the newest barrier the DRBD
  /// receiver has seen.
  virtual void on_ack_sent(std::uint64_t epoch,
                           std::uint64_t last_barrier) = 0;
  /// The fold of `epoch` into the committed stores is starting.
  virtual void on_commit_begin(std::uint64_t epoch) = 0;
  /// Fold finished; fires while `msg` still holds the epoch's page records
  /// (before the folded sections are cleared), so byte equivalence against
  /// the page store can be checked.
  virtual void on_commit(const EpochStateMsg& msg) = 0;
  /// Failover began; `committed_epoch` is the restore point.
  virtual void on_recovery_started(std::uint64_t committed_epoch) = 0;
  /// Failover finished; the container runs on the backup.
  virtual void on_recovered(std::uint64_t committed_epoch) = 0;

  // ---- Replay commit mode (DESIGN.md §14); default no-ops.
  /// A log segment arrived and was validated; `accepted` is the replay
  /// engine's verdict (false = not acknowledged, output stays held).
  virtual void on_log_ingested(const LogSegmentMsg& /*seg*/,
                               bool /*accepted*/) {}
  /// Failover replay finished: `final_fp` is the replayed state's chain
  /// fingerprint after `entries_replayed` re-executed events.
  virtual void on_replayed(std::uint64_t /*final_fp*/,
                           std::uint64_t /*entries_replayed*/) {}

  // ---- N-way quorum replication (DESIGN.md §16); default no-op.
  /// This survivor adopted the promoted winner's committed state during
  /// re-silvering; `committed_epoch` is the winner's (= the survivor's
  /// new) restore point. Fires before the survivor's uncommitted DRBD
  /// tail is discarded, so the checker can authorize that discard.
  virtual void on_resilver_adopted(std::uint64_t /*committed_epoch*/) {}
};

}  // namespace nlc::core
