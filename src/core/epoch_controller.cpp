#include "core/epoch_controller.hpp"

#include <cmath>

namespace nlc::core::epochctl {

namespace {

// Feedback constants (DESIGN.md §15 gives the stability argument):
// multiplicative steps with an EWMA-smoothed input and a settle period
// give hysteresis — a change must survive several smoothed observations
// before the next one, so the controller cannot chatter on per-epoch
// noise, and the geometric step bounds convergence to O(log(range))
// decisions.
constexpr double kAlpha = 0.25;           // EWMA weight of a new sample
constexpr std::uint64_t kWarmup = 2;      // observations before deciding
constexpr std::uint64_t kEpochSettle = 4; // decision cadence, epoch mode
constexpr std::uint64_t kReplaySettle = 1;  // replay mode decides per epoch
constexpr double kShrinkStep = 0.8;
constexpr double kGrowStep = 1.25;
constexpr double kReplayShrinkStep = 0.75;
constexpr double kReplayGrowStep = 2.0;
// Freeze/dump overhead band (pause-side segment work over pause-to-pause
// wall). Below the band the commit cadence — not the dump — bounds client
// latency, so shrink; above it the dump overhead eats the execute phase,
// so grow. Equilibrium: pause work between ~35% and ~50% of one epoch.
constexpr double kOverheadShrink = 0.35;
constexpr double kOverheadGrow = 0.50;
// Epoch-mode shrink additionally requires that at least half of the
// observed releases emitted output AND drained the plug: only then is the
// workload in the request-response regime where a whole response waits on
// the commit cadence. Requests that span many epochs — heavy service
// times streaming partial output (lighttpd, djcms, ssdb), or a saturated
// pipeline — leave output pending at every release, and for them a
// shorter epoch cannot improve latency: it only adds pauses that stretch
// the service itself.
constexpr double kDrainShrink = 0.5;
// ... and that the container is idle at least half the time: every added
// pause is paid out of capacity, so a busy container (saturated client
// population, a pipelined connection, heavy per-request work) sees any
// shrink purely as stretched service time. Only shrink into slack.
constexpr double kBusyShrink = 0.5;
// Replay mode only doubles when the stop EWMA leaves headroom under the
// budget. Stop grows strongly sublinearly with length (dirty-set
// saturation — doubling the epoch adds far less than 2x the pages), so a
// thin 10% pre-step margin is enough; the hard budget check above shrinks
// back if a probe step does overshoot.
constexpr double kStopGrowMargin = 0.9;
// The ack pipeline keeps ≤ 2 un-checkpointed epochs alive, so failover
// replay backlog and backup-retained log are estimated at 2 epochs of the
// observed rates.
constexpr double kBacklogEpochs = 2.0;

void ewma(double& acc, double sample) {
  acc = acc < 0.0 ? sample : acc + (sample - acc) * kAlpha;
}

}  // namespace

EpochController::EpochController(const Options& opts, LogCostModel log_costs)
    : adaptive_(opts.epoch_policy == EpochPolicy::kAdaptive),
      replay_(opts.commit_mode == CommitMode::kReplay),
      initial_len_(opts.epoch_length),
      min_len_(opts.epoch_min),
      max_len_(replay_ ? opts.replay_epoch_target : opts.epoch_max),
      stop_budget_(opts.stop_budget),
      replay_budget_(opts.replay_budget),
      log_retained_budget_(opts.log_retained_budget),
      quantum_(replay_ ? nlc::milliseconds(10) : nlc::milliseconds(1)),
      log_costs_(log_costs),
      len_(opts.epoch_length) {
  if (adaptive_) {
    if (len_ < min_len_) len_ = min_len_;
    if (len_ > max_len_) len_ = max_len_;
  }
}

EpochController EpochController::fixed(Time len) {
  Options o;
  o.epoch_length = len;
  o.epoch_policy = EpochPolicy::kFixed;
  return EpochController(o);
}

Time EpochController::clamp_quantize(double ns) const {
  Time t = static_cast<Time>(std::llround(ns / static_cast<double>(quantum_)))
           * quantum_;
  if (t < min_len_) t = min_len_;
  if (t > max_len_) t = max_len_;
  return t;
}

void EpochController::apply(Time next, std::uint64_t epoch) {
  if (next == len_) return;
  if (next > len_) ++grow_steps_; else ++shrink_steps_;
  len_ = next;
  last_change_epoch_ = epoch;
}

void EpochController::observe(const EpochObservation& o) {
  ++observations_;
  const auto& s = o.path.stage_ns;
  ewma(stop_ewma_, static_cast<double>(o.stop));
  // First steady epoch follows the initial full sync, whose wall time is
  // no epoch's: callers pass epoch_wall = 0 there and the fallback
  // (execute length + stop) seeds the EWMA instead.
  const double wall = o.epoch_wall > 0
                          ? static_cast<double>(o.epoch_wall)
                          : static_cast<double>(len_ + o.stop);
  ewma(wall_ewma_, wall);
  ewma(pause_side_ewma_,
       static_cast<double>(s[trace::kPsFreeze] + s[trace::kPsHarvest] +
                           s[trace::kPsEncode]));
  ewma(ship_side_ewma_,
       static_cast<double>(s[trace::kPsTail] + s[trace::kPsShip] +
                           s[trace::kPsAckWait]));
  ewma(entry_rate_ewma_, static_cast<double>(o.log_entries) / wall);
  ewma(byte_rate_ewma_, static_cast<double>(o.log_bytes) / wall);
  ewma(drain_ewma_, o.output_packets > 0 && o.plug_drained ? 1.0 : 0.0);
  ewma(busy_ewma_, static_cast<double>(o.busy) / wall);
  if (!adaptive_) return;
  ++since_decision_;
  if (observations_ <= kWarmup) return;
  if (since_decision_ < (replay_ ? kReplaySettle : kEpochSettle)) return;
  since_decision_ = 0;
  decide(o);
}

void EpochController::decide(const EpochObservation& o) {
  const double len = static_cast<double>(len_);
  const double wall = wall_ewma_ > 1.0 ? wall_ewma_ : 1.0;
  const double budget = static_cast<double>(stop_budget_);

  // Step helper: the quantized multiplicative move, forced to advance at
  // least one quantum so a small factor near the grid cannot stall.
  auto stepped = [&](double factor) {
    Time next = clamp_quantize(len * factor);
    if (next == len_ && factor < 1.0 && len_ - quantum_ >= min_len_) {
      next = len_ - quantum_;
    }
    if (next == len_ && factor > 1.0 && len_ + quantum_ <= max_len_) {
      next = len_ + quantum_;
    }
    return next;
  };
  auto step = [&](double factor) { apply(stepped(factor), o.epoch); };

  // The stop budget is the hard constraint in both modes: stop time grows
  // with epoch length (larger dirty set per pause), so over budget the
  // only move is down.
  if (stop_ewma_ > budget) {
    step(replay_ ? kReplayShrinkStep : kShrinkStep);
    return;
  }

  if (!replay_) {
    // Epoch mode: freeze/dump overhead fraction from the segment feed.
    // The numerator is the pause-side work (freeze + harvest + encode) —
    // in sync-ship configurations the raw stop also contains ship and
    // ack-wait, which are commit-cadence costs, not dump overhead.
    const double overhead = pause_side_ewma_ / wall;
    if (overhead > kOverheadGrow) {
      step(kGrowStep);
    } else if (overhead < kOverheadShrink && drain_ewma_ >= kDrainShrink &&
               busy_ewma_ < kBusyShrink) {
      // Dump overhead is cheap and most releases commit whole responses,
      // so client p99 is bounded by the commit cadence (output waits out
      // the ship/ack side of the next commit): buy latency with more
      // frequent checkpoints. Streaming or output-starved epochs block
      // this move — see kDrainShrink. The step is also
      // checked predictively: pause-side work is mostly length-invariant
      // (freeze base + per-page dump of a saturating dirty set), so its
      // duty cycle at the shorter candidate is ≈ pause / (cand + pause);
      // refuse the move if that estimate would already breach the ceiling
      // — the EWMA would only discover the breach several epochs of
      // stretched service time later.
      const Time cand = stepped(kShrinkStep);
      const double pause = pause_side_ewma_;
      const double duty_est = pause / (static_cast<double>(cand) + pause);
      if (duty_est < kOverheadShrink) apply(cand, o.epoch);
    }
    return;
  }

  // Replay mode: stretch toward the target while every budget holds.
  double cand = len * kReplayGrowStep;
  const double max_len = static_cast<double>(max_len_);
  if (cand > max_len) cand = max_len;
  if (cand <= len) return;  // already at the target
  if (stop_ewma_ > kStopGrowMargin * budget) return;
  // Failover replays ≤ kBacklogEpochs of log entries at the candidate
  // length; the estimate must stay inside the recovery budget.
  const double replay_est =
      static_cast<double>(log_costs_.replay_base) +
      kBacklogEpochs * entry_rate_ewma_ * cand *
          static_cast<double>(log_costs_.replay_per_entry);
  if (replay_est > static_cast<double>(replay_budget_)) return;
  // Checkpoint-commit truncation leaves ≈ kBacklogEpochs of segments
  // retained at the backup; bound that memory at the candidate length.
  const double retained_est = kBacklogEpochs * byte_rate_ewma_ * cand;
  if (retained_est > static_cast<double>(log_retained_budget_)) return;
  apply(clamp_quantize(cand), o.epoch);
}

}  // namespace nlc::core::epochctl
