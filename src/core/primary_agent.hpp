// The NiLiCon primary agent (§IV): drives the epoch cycle on the protected
// container.
//
// Per epoch: let the container execute for epoch_length; freeze it; block
// network input; send the DRBD barrier; harvest the incremental checkpoint
// (CRIU engine + state cache); optionally ship it synchronously (no staging
// buffer) or stage it and ship after resume; unblock input, insert the
// output-commit marker, thaw. Buffered output of epoch k is released when
// the backup acknowledges epoch k's state.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "blockdev/drbd.hpp"
#include "core/audit_hooks.hpp"
#include "core/epoch_controller.hpp"
#include "core/event_log.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "core/state_cache.hpp"
#include "criu/checkpoint.hpp"
#include "criu/delta.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace nlc::core {

class PrimaryAgent {
 public:
  PrimaryAgent(Options opts, kern::Kernel& kernel, net::TcpStack& tcp,
               kern::ContainerId cid, blk::DrbdPrimary& drbd,
               StateChannel& state_out, AckChannel& ack_in,
               HeartbeatChannel& hb_out, LogChannel& log_out,
               LogAckChannel& log_ack_in, ReplicationMetrics& metrics);
  /// Clears the callbacks installed into the plug and the container
  /// (both outlive the agent in the Cluster).
  ~PrimaryAgent();

  /// Registers one more backup replica (index = registration order; the
  /// constructor's channels are replica 0). `direct` = fed straight from
  /// this agent (star: every replica; chain: only the head — downstream
  /// replicas get their state forwarded by their upstream BackupAgent but
  /// still ack directly here). Must be called before start().
  void add_replica(StateChannel& state_out, AckChannel& ack_in,
                   HeartbeatChannel& hb_out, LogChannel& log_out,
                   LogAckChannel& log_ack_in, bool direct);

  int replica_count() const { return static_cast<int>(replicas_.size()); }
  int quorum() const { return quorum_k_; }
  /// Replica `r`'s last acked epoch (the per-replica cursor).
  std::uint64_t replica_acked_epoch(int r) const {
    return replicas_[static_cast<std::size_t>(r)].acked_epoch;
  }

  /// Spawns the epoch loop, ack receiver and heartbeat sender under the
  /// primary host's domain. Returns once the initial full synchronization
  /// has been acknowledged by the backup (the container is protected from
  /// that point on).
  sim::task<> start();

  /// Stops taking checkpoints (end of measurement interval).
  void stop() { running_ = false; }

  /// Installs (or clears, with nullptr) the invariant auditor's hooks.
  void set_audit_hooks(PrimaryAuditHooks* hooks) { audit_ = hooks; }

  /// Attaches (or clears) the flight recorder. Observer only, like the
  /// audit hooks: recording changes no simulated observable.
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  std::uint64_t current_epoch() const { return epoch_; }
  std::uint64_t acked_epoch() const { return acked_epoch_; }
  /// The epoch-length controller (DESIGN.md §15); read-only for tests and
  /// the run drivers' controller summary.
  const epochctl::EpochController& controller() const { return controller_; }

 private:
  sim::task<> epoch_loop();
  sim::task<> ack_loop(std::size_t replica);
  sim::task<> heartbeat_loop();
  sim::task<> log_flush_loop();
  sim::task<> log_ack_loop(std::size_t replica);
  bool replay_mode() const { return opts_.commit_mode == CommitMode::kReplay; }
  sim::task<> checkpoint_once(bool initial);
  /// `precopy` is the COW copy-out deferred from the stop window (replay
  /// mode): charged before the send, since the delta cannot serialize
  /// until the protected snapshot has been copied out.
  sim::task<> ship_state(EpochStateMsg msg, bool staged, Time precopy = 0);
  sim::task<> wait_acked(std::uint64_t epoch);
  Time send_side_cost(const EpochStateMsg& msg, bool staged) const;
  net::IpAddr service_ip() const;
  /// Egress plug of the service address, resolved once at start() — the
  /// plug map lookup is off the per-epoch hot path (marker insert, release,
  /// ack) after that.
  net::PlugQdisc& plug();

  Options opts_;
  kern::Kernel* kernel_;
  net::TcpStack* tcp_;
  kern::ContainerId cid_;
  blk::DrbdPrimary* drbd_;
  ReplicationMetrics* metrics_;
  PrimaryAuditHooks* audit_ = nullptr;
  trace::Recorder* trace_ = nullptr;

  // ---- N-way replication (DESIGN.md §16) ----------------------------------
  /// One entry per backup replica. Replica 0 is the constructor's channel
  /// set (the paper's single backup); extras register via add_replica().
  /// The per-replica cursors feed the quorum gate: acked_epoch_/any_acked_
  /// below hold the *quorum* cursor (K-th largest), which at N = 1
  /// degenerates to the lone backup's cursor — the legacy semantics.
  struct Replica {
    StateChannel* state_out;
    AckChannel* ack_in;
    HeartbeatChannel* hb_out;
    LogChannel* log_out;
    LogAckChannel* log_ack_in;
    bool direct = true;
    std::uint64_t acked_epoch = 0;
    bool any_acked = false;
  };
  static constexpr std::size_t kMaxReplicas = 16;
  std::vector<Replica> replicas_;
  int quorum_k_ = 1;
  bool started_ = false;
  /// Applies replica `r`'s ack, recomputes the quorum cursor and releases
  /// every epoch a quorum advance covers. The whole body runs in one
  /// scheduler step (no co_await), like the old single-backup ack_loop.
  void apply_replica_ack(std::size_t r, std::uint64_t epoch);
  /// K-th largest per-replica cursor; *any = false until K replicas acked.
  std::uint64_t quorum_epoch(bool* any) const;
  /// Per-replica ack lag + quorum wait samples at a quorum advance (N > 1).
  void sample_quorum_metrics(std::uint64_t q, Time now);

  criu::CheckpointEngine ckpt_;
  InfrequentStateCache cache_;
  criu::DeltaCodec delta_;
  Rng rng_;
  net::PlugQdisc* plug_ = nullptr;  // cached by plug()

  bool running_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t acked_epoch_ = 0;
  /// Distinguishes "epoch 0 acked" from "no ack yet" (both leave
  /// acked_epoch_ == 0).
  bool any_acked_ = false;
  std::unique_ptr<sim::Event> ack_event_;
  /// Per-epoch record (plug marker, stop-begin time); marker released on
  /// ack. The epoch pipeline bounds the un-acked window at 2 (epoch_loop
  /// waits for epoch-2's ack before checkpointing), so the live set is
  /// tiny and bounded: a fixed ring indexed by epoch % kEpochWindow
  /// replaces the former std::map — no node allocation, lookup and erase
  /// are O(1) with no hashing/comparison.
  struct EpochRec {
    std::uint64_t epoch = 0;
    bool live = false;
    bool initial = false;
    std::uint64_t marker = 0;
    bool marker_inserted = false;
    Time stop_begin = 0;
    // Controller feed (DESIGN.md §15): absolute sim-time stamps of the
    // commit-path stages — the same points trace::CriticalPath scrapes
    // from the flight recorder, assembled online so adaptation needs no
    // recorder attached.
    Time len_used = 0;    // execute-phase length this epoch ran
    Time epoch_wall = 0;  // previous steady pause begin → this pause begin
    Time pause_end = 0;
    Time harvest_b = 0;
    Time harvest_e = 0;
    Time ship_b = 0;
    Time ship_e = 0;
    std::uint64_t dirty = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t nd_entries_delta = 0;
    std::uint64_t log_bytes_delta = 0;
    /// First replica ack's arrival (-1 = none yet); with N > 1 the quorum
    /// wait is the K-th ack minus this.
    Time first_ack_at = -1;
  };
  static constexpr std::size_t kEpochWindow = 8;  // > max in-flight epochs
  EpochRec& emplace_rec(std::uint64_t epoch);
  EpochRec* find_rec(std::uint64_t epoch);
  void erase_rec(std::uint64_t epoch);
  /// Commit point: audit + trace the release, open the plug to the marker,
  /// record commit latency, retire the record. Shared by the synchronous
  /// ship path and the ack_loop.
  void release_epoch(EpochRec& rec);
  /// Builds the EpochObservation from the record's stamps and feeds the
  /// controller at the release point (acks are monotone, so observations
  /// arrive in epoch order).
  void feed_controller(const EpochRec& rec, Time now);
  std::array<EpochRec, kEpochWindow> epoch_recs_;

  // ---- Replay commit mode (DESIGN.md §14) ---------------------------------
  /// The container's nondeterminism recorder; installed as its NondetSink
  /// in start() when commit_mode == kReplay.
  EventLog nd_log_;
  LogCostModel log_costs_;

  // ---- Adaptive epoch control (DESIGN.md §15) -----------------------------
  /// Declared after log_costs_: its replay-time estimates use the cost
  /// model. A pass-through pacer under EpochPolicy::kFixed.
  epochctl::EpochController controller_;
  /// Length the epoch_loop chose for the execute phase now running; the
  /// next checkpoint stamps it into its record and EpochStateMsg.
  Time last_execute_len_ = 0;
  /// Pause begin of the previous steady checkpoint (-1 before the first):
  /// the epoch_wall numerator's other end.
  Time last_steady_stop_begin_ = -1;
  /// nd_log_.entries_total() at the previous checkpoint, for the
  /// controller's per-epoch log-entry rate.
  std::uint64_t nd_entries_mark_ = 0;
  /// plug().released_total() at the previous controller feed, for the
  /// per-epoch released-output presence signal.
  std::uint64_t released_mark_ = 0;
  /// Whether the previous epoch release left the plug empty (all
  /// outstanding output committed) — the controller's drain signal.
  bool last_release_drained_ = false;
  /// Container CPU usage at the previous controller feed (capacity gate).
  Time cpu_mark_ = 0;
  /// log_bytes_shipped at the previous checkpoint (controller feed; kept
  /// separate from log_bytes_at_last_epoch_, which the delta-stats stamp
  /// owns and only updates when compression is on).
  std::uint64_t log_bytes_ctl_mark_ = 0;
  /// Wakes the flush loop when buffered output is waiting on a log ship.
  std::unique_ptr<sim::Event> log_flush_event_;
  /// In-flight segments: seq -> (plug marker bounding its output, cut
  /// time). Released (and erased) on the backup's log ack.
  struct SegRec {
    std::uint64_t marker = 0;
    Time cut_at = 0;
    /// Replica acks seen; output releases at the K-th, the record retires
    /// at the N-th (a dead replica leaves a bounded leak, erased never).
    int acks = 0;
    bool released = false;
  };
  std::map<std::uint64_t, SegRec> seg_recs_;
  /// log_bytes_shipped high-water at the previous checkpoint, for the
  /// per-epoch log-stream stamp in EpochDeltaStats::log_bytes.
  std::uint64_t log_bytes_at_last_epoch_ = 0;
  /// The single dumper/sender thread's busy horizon: staged ships (and
  /// their deferred COW copy-outs) serialize behind it so EpochStateMsg
  /// arrivals stay in epoch order.
  Time ship_busy_until_ = 0;
};

}  // namespace nlc::core
