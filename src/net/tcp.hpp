// Simulated TCP with the features NiLiCon depends on (§II-B, §III, §V-E):
//
//  * connection establishment with SYN retransmission and exponential
//    backoff (this is where firewall-based input blocking hurts: a dropped
//    SYN costs seconds);
//  * byte-accurate sequence/acknowledgment tracking with go-back-N
//    retransmission — after a failover the backup's restored socket and the
//    client's live socket resynchronize purely through this mechanism;
//  * segment-oriented delivery: each send() is one segment with an optional
//    application tag and payload, approximating request/response protocols
//    (a SOCK_STREAM carrying length-prefixed records);
//  * RST generation when a packet reaches a host with no matching socket —
//    the failure mode NiLiCon's recovery-time input blocking exists to
//    prevent;
//  * socket repair mode: dump/restore of sequence state and of both queues
//    (write queue = sent-but-unacknowledged, read queue = received-but-
//    unread), plus the paper's 2-line RTO clamp for repaired sockets.
//
// Egress passes a per-IP PlugQdisc (output commit); ingress passes a per-IP
// IngressFilter (checkpoint/recovery input blocking).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "net/qdisc.hpp"
#include "net/types.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "trace/recorder.hpp"

namespace nlc::net {

using SocketId = std::uint64_t;

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kReset,
};

struct Segment {
  std::uint64_t seq = 0;
  std::uint32_t len = 0;
  std::uint64_t tag = 0;
  std::shared_ptr<const std::vector<std::byte>> payload;
};

/// Everything TCP_REPAIR exposes for checkpoint/restore.
struct TcpRepairState {
  Endpoint local;
  Endpoint remote;
  std::uint64_t snd_una = 0;
  std::uint64_t snd_nxt = 0;
  std::uint64_t rcv_nxt = 0;
  bool peer_fin = false;
  std::vector<Segment> write_queue;  // transmitted, not acknowledged
  std::vector<Segment> read_queue;   // received, not read by the process

  std::uint64_t queue_bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : write_queue) n += s.len;
    for (const auto& s : read_queue) n += s.len;
    return n;
  }
  /// Wire size of this record in a checkpoint (queues + fixed header).
  std::uint64_t byte_size() const { return queue_bytes() + 96; }
};

struct TcpTuning {
  /// Established-flow retransmission timeout (Linux's RTO floor).
  Time rto_established = nlc::milliseconds(200);
  /// Initial SYN retransmission timeout (doubles per attempt).
  Time rto_syn = nlc::seconds(1);
  /// RTO of a socket restored via repair mode *without* the paper's fix:
  /// no RTT estimate, so at least one second (§V-E).
  Time rto_repaired_stock = nlc::seconds(1);
  /// With NiLiCon's 2-line kernel change: clamped to the 200 ms minimum.
  Time rto_repaired_fixed = nlc::milliseconds(200);
  int max_syn_retries = 6;
  Time rto_max = nlc::seconds(8);
};

class TcpStack : public PacketSink {
 public:
  TcpStack(sim::Simulation& s, sim::DomainPtr domain, Network& net,
           HostId host, TcpTuning tuning = {});
  ~TcpStack() override;

  /// Binds `ip` to this stack's host and creates its egress plug and
  /// ingress filter (both transparent until engaged).
  void add_address(IpAddr ip);
  /// Drops the binding (container disconnected from the bridge).
  void remove_address(IpAddr ip);
  /// Re-binds an address previously served elsewhere (gratuitous ARP).
  void takeover_address(IpAddr ip);

  PlugQdisc& plug(IpAddr ip);
  IngressFilter& ingress(IpAddr ip);

  // --- Application API (coroutines) --------------------------------------

  void listen(Endpoint local);
  void unlisten(Endpoint local);
  sim::task<SocketId> accept(Endpoint local);
  /// Connects from `local` (port 0 = ephemeral). Returns 0 on failure
  /// (reset or SYN retries exhausted).
  sim::task<SocketId> connect(IpAddr local_ip, Endpoint remote);

  /// Queues one segment of `len` bytes. Non-blocking (no send window).
  void send(SocketId id, std::uint32_t len, std::uint64_t tag = 0,
            std::shared_ptr<const std::vector<std::byte>> payload = nullptr);

  /// Waits for the next segment and removes it from the read queue.
  /// nullopt = connection reset or closed by peer.
  sim::task<std::optional<Segment>> recv(SocketId id);

  /// Waits for the next segment but leaves it in the read queue. Paired
  /// with consume(): a server that checkpoints mid-request keeps the
  /// request in the (checkpointed) read queue until it has produced the
  /// response, so a restored backup reprocesses it. See DESIGN.md §5.
  sim::task<std::optional<Segment>> peek(SocketId id);
  void consume(SocketId id);

  void close(SocketId id);  // FIN
  void abort(SocketId id);  // RST

  // --- Introspection ------------------------------------------------------

  TcpState state(SocketId id) const;
  bool valid(SocketId id) const { return sockets_.contains(id); }
  Endpoint local_endpoint(SocketId id) const;
  Endpoint remote_endpoint(SocketId id) const;
  std::uint64_t bytes_unacked(SocketId id) const;
  std::uint64_t read_queue_bytes(SocketId id) const;
  std::vector<SocketId> sockets_on_ip(IpAddr ip) const;
  std::vector<Endpoint> listeners_on_ip(IpAddr ip) const;
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  // --- Repair mode (checkpoint/restore) -----------------------------------

  /// Dumps repair state of one established socket.
  TcpRepairState repair_dump(SocketId id) const;
  /// Restores a socket from repair state. The socket is live immediately;
  /// `rto_fixed` selects the paper's 200 ms clamp vs the stock 1 s. If the
  /// write queue is non-empty the retransmission timer is armed (the data
  /// may have been lost with the primary).
  ///
  /// `ack_runahead` (replay commit mode, DESIGN.md §14): the peer may
  /// legitimately acknowledge bytes beyond the restored snd_nxt — output
  /// released on a log ack after this checkpoint was cut. Such acks are
  /// held and applied as deterministic re-execution regenerates the bytes;
  /// regenerated segments the peer already acknowledged are not
  /// retransmitted.
  SocketId repair_restore(const TcpRepairState& st, bool rto_fixed,
                          bool ack_runahead = false);

  // --- Replay commit mode (DESIGN.md §14) ----------------------------------

  /// Installs (or clears, with nullptr) a receive-time tap on every
  /// established socket local to `ip`: called once per in-order data
  /// segment, before the segment is acknowledged to the peer, so the
  /// primary can make the input durable in its event log ahead of any
  /// dependent output release. Observer only.
  using InputTap = std::function<void(SocketId, Endpoint local,
                                      Endpoint remote, const Segment&)>;
  void set_input_tap(IpAddr ip, InputTap tap);

  /// Failover re-injection of a logged input into the repaired socket for
  /// (local, remote). Idempotent by sequence number: segments the restored
  /// checkpoint already contains are skipped. Returns true if the segment
  /// entered the read queue.
  bool inject_repaired_input(Endpoint local, Endpoint remote,
                             const Segment& seg);

  /// Attaches (or clears) the flight recorder; `track` places this stack's
  /// events on the primary- or backup-side net lane. Observer only.
  void set_trace(trace::Recorder* rec, trace::Track track) {
    trace_ = rec;
    trace_track_ = track;
  }

 private:
  struct Socket {
    SocketId id = 0;
    TcpState state = TcpState::kClosed;
    Endpoint local;
    Endpoint remote;
    std::uint64_t snd_una = 0;
    std::uint64_t snd_nxt = 0;
    std::uint64_t rcv_nxt = 0;
    /// Replay-mode repaired socket: highest peer ack seen beyond snd_nxt,
    /// applied as re-execution regenerates the acknowledged bytes.
    std::uint64_t peer_ack_high = 0;
    bool ack_runahead = false;
    bool peer_fin = false;
    bool fin_sent = false;
    std::deque<Segment> write_queue;
    std::deque<Segment> read_queue;
    Time rto = 0;
    Time rto_base = 0;
    int syn_attempts = 0;
    sim::TimerHandle retrans_timer;
    std::unique_ptr<sim::Event> rx_event;      // read queue / EOF / reset
    std::unique_ptr<sim::Event> connect_event; // SYN_SENT completion
  };

  struct Listener {
    Endpoint local;
    std::unique_ptr<sim::Mailbox<SocketId>> pending;
  };

  // PacketSink
  void deliver(const Packet& p) override;

  void handle_packet(const Packet& p);
  void handle_for_socket(Socket& s, const Packet& p);
  void process_ack(Socket& s, std::uint64_t ack);
  void send_packet(Packet p);
  void send_control(const Socket& s, TcpFlag flag);
  void send_rst(const Packet& cause);
  void arm_retransmit(Socket& s);
  void retransmit_now(Socket& s);
  void signal_rx(Socket& s);
  void promote_syn_rcvd(Socket& s);
  Socket& sock(SocketId id);
  const Socket& sock(SocketId id) const;
  Socket& create_socket();

  sim::Simulation* sim_;
  sim::DomainPtr domain_;
  Network* net_;
  HostId host_;
  TcpTuning tuning_;
  std::map<SocketId, std::unique_ptr<Socket>> sockets_;
  std::map<std::pair<Endpoint, Endpoint>, SocketId> by_tuple_;  // local,remote
  std::map<Endpoint, Listener> listeners_;
  std::map<IpAddr, std::unique_ptr<PlugQdisc>> plugs_;
  std::map<IpAddr, std::unique_ptr<IngressFilter>> filters_;
  std::map<IpAddr, InputTap> input_taps_;
  SocketId next_id_ = 1;
  Port next_ephemeral_ = 40000;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t rsts_sent_ = 0;
  trace::Recorder* trace_ = nullptr;
  trace::Track trace_track_ = trace::Track::kNetPrimary;
};

}  // namespace nlc::net
