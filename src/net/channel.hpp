// Typed reliable FIFO channel over a Link — the transport the NiLiCon
// agents and the DRBD peers use on the dedicated replication network.
//
// The paper runs these over TCP on an otherwise idle, lossless 10 GbE
// link; modeling them as serialized-FIFO messages preserves the two
// properties the protocol depends on — ordering and wire time — without
// simulating per-segment TCP dynamics. Host failure is still fail-stop: a
// message addressed to a dead host is discarded at arrival.
#pragma once

#include <utility>

#include "net/link.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace nlc::net {

template <typename T>
class Channel {
 public:
  /// `link` carries this channel's bytes (shared with other channels on
  /// the same physical link — serialization contention is modeled by the
  /// link itself). `dst_domain` is the receiving host.
  Channel(sim::Simulation& s, Link& link, sim::DomainPtr dst_domain)
      : sim_(&s), link_(&link), dst_domain_(std::move(dst_domain)),
        inbox_(s) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Ships `msg`, charging `wire_bytes` of link serialization. Delivery is
  /// FIFO. Returns the simulated arrival time.
  Time send(T msg, std::uint64_t wire_bytes) {
    ++messages_sent_;
    bytes_sent_ += wire_bytes;
    return link_->transmit(
        wire_bytes, dst_domain_,
        [this, m = std::move(msg)]() mutable { inbox_.send(std::move(m)); });
  }

  /// Receiver side (runs on the destination host).
  sim::task<T> recv() { co_return co_await inbox_.recv(); }
  std::optional<T> try_recv() { return inbox_.try_recv(); }
  bool empty() const { return inbox_.empty(); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  sim::Simulation* sim_;
  Link* link_;
  sim::DomainPtr dst_domain_;
  sim::Mailbox<T> inbox_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace nlc::net
