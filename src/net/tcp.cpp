#include "net/tcp.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::net {

TcpStack::TcpStack(sim::Simulation& s, sim::DomainPtr domain, Network& net,
                   HostId host, TcpTuning tuning)
    : sim_(&s), domain_(std::move(domain)), net_(&net), host_(host),
      tuning_(tuning) {}

TcpStack::~TcpStack() = default;

void TcpStack::add_address(IpAddr ip) {
  net_->bind_ip(ip, host_, this);
  if (!plugs_.contains(ip)) {
    plugs_[ip] = std::make_unique<PlugQdisc>(
        [this](const Packet& p) { net_->transmit(p.src.ip, p); });
  }
  if (!filters_.contains(ip)) {
    filters_[ip] = std::make_unique<IngressFilter>(
        [this](const Packet& p) { handle_packet(p); });
  }
}

void TcpStack::remove_address(IpAddr ip) { net_->unbind_ip(ip); }

void TcpStack::takeover_address(IpAddr ip) { add_address(ip); }

PlugQdisc& TcpStack::plug(IpAddr ip) {
  auto it = plugs_.find(ip);
  NLC_CHECK_MSG(it != plugs_.end(), "no plug for address");
  return *it->second;
}

IngressFilter& TcpStack::ingress(IpAddr ip) {
  auto it = filters_.find(ip);
  NLC_CHECK_MSG(it != filters_.end(), "no ingress filter for address");
  return *it->second;
}

// --------------------------------------------------------------- sockets --

TcpStack::Socket& TcpStack::create_socket() {
  auto s = std::make_unique<Socket>();
  s->id = next_id_++;
  s->rx_event = std::make_unique<sim::Event>(*sim_);
  s->connect_event = std::make_unique<sim::Event>(*sim_);
  s->rto_base = tuning_.rto_established;
  s->rto = tuning_.rto_established;
  Socket& ref = *s;
  sockets_[ref.id] = std::move(s);
  return ref;
}

TcpStack::Socket& TcpStack::sock(SocketId id) {
  auto it = sockets_.find(id);
  NLC_CHECK_MSG(it != sockets_.end(), "unknown socket");
  return *it->second;
}

const TcpStack::Socket& TcpStack::sock(SocketId id) const {
  auto it = sockets_.find(id);
  NLC_CHECK_MSG(it != sockets_.end(), "unknown socket");
  return *it->second;
}

void TcpStack::listen(Endpoint local) {
  NLC_CHECK_MSG(!listeners_.contains(local), "already listening");
  Listener l;
  l.local = local;
  l.pending = std::make_unique<sim::Mailbox<SocketId>>(*sim_);
  listeners_[local] = std::move(l);
}

void TcpStack::unlisten(Endpoint local) { listeners_.erase(local); }

sim::task<SocketId> TcpStack::accept(Endpoint local) {
  auto it = listeners_.find(local);
  NLC_CHECK_MSG(it != listeners_.end(), "accept without listen");
  co_return co_await it->second.pending->recv();
}

sim::task<SocketId> TcpStack::connect(IpAddr local_ip, Endpoint remote) {
  Socket& s = create_socket();
  s.local = Endpoint{local_ip, next_ephemeral_++};
  s.remote = remote;
  s.state = TcpState::kSynSent;
  s.snd_una = s.snd_nxt = 1000 + s.id * 100000;
  s.rto = tuning_.rto_syn;
  s.syn_attempts = 1;
  by_tuple_[{s.local, s.remote}] = s.id;

  Packet syn;
  syn.src = s.local;
  syn.dst = s.remote;
  syn.flag = TcpFlag::kSyn;
  syn.seq = s.snd_nxt;
  send_packet(syn);
  s.snd_nxt += 1;  // SYN consumes one sequence number
  arm_retransmit(s);

  SocketId id = s.id;
  co_await s.connect_event->wait();
  Socket& after = sock(id);
  co_return after.state == TcpState::kEstablished ? id : 0;
}

void TcpStack::send(SocketId id, std::uint32_t len, std::uint64_t tag,
                    std::shared_ptr<const std::vector<std::byte>> payload) {
  Socket& s = sock(id);
  NLC_CHECK_MSG(s.state == TcpState::kEstablished, "send on non-ESTABLISHED");
  NLC_CHECK(len > 0);
  Segment seg{s.snd_nxt, len, tag, std::move(payload)};
  s.write_queue.push_back(seg);
  s.snd_nxt += len;

  // Replay-mode re-execution: bytes the peer acknowledged before the
  // failover are regenerated, not retransmitted — consume the held ack
  // instead of sending a duplicate the peer would discard anyway.
  if (s.ack_runahead && seg.seq + seg.len <= s.peer_ack_high) {
    process_ack(s, seg.seq + seg.len);
    return;
  }

  Packet p;
  p.src = s.local;
  p.dst = s.remote;
  p.flag = TcpFlag::kData;
  p.seq = seg.seq;
  p.ack = s.rcv_nxt;
  p.len = seg.len;
  p.tag = seg.tag;
  p.payload = seg.payload;
  send_packet(p);
  arm_retransmit(s);
}

sim::task<std::optional<Segment>> TcpStack::recv(SocketId id) {
  auto r = co_await peek(id);
  if (r.has_value()) consume(id);
  co_return r;
}

sim::task<std::optional<Segment>> TcpStack::peek(SocketId id) {
  while (true) {
    Socket& s = sock(id);
    if (!s.read_queue.empty()) co_return s.read_queue.front();
    if (s.state == TcpState::kReset || s.state == TcpState::kClosed ||
        s.peer_fin) {
      co_return std::nullopt;
    }
    s.rx_event->reset();
    co_await s.rx_event->wait();
  }
}

void TcpStack::consume(SocketId id) {
  Socket& s = sock(id);
  NLC_CHECK_MSG(!s.read_queue.empty(), "consume on empty read queue");
  s.read_queue.pop_front();
}

void TcpStack::close(SocketId id) {
  Socket& s = sock(id);
  if (s.state != TcpState::kEstablished || s.fin_sent) return;
  s.fin_sent = true;
  send_control(s, TcpFlag::kFin);
  s.snd_nxt += 1;
}

void TcpStack::abort(SocketId id) {
  Socket& s = sock(id);
  if (s.state == TcpState::kEstablished || s.state == TcpState::kSynSent) {
    send_control(s, TcpFlag::kRst);
  }
  s.state = TcpState::kClosed;
  s.retrans_timer.cancel();
  signal_rx(s);
}

// ---------------------------------------------------------- introspection --

TcpState TcpStack::state(SocketId id) const { return sock(id).state; }

Endpoint TcpStack::local_endpoint(SocketId id) const { return sock(id).local; }
Endpoint TcpStack::remote_endpoint(SocketId id) const {
  return sock(id).remote;
}

std::uint64_t TcpStack::bytes_unacked(SocketId id) const {
  const Socket& s = sock(id);
  std::uint64_t n = 0;
  for (const auto& seg : s.write_queue) n += seg.len;
  return n;
}

std::uint64_t TcpStack::read_queue_bytes(SocketId id) const {
  const Socket& s = sock(id);
  std::uint64_t n = 0;
  for (const auto& seg : s.read_queue) n += seg.len;
  return n;
}

std::vector<SocketId> TcpStack::sockets_on_ip(IpAddr ip) const {
  std::vector<SocketId> out;
  for (const auto& [id, s] : sockets_) {
    if (s->local.ip == ip && s->state == TcpState::kEstablished) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<Endpoint> TcpStack::listeners_on_ip(IpAddr ip) const {
  std::vector<Endpoint> out;
  for (const auto& [ep, l] : listeners_) {
    if (ep.ip == ip) out.push_back(ep);
  }
  return out;
}

// ------------------------------------------------------------ repair mode --

TcpRepairState TcpStack::repair_dump(SocketId id) const {
  const Socket& s = sock(id);
  NLC_CHECK_MSG(s.state == TcpState::kEstablished,
                "repair dump of non-ESTABLISHED socket");
  TcpRepairState st;
  st.local = s.local;
  st.remote = s.remote;
  st.snd_una = s.snd_una;
  st.snd_nxt = s.snd_nxt;
  st.rcv_nxt = s.rcv_nxt;
  st.peer_fin = s.peer_fin;
  st.write_queue.assign(s.write_queue.begin(), s.write_queue.end());
  st.read_queue.assign(s.read_queue.begin(), s.read_queue.end());
  return st;
}

SocketId TcpStack::repair_restore(const TcpRepairState& st, bool rto_fixed,
                                  bool ack_runahead) {
  Socket& s = create_socket();
  s.local = st.local;
  s.remote = st.remote;
  s.state = TcpState::kEstablished;
  s.snd_una = st.snd_una;
  s.snd_nxt = st.snd_nxt;
  s.rcv_nxt = st.rcv_nxt;
  s.ack_runahead = ack_runahead;
  s.peer_fin = st.peer_fin;
  s.write_queue.assign(st.write_queue.begin(), st.write_queue.end());
  s.read_queue.assign(st.read_queue.begin(), st.read_queue.end());
  // A repaired socket has no RTT estimate: stock kernels fall back to a
  // >= 1 s timeout; the paper's kernel change clamps it to the 200 ms
  // minimum (§V-E).
  s.rto_base = tuning_.rto_established;
  s.rto = rto_fixed ? tuning_.rto_repaired_fixed : tuning_.rto_repaired_stock;
  by_tuple_[{s.local, s.remote}] = s.id;
  if (!s.write_queue.empty()) arm_retransmit(s);
  if (!s.read_queue.empty()) s.rx_event->set();
  if (trace_ != nullptr) {
    trace_->instant(trace_track_, trace::Stage::kSocketRepair, sim_->now(),
                    s.id);
  }
  return s.id;
}

void TcpStack::set_input_tap(IpAddr ip, InputTap tap) {
  if (tap) {
    input_taps_[ip] = std::move(tap);
  } else {
    input_taps_.erase(ip);
  }
}

bool TcpStack::inject_repaired_input(Endpoint local, Endpoint remote,
                                     const Segment& seg) {
  auto t = by_tuple_.find({local, remote});
  if (t == by_tuple_.end()) return false;  // connection not in checkpoint
  Socket& s = sock(t->second);
  if (s.state != TcpState::kEstablished) return false;
  if (seg.seq + seg.len <= s.rcv_nxt) return false;  // already restored
  NLC_CHECK_MSG(seg.seq == s.rcv_nxt,
                "replay injection left a gap in the receive stream");
  s.rcv_nxt += seg.len;
  s.read_queue.push_back(seg);
  signal_rx(s);
  return true;
}

// ------------------------------------------------------------- data plane --

void TcpStack::send_packet(Packet p) {
  auto it = plugs_.find(p.src.ip);
  if (it != plugs_.end()) {
    it->second->enqueue(p);
  } else {
    net_->transmit(p.src.ip, p);
  }
}

void TcpStack::send_control(const Socket& s, TcpFlag flag) {
  Packet p;
  p.src = s.local;
  p.dst = s.remote;
  p.flag = flag;
  p.seq = s.snd_nxt;
  p.ack = s.rcv_nxt;
  send_packet(p);
}

void TcpStack::send_rst(const Packet& cause) {
  if (cause.flag == TcpFlag::kRst) return;  // never answer RST with RST
  Packet p;
  p.src = cause.dst;
  p.dst = cause.src;
  p.flag = TcpFlag::kRst;
  p.seq = cause.ack;
  p.ack = cause.seq + cause.len;
  ++rsts_sent_;
  send_packet(p);
}

void TcpStack::deliver(const Packet& p) {
  auto it = filters_.find(p.dst.ip);
  if (it != filters_.end()) {
    it->second->input(p);
  } else {
    handle_packet(p);
  }
}

void TcpStack::handle_packet(const Packet& p) {
  auto t = by_tuple_.find({p.dst, p.src});
  if (t != by_tuple_.end()) {
    handle_for_socket(sock(t->second), p);
    return;
  }
  if (p.flag == TcpFlag::kSyn) {
    auto l = listeners_.find(p.dst);
    if (l == listeners_.end()) {
      // Also allow wildcard listeners on port only (any local ip).
      l = listeners_.find(Endpoint{0, p.dst.port});
    }
    if (l != listeners_.end()) {
      Socket& s = create_socket();
      s.local = p.dst;
      s.remote = p.src;
      s.state = TcpState::kSynRcvd;
      s.snd_una = s.snd_nxt = 2000 + s.id * 100000;
      s.rcv_nxt = p.seq + 1;
      by_tuple_[{s.local, s.remote}] = s.id;

      Packet reply;
      reply.src = s.local;
      reply.dst = s.remote;
      reply.flag = TcpFlag::kSynAck;
      reply.seq = s.snd_nxt;
      reply.ack = s.rcv_nxt;
      send_packet(reply);
      s.snd_nxt += 1;
      return;
    }
  }
  // No socket, no listener: kernel sends RST (the §III failure scenario).
  send_rst(p);
}

void TcpStack::process_ack(Socket& s, std::uint64_t ack) {
  if (ack <= s.snd_una) return;
  if (s.ack_runahead && ack > s.snd_nxt) {
    // Repaired socket, replay commit mode: the peer acknowledges output
    // released on a log ack after the restored checkpoint. Deterministic
    // re-execution will regenerate exactly those bytes; hold the excess
    // and apply what the restored stream can absorb now.
    if (ack > s.peer_ack_high) s.peer_ack_high = ack;
    ack = s.snd_nxt;
    if (ack <= s.snd_una) return;
  }
  NLC_CHECK_MSG(ack <= s.snd_nxt, "ACK beyond snd_nxt");
  s.snd_una = ack;
  while (!s.write_queue.empty() &&
         s.write_queue.front().seq + s.write_queue.front().len <= ack) {
    s.write_queue.pop_front();
  }
  s.retrans_timer.cancel();
  s.rto = s.rto_base;  // successful round trip resets backoff
  if (!s.write_queue.empty()) arm_retransmit(s);
}

void TcpStack::handle_for_socket(Socket& s, const Packet& p) {
  switch (p.flag) {
    case TcpFlag::kRst:
      s.state = TcpState::kReset;
      s.retrans_timer.cancel();
      signal_rx(s);
      s.connect_event->set();
      return;

    case TcpFlag::kSyn:
      // Duplicate SYN for an existing SYN_RCVD socket: re-send SYNACK.
      if (s.state == TcpState::kSynRcvd) {
        Packet reply;
        reply.src = s.local;
        reply.dst = s.remote;
        reply.flag = TcpFlag::kSynAck;
        reply.seq = s.snd_nxt - 1;
        reply.ack = s.rcv_nxt;
        send_packet(reply);
      }
      return;

    case TcpFlag::kSynAck:
      if (s.state == TcpState::kSynSent) {
        s.rcv_nxt = p.seq + 1;
        process_ack(s, p.ack);
        s.state = TcpState::kEstablished;
        s.rto_base = tuning_.rto_established;
        s.rto = tuning_.rto_established;
        s.retrans_timer.cancel();
        send_control(s, TcpFlag::kAck);
        s.connect_event->set();
      } else if (s.state == TcpState::kEstablished) {
        // Duplicate SYNACK (our ACK got dropped/buffered): re-ACK.
        send_control(s, TcpFlag::kAck);
      }
      return;

    case TcpFlag::kAck:
      if (s.state == TcpState::kSynRcvd) promote_syn_rcvd(s);
      process_ack(s, p.ack);
      return;

    case TcpFlag::kData: {
      // A data packet carries an implicit ACK: it also completes a pending
      // handshake whose final ACK was lost (e.g. dropped by firewall-based
      // input blocking).
      if (s.state == TcpState::kSynRcvd && p.ack > s.snd_una) {
        promote_syn_rcvd(s);
      }
      process_ack(s, p.ack);
      if (s.state != TcpState::kEstablished) return;
      if (p.seq == s.rcv_nxt) {
        s.rcv_nxt += p.len;
        Segment seg{p.seq, p.len, p.tag, p.payload};
        // Receive-time input tap (replay commit mode): the event log must
        // see the input before the ack below enters the egress plug, so
        // any released output provably has its inputs shipped.
        auto tap = input_taps_.find(s.local.ip);
        if (tap != input_taps_.end()) {
          tap->second(s.id, s.local, s.remote, seg);
        }
        s.read_queue.push_back(std::move(seg));
        signal_rx(s);
        send_control(s, TcpFlag::kAck);
      } else if (p.seq < s.rcv_nxt) {
        // Duplicate (e.g. post-failover retransmission of data we already
        // have): re-ACK so the sender advances.
        send_control(s, TcpFlag::kAck);
      }
      // Out-of-order future segment: dropped; go-back-N retransmission
      // from the sender will fill the gap.
      return;
    }

    case TcpFlag::kFin:
      if (p.seq == s.rcv_nxt) {
        s.peer_fin = true;
        s.rcv_nxt += 1;
        send_control(s, TcpFlag::kAck);
        signal_rx(s);
      } else if (p.seq < s.rcv_nxt) {
        send_control(s, TcpFlag::kAck);
      }
      return;
  }
}

void TcpStack::signal_rx(Socket& s) { s.rx_event->set(); }

void TcpStack::promote_syn_rcvd(Socket& s) {
  s.state = TcpState::kEstablished;
  auto l = listeners_.find(s.local);
  if (l == listeners_.end()) {
    l = listeners_.find(Endpoint{0, s.local.port});
  }
  if (l != listeners_.end()) l->second.pending->send(s.id);
}

void TcpStack::arm_retransmit(Socket& s) {
  if (s.retrans_timer.active()) return;
  SocketId id = s.id;
  // The socket owns its retrans_timer handle (cancelled with it), the
  // callback re-resolves the socket by id, and the domain gate drops the
  // wakeup after a host kill.
  // NLC_LINT_OK(detached-this): timer handle owned and cancelled, id-keyed
  s.retrans_timer = sim_->call_after(s.rto, domain_, [this, id] {
    auto it = sockets_.find(id);
    if (it == sockets_.end()) return;
    retransmit_now(*it->second);
  });
}

void TcpStack::retransmit_now(Socket& s) {
  if (s.state == TcpState::kSynSent) {
    if (s.syn_attempts > tuning_.max_syn_retries) {
      s.state = TcpState::kClosed;
      s.connect_event->set();
      return;
    }
    ++s.syn_attempts;
    ++retransmissions_;
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, trace::Stage::kRetransmit, sim_->now(),
                      s.id);
    }
    Packet syn;
    syn.src = s.local;
    syn.dst = s.remote;
    syn.flag = TcpFlag::kSyn;
    syn.seq = s.snd_una;
    send_packet(syn);
    s.rto = std::min(s.rto * 2, tuning_.rto_max);
    arm_retransmit(s);
    return;
  }
  if (s.state != TcpState::kEstablished || s.write_queue.empty()) return;
  if (trace_ != nullptr) {
    // One instant per RTO firing (arg = socket), not per segment.
    trace_->instant(trace_track_, trace::Stage::kRetransmit, sim_->now(),
                    s.id);
  }
  // Go-back-N: retransmit every unacknowledged segment in order.
  for (const Segment& seg : s.write_queue) {
    ++retransmissions_;
    Packet p;
    p.src = s.local;
    p.dst = s.remote;
    p.flag = TcpFlag::kData;
    p.seq = seg.seq;
    p.ack = s.rcv_nxt;
    p.len = seg.len;
    p.tag = seg.tag;
    p.payload = seg.payload;
    send_packet(p);
  }
  s.rto = std::min(s.rto * 2, tuning_.rto_max);
  arm_retransmit(s);
}

}  // namespace nlc::net
