// Addressing and packet types for the simulated network.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nlc::net {

/// IPv4-style address, opaque integer.
using IpAddr = std::uint32_t;
using Port = std::uint16_t;

struct Endpoint {
  IpAddr ip = 0;
  Port port = 0;

  bool operator==(const Endpoint&) const = default;
  auto operator<=>(const Endpoint&) const = default;
};

enum class TcpFlag : std::uint8_t {
  kSyn,
  kSynAck,
  kAck,     // pure ACK
  kData,    // data segment (carries an implicit ACK of rcv_nxt)
  kRst,
  kFin,
};

inline const char* flag_name(TcpFlag f) {
  switch (f) {
    case TcpFlag::kSyn: return "SYN";
    case TcpFlag::kSynAck: return "SYNACK";
    case TcpFlag::kAck: return "ACK";
    case TcpFlag::kData: return "DATA";
    case TcpFlag::kRst: return "RST";
    case TcpFlag::kFin: return "FIN";
  }
  return "?";
}

/// Ethernet+IP+TCP framing overhead charged per packet on the wire.
inline constexpr std::uint32_t kFrameOverhead = 66;

struct Packet {
  Endpoint src;
  Endpoint dst;
  TcpFlag flag = TcpFlag::kData;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t len = 0;  // payload bytes (0 for control packets)
  /// Application-level marker used by validation clients to match
  /// requests and responses; checkpointed with the segment.
  std::uint64_t tag = 0;
  /// Optional real payload bytes (validation traffic); shared so that
  /// retransmissions and checkpoints alias rather than copy.
  std::shared_ptr<const std::vector<std::byte>> payload;

  std::uint32_t wire_bytes() const { return len + kFrameOverhead; }
};

}  // namespace nlc::net
