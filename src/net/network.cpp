#include "net/network.hpp"

#include "util/assert.hpp"

namespace nlc::net {

HostId Network::add_host(std::string name, sim::DomainPtr domain) {
  HostId id = next_host_++;
  hosts_[id] = HostRec{std::move(name), std::move(domain)};
  return id;
}

void Network::add_link(HostId a, HostId b, double bits_per_second,
                       Time latency) {
  NLC_CHECK(hosts_.contains(a) && hosts_.contains(b));
  links_[{a, b}] = std::make_unique<Link>(*sim_, bits_per_second, latency);
  links_[{b, a}] = std::make_unique<Link>(*sim_, bits_per_second, latency);
}

void Network::bind_ip(IpAddr ip, HostId host, PacketSink* sink) {
  NLC_CHECK(hosts_.contains(host));
  NLC_CHECK(sink != nullptr);
  bindings_[ip] = Binding{host, sink};
}

void Network::unbind_ip(IpAddr ip) { bindings_.erase(ip); }

HostId Network::ip_host(IpAddr ip) const {
  auto it = bindings_.find(ip);
  return it == bindings_.end() ? -1 : it->second.host;
}

Link* Network::link_between(HostId a, HostId b) {
  auto it = links_.find({a, b});
  return it == links_.end() ? nullptr : it->second.get();
}

void Network::transmit(IpAddr src_ip, const Packet& p) {
  auto src = bindings_.find(src_ip);
  NLC_CHECK_MSG(src != bindings_.end(), "transmit from unbound IP");
  auto dst = bindings_.find(p.dst.ip);
  if (dst == bindings_.end()) {
    ++packets_blackholed_;
    return;
  }
  if (src->second.host == dst->second.host) {
    // Loopback / same-host veth: deliver at the next event boundary with
    // no serialization cost.
    PacketSink* sink = dst->second.sink;
    Packet copy = p;
    sim_->call_after(0, hosts_.at(dst->second.host).domain,
                     [sink, copy] { sink->deliver(copy); });
    ++packets_sent_;
    return;
  }
  Link* link = link_between(src->second.host, dst->second.host);
  NLC_CHECK_MSG(link != nullptr, "no link between hosts");
  PacketSink* sink = dst->second.sink;
  Packet copy = p;
  link->transmit(p.wire_bytes(), hosts_.at(dst->second.host).domain,
                 [sink, copy] { sink->deliver(copy); });
  ++packets_sent_;
}

}  // namespace nlc::net
