// The physical network fabric: hosts, links, and IP->host binding (the
// switch's forwarding table, updated by gratuitous ARP on failover).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/link.hpp"
#include "net/types.hpp"
#include "sim/simulation.hpp"

namespace nlc::net {

using HostId = std::int32_t;

/// Receives packets addressed to IPs bound to its host (a TcpStack).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(const Packet& p) = 0;
};

class Network {
 public:
  explicit Network(sim::Simulation& s) : sim_(&s) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  HostId add_host(std::string name, sim::DomainPtr domain);

  /// Full-duplex link between two hosts (one Link per direction so
  /// opposing traffic does not contend, as on real Ethernet).
  void add_link(HostId a, HostId b, double bits_per_second, Time latency);

  /// Binds an IP to a host; packets to `ip` are handed to `sink`.
  /// Rebinding an already-bound IP models gratuitous ARP moving a
  /// container's address to the backup host.
  void bind_ip(IpAddr ip, HostId host, PacketSink* sink);
  void unbind_ip(IpAddr ip);
  /// Host currently answering for `ip`, or -1.
  HostId ip_host(IpAddr ip) const;

  /// Sends `p` from the host owning `src_ip`. Unbound destinations are
  /// silently blackholed (like a switch with no forwarding entry).
  void transmit(IpAddr src_ip, const Packet& p);

  /// Statistics for tests.
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_blackholed() const { return packets_blackholed_; }

  Link* link_between(HostId a, HostId b);

 private:
  struct HostRec {
    std::string name;
    sim::DomainPtr domain;
  };
  struct Binding {
    HostId host;
    PacketSink* sink;
  };

  sim::Simulation* sim_;
  std::map<HostId, HostRec> hosts_;
  std::map<std::pair<HostId, HostId>, std::unique_ptr<Link>> links_;
  std::map<IpAddr, Binding> bindings_;
  HostId next_host_ = 1;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_blackholed_ = 0;
};

}  // namespace nlc::net
