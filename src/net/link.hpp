// Point-to-point link with bandwidth serialization and propagation latency.
//
// Models the paper's testbed links: a dedicated 10 Gb Ethernet between the
// primary and backup hosts and 1 Gb Ethernet to the client host (§VI).
// Transmission is FIFO: a packet begins serializing when the transmitter
// frees up, and is delivered one propagation latency after serialization
// completes. The link itself never drops or reorders; losses come from
// host failure (dead-domain delivery) and explicit filters.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace nlc::net {

class Link {
 public:
  /// `bits_per_second` = raw bandwidth; `latency` = propagation delay.
  Link(sim::Simulation& s, double bits_per_second, Time latency)
      : sim_(&s), bps_(bits_per_second), latency_(latency) {}

  /// Schedules delivery of `bytes` under `dst_domain`. `deliver` runs on
  /// the receiving host (discarded if that host is dead at arrival).
  /// Returns the delivery time. A downed link (unplugged cable, §VII-A)
  /// silently swallows everything handed to it.
  Time transmit(std::uint64_t bytes, sim::DomainPtr dst_domain,
                std::function<void()> deliver) {
    if (down_) return kNever;
    Time tx = serialization_delay(bytes);
    Time start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
    busy_until_ = start + tx;
    Time arrival = busy_until_ + latency_;
    sim_->call_at(arrival, std::move(dst_domain), std::move(deliver));
    return arrival;
  }

  Time serialization_delay(std::uint64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) * 8.0 / bps_ * 1e9);
  }

  Time latency() const { return latency_; }
  double bits_per_second() const { return bps_; }
  Time busy_until() const { return busy_until_; }

  /// Cable pulled / replugged. Packets already in flight still arrive.
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

 private:
  sim::Simulation* sim_;
  double bps_;
  Time latency_;
  Time busy_until_ = 0;
  bool down_ = false;
};

/// Convenience constructors matching the paper's testbed.
inline constexpr double kGigabit = 1e9;
inline constexpr double kTenGigabit = 10e9;

}  // namespace nlc::net
