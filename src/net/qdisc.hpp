// sch_plug-style queueing disciplines (paper §II-A, §IV, §V-C).
//
// PlugQdisc — egress output commit. While engaged, every outgoing packet
// of the protected container is buffered. At each epoch boundary the agent
// inserts a marker; when the backup acknowledges the epoch's state, the
// agent releases every packet buffered before that marker. Packets after
// the marker stay held: they belong to the next, uncommitted epoch.
//
// IngressFilter — input blocking during the pause. Three modes:
//   kPass   — normal operation;
//   kBuffer — NiLiCon's optimization (§V-C): hold packets, release on
//             unblock (43 us extra delay instead of drops);
//   kDrop   — stock CRIU behaviour via firewall rules: silently drop,
//             forcing TCP retransmission (up to 3 s for connection setup).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/types.hpp"
#include "util/assert.hpp"

namespace nlc::net {

/// Observer seam for the invariant auditor (src/check): mirrors the plug's
/// externally visible transitions — what was buffered, where the epoch
/// markers sit, and what each release transmitted. The plug itself stays
/// policy-free; with no observer installed the hot path pays one branch.
class PlugObserver {
 public:
  virtual ~PlugObserver() = default;
  /// A packet entered the buffer (engaged mode only).
  virtual void on_plug_enqueue(const Packet& p) = 0;
  /// An epoch-boundary marker was appended.
  virtual void on_plug_marker(std::uint64_t marker) = 0;
  /// release_to_marker(marker) completed, transmitting `packets` packets.
  virtual void on_plug_release(std::uint64_t marker, std::uint64_t packets) = 0;
  /// discard_all() dropped `packets` buffered packets (failover path).
  virtual void on_plug_discard(std::uint64_t packets) = 0;
};

class PlugQdisc {
 public:
  using TransmitFn = std::function<void(const Packet&)>;

  explicit PlugQdisc(TransmitFn transmit)
      : transmit_(std::move(transmit)) {}

  /// When disengaged (stock execution, no replication) packets pass
  /// straight through.
  void engage() { engaged_ = true; }
  bool engaged() const { return engaged_; }

  /// Installs (or clears, with nullptr) the audit observer.
  void set_observer(PlugObserver* o) { observer_ = o; }

  /// Installs (or clears) a callback fired after each packet is buffered
  /// while engaged. Replay commit mode arms its log flusher on this: a
  /// response sitting in the plug is exactly what an event-log ack can
  /// release early (DESIGN.md §14).
  void set_enqueue_hook(std::function<void()> hook) {
    enqueue_hook_ = std::move(hook);
  }

  void enqueue(const Packet& p) {
    if (!engaged_) {
      transmit_(p);
      return;
    }
    buffer_.push_back(Entry{p, false});
    ++buffered_total_;
    pending_bytes_ += p.wire_bytes();
    if (observer_ != nullptr) observer_->on_plug_enqueue(p);
    if (enqueue_hook_) enqueue_hook_();
  }

  /// Marks the current epoch boundary; returns a marker id.
  std::uint64_t insert_marker() {
    buffer_.push_back(Entry{{}, true, next_marker_});
    std::uint64_t marker = next_marker_++;
    if (observer_ != nullptr) observer_->on_plug_marker(marker);
    return marker;
  }

  /// Releases (transmits, in order) everything buffered before `marker`.
  /// Markers must be released in order.
  void release_to_marker(std::uint64_t marker) {
    std::uint64_t released = 0;
    while (!buffer_.empty()) {
      Entry e = std::move(buffer_.front());
      buffer_.pop_front();
      if (e.is_marker) {
        NLC_CHECK_MSG(e.marker_id <= marker, "marker released out of order");
        if (e.marker_id == marker) {
          if (observer_ != nullptr) observer_->on_plug_release(marker, released);
          return;
        }
        continue;
      }
      pending_bytes_ -= e.packet.wire_bytes();
      transmit_(e.packet);
      ++released_total_;
      ++released;
    }
    NLC_CHECK_MSG(false, "marker not found in plug buffer");
  }

  /// Failover: uncommitted output must never reach the client.
  void discard_all() {
    std::uint64_t dropped = 0;
    for (const Entry& e : buffer_) dropped += e.is_marker ? 0 : 1;
    buffer_.clear();
    pending_bytes_ = 0;
    if (observer_ != nullptr) observer_->on_plug_discard(dropped);
  }

  std::size_t pending_packets() const {
    std::size_t n = 0;
    for (const auto& e : buffer_) n += e.is_marker ? 0 : 1;
    return n;
  }
  /// Wire bytes currently held (maintained incrementally — the adaptive
  /// segment-cut policy reads this per flush tick, so it must be O(1)).
  std::uint64_t pending_bytes() const { return pending_bytes_; }
  std::uint64_t buffered_total() const { return buffered_total_; }
  std::uint64_t released_total() const { return released_total_; }

 private:
  struct Entry {
    Packet packet;
    bool is_marker = false;
    std::uint64_t marker_id = 0;
  };

  TransmitFn transmit_;
  bool engaged_ = false;
  PlugObserver* observer_ = nullptr;
  std::function<void()> enqueue_hook_;
  std::deque<Entry> buffer_;
  std::uint64_t next_marker_ = 1;
  std::uint64_t buffered_total_ = 0;
  std::uint64_t released_total_ = 0;
  std::uint64_t pending_bytes_ = 0;
};

class IngressFilter {
 public:
  enum class Mode : std::uint8_t { kPass, kBuffer, kDrop };

  using DeliverFn = std::function<void(const Packet&)>;

  explicit IngressFilter(DeliverFn deliver) : deliver_(std::move(deliver)) {}

  Mode mode() const { return mode_; }

  void set_mode(Mode m) {
    Mode prev = mode_;
    mode_ = m;
    if (prev == Mode::kBuffer && m == Mode::kPass) flush();
  }

  void input(const Packet& p) {
    switch (mode_) {
      case Mode::kPass:
        deliver_(p);
        return;
      case Mode::kBuffer:
        held_.push_back(p);
        return;
      case Mode::kDrop:
        ++dropped_total_;
        return;
    }
  }

  std::size_t held_packets() const { return held_.size(); }
  std::uint64_t dropped_total() const { return dropped_total_; }

 private:
  void flush() {
    // Deliver in arrival order; delivery may re-enter input() only in
    // kPass mode, which appends nothing to held_.
    std::deque<Packet> batch;
    batch.swap(held_);
    for (const auto& p : batch) deliver_(p);
  }

  DeliverFn deliver_;
  Mode mode_ = Mode::kPass;
  std::deque<Packet> held_;
  std::uint64_t dropped_total_ = 0;
};

}  // namespace nlc::net
