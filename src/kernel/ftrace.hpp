// Simulated ftrace: hook functions attached to named kernel entry points.
//
// NiLiCon's infrequently-modified-state cache (paper §V-B) registers hooks
// on the kernel functions that can mutate namespaces, cgroups, mount
// points, device files, and memory-mapped files. Every simulated-kernel
// mutation path calls FtraceRegistry::emit with the matching function name,
// exactly like the real module's trampoline invoking the hook after the
// target function.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/ids.hpp"

namespace nlc::kern {

struct TraceEvent {
  ContainerId container = kNoContainer;
  Pid pid = 0;
  std::string detail;
};

class FtraceRegistry {
 public:
  using Hook = std::function<void(const TraceEvent&)>;

  /// Attaches `hook` to kernel function `fn` ("do_mount", "setns", ...).
  void attach(std::string fn, Hook hook) {
    hooks_[std::move(fn)].push_back(std::move(hook));
  }

  /// Detaches all hooks from `fn` (module unload).
  void detach_all(const std::string& fn) { hooks_.erase(fn); }

  /// Invoked by kernel mutation paths after the target function ran.
  void emit(std::string_view fn, const TraceEvent& ev) const {
    auto it = hooks_.find(std::string(fn));
    if (it == hooks_.end()) return;
    for (const auto& h : it->second) h(ev);
  }

  bool has_hooks(const std::string& fn) const { return hooks_.contains(fn); }

 private:
  std::unordered_map<std::string, std::vector<Hook>> hooks_;
};

}  // namespace nlc::kern
