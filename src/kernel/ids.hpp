// Identifier types shared across the simulated kernel.
#pragma once

#include <cstdint>

namespace nlc::kern {

using Pid = std::int32_t;
using Tid = std::int32_t;
using ContainerId = std::int32_t;
using InodeNum = std::uint64_t;
using Fd = std::int32_t;

/// Sockets live in the net module; the kernel references them by id only.
using SocketId = std::uint64_t;

/// Absolute page number within a host's simulated physical memory.
using PageNum = std::uint64_t;

inline constexpr ContainerId kNoContainer = -1;

}  // namespace nlc::kern
