#include "kernel/cpu.hpp"

#include "util/assert.hpp"

namespace nlc::kern {

sim::task<> CpuSet::consume(Time t) {
  NLC_CHECK(t >= 0);
  if (t == 0) co_return;
  slices_.emplace_back();
  auto it = std::prev(slices_.end());
  it->remaining = t;
  it->done = std::make_unique<sim::Event>(*sim_);
  if (!frozen_ && running_ < core_limit_) {
    start_slice(it);
  } else {
    it->queued = true;
  }
  co_await it->done->wait();
  slices_.erase(it);
}

void CpuSet::set_core_limit(int cores) {
  NLC_CHECK(cores > 0);
  core_limit_ = cores;
  if (!frozen_) start_queued();
}

void CpuSet::start_slice(SliceIter it) {
  it->running = true;
  it->queued = false;
  it->started = sim_->now();
  ++running_;
  Time remaining = it->remaining;
  // The slice owns its timer handle (cancelled on freeze/teardown) and the
  // domain gate discards post-kill wakeups.
  // NLC_LINT_OK(detached-this): timer handle owned and cancelled
  it->timer = sim_->call_after(remaining, domain_, [this, it] {
    usage_ += it->remaining;
    it->remaining = 0;
    it->running = false;
    --running_;
    it->done->set();
    if (!frozen_) start_queued();
  });
}

void CpuSet::start_queued() {
  for (auto it = slices_.begin();
       it != slices_.end() && running_ < core_limit_; ++it) {
    if (it->queued) start_slice(it);
  }
}

void CpuSet::freeze() {
  if (frozen_) return;
  frozen_ = true;
  for (auto it = slices_.begin(); it != slices_.end(); ++it) {
    if (!it->running) continue;
    it->timer.cancel();
    Time elapsed = sim_->now() - it->started;
    NLC_CHECK(elapsed >= 0 && elapsed <= it->remaining);
    usage_ += elapsed;
    it->remaining -= elapsed;
    it->running = false;
    --running_;
    // A burst that finished exactly at the freeze instant: its completion
    // timer was cancelled above, so complete it here.
    if (it->remaining == 0) {
      it->done->set();
    } else {
      it->queued = true;  // resumes (with core priority) on thaw
    }
  }
}

void CpuSet::unfreeze() {
  if (!frozen_) return;
  frozen_ = false;
  start_queued();
}

}  // namespace nlc::kern
