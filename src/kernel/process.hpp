// Simulated processes, threads and file-descriptor tables.
//
// These carry exactly the state CRIU must harvest: per-thread register
// blobs, signal masks and scheduling policies (retrieved via ptrace /
// parasite), per-process fd tables (files, sockets, pipes, devices), and
// the address space. Collection *costs* are charged by the checkpoint
// engine from the cost model; this module only stores the state.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/address_space.hpp"
#include "kernel/ids.hpp"

namespace nlc::kern {

/// Opaque register file; contents are stamped so checkpoint/restore
/// round-trips are verifiable.
struct Registers {
  std::array<std::uint64_t, 16> gpr{};
  std::uint64_t rip = 0;
  std::uint64_t rsp = 0;

  bool operator==(const Registers&) const = default;
};

enum class SchedPolicy : std::uint8_t { kOther, kFifo, kRoundRobin };

struct Thread {
  Tid tid = 0;
  Registers regs{};
  std::uint64_t sigmask = 0;
  SchedPolicy policy = SchedPolicy::kOther;
  int priority = 0;
  bool frozen = false;
  /// True while the thread is inside a (simulated) system call; the freezer
  /// must force such threads out before the state is stable (§II-B).
  bool in_syscall = false;
};

enum class FdKind : std::uint8_t { kFile, kSocket, kPipe, kDevice, kEventFd };

struct FdEntry {
  FdKind kind = FdKind::kFile;
  InodeNum inode = 0;     // kFile
  std::uint64_t offset = 0;
  SocketId socket = 0;    // kSocket
  std::string device{};   // kDevice
  std::uint32_t flags = 0;

  bool operator==(const FdEntry&) const = default;
};

class Process {
 public:
  Process(Pid pid, ContainerId cid) : pid_(pid), container_(cid) {}

  Pid pid() const { return pid_; }
  ContainerId container() const { return container_; }

  Thread& add_thread(Tid tid) {
    threads_.push_back(Thread{.tid = tid});
    return threads_.back();
  }
  std::vector<Thread>& threads() { return threads_; }
  const std::vector<Thread>& threads() const { return threads_; }

  AddressSpace& mm() { return mm_; }
  const AddressSpace& mm() const { return mm_; }

  Fd install_fd(FdEntry e) {
    Fd fd = next_fd_++;
    fds_[fd] = std::move(e);
    return fd;
  }
  void install_fd_at(Fd fd, FdEntry e) {
    fds_[fd] = std::move(e);
    if (fd >= next_fd_) next_fd_ = fd + 1;
  }
  void close_fd(Fd fd) { fds_.erase(fd); }
  const FdEntry* fd(Fd fd) const {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
  }
  FdEntry* fd(Fd fd) {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
  }
  const std::map<Fd, FdEntry>& fds() const { return fds_; }

  std::uint64_t sigmask = 0;
  int pending_timers = 0;
  std::string comm;  // executable name, for diagnostics

 private:
  Pid pid_;
  ContainerId container_;
  std::vector<Thread> threads_;
  AddressSpace mm_;
  std::map<Fd, FdEntry> fds_;
  Fd next_fd_ = 3;  // 0..2 reserved, as usual
};

}  // namespace nlc::kern
