#include "kernel/fs.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::kern {

InodeNum Filesystem::create(const std::string& path, std::uint32_t mode) {
  auto existing = by_path_.find(path);
  if (existing != by_path_.end()) {
    // Truncate semantics.
    InodeNum ino = existing->second;
    inodes_[ino].size = 0;
    cache_[ino].pages.clear();
    inode_dnc_[ino] = true;
    return ino;
  }
  InodeNum ino = next_ino_++;
  InodeAttr a;
  a.ino = ino;
  a.path = path;
  a.mode = mode;
  inodes_[ino] = std::move(a);
  by_path_[path] = ino;
  inode_dnc_[ino] = true;
  return ino;
}

InodeNum Filesystem::lookup(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? 0 : it->second;
}

const InodeAttr* Filesystem::attr(InodeNum ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

void Filesystem::set_attr(InodeNum ino, std::uint32_t uid, std::uint32_t gid,
                          std::uint32_t mode) {
  auto it = inodes_.find(ino);
  NLC_CHECK_MSG(it != inodes_.end(), "set_attr on unknown inode");
  it->second.uid = uid;
  it->second.gid = gid;
  it->second.mode = mode;
  inode_dnc_[ino] = true;
}

CachedPage& Filesystem::cache_page(InodeNum ino, std::uint64_t page) {
  auto& fc = cache_[ino];
  auto it = fc.pages.find(page);
  if (it == fc.pages.end()) {
    CachedPage cp;
    // Read-for-write fill from the block store (or zeros for a hole).
    if (auto blk = store_->read_block(ino, page)) {
      cp.data = std::move(*blk);
    } else {
      cp.data.assign(kPageSize, std::byte{0});
    }
    it = fc.pages.emplace(page, std::move(cp)).first;
  }
  return it->second;
}

void Filesystem::write(InodeNum ino, std::uint64_t offset,
                       std::span<const std::byte> data, std::uint64_t now_ns) {
  auto it = inodes_.find(ino);
  NLC_CHECK_MSG(it != inodes_.end(), "write to unknown inode");
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    std::uint64_t page = pos / kPageSize;
    std::uint32_t in_page = static_cast<std::uint32_t>(pos % kPageSize);
    std::uint64_t chunk =
        std::min<std::uint64_t>(kPageSize - in_page, data.size() - consumed);
    CachedPage& cp = cache_page(ino, page);
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(consumed),
              data.begin() + static_cast<std::ptrdiff_t>(consumed + chunk),
              cp.data.begin() + in_page);
    cp.dirty = true;
    cp.dnc = true;
    pos += chunk;
    consumed += chunk;
  }
  it->second.size = std::max(it->second.size, offset + data.size());
  it->second.mtime_ns = now_ns;
  inode_dnc_[ino] = true;
}

std::vector<std::byte> Filesystem::read(InodeNum ino, std::uint64_t offset,
                                        std::uint64_t len) const {
  auto it = inodes_.find(ino);
  NLC_CHECK_MSG(it != inodes_.end(), "read of unknown inode");
  std::vector<std::byte> out(len, std::byte{0});
  auto fcit = cache_.find(ino);
  std::uint64_t pos = offset;
  std::uint64_t produced = 0;
  while (produced < len) {
    std::uint64_t page = pos / kPageSize;
    std::uint32_t in_page = static_cast<std::uint32_t>(pos % kPageSize);
    std::uint64_t chunk = std::min<std::uint64_t>(kPageSize - in_page,
                                                  len - produced);
    const std::vector<std::byte>* src = nullptr;
    std::optional<std::vector<std::byte>> blk;
    if (fcit != cache_.end()) {
      auto pit = fcit->second.pages.find(page);
      if (pit != fcit->second.pages.end()) src = &pit->second.data;
    }
    if (src == nullptr) {
      blk = store_->read_block(ino, page);
      if (blk) src = &*blk;
    }
    if (src != nullptr) {
      std::copy(src->begin() + in_page,
                src->begin() + in_page + static_cast<std::ptrdiff_t>(chunk),
                out.begin() + static_cast<std::ptrdiff_t>(produced));
    }
    pos += chunk;
    produced += chunk;
  }
  return out;
}

std::uint64_t Filesystem::writeback(std::uint64_t max_pages) {
  std::uint64_t flushed = 0;
  for (auto& [ino, fc] : cache_) {
    for (auto& [page, cp] : fc.pages) {
      if (flushed >= max_pages) return flushed;
      if (!cp.dirty) continue;
      store_->write_block(ino, page, cp.data);
      cp.dirty = false;
      ++flushed;
    }
  }
  return flushed;
}

void Filesystem::sync_all() {
  writeback(UINT64_MAX);
}

DncHarvest Filesystem::harvest_dnc() {
  DncHarvest h;
  for (auto& [ino, dnc] : inode_dnc_) {
    if (!dnc) continue;
    h.inodes.push_back(DncInodeEntry{inodes_.at(ino)});
    dnc = false;
  }
  for (auto& [ino, fc] : cache_) {
    for (auto& [page, cp] : fc.pages) {
      if (!cp.dnc) continue;
      h.pages.push_back(DncPageEntry{ino, page, cp.data});
      cp.dnc = false;
    }
  }
  return h;
}

void Filesystem::apply_dnc(const DncHarvest& h, std::uint64_t now_ns) {
  for (const auto& ie : h.inodes) {
    InodeNum ino = ie.attr.ino;
    inodes_[ino] = ie.attr;
    by_path_[ie.attr.path] = ino;
    next_ino_ = std::max(next_ino_, ino + 1);
    inode_dnc_[ino] = false;
  }
  for (const auto& pe : h.pages) {
    // pwrite equivalent: land in the page cache, dirty for writeback but
    // already checkpointed (DNC clear).
    NLC_CHECK(pe.data.size() == kPageSize);
    auto& fc = cache_[pe.ino];
    CachedPage cp;
    cp.data = pe.data;
    cp.dirty = true;
    cp.dnc = false;
    fc.pages[pe.page_index] = std::move(cp);
    auto it = inodes_.find(pe.ino);
    NLC_CHECK_MSG(it != inodes_.end(), "DNC page for unknown inode");
    it->second.mtime_ns = now_ns;
  }
}

std::uint64_t Filesystem::dnc_page_count() const {
  std::uint64_t n = 0;
  for (const auto& [ino, fc] : cache_) {
    for (const auto& [page, cp] : fc.pages) n += cp.dnc ? 1 : 0;
  }
  return n;
}

std::uint64_t Filesystem::dirty_page_count() const {
  std::uint64_t n = 0;
  for (const auto& [ino, fc] : cache_) {
    for (const auto& [page, cp] : fc.pages) n += cp.dirty ? 1 : 0;
  }
  return n;
}

std::uint64_t Filesystem::cached_page_count() const {
  std::uint64_t n = 0;
  for (const auto& [ino, fc] : cache_) n += fc.pages.size();
  return n;
}

}  // namespace nlc::kern
