// The per-host simulated kernel: the facade tying together processes,
// containers, the filesystem, the freezer, and ftrace.
//
// Mutation entry points deliberately mirror the Linux code paths NiLiCon
// instruments (do_mount, setns, cgroup_attach, mknod, mmap_region), so the
// state-cache module can attach ftrace hooks by the same names.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/container.hpp"
#include "kernel/fs.hpp"
#include "kernel/ftrace.hpp"
#include "kernel/ids.hpp"
#include "kernel/process.hpp"
#include "sim/simulation.hpp"

namespace nlc::kern {

class Kernel {
 public:
  Kernel(sim::Simulation& s, sim::DomainPtr domain, std::string hostname,
         BlockStore& store);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulation& simulation() { return *sim_; }
  const sim::DomainPtr& domain() const { return domain_; }
  const std::string& hostname() const { return hostname_; }

  Filesystem& fs() { return fs_; }
  const Filesystem& fs() const { return fs_; }

  FtraceRegistry& ftrace() { return ftrace_; }

  // --- Containers -------------------------------------------------------

  /// Creates a container with the full default namespace set, a cgroup, and
  /// the standard runC mounts/devices. Fires the corresponding hooks.
  Container& create_container(const std::string& name);

  /// Restore path: installs a container shell with explicit ids.
  Container& install_container(ContainerId id, const std::string& name);

  void destroy_container(ContainerId id);
  Container* container(ContainerId id);
  const Container* container(ContainerId id) const;
  const std::map<ContainerId, std::unique_ptr<Container>>& containers() const {
    return containers_;
  }

  // --- Processes --------------------------------------------------------

  Process& create_process(ContainerId cid, std::string comm);
  /// Restore path: installs a process with an explicit pid.
  Process& install_process(ContainerId cid, Pid pid, std::string comm);
  void destroy_process(Pid pid);
  Process* process(Pid pid);
  const Process* process(Pid pid) const;
  std::vector<Process*> container_processes(ContainerId cid);
  std::vector<const Process*> container_processes(ContainerId cid) const;

  Thread& create_thread(Pid pid);

  // --- Freezer (§II-B) ---------------------------------------------------

  /// Sends virtual signals to every thread of the container. Threads in
  /// user code freeze immediately; the CpuSet suspends all bursts.
  void freeze_container(ContainerId cid);
  void thaw_container(ContainerId cid);

  // --- Instrumented mutation paths (§V-B hook targets) -------------------

  void do_mount(ContainerId cid, Mount m);
  void do_umount(ContainerId cid, const std::string& target);
  void setns_config(ContainerId cid, NamespaceType type,
                    std::uint64_t config_bytes);
  void cgroup_modify(ContainerId cid, std::uint64_t cpu_quota_us,
                     std::uint64_t mem_limit_bytes);
  void mknod(ContainerId cid, DeviceFile dev);
  /// File-backed mmap: the mapped-files list is infrequently-modified
  /// state (§V-B); every mapping change invalidates the cache.
  Vma mmap_file(Pid pid, std::uint64_t npages, std::string file);

  // --- Aggregate counters for the cost model ----------------------------

  std::uint64_t total_threads(ContainerId cid) const;
  std::uint64_t total_fds(ContainerId cid) const;
  std::uint64_t total_sockets(ContainerId cid) const;
  std::uint64_t total_vmas(ContainerId cid) const;
  std::uint64_t total_mapped_pages(ContainerId cid) const;
  std::uint64_t total_file_mappings(ContainerId cid) const;

 private:
  Container& container_ref(ContainerId cid);

  sim::Simulation* sim_;
  sim::DomainPtr domain_;
  std::string hostname_;
  Filesystem fs_;
  FtraceRegistry ftrace_;
  std::map<ContainerId, std::unique_ptr<Container>> containers_;
  std::map<Pid, std::unique_ptr<Process>> processes_;
  ContainerId next_cid_ = 1;
  Pid next_pid_ = 100;
  Tid next_tid_ = 100;
  std::uint64_t next_ns_id_ = 0x4000'0000;
};

}  // namespace nlc::kern
