#include "kernel/kernel.hpp"

#include <utility>

#include "util/assert.hpp"

namespace nlc::kern {

Kernel::Kernel(sim::Simulation& s, sim::DomainPtr domain,
               std::string hostname, BlockStore& store)
    : sim_(&s), domain_(std::move(domain)), hostname_(std::move(hostname)),
      fs_(store) {}

Container& Kernel::container_ref(ContainerId cid) {
  auto it = containers_.find(cid);
  NLC_CHECK_MSG(it != containers_.end(), "unknown container");
  return *it->second;
}

Container& Kernel::create_container(const std::string& name) {
  ContainerId cid = next_cid_++;
  auto c = std::make_unique<Container>(cid, name, *sim_, domain_);

  // Full namespace set, as runC creates.
  for (int t = 0; t < kNamespaceTypeCount; ++t) {
    Namespace ns;
    ns.type = static_cast<NamespaceType>(t);
    ns.ns_id = next_ns_id_++;
    // The net namespace carries the most kernel-side configuration
    // (interfaces, routes, qdiscs); see §II's 100ms namespace collection.
    ns.config_bytes = ns.type == NamespaceType::kNet ? 4096 : 256;
    if (ns.type == NamespaceType::kNet) c->set_net_ns_id(ns.ns_id);
    c->namespaces().push_back(ns);
  }
  c->cgroup().path = "/sys/fs/cgroup/nilicon/" + name;

  // Standard runC rootfs mounts and device files.
  c->mounts().push_back({"rootfs", "/", "overlay", 0});
  c->mounts().push_back({"proc", "/proc", "proc", 0});
  c->mounts().push_back({"tmpfs", "/dev", "tmpfs", 0});
  c->mounts().push_back({"sysfs", "/sys", "sysfs", 0});
  c->mounts().push_back({"cgroup", "/sys/fs/cgroup", "cgroup2", 0});
  c->devices().push_back({"/dev/null", 1, 3});
  c->devices().push_back({"/dev/zero", 1, 5});
  c->devices().push_back({"/dev/random", 1, 8});
  c->devices().push_back({"/dev/urandom", 1, 9});
  c->devices().push_back({"/dev/tty", 5, 0});

  Container& ref = *c;
  containers_[cid] = std::move(c);
  ftrace_.emit("create_new_namespaces", {cid, 0, "container create"});
  return ref;
}

Container& Kernel::install_container(ContainerId id, const std::string& name) {
  NLC_CHECK_MSG(!containers_.contains(id), "container id already in use");
  auto c = std::make_unique<Container>(id, name, *sim_, domain_);
  Container& ref = *c;
  containers_[id] = std::move(c);
  next_cid_ = std::max(next_cid_, id + 1);
  return ref;
}

void Kernel::destroy_container(ContainerId id) {
  auto it = containers_.find(id);
  NLC_CHECK_MSG(it != containers_.end(), "destroying unknown container");
  for (Pid pid : it->second->pids()) processes_.erase(pid);
  containers_.erase(it);
}

Container* Kernel::container(ContainerId id) {
  auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second.get();
}

const Container* Kernel::container(ContainerId id) const {
  auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : it->second.get();
}

Process& Kernel::create_process(ContainerId cid, std::string comm) {
  Container& c = container_ref(cid);
  Pid pid = next_pid_++;
  auto p = std::make_unique<Process>(pid, cid);
  p->comm = std::move(comm);
  p->mm().set_page_base(static_cast<PageNum>(pid) << 24);
  Thread& main = p->add_thread(next_tid_++);
  main.regs.rip = 0x400000 + static_cast<std::uint64_t>(pid);
  c.pids().push_back(pid);
  Process& ref = *p;
  processes_[pid] = std::move(p);
  return ref;
}

Process& Kernel::install_process(ContainerId cid, Pid pid, std::string comm) {
  NLC_CHECK_MSG(!processes_.contains(pid), "pid already in use");
  Container& c = container_ref(cid);
  auto p = std::make_unique<Process>(pid, cid);
  p->comm = std::move(comm);
  p->mm().set_page_base(static_cast<PageNum>(pid) << 24);
  c.pids().push_back(pid);
  next_pid_ = std::max(next_pid_, pid + 1);
  Process& ref = *p;
  processes_[pid] = std::move(p);
  return ref;
}

void Kernel::destroy_process(Pid pid) {
  auto it = processes_.find(pid);
  NLC_CHECK_MSG(it != processes_.end(), "destroying unknown process");
  if (Container* c = container(it->second->container())) {
    std::erase(c->pids(), pid);
  }
  processes_.erase(it);
}

Process* Kernel::process(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const Process* Kernel::process(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<Process*> Kernel::container_processes(ContainerId cid) {
  std::vector<Process*> out;
  if (Container* c = container(cid)) {
    for (Pid pid : c->pids()) out.push_back(process(pid));
  }
  return out;
}

std::vector<const Process*> Kernel::container_processes(
    ContainerId cid) const {
  std::vector<const Process*> out;
  if (const Container* c = container(cid)) {
    for (Pid pid : c->pids()) out.push_back(process(pid));
  }
  return out;
}

Thread& Kernel::create_thread(Pid pid) {
  Process* p = process(pid);
  NLC_CHECK_MSG(p != nullptr, "thread for unknown process");
  Thread& t = p->add_thread(next_tid_++);
  t.regs.rip = 0x400000 + static_cast<std::uint64_t>(t.tid);
  return t;
}

void Kernel::freeze_container(ContainerId cid) {
  Container& c = container_ref(cid);
  if (c.frozen()) return;
  c.set_frozen(true);
  c.cpu().freeze();
  for (Pid pid : c.pids()) {
    if (Process* p = process(pid)) {
      for (Thread& t : p->threads()) {
        t.frozen = true;
        t.in_syscall = false;  // the virtual signal forced syscall return
      }
    }
  }
}

void Kernel::thaw_container(ContainerId cid) {
  Container& c = container_ref(cid);
  if (!c.frozen()) return;
  c.set_frozen(false);
  for (Pid pid : c.pids()) {
    if (Process* p = process(pid)) {
      for (Thread& t : p->threads()) t.frozen = false;
    }
  }
  c.cpu().unfreeze();
}

void Kernel::do_mount(ContainerId cid, Mount m) {
  Container& c = container_ref(cid);
  c.mounts().push_back(std::move(m));
  c.bump_infrequent_version();
  ftrace_.emit("do_mount", {cid, 0, c.mounts().back().target});
}

void Kernel::do_umount(ContainerId cid, const std::string& target) {
  Container& c = container_ref(cid);
  std::erase_if(c.mounts(),
                [&](const Mount& m) { return m.target == target; });
  c.bump_infrequent_version();
  ftrace_.emit("do_umount", {cid, 0, target});
}

void Kernel::setns_config(ContainerId cid, NamespaceType type,
                          std::uint64_t config_bytes) {
  Container& c = container_ref(cid);
  for (Namespace& ns : c.namespaces()) {
    if (ns.type == type) {
      ns.config_bytes = config_bytes;
      ++ns.version;
      c.bump_infrequent_version();
      ftrace_.emit("setns", {cid, 0, "namespace reconfigure"});
      return;
    }
  }
  NLC_CHECK_MSG(false, "container lacks the requested namespace");
}

void Kernel::cgroup_modify(ContainerId cid, std::uint64_t cpu_quota_us,
                           std::uint64_t mem_limit_bytes) {
  Container& c = container_ref(cid);
  c.cgroup().cpu_quota_us = cpu_quota_us;
  c.cgroup().mem_limit_bytes = mem_limit_bytes;
  ++c.cgroup().version;
  c.bump_infrequent_version();
  ftrace_.emit("cgroup_attach_task", {cid, 0, "cgroup modify"});
}

void Kernel::mknod(ContainerId cid, DeviceFile dev) {
  Container& c = container_ref(cid);
  c.devices().push_back(std::move(dev));
  c.bump_infrequent_version();
  ftrace_.emit("mknod", {cid, 0, c.devices().back().path});
}

Vma Kernel::mmap_file(Pid pid, std::uint64_t npages, std::string file) {
  Process* p = process(pid);
  NLC_CHECK_MSG(p != nullptr, "mmap for unknown process");
  const Vma& v = p->mm().map(npages, VmaKind::kFileMap, std::move(file));
  if (Container* c = container(p->container())) {
    c->bump_infrequent_version();
  }
  ftrace_.emit("mmap_region", {p->container(), pid, v.backing_file});
  return v;
}

std::uint64_t Kernel::total_threads(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) n += p->threads().size();
  return n;
}

std::uint64_t Kernel::total_fds(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) n += p->fds().size();
  return n;
}

std::uint64_t Kernel::total_sockets(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) {
    for (const auto& [fd, e] : p->fds()) n += e.kind == FdKind::kSocket;
  }
  return n;
}

std::uint64_t Kernel::total_vmas(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) n += p->mm().vmas().size();
  return n;
}

std::uint64_t Kernel::total_mapped_pages(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) {
    n += p->mm().mapped_pages();
  }
  return n;
}

std::uint64_t Kernel::total_file_mappings(ContainerId cid) const {
  std::uint64_t n = 0;
  for (const Process* p : container_processes(cid)) {
    for (const Vma& v : p->mm().vmas()) n += v.kind == VmaKind::kFileMap;
  }
  return n;
}

}  // namespace nlc::kern
