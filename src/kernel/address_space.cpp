#include "kernel/address_space.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::kern {

Vma AddressSpace::map(std::uint64_t npages, VmaKind kind,
                             std::string backing_file) {
  NLC_CHECK(npages > 0);
  Vma v;
  v.id = next_vma_id_++;
  v.start = next_page_;
  v.npages = npages;
  v.kind = kind;
  v.backing_file = std::move(backing_file);
  next_page_ += npages + 16;  // guard gap, like real mmap layouts
  mapped_pages_ += npages;
  vmas_.push_back(std::move(v));
  return vmas_.back();
}

void AddressSpace::install_vma(const Vma& v) {
  NLC_CHECK(v.npages > 0);
  for (const auto& existing : vmas_) {
    NLC_CHECK_MSG(v.end() <= existing.start || v.start >= existing.end(),
                  "install_vma overlaps an existing mapping");
  }
  next_vma_id_ = std::max(next_vma_id_, v.id + 1);
  next_page_ = std::max(next_page_, v.end() + 16);
  mapped_pages_ += v.npages;
  vmas_.push_back(v);
}

void AddressSpace::unmap(std::uint64_t vma_id) {
  auto it = std::find_if(vmas_.begin(), vmas_.end(),
                         [&](const Vma& v) { return v.id == vma_id; });
  NLC_CHECK_MSG(it != vmas_.end(), "unmap of unknown VMA");
  // Drop dirty-list entries before their page states disappear.
  std::erase_if(dirty_, [&](const DirtyRef& d) {
    return it->contains(d.page);
  });
  for (PageNum p = it->start; p < it->end(); ++p) {
    pages_.erase(p);
  }
  mapped_pages_ -= it->npages;
  vmas_.erase(it);
}

const Vma* AddressSpace::find_vma(std::uint64_t vma_id) const {
  for (const auto& v : vmas_) {
    if (v.id == vma_id) return &v;
  }
  return nullptr;
}

void AddressSpace::check_mapped(PageNum page) const {
  for (const auto& v : vmas_) {
    if (v.contains(page)) return;
  }
  NLC_CHECK_MSG(false, "access to unmapped page");
}

bool AddressSpace::touch(PageNum page) {
  check_mapped(page);
  PageState& st = pages_[page];
  ++st.version;
  if (!tracking_) return false;
  return mark_dirty(page, st);
}

bool AddressSpace::mark_dirty(PageNum page, PageState& st) {
  if (st.dirty) return false;
  st.dirty = true;
  dirty_.push_back(DirtyRef{page, &st});
  return true;
}

std::uint64_t AddressSpace::touch_range(PageNum start, std::uint64_t count) {
  std::uint64_t faults = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    faults += touch(start + i) ? 1 : 0;
  }
  return faults;
}

bool AddressSpace::write(PageNum page, std::uint32_t offset,
                         std::span<const std::byte> data) {
  NLC_CHECK(offset + data.size() <= kPageSize);
  check_mapped(page);
  PageState& st = pages_[page];
  ++st.version;
  if (!st.payload) {
    st.payload = util::arena_make_shared<PageBytes>(kPageSize, std::byte{0});
  } else if (st.payload.use_count() > 1) {
    // A checkpoint image / page store / restored container still holds a
    // handle to these bytes: clone before mutating (copy-on-write), so the
    // captured state stays exactly what the freeze observed. The clone's
    // buffer and control block both come from the slab arena.
    st.payload = util::arena_make_shared<PageBytes>(*st.payload);
    ++cow_clones_;
  }
  std::copy(data.begin(), data.end(), st.payload->begin() + offset);
  bool fault = false;
  if (tracking_) fault = mark_dirty(page, st);
  return fault;
}

std::vector<std::byte> AddressSpace::read(PageNum page, std::uint32_t offset,
                                          std::uint32_t len) const {
  NLC_CHECK(offset + len <= kPageSize);
  std::vector<std::byte> out(len, std::byte{0});
  auto it = pages_.find(page);
  if (it != pages_.end() && it->second.payload) {
    const PageBytes& buf = *it->second.payload;
    std::copy(buf.begin() + offset, buf.begin() + offset + len, out.begin());
  }
  return out;
}

PagePayload AddressSpace::content(PageNum page) const {
  auto it = pages_.find(page);
  if (it == pages_.end()) return nullptr;
  return it->second.payload;
}

void AddressSpace::install_content(PageNum page, PagePayload data) {
  NLC_CHECK(data != nullptr && data->size() == kPageSize);
  PageState& st = pages_[page];
  ++st.version;
  // Adopt the shared handle. The stored pointer is non-const because this
  // address space owns future mutations of the page; copy-on-write in
  // write() guarantees the adopted bytes are never modified while any other
  // holder (image, page store) keeps its handle.
  st.payload = std::const_pointer_cast<PageBytes>(data);
  if (tracking_) mark_dirty(page, st);
}

void AddressSpace::clear_soft_dirty() {
  tracking_ = true;
  for (const DirtyRef& d : dirty_) d.state->dirty = false;
  dirty_.clear();
}

void AddressSpace::disable_tracking() {
  tracking_ = false;
  for (const DirtyRef& d : dirty_) d.state->dirty = false;
  dirty_.clear();
}

std::uint64_t AddressSpace::page_version(PageNum page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? 0 : it->second.version;
}

}  // namespace nlc::kern
