#include "kernel/address_space.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::kern {

Vma AddressSpace::map(std::uint64_t npages, VmaKind kind,
                             std::string backing_file) {
  NLC_CHECK(npages > 0);
  Vma v;
  v.id = next_vma_id_++;
  v.start = next_page_;
  v.npages = npages;
  v.kind = kind;
  v.backing_file = std::move(backing_file);
  next_page_ += npages + 16;  // guard gap, like real mmap layouts
  mapped_pages_ += npages;
  vmas_.push_back(std::move(v));
  return vmas_.back();
}

void AddressSpace::install_vma(const Vma& v) {
  NLC_CHECK(v.npages > 0);
  for (const auto& existing : vmas_) {
    NLC_CHECK_MSG(v.end() <= existing.start || v.start >= existing.end(),
                  "install_vma overlaps an existing mapping");
  }
  next_vma_id_ = std::max(next_vma_id_, v.id + 1);
  next_page_ = std::max(next_page_, v.end() + 16);
  mapped_pages_ += v.npages;
  vmas_.push_back(v);
}

void AddressSpace::unmap(std::uint64_t vma_id) {
  auto it = std::find_if(vmas_.begin(), vmas_.end(),
                         [&](const Vma& v) { return v.id == vma_id; });
  NLC_CHECK_MSG(it != vmas_.end(), "unmap of unknown VMA");
  for (PageNum p = it->start; p < it->end(); ++p) {
    dirty_.erase(p);
    versions_.erase(p);
    content_.erase(p);
  }
  mapped_pages_ -= it->npages;
  vmas_.erase(it);
}

const Vma* AddressSpace::find_vma(std::uint64_t vma_id) const {
  for (const auto& v : vmas_) {
    if (v.id == vma_id) return &v;
  }
  return nullptr;
}

void AddressSpace::check_mapped(PageNum page) const {
  for (const auto& v : vmas_) {
    if (v.contains(page)) return;
  }
  NLC_CHECK_MSG(false, "access to unmapped page");
}

bool AddressSpace::touch(PageNum page) {
  check_mapped(page);
  ++versions_[page];
  if (!tracking_) return false;
  return dirty_.insert(page).second;
}

std::uint64_t AddressSpace::touch_range(PageNum start, std::uint64_t count) {
  std::uint64_t faults = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    faults += touch(start + i) ? 1 : 0;
  }
  return faults;
}

bool AddressSpace::write(PageNum page, std::uint32_t offset,
                         std::span<const std::byte> data) {
  NLC_CHECK(offset + data.size() <= kPageSize);
  bool fault = touch(page);
  auto& buf = content_[page];
  if (buf.size() < kPageSize) buf.resize(kPageSize);
  std::copy(data.begin(), data.end(), buf.begin() + offset);
  return fault;
}

std::vector<std::byte> AddressSpace::read(PageNum page, std::uint32_t offset,
                                          std::uint32_t len) const {
  NLC_CHECK(offset + len <= kPageSize);
  std::vector<std::byte> out(len, std::byte{0});
  auto it = content_.find(page);
  if (it != content_.end()) {
    std::copy(it->second.begin() + offset, it->second.begin() + offset + len,
              out.begin());
  }
  return out;
}

const std::vector<std::byte>* AddressSpace::content(PageNum page) const {
  auto it = content_.find(page);
  return it == content_.end() ? nullptr : &it->second;
}

void AddressSpace::install_content(PageNum page, std::vector<std::byte> data) {
  NLC_CHECK(data.size() == kPageSize);
  ++versions_[page];
  if (tracking_) dirty_.insert(page);
  content_[page] = std::move(data);
}

void AddressSpace::clear_soft_dirty() {
  tracking_ = true;
  dirty_.clear();
}

void AddressSpace::disable_tracking() {
  tracking_ = false;
  dirty_.clear();
}

std::uint64_t AddressSpace::page_version(PageNum page) const {
  auto it = versions_.find(page);
  return it == versions_.end() ? 0 : it->second;
}

}  // namespace nlc::kern
