// Simulated filesystem with page cache, inode cache, and the paper's DNC
// ("Dirty but Not Checkpointed") extension.
//
// Write path: write() lands in the page cache, marking the page dirty (for
// eventual writeback to the block device) and DNC (for the next epoch's
// checkpoint). A writeback daemon — or an explicit sync — flushes dirty
// pages to the underlying Disk, which the DRBD layer replicates; flushing
// clears dirty but NOT DNC. harvest_dnc() (the paper's fgetfc syscall)
// returns all DNC page/inode entries and clears only the DNC bits.
//
// This separation is the crux of §III: the backup's view of a file is
// (committed disk blocks) overlaid with (committed page-cache entries), so
// a failover never needs a fsync on the primary's hot path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/ids.hpp"
#include "util/bytes.hpp"

namespace nlc::kern {

struct InodeAttr {
  InodeNum ino = 0;
  std::string path;
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t mtime_ns = 0;

  bool operator==(const InodeAttr&) const = default;
};

/// One cached file page. `data` always holds kPageSize bytes.
struct CachedPage {
  std::vector<std::byte> data;
  bool dirty = false;  // needs writeback to disk
  bool dnc = false;    // dirty since the last checkpoint harvest
};

/// A harvested DNC page entry (what fgetfc returns / restore applies).
struct DncPageEntry {
  InodeNum ino = 0;
  std::uint64_t page_index = 0;
  std::vector<std::byte> data;
};

struct DncInodeEntry {
  InodeAttr attr;
};

struct DncHarvest {
  std::vector<DncInodeEntry> inodes;
  std::vector<DncPageEntry> pages;

  std::uint64_t byte_size() const {
    return pages.size() * kPageSize + inodes.size() * 128;
  }
};

/// Abstract block store the filesystem flushes to; implemented by
/// blk::Disk / blk::Drbd. Addressed by (inode, page index).
class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual void write_block(InodeNum ino, std::uint64_t page,
                           std::span<const std::byte> data) = 0;
  /// Returns empty optional when the block was never written.
  virtual std::optional<std::vector<std::byte>> read_block(
      InodeNum ino, std::uint64_t page) const = 0;
};

class Filesystem {
 public:
  explicit Filesystem(BlockStore& store) : store_(&store) {}
  Filesystem(const Filesystem&) = delete;
  Filesystem& operator=(const Filesystem&) = delete;

  /// Creates (or truncates) a file; returns its inode number.
  InodeNum create(const std::string& path, std::uint32_t mode = 0644);

  /// Looks up a path; 0 when absent.
  InodeNum lookup(const std::string& path) const;

  const InodeAttr* attr(InodeNum ino) const;

  /// chown/chmod-style attribute update; marks the inode DNC.
  void set_attr(InodeNum ino, std::uint32_t uid, std::uint32_t gid,
                std::uint32_t mode);

  /// Writes through the page cache. Extends the file as needed.
  void write(InodeNum ino, std::uint64_t offset,
             std::span<const std::byte> data, std::uint64_t now_ns);

  /// Reads through the page cache (falling back to disk blocks).
  std::vector<std::byte> read(InodeNum ino, std::uint64_t offset,
                              std::uint64_t len) const;

  /// Flushes up to `max_pages` dirty pages to the block store (writeback
  /// daemon step); clears their dirty bits, keeps DNC. Returns the number
  /// flushed.
  std::uint64_t writeback(std::uint64_t max_pages);

  /// Flushes everything (fsync/umount).
  void sync_all();

  /// The fgetfc syscall: returns every DNC inode/page entry and clears the
  /// DNC bits (the data stays dirty in the cache if not yet written back).
  DncHarvest harvest_dnc();

  /// Restore path: applies a harvested delta (pwrite + chown equivalents).
  void apply_dnc(const DncHarvest& h, std::uint64_t now_ns);

  /// Counts for the cost model / tests.
  std::uint64_t dnc_page_count() const;
  std::uint64_t dirty_page_count() const;
  std::uint64_t cached_page_count() const;
  std::uint64_t inode_count() const { return inodes_.size(); }

 private:
  struct FileCache {
    std::map<std::uint64_t, CachedPage> pages;  // page index -> page
  };

  CachedPage& cache_page(InodeNum ino, std::uint64_t page);

  BlockStore* store_;
  std::unordered_map<std::string, InodeNum> by_path_;
  std::map<InodeNum, InodeAttr> inodes_;
  std::map<InodeNum, bool> inode_dnc_;
  std::map<InodeNum, FileCache> cache_;
  InodeNum next_ino_ = 100;
};

}  // namespace nlc::kern
