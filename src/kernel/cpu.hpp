// Per-container CPU time accounting with freezer support.
//
// The paper's containers run on dedicated cores (§VI): a thread's compute
// burst of length T completes T of simulated time later, with at most
// `core_limit` bursts executing concurrently (excess bursts queue FIFO —
// this is what makes saturation throughput CPU-bound). Freezing suspends
// in-flight bursts and resumes them on thaw, giving exact
// stop-the-container semantics for checkpointing. The consumed-cycle
// counter doubles as the cgroup's cpuacct.usage file, which NiLiCon's
// failure detector reads (§IV).
#pragma once

#include <list>
#include <memory>

#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace nlc::kern {

class CpuSet {
 public:
  CpuSet(sim::Simulation& s, sim::DomainPtr domain)
      : sim_(&s), domain_(std::move(domain)) {}
  CpuSet(const CpuSet&) = delete;
  CpuSet& operator=(const CpuSet&) = delete;

  /// Consumes `t` of CPU time on a dedicated core; completes after `t` of
  /// unfrozen simulated time has elapsed.
  sim::task<> consume(Time t);

  /// Freezer: suspends all in-flight bursts. Idempotent.
  void freeze();
  /// Thaws and resumes in-flight bursts. Idempotent.
  void unfreeze();
  bool frozen() const { return frozen_; }

  /// cpuacct.usage: total CPU time consumed so far (all cores summed).
  Time usage() const { return usage_; }

  /// Number of bursts currently executing or suspended (≈ busy threads).
  int inflight() const { return static_cast<int>(slices_.size()); }

  /// Caps concurrently executing bursts (container core allocation).
  void set_core_limit(int cores);
  int core_limit() const { return core_limit_; }
  int running() const { return running_; }

 private:
  struct Slice {
    Time remaining;
    Time started = 0;       // valid while running
    bool running = false;
    bool queued = false;    // waiting for a core
    sim::TimerHandle timer;
    std::unique_ptr<sim::Event> done;
  };
  using SliceIter = std::list<Slice>::iterator;

  void start_slice(SliceIter it);
  void start_queued();

  sim::Simulation* sim_;
  sim::DomainPtr domain_;
  bool frozen_ = false;
  Time usage_ = 0;
  int core_limit_ = 1 << 20;  // effectively unbounded by default
  int running_ = 0;
  std::list<Slice> slices_;
};

}  // namespace nlc::kern
