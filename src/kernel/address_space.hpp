// Simulated process address space: VMAs, 4 KiB pages, soft-dirty tracking.
//
// Two kinds of pages coexist (DESIGN.md §5.3):
//  * content pages — written through write(); carry real bytes that the
//    checkpoint engine copies, so end-to-end consistency is observable;
//  * accounting pages — dirtied through touch(); carry only a version
//    stamp. They cost a full kPageSize on the wire like real pages but do
//    not occupy 4 KiB of simulator RAM, which keeps 100K-page working sets
//    cheap.
//
// Soft-dirty tracking mirrors Linux's /proc/pid/clear_refs + pagemap
// protocol: clear_soft_dirty() arms tracking and clears the bits;
// dirty_pages() is the set a pagemap scan would report. The *cost* of the
// scan (per mapped page) is charged by the checkpoint engine, not here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kernel/ids.hpp"
#include "util/bytes.hpp"

namespace nlc::kern {

enum class VmaKind : std::uint8_t {
  kAnon,      // heap / anonymous mmap
  kStack,
  kFileMap,   // memory-mapped file (e.g. a dynamically linked library)
  kShared,    // shared memory region (parasite <-> agent channel)
};

struct Vma {
  std::uint64_t id = 0;
  PageNum start = 0;        // first page number
  std::uint64_t npages = 0;
  VmaKind kind = VmaKind::kAnon;
  std::string backing_file;  // for kFileMap
  std::uint64_t version = 0; // bumped when the mapping itself changes

  PageNum end() const { return start + npages; }
  bool contains(PageNum p) const { return p >= start && p < end(); }
};

class AddressSpace {
 public:
  /// Maps a new VMA of `npages`; returns its descriptor. Page numbers are
  /// allocated from a monotone bump allocator (no reuse; simulated
  /// processes are short-lived enough).
  Vma map(std::uint64_t npages, VmaKind kind,
          std::string backing_file = {});

  /// Unmaps the VMA with id `vma_id` (drops its pages and content).
  void unmap(std::uint64_t vma_id);

  /// Restore path: recreates a VMA at its checkpointed page range so page
  /// numbers keep their identity across failover.
  void install_vma(const Vma& v);

  /// Moves the allocation cursor to at least `base`. The kernel gives each
  /// process a disjoint page-number range (pid-keyed) so page numbers are
  /// globally unique within a host — required for container-wide page
  /// images.
  void set_page_base(PageNum base) {
    if (next_page_ < base) next_page_ = base;
  }

  const std::vector<Vma>& vmas() const { return vmas_; }
  const Vma* find_vma(std::uint64_t vma_id) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }
  std::uint64_t mapped_bytes() const { return mapped_pages_ * kPageSize; }

  /// Dirties `page` without content. Returns true if the page transitioned
  /// clean->dirty under tracking (i.e. a soft-dirty write fault occurred,
  /// which costs runtime overhead).
  bool touch(PageNum page);

  /// Dirties `count` pages starting at `start`; returns the number of
  /// clean->dirty transitions (write faults).
  std::uint64_t touch_range(PageNum start, std::uint64_t count);

  /// Content write within one page; dirties it. Returns true on a write
  /// fault (as touch()).
  bool write(PageNum page, std::uint32_t offset, std::span<const std::byte> data);

  /// Reads content previously written to `page`. Unwritten bytes read as 0.
  std::vector<std::byte> read(PageNum page, std::uint32_t offset,
                              std::uint32_t len) const;

  /// Full-page content for the checkpoint engine; nullptr for accounting
  /// pages (no stored bytes).
  const std::vector<std::byte>* content(PageNum page) const;

  /// Installs page content wholesale (restore path).
  void install_content(PageNum page, std::vector<std::byte> data);

  /// Arms soft-dirty tracking and clears all soft-dirty bits
  /// (/proc/pid/clear_refs). Idempotent.
  void clear_soft_dirty();

  /// Disables tracking (stock execution: no write-fault overhead).
  void disable_tracking();

  bool tracking() const { return tracking_; }

  /// Pages dirtied since the last clear_soft_dirty(). Sorted copies are the
  /// caller's job; iteration order is unspecified.
  const std::unordered_set<PageNum>& dirty_pages() const { return dirty_; }

  /// Per-page monotone version, for tests asserting incremental semantics.
  std::uint64_t page_version(PageNum page) const;

 private:
  void check_mapped(PageNum page) const;

  std::vector<Vma> vmas_;
  std::uint64_t next_vma_id_ = 1;
  PageNum next_page_ = 0x1000;  // arbitrary non-zero base
  std::uint64_t mapped_pages_ = 0;
  bool tracking_ = false;
  std::unordered_set<PageNum> dirty_;
  std::unordered_map<PageNum, std::uint64_t> versions_;
  std::unordered_map<PageNum, std::vector<std::byte>> content_;
};

}  // namespace nlc::kern
