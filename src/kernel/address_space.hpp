// Simulated process address space: VMAs, 4 KiB pages, soft-dirty tracking.
//
// Two kinds of pages coexist (DESIGN.md §5.3):
//  * content pages — written through write(); carry real bytes that the
//    checkpoint engine captures, so end-to-end consistency is observable;
//  * accounting pages — dirtied through touch(); carry only a version
//    stamp. They cost a full kPageSize on the wire like real pages but do
//    not occupy 4 KiB of simulator RAM, which keeps 100K-page working sets
//    cheap.
//
// Page payloads are immutable refcounted buffers (DESIGN.md §7): content()
// hands out a shared handle, and the whole checkpoint pipeline (harvest ->
// image -> wire -> page store -> restore) passes that handle around instead
// of deep-copying 4 KiB per stage. write() copies-on-write only when the
// payload is shared, so a post-thaw write can never mutate bytes already
// captured in an in-flight or committed checkpoint image.
//
// Soft-dirty tracking mirrors Linux's /proc/pid/clear_refs + pagemap
// protocol: clear_soft_dirty() arms tracking and clears the bits;
// dirty_pages() is the set a pagemap scan would report. The *cost* of the
// scan (per mapped page) is charged by the checkpoint engine, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/ids.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"

namespace nlc::kern {

/// One page's content bytes (always kPageSize once materialized). The
/// buffer rides the slab arena (util/arena.hpp, DESIGN.md §12): every
/// materialization and COW clone pulls a recycled 4 KiB block from the
/// allocating thread's cache instead of the heap.
using PageBytes = std::vector<std::byte, util::ArenaAllocator<std::byte>>;
/// Immutable shared handle to a page payload; the unit the checkpoint
/// pipeline passes instead of copies. Null for accounting pages.
using PagePayload = std::shared_ptr<const PageBytes>;

enum class VmaKind : std::uint8_t {
  kAnon,      // heap / anonymous mmap
  kStack,
  kFileMap,   // memory-mapped file (e.g. a dynamically linked library)
  kShared,    // shared memory region (parasite <-> agent channel)
};

struct Vma {
  std::uint64_t id = 0;
  PageNum start = 0;        // first page number
  std::uint64_t npages = 0;
  VmaKind kind = VmaKind::kAnon;
  std::string backing_file;  // for kFileMap
  std::uint64_t version = 0; // bumped when the mapping itself changes

  PageNum end() const { return start + npages; }
  bool contains(PageNum p) const { return p >= start && p < end(); }
};

class AddressSpace {
 public:
  /// Per-page resident state: monotone version plus the (possibly null)
  /// content payload. Exposed so the checkpoint engine can walk residents
  /// with one hash lookup per page instead of separate version/content
  /// probes.
  struct PageState {
    std::uint64_t version = 0;
    std::shared_ptr<PageBytes> payload;  // null for accounting pages
    /// Soft-dirty bit; mirrored by an entry in the contiguous dirty list.
    bool dirty = false;
  };

  /// One dirty-list entry: the page number plus a direct pointer to its
  /// resident state (stable: the page map is node-based). The harvest fill
  /// walks this contiguous vector linearly — no per-page hash probe, and
  /// the next entries are prefetchable (DESIGN.md §12).
  struct DirtyRef {
    PageNum page = 0;
    PageState* state = nullptr;
  };

  /// Maps a new VMA of `npages`; returns its descriptor. Page numbers are
  /// allocated from a monotone bump allocator (no reuse; simulated
  /// processes are short-lived enough).
  Vma map(std::uint64_t npages, VmaKind kind,
          std::string backing_file = {});

  /// Unmaps the VMA with id `vma_id` (drops its pages and content).
  void unmap(std::uint64_t vma_id);

  /// Restore path: recreates a VMA at its checkpointed page range so page
  /// numbers keep their identity across failover.
  void install_vma(const Vma& v);

  /// Moves the allocation cursor to at least `base`. The kernel gives each
  /// process a disjoint page-number range (pid-keyed) so page numbers are
  /// globally unique within a host — required for container-wide page
  /// images.
  void set_page_base(PageNum base) {
    if (next_page_ < base) next_page_ = base;
  }

  const std::vector<Vma>& vmas() const { return vmas_; }
  const Vma* find_vma(std::uint64_t vma_id) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }
  std::uint64_t mapped_bytes() const { return mapped_pages_ * kPageSize; }

  /// Dirties `page` without content. Returns true if the page transitioned
  /// clean->dirty under tracking (i.e. a soft-dirty write fault occurred,
  /// which costs runtime overhead).
  bool touch(PageNum page);

  /// Dirties `count` pages starting at `start`; returns the number of
  /// clean->dirty transitions (write faults).
  std::uint64_t touch_range(PageNum start, std::uint64_t count);

  /// Content write within one page; dirties it. Returns true on a write
  /// fault (as touch()). Clones the payload first iff a checkpoint handle
  /// to it is still live (copy-on-write).
  bool write(PageNum page, std::uint32_t offset, std::span<const std::byte> data);

  /// Reads content previously written to `page`. Unwritten bytes read as 0.
  std::vector<std::byte> read(PageNum page, std::uint32_t offset,
                              std::uint32_t len) const;

  /// Full-page content handle for the checkpoint engine; null for
  /// accounting pages (no stored bytes). The returned payload is immutable:
  /// holding it pins the bytes as of this call regardless of later writes.
  PagePayload content(PageNum page) const;

  /// Installs page content wholesale (restore path). Zero-copy: adopts the
  /// shared payload; a later write() clones before mutating while the
  /// source image still holds the handle.
  void install_content(PageNum page, PagePayload data);

  /// Arms soft-dirty tracking and clears all soft-dirty bits
  /// (/proc/pid/clear_refs). Idempotent.
  void clear_soft_dirty();

  /// Disables tracking (stock execution: no write-fault overhead).
  void disable_tracking();

  bool tracking() const { return tracking_; }

  /// Pages dirtied since the last clear_soft_dirty(), in dirtying order
  /// (each page once). Sorted copies are the caller's job. The entries
  /// carry the page-state pointer so the harvest fill is one linear scan
  /// over this vector instead of a hash probe per page.
  const std::vector<DirtyRef>& dirty_pages() const { return dirty_; }

  /// All resident pages (ever touched/written); iteration order is
  /// unspecified. Full dumps walk this instead of probing every page of
  /// every VMA.
  const std::unordered_map<PageNum, PageState>& page_states() const {
    return pages_;
  }

  /// Per-page monotone version, for tests asserting incremental semantics.
  std::uint64_t page_version(PageNum page) const;

  /// Number of copy-on-write payload clones performed (a write hit a page
  /// whose payload was still referenced by a checkpoint image/store).
  std::uint64_t cow_clones() const { return cow_clones_; }

 private:
  void check_mapped(PageNum page) const;
  /// Appends `page` to the dirty list iff not already there; returns true
  /// on the clean->dirty transition (a soft-dirty write fault).
  bool mark_dirty(PageNum page, PageState& st);

  std::vector<Vma> vmas_;
  std::uint64_t next_vma_id_ = 1;
  PageNum next_page_ = 0x1000;  // arbitrary non-zero base
  std::uint64_t mapped_pages_ = 0;
  bool tracking_ = false;
  std::vector<DirtyRef> dirty_;
  std::unordered_map<PageNum, PageState> pages_;
  std::uint64_t cow_clones_ = 0;
};

}  // namespace nlc::kern
