// Simulated container: namespaces, cgroups, mounts, device files — the
// in-kernel state that makes container checkpointing harder than VM
// checkpointing (§I, §III).
//
// Each infrequently-modified state component carries a version counter.
// Mutations bump the version and fire the matching ftrace hook, which is
// how NiLiCon's state cache (§V-B) learns that its cached copy is stale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/cpu.hpp"
#include "kernel/ids.hpp"

namespace nlc::kern {

/// Observer for the nondeterministic inputs a container app consumes
/// (DESIGN.md §14). In replay commit mode the primary agent installs its
/// event log here; apps report each nondeterminism source at the point it
/// takes effect. Recording is pure observation — installing a sink must
/// never change simulated observables.
class NondetSink {
 public:
  virtual ~NondetSink() = default;
  /// A request was consumed from `sock` in commit order.
  virtual void on_net_input(std::uint64_t sock, std::uint64_t tag,
                            std::uint64_t payload_hash) = 0;
  /// Periodic app timer `timer_id` fired for the `seq`-th time.
  virtual void on_timer(std::uint64_t timer_id, std::uint64_t seq) = 0;
  /// The app observed a seeded-RNG outcome (folded to one value per site).
  virtual void on_rng_draw(std::uint64_t value) = 0;
};

enum class NamespaceType : std::uint8_t {
  kNet,
  kMount,
  kPid,
  kUts,
  kIpc,
  kUser,
  kCgroup,
};
inline constexpr int kNamespaceTypeCount = 7;

struct Namespace {
  NamespaceType type = NamespaceType::kNet;
  std::uint64_t ns_id = 0;
  /// Size of the kernel-side configuration that a checkpoint must encode
  /// (interface configs, uid maps, ...). Drives harvest cost and state size.
  std::uint64_t config_bytes = 256;
  std::uint64_t version = 1;

  bool operator==(const Namespace&) const = default;
};

struct CgroupConfig {
  std::string path;             // e.g. "/sys/fs/cgroup/nilicon/web"
  std::uint64_t cpu_quota_us = 0;   // 0 = unlimited
  std::uint64_t mem_limit_bytes = 0;
  std::uint64_t version = 1;

  bool operator==(const CgroupConfig&) const = default;
};

struct Mount {
  std::string source;
  std::string target;
  std::string fstype;
  std::uint64_t flags = 0;

  bool operator==(const Mount&) const = default;
};

struct DeviceFile {
  std::string path;
  std::uint32_t major = 0;
  std::uint32_t minor = 0;

  bool operator==(const DeviceFile&) const = default;
};

class Container {
 public:
  Container(ContainerId id, std::string name, sim::Simulation& s,
            sim::DomainPtr domain)
      : id_(id), name_(std::move(name)),
        cpu_(std::make_unique<CpuSet>(s, std::move(domain))) {}

  ContainerId id() const { return id_; }
  const std::string& name() const { return name_; }

  CpuSet& cpu() { return *cpu_; }
  const CpuSet& cpu() const { return *cpu_; }

  std::vector<Pid>& pids() { return pids_; }
  const std::vector<Pid>& pids() const { return pids_; }

  std::vector<Namespace>& namespaces() { return namespaces_; }
  const std::vector<Namespace>& namespaces() const { return namespaces_; }

  CgroupConfig& cgroup() { return cgroup_; }
  const CgroupConfig& cgroup() const { return cgroup_; }

  std::vector<Mount>& mounts() { return mounts_; }
  const std::vector<Mount>& mounts() const { return mounts_; }

  std::vector<DeviceFile>& devices() { return devices_; }
  const std::vector<DeviceFile>& devices() const { return devices_; }

  /// Aggregate version over all infrequently-modified components; the
  /// state cache compares this against its snapshot.
  std::uint64_t infrequent_state_version() const {
    return infrequent_version_;
  }
  void bump_infrequent_version() { ++infrequent_version_; }

  bool frozen() const { return frozen_; }
  void set_frozen(bool f) { frozen_ = f; }

  /// The network namespace id (also listed in namespaces()); the net module
  /// keys NIC/veth attachment by this.
  std::uint64_t net_ns_id() const { return net_ns_id_; }
  void set_net_ns_id(std::uint64_t id) { net_ns_id_ = id; }

  /// The container's virtual service address (opaque to the kernel; the
  /// net module interprets it as an IpAddr). 0 = no network service.
  std::uint64_t service_ip() const { return service_ip_; }
  void set_service_ip(std::uint64_t ip) { service_ip_ = ip; }

  /// Replay commit mode: where this container's apps report nondeterminism
  /// (nullptr = no recording; the default, and always the case on a
  /// restored backup container).
  NondetSink* nondet_sink() const { return nondet_; }
  void set_nondet_sink(NondetSink* sink) { nondet_ = sink; }

 private:
  ContainerId id_;
  std::string name_;
  std::unique_ptr<CpuSet> cpu_;
  std::vector<Pid> pids_;
  std::vector<Namespace> namespaces_;
  CgroupConfig cgroup_;
  std::vector<Mount> mounts_;
  std::vector<DeviceFile> devices_;
  std::uint64_t infrequent_version_ = 1;
  std::uint64_t net_ns_id_ = 0;
  std::uint64_t service_ip_ = 0;
  NondetSink* nondet_ = nullptr;
  bool frozen_ = false;
};

}  // namespace nlc::kern
