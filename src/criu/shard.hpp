// Page-number sharding for the intra-epoch page pipeline (DESIGN.md §10).
//
// One epoch's dirty-page work — harvest record fill, delta encoding,
// backup-side radix fold, wire serialization — is partitioned into
// NLC_SHARDS independent shards so the stages can run on the shared
// util::WorkerPool. Two partition schemes are used, both deterministic:
//
//  * by page number (shard_of): low-bit interleave, so a dense working set
//    spreads evenly. Used by the stages that keep per-page state across
//    epochs (delta reference maps, radix subtrees) — a page's shard is a
//    permanent home, which is what makes the per-shard structures
//    lock-free on the hot path.
//  * by contiguous index range (chunk bounds inside each stage): used by
//    the stages that stream over an already-ordered record vector
//    (harvest fill, serialization), where concatenating the chunks in
//    order reproduces the serial output byte for byte.
//
// The merge/aggregation step of every stage folds per-shard results in
// shard-index order; all shipped bytes, visit counts and EpochDeltaStats
// are byte-identical for any shard count (tests/shard_determinism_test).
#pragma once

#include <cstdint>
#include <vector>

#include "criu/image.hpp"

namespace nlc::criu {

/// Deterministic page → shard mapping (low-bit interleave).
inline std::size_t shard_of(kern::PageNum page, int nshards) {
  return static_cast<std::size_t>(page %
                                  static_cast<kern::PageNum>(nshards));
}

/// Index partition of one epoch's page records by shard_of(), preserving
/// the image (ascending page) order within each bucket.
struct ShardPlan {
  std::vector<std::vector<std::uint32_t>> buckets;

  static ShardPlan build(const std::vector<PageRecord>& pages, int nshards) {
    ShardPlan plan;
    plan.buckets.resize(static_cast<std::size_t>(nshards < 1 ? 1 : nshards));
    // Presize: an even split is the common case (interleaved numbering).
    std::size_t guess = pages.size() / plan.buckets.size() + 1;
    for (auto& b : plan.buckets) b.reserve(guess);
    for (std::uint32_t i = 0; i < pages.size(); ++i) {
      plan.buckets[shard_of(pages[i].page, nshards)].push_back(i);
    }
    return plan;
  }
};

}  // namespace nlc::criu
