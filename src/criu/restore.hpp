// Restore engine: CRIU's restore path onto a (backup) simulated kernel.
//
// Runs as a coroutine so each stage consumes simulated time from the cost
// model; the returned timeline feeds Table II's recovery-latency breakdown.
// Stage order matches the paper (§III, §IV): the network namespace comes up
// first (which is why ingress must stay blocked until the sockets exist),
// then cgroups/mounts/devices, processes with their address spaces and fd
// tables, sockets via repair mode, and finally memory page contents and the
// file-system cache.
#pragma once

#include <vector>

#include "criu/costs.hpp"
#include "criu/image.hpp"
#include "criu/pagestore.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"
#include "sim/task.hpp"

namespace nlc::criu {

struct RestoreTimeline {
  Time started = 0;
  Time namespaces_done = 0;  // netns exists from here (RST window opens)
  Time processes_done = 0;
  Time sockets_done = 0;     // repaired sockets live; RTO countdown starts
  Time memory_done = 0;
  Time finished = 0;

  std::uint64_t pages_restored = 0;
  std::uint64_t sockets_restored = 0;
  std::uint64_t fs_cache_pages_restored = 0;

  Time total() const { return finished - started; }
};

class RestoreEngine {
 public:
  RestoreEngine(kern::Kernel& k, net::TcpStack& tcp,
                KernelInterfaceCosts costs = {})
      : kernel_(&k), tcp_(&tcp), costs_(costs) {}

  /// Restores a container from `img` (process/socket/infrequent state of
  /// the last committed epoch) plus the accumulated committed memory pages
  /// and file-system-cache state. `rto_fixed` selects the §V-E RTO clamp;
  /// `ack_runahead` marks repaired sockets as replay-mode restores whose
  /// peers may acknowledge output released after the checkpoint.
  sim::task<RestoreTimeline> restore(
      const CheckpointImage& img,
      const std::vector<const PageRecord*>& committed_pages,
      const kern::DncHarvest& committed_fs_cache, bool rto_fixed,
      bool ack_runahead = false);

 private:
  kern::Kernel* kernel_;
  net::TcpStack* tcp_;
  KernelInterfaceCosts costs_;
};

}  // namespace nlc::criu
