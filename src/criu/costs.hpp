// Calibrated costs of harvesting/restoring container state through kernel
// interfaces. Every constant cites the paper measurement it reproduces.
//
// These are the latencies the paper's §V optimizations attack: the legacy
// /proc + syscall interfaces are slow because of (1) syscall count, (2)
// extra information generated, (3) text formatting (§V). The `task-diag`
// netlink patch and NiLiCon's caching avoid them.
#pragma once

#include "util/time.hpp"

namespace nlc::criu {

struct KernelInterfaceCosts {
  // ---- Freezer (§V-A) ----------------------------------------------------
  /// Stock CRIU sleeps 100 ms between issuing virtual signals and checking
  /// thread state ("avoid busy waiting", §V-A).
  Time freezer_sleep_quantum = nlc::milliseconds(100);
  /// NiLiCon polls instead; even for syscall-heavy benchmarks the average
  /// busy-loop latency is < 1 ms (§V-A). Mean polling wait:
  Time freezer_poll_mean = nlc::microseconds(400);
  /// Per-thread virtual-signal delivery cost.
  Time freeze_signal_per_thread = nlc::microseconds(10);

  // ---- Per-thread state (§VII-C scalability) -----------------------------
  /// Retrieving registers, signal mask, scheduling policy per thread via
  /// ptrace/parasite: 148 us for 1 thread scaling to 4 ms at 32 threads
  /// (i.e. ~125 us/thread); we use an affine model.
  Time thread_state_base = nlc::microseconds(25);
  Time thread_state_per_thread = nlc::microseconds(123);

  // ---- Per-process state ---------------------------------------------------
  // The paper's "per-process state" number for lighttpd (6.5 ms @ 1 proc ->
  // 28.7 ms @ 8 procs) aggregates fd tables, VMAs, parasite setup and
  // sockets; here only the bare process walk, with the rest itemized below.
  Time process_state_base = nlc::microseconds(800);
  Time process_state_per_proc = nlc::microseconds(1000);
  /// Per ordinary (non-socket) fd entry.
  Time per_fd = nlc::microseconds(4);

  // ---- Sockets (§VII-C: 1.2 ms @2 clients -> 13 ms @128 clients) ---------
  /// getsockopt(TCP_REPAIR...) per established socket: queues + seq state.
  Time socket_repair_per_socket = nlc::microseconds(93);
  Time socket_repair_base = nlc::microseconds(1000);
  /// Draining the repair-mode read/write queues costs per byte queued.
  Time socket_repair_per_kb = nlc::microseconds_f(1.5);

  // ---- Fixed per-dump overhead --------------------------------------------
  /// Parasite injection, image bookkeeping, pipes setup: paid every epoch.
  Time dump_misc = nlc::microseconds(1100);

  // ---- VMAs (§V-D deficiency 1) ------------------------------------------
  /// /proc/pid/smaps: text-formatted, includes page statistics CRIU does
  /// not need; ~50 us per VMA.
  Time smaps_per_vma = nlc::microseconds(50);
  /// task-diag netlink interface (CRIU developers' patch): binary, ~2 us.
  Time netlink_per_vma = nlc::microseconds(2);

  // ---- Dirty-page discovery (§VII-C: 1441 us @49K pages,
  //      2887 us @111K pages => ~23 ns/page + ~300 us base) ----------------
  Time pagemap_scan_base = nlc::microseconds(300);
  Time pagemap_scan_per_page = nlc::nanoseconds(20);

  // ---- Page content transfer out of the parasite (§V-D) ------------------
  /// memcpy into the staging buffer: 263 us/121 pages ... 1099 us/495 pages
  /// (§VII-C) => ~2.2 us per 4 KiB page.
  Time page_copy_per_page = nlc::microseconds_f(2.2);
  /// Extra cost per page when the parasite pushes pages through a pipe
  /// (multiple syscalls per chunk, §V-D deficiency 3). Removing this is
  /// the "transfer dirty pages via shared memory" row of Table I.
  Time pipe_transfer_per_page = nlc::microseconds_f(6.0);
  /// HyCoR-style COW dump (replay commit mode, DESIGN.md §14): the frozen
  /// window only write-protects the dirty set; the copy-out overlaps the
  /// next execute phase. Per-page cost of arming the protection (batched
  /// mprotect / soft-dirty write-protect walk, including the amortized
  /// fault-side bookkeeping the app pays on first touch after resume).
  Time cow_protect_per_page = nlc::nanoseconds(150);

  // ---- Infrequently-modified state (§V-B) ---------------------------------
  /// Namespace collection: "may take up to 100 ms" (§I). Mean cost:
  Time namespaces_collect = nlc::milliseconds(92);
  /// Control groups, via cgroupfs text interfaces.
  Time cgroups_collect = nlc::milliseconds(24);
  /// Mount points (/proc/pid/mountinfo parse) per entry.
  Time mounts_collect_base = nlc::milliseconds(8);
  Time mounts_per_entry = nlc::microseconds(120);
  /// Device files.
  Time devices_collect = nlc::milliseconds(4);
  /// stat() per memory-mapped file (§V cause 1): dynamically linked
  /// libraries make this a large set.
  Time stat_per_mmap_file = nlc::microseconds(280);
  /// Reading the cached copy instead (§V-B): one version compare.
  Time infrequent_cache_check = nlc::microseconds(15);

  // ---- File-system cache (fgetfc, §III) -----------------------------------
  Time fgetfc_base = nlc::microseconds(150);
  Time fgetfc_per_page = nlc::microseconds_f(1.1);
  /// What flushing to a NAS per epoch would cost instead (stock CRIU
  /// behaviour, "hundreds of milliseconds", §III) — used by the ablation.
  Time nas_flush_base = nlc::milliseconds(40);
  Time nas_flush_per_page = nlc::microseconds(25);

  // ---- Restore side (§VII-B, Table II) ------------------------------------
  // Calibrated against Table II: Net restore = 218 ms with ~107 ms elapsing
  // before the sockets are live (so TCP retransmission at +200 ms from
  // socket restore overlaps all but 54 ms of the remaining work), and the
  // Redis-vs-Net delta (+96 ms restore, +65 ms of it before sockets) pins
  // the per-page split between the content-write pass (before sockets,
  // during process recreation) and the finalize/remap pass (after).
  Time restore_namespaces = nlc::milliseconds(52);
  Time restore_cgroups = nlc::milliseconds(14);
  Time restore_mounts_base = nlc::milliseconds(18);
  Time restore_per_mount = nlc::microseconds(400);
  Time restore_per_device = nlc::microseconds(200);
  Time restore_per_process = nlc::milliseconds(9);
  Time restore_per_thread = nlc::microseconds(350);
  Time restore_per_fd = nlc::microseconds(6);
  Time restore_per_socket = nlc::microseconds(180);
  Time restore_per_mmap_file = nlc::microseconds(300);
  /// Memory content write during process recreation (pre-socket pass).
  Time restore_page_write = nlc::microseconds_f(2.6);
  /// Remap/mprotect finalize pass (post-socket).
  Time restore_page_finalize = nlc::microseconds_f(1.3);
  /// Cgroup reattachment, mount finalization, thaw of restored processes.
  Time restore_finalize_base = nlc::milliseconds(109);
  Time restore_fs_cache_per_page = nlc::microseconds_f(2.0);
  /// Image materialization from buffered epoch deltas before restore.
  Time image_build_base = nlc::milliseconds(11);
  Time image_build_per_mb = nlc::microseconds(210);

  // ---- State shipping (§V-A proxy removal, §V-D staging buffer) -----------
  /// Synchronous user-space TCP send of the state while the container is
  /// still paused (no staging buffer): syscall + copy cost per MiB on top
  /// of wire serialization (~350 MB/s effective).
  Time sync_send_per_mb = nlc::milliseconds_f(2.2);
  /// Stock CRIU page-server proxies at both ends: two extra full copies of
  /// the state per transfer (§V-A).
  Time proxy_copy_per_mb = nlc::milliseconds_f(1.1);
  /// Staged shipping out of the staging buffer overlaps execution and is
  /// effectively zero-copy (sendfile-style); only queueing syscalls remain.
  Time staged_send_per_mb = nlc::microseconds(250);
  /// XOR + run-length delta encoding of one 4 KiB dirty page against its
  /// last shipped version (extension): two streaming reads + one write at
  /// memory bandwidth, ~0.6 us/page on the paper's hosts.
  Time delta_compress_per_page = nlc::microseconds_f(0.6);

  // ---- Network plumbing (§V-C, Table II) -----------------------------------
  /// iptables rule install + remove per epoch (stock input blocking).
  Time firewall_block_cost = nlc::milliseconds_f(3.5);
  Time firewall_unblock_cost = nlc::milliseconds_f(3.5);
  /// sch_plug-based buffering instead: 43 us per epoch (§V-C).
  Time plug_block_cost = nlc::microseconds(43);
  /// Gratuitous ARP broadcast + switch update (Table II: 28 ms).
  Time gratuitous_arp = nlc::milliseconds(28);
  /// Residual recovery actions (Table II "Others": 7 ms).
  Time recovery_misc = nlc::milliseconds(7);
};

/// Backup-side processing costs (page-store insertion, chunked reads).
struct BackupCosts {
  /// Fixed receive-side processing per epoch (socket wakeups, staging
  /// buffer setup, header parse) before the per-chunk reads.
  Time recv_base = nlc::microseconds(1200);
  /// Radix page store: 4 node visits per page.
  Time pagestore_per_visit = nlc::nanoseconds(350);
  /// read() syscall per arriving state chunk (Table V discussion: finer
  /// granularity => more reads => more backup CPU).
  Time read_per_chunk = nlc::microseconds_f(2.2);
  /// Applying a buffered epoch to the committed store, per page.
  Time commit_per_page = nlc::microseconds_f(0.9);
  /// Reconstructing a delta-compressed page against the committed version
  /// while folding the epoch (extension; decode is one streaming pass).
  Time delta_fold_per_page = nlc::microseconds_f(0.4);
};

}  // namespace nlc::criu
