// Checkpoint image format.
//
// CRIU on disk uses one protobuf image file per state type; here an image
// is a typed in-memory record set with explicit wire sizes, which is what
// the replication path needs (the backup buffers images, it never parses
// files). The split into `InfrequentState` and the per-epoch delta mirrors
// NiLiCon's state cache (§V-B): the infrequent part is either freshly
// harvested or replayed from the cache.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/address_space.hpp"
#include "kernel/container.hpp"
#include "kernel/fs.hpp"
#include "kernel/ids.hpp"
#include "kernel/process.hpp"
#include "net/tcp.hpp"
#include "util/bytes.hpp"

namespace nlc::criu {

struct PageRecord {
  kern::PageNum page = 0;
  std::uint64_t version = 0;
  /// Shared immutable payload for content pages; null for accounting pages
  /// (which ship size without bytes). Copying a PageRecord bumps a refcount
  /// instead of duplicating 4 KiB — copy-on-write in the address space
  /// keeps the bytes frozen while any pipeline stage holds the handle.
  kern::PagePayload content;
  /// Modeled bytes this page occupies on the replication wire. kPageSize
  /// unless the delta-compression stage (criu/delta.hpp) shrank it.
  std::uint32_t wire_size = static_cast<std::uint32_t>(nlc::kPageSize);

  bool has_content() const { return content != nullptr; }
};

struct ThreadRecord {
  kern::Tid tid = 0;
  kern::Registers regs;
  std::uint64_t sigmask = 0;
  kern::SchedPolicy policy = kern::SchedPolicy::kOther;
  int priority = 0;
};

struct SocketRecord {
  kern::Pid pid = 0;     // owning process
  kern::Fd fd = 0;       // fd slot to rewire on restore
  net::TcpRepairState repair;
};

struct ListenerRecord {
  kern::Pid pid = 0;
  kern::Fd fd = 0;
  net::Endpoint local;
};

struct ProcessRecord {
  kern::Pid pid = 0;
  std::string comm;
  std::uint64_t sigmask = 0;
  std::vector<ThreadRecord> threads;
  std::vector<kern::Vma> vmas;
  /// Non-socket fds (files, pipes, devices). Sockets ship separately.
  std::map<kern::Fd, kern::FdEntry> plain_fds;
};

/// The infrequently-modified in-kernel state (§V-B): control groups,
/// namespaces, mount points, device files, memory-mapped files.
struct InfrequentState {
  std::vector<kern::Namespace> namespaces;
  kern::CgroupConfig cgroup;
  std::vector<kern::Mount> mounts;
  std::vector<kern::DeviceFile> devices;
  std::vector<std::string> mmap_files;
  /// Version stamp at harvest time; the cache compares this.
  std::uint64_t version = 0;

  std::uint64_t byte_size() const {
    std::uint64_t n = 256;  // cgroup + header
    n += namespaces.size() * 64;
    for (const auto& ns : namespaces) n += ns.config_bytes;
    n += mounts.size() * 96;
    n += devices.size() * 48;
    n += mmap_files.size() * 72;
    return n;
  }
};

/// One epoch's checkpoint: the full container delta NiLiCon ships.
struct CheckpointImage {
  std::uint64_t epoch = 0;
  kern::ContainerId container = kern::kNoContainer;
  std::string container_name;
  std::uint64_t service_ip = 0;
  std::uint64_t net_ns_id = 0;
  /// True when `pages` holds every mapped page (epoch 0), not a delta.
  bool full = false;

  InfrequentState infrequent;
  std::vector<ProcessRecord> processes;
  std::vector<SocketRecord> sockets;
  std::vector<ListenerRecord> listeners;
  kern::DncHarvest fs_cache;
  std::vector<PageRecord> pages;

  std::uint64_t dirty_page_count() const { return pages.size(); }

  /// Modeled wire bytes of the page section (sum of per-record wire sizes;
  /// pages.size() * kPageSize when delta compression is off).
  std::uint64_t page_wire_bytes() const {
    std::uint64_t n = 0;
    for (const PageRecord& p : pages) n += p.wire_size;
    return n;
  }

  std::uint64_t socket_bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : sockets) n += s.repair.byte_size();
    n += listeners.size() * 32;
    return n;
  }

  std::uint64_t process_bytes() const {
    std::uint64_t n = 0;
    for (const auto& p : processes) {
      n += 160 + p.threads.size() * 224 + p.vmas.size() * 64 +
           p.plain_fds.size() * 40;
    }
    return n;
  }

  /// Bytes on the replication wire.
  std::uint64_t byte_size() const {
    return 128 + infrequent.byte_size() + process_bytes() + socket_bytes() +
           fs_cache.byte_size() + page_wire_bytes();
  }
};

}  // namespace nlc::criu
