#include "criu/serialize.hpp"

#include <algorithm>
#include <cstring>

#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

namespace {

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void b(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void bytes(std::span<const std::byte> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  /// Reserves a 32-bit length slot; returns its position.
  std::size_t begin_section() {
    u32(0);
    return buf_.size();
  }
  /// Patches the slot with the bytes written since begin_section().
  void end_section(std::size_t mark) {
    auto len = static_cast<std::uint32_t>(buf_.size() - mark);
    std::memcpy(buf_.data() + mark - 4, &len, 4);
  }

  /// Splices a chunk buffer produced by another Writer (sharded pages
  /// section; concatenation in chunk order reproduces the serial bytes).
  void append(const std::vector<std::byte>& v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> d) : data_(d) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  bool b() { return u8() != 0; }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::byte> bytes() {
    std::uint32_t n = u32();
    need(n);
    std::vector<std::byte> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  /// Reads a section length and returns the position where it must end.
  std::size_t begin_section() {
    std::uint32_t n = u32();
    need(n);
    return pos_ + n;
  }
  void end_section(std::size_t expected_end) {
    NLC_CHECK_MSG(pos_ == expected_end, "image section framing corrupt");
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) {
    NLC_CHECK_MSG(pos_ + n <= data_.size(), "image truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

void put_repair(Writer& w, const net::TcpRepairState& r) {
  w.u32(r.local.ip);
  w.u16(r.local.port);
  w.u32(r.remote.ip);
  w.u16(r.remote.port);
  w.u64(r.snd_una);
  w.u64(r.snd_nxt);
  w.u64(r.rcv_nxt);
  w.b(r.peer_fin);
  auto put_queue = [&w](const std::vector<net::Segment>& q) {
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (const net::Segment& s : q) {
      w.u64(s.seq);
      w.u32(s.len);
      w.u64(s.tag);
      if (s.payload) {
        w.b(true);
        w.bytes(*s.payload);
      } else {
        w.b(false);
      }
    }
  };
  put_queue(r.write_queue);
  put_queue(r.read_queue);
}

net::TcpRepairState get_repair(Reader& rd) {
  net::TcpRepairState r;
  r.local.ip = rd.u32();
  r.local.port = rd.u16();
  r.remote.ip = rd.u32();
  r.remote.port = rd.u16();
  r.snd_una = rd.u64();
  r.snd_nxt = rd.u64();
  r.rcv_nxt = rd.u64();
  r.peer_fin = rd.b();
  auto get_queue = [&rd](std::vector<net::Segment>& q) {
    std::uint32_t n = rd.u32();
    q.resize(n);
    for (net::Segment& s : q) {
      s.seq = rd.u64();
      s.len = rd.u32();
      s.tag = rd.u64();
      if (rd.b()) {
        s.payload =
            std::make_shared<const std::vector<std::byte>>(rd.bytes());
      }
    }
  };
  get_queue(r.write_queue);
  get_queue(r.read_queue);
  return r;
}

void put_vma(Writer& w, const kern::Vma& v) {
  w.u64(v.id);
  w.u64(v.start);
  w.u64(v.npages);
  w.u8(static_cast<std::uint8_t>(v.kind));
  w.str(v.backing_file);
  w.u64(v.version);
}

kern::Vma get_vma(Reader& rd) {
  kern::Vma v;
  v.id = rd.u64();
  v.start = rd.u64();
  v.npages = rd.u64();
  v.kind = static_cast<kern::VmaKind>(rd.u8());
  v.backing_file = rd.str();
  v.version = rd.u64();
  return v;
}

void put_page(Writer& w, const PageRecord& p) {
  w.u64(p.page);
  w.u64(p.version);
  w.u32(p.wire_size);
  if (p.has_content()) {
    w.b(true);
    w.bytes(*p.content);
  } else {
    w.b(false);
  }
}

}  // namespace

std::vector<std::byte> serialize_image(const CheckpointImage& img) {
  return serialize_image(img, 1, nullptr);
}

std::vector<std::byte> serialize_image(const CheckpointImage& img, int shards,
                                       util::WorkerPool* pool) {
  Writer w;
  w.u32(kImageMagic);
  w.u16(kImageVersion);
  w.u64(img.epoch);
  w.u32(static_cast<std::uint32_t>(img.container));
  w.str(img.container_name);
  w.u64(img.service_ip);
  w.u64(img.net_ns_id);
  w.b(img.full);

  // --- infrequent state ----------------------------------------------------
  std::size_t sec = w.begin_section();
  w.u32(static_cast<std::uint32_t>(img.infrequent.namespaces.size()));
  for (const kern::Namespace& ns : img.infrequent.namespaces) {
    w.u8(static_cast<std::uint8_t>(ns.type));
    w.u64(ns.ns_id);
    w.u64(ns.config_bytes);
    w.u64(ns.version);
  }
  w.str(img.infrequent.cgroup.path);
  w.u64(img.infrequent.cgroup.cpu_quota_us);
  w.u64(img.infrequent.cgroup.mem_limit_bytes);
  w.u64(img.infrequent.cgroup.version);
  w.u32(static_cast<std::uint32_t>(img.infrequent.mounts.size()));
  for (const kern::Mount& m : img.infrequent.mounts) {
    w.str(m.source);
    w.str(m.target);
    w.str(m.fstype);
    w.u64(m.flags);
  }
  w.u32(static_cast<std::uint32_t>(img.infrequent.devices.size()));
  for (const kern::DeviceFile& d : img.infrequent.devices) {
    w.str(d.path);
    w.u32(d.major);
    w.u32(d.minor);
  }
  w.u32(static_cast<std::uint32_t>(img.infrequent.mmap_files.size()));
  for (const std::string& f : img.infrequent.mmap_files) w.str(f);
  w.u64(img.infrequent.version);
  w.end_section(sec);

  // --- processes ------------------------------------------------------------
  sec = w.begin_section();
  w.u32(static_cast<std::uint32_t>(img.processes.size()));
  for (const ProcessRecord& p : img.processes) {
    w.u32(static_cast<std::uint32_t>(p.pid));
    w.str(p.comm);
    w.u64(p.sigmask);
    w.u32(static_cast<std::uint32_t>(p.threads.size()));
    for (const ThreadRecord& t : p.threads) {
      w.u32(static_cast<std::uint32_t>(t.tid));
      for (std::uint64_t g : t.regs.gpr) w.u64(g);
      w.u64(t.regs.rip);
      w.u64(t.regs.rsp);
      w.u64(t.sigmask);
      w.u8(static_cast<std::uint8_t>(t.policy));
      w.u32(static_cast<std::uint32_t>(t.priority));
    }
    w.u32(static_cast<std::uint32_t>(p.vmas.size()));
    for (const kern::Vma& v : p.vmas) put_vma(w, v);
    w.u32(static_cast<std::uint32_t>(p.plain_fds.size()));
    for (const auto& [fd, e] : p.plain_fds) {
      w.u32(static_cast<std::uint32_t>(fd));
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u64(e.inode);
      w.u64(e.offset);
      w.u64(e.socket);
      w.str(e.device);
      w.u32(e.flags);
    }
  }
  w.end_section(sec);

  // --- sockets & listeners ---------------------------------------------------
  sec = w.begin_section();
  w.u32(static_cast<std::uint32_t>(img.sockets.size()));
  for (const SocketRecord& s : img.sockets) {
    w.u32(static_cast<std::uint32_t>(s.pid));
    w.u32(static_cast<std::uint32_t>(s.fd));
    put_repair(w, s.repair);
  }
  w.u32(static_cast<std::uint32_t>(img.listeners.size()));
  for (const ListenerRecord& l : img.listeners) {
    w.u32(static_cast<std::uint32_t>(l.pid));
    w.u32(static_cast<std::uint32_t>(l.fd));
    w.u32(l.local.ip);
    w.u16(l.local.port);
  }
  w.end_section(sec);

  // --- fs cache ---------------------------------------------------------------
  sec = w.begin_section();
  w.u32(static_cast<std::uint32_t>(img.fs_cache.inodes.size()));
  for (const kern::DncInodeEntry& ie : img.fs_cache.inodes) {
    w.u64(ie.attr.ino);
    w.str(ie.attr.path);
    w.u64(ie.attr.size);
    w.u32(ie.attr.mode);
    w.u32(ie.attr.uid);
    w.u32(ie.attr.gid);
    w.u64(ie.attr.mtime_ns);
  }
  w.u32(static_cast<std::uint32_t>(img.fs_cache.pages.size()));
  for (const kern::DncPageEntry& pe : img.fs_cache.pages) {
    w.u64(pe.ino);
    w.u64(pe.page_index);
    w.bytes(pe.data);
  }
  w.end_section(sec);

  // --- pages -------------------------------------------------------------------
  sec = w.begin_section();
  w.u32(static_cast<std::uint32_t>(img.pages.size()));
  if (shards <= 1 || img.pages.size() < 2) {
    for (const PageRecord& p : img.pages) put_page(w, p);
  } else {
    std::size_t n = img.pages.size();
    std::size_t nchunks =
        std::min<std::size_t>(static_cast<std::size_t>(shards), n);
    std::vector<std::vector<std::byte>> parts(nchunks);
    auto emit = [&](std::size_t c) {
      std::size_t lo = n * c / nchunks;
      std::size_t hi = n * (c + 1) / nchunks;
      Writer pw;
      for (std::size_t i = lo; i < hi; ++i) put_page(pw, img.pages[i]);
      parts[c] = pw.take();
    };
    if (pool != nullptr) {
      pool->run(nchunks, emit);
    } else {
      for (std::size_t c = 0; c < nchunks; ++c) emit(c);
    }
    for (const auto& part : parts) w.append(part);
  }
  w.end_section(sec);

  return w.take();
}

CheckpointImage deserialize_image(std::span<const std::byte> data) {
  Reader rd(data);
  NLC_CHECK_MSG(rd.u32() == kImageMagic, "bad image magic");
  NLC_CHECK_MSG(rd.u16() == kImageVersion, "unsupported image version");

  CheckpointImage img;
  img.epoch = rd.u64();
  img.container = static_cast<kern::ContainerId>(rd.u32());
  img.container_name = rd.str();
  img.service_ip = rd.u64();
  img.net_ns_id = rd.u64();
  img.full = rd.b();

  std::size_t end = rd.begin_section();
  {
    std::uint32_t n = rd.u32();
    img.infrequent.namespaces.resize(n);
    for (kern::Namespace& ns : img.infrequent.namespaces) {
      ns.type = static_cast<kern::NamespaceType>(rd.u8());
      ns.ns_id = rd.u64();
      ns.config_bytes = rd.u64();
      ns.version = rd.u64();
    }
    img.infrequent.cgroup.path = rd.str();
    img.infrequent.cgroup.cpu_quota_us = rd.u64();
    img.infrequent.cgroup.mem_limit_bytes = rd.u64();
    img.infrequent.cgroup.version = rd.u64();
    img.infrequent.mounts.resize(rd.u32());
    for (kern::Mount& m : img.infrequent.mounts) {
      m.source = rd.str();
      m.target = rd.str();
      m.fstype = rd.str();
      m.flags = rd.u64();
    }
    img.infrequent.devices.resize(rd.u32());
    for (kern::DeviceFile& d : img.infrequent.devices) {
      d.path = rd.str();
      d.major = rd.u32();
      d.minor = rd.u32();
    }
    img.infrequent.mmap_files.resize(rd.u32());
    for (std::string& f : img.infrequent.mmap_files) f = rd.str();
    img.infrequent.version = rd.u64();
  }
  rd.end_section(end);

  end = rd.begin_section();
  {
    img.processes.resize(rd.u32());
    for (ProcessRecord& p : img.processes) {
      p.pid = static_cast<kern::Pid>(rd.u32());
      p.comm = rd.str();
      p.sigmask = rd.u64();
      p.threads.resize(rd.u32());
      for (ThreadRecord& t : p.threads) {
        t.tid = static_cast<kern::Tid>(rd.u32());
        for (std::uint64_t& g : t.regs.gpr) g = rd.u64();
        t.regs.rip = rd.u64();
        t.regs.rsp = rd.u64();
        t.sigmask = rd.u64();
        t.policy = static_cast<kern::SchedPolicy>(rd.u8());
        t.priority = static_cast<int>(rd.u32());
      }
      std::uint32_t nvma = rd.u32();
      p.vmas.reserve(nvma);
      for (std::uint32_t i = 0; i < nvma; ++i) p.vmas.push_back(get_vma(rd));
      std::uint32_t nfd = rd.u32();
      for (std::uint32_t i = 0; i < nfd; ++i) {
        auto fd = static_cast<kern::Fd>(rd.u32());
        kern::FdEntry e;
        e.kind = static_cast<kern::FdKind>(rd.u8());
        e.inode = rd.u64();
        e.offset = rd.u64();
        e.socket = rd.u64();
        e.device = rd.str();
        e.flags = rd.u32();
        p.plain_fds[fd] = e;
      }
    }
  }
  rd.end_section(end);

  end = rd.begin_section();
  {
    img.sockets.resize(rd.u32());
    for (SocketRecord& s : img.sockets) {
      s.pid = static_cast<kern::Pid>(rd.u32());
      s.fd = static_cast<kern::Fd>(rd.u32());
      s.repair = get_repair(rd);
    }
    img.listeners.resize(rd.u32());
    for (ListenerRecord& l : img.listeners) {
      l.pid = static_cast<kern::Pid>(rd.u32());
      l.fd = static_cast<kern::Fd>(rd.u32());
      l.local.ip = rd.u32();
      l.local.port = rd.u16();
    }
  }
  rd.end_section(end);

  end = rd.begin_section();
  {
    img.fs_cache.inodes.resize(rd.u32());
    for (kern::DncInodeEntry& ie : img.fs_cache.inodes) {
      ie.attr.ino = rd.u64();
      ie.attr.path = rd.str();
      ie.attr.size = rd.u64();
      ie.attr.mode = rd.u32();
      ie.attr.uid = rd.u32();
      ie.attr.gid = rd.u32();
      ie.attr.mtime_ns = rd.u64();
    }
    img.fs_cache.pages.resize(rd.u32());
    for (kern::DncPageEntry& pe : img.fs_cache.pages) {
      pe.ino = rd.u64();
      pe.page_index = rd.u64();
      pe.data = rd.bytes();
    }
  }
  rd.end_section(end);

  end = rd.begin_section();
  {
    img.pages.resize(rd.u32());
    for (PageRecord& p : img.pages) {
      p.page = rd.u64();
      p.version = rd.u64();
      p.wire_size = rd.u32();
      if (rd.b()) {
        const std::vector<std::byte> raw = rd.bytes();
        p.content =
            util::arena_make_shared<kern::PageBytes>(raw.begin(), raw.end());
      }
    }
  }
  rd.end_section(end);
  NLC_CHECK_MSG(rd.exhausted(), "trailing bytes after image");
  return img;
}

}  // namespace nlc::criu
