// Checkpoint (state-harvest) engine: CRIU's dump path over the simulated
// kernel.
//
// harvest() is a pure state collection that must run while the container is
// frozen; it returns both the image and a cost breakdown. The caller (the
// primary agent) charges the cost as simulated stop time — exactly which
// components land in the stop path depends on the agent's optimization
// flags (staging buffer, cached infrequent state, ...), so the engine
// reports components separately instead of sleeping itself.
#pragma once

#include <optional>

#include "criu/costs.hpp"
#include "criu/image.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"

namespace nlc::util {
class WorkerPool;
}

namespace nlc::criu {

struct HarvestOptions {
  /// Incremental: dirty pages only (soft-dirty). Full: every mapped page.
  bool incremental = true;
  /// §V-D(1): VMA discovery via task-diag netlink instead of /proc/smaps.
  bool vma_via_netlink = true;
  /// §V-D(3): page content leaves the parasite via shared memory, not pipe.
  bool pages_via_shared_memory = true;
  /// §III: harvest the file-system cache via DNC/fgetfc. When false, model
  /// stock CRIU's flush-to-NAS cost instead.
  bool fs_cache_via_dnc = true;
  /// DESIGN.md §10: fan the page-record fill out over contiguous chunks.
  /// shards <= 1 keeps the serial fill; the image is byte-identical either
  /// way. `pool` may be null (inline chunk loop).
  int shards = 1;
  util::WorkerPool* pool = nullptr;
};

struct HarvestBreakdown {
  Time threads = 0;      // per-thread register/sigmask/sched state
  Time processes = 0;    // fd tables, /proc walks, parasite setup
  Time sockets = 0;      // TCP repair dumps
  Time vmas = 0;         // smaps or netlink
  Time pagemap = 0;      // dirty-page discovery
  Time infrequent = 0;   // namespaces/cgroups/mounts/devices/mmap stats
  Time fs_cache = 0;     // fgetfc (or NAS flush in the ablation)
  Time page_copy = 0;    // parasite -> staging copy (+ pipe overhead)
  Time misc = 0;         // parasite injection, image bookkeeping

  Time total() const {
    return threads + processes + sockets + vmas + pagemap + infrequent +
           fs_cache + page_copy + misc;
  }
};

struct HarvestResult {
  CheckpointImage image;
  HarvestBreakdown cost;
  /// Content pages whose payload was handed over as a shared handle (each
  /// one a 4 KiB deep copy avoided versus the copying pipeline).
  std::uint64_t content_pages = 0;
};

class CheckpointEngine {
 public:
  CheckpointEngine(kern::Kernel& k, net::TcpStack& tcp,
                   KernelInterfaceCosts costs = {})
      : kernel_(&k), tcp_(&tcp), costs_(costs) {}

  /// Harvests the container delta for `epoch`. `cached_infrequent`, when
  /// non-null and version-current, is replayed into the image instead of a
  /// fresh (expensive) harvest — the §V-B optimization. Clears soft-dirty
  /// bits and DNC bits as a side effect (they are "checkpointed" now).
  HarvestResult harvest(kern::ContainerId cid, std::uint64_t epoch,
                        const InfrequentState* cached_infrequent,
                        const HarvestOptions& opts);

  /// Harvests only the infrequently-modified components (used to populate
  /// the state cache initially and after an invalidation).
  InfrequentState harvest_infrequent(kern::ContainerId cid,
                                     Time* cost_out = nullptr) const;

  const KernelInterfaceCosts& costs() const { return costs_; }

 private:
  kern::Kernel* kernel_;
  net::TcpStack* tcp_;
  KernelInterfaceCosts costs_;
};

}  // namespace nlc::criu
