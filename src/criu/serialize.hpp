// Binary serialization of checkpoint images — the on-the-wire / on-disk
// format (CRIU's equivalent of its protobuf image files).
//
// The replication fast path keeps images as in-memory records (the backup
// buffers them, it never re-parses), but recovery materializes image files
// before `criu restore` consumes them (§IV), and cold migration ships them
// across machines. This module provides that format: a little-endian TLV
// layout with a magic/version header and per-section length framing, so a
// truncated or corrupted image is detected rather than half-applied.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "criu/image.hpp"

namespace nlc::util {
class WorkerPool;
}

namespace nlc::criu {

inline constexpr std::uint32_t kImageMagic = 0x4E4C4349;  // "NLCI"
inline constexpr std::uint16_t kImageVersion = 2;  // v2: per-page wire_size

/// Serializes `img` into a self-contained byte buffer.
std::vector<std::byte> serialize_image(const CheckpointImage& img);

/// Sharded variant (DESIGN.md §10): the pages section — the bulk of the
/// buffer — is emitted per contiguous chunk on the pool and concatenated
/// in chunk order, so the output is byte-identical to serialize_image(img)
/// for any shard count. `pool` may be null (inline chunk loop).
std::vector<std::byte> serialize_image(const CheckpointImage& img, int shards,
                                       util::WorkerPool* pool);

/// Parses a buffer produced by serialize_image. Throws InvariantError on
/// magic/version mismatch, truncation, or framing corruption.
CheckpointImage deserialize_image(std::span<const std::byte> data);

}  // namespace nlc::criu
