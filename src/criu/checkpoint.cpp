#include "criu/checkpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/simd.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

namespace {

/// Distance (in entries) the harvest fill prefetches ahead of itself: far
/// enough to cover a memory round trip at ~8 entries of fill work, near
/// enough that the line is still resident when reached.
constexpr std::size_t kFillPrefetch = 8;

/// Fills pages[base .. base+n) from an index-addressable source. Each slot
/// depends only on its own source entry, so contiguous chunks writing
/// disjoint slots reproduce the serial image byte for byte (DESIGN.md
/// §10); the content-page count folds per chunk in chunk order. Returns
/// the number of content pages filled.
template <typename FillOne>
std::uint64_t fill_page_records(std::vector<PageRecord>& pages,
                                std::size_t base, std::size_t n, int shards,
                                util::WorkerPool* pool, FillOne fill_one) {
  pages.resize(base + n);
  if (shards <= 1 || n < 2) {
    std::uint64_t content = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (fill_one(i, pages[base + i])) ++content;
    }
    return content;
  }
  std::size_t nchunks =
      std::min<std::size_t>(static_cast<std::size_t>(shards), n);
  std::vector<std::uint64_t> per(nchunks, 0);
  auto chunk = [&](std::size_t c) {
    std::size_t lo = n * c / nchunks;
    std::size_t hi = n * (c + 1) / nchunks;
    std::uint64_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (fill_one(i, pages[base + i])) ++count;
    }
    per[c] = count;
  };
  if (pool != nullptr) {
    pool->run(nchunks, chunk);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) chunk(c);
  }
  std::uint64_t content = 0;
  for (std::uint64_t v : per) content += v;
  return content;
}

}  // namespace

InfrequentState CheckpointEngine::harvest_infrequent(kern::ContainerId cid,
                                                     Time* cost_out) const {
  const kern::Container* c = kernel_->container(cid);
  NLC_CHECK_MSG(c != nullptr, "harvest of unknown container");

  InfrequentState st;
  st.namespaces = c->namespaces();
  st.cgroup = c->cgroup();
  st.mounts = c->mounts();
  st.devices = c->devices();
  for (const kern::Process* p : kernel_->container_processes(cid)) {
    for (const kern::Vma& v : p->mm().vmas()) {
      if (v.kind == kern::VmaKind::kFileMap) {
        st.mmap_files.push_back(v.backing_file);
      }
    }
  }
  st.version = c->infrequent_state_version();

  if (cost_out != nullptr) {
    Time t = costs_.namespaces_collect + costs_.cgroups_collect +
             costs_.devices_collect + costs_.mounts_collect_base;
    t += static_cast<Time>(st.mounts.size()) * costs_.mounts_per_entry;
    t += static_cast<Time>(st.mmap_files.size()) * costs_.stat_per_mmap_file;
    *cost_out = t;
  }
  return st;
}

HarvestResult CheckpointEngine::harvest(kern::ContainerId cid,
                                        std::uint64_t epoch,
                                        const InfrequentState* cached,
                                        const HarvestOptions& opts) {
  kern::Container* c = kernel_->container(cid);
  NLC_CHECK_MSG(c != nullptr, "harvest of unknown container");
  NLC_CHECK_MSG(c->frozen(), "harvest requires a frozen container");

  HarvestResult r;
  CheckpointImage& img = r.image;
  HarvestBreakdown& cost = r.cost;
  img.epoch = epoch;
  img.container = cid;
  img.container_name = c->name();
  img.service_ip = c->service_ip();
  img.net_ns_id = c->net_ns_id();
  img.full = !opts.incremental;

  // ---- Infrequently-modified state (§V-B) --------------------------------
  if (cached != nullptr && cached->version == c->infrequent_state_version()) {
    img.infrequent = *cached;
    cost.infrequent = costs_.infrequent_cache_check;
  } else {
    Time t = 0;
    img.infrequent = harvest_infrequent(cid, &t);
    cost.infrequent = t;
  }

  // ---- Processes, threads, VMAs, fds, sockets ----------------------------
  auto procs = kernel_->container_processes(cid);
  cost.processes = costs_.process_state_base +
                   static_cast<Time>(procs.size()) *
                       costs_.process_state_per_proc;
  std::uint64_t thread_count = 0;
  std::uint64_t fd_count = 0;
  std::uint64_t vma_count = 0;

  for (kern::Process* p : procs) {
    ProcessRecord pr;
    pr.pid = p->pid();
    pr.comm = p->comm;
    pr.sigmask = p->sigmask;
    for (const kern::Thread& t : p->threads()) {
      pr.threads.push_back(ThreadRecord{t.tid, t.regs, t.sigmask, t.policy,
                                        t.priority});
      ++thread_count;
    }
    pr.vmas = p->mm().vmas();
    vma_count += pr.vmas.size();

    for (const auto& [fd, entry] : p->fds()) {
      ++fd_count;
      if (entry.kind == kern::FdKind::kSocket && entry.socket != 0) {
        if (!tcp_->valid(entry.socket)) continue;  // stale entry
        if (tcp_->state(entry.socket) == net::TcpState::kEstablished) {
          SocketRecord sr;
          sr.pid = p->pid();
          sr.fd = fd;
          sr.repair = tcp_->repair_dump(entry.socket);
          img.sockets.push_back(std::move(sr));
        }
        continue;
      }
      pr.plain_fds[fd] = entry;
    }
    img.processes.push_back(std::move(pr));
  }

  // Listening sockets (bound to the container's service address).
  if (c->service_ip() != 0) {
    for (const net::Endpoint& ep : tcp_->listeners_on_ip(
             static_cast<net::IpAddr>(c->service_ip()))) {
      img.listeners.push_back(ListenerRecord{0, 0, ep});
    }
  }

  cost.threads = costs_.thread_state_base +
                 static_cast<Time>(thread_count) *
                     costs_.thread_state_per_thread;
  std::uint64_t socket_queue_bytes = 0;
  for (const SocketRecord& sr : img.sockets) {
    socket_queue_bytes += sr.repair.queue_bytes();
  }
  cost.sockets =
      img.sockets.empty()
          ? 0
          : costs_.socket_repair_base +
                static_cast<Time>(img.sockets.size()) *
                    costs_.socket_repair_per_socket +
                static_cast<Time>(
                    static_cast<double>(socket_queue_bytes) / 1024.0 *
                    static_cast<double>(costs_.socket_repair_per_kb));
  cost.misc = costs_.dump_misc;
  cost.processes += static_cast<Time>(fd_count) * costs_.per_fd;
  cost.vmas = static_cast<Time>(vma_count) *
              (opts.vma_via_netlink ? costs_.netlink_per_vma
                                    : costs_.smaps_per_vma);

  // ---- Memory pages -------------------------------------------------------
  // Payloads are handed over as shared immutable handles (one refcount bump
  // per content page); copy-on-write in the address space keeps the image
  // stable once the container thaws.
  std::uint64_t scanned_pages = 0;
  for (kern::Process* p : procs) {
    kern::AddressSpace& mm = p->mm();
    scanned_pages += mm.mapped_pages();
    const auto& states = mm.page_states();
    if (opts.incremental) {
      // The dirty list already carries (page, state*) pairs (DESIGN.md
      // §12): sorting the contiguous vector restores deterministic image
      // order, and the fill below is a linear scan with zero hash probes.
      std::vector<kern::AddressSpace::DirtyRef> dirty(
          mm.dirty_pages().begin(), mm.dirty_pages().end());
      std::sort(dirty.begin(), dirty.end(),
                [](const kern::AddressSpace::DirtyRef& a,
                   const kern::AddressSpace::DirtyRef& b) {
                  return a.page < b.page;
                });
      r.content_pages += fill_page_records(
          img.pages, img.pages.size(), dirty.size(), opts.shards, opts.pool,
          [&](std::size_t i, PageRecord& rec) {
            // Pull the page state a few entries ahead; the shared-handle
            // copy below is the first (otherwise cold) touch.
            if (i + kFillPrefetch < dirty.size()) {
              util::prefetch_read(dirty[i + kFillPrefetch].state);
            }
            const kern::AddressSpace::DirtyRef& d = dirty[i];
            rec.page = d.page;
            rec.version = d.state->version;
            rec.content = d.state->payload;
            return rec.has_content();
          });
    } else {
      // Full dump: only pages that were ever touched are present — anon
      // pages never written have no physical frame and CRIU does not dump
      // holes. Restored holes read as zeros either way. Walking the
      // resident map (instead of probing every page of every VMA) skips
      // holes for free and avoids a per-page hash lookup.
      std::vector<std::pair<kern::PageNum, const kern::AddressSpace::PageState*>>
          resident;
      resident.reserve(states.size());
      // NLC_LINT_OK(unordered-iter): hash-order collection; sorted below
      for (const auto& [pg, st] : states) resident.emplace_back(pg, &st);
      std::sort(resident.begin(), resident.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      r.content_pages += fill_page_records(
          img.pages, img.pages.size(), resident.size(), opts.shards,
          opts.pool, [&](std::size_t i, PageRecord& rec) {
            if (i + kFillPrefetch < resident.size()) {
              util::prefetch_read(resident[i + kFillPrefetch].second);
            }
            rec.page = resident[i].first;
            rec.version = resident[i].second->version;
            rec.content = resident[i].second->payload;
            return rec.has_content();
          });
    }
    // This checkpoint captured everything dirty: re-arm tracking.
    mm.clear_soft_dirty();
  }

  cost.pagemap = costs_.pagemap_scan_base +
                 static_cast<Time>(scanned_pages) *
                     costs_.pagemap_scan_per_page;
  Time per_page = costs_.page_copy_per_page;
  if (!opts.pages_via_shared_memory) per_page += costs_.pipe_transfer_per_page;
  cost.page_copy = static_cast<Time>(img.pages.size()) * per_page;

  // ---- File-system cache (§III) -------------------------------------------
  std::uint64_t dnc_pages = kernel_->fs().dnc_page_count();
  img.fs_cache = kernel_->fs().harvest_dnc();
  if (opts.fs_cache_via_dnc) {
    cost.fs_cache = costs_.fgetfc_base +
                    static_cast<Time>(dnc_pages) * costs_.fgetfc_per_page;
  } else {
    // Stock CRIU: flush the file-system cache to shared storage instead.
    cost.fs_cache = costs_.nas_flush_base +
                    static_cast<Time>(dnc_pages) * costs_.nas_flush_per_page;
  }

  return r;
}

}  // namespace nlc::criu
