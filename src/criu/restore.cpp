#include "criu/restore.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::criu {

sim::task<RestoreTimeline> RestoreEngine::restore(
    const CheckpointImage& img,
    const std::vector<const PageRecord*>& committed_pages,
    const kern::DncHarvest& committed_fs_cache, bool rto_fixed,
    bool ack_runahead) {
  sim::Simulation& sim = kernel_->simulation();
  RestoreTimeline tl;
  tl.started = sim.now();

  // ---- Stage 1: namespaces, cgroups, mounts, devices ----------------------
  // The network namespace comes up first; from namespaces_done onwards an
  // unblocked incoming packet would meet a namespace without sockets (the
  // §III RST hazard).
  Time stage1 = costs_.restore_namespaces + costs_.restore_cgroups +
                costs_.restore_mounts_base;
  stage1 += static_cast<Time>(img.infrequent.mounts.size()) *
            costs_.restore_per_mount;
  stage1 += static_cast<Time>(img.infrequent.devices.size()) *
            costs_.restore_per_device;
  co_await sim.sleep_for(stage1);

  kern::Container& c =
      kernel_->install_container(img.container, img.container_name);
  c.namespaces() = img.infrequent.namespaces;
  c.cgroup() = img.infrequent.cgroup;
  c.mounts() = img.infrequent.mounts;
  c.devices() = img.infrequent.devices;
  c.set_net_ns_id(img.net_ns_id);
  c.set_service_ip(img.service_ip);
  tl.namespaces_done = sim.now();

  // ---- Stage 2: processes, threads, address spaces, memory contents -------
  // CRIU writes memory contents while recreating each process, before the
  // sockets come back (the pre-socket pass pinned by Table II's TCP
  // overlap).
  Time stage2 = 0;
  std::uint64_t thread_count = 0, fd_count = 0;
  for (const ProcessRecord& pr : img.processes) {
    stage2 += costs_.restore_per_process;
    thread_count += pr.threads.size();
    fd_count += pr.plain_fds.size();
  }
  stage2 += static_cast<Time>(thread_count) * costs_.restore_per_thread;
  stage2 += static_cast<Time>(fd_count) * costs_.restore_per_fd;
  stage2 += static_cast<Time>(img.infrequent.mmap_files.size()) *
            costs_.restore_per_mmap_file;
  stage2 += static_cast<Time>(committed_pages.size()) *
            costs_.restore_page_write;
  co_await sim.sleep_for(stage2);

  for (const ProcessRecord& pr : img.processes) {
    kern::Process& p =
        kernel_->install_process(img.container, pr.pid, pr.comm);
    p.sigmask = pr.sigmask;
    for (const ThreadRecord& tr : pr.threads) {
      kern::Thread& t = p.add_thread(tr.tid);
      t.regs = tr.regs;
      t.sigmask = tr.sigmask;
      t.policy = tr.policy;
      t.priority = tr.priority;
    }
    for (const kern::Vma& v : pr.vmas) p.mm().install_vma(v);
    for (const auto& [fd, entry] : pr.plain_fds) p.install_fd_at(fd, entry);
  }

  // Place committed page contents into the recreated address spaces.
  {
    struct Range {
      kern::PageNum start, end;
      kern::Process* proc;
    };
    std::vector<Range> ranges;
    for (const ProcessRecord& pr : img.processes) {
      kern::Process* p = kernel_->process(pr.pid);
      for (const kern::Vma& v : p->mm().vmas()) {
        ranges.push_back(Range{v.start, v.end(), p});
      }
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const Range& a, const Range& b) {
                return a.start < b.start;
              });
    auto find_proc = [&](kern::PageNum pg) -> kern::Process* {
      auto it = std::upper_bound(
          ranges.begin(), ranges.end(), pg,
          [](kern::PageNum v, const Range& r) { return v < r.start; });
      if (it == ranges.begin()) return nullptr;
      --it;
      return (pg >= it->start && pg < it->end) ? it->proc : nullptr;
    };
    for (const PageRecord* rec : committed_pages) {
      kern::Process* p = find_proc(rec->page);
      if (p == nullptr) continue;  // page of a VMA unmapped before the crash
      if (rec->has_content()) {
        // Zero-copy: the restored address space adopts the committed
        // payload handle; COW protects the store's copy from later writes.
        p->mm().install_content(rec->page, rec->content);
      } else {
        p->mm().touch(rec->page);  // accounting page: versions only
      }
      ++tl.pages_restored;
    }
  }
  tl.processes_done = sim.now();

  // ---- Stage 3: sockets via repair mode ------------------------------------
  Time stage3 =
      static_cast<Time>(img.sockets.size() + img.listeners.size()) *
      costs_.restore_per_socket;
  co_await sim.sleep_for(stage3);

  for (const ListenerRecord& lr : img.listeners) {
    tcp_->listen(lr.local);
  }
  for (const SocketRecord& sr : img.sockets) {
    net::SocketId sid = tcp_->repair_restore(sr.repair, rto_fixed,
                                             ack_runahead);
    kern::Process* p = kernel_->process(sr.pid);
    NLC_CHECK_MSG(p != nullptr, "socket record for unknown process");
    kern::FdEntry e;
    e.kind = kern::FdKind::kSocket;
    e.socket = sid;
    p->install_fd_at(sr.fd, e);
    ++tl.sockets_restored;
  }
  tl.sockets_done = sim.now();

  // ---- Stage 4: finalize (remap pass, cgroup reattach, fs cache, thaw) ----
  Time stage4 = costs_.restore_finalize_base;
  stage4 += static_cast<Time>(committed_pages.size()) *
            costs_.restore_page_finalize;
  stage4 += static_cast<Time>(committed_fs_cache.pages.size()) *
            costs_.restore_fs_cache_per_page;
  co_await sim.sleep_for(stage4);

  kernel_->fs().apply_dnc(committed_fs_cache,
                          static_cast<std::uint64_t>(sim.now()));
  tl.fs_cache_pages_restored = committed_fs_cache.pages.size();
  tl.memory_done = sim.now();
  tl.finished = sim.now();
  co_return tl;
}

}  // namespace nlc::criu
