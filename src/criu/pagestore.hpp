// Backup-side committed-page stores.
//
// Stock CRIU keeps incremental checkpoints as a linked list of directories;
// for every received page it walks the list to find and drop a previous
// copy, so per-page cost grows with the number of checkpoints taken — fatal
// at one checkpoint every 30 ms. NiLiCon replaces this with a four-level
// radix tree mimicking hardware page tables (§V-A), making the per-page
// cost constant. Both are implemented for the Table I ablation; store()
// returns the number of node/directory visits so the backup agent can
// charge simulated time per visit.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <unordered_map>

#include "criu/image.hpp"
#include "criu/shard.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Opens a new incremental checkpoint (a new directory / generation).
  virtual void begin_checkpoint(std::uint64_t epoch) = 0;

  /// Inserts/overwrites one page; returns the number of structure visits
  /// performed (the unit the backup CPU cost model charges). Storing a
  /// record copies its shared payload handle, not the page bytes.
  virtual std::uint64_t store(const PageRecord& rec) = 0;

  /// Latest committed copy of `page`, or nullptr.
  virtual const PageRecord* lookup(kern::PageNum page) const = 0;

  /// Number of distinct pages held.
  virtual std::uint64_t page_count() const = 0;

  /// All pages (restore walks this to materialize memory images).
  virtual std::vector<const PageRecord*> all_pages() const = 0;
};

/// Stock CRIU: linked list of per-checkpoint directories.
class ListPageStore final : public PageStore {
 public:
  void begin_checkpoint(std::uint64_t epoch) override {
    dirs_.push_back(Dir{epoch, {}});
  }

  std::uint64_t store(const PageRecord& rec) override {
    NLC_CHECK_MSG(!dirs_.empty(), "store before begin_checkpoint");
    // Walk earlier checkpoint directories newest-first looking for the
    // previous copy of this page to drop. At most one earlier directory
    // can hold it (every store drops the older copy), so the walk stops
    // at the first hit: the O(#checkpoints) behaviour of §V-A remains for
    // pages not stored recently (the walk reaches the oldest directory),
    // while a page rewritten every checkpoint costs a constant 2 visits.
    std::uint64_t visits = 0;
    auto last = std::prev(dirs_.end());
    for (auto it = std::make_reverse_iterator(last); it != dirs_.rend();
         ++it) {
      ++visits;
      if (it->pages.erase(rec.page) > 0) break;
    }
    ++visits;
    last->pages[rec.page] = rec;
    return visits;
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) {
      auto p = it->pages.find(page);
      if (p != it->pages.end()) return &p->second;
    }
    return nullptr;
  }

  std::uint64_t page_count() const override {
    std::uint64_t n = 0;
    for (const auto& d : dirs_) n += d.pages.size();
    return n;
  }

  std::vector<const PageRecord*> all_pages() const override {
    std::vector<const PageRecord*> out;
    for (const auto& d : dirs_) {
      // NLC_LINT_OK(unordered-iter): hash-order collection; sorted below
      for (const auto& [num, rec] : d.pages) out.push_back(&rec);
    }
    // A page lives in at most one directory, so sorting by page number
    // yields one globally ascending walk — the same order RadixPageStore
    // produces — instead of leaking the hash order to restore and to every
    // store-equivalence mirror.
    std::sort(out.begin(), out.end(),
              [](const PageRecord* a, const PageRecord* b) {
                return a->page < b->page;
              });
    return out;
  }

  std::size_t checkpoint_count() const { return dirs_.size(); }

 private:
  struct Dir {
    std::uint64_t epoch;
    std::unordered_map<kern::PageNum, PageRecord> pages;
  };
  std::list<Dir> dirs_;
};

/// NiLiCon: four-level radix tree, 2^9 fan-out per level (like x86-64 page
/// tables); constant 4 modeled visits per store.
///
/// Sharded mode (shards > 1, DESIGN.md §10): the tree becomes a forest of
/// independent subtrees, one per page-number shard (shard_of). store() and
/// store_batch() only touch the owning shard's subtree and counters, so an
/// epoch fold fans out across the worker pool with no locks on the hot
/// path. Modeled visit accounting stays the paper's constant kLevels per
/// store for every shard count; internally each shard memoizes the leaf
/// directory of the last stored page, so folding a dense sorted range
/// resolves ~1 level per page instead of walking all 4.
///
/// Memory layout (DESIGN.md §12): nodes are 4-byte headers in one dense
/// per-shard vector; each node's 512 child/leaf slots are 32-bit indices in
/// one contiguous per-shard slot table (arena-backed), and the PageRecords
/// themselves live in a per-shard arena-backed deque — stable addresses for
/// lookup()/all_pages(), no per-page heap allocation anywhere, and a fold
/// or walk touches a handful of dense arrays instead of chasing 8 KiB
/// heap-scattered nodes.
class RadixPageStore final : public PageStore {
 public:
  explicit RadixPageStore(int shards = 1)
      : shards_(static_cast<std::size_t>(shards < 1 ? 1 : shards)) {
    for (Shard& sh : shards_) sh.root = new_node(sh);
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  void begin_checkpoint(std::uint64_t epoch) override { epoch_ = epoch; }

  std::uint64_t store(const PageRecord& rec) override {
    return store_into(shards_[shard_of(rec.page, shards())], rec);
  }

  /// Folds one epoch's records, fanning the per-shard work out on `pool`
  /// (null = inline shard loop). Produces exactly the state and modeled
  /// visit total that store()ing every record in image order would.
  std::uint64_t store_batch(const std::vector<PageRecord>& recs,
                            util::WorkerPool* pool) {
    if (shards() == 1 || recs.size() < 2) {
      std::uint64_t visits = 0;
      for (const PageRecord& r : recs) visits += store(r);
      return visits;
    }
    ShardPlan plan = ShardPlan::build(recs, shards());
    auto fold_one = [&](std::size_t s) {
      Shard& sh = shards_[s];
      const std::vector<std::uint32_t>& bucket = plan.buckets[s];
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        // The bucket is a contiguous index list, so the walk itself is a
        // linear scan; pull the next record (and its payload handle) while
        // this one folds.
        if (k + 1 < bucket.size()) {
          util::prefetch_read(&recs[bucket[k + 1]]);
        }
        store_into(sh, recs[bucket[k]]);
      }
    };
    if (pool != nullptr) {
      pool->run(shards_.size(), fold_one);
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) fold_one(s);
    }
    return kLevels * recs.size();
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    const Shard& sh = shards_[shard_of(page, shards())];
    std::uint32_t node = sh.root;
    for (int level = 3; level >= 1; --level) {
      node = sh.slot(sh.nodes[node].table, index_at(page, level));
      if (node == kNil) return nullptr;
    }
    const std::uint32_t rec = sh.slot(sh.nodes[node].table, index_at(page, 0));
    return rec == kNil ? nullptr : &sh.records[rec];
  }

  std::uint64_t page_count() const override {
    std::uint64_t n = 0;
    for (const Shard& sh : shards_) n += sh.count;
    return n;
  }

  std::vector<const PageRecord*> all_pages() const override {
    if (shards_.size() == 1) {
      std::vector<const PageRecord*> out;
      out.reserve(shards_[0].count);
      collect(shards_[0], shards_[0].root, 3, out);
      return out;
    }
    // Deterministic merge: each shard's walk is ascending by page number;
    // a k-way merge reproduces the globally ascending order a one-shard
    // tree yields, for any shard count.
    std::vector<std::vector<const PageRecord*>> per(shards_.size());
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      per[s].reserve(shards_[s].count);
      collect(shards_[s], shards_[s].root, 3, per[s]);
      total += per[s].size();
    }
    std::vector<const PageRecord*> out;
    out.reserve(total);
    std::vector<std::size_t> cur(per.size(), 0);
    while (out.size() < total) {
      std::size_t best = per.size();
      for (std::size_t s = 0; s < per.size(); ++s) {
        if (cur[s] == per[s].size()) continue;
        if (best == per.size() ||
            per[s][cur[s]]->page < per[best][cur[best]]->page) {
          best = s;
        }
      }
      out.push_back(per[best][cur[best]++]);
    }
    return out;
  }

  static constexpr std::uint64_t kLevels = 4;

 private:
  static constexpr std::uint64_t kBits = 9;
  static constexpr std::size_t kFanout = 1u << kBits;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Node header. The 512 child (interior) or record (leaf) slots are u32
  /// indices at offset table * kFanout of the owning shard's slot array —
  /// half the footprint of 64-bit pointers, and dense. The header itself
  /// must stay within one cache line (ISSUE 6 satellite).
  struct Node {
    std::uint32_t table = kNil;
  };
  static_assert(sizeof(Node) <= 64, "radix node header must fit a cache line");

  struct Shard {
    /// Dense node headers; element 0..root created at construction.
    std::vector<Node, util::ArenaAllocator<Node>> nodes;
    /// All slot tables, kFanout entries per node, arena-backed.
    std::vector<std::uint32_t, util::ArenaAllocator<std::uint32_t>> slots;
    /// Committed records; deque keeps addresses stable across growth while
    /// drawing its blocks from the arena.
    std::deque<PageRecord, util::ArenaAllocator<PageRecord>> records;
    std::uint32_t root = kNil;
    std::uint64_t count = 0;
    /// Fold fast path: leaf directory of the last stored page and its
    /// page-number prefix (node indices never move, so the memo stays
    /// valid for the store's lifetime).
    std::uint32_t last_leaf = kNil;
    kern::PageNum last_prefix = ~0ull;

    std::uint32_t slot(std::uint32_t table, std::size_t idx) const {
      return slots[static_cast<std::size_t>(table) * kFanout + idx];
    }
    void set_slot(std::uint32_t table, std::size_t idx, std::uint32_t v) {
      slots[static_cast<std::size_t>(table) * kFanout + idx] = v;
    }
  };

  /// Appends a node with a fresh all-nil slot table; returns its index.
  static std::uint32_t new_node(Shard& sh) {
    const auto table =
        static_cast<std::uint32_t>(sh.slots.size() / kFanout);
    sh.slots.resize(sh.slots.size() + kFanout, kNil);
    sh.nodes.push_back(Node{table});
    return static_cast<std::uint32_t>(sh.nodes.size() - 1);
  }

  std::uint64_t store_into(Shard& sh, const PageRecord& rec) {
    const kern::PageNum prefix = rec.page >> kBits;
    std::uint32_t leaf;
    if (sh.last_leaf != kNil && prefix == sh.last_prefix) {
      leaf = sh.last_leaf;
    } else {
      std::uint32_t node = sh.root;
      for (int level = 3; level >= 1; --level) {
        const std::size_t idx = index_at(rec.page, level);
        std::uint32_t child = sh.slot(sh.nodes[node].table, idx);
        if (child == kNil) {
          child = new_node(sh);
          sh.set_slot(sh.nodes[node].table, idx, child);
        }
        node = child;
      }
      leaf = node;
      sh.last_leaf = leaf;
      sh.last_prefix = prefix;
    }
    const std::size_t idx = index_at(rec.page, 0);
    const std::uint32_t slot = sh.slot(sh.nodes[leaf].table, idx);
    if (slot == kNil) {
      sh.set_slot(sh.nodes[leaf].table, idx,
                  static_cast<std::uint32_t>(sh.records.size()));
      sh.records.push_back(rec);
      ++sh.count;
    } else {
      sh.records[slot] = rec;
    }
    // The paper's cost model charges the full level walk per store; the
    // memoized walk is a wall-clock optimization, not a model change.
    return kLevels;
  }

  static std::size_t index_at(kern::PageNum page, int level) {
    return static_cast<std::size_t>((page >> (kBits * level)) & (kFanout - 1));
  }

  static void collect(const Shard& sh, std::uint32_t node, int level,
                      std::vector<const PageRecord*>& out) {
    const std::uint32_t table = sh.nodes[node].table;
    if (level == 0) {
      for (std::size_t i = 0; i < kFanout; ++i) {
        const std::uint32_t rec = sh.slot(table, i);
        if (rec != kNil) out.push_back(&sh.records[rec]);
      }
      return;
    }
    for (std::size_t i = 0; i < kFanout; ++i) {
      const std::uint32_t child = sh.slot(table, i);
      if (child != kNil) collect(sh, child, level - 1, out);
    }
  }

  std::vector<Shard> shards_;
  std::uint64_t epoch_ = 0;
};

}  // namespace nlc::criu
