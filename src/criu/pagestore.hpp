// Backup-side committed-page stores.
//
// Stock CRIU keeps incremental checkpoints as a linked list of directories;
// for every received page it walks the list to find and drop a previous
// copy, so per-page cost grows with the number of checkpoints taken — fatal
// at one checkpoint every 30 ms. NiLiCon replaces this with a four-level
// radix tree mimicking hardware page tables (§V-A), making the per-page
// cost constant. Both are implemented for the Table I ablation; store()
// returns the number of node/directory visits so the backup agent can
// charge simulated time per visit.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "criu/image.hpp"
#include "criu/shard.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Opens a new incremental checkpoint (a new directory / generation).
  virtual void begin_checkpoint(std::uint64_t epoch) = 0;

  /// Inserts/overwrites one page; returns the number of structure visits
  /// performed (the unit the backup CPU cost model charges). Storing a
  /// record copies its shared payload handle, not the page bytes.
  virtual std::uint64_t store(const PageRecord& rec) = 0;

  /// Latest committed copy of `page`, or nullptr.
  virtual const PageRecord* lookup(kern::PageNum page) const = 0;

  /// Number of distinct pages held.
  virtual std::uint64_t page_count() const = 0;

  /// All pages (restore walks this to materialize memory images).
  virtual std::vector<const PageRecord*> all_pages() const = 0;
};

/// Stock CRIU: linked list of per-checkpoint directories.
class ListPageStore final : public PageStore {
 public:
  void begin_checkpoint(std::uint64_t epoch) override {
    dirs_.push_back(Dir{epoch, {}});
  }

  std::uint64_t store(const PageRecord& rec) override {
    NLC_CHECK_MSG(!dirs_.empty(), "store before begin_checkpoint");
    // Walk earlier checkpoint directories newest-first looking for the
    // previous copy of this page to drop. At most one earlier directory
    // can hold it (every store drops the older copy), so the walk stops
    // at the first hit: the O(#checkpoints) behaviour of §V-A remains for
    // pages not stored recently (the walk reaches the oldest directory),
    // while a page rewritten every checkpoint costs a constant 2 visits.
    std::uint64_t visits = 0;
    auto last = std::prev(dirs_.end());
    for (auto it = std::make_reverse_iterator(last); it != dirs_.rend();
         ++it) {
      ++visits;
      if (it->pages.erase(rec.page) > 0) break;
    }
    ++visits;
    last->pages[rec.page] = rec;
    return visits;
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) {
      auto p = it->pages.find(page);
      if (p != it->pages.end()) return &p->second;
    }
    return nullptr;
  }

  std::uint64_t page_count() const override {
    std::uint64_t n = 0;
    for (const auto& d : dirs_) n += d.pages.size();
    return n;
  }

  std::vector<const PageRecord*> all_pages() const override {
    std::vector<const PageRecord*> out;
    for (const auto& d : dirs_) {
      for (const auto& [num, rec] : d.pages) out.push_back(&rec);
    }
    return out;
  }

  std::size_t checkpoint_count() const { return dirs_.size(); }

 private:
  struct Dir {
    std::uint64_t epoch;
    std::unordered_map<kern::PageNum, PageRecord> pages;
  };
  std::list<Dir> dirs_;
};

/// NiLiCon: four-level radix tree, 2^9 fan-out per level (like x86-64 page
/// tables); constant 4 modeled visits per store.
///
/// Sharded mode (shards > 1, DESIGN.md §10): the tree becomes a forest of
/// independent subtrees, one per page-number shard (shard_of). store() and
/// store_batch() only touch the owning shard's subtree and counters, so an
/// epoch fold fans out across the worker pool with no locks on the hot
/// path. Modeled visit accounting stays the paper's constant kLevels per
/// store for every shard count; internally each shard memoizes the leaf
/// directory of the last stored page, so folding a dense sorted range
/// resolves ~1 level per page instead of walking all 4.
class RadixPageStore final : public PageStore {
 public:
  explicit RadixPageStore(int shards = 1)
      : shards_(static_cast<std::size_t>(shards < 1 ? 1 : shards)) {}

  int shards() const { return static_cast<int>(shards_.size()); }

  void begin_checkpoint(std::uint64_t epoch) override { epoch_ = epoch; }

  std::uint64_t store(const PageRecord& rec) override {
    return store_into(shards_[shard_of(rec.page, shards())], rec);
  }

  /// Folds one epoch's records, fanning the per-shard work out on `pool`
  /// (null = inline shard loop). Produces exactly the state and modeled
  /// visit total that store()ing every record in image order would.
  std::uint64_t store_batch(const std::vector<PageRecord>& recs,
                            util::WorkerPool* pool) {
    if (shards() == 1 || recs.size() < 2) {
      std::uint64_t visits = 0;
      for (const PageRecord& r : recs) visits += store(r);
      return visits;
    }
    ShardPlan plan = ShardPlan::build(recs, shards());
    auto fold_one = [&](std::size_t s) {
      Shard& sh = shards_[s];
      for (std::uint32_t idx : plan.buckets[s]) store_into(sh, recs[idx]);
    };
    if (pool != nullptr) {
      pool->run(shards_.size(), fold_one);
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) fold_one(s);
    }
    return kLevels * recs.size();
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    const Node* n = &shards_[shard_of(page, shards())].root;
    for (int level = 3; level >= 1; --level) {
      const auto& child = n->children[index_at(page, level)];
      if (!child) return nullptr;
      n = child.get();
    }
    return n->leaves[index_at(page, 0)].get();
  }

  std::uint64_t page_count() const override {
    std::uint64_t n = 0;
    for (const Shard& sh : shards_) n += sh.count;
    return n;
  }

  std::vector<const PageRecord*> all_pages() const override {
    if (shards_.size() == 1) {
      std::vector<const PageRecord*> out;
      out.reserve(shards_[0].count);
      collect(shards_[0].root, 3, out);
      return out;
    }
    // Deterministic merge: each shard's walk is ascending by page number;
    // a k-way merge reproduces the globally ascending order a one-shard
    // tree yields, for any shard count.
    std::vector<std::vector<const PageRecord*>> per(shards_.size());
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      per[s].reserve(shards_[s].count);
      collect(shards_[s].root, 3, per[s]);
      total += per[s].size();
    }
    std::vector<const PageRecord*> out;
    out.reserve(total);
    std::vector<std::size_t> cur(per.size(), 0);
    while (out.size() < total) {
      std::size_t best = per.size();
      for (std::size_t s = 0; s < per.size(); ++s) {
        if (cur[s] == per[s].size()) continue;
        if (best == per.size() ||
            per[s][cur[s]]->page < per[best][cur[best]]->page) {
          best = s;
        }
      }
      out.push_back(per[best][cur[best]++]);
    }
    return out;
  }

  static constexpr std::uint64_t kLevels = 4;

 private:
  static constexpr std::uint64_t kBits = 9;
  static constexpr std::size_t kFanout = 1u << kBits;

  struct Node {
    std::array<std::unique_ptr<Node>, kFanout> children{};
    std::array<std::unique_ptr<PageRecord>, kFanout> leaves{};
  };

  struct Shard {
    Node root;
    std::uint64_t count = 0;
    /// Fold fast path: leaf directory of the last stored page and its
    /// page-number prefix. Interior nodes are never freed, so the cached
    /// pointer stays valid for the store's lifetime.
    Node* last_parent = nullptr;
    kern::PageNum last_prefix = ~0ull;
  };

  std::uint64_t store_into(Shard& sh, const PageRecord& rec) {
    kern::PageNum prefix = rec.page >> kBits;
    Node* n;
    if (sh.last_parent != nullptr && prefix == sh.last_prefix) {
      n = sh.last_parent;
    } else {
      n = &sh.root;
      for (int level = 3; level >= 1; --level) {
        std::size_t idx = index_at(rec.page, level);
        if (!n->children[idx]) n->children[idx] = std::make_unique<Node>();
        n = n->children[idx].get();
      }
      sh.last_parent = n;
      sh.last_prefix = prefix;
    }
    std::size_t idx = index_at(rec.page, 0);
    if (!n->leaves[idx]) {
      n->leaves[idx] = std::make_unique<PageRecord>(rec);
      ++sh.count;
    } else {
      *n->leaves[idx] = rec;
    }
    // The paper's cost model charges the full level walk per store; the
    // memoized walk is a wall-clock optimization, not a model change.
    return kLevels;
  }

  static std::size_t index_at(kern::PageNum page, int level) {
    return static_cast<std::size_t>((page >> (kBits * level)) & (kFanout - 1));
  }

  static void collect(const Node& n, int level,
                      std::vector<const PageRecord*>& out) {
    if (level == 0) {
      for (const auto& leaf : n.leaves) {
        if (leaf) out.push_back(leaf.get());
      }
      return;
    }
    for (const auto& child : n.children) {
      if (child) collect(*child, level - 1, out);
    }
  }

  std::vector<Shard> shards_;
  std::uint64_t epoch_ = 0;
};

}  // namespace nlc::criu
