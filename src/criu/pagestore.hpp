// Backup-side committed-page stores.
//
// Stock CRIU keeps incremental checkpoints as a linked list of directories;
// for every received page it walks the list to find and drop a previous
// copy, so per-page cost grows with the number of checkpoints taken — fatal
// at one checkpoint every 30 ms. NiLiCon replaces this with a four-level
// radix tree mimicking hardware page tables (§V-A), making the per-page
// cost constant. Both are implemented for the Table I ablation; store()
// returns the number of node/directory visits so the backup agent can
// charge simulated time per visit.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "criu/image.hpp"

namespace nlc::criu {

class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Opens a new incremental checkpoint (a new directory / generation).
  virtual void begin_checkpoint(std::uint64_t epoch) = 0;

  /// Inserts/overwrites one page; returns the number of structure visits
  /// performed (the unit the backup CPU cost model charges). Storing a
  /// record copies its shared payload handle, not the page bytes.
  virtual std::uint64_t store(const PageRecord& rec) = 0;

  /// Latest committed copy of `page`, or nullptr.
  virtual const PageRecord* lookup(kern::PageNum page) const = 0;

  /// Number of distinct pages held.
  virtual std::uint64_t page_count() const = 0;

  /// All pages (restore walks this to materialize memory images).
  virtual std::vector<const PageRecord*> all_pages() const = 0;
};

/// Stock CRIU: linked list of per-checkpoint directories.
class ListPageStore final : public PageStore {
 public:
  void begin_checkpoint(std::uint64_t epoch) override {
    dirs_.push_back(Dir{epoch, {}});
  }

  std::uint64_t store(const PageRecord& rec) override {
    NLC_CHECK_MSG(!dirs_.empty(), "store before begin_checkpoint");
    // Walk every earlier checkpoint directory looking for a previous copy
    // of this page to drop — the O(#checkpoints) behaviour of §V-A.
    std::uint64_t visits = 0;
    auto last = std::prev(dirs_.end());
    for (auto it = dirs_.begin(); it != last; ++it) {
      ++visits;
      it->pages.erase(rec.page);
    }
    ++visits;
    last->pages[rec.page] = rec;
    return visits;
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    for (auto it = dirs_.rbegin(); it != dirs_.rend(); ++it) {
      auto p = it->pages.find(page);
      if (p != it->pages.end()) return &p->second;
    }
    return nullptr;
  }

  std::uint64_t page_count() const override {
    std::uint64_t n = 0;
    for (const auto& d : dirs_) n += d.pages.size();
    return n;
  }

  std::vector<const PageRecord*> all_pages() const override {
    std::vector<const PageRecord*> out;
    for (const auto& d : dirs_) {
      for (const auto& [num, rec] : d.pages) out.push_back(&rec);
    }
    return out;
  }

  std::size_t checkpoint_count() const { return dirs_.size(); }

 private:
  struct Dir {
    std::uint64_t epoch;
    std::unordered_map<kern::PageNum, PageRecord> pages;
  };
  std::list<Dir> dirs_;
};

/// NiLiCon: four-level radix tree, 2^9 fan-out per level (like x86-64 page
/// tables); constant 4 visits per store.
class RadixPageStore final : public PageStore {
 public:
  void begin_checkpoint(std::uint64_t epoch) override { epoch_ = epoch; }

  std::uint64_t store(const PageRecord& rec) override {
    Node* n = &root_;
    for (int level = 3; level >= 1; --level) {
      std::size_t idx = index_at(rec.page, level);
      if (!n->children[idx]) n->children[idx] = std::make_unique<Node>();
      n = n->children[idx].get();
    }
    std::size_t idx = index_at(rec.page, 0);
    if (!n->leaves[idx]) {
      n->leaves[idx] = std::make_unique<PageRecord>(rec);
      ++count_;
    } else {
      *n->leaves[idx] = rec;
    }
    return kLevels;
  }

  const PageRecord* lookup(kern::PageNum page) const override {
    const Node* n = &root_;
    for (int level = 3; level >= 1; --level) {
      const auto& child = n->children[index_at(page, level)];
      if (!child) return nullptr;
      n = child.get();
    }
    return n->leaves[index_at(page, 0)].get();
  }

  std::uint64_t page_count() const override { return count_; }

  std::vector<const PageRecord*> all_pages() const override {
    std::vector<const PageRecord*> out;
    out.reserve(count_);
    collect(root_, 3, out);
    return out;
  }

  static constexpr std::uint64_t kLevels = 4;

 private:
  static constexpr std::uint64_t kBits = 9;
  static constexpr std::size_t kFanout = 1u << kBits;

  struct Node {
    std::array<std::unique_ptr<Node>, kFanout> children{};
    std::array<std::unique_ptr<PageRecord>, kFanout> leaves{};
  };

  static std::size_t index_at(kern::PageNum page, int level) {
    return static_cast<std::size_t>((page >> (kBits * level)) & (kFanout - 1));
  }

  static void collect(const Node& n, int level,
                      std::vector<const PageRecord*>& out) {
    if (level == 0) {
      for (const auto& leaf : n.leaves) {
        if (leaf) out.push_back(leaf.get());
      }
      return;
    }
    for (const auto& child : n.children) {
      if (child) collect(*child, level - 1, out);
    }
  }

  Node root_;
  std::uint64_t epoch_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace nlc::criu
