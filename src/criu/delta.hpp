// Dirty-page delta compression for the epoch state transfer.
//
// NiLiCon ships every dirty page at full 4 KiB cost; Remus-lineage systems
// classically shrink the transfer by diffing each dirty page against the
// version the backup already holds and shipping only the changed byte
// ranges. This module implements that stage for the reproduction:
//
//  * delta_encode()/delta_apply(): a real XOR + run-length codec over two
//    4 KiB payloads. Runs of identical bytes are skipped; each changed run
//    ships as (offset, len, bytes). The codec round-trips bit-exactly
//    (property-tested) — apply(prev, encode(prev, cur)) == cur.
//  * DeltaCodec: the per-container epoch stage. It keeps a shared handle to
//    the last-shipped payload of every page (refcount bump, zero copy —
//    copy-on-write in the address space keeps those bytes frozen), encodes
//    each content page of an epoch image against it, and stamps the
//    modeled compressed size into PageRecord::wire_size. The backup folds
//    full payloads as before; only the *wire* accounting and the
//    decompress cost model change, which is exactly what EpochStateMsg::
//    wire_bytes / send_side_cost / backup commit consume.
//
// Pages with no previous shipped version (first touch, epoch 0) and pages
// whose encoded size would exceed the raw page ship uncompressed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "criu/image.hpp"
#include "kernel/address_space.hpp"
#include "util/assert.hpp"

namespace nlc::criu {

/// Per-page wire framing overhead of a delta-encoded page (page number,
/// version, run count).
inline constexpr std::uint32_t kDeltaPageHeader = 12;
/// Per-run framing (offset u16 + length u16).
inline constexpr std::uint32_t kDeltaRunHeader = 4;

struct PageDelta {
  struct Run {
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;  // the new bytes of the changed range
  };
  std::vector<Run> runs;
  /// True when there is no usable reference (or compression lost): the raw
  /// page ships instead and `runs` is empty.
  bool raw = false;
  /// Modeled bytes on the wire, framing included; kPageSize when raw.
  std::uint32_t wire_size = 0;
};

/// Encodes `cur` against reference `prev` (null => raw). Adjacent changed
/// bytes closer than the run-header cost are merged into one run, which is
/// what a real encoder would do to minimize framing.
inline PageDelta delta_encode(const kern::PageBytes* prev,
                              const kern::PageBytes& cur) {
  NLC_CHECK(cur.size() == nlc::kPageSize);
  PageDelta d;
  if (prev == nullptr) {
    d.raw = true;
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
    return d;
  }
  NLC_CHECK(prev->size() == nlc::kPageSize);
  std::uint32_t i = 0;
  const auto n = static_cast<std::uint32_t>(nlc::kPageSize);
  while (i < n) {
    if (cur[i] == (*prev)[i]) {
      ++i;
      continue;
    }
    // Start of a changed run; extend while bytes differ or the gap of
    // equal bytes is shorter than the framing a new run would cost.
    std::uint32_t start = i;
    std::uint32_t last_diff = i;
    ++i;
    while (i < n) {
      if (cur[i] != (*prev)[i]) {
        last_diff = i++;
      } else if (i - last_diff <= kDeltaRunHeader) {
        ++i;  // cheaper to include the equal gap than to open a new run
      } else {
        break;
      }
    }
    PageDelta::Run run;
    run.offset = start;
    run.bytes.assign(cur.begin() + start, cur.begin() + last_diff + 1);
    d.runs.push_back(std::move(run));
  }
  std::uint32_t size = kDeltaPageHeader;
  for (const PageDelta::Run& r : d.runs) {
    size += kDeltaRunHeader + static_cast<std::uint32_t>(r.bytes.size());
  }
  if (size >= nlc::kPageSize) {
    d.raw = true;
    d.runs.clear();
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
  } else {
    d.wire_size = size;
  }
  return d;
}

/// Reconstructs the current page from the reference and a delta. For raw
/// deltas the caller ships the full payload, so `raw_payload` is applied.
inline kern::PageBytes delta_apply(const kern::PageBytes* prev,
                                   const PageDelta& d,
                                   const kern::PageBytes* raw_payload) {
  if (d.raw) {
    NLC_CHECK_MSG(raw_payload != nullptr, "raw delta without payload");
    return *raw_payload;
  }
  NLC_CHECK_MSG(prev != nullptr, "delta apply without reference page");
  kern::PageBytes out = *prev;
  for (const PageDelta::Run& r : d.runs) {
    NLC_CHECK(r.offset + r.bytes.size() <= out.size());
    std::copy(r.bytes.begin(), r.bytes.end(), out.begin() + r.offset);
  }
  return out;
}

/// What one epoch's compression stage did (feeds ReplicationMetrics).
struct EpochDeltaStats {
  std::uint64_t content_pages = 0;  // pages run through the encoder
  std::uint64_t delta_pages = 0;    // shipped as deltas
  std::uint64_t raw_pages = 0;      // no reference / compression lost
  std::uint64_t raw_bytes = 0;      // page bytes before compression
  std::uint64_t wire_bytes = 0;     // page bytes after compression

  double ratio() const {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(wire_bytes) /
                                static_cast<double>(raw_bytes);
  }
};

/// Primary-side per-container compression stage. Keeps the last shipped
/// payload of every content page as a shared handle.
class DeltaCodec {
 public:
  /// Encodes every content page of `img` against the previously shipped
  /// version, stamping PageRecord::wire_size, and advances the reference
  /// set. Accounting pages (no bytes to diff) keep full wire cost.
  EpochDeltaStats encode_epoch(CheckpointImage& img) {
    EpochDeltaStats st;
    for (PageRecord& rec : img.pages) {
      if (!rec.has_content()) continue;
      ++st.content_pages;
      st.raw_bytes += nlc::kPageSize;
      auto it = prev_.find(rec.page);
      const kern::PageBytes* ref =
          it == prev_.end() ? nullptr : it->second.get();
      PageDelta d = delta_encode(ref, *rec.content);
      rec.wire_size = d.wire_size;
      st.wire_bytes += d.wire_size;
      if (d.raw) {
        ++st.raw_pages;
      } else {
        ++st.delta_pages;
      }
      prev_[rec.page] = rec.content;  // refcount bump, no byte copy
    }
    return st;
  }

  std::uint64_t reference_pages() const { return prev_.size(); }

 private:
  std::unordered_map<kern::PageNum, kern::PagePayload> prev_;
};

}  // namespace nlc::criu
