// Dirty-page delta compression for the epoch state transfer.
//
// NiLiCon ships every dirty page at full 4 KiB cost; Remus-lineage systems
// classically shrink the transfer by diffing each dirty page against the
// version the backup already holds and shipping only the changed byte
// ranges. This module implements that stage for the reproduction:
//
//  * delta_encode()/delta_apply(): a real XOR + run-length codec over two
//    4 KiB payloads. Runs of identical bytes are skipped; each changed run
//    ships as (offset, len, bytes). The codec round-trips bit-exactly
//    (property-tested) — apply(prev, encode(prev, cur)) == cur.
//  * DeltaCodec: the per-container epoch stage. It keeps a shared handle to
//    the last-shipped payload of every page (refcount bump, zero copy —
//    copy-on-write in the address space keeps those bytes frozen), encodes
//    each content page of an epoch image against it, and stamps the
//    modeled compressed size into PageRecord::wire_size. The backup folds
//    full payloads as before; only the *wire* accounting and the
//    decompress cost model change, which is exactly what EpochStateMsg::
//    wire_bytes / send_side_cost / backup commit consume.
//
// Pages with no previous shipped version (first touch, epoch 0) and pages
// whose encoded size would exceed the raw page ship uncompressed.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "criu/image.hpp"
#include "criu/shard.hpp"
#include "kernel/address_space.hpp"
#include "util/assert.hpp"
#include "util/simd.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

/// Per-page wire framing overhead of a delta-encoded page (page number,
/// version, run count).
inline constexpr std::uint32_t kDeltaPageHeader = 12;
/// Per-run framing (offset u16 + length u16).
inline constexpr std::uint32_t kDeltaRunHeader = 4;

struct PageDelta {
  struct Run {
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;  // the new bytes of the changed range
  };
  std::vector<Run> runs;
  /// True when there is no usable reference (or compression lost): the raw
  /// page ships instead and `runs` is empty.
  bool raw = false;
  /// Modeled bytes on the wire, framing included; kPageSize when raw.
  std::uint32_t wire_size = 0;
};

namespace detail {

/// Computes framing + raw-fallback for an assembled run list (shared tail
/// of both encoder kernels).
inline void seal_delta(PageDelta& d) {
  std::uint32_t size = kDeltaPageHeader;
  for (const PageDelta::Run& r : d.runs) {
    size += kDeltaRunHeader + static_cast<std::uint32_t>(r.bytes.size());
  }
  if (size >= nlc::kPageSize) {
    d.raw = true;
    d.runs.clear();
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
  } else {
    d.wire_size = size;
  }
}

}  // namespace detail

/// Encodes `cur` against reference `prev` (null => raw). Adjacent changed
/// bytes closer than the run-header cost are merged into one run, which is
/// what a real encoder would do to minimize framing. This is the reference
/// kernel: byte-at-a-time, used by the serial (NLC_SHARDS=1) pipeline and
/// as the oracle the fast kernel is property-tested against.
inline PageDelta delta_encode(const kern::PageBytes* prev,
                              const kern::PageBytes& cur) {
  NLC_CHECK(cur.size() == nlc::kPageSize);
  PageDelta d;
  if (prev == nullptr) {
    d.raw = true;
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
    return d;
  }
  NLC_CHECK(prev->size() == nlc::kPageSize);
  std::uint32_t i = 0;
  const auto n = static_cast<std::uint32_t>(nlc::kPageSize);
  while (i < n) {
    if (cur[i] == (*prev)[i]) {
      ++i;
      continue;
    }
    // Start of a changed run; extend while bytes differ or the gap of
    // equal bytes is shorter than the framing a new run would cost.
    std::uint32_t start = i;
    std::uint32_t last_diff = i;
    ++i;
    while (i < n) {
      if (cur[i] != (*prev)[i]) {
        last_diff = i++;
      } else if (i - last_diff <= kDeltaRunHeader) {
        ++i;  // cheaper to include the equal gap than to open a new run
      } else {
        break;
      }
    }
    PageDelta::Run run;
    run.offset = start;
    run.bytes.assign(cur.begin() + start, cur.begin() + last_diff + 1);
    d.runs.push_back(std::move(run));
  }
  detail::seal_delta(d);
  return d;
}

/// Span-scanning encoder kernel used by the sharded pipeline (DESIGN.md
/// §10/§12): equal spans — the overwhelming majority of bytes of a typical
/// dirty page — and changed spans are both resolved by the dispatched scan
/// primitives (util/simd.hpp): 8 bytes per compare at kSwar64, 32 at
/// kVector, byte-at-a-time at kScalar. Run boundaries follow exactly the
/// reference kernel's absorb rule, so runs, raw flag and wire_size are
/// bit-identical to delta_encode() for every input and every tier
/// (tests/simd_kernel_test, tests/shard_determinism_test, property_test).
inline PageDelta delta_encode_fast(
    const kern::PageBytes* prev, const kern::PageBytes& cur,
    util::SimdTier tier = util::SimdTier::kSwar64) {
  NLC_CHECK(cur.size() == nlc::kPageSize);
  PageDelta d;
  if (prev == nullptr) {
    d.raw = true;
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
    return d;
  }
  NLC_CHECK(prev->size() == nlc::kPageSize);
  const std::byte* a = cur.data();
  const std::byte* b = prev->data();
  const std::size_t n = nlc::kPageSize;
  std::size_t i = util::find_diff(a, b, 0, n, tier);
  while (i < n) {
    const std::size_t start = i;
    std::size_t last_diff = i;
    // Invariant at the top of the loop: a[i] != b[i]. Extend over the
    // changed span, then absorb an equal gap iff it is no wider than the
    // framing a new run would cost (the same decision the reference kernel
    // makes one byte at a time: it keeps absorbing equal bytes while
    // i - last_diff <= kDeltaRunHeader, so a next diff at
    // last_diff + kDeltaRunHeader + 1 still extends the run).
    for (;;) {
      const std::size_t same = util::find_same(a, b, i + 1, n, tier);
      last_diff = same - 1;
      if (same >= n) {
        i = n;
        break;
      }
      const std::size_t j = util::find_diff(a, b, same, n, tier);
      if (j >= n || j - last_diff > kDeltaRunHeader + 1) {
        i = j;
        break;
      }
      i = j;  // diff within the absorbable gap: the run continues
    }
    PageDelta::Run run;
    run.offset = static_cast<std::uint32_t>(start);
    run.bytes.assign(cur.begin() + static_cast<std::ptrdiff_t>(start),
                     cur.begin() + static_cast<std::ptrdiff_t>(last_diff + 1));
    d.runs.push_back(std::move(run));
  }
  detail::seal_delta(d);
  return d;
}

/// Reconstructs the current page from the reference and a delta. For raw
/// deltas the caller ships the full payload, so `raw_payload` is applied.
inline kern::PageBytes delta_apply(const kern::PageBytes* prev,
                                   const PageDelta& d,
                                   const kern::PageBytes* raw_payload) {
  if (d.raw) {
    NLC_CHECK_MSG(raw_payload != nullptr, "raw delta without payload");
    return *raw_payload;
  }
  NLC_CHECK_MSG(prev != nullptr, "delta apply without reference page");
  // Bulk copies via memcpy: the reference copy and every run land as wide
  // vector moves (and the output buffer comes from the slab arena via
  // PageBytes' allocator).
  kern::PageBytes out(prev->size());
  std::memcpy(out.data(), prev->data(), prev->size());
  for (const PageDelta::Run& r : d.runs) {
    NLC_CHECK(r.offset + r.bytes.size() <= out.size());
    if (!r.bytes.empty()) {
      std::memcpy(out.data() + r.offset, r.bytes.data(), r.bytes.size());
    }
  }
  return out;
}

/// What one epoch's compression stage did (feeds ReplicationMetrics).
struct EpochDeltaStats {
  std::uint64_t content_pages = 0;  // pages run through the encoder
  std::uint64_t delta_pages = 0;    // shipped as deltas
  std::uint64_t raw_pages = 0;      // no reference / compression lost
  std::uint64_t raw_bytes = 0;      // page bytes before compression
  std::uint64_t wire_bytes = 0;     // page bytes after compression
  /// Event-log stream bytes shipped alongside this epoch (replay commit
  /// mode, DESIGN.md §14). The two streams are accounted separately: log
  /// segments ride their own priority lane and are never folded into
  /// `wire_bytes`, so the compression ratio stays a pure page-stream
  /// property and bench_fig3_overhead can report both streams. Stamped by
  /// the primary agent (the encoder never sees the log), zero under the
  /// epoch commit mode.
  std::uint64_t log_bytes = 0;

  double ratio() const {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(wire_bytes) /
                                static_cast<double>(raw_bytes);
  }
};

/// Primary-side per-container compression stage. Keeps the last shipped
/// payload of every content page as a shared handle.
///
/// Sharded mode (shards > 1, DESIGN.md §10): the reference set is split
/// into independent per-shard maps keyed by shard_of(page) — a page's
/// references live in one shard forever, so encode_epoch() fans the
/// per-shard encode out on the worker pool with no locks, using the
/// span-scanning kernel at the codec's SIMD tier (NLC_SIMD /
/// Options::simd_tier, DESIGN.md §12). Stats merge by summation in shard
/// order. Stamped
/// wire sizes and EpochDeltaStats are byte-identical for any shard count;
/// shards == 1 is the exact serial pre-shard engine (reference kernel,
/// one map).
class DeltaCodec {
 public:
  explicit DeltaCodec(int shards = 1,
                      util::SimdTier tier = util::SimdTier::kAuto)
      : prev_(static_cast<std::size_t>(shards < 1 ? 1 : shards)),
        tier_(util::resolve_simd_tier(tier)) {}

  int shards() const { return static_cast<int>(prev_.size()); }
  util::SimdTier simd_tier() const { return tier_; }

  /// Encodes every content page of `img` against the previously shipped
  /// version, stamping PageRecord::wire_size, and advances the reference
  /// set. Accounting pages (no bytes to diff) keep full wire cost.
  /// `pool` (null = inline shard loop) carries the sharded fan-out.
  EpochDeltaStats encode_epoch(CheckpointImage& img,
                               util::WorkerPool* pool = nullptr) {
    if (shards() == 1) {
      // Presize for the upper bound of this epoch's inserts so try_emplace
      // never rehashes mid-epoch.
      prev_[0].reserve(prev_[0].size() + img.pages.size());
      EpochDeltaStats st;
      for (PageRecord& rec : img.pages) {
        encode_one(rec, prev_[0], st, /*fast=*/false);
      }
      return st;
    }
    ShardPlan plan = ShardPlan::build(img.pages, shards());
    std::vector<EpochDeltaStats> per(prev_.size());
    auto encode_shard = [&](std::size_t s) {
      const std::vector<std::uint32_t>& bucket = plan.buckets[s];
      // Rehash-churn fix (ISSUE 6 satellite): one reserve per shard per
      // epoch bounds the map at its final size before the first probe.
      prev_[s].reserve(prev_[s].size() + bucket.size());
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        // Pull the next record and the head of its payload while encoding
        // this one; the 4 KiB scan gives the lines time to arrive.
        if (k + 1 < bucket.size()) {
          const PageRecord& next = img.pages[bucket[k + 1]];
          util::prefetch_read(&next);
          if (next.content != nullptr) {
            util::prefetch_read(next.content->data());
          }
        }
        encode_one(img.pages[bucket[k]], prev_[s], per[s], /*fast=*/true);
      }
    };
    if (pool != nullptr) {
      pool->run(prev_.size(), encode_shard);
    } else {
      for (std::size_t s = 0; s < prev_.size(); ++s) encode_shard(s);
    }
    // Deterministic merge: u64 sums folded in shard-index order.
    EpochDeltaStats st;
    for (const EpochDeltaStats& p : per) {
      st.content_pages += p.content_pages;
      st.delta_pages += p.delta_pages;
      st.raw_pages += p.raw_pages;
      st.raw_bytes += p.raw_bytes;
      st.wire_bytes += p.wire_bytes;
    }
    return st;
  }

  std::uint64_t reference_pages() const {
    std::uint64_t n = 0;
    for (const auto& m : prev_) n += m.size();
    return n;
  }

 private:
  using RefMap = std::unordered_map<kern::PageNum, kern::PagePayload>;

  void encode_one(PageRecord& rec, RefMap& refs, EpochDeltaStats& st,
                  bool fast) const {
    if (!rec.has_content()) return;
    ++st.content_pages;
    st.raw_bytes += nlc::kPageSize;
    // One hash probe serves both the reference lookup and the
    // advance-reference store (the encode and stamp paths used to hit the
    // map separately per page).
    auto [it, inserted] = refs.try_emplace(rec.page);
    if (fast && !inserted && it->second == rec.content) {
      // Identity fast path: the record still carries the exact handle we
      // shipped last epoch. The address space clones-on-write whenever a
      // payload is shared — and our reference handle keeps it shared — so
      // handle identity proves the bytes are unchanged. The reference
      // kernel would scan 2x4 KiB to emit zero runs; the result is the
      // same header-only delta either way.
      rec.wire_size = kDeltaPageHeader;
      st.wire_bytes += kDeltaPageHeader;
      ++st.delta_pages;
      return;
    }
    const kern::PageBytes* ref = inserted ? nullptr : it->second.get();
    PageDelta d = fast ? delta_encode_fast(ref, *rec.content, tier_)
                       : delta_encode(ref, *rec.content);
    rec.wire_size = d.wire_size;
    st.wire_bytes += d.wire_size;
    if (d.raw) {
      ++st.raw_pages;
    } else {
      ++st.delta_pages;
    }
    it->second = rec.content;  // refcount bump, no byte copy
  }

  std::vector<RefMap> prev_;
  util::SimdTier tier_;
};

}  // namespace nlc::criu
